package sde

import "fmt"

// SpeculationWorkloadOptions parameterises SpeculationWorkloadScenario.
type SpeculationWorkloadOptions struct {
	// Algorithm is the state mapping algorithm (SDS when zero-valued
	// COB is fine too — the workload sends no packets, so the mapper
	// only sees local forks).
	Algorithm Algorithm

	// Depth is the length of the entangled assume chain each activation
	// executes (default 10).
	Depth int

	// Activations is how many timer activations each node runs
	// (default 2).
	Activations int

	// Width is the bit width of the symbolic inputs feeding the chain
	// (default 8; wider inputs make each feasibility query harder).
	Width int
}

// SpeculationWorkloadScenario builds the speculative-pipeline benchmark
// workload: every activation draws a chain of fresh symbolic inputs and
// threads them through a multiply-accumulate, assuming a bound on the
// accumulator after every step. The constraints are deliberately
// entangled — each assume mentions every input drawn so far, so
// independence slicing cannot split the queries and every synchronous
// feasibility check must solve the whole chain so far. A synchronous run
// therefore pays Depth incremental solves per activation; the
// speculative pipeline defers them all to the end-of-activation barrier,
// where the deepest query is solved once and the shallower ones resolve
// by SAT-superset subsumption. A symbolic boot branch adds one
// both-feasible fork so the pair-speculation path is exercised too.
func SpeculationWorkloadScenario(o SpeculationWorkloadOptions) (Scenario, error) {
	if o.Depth <= 0 {
		o.Depth = 10
	}
	if o.Activations <= 0 {
		o.Activations = 2
	}
	if o.Width <= 0 {
		o.Width = 8
	}
	if o.Width > 32 {
		return Scenario{}, fmt.Errorf("sde: speculation workload width %d exceeds 32", o.Width)
	}

	b := NewProgramBuilder()
	boot := b.Func("boot")
	// One both-feasible symbolic branch: both sides rejoin immediately,
	// so the fork doubles the population without diverging control flow.
	boot.Sym(R5, "flip", 1)
	boot.BrNZ(R5, "go")
	boot.Label("go")
	boot.MovI(R1, 1)
	boot.Timer("step", R1, R0)
	boot.Ret()

	step := b.Func("step")
	// Activation counter (concrete, so the re-arm branch never forks).
	step.MovI(R3, 0)
	step.Load(R4, R3, 0x40)
	step.AddI(R4, R4, 1)
	step.Store(R3, 0x40, R4)
	// Entangled assume chain. Every level adds a fresh symbolic input
	// into the accumulator and assumes a bound k_i <= acc with k_i
	// fresh: the running sum entangles every level with all earlier
	// inputs (so slicing cannot split the queries), and the bound is
	// satisfiable for any accumulator value (k_i = 0 works), so no
	// assume ever kills a state. The all-zeros assignment satisfies the
	// whole chain, which keeps every query nearly search-free — its
	// solve cost is the per-call decision and bookkeeping sweep over
	// however much of the chain it spans. A synchronous run pays that
	// sweep at every level of a growing instance (quadratic in Depth);
	// the pipeline pays it once per barrier.
	step.Sym(R6, "seed", uint32(o.Width))
	for i := 0; i < o.Depth; i++ {
		step.Sym(R7, "m", uint32(o.Width))
		step.Add(R6, R6, R7)
		step.Sym(R10, "k", 32)
		step.Ule(R9, R10, R6)
		step.Assume(R9)
	}
	step.UltI(R8, R4, uint32(o.Activations))
	step.BrZ(R8, "stop")
	step.MovI(R1, 1)
	step.Timer("step", R1, R0)
	step.Label("stop")
	step.Ret()

	prog, err := b.Build()
	if err != nil {
		return Scenario{}, fmt.Errorf("sde: speculation workload: %w", err)
	}
	s, err := CustomScenario(
		fmt.Sprintf("speculation workload: line:2 depth=%d activations=%d width=%d",
			o.Depth, o.Activations, o.Width),
		CustomConfig{
			Topology:     Line(2),
			Program:      prog,
			Algorithm:    o.Algorithm,
			HorizonTicks: uint64(o.Activations) + 5,
		})
	if err != nil {
		return Scenario{}, err
	}
	// Counterexample reuse would answer the whole chain from the first
	// model in both modes; it is disabled (uniformly) so the benchmark
	// isolates what the pipeline schedules — the real per-solve cost of
	// the query stream.
	return s.WithSolverOptions(SolverOptions{DisablePool: true}), nil
}
