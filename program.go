package sde

import (
	"sde/internal/isa"
	"sde/internal/vm"
)

// Program is an immutable, validated bundle of node software — the unit a
// node executes. Build one with NewProgramBuilder.
type Program = isa.Program

// ShardSite is a branch the load-time compiler's static taint pass found
// to be data-dependent on symbolic input — a candidate shard point.
// See Program.ShardableSites.
type ShardSite = isa.ShardSite

// ProgramBuilder assembles Programs function by function; see the isa
// package documentation for the instruction set.
type ProgramBuilder = isa.Builder

// FuncBuilder accumulates the instructions of one program function.
type FuncBuilder = isa.FuncBuilder

// NewProgramBuilder returns an empty program builder.
func NewProgramBuilder() *ProgramBuilder { return isa.NewBuilder() }

// ParseProgram assembles textual program source (see the isa package
// documentation for the syntax). WriteProgram is its inverse.
func ParseProgram(src string) (*Program, error) { return isa.ParseAsm(src) }

// WriteProgram serialises a program in the ParseProgram syntax.
func WriteProgram(p *Program) string { return isa.WriteAsm(p) }

// Reg names one of the 16 general-purpose registers.
type Reg = isa.Reg

// General-purpose registers. R0..R2 carry handler arguments: a timer
// handler receives its argument in R0; a receive handler gets the sending
// node in R0, the RX buffer address in R1, and the payload length in R2.
const (
	R0  = isa.R0
	R1  = isa.R1
	R2  = isa.R2
	R3  = isa.R3
	R4  = isa.R4
	R5  = isa.R5
	R6  = isa.R6
	R7  = isa.R7
	R8  = isa.R8
	R9  = isa.R9
	R10 = isa.R10
	R11 = isa.R11
	R12 = isa.R12
	R13 = isa.R13
	R14 = isa.R14
	R15 = isa.R15
)

// BroadcastAddr is the destination that selects link-layer broadcast.
const BroadcastAddr = isa.BroadcastAddr

// State is one symbolic execution state of one node. Reports expose
// states for inspection of memory, histories, and path conditions.
type State = vm.State
