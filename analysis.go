package sde

import (
	"fmt"
	"sort"
	"strings"

	"sde/internal/vm"
)

// Analysis utilities over a finished run: the quantities the paper's
// §III/§IV discussion reasons about — duplicate states, per-node state
// populations, and grouping-structure shapes — exposed for inspection.

// DuplicateStates returns how many of the run's final states are
// redundant duplicates: states whose full configuration fingerprint
// (heap, stack, program counter, path constraints, communication history
// — §III-A) equals that of another live state. The paper's §III-D
// theorem says this is always zero for SDS; COB and COW pay for their
// duplicates in memory and redundant execution.
func (r *Report) DuplicateStates() int {
	counts := make(map[uint64]int)
	r.res.Mapper.ForEachState(func(s *vm.State) {
		counts[s.Fingerprint()]++
	})
	dups := 0
	for _, c := range counts {
		if c > 1 {
			dups += c - 1
		}
	}
	return dups
}

// StatesPerNode returns the number of live execution states per node id.
func (r *Report) StatesPerNode() []int {
	var maxNode int
	r.res.Mapper.ForEachState(func(s *vm.State) {
		if s.NodeID() > maxNode {
			maxNode = s.NodeID()
		}
	})
	out := make([]int, maxNode+1)
	r.res.Mapper.ForEachState(func(s *vm.State) {
		out[s.NodeID()]++
	})
	return out
}

// NodePopulation summarises the per-node state distribution.
type NodePopulation struct {
	MinStates    int
	MaxStates    int
	MaxNode      int // a node attaining MaxStates
	MeanStates   float64
	MedianStates int
}

// Population computes the per-node state distribution summary. Nodes on
// the data path (many communication contexts) hold far more states than
// pure bystanders — the asymmetry SDS exploits.
func (r *Report) Population() NodePopulation {
	per := r.StatesPerNode()
	if len(per) == 0 {
		return NodePopulation{}
	}
	sorted := append([]int(nil), per...)
	sort.Ints(sorted)
	pop := NodePopulation{
		MinStates:    sorted[0],
		MaxStates:    sorted[len(sorted)-1],
		MedianStates: sorted[len(sorted)/2],
	}
	total := 0
	for node, n := range per {
		total += n
		if n == pop.MaxStates {
			pop.MaxNode = node
		}
	}
	pop.MeanStates = float64(total) / float64(len(per))
	return pop
}

// ViolationSummary groups the run's violations by (node, message) with
// occurrence counts, ordered by node then message.
func (r *Report) ViolationSummary() []ViolationCount {
	counts := make(map[string]*ViolationCount)
	for _, v := range r.res.Violations {
		key := fmt.Sprintf("%06d|%s", v.Node, v.Msg)
		if c, ok := counts[key]; ok {
			c.Count++
		} else {
			counts[key] = &ViolationCount{Node: v.Node, Msg: v.Msg, Count: 1, Witness: v.Model}
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ViolationCount, 0, len(keys))
	for _, k := range keys {
		out = append(out, *counts[k])
	}
	return out
}

// ViolationCount is one distinct assertion failure with its multiplicity
// across states and a representative witness.
type ViolationCount struct {
	Node    int
	Msg     string
	Count   int
	Witness Env
}

// Analysis renders a multi-line diagnostic block: duplicates, population
// distribution, and distinct violations.
func (r *Report) Analysis() string {
	var sb strings.Builder
	pop := r.Population()
	fmt.Fprintf(&sb, "states: %d total, %d duplicates, per node min/median/mean/max = %d/%d/%.1f/%d (peak at node %d)\n",
		r.States(), r.DuplicateStates(),
		pop.MinStates, pop.MedianStates, pop.MeanStates, pop.MaxStates, pop.MaxNode)
	fmt.Fprintf(&sb, "groups: %d (%s), representing %s dscenarios\n",
		r.Groups(), groupNoun(r.res.Algorithm), r.DScenarios())
	if vs := r.ViolationSummary(); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintf(&sb, "violation x%d at node %d: %s\n", v.Count, v.Node, v.Msg)
		}
	} else {
		sb.WriteString("violations: none\n")
	}
	return sb.String()
}

func groupNoun(a Algorithm) string {
	if a == COB {
		return "dscenarios"
	}
	return "dstates"
}
