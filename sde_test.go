package sde_test

import (
	"strings"
	"testing"

	"sde"
)

func TestGridCollectScenarioDefaults(t *testing.T) {
	s, err := sde.GridCollectScenario(sde.GridCollectOptions{Dim: 3})
	if err != nil {
		t.Fatalf("GridCollectScenario: %v", err)
	}
	if s.Algorithm() != sde.SDS {
		t.Errorf("default algorithm = %v, want SDS", s.Algorithm())
	}
	if !strings.Contains(s.Description(), "grid 3x3") {
		t.Errorf("description = %q", s.Description())
	}
}

func TestGridCollectScenarioValidation(t *testing.T) {
	if _, err := sde.GridCollectScenario(sde.GridCollectOptions{Dim: 1}); err == nil {
		t.Error("dim 1 accepted")
	}
	if _, err := sde.LineCollectScenario(sde.LineCollectOptions{K: 1}); err == nil {
		t.Error("line length 1 accepted")
	}
	if _, err := sde.FloodScenario(sde.FloodOptions{K: 1}); err == nil {
		t.Error("mesh size 1 accepted")
	}
}

func TestRunScenarioEndToEnd(t *testing.T) {
	for _, algo := range sde.Algorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s, err := sde.GridCollectScenario(sde.GridCollectOptions{
				Dim:       3,
				Algorithm: algo,
				Packets:   2,
			})
			if err != nil {
				t.Fatal(err)
			}
			report, err := sde.RunScenario(s)
			if err != nil {
				t.Fatal(err)
			}
			if aborted, reason := report.Aborted(); aborted {
				t.Fatalf("aborted: %s", reason)
			}
			if report.States() < 9 {
				t.Errorf("states = %d, want >= 9", report.States())
			}
			if report.DScenarios().Sign() <= 0 {
				t.Error("no dscenarios represented")
			}
			if len(report.Violations()) != 0 {
				t.Errorf("unexpected violations: %+v", report.Violations())
			}
			if report.Instructions() == 0 {
				t.Error("no instructions recorded")
			}
			if !strings.Contains(report.Summary(), algo.String()) {
				t.Errorf("summary %q lacks algorithm", report.Summary())
			}
		})
	}
}

func TestWithAlgorithmSweep(t *testing.T) {
	base, err := sde.GridCollectScenario(sde.GridCollectOptions{Dim: 3, Packets: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[sde.Algorithm]string{}
	for _, algo := range sde.Algorithms {
		report, err := sde.RunScenario(base.WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		counts[algo] = report.DScenarios().String()
	}
	if counts[sde.COB] != counts[sde.COW] || counts[sde.COW] != counts[sde.SDS] {
		t.Errorf("dscenario counts diverge across algorithms: %v", counts)
	}
}

func TestReportTestCasesAndReplay(t *testing.T) {
	s, err := sde.GridCollectScenario(sde.GridCollectOptions{Dim: 3, Packets: 2})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	tcs, err := report.TestCases(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tcs) != 3 {
		t.Fatalf("test cases = %d, want 3", len(tcs))
	}
	replay, err := report.Replay(tcs[0].Inputs)
	if err != nil {
		t.Fatal(err)
	}
	if replay.States() != 9 {
		t.Errorf("replay states = %d, want 9 (one per node)", replay.States())
	}
}

func TestCapsAbortViaPublicAPI(t *testing.T) {
	s, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:     4,
		Packets: 5,
		Caps:    sde.Caps{MaxStates: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	s = s.WithAlgorithm(sde.COB)
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if aborted, _ := report.Aborted(); !aborted {
		t.Error("tiny state cap did not abort")
	}
	if !strings.Contains(report.Summary(), "aborted") {
		t.Errorf("summary %q does not flag the abort", report.Summary())
	}
}

func TestExplorePublicAPI(t *testing.T) {
	b := sde.NewProgramBuilder()
	f := b.Func("main")
	f.Sym(sde.R1, "x", 8)
	f.UltI(sde.R2, sde.R1, 128)
	f.BrNZ(sde.R2, "low")
	f.MovI(sde.R3, 2)
	f.Ret()
	f.Label("low")
	f.MovI(sde.R3, 1)
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.Explore(prog, "main", sde.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(report.Paths))
	}
	low := report.Paths[0].TestCase["x_n0_0"]
	high := report.Paths[1].TestCase["x_n0_0"]
	if low >= 128 || high < 128 {
		// DFS order: original takes the true (x < 128) branch first.
		t.Errorf("test cases: low=%d high=%d", low, high)
	}
}

func TestExploreMissingEntry(t *testing.T) {
	b := sde.NewProgramBuilder()
	b.Func("main").Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sde.Explore(prog, "nope", sde.ExploreOptions{}); err == nil {
		t.Error("missing entry function accepted")
	}
}

func TestCustomScenario(t *testing.T) {
	b := sde.NewProgramBuilder()
	boot := b.Func("boot")
	boot.MovI(sde.R1, 1)
	boot.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sde.CustomScenario("two silent nodes", sde.CustomConfig{
		Topology:     sde.Line(2),
		Program:      prog,
		Algorithm:    sde.SDS,
		HorizonTicks: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if report.States() != 2 {
		t.Errorf("states = %d, want 2", report.States())
	}
	if _, err := sde.CustomScenario("bad", sde.CustomConfig{Program: prog}); err == nil {
		t.Error("custom scenario without topology accepted")
	}
}

func TestDefaultEvalOptionsShape(t *testing.T) {
	for _, dim := range []int{5, 7, 10} {
		opts := sde.DefaultEvalOptions(dim)
		if opts.Packets == 0 {
			t.Errorf("dim %d: zero packets", dim)
		}
		if dim > 5 {
			if opts.Caps[sde.COB].MaxStates == 0 {
				t.Errorf("dim %d: COB must be state-capped", dim)
			}
			if opts.DropNodes != sde.DropRouteAndNeighbors {
				t.Errorf("dim %d: want route+neighbour drops", dim)
			}
		}
	}
}

// TestDiscoveryScenario exercises the neighbour-discovery workload: a
// flooding-class protocol (§IV-C) where every node transmits and the
// COW/SDS advantage shrinks.
func TestDiscoveryScenario(t *testing.T) {
	states := map[sde.Algorithm]int{}
	var dsc []string
	for _, algo := range sde.Algorithms {
		s, err := sde.DiscoveryScenario(sde.DiscoveryOptions{
			Topology:  sde.Line(3),
			Algorithm: algo,
			Rounds:    1,
			DropAll:   true,
			Caps:      sde.Caps{MaxStates: 100000},
		})
		if err != nil {
			t.Fatal(err)
		}
		report, err := sde.RunScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		if aborted, reason := report.Aborted(); aborted {
			t.Fatalf("%v aborted: %s", algo, reason)
		}
		if len(report.Violations()) != 0 {
			t.Fatalf("%v violations: %+v", algo, report.Violations())
		}
		states[algo] = report.States()
		dsc = append(dsc, report.DScenarios().String())
	}
	if dsc[0] != dsc[1] || dsc[1] != dsc[2] {
		t.Errorf("dscenario coverage diverges: %v", dsc)
	}
	if states[sde.SDS] > states[sde.COW] || states[sde.COW] > states[sde.COB] {
		t.Errorf("ordering violated: SDS=%d COW=%d COB=%d",
			states[sde.SDS], states[sde.COW], states[sde.COB])
	}
	// Dense communication: the SDS advantage is modest here compared to
	// the sparse grid (every node transmits and overhears).
	ratio := float64(states[sde.COB]) / float64(states[sde.SDS])
	if ratio > 6 {
		t.Errorf("discovery should erode the COB/SDS gap; ratio = %.1f", ratio)
	}
}

// TestDiscoveryScenarioSharded: every armed node beacons, so all armed
// drop decisions are shardable.
func TestDiscoveryScenarioSharded(t *testing.T) {
	s, err := sde.DiscoveryScenario(sde.DiscoveryOptions{
		Topology:  sde.Line(3),
		Algorithm: sde.SDS,
		Rounds:    1,
		DropAll:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxShardBits() != 3 {
		t.Fatalf("MaxShardBits = %d, want 3 (all nodes armed and beaconing)", s.MaxShardBits())
	}
	ref, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := sde.RunScenarioSharded(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.DScenarios().Cmp(ref.DScenarios()) != 0 {
		t.Errorf("sharded coverage %v != %v", sharded.DScenarios(), ref.DScenarios())
	}
}

// TestThresholdScenarioPublicAPI: symbolic packet contents through the
// public API — two behaviours, test cases with consistent readings.
func TestThresholdScenarioPublicAPI(t *testing.T) {
	s, err := sde.ThresholdScenario(sde.ThresholdOptions{K: 3, Threshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if report.DScenarios().Int64() != 2 {
		t.Fatalf("dscenarios = %v, want 2", report.DScenarios())
	}
	tcs, err := report.TestCases(0)
	if err != nil {
		t.Fatal(err)
	}
	above, below := false, false
	for _, tc := range tcs {
		if tc.Inputs["reading_n2_0"] > 1000 {
			above = true
		} else {
			below = true
		}
	}
	if !above || !below {
		t.Errorf("readings do not straddle the threshold: %v", tcs)
	}
	if _, err := sde.ThresholdScenario(sde.ThresholdOptions{K: 1}); err == nil {
		t.Error("K=1 accepted")
	}
}

// TestEvaluationShapeSmall runs a reduced sweep and checks the paper's
// headline ordering end to end through the public API.
func TestEvaluationShapeSmall(t *testing.T) {
	rows, err := sde.RunGridEvaluation(4, sde.EvalOptions{Packets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byAlgo := map[sde.Algorithm]sde.EvalRow{}
	for _, r := range rows {
		byAlgo[r.Algorithm] = r
	}
	if !(byAlgo[sde.SDS].States < byAlgo[sde.COW].States &&
		byAlgo[sde.COW].States <= byAlgo[sde.COB].States) {
		t.Errorf("state ordering violated: SDS=%d COW=%d COB=%d",
			byAlgo[sde.SDS].States, byAlgo[sde.COW].States, byAlgo[sde.COB].States)
	}
	if byAlgo[sde.COB].DScenarios.Cmp(byAlgo[sde.SDS].DScenarios) != 0 {
		t.Error("dscenario coverage diverges")
	}
	table := sde.FormatTable("t", rows)
	for _, want := range []string{"Copy On Branch", "Copy On Write", "Super DStates"} {
		if !strings.Contains(table, want) {
			t.Errorf("table lacks %q:\n%s", want, table)
		}
	}
	fig := sde.FigureSeries(4, rows)
	if !strings.Contains(fig, "state growth") || !strings.Contains(fig, "memory growth") {
		t.Errorf("figure output incomplete:\n%s", fig)
	}
}
