package sde

import (
	"fmt"
	"strconv"
	"strings"
)

// ScenarioSpec is the declarative, JSON-serialisable form of a built-in
// scenario: what a client POSTs to the exploration service's job API and
// what a work lease carries to a remote worker, which rebuilds the exact
// same Scenario from it. Both sides constructing the scenario from one
// spec — rather than shipping live programs or configs — is what keeps
// the wire protocol small and the distributed run's outputs bit-identical
// to an in-process one.
//
// The zero value of every optional field selects the same default the
// matching constructor would.
type ScenarioSpec struct {
	// Workload names the scenario family: collect, flood, discovery,
	// runicast, threshold, or deepchain.
	Workload string `json:"workload"`
	// Topology is kind:size — grid:5, line:4, or mesh:4 (grid sizes are
	// the edge length).
	Topology string `json:"topology"`
	// Algorithm is the state mapping algorithm: cob, cow, or sds
	// (default sds).
	Algorithm string `json:"algorithm,omitempty"`
	// Packets is the packet count for sending workloads, and the round
	// count for discovery.
	Packets uint32 `json:"packets,omitempty"`
	// Drops selects symbolic first-packet drops: route (default),
	// route+neighbors, or none.
	Drops string `json:"drops,omitempty"`
	// Failures lists extra failures as kind:node pairs, e.g.
	// "dup:0,reboot:3" (line topologies only).
	Failures string `json:"failures,omitempty"`
	// Threshold is the alarm threshold of the threshold workload
	// (default 500).
	Threshold uint64 `json:"threshold,omitempty"`
	// Ticks is the mixing-tail length of the deepchain workload
	// (default 48).
	Ticks uint32 `json:"ticks,omitempty"`
	// Iters is the per-tick arithmetic loop count of the deepchain
	// workload (default 256).
	Iters uint32 `json:"iters,omitempty"`
	// MaxStates aborts the run when live states exceed it (0 = unlimited).
	MaxStates int `json:"max_states,omitempty"`
	// Reduce turns symmetry and partial-order reduction on for the run
	// (Scenario.WithReduction). Reduction preserves the violation set and
	// per-orbit-representative test cases but not bit-identity.
	Reduce bool `json:"reduce,omitempty"`
}

// String renders the spec compactly for logs.
func (sp ScenarioSpec) String() string {
	return fmt.Sprintf("%s/%s algo=%s packets=%d drops=%s",
		sp.Workload, sp.Topology, sp.Algorithm, sp.Packets, sp.Drops)
}

// ParseAlgorithm maps a case-insensitive algorithm name (cob, cow, sds)
// to the Algorithm constant.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "cob":
		return COB, nil
	case "cow":
		return COW, nil
	case "sds":
		return SDS, nil
	default:
		return 0, fmt.Errorf("sde: unknown algorithm %q (want cob, cow, or sds)", s)
	}
}

// ParseTopology splits a kind:size topology spec.
func ParseTopology(s string) (kind string, size int, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 || parts[0] == "" {
		return "", 0, fmt.Errorf("sde: topology %q: want kind:size", s)
	}
	size, err = strconv.Atoi(parts[1])
	if err != nil || size < 2 {
		return "", 0, fmt.Errorf("sde: topology %q: bad size", s)
	}
	return parts[0], size, nil
}

// ParseFailurePlan parses a kind:node failure list ("dup:0,reboot:3",
// kinds drop, dup, reboot). The empty string is an empty plan.
func ParseFailurePlan(s string) (FailurePlan, error) {
	var plan FailurePlan
	if s == "" {
		return plan, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return plan, fmt.Errorf("sde: failure %q: want kind:node", part)
		}
		node, err := strconv.Atoi(kv[1])
		if err != nil {
			return plan, fmt.Errorf("sde: failure %q: bad node id", part)
		}
		switch kv[0] {
		case "drop":
			plan.DropFirst = addFailureNode(plan.DropFirst, node)
		case "dup":
			plan.DuplicateFirst = addFailureNode(plan.DuplicateFirst, node)
		case "reboot":
			plan.RebootOnFirst = addFailureNode(plan.RebootOnFirst, node)
		default:
			return plan, fmt.Errorf("sde: unknown failure kind %q", kv[0])
		}
	}
	return plan, nil
}

func addFailureNode(set map[int]bool, node int) map[int]bool {
	if set == nil {
		set = make(map[int]bool)
	}
	set[node] = true
	return set
}

// Scenario materialises the spec through the matching built-in
// constructor. Two processes materialising the same spec get scenarios
// whose explorations are bit-identical — the foundation of the
// coordinator/worker protocol.
func (sp ScenarioSpec) Scenario() (Scenario, error) {
	algoName := sp.Algorithm
	if algoName == "" {
		algoName = "sds"
	}
	algo, err := ParseAlgorithm(algoName)
	if err != nil {
		return Scenario{}, err
	}
	kind, size, err := ParseTopology(sp.Topology)
	if err != nil {
		return Scenario{}, err
	}
	extra, err := ParseFailurePlan(sp.Failures)
	if err != nil {
		return Scenario{}, err
	}
	drops := sp.Drops
	if drops == "" {
		drops = "route"
	}
	workload := sp.Workload
	if workload == "" {
		workload = "collect"
	}

	var s Scenario
	switch {
	case workload == "collect" && kind == "grid":
		sel := DropRoute
		switch drops {
		case "route":
		case "route+neighbors":
			sel = DropRouteAndNeighbors
		case "none":
			sel = DropNone
		default:
			return Scenario{}, fmt.Errorf("sde: unknown drop selection %q", drops)
		}
		if len(extra.DuplicateFirst)+len(extra.RebootOnFirst)+len(extra.DropFirst) > 0 {
			return Scenario{}, fmt.Errorf("sde: failures are only supported with line topologies")
		}
		s, err = GridCollectScenario(GridCollectOptions{
			Dim: size, Algorithm: algo, Packets: sp.Packets, DropNodes: sel,
		})
	case workload == "collect" && kind == "line":
		if drops == "route" {
			nodes := make([]int, size)
			for i := range nodes {
				nodes[i] = i
			}
			extra.DropFirst = NodeSet(nodes)
		}
		s, err = LineCollectScenario(LineCollectOptions{
			K: size, Algorithm: algo, Packets: sp.Packets, Failures: extra,
		})
	case workload == "flood" && kind == "mesh":
		s, err = FloodScenario(FloodOptions{
			K: size, Algorithm: algo, Packets: sp.Packets, DropAll: drops != "none",
		})
	case workload == "runicast" && kind == "line":
		s, err = RunicastScenario(RunicastOptions{
			K: size, Algorithm: algo, Packets: sp.Packets, Failures: extra,
		})
	case workload == "deepchain" && kind == "line":
		if len(extra.DuplicateFirst)+len(extra.RebootOnFirst)+len(extra.DropFirst) > 0 {
			return Scenario{}, fmt.Errorf("sde: deepchain has a fixed failure plan")
		}
		s, err = DeepChainScenario(DeepChainOptions{
			K: size, Algorithm: algo, Packets: sp.Packets,
			Ticks: sp.Ticks, Iters: sp.Iters,
		})
	case workload == "threshold" && kind == "line":
		s, err = ThresholdScenario(ThresholdOptions{
			K: size, Algorithm: algo, Threshold: sp.Threshold,
		})
	case workload == "discovery":
		var topo Topology
		switch kind {
		case "grid":
			topo = Grid(size, size)
		case "line":
			topo = Line(size)
		case "mesh":
			topo = FullMesh(size)
		default:
			return Scenario{}, fmt.Errorf("sde: unknown topology kind %q", kind)
		}
		s, err = DiscoveryScenario(DiscoveryOptions{
			Topology: topo, Algorithm: algo, Rounds: sp.Packets, DropAll: drops != "none",
		})
	default:
		return Scenario{}, fmt.Errorf("sde: unsupported combination workload=%q topology=%q",
			workload, kind)
	}
	if err != nil {
		return Scenario{}, err
	}
	if sp.MaxStates > 0 {
		s = s.WithCaps(Caps{MaxStates: sp.MaxStates})
	}
	if sp.Reduce {
		s = s.WithReduction()
	}
	return s, nil
}
