package sde_test

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sde"
)

func TestShardItemLabelAndDir(t *testing.T) {
	cases := []struct {
		item  sde.ShardItem
		label string
		dir   string
	}{
		{sde.ShardItem{}, "root", "root"},
		{sde.ShardItem{Depth: 1, Bits: 0}, "0/1", "d1-0"},
		{sde.ShardItem{Depth: 1, Bits: 1}, "1/1", "d1-1"},
		{sde.ShardItem{Depth: 3, Bits: 5}, "101/3", "d3-101"},
	}
	for _, c := range cases {
		if got := c.item.Label(); got != c.label {
			t.Errorf("%+v Label = %q, want %q", c.item, got, c.label)
		}
		if got := c.item.Dir(); got != c.dir {
			t.Errorf("%+v Dir = %q, want %q", c.item, got, c.dir)
		}
	}
}

// leaseAll executes every leaf of a prefix-free cover through
// RunShardLease, returning the leaves AssembleSharded consumes.
func leaseAll(t *testing.T, s sde.Scenario, items []sde.ShardItem, root string) []sde.ShardLeaf {
	t.Helper()
	leaves := make([]sde.ShardLeaf, 0, len(items))
	for _, it := range items {
		out, err := sde.RunShardLease(s, it, sde.LeaseOptions{
			CheckpointDir: filepath.Join(root, it.Dir()),
		})
		if err != nil {
			t.Fatalf("lease %s: %v", it.Label(), err)
		}
		if out.Stopped {
			t.Fatalf("lease %s stopped without a progress hook", it.Label())
		}
		if len(out.Snapshot) == 0 {
			t.Fatalf("lease %s returned an empty snapshot", it.Label())
		}
		leaves = append(leaves, sde.ShardLeaf{Item: it, Snapshot: out.Snapshot})
	}
	return leaves
}

// TestAssembleShardedBitIdentical is the service's core soundness
// property: executing every leaf as an isolated lease (the worker path)
// and reassembling the shipped checkpoints must reproduce the in-process
// sharded report bit-for-bit, as witnessed by the canonical digest.
func TestAssembleShardedBitIdentical(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	ref, err := sde.RunScenarioSharded(scenario, 2)
	if err != nil {
		t.Fatal(err)
	}
	refDigest, err := ref.Digest(8)
	if err != nil {
		t.Fatal(err)
	}

	items := []sde.ShardItem{
		{Depth: 2, Bits: 0b00},
		{Depth: 2, Bits: 0b10},
		{Depth: 2, Bits: 0b01},
		{Depth: 2, Bits: 0b11},
	}
	leaves := leaseAll(t, scenario, items, t.TempDir())
	got, err := sde.AssembleSharded(scenario, leaves)
	if err != nil {
		t.Fatal(err)
	}
	gotDigest, err := got.Digest(8)
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != refDigest {
		t.Errorf("assembled digest %s != in-process digest %s", gotDigest, refDigest)
	}
	if got.States() != ref.States() || got.DScenarios().Cmp(ref.DScenarios()) != 0 {
		t.Errorf("assembled states/dscenarios %d/%v != %d/%v",
			got.States(), got.DScenarios(), ref.States(), ref.DScenarios())
	}
	if got.Sched.Shards != len(items) {
		t.Errorf("Sched.Shards = %d, want %d", got.Sched.Shards, len(items))
	}
}

// TestAssembleShardedMixedDepths covers the uneven partition a straggler
// re-split produces: one half explored whole, the other as two quarters.
func TestAssembleShardedMixedDepths(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	ref, err := sde.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	items := []sde.ShardItem{
		{Depth: 1, Bits: 0b0},
		{Depth: 2, Bits: 0b01},
		{Depth: 2, Bits: 0b11},
	}
	leaves := leaseAll(t, scenario, items, t.TempDir())
	got, err := sde.AssembleSharded(scenario, leaves)
	if err != nil {
		t.Fatal(err)
	}
	if got.DScenarios().Cmp(ref.DScenarios()) != 0 {
		t.Errorf("dscenarios = %v, want %v", got.DScenarios(), ref.DScenarios())
	}
	gotSet := map[uint64]bool{}
	for _, sh := range got.Shards {
		for fp := range explodeFingerprints(sh.Report) {
			gotSet[fp] = true
		}
	}
	refSet := explodeFingerprints(ref)
	if len(gotSet) != len(refSet) {
		t.Fatalf("fingerprint sets differ: %d vs %d", len(gotSet), len(refSet))
	}
	for fp := range refSet {
		if !gotSet[fp] {
			t.Errorf("fingerprint %016x missing from assembled run", fp)
		}
	}
}

// TestLeaseCrashRecovery simulates the coordinator's crash story: a lease
// is cut short mid-run (the worker "crashed" after checkpointing), then
// re-issued against the same directory, resuming rather than restarting —
// and the assembled result is still bit-identical.
func TestLeaseCrashRecovery(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	ref, err := sde.RunScenarioSharded(scenario, 1)
	if err != nil {
		t.Fatal(err)
	}
	refDigest, err := ref.Digest(8)
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	crashed := sde.ShardItem{Depth: 1, Bits: 0}
	crashDir := filepath.Join(root, crashed.Dir())
	calls := 0
	out, err := sde.RunShardLease(scenario, crashed, sde.LeaseOptions{
		CheckpointDir:   crashDir,
		CheckpointEvery: 1,
		Progress: func(states int, elapsed time.Duration) bool {
			calls++
			return calls > 2 // stop shortly after the first checkpoints land
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Stopped {
		t.Fatal("progress hook did not stop the lease; lower the threshold")
	}
	if out.Snapshot != nil {
		t.Fatal("stopped lease must not ship a snapshot")
	}

	// Re-issue the lease: it must resume from the crashed worker's
	// checkpoint, not restart.
	retry, err := sde.RunShardLease(scenario, crashed, sde.LeaseOptions{CheckpointDir: crashDir})
	if err != nil {
		t.Fatal(err)
	}
	if retry.Stopped {
		t.Fatal("re-issued lease stopped")
	}
	if !retry.Report.Resumed() {
		t.Error("re-issued lease did not resume from the checkpoint")
	}

	other := sde.ShardItem{Depth: 1, Bits: 1}
	rest := leaseAll(t, scenario, []sde.ShardItem{other}, root)
	leaves := append(rest, sde.ShardLeaf{Item: crashed, Snapshot: retry.Snapshot})
	got, err := sde.AssembleSharded(scenario, leaves)
	if err != nil {
		t.Fatal(err)
	}
	gotDigest, err := got.Digest(8)
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != refDigest {
		t.Errorf("post-crash digest %s != reference %s", gotDigest, refDigest)
	}
}

func TestRunShardLeaseValidation(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	if _, err := sde.RunShardLease(scenario, sde.ShardItem{}, sde.LeaseOptions{}); err == nil {
		t.Error("missing checkpoint dir not rejected")
	}
	bad := sde.ShardItem{Depth: scenario.MaxShardBits() + 1}
	if _, err := sde.RunShardLease(scenario, bad, sde.LeaseOptions{CheckpointDir: t.TempDir()}); err == nil {
		t.Error("over-deep item not rejected")
	}
	wide := sde.ShardItem{Depth: 1, Bits: 2}
	if _, err := sde.RunShardLease(scenario, wide, sde.LeaseOptions{CheckpointDir: t.TempDir()}); err == nil {
		t.Error("bits wider than depth not rejected")
	}
}

func TestAssembleShardedRejectsBadCovers(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	whole := leaseAll(t, scenario, []sde.ShardItem{{}}, t.TempDir())

	cases := []struct {
		name  string
		items []sde.ShardItem
		want  string
	}{
		{"empty", nil, "no shard leaves"},
		{"duplicate", []sde.ShardItem{{}, {}}, "twice"},
		{"gap", []sde.ShardItem{{Depth: 1, Bits: 0}}, "missing the sibling"},
		{"overlap", []sde.ShardItem{{}, {Depth: 1, Bits: 0}, {Depth: 1, Bits: 1}}, "overlaps"},
		{"nested overlap", []sde.ShardItem{
			{Depth: 1, Bits: 0},
			{Depth: 2, Bits: 0b00}, {Depth: 2, Bits: 0b10},
			{Depth: 1, Bits: 1},
		}, "overlaps"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Reuse the whole-space snapshot for every item: cover
			// validation happens before any resume, so the payload
			// bytes never matter here.
			leaves := make([]sde.ShardLeaf, len(c.items))
			for i, it := range c.items {
				leaves[i] = sde.ShardLeaf{Item: it, Snapshot: whole[0].Snapshot}
			}
			_, err := sde.AssembleSharded(scenario, leaves)
			if err == nil {
				t.Fatalf("bad cover %v accepted", c.items)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestDigestSensitivity checks the digest moves when observable outputs
// move, and ignores the test-case budget only when it is equal.
func TestDigestSensitivity(t *testing.T) {
	scenario := shardScenario(t, sde.SDS)
	a, err := sde.RunScenarioSharded(scenario, 1)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := a.Digest(4)
	if err != nil {
		t.Fatal(err)
	}
	d1again, err := a.Digest(4)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d1again {
		t.Error("digest is not deterministic")
	}

	smaller, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim: 3, Algorithm: sde.SDS, Packets: 1, DropNodes: sde.DropRouteAndNeighbors,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sde.RunScenarioSharded(smaller, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := b.Digest(4)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Error("digests of different workloads collide")
	}
}
