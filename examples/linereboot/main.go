// Linereboot: bug finding with symbolic network failures (§IV-A), on a
// 4-node line running the collect stack.
//
// The sink's delivery invariant asserts strictly increasing sequence
// numbers. A symbolic packet duplication at the sink violates it; a
// symbolic reboot of a forwarder exercises the loss of volatile state.
// SDE finds the violating interleaving, emits a concrete witness, and the
// witness replays deterministically — the paper's core motivation:
// "concrete input and deterministic path information ... to locate,
// replay, and narrow down their root-causes".
package main

import (
	"fmt"
	"log"

	"sde"
	"sde/internal/sim"
)

func main() {
	scenario, err := sde.LineCollectScenario(sde.LineCollectOptions{
		K:         4,
		Algorithm: sde.SDS,
		Packets:   3,
		Failures: sde.FailurePlan{
			// The sink may see its first packet duplicated...
			DuplicateFirst: sim.NodeSet([]int{0}),
			// ...and the middle forwarder may crash and reboot.
			RebootOnFirst: sim.NodeSet([]int{2}),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scenario:", scenario.Description())

	report, err := sde.RunScenario(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Summary())

	if len(report.Violations()) == 0 {
		log.Fatal("expected the duplication bug to surface")
	}
	for _, v := range report.Violations() {
		fmt.Printf("\nVIOLATION at node %d, t=%d:\n  %s\n", v.Node, v.Time, v.Msg)
		fmt.Printf("  concrete witness: %v\n", v.Model)
		fmt.Println("  (0 selects the failure branch of the corresponding fork)")

		ok, replay, err := report.ReplayViolation(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  deterministic replay reproduces the assertion failure: %v\n", ok)
		fmt.Printf("  replay ran %d states (one per node) in %v\n",
			replay.States(), replay.Wall())

		// Narrow the root cause: which injected failures are actually
		// needed? (The reboot turns out to be irrelevant to this bug.)
		_, needed, err := report.MinimizeViolation(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  minimised root cause: %v\n", needed)
	}

	// Flip every failure decision to the no-failure side: the bug must
	// vanish, confirming the witness is tight.
	clean := sde.Env{}
	for _, v := range report.Violations() {
		for name := range v.Model {
			clean[name] = 1
		}
	}
	replay, err := report.Replay(clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nReplay with all failures disabled: %d violations (want 0).\n",
		len(replay.Violations()))
}
