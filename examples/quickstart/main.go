// Quickstart: regular symbolic execution of a single program — the
// paper's Figure 1. One symbolic input, four feasible paths, and one
// automatically generated concrete test case per path.
package main

import (
	"fmt"
	"log"
	"sort"

	"sde"
)

func main() {
	// Build the Figure 1 program against the public instruction-set API:
	//
	//	int x = symbolic_input();
	//	if (x == 0)        -> path 1
	//	if (x < 50)
	//	    if (x > 10)    -> path 2
	//	    else           -> path 3
	//	else               -> path 4
	b := sde.NewProgramBuilder()
	f := b.Func("main")
	f.Sym(sde.R1, "x", 32)
	f.EqI(sde.R2, sde.R1, 0)
	f.BrNZ(sde.R2, "path1")
	f.UltI(sde.R2, sde.R1, 50)
	f.BrZ(sde.R2, "path4")
	f.UltI(sde.R2, sde.R1, 11)
	f.BrNZ(sde.R2, "path3")
	f.MovI(sde.R3, 2) // 10 < x < 50
	f.Ret()
	f.Label("path1")
	f.MovI(sde.R3, 1) // x == 0
	f.Ret()
	f.Label("path3")
	f.MovI(sde.R3, 3) // x != 0 && x <= 10
	f.Ret()
	f.Label("path4")
	f.MovI(sde.R3, 4) // x >= 50
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	report, err := sde.Explore(prog, "main", sde.ExploreOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Regular symbolic execution explored %d unique execution paths:\n\n",
		len(report.Paths))
	type row struct {
		marker uint64
		x      uint64
	}
	rows := make([]row, 0, len(report.Paths))
	for _, p := range report.Paths {
		rows = append(rows, row{
			marker: p.State.Reg(sde.R3).ConstVal(),
			x:      p.TestCase["x_n0_0"],
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].marker < rows[j].marker })
	regions := map[uint64]string{
		1: "x == 0",
		2: "10 < x < 50",
		3: "x != 0 && x <= 10",
		4: "x >= 50",
	}
	for _, r := range rows {
		fmt.Printf("  Path %d  {%- 20s}  Testcase %d: x = %d\n",
			r.marker, regions[r.marker], r.marker, r.x)
	}
	fmt.Println("\nEach test case replays its path deterministically — the concrete")
	fmt.Println("inputs developers use for post-mortem analysis (paper §I, Figure 1).")
}
