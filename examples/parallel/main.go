// Parallel: the paper's §VI future-work item — "we plan to parallelize
// SDE's implementation ... we have to identify the sets of states which
// can be safely offloaded on other cores and thus can be independently
// executed."
//
// The unit of independence here is a partition of the dscenario space:
// pinning the drop decisions of nodes that are guaranteed to receive (the
// source's radio neighbours) splits the exploration into disjoint
// sub-spaces that run on fully independent engines, concurrently. The
// shard union covers exactly the unsharded exploration.
package main

import (
	"fmt"
	"log"

	"sde"
)

func main() {
	scenario, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:       4,
		Algorithm: sde.SDS,
		Packets:   3,
		DropNodes: sde.DropRouteAndNeighbors,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scenario:", scenario.Description())
	fmt.Printf("Shardable failure decisions: %d (up to %d shards)\n\n",
		scenario.MaxShardBits(), 1<<scenario.MaxShardBits())

	reference, err := sde.RunScenario(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unsharded: states=%-6d dscenarios=%s wall=%v\n",
		reference.States(), reference.DScenarios(), reference.Wall())

	for _, bits := range []int{1, 2} {
		sharded, err := sde.RunScenarioSharded(scenario, bits)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d shards:  states=%-6d dscenarios=%s makespan=%v\n",
			len(sharded.Shards), sharded.States(), sharded.DScenarios(), sharded.Wall())
		if sharded.DScenarios().Cmp(reference.DScenarios()) != 0 {
			log.Fatal("shard union does not cover the unsharded space")
		}
		for _, sh := range sharded.Shards {
			fmt.Printf("   shard %d pins %v -> %d states\n",
				sh.Shard, sh.Pin, sh.Report.States())
		}
	}

	// The adaptive scheduler needs no shard count at all: it starts from
	// one coarse shard and splits stragglers in place while a bounded
	// worker pool drains the queue, with a shared solver cache absorbing
	// repeated constraint queries across shards.
	adaptive, err := sde.RunScenarioShardedWith(scenario, sde.ShardConfig{
		Workers:           4,
		MaxSplitBits:      scenario.MaxShardBits(),
		SplitThreshold:    64,
		SharedSolverCache: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if adaptive.DScenarios().Cmp(reference.DScenarios()) != 0 {
		log.Fatal("adaptive union does not cover the unsharded space")
	}
	fmt.Printf("\nadaptive:  states=%-6d dscenarios=%s makespan=%v\n",
		adaptive.States(), adaptive.DScenarios(), adaptive.Sched.Elapsed)
	fmt.Println("telemetry:", adaptive.Sched)

	fmt.Println("\nEvery sharding covers the identical dscenario space; shards trade")
	fmt.Println("some state sharing (their totals exceed the unsharded count) for")
	fmt.Println("embarrassing parallelism across cores. The adaptive scheduler keeps")
	fmt.Println("light regions coarse and only subdivides observed stragglers.")
}
