// Gridcollect: the paper's evaluation scenario (§IV-A) at laptop scale.
//
// A 5x5 grid of sensor nodes runs a Rime-style data-collection stack: the
// bottom-right node sends a data packet every second towards the sink in
// the top-left corner along a preconfigured staircase route; every
// transmission is a link-layer broadcast perceived by the sender's radio
// neighbours; nodes on the data path symbolically drop their first
// received packet. The same workload is symbolically executed under all
// three state mapping algorithms, demonstrating the paper's headline
// result: identical dscenario coverage at very different state counts.
package main

import (
	"fmt"
	"log"

	"sde"
	"sde/internal/trace"
)

func main() {
	fmt.Println("Symbolic distributed execution of a 5x5 sensornet (25 nodes)")
	fmt.Println("Workload: multihop collect, 3 packets, symbolic drops on the data path")
	fmt.Println()

	var reports []*sde.Report
	for _, algo := range sde.Algorithms {
		scenario, err := sde.GridCollectScenario(sde.GridCollectOptions{
			Dim:       5,
			Algorithm: algo,
			Packets:   3,
			DropNodes: sde.DropRoute,
		})
		if err != nil {
			log.Fatal(err)
		}
		report, err := sde.RunScenario(scenario)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, report)
		fmt.Println(report.Summary())
	}

	// All three algorithms must represent exactly the same set of
	// concrete network scenarios.
	fmt.Println()
	base := reports[0].DScenarios()
	for _, r := range reports[1:] {
		if r.DScenarios().Cmp(base) != 0 {
			log.Fatalf("dscenario counts diverge: %v vs %v", r.DScenarios(), base)
		}
	}
	fmt.Printf("All algorithms cover the same %s dscenarios.\n", base)
	cob, sds := reports[0], reports[2]
	fmt.Printf("SDS held %.1fx fewer states than COB (%d vs %d).\n",
		float64(cob.States())/float64(sds.States()), sds.States(), cob.States())

	// Explode a few dscenarios of the compact SDS representation into
	// concrete test cases (§IV-C).
	fmt.Println("\nFirst concrete test cases (drop decision per armed node, 1 = delivered):")
	err := sds.StreamTestCases(4, func(tc trace.TestCase) error {
		fmt.Println(" ", tc.String())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
