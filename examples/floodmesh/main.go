// Floodmesh: the limitation discussed in the paper's §IV-C.
//
// On a full-mesh flooding workload — every node rebroadcasts every new
// packet to all k-1 neighbours — there are no bystanders for SDS to save:
// every state is a sender, a target, or a rival of nearly every
// transmission. The state-count advantage of COW and SDS over COB
// collapses compared to the sparse-grid scenario ("it is easy to set-up
// test scenarios or applications where COW and SDS algorithms perform
// nearly as bad as COB").
package main

import (
	"fmt"
	"log"

	"sde"
)

func main() {
	fmt.Println("Full-mesh flooding, 5 nodes, symbolic drop at every receiver")
	fmt.Println()
	states := map[sde.Algorithm]int{}
	for _, algo := range sde.Algorithms {
		scenario, err := sde.FloodScenario(sde.FloodOptions{
			K:         5,
			Algorithm: algo,
			Packets:   1,
			DropAll:   true,
			Caps:      sde.Caps{MaxStates: 300000},
		})
		if err != nil {
			log.Fatal(err)
		}
		report, err := sde.RunScenario(scenario)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.Summary())
		states[algo] = report.States()
	}

	fmt.Println()
	fmt.Printf("COW/SDS state ratio: %.2fx (sparse grids reach far higher ratios)\n",
		float64(states[sde.COW])/float64(states[sde.SDS]))
	fmt.Printf("COB/SDS state ratio: %.2fx\n",
		float64(states[sde.COB])/float64(states[sde.SDS]))
	fmt.Println("\nDense communication leaves no bystanders to share, so the compact")
	fmt.Println("representations buy little here — exactly the paper's §IV-C caveat.")
}
