package sde_test

import (
	"strings"
	"testing"

	"sde"
	"sde/internal/trace"
)

// runForDiff executes a scenario and collects every generated test case.
func runForDiff(t *testing.T, s sde.Scenario) (*sde.Report, []string) {
	t.Helper()
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	var cases []string
	err = report.StreamTestCases(0, func(tc trace.TestCase) error {
		cases = append(cases, tc.String())
		return nil
	})
	if err != nil {
		t.Fatalf("StreamTestCases: %v", err)
	}
	return report, cases
}

// diffReports requires the two runs to be observably identical: states,
// dscenario counts, fingerprint sets, and test-case streams.
func diffReports(t *testing.T, on, off *sde.Report, onCases, offCases []string) {
	t.Helper()
	if on.States() != off.States() {
		t.Errorf("states = %d speculative, %d synchronous", on.States(), off.States())
	}
	if on.DScenarios().Cmp(off.DScenarios()) != 0 {
		t.Errorf("dscenarios = %v speculative, %v synchronous",
			on.DScenarios(), off.DScenarios())
	}
	onSet, offSet := explodeFingerprints(on), explodeFingerprints(off)
	if len(onSet) != len(offSet) {
		t.Fatalf("%d distinct fingerprints speculative, %d synchronous",
			len(onSet), len(offSet))
	}
	for fp := range offSet {
		if !onSet[fp] {
			t.Fatal("speculative run is missing a dscenario state fingerprint")
		}
	}
	if len(onCases) != len(offCases) {
		t.Fatalf("%d test cases speculative, %d synchronous", len(onCases), len(offCases))
	}
	for i := range offCases {
		if onCases[i] != offCases[i] {
			t.Fatalf("test case %d diverges:\n speculative: %s\n synchronous: %s",
				i, onCases[i], offCases[i])
		}
	}
}

// TestSpeculationSoundness is the speculative-fork pipeline's whole-run
// acceptance gate: on the threshold-alarm scenario — whose symbolic
// sensor reading makes every node branch in the VM, the exact queries the
// pipeline overlaps — a run with the pipeline enabled (the default) and a
// fully synchronous run must produce identical test-case sets and
// identical dscenario state fingerprints for each mapping algorithm.
// Resolution barriers drain verdicts in creation order, so speculation
// must never change any observable output.
func TestSpeculationSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-run differential; CI runs it in a dedicated -count=10 step")
	}
	for _, algo := range []sde.Algorithm{sde.COB, sde.COW, sde.SDS} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			build := func() sde.Scenario {
				s, err := sde.ThresholdScenario(sde.ThresholdOptions{
					K:         5,
					Algorithm: algo,
				})
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			on, onCases := runForDiff(t, build())
			off, offCases := runForDiff(t, build().WithoutSpeculation())

			if on.SpecStats().Submitted == 0 {
				t.Error("speculative run submitted no speculations")
			}
			if off.SpecStats().Submitted != 0 {
				t.Errorf("synchronous run submitted %d speculations",
					off.SpecStats().Submitted)
			}
			diffReports(t, on, off, onCases, offCases)
		})
	}
}

// TestNegativeWorkerRejection: negative worker counts must be rejected
// with a clear error at every public layer instead of silently falling
// back to a default pool size.
func TestNegativeWorkerRejection(t *testing.T) {
	s, err := sde.ThresholdScenario(sde.ThresholdOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sde.RunScenario(s.WithSpeculation(-1)); err == nil ||
		!strings.Contains(err.Error(), "SpecWorkers") {
		t.Errorf("RunScenario with SpecWorkers=-1 returned %v", err)
	}
	if _, err := sde.RunScenarioShardedWith(s, sde.ShardConfig{Workers: -2}); err == nil ||
		!strings.Contains(err.Error(), "Workers") {
		t.Errorf("sharded run with Workers=-2 returned %v", err)
	}
	if _, err := sde.RunScenarioShardedWith(s, sde.ShardConfig{SpecWorkers: -1}); err == nil ||
		!strings.Contains(err.Error(), "SpecWorkers") {
		t.Errorf("sharded run with SpecWorkers=-1 returned %v", err)
	}
}

// TestSpeculationWorkloadSoundness runs the same differential on the
// assume-heavy benchmark workload, where nearly every solver query rides
// the pipeline and barriers rewind speculative executions — the
// worst-case path for a determinism bug.
func TestSpeculationWorkloadSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-run differential; CI runs it in a dedicated -count=10 step")
	}
	build := func() sde.Scenario {
		s, err := sde.SpeculationWorkloadScenario(sde.SpeculationWorkloadOptions{
			Algorithm:   sde.SDS,
			Depth:       8,
			Activations: 2,
			Width:       8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	on, onCases := runForDiff(t, build().WithSpeculation(2))
	off, offCases := runForDiff(t, build().WithoutSpeculation())
	if on.SpecStats().Submitted == 0 {
		t.Error("workload run submitted no speculations")
	}
	diffReports(t, on, off, onCases, offCases)
}
