package sde

import (
	"fmt"
	"sort"

	"sde/internal/rime"
	"sde/internal/sim"
)

// GridCollectOptions parameterises the paper's evaluation workload
// (§IV-A): a dim x dim grid where the bottom-right node sends a data
// packet every second towards the sink in the top-left corner along a
// preconfigured staircase route; every transmission is perceived by the
// sender's neighbours; configured nodes symbolically drop their first
// received packet.
type GridCollectOptions struct {
	// Dim is the grid edge length; the paper uses 5, 7, and 10.
	Dim int
	// Algorithm is the state mapping algorithm (default SDS).
	Algorithm Algorithm
	// Packets is the number of data packets the source emits (default
	// 10 — one per second for the paper's 10-second simulation).
	Packets uint32
	// IntervalTicks is the send period (default 1000 ticks = 1 s at the
	// 1 ms tick the built-in scenarios use).
	IntervalTicks uint64
	// DropNodes selects which nodes symbolically drop their first
	// packet: DropRoute (default) arms the data-path nodes; DropRouteAndNeighbors
	// additionally arms their radio neighbours (the paper's full setup);
	// DropNone disables failures.
	DropNodes DropSelection
	// MaxDropNodes caps how many of the selected nodes are armed,
	// counted from the source end of the route (0 = no cap). Each armed
	// node doubles the dscenario space, so this is the scale knob that
	// keeps a sweep within a time budget.
	MaxDropNodes int
	// Caps bound the run (optional).
	Caps Caps
}

// DropSelection names a node set for the symbolic drop failure.
type DropSelection int

// Drop selections for GridCollectOptions.
const (
	DropRoute             DropSelection = iota // data-path nodes (default)
	DropRouteAndNeighbors                      // data path plus its radio neighbours
	DropNone                                   // no failures: a single concrete run
)

// String returns a short name for the selection.
func (d DropSelection) String() string {
	switch d {
	case DropRoute:
		return "route"
	case DropRouteAndNeighbors:
		return "route+neighbors"
	case DropNone:
		return "none"
	default:
		return fmt.Sprintf("DropSelection(%d)", int(d))
	}
}

// GridCollectScenario builds the paper's grid data-collection scenario.
func GridCollectScenario(opts GridCollectOptions) (Scenario, error) {
	if opts.Dim < 2 {
		return Scenario{}, fmt.Errorf("sde: grid dimension %d too small", opts.Dim)
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = SDS
	}
	if opts.Packets == 0 {
		opts.Packets = 10
	}
	if opts.IntervalTicks == 0 {
		opts.IntervalTicks = 1000
	}
	g := sim.NewGrid(opts.Dim, opts.Dim)
	source, sink := g.K()-1, 0
	route := g.StaircaseRoute(source, sink)

	prog, err := rime.CollectProgram()
	if err != nil {
		return Scenario{}, fmt.Errorf("sde: %w", err)
	}
	cc := rime.CollectConfig{
		Source:   source,
		Sink:     sink,
		Route:    route,
		Interval: opts.IntervalTicks,
		Packets:  opts.Packets,
	}
	nodeInit, err := cc.NodeInit(g.K())
	if err != nil {
		return Scenario{}, fmt.Errorf("sde: %w", err)
	}
	var dropNodes []int
	switch opts.DropNodes {
	case DropRoute:
		dropNodes = route
	case DropRouteAndNeighbors:
		dropNodes = sim.RouteNeighborhood(g, route)
	case DropNone:
	default:
		return Scenario{}, fmt.Errorf("sde: unknown drop selection %d", opts.DropNodes)
	}
	if opts.MaxDropNodes > 0 && len(dropNodes) > opts.MaxDropNodes {
		dropNodes = dropNodes[:opts.MaxDropNodes]
	}
	var failures FailurePlan
	if len(dropNodes) > 0 {
		failures.DropFirst = sim.NodeSet(dropNodes)
	}
	// Declare the scenario's asymmetries honestly for symmetry reduction:
	// source and sink have distinct roles and the staircase route is a
	// static per-node function, so the stabilized automorphism group is
	// (correctly) trivial — WithReduction prunes nothing here but the
	// declaration documents why, and keeps the reduction layer from ever
	// treating this node-aware workload as symmetric.
	labels := make([]uint64, g.K())
	labels[source] = 1
	labels[sink] = 2
	return Scenario{
		shardable: shardableNodes(g, source, failures.DropFirst),
		desc: fmt.Sprintf("grid %dx%d collect, %d packets, %s, drops=%v",
			opts.Dim, opts.Dim, opts.Packets, opts.Algorithm, opts.DropNodes),
		cfg: sim.Config{
			Topo:      g,
			Prog:      prog,
			Algorithm: opts.Algorithm,
			Horizon:   opts.IntervalTicks*uint64(opts.Packets) + opts.IntervalTicks,
			NodeInit:  nodeInit,
			Failures:  failures,
			Caps:      opts.Caps,
			Symmetry: &sim.ReduceSymmetry{
				Labels:   labels,
				NextHops: sim.NextHops(g.K(), route),
			},
		},
	}, nil
}

// LineCollectOptions parameterises a k-node line variant of the collect
// scenario — the topology of the paper's §II-B examples.
type LineCollectOptions struct {
	K         int
	Algorithm Algorithm
	Packets   uint32
	// Failures applies arbitrary failure models (optional).
	Failures FailurePlan
	Caps     Caps
}

// LineCollectScenario builds a line-topology collect scenario: node K-1
// sends towards the sink at node 0.
func LineCollectScenario(opts LineCollectOptions) (Scenario, error) {
	if opts.K < 2 {
		return Scenario{}, fmt.Errorf("sde: line length %d too small", opts.K)
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = SDS
	}
	if opts.Packets == 0 {
		opts.Packets = 10
	}
	route := make([]int, opts.K)
	for i := range route {
		route[i] = opts.K - 1 - i
	}
	prog, err := rime.CollectProgram()
	if err != nil {
		return Scenario{}, fmt.Errorf("sde: %w", err)
	}
	cc := rime.CollectConfig{
		Source:   opts.K - 1,
		Sink:     0,
		Route:    route,
		Interval: 1000,
		Packets:  opts.Packets,
	}
	nodeInit, err := cc.NodeInit(opts.K)
	if err != nil {
		return Scenario{}, fmt.Errorf("sde: %w", err)
	}
	topo := sim.NewLine(opts.K)
	return Scenario{
		shardable: shardableNodes(topo, opts.K-1, opts.Failures.DropFirst),
		desc:      fmt.Sprintf("line %d collect, %d packets, %s", opts.K, opts.Packets, opts.Algorithm),
		cfg: sim.Config{
			Topo:      topo,
			Prog:      prog,
			Algorithm: opts.Algorithm,
			Horizon:   1000*uint64(opts.Packets) + 1000,
			NodeInit:  nodeInit,
			Failures:  opts.Failures,
			Caps:      opts.Caps,
		},
	}, nil
}

// RunicastOptions parameterises the reliable-unicast workload: a sender
// transmits acknowledged, retransmitted DATA packets to a neighbour.
// Under symbolic drops the protocol heals, so SDE proves the delivery
// assertions hold on every explored path.
type RunicastOptions struct {
	K         int // line length; node K-1 sends to node K-2
	Algorithm Algorithm
	Packets   uint32
	Failures  FailurePlan
	Caps      Caps
}

// RunicastScenario builds a reliable-unicast scenario on a line.
func RunicastScenario(opts RunicastOptions) (Scenario, error) {
	if opts.K < 2 {
		return Scenario{}, fmt.Errorf("sde: line length %d too small", opts.K)
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = SDS
	}
	if opts.Packets == 0 {
		opts.Packets = 2
	}
	prog, err := rime.RunicastProgram()
	if err != nil {
		return Scenario{}, fmt.Errorf("sde: %w", err)
	}
	rc := rime.RunicastConfig{
		Sender:   opts.K - 1,
		Receiver: opts.K - 2,
		Interval: 100,
		Packets:  opts.Packets,
	}
	topo := sim.NewLine(opts.K)
	return Scenario{
		shardable: shardableNodes(topo, rc.Sender, opts.Failures.DropFirst),
		desc: fmt.Sprintf("line %d runicast, %d packets, %s",
			opts.K, opts.Packets, opts.Algorithm),
		cfg: sim.Config{
			Topo:      topo,
			Prog:      prog,
			Algorithm: opts.Algorithm,
			Horizon:   100*uint64(opts.Packets) + rime.RuRTO*(rime.RuMaxRetries+3) + 200,
			NodeInit:  rc.NodeInit(),
			Failures:  opts.Failures,
			Caps:      opts.Caps,
		},
	}, nil
}

// ThresholdOptions parameterises the symbolic-sensor workload: the
// source samples a *symbolic* reading (§II-A "symbolic packet header")
// and broadcasts it; nodes alarm and forward only above-threshold
// readings, so every node's behaviour branches on the same symbolic
// variable and test cases carry cross-node-consistent concrete readings.
type ThresholdOptions struct {
	K         int // line length; node K-1 samples and broadcasts
	Algorithm Algorithm
	Threshold uint64 // alarm threshold for the 16-bit reading
	Caps      Caps
}

// ThresholdScenario builds the symbolic-sensor-data scenario on a line.
func ThresholdScenario(opts ThresholdOptions) (Scenario, error) {
	if opts.K < 2 {
		return Scenario{}, fmt.Errorf("sde: line length %d too small", opts.K)
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = SDS
	}
	if opts.Threshold == 0 {
		opts.Threshold = 500
	}
	prog, err := rime.ThresholdProgram()
	if err != nil {
		return Scenario{}, fmt.Errorf("sde: %w", err)
	}
	tc := rime.ThresholdConfig{Source: opts.K - 1, Threshold: opts.Threshold, Interval: 10}
	return Scenario{
		desc: fmt.Sprintf("line %d threshold alarm (symbolic reading > %d), %s",
			opts.K, opts.Threshold, opts.Algorithm),
		cfg: sim.Config{
			Topo:      sim.NewLine(opts.K),
			Prog:      prog,
			Algorithm: opts.Algorithm,
			Horizon:   500,
			NodeInit:  tc.NodeInit(),
			Caps:      opts.Caps,
		},
	}, nil
}

// DiscoveryOptions parameterises the neighbour-discovery workload, the
// other flooding-class protocol §IV-C names. Every node beacons, so every
// node is a sender and almost nothing is a bystander.
type DiscoveryOptions struct {
	Topology  Topology
	Algorithm Algorithm
	Rounds    uint32 // beacons per node (default 1)
	// DropAll arms the symbolic drop on every node.
	DropAll bool
	Caps    Caps
}

// DiscoveryScenario builds a neighbour-discovery scenario on an arbitrary
// topology.
func DiscoveryScenario(opts DiscoveryOptions) (Scenario, error) {
	if opts.Topology == nil {
		return Scenario{}, fmt.Errorf("sde: discovery scenario needs a topology")
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = SDS
	}
	if opts.Rounds == 0 {
		opts.Rounds = 1
	}
	prog, err := rime.DiscoveryProgram()
	if err != nil {
		return Scenario{}, fmt.Errorf("sde: %w", err)
	}
	dc := rime.DiscoveryConfig{Interval: 1000, Rounds: opts.Rounds}
	var failures FailurePlan
	if opts.DropAll {
		nodes := make([]int, opts.Topology.K())
		for n := range nodes {
			nodes[n] = n
		}
		failures.DropFirst = sim.NodeSet(nodes)
	}
	return Scenario{
		// Every node beacons unconditionally, so every armed node's drop
		// decision materialises: all are shardable.
		shardable: allArmed(failures.DropFirst),
		desc: fmt.Sprintf("%s discovery, %d rounds, %s",
			opts.Topology.Name(), opts.Rounds, opts.Algorithm),
		cfg: sim.Config{
			Topo:      opts.Topology,
			Prog:      prog,
			Algorithm: opts.Algorithm,
			Horizon:   1000*uint64(opts.Rounds) + 2000,
			NodeInit:  dc.NodeInit(),
			Failures:  failures,
			Caps:      opts.Caps,
		},
	}, nil
}

func allArmed(armed map[int]bool) []int {
	out := make([]int, 0, len(armed))
	for n := range armed {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// shardableNodes returns the armed drop nodes whose first reception is
// guaranteed in every execution — the source's radio neighbours, which
// always perceive its unconditional first broadcast. Only their decisions
// partition the dscenario space soundly (see RunScenarioSharded).
func shardableNodes(topo sim.Topology, source int, armed map[int]bool) []int {
	var out []int
	for _, nb := range topo.Neighbors(source) {
		if armed[nb] {
			out = append(out, nb)
		}
	}
	return out
}

// FloodOptions parameterises the §IV-C limitation workload: network-wide
// flooding on a dense topology, where the bystander-saving structure of
// COW and SDS buys little.
type FloodOptions struct {
	K         int
	Algorithm Algorithm
	Packets   uint32
	// DropAll arms the symbolic drop on every node but the source.
	DropAll bool
	Caps    Caps
}

// FloodScenario builds a full-mesh flooding scenario.
func FloodScenario(opts FloodOptions) (Scenario, error) {
	if opts.K < 2 {
		return Scenario{}, fmt.Errorf("sde: mesh size %d too small", opts.K)
	}
	if opts.Algorithm == 0 {
		opts.Algorithm = SDS
	}
	if opts.Packets == 0 {
		opts.Packets = 1
	}
	prog, err := rime.FloodProgram()
	if err != nil {
		return Scenario{}, fmt.Errorf("sde: %w", err)
	}
	fc := rime.FloodConfig{Source: 0, Interval: 1000, Packets: opts.Packets}
	var failures FailurePlan
	if opts.DropAll {
		nodes := make([]int, 0, opts.K-1)
		for n := 1; n < opts.K; n++ {
			nodes = append(nodes, n)
		}
		failures.DropFirst = sim.NodeSet(nodes)
	}
	mesh := sim.NewFullMesh(opts.K)
	return Scenario{
		shardable: shardableNodes(mesh, 0, failures.DropFirst),
		desc:      fmt.Sprintf("mesh %d flood, %d packets, %s", opts.K, opts.Packets, opts.Algorithm),
		cfg: sim.Config{
			Topo:      mesh,
			Prog:      prog,
			Algorithm: opts.Algorithm,
			Horizon:   1000*uint64(opts.Packets) + 1000,
			NodeInit:  fc.NodeInit(),
			Failures:  failures,
			Caps:      opts.Caps,
		},
	}, nil
}
