package sde_test

import (
	"fmt"
	"testing"

	"sde"
)

// BenchmarkSpeculativePipeline is the speculative-fork pipeline's
// acceptance benchmark: the entangled assume-chain workload (see
// SpeculationWorkloadScenario) run synchronously versus through the
// asynchronous pipeline at several worker counts. The speedup is
// algorithmic, not just parallel — deferring a chain of d assumes to one
// barrier turns d incremental solves into one deep solve plus d-1
// subsumption hits — so it survives single-core machines.
func BenchmarkSpeculativePipeline(b *testing.B) {
	build := func() sde.Scenario {
		s, err := sde.SpeculationWorkloadScenario(sde.SpeculationWorkloadOptions{
			Algorithm:   sde.SDS,
			Depth:       32,
			Activations: 2,
			Width:       8,
		})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	modes := []struct {
		name     string
		scenario func() sde.Scenario
	}{
		{"sync", func() sde.Scenario { return build().WithoutSpeculation() }},
		{"spec-w1", func() sde.Scenario { return build().WithSpeculation(1) }},
		{"spec-w2", func() sde.Scenario { return build().WithSpeculation(2) }},
		{"spec-w4", func() sde.Scenario { return build().WithSpeculation(4) }},
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var solves, submitted int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				report, err := sde.RunScenario(mode.scenario())
				if err != nil {
					b.Fatal(err)
				}
				sp := report.SpecStats()
				solves, submitted = sp.Solves, sp.Submitted
			}
			b.ReportMetric(float64(solves), "specsolves/op")
			b.ReportMetric(float64(submitted), "specsubmitted/op")
			_ = fmt.Sprint(solves)
		})
	}
}
