package sde_test

import (
	"fmt"
	"sort"

	"sde"
)

// ExampleExplore demonstrates regular symbolic execution (paper Figure 1):
// every feasible path of a single program is explored and solved to a
// concrete test case.
func ExampleExplore() {
	b := sde.NewProgramBuilder()
	f := b.Func("main")
	f.Sym(sde.R1, "x", 8)
	f.UltI(sde.R2, sde.R1, 100)
	f.BrNZ(sde.R2, "small")
	f.MovI(sde.R3, 2)
	f.Ret()
	f.Label("small")
	f.MovI(sde.R3, 1)
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		panic(err)
	}

	report, err := sde.Explore(prog, "main", sde.ExploreOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("paths:", len(report.Paths))
	var regions []string
	for _, p := range report.Paths {
		x := p.TestCase["x_n0_0"]
		if x < 100 {
			regions = append(regions, "x<100")
		} else {
			regions = append(regions, "x>=100")
		}
	}
	sort.Strings(regions)
	fmt.Println("regions:", regions)
	// Output:
	// paths: 2
	// regions: [x<100 x>=100]
}

// ExampleRunScenario runs the paper's grid collect workload under SDS and
// prints the dscenario coverage.
func ExampleRunScenario() {
	scenario, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:       3,
		Algorithm: sde.SDS,
		Packets:   2,
	})
	if err != nil {
		panic(err)
	}
	report, err := sde.RunScenario(scenario)
	if err != nil {
		panic(err)
	}
	fmt.Println("dscenarios:", report.DScenarios())
	fmt.Println("violations:", len(report.Violations()))
	// Output:
	// dscenarios: 22
	// violations: 0
}

// ExampleReport_TestCases generates one concrete test case per explored
// network scenario (paper §IV-C).
func ExampleReport_TestCases() {
	scenario, err := sde.LineCollectScenario(sde.LineCollectOptions{
		K:         3,
		Algorithm: sde.SDS,
		Packets:   2,
		Failures:  sde.FailurePlan{DropFirst: map[int]bool{1: true}},
	})
	if err != nil {
		panic(err)
	}
	report, err := sde.RunScenario(scenario)
	if err != nil {
		panic(err)
	}
	cases, err := report.TestCases(0)
	if err != nil {
		panic(err)
	}
	for _, tc := range cases {
		fmt.Println(tc)
	}
	// Output:
	// testcase 0: drop_n1_r0=0
	// testcase 1: drop_n1_r0=1
}

// ExampleRunScenarioSharded partitions the dscenario space and explores
// the shards on independent engines (the paper's §VI parallelisation).
func ExampleRunScenarioSharded() {
	scenario, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:       3,
		Algorithm: sde.SDS,
		Packets:   2,
		DropNodes: sde.DropRouteAndNeighbors,
	})
	if err != nil {
		panic(err)
	}
	unsharded, err := sde.RunScenario(scenario)
	if err != nil {
		panic(err)
	}
	sharded, err := sde.RunScenarioSharded(scenario, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("shards:", len(sharded.Shards))
	fmt.Println("coverage matches:", sharded.DScenarios().Cmp(unsharded.DScenarios()) == 0)
	// Output:
	// shards: 4
	// coverage matches: true
}
