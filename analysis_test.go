package sde_test

import (
	"strings"
	"testing"

	"sde"
)

func gridReport(t *testing.T, algo sde.Algorithm) *sde.Report {
	t.Helper()
	s, err := sde.GridCollectScenario(sde.GridCollectOptions{
		Dim:       3,
		Algorithm: algo,
		Packets:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestDuplicateStatesByAlgorithm checks the §III-D accounting through
// the public API: SDS holds zero duplicates, COB and COW hold some.
func TestDuplicateStatesByAlgorithm(t *testing.T) {
	if got := gridReport(t, sde.SDS).DuplicateStates(); got != 0 {
		t.Errorf("SDS duplicates = %d, want 0", got)
	}
	if got := gridReport(t, sde.COB).DuplicateStates(); got == 0 {
		t.Error("COB reports no duplicates; scenario degenerate")
	}
	if got := gridReport(t, sde.COW).DuplicateStates(); got == 0 {
		t.Error("COW reports no duplicates; scenario degenerate")
	}
}

func TestStatesPerNode(t *testing.T) {
	report := gridReport(t, sde.SDS)
	per := report.StatesPerNode()
	if len(per) != 9 {
		t.Fatalf("nodes = %d, want 9", len(per))
	}
	total := 0
	for node, n := range per {
		if n < 1 {
			t.Errorf("node %d has %d states; every node needs at least one", node, n)
		}
		total += n
	}
	if total != report.States() {
		t.Errorf("per-node sum %d != total %d", total, report.States())
	}
	// Route nodes accumulate more states than the untouched corner
	// (node 2 is off the 8-7-4-3-0 staircase and its neighbourhood).
	if per[2] >= per[4] {
		t.Errorf("off-route node 2 has %d states, route node 4 has %d", per[2], per[4])
	}
}

func TestPopulationSummary(t *testing.T) {
	report := gridReport(t, sde.COW)
	pop := report.Population()
	if pop.MinStates < 1 || pop.MaxStates < pop.MinStates {
		t.Errorf("population = %+v", pop)
	}
	if pop.MeanStates < float64(pop.MinStates) || pop.MeanStates > float64(pop.MaxStates) {
		t.Errorf("mean %f outside [min, max]", pop.MeanStates)
	}
	if pop.MedianStates < pop.MinStates || pop.MedianStates > pop.MaxStates {
		t.Errorf("median %d outside [min, max]", pop.MedianStates)
	}
}

func TestViolationSummaryGroups(t *testing.T) {
	s, err := sde.LineCollectScenario(sde.LineCollectOptions{
		K:         3,
		Algorithm: sde.SDS,
		Packets:   3,
		Failures: sde.FailurePlan{
			DuplicateFirst: map[int]bool{0: true},
			DropFirst:      map[int]bool{1: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	sum := report.ViolationSummary()
	if len(sum) == 0 {
		t.Fatal("no violations summarised")
	}
	for _, v := range sum {
		if v.Count < 1 || v.Msg == "" {
			t.Errorf("bad summary entry %+v", v)
		}
		if v.Witness == nil {
			t.Errorf("summary entry lacks a witness")
		}
	}
	// Total multiplicity equals the raw violation count.
	total := 0
	for _, v := range sum {
		total += v.Count
	}
	if total != len(report.Violations()) {
		t.Errorf("summary total %d != %d raw violations", total, len(report.Violations()))
	}
}

func TestAnalysisRendering(t *testing.T) {
	report := gridReport(t, sde.SDS)
	out := report.Analysis()
	for _, want := range []string{"states:", "0 duplicates", "dstates", "violations: none"} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis lacks %q:\n%s", want, out)
		}
	}
	cob := gridReport(t, sde.COB)
	if !strings.Contains(cob.Analysis(), "dscenarios") {
		t.Errorf("COB analysis should name dscenarios:\n%s", cob.Analysis())
	}
}
