// Package prof wires the standard pprof profilers to CLI flags, so both
// command-line tools expose the same -cpuprofile/-memprofile workflow.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpu is a non-empty path. The returned
// stop function ends the CPU profile and, when mem is a non-empty path,
// writes a heap profile; call it exactly once, after the workload.
func Start(cpu, mem string) (func() error, error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			defer f.Close()
			// Flush pending frees so the profile reflects live heap.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
