package merge

// Snapshot surface: a merged frontier is durable state — reps carry live
// machines and frozen members only shells — so checkpoints serialize the
// rep machine, each member's identity, its substitution pairs (in creation
// order; the expressions themselves live in the snapshot's shared DAG
// table), and the step-accounting bases. Restore re-links restored shells
// to their restored rep and rebuilds the derived lookup maps; substitution
// memos are derived and start empty.

import (
	"fmt"

	"sde/internal/expr"
	"sde/internal/vm"
)

// MemberExport is one member's durable record.
type MemberExport struct {
	St        *vm.State
	StepsBase uint64
	Carried   uint64
	Subs      []SubPair
}

// RepExport is one rep's durable record; members are in ascending id
// order and members[0] shares the rep's id.
type RepExport struct {
	Rep     *vm.State
	Members []MemberExport
}

// Export returns the merged frontier in ascending rep-id order.
func (m *Manager) Export() []RepExport {
	out := make([]RepExport, 0, len(m.reps))
	for _, r := range m.sortedReps() {
		re := RepExport{Rep: r.st, Members: make([]MemberExport, len(r.members))}
		for i, mb := range r.members {
			re.Members[i] = MemberExport{
				St:        mb.st,
				StepsBase: mb.stepsBase,
				Carried:   mb.carried,
				Subs:      mb.subOrder,
			}
		}
		out = append(out, re)
	}
	return out
}

// AdoptRestored re-links one checkpoint-restored rep with its restored
// member shells. The rep state was restored like any frontier state but is
// not part of the engine's state table; this call marks it as a live rep
// and rebuilds the manager's records.
func (m *Manager) AdoptRestored(rep *vm.State, members []MemberExport) error {
	if len(members) < 2 {
		return fmt.Errorf("merge: restored rep %d has %d members", rep.ID(), len(members))
	}
	rec := &repRec{st: rep, node: rep.NodeID()}
	var prev uint64
	for i, me := range members {
		if me.St.NodeID() != rep.NodeID() {
			return fmt.Errorf("merge: restored rep %d member %d crosses nodes", rep.ID(), me.St.ID())
		}
		if i == 0 && me.St.ID() != rep.ID() {
			return fmt.Errorf("merge: restored rep %d does not share its first member's id %d", rep.ID(), me.St.ID())
		}
		if i > 0 && me.St.ID() <= prev {
			return fmt.Errorf("merge: restored rep %d member ids out of order", rep.ID())
		}
		prev = me.St.ID()
		sub := make(map[*expr.Expr]*expr.Expr, len(me.Subs))
		for _, p := range me.Subs {
			sub[p.Key] = p.Val
		}
		rec.members = append(rec.members, &member{
			st:        me.St,
			sub:       sub,
			subOrder:  me.Subs,
			memo:      make(map[*expr.Expr]*expr.Expr),
			stepsBase: me.StepsBase,
			carried:   me.Carried,
		})
	}
	rec.maxID = prev
	rep.MarkMergedRep()
	m.reps[rep] = rec
	for _, mb := range rec.members {
		m.byMem[mb.st] = rec
	}
	return nil
}
