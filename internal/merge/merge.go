// Package merge implements ITE-based state merging, the frontier-reduction
// subsystem: sibling states of one node that differ at a bounded number of
// locations are fused into a single merged representative ("rep") whose
// differing values become hash-consed ite(Δ, v1, v2) expressions and whose
// path condition disjoins the members' path suffixes, following the
// representation of "State Merging with Quantifiers in Symbolic Execution"
// and the Cloud9/KLEE query-cost lineage for the merge-vs-fork decision.
//
// The design is execute-through with exact order: a rep executes the
// members' shared events once, but only while every control decision is
// member-uniform — each member's substitution of the condition must fold
// to the same constant. The first disagreement, genuinely symbolic
// condition, or observable instruction (send, assert, symbolic address)
// splits the rep back into its exact members, reconstructed by
// substituting each member's side through the rep's machine. Because the
// expression DAG is hash-consed and substitution rebuilds through the same
// smart constructors, a reconstructed member is pointer-identical to what
// its own unmerged execution would have produced: fingerprints, solver
// queries, violations, and generated test cases are bit-for-bit those of a
// merge-off run. Reps therefore never fork, never add constraints, and
// never touch the solver; merging changes how many live machines exist,
// not what the exploration observes.
//
// The scheduler-facing ordering guarantee (a rep must not execute ahead of
// an unrelated state that an unmerged run would have interleaved between
// its members) is enforced by the engine's pop-time gate, not here; this
// package owns which states fuse, when reps split, and the bookkeeping
// that makes the split exact.
package merge

import (
	"fmt"
	"sort"

	"sde/internal/expr"
	"sde/internal/vm"
)

// Driver is the scheduling interface the engine exposes to the manager so
// split members re-enter exploration exactly where the rep stood.
type Driver interface {
	// EnqueueRunnable hands over a mid-event member (StatusRunning) for
	// immediate execution on the engine's LIFO run stack.
	EnqueueRunnable(s *vm.State)
	// ScheduleIdle (re-)schedules a quiescent state on the event heap; a
	// no-op for states with no pending events.
	ScheduleIdle(s *vm.State)
}

// Config parameterizes the manager.
type Config struct {
	// MaxSites bounds the divergence-site count of a candidate pair
	// (default 8). Pairs differing at more locations never merge.
	MaxSites int
	// MaxMembers bounds how many members one rep may accumulate through
	// chained merges (default 16).
	MaxMembers int
	// Cost decides merge vs. keep-forked for structurally mergeable
	// candidates. Defaults to DefaultCostModel.
	Cost CostModel
	// SliceStats, when non-nil, reports the solver's independence-slicing
	// counters (sliced queries, total factors) so the cost model can
	// estimate how much entangling member values through shared ite nodes
	// would hurt future queries.
	SliceStats func() (queries, factors uint64)
}

// Stats are the manager's cumulative counters.
type Stats struct {
	Merges     uint64 // accepted fusions (each hides one more live state)
	Candidates uint64 // structurally mergeable pairs considered
	Rejects    uint64 // candidates declined by the cost model
	Splits     uint64 // rep dissolutions (any cause)
	MaxMembers int    // largest member count any rep reached
	PeakMerged int    // peak number of states hidden inside reps
}

// SubPair is one substitution entry (merge-introduced ite node → this
// member's arm) in its deterministic creation order, the form snapshots
// serialize.
type SubPair struct {
	Key, Val *expr.Expr
}

// member is one fused-away state: its frozen shell, the substitution that
// reconstructs its values from the rep's, and its share of the
// instructions the rep executes on its behalf.
type member struct {
	st *vm.State
	// sub maps every merge-introduced ite reachable from the rep's values
	// to this member's arm; subOrder lists the entries in creation order
	// (map iteration is not deterministic, snapshots need an order).
	sub      map[*expr.Expr]*expr.Expr
	subOrder []SubPair
	// memo caches substitution results for the rep's lifetime — sub never
	// changes, so rewrites of shared subtrees are paid once.
	memo map[*expr.Expr]*expr.Expr
	// stepsBase is the rep's step counter when this member joined;
	// carried accumulates shared steps inherited from earlier rep
	// generations (re-merges). The member's share of merged execution is
	// carried + (rep.steps − stepsBase).
	stepsBase uint64
	carried   uint64
}

type repRec struct {
	st      *vm.State
	node    int
	members []*member // ascending member id; members[0].st.ID() == st.ID()
	maxID   uint64
}

// Manager owns the merged frontier: which reps exist, who their members
// are, and the verdict/split machinery. It implements vm.MergeHooks.
type Manager struct {
	eb    *expr.Builder
	drv   Driver
	cfg   Config
	reps  map[*vm.State]*repRec // by rep state
	byMem map[*vm.State]*repRec // frozen member → its rep
	stats Stats
}

// NewManager returns a manager wired to the given builder and driver.
func NewManager(eb *expr.Builder, drv Driver, cfg Config) *Manager {
	if cfg.MaxSites <= 0 {
		cfg.MaxSites = 8
	}
	if cfg.MaxMembers <= 0 {
		cfg.MaxMembers = 16
	}
	if cfg.Cost == nil {
		cfg.Cost = DefaultCostModel{}
	}
	return &Manager{
		eb:    eb,
		drv:   drv,
		cfg:   cfg,
		reps:  make(map[*vm.State]*repRec),
		byMem: make(map[*vm.State]*repRec),
	}
}

// Stats returns the cumulative counters.
func (m *Manager) Stats() Stats { return m.stats }

// MergedAway returns how many states are currently hidden inside reps
// (Σ members − reps).
func (m *Manager) MergedAway() int {
	n := 0
	for _, r := range m.reps {
		n += len(r.members) - 1
	}
	return n
}

// HasReps reports whether any merged rep is live.
func (m *Manager) HasReps() bool { return len(m.reps) > 0 }

// IsRep reports whether s is a live merged representative.
func (m *Manager) IsRep(s *vm.State) bool { _, ok := m.reps[s]; return ok }

// IsFrozen reports whether s is a fused-away member shell.
func (m *Manager) IsFrozen(s *vm.State) bool { _, ok := m.byMem[s]; return ok }

// RepOf returns the rep s is frozen into, or nil.
func (m *Manager) RepOf(s *vm.State) *vm.State {
	if r, ok := m.byMem[s]; ok {
		return r.st
	}
	return nil
}

// Span returns the member-id span [lo, hi] of rep s. The engine's pop-time
// gate refuses execute-through while any unrelated state with an id
// strictly inside the span is runnable at the same timestamp — that state
// would have run between the members in the unmerged interleaving.
func (m *Manager) Span(s *vm.State) (lo, hi uint64, ok bool) {
	r, found := m.reps[s]
	if !found {
		return 0, 0, false
	}
	return r.st.ID(), r.maxID, true
}

// ForEachRep calls f for every live rep in ascending rep-id order.
func (m *Manager) ForEachRep(f func(s *vm.State)) {
	for _, r := range m.sortedReps() {
		f(r.st)
	}
}

func (m *Manager) sortedReps() []*repRec {
	rs := make([]*repRec, 0, len(m.reps))
	for _, r := range m.reps {
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].st.ID() < rs[j].st.ID() })
	return rs
}

// Scan takes the quiescent states of one node that just changed (idle or
// halted, frozen shells excluded, live reps included) and greedily fuses
// structurally mergeable neighbours the cost model accepts. Newly formed
// reps are handed to the driver for scheduling; fused-away members stay in
// the engine's state table as frozen shells.
func (m *Manager) Scan(cands []*vm.State) {
	if len(cands) < 2 {
		return
	}
	buckets := make(map[uint64][]*vm.State)
	for _, s := range cands {
		h := s.MergeClassHash()
		buckets[h] = append(buckets[h], s)
	}
	// Deterministic bucket order: by smallest state id within the bucket.
	keys := make([]uint64, 0, len(buckets))
	for h, b := range buckets {
		sort.Slice(b, func(i, j int) bool { return b[i].ID() < b[j].ID() })
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool {
		return buckets[keys[i]][0].ID() < buckets[keys[j]][0].ID()
	})
	for _, h := range keys {
		b := buckets[h]
		cur := b[0]
		for _, next := range b[1:] {
			if merged, ok := m.tryFuse(cur, next); ok {
				cur = merged
			} else {
				cur = next
			}
		}
	}
}

// tryFuse attempts to fuse a (smaller id; possibly already a rep) with b
// (possibly a rep). On success it returns the new rep.
func (m *Manager) tryFuse(a, b *vm.State) (*vm.State, bool) {
	membersA, membersB := 1, 1
	if r, ok := m.reps[a]; ok {
		membersA = len(r.members)
	}
	if r, ok := m.reps[b]; ok {
		membersB = len(r.members)
	}
	if membersA+membersB > m.cfg.MaxMembers {
		return nil, false
	}
	diff, ok := vm.DiffMergeable(a, b, m.cfg.MaxSites)
	if !ok {
		return nil, false
	}
	// Path-condition split: past the longest common (pointer-identical)
	// prefix, each side's suffix conjunction is its delta. A side with an
	// empty suffix has a path condition subsuming the other's — no delta
	// could tell the members apart at split time, so such pairs never
	// merge.
	pcA, pcB := a.PathCond(), b.PathCond()
	n := 0
	for n < len(pcA) && n < len(pcB) && pcA[n] == pcB[n] {
		n++
	}
	if n == len(pcA) || n == len(pcB) {
		return nil, false
	}
	deltaA := m.conj(pcA[n:])
	deltaB := m.conj(pcB[n:])
	if deltaA.IsConst() || deltaB.IsConst() {
		return nil, false
	}
	m.stats.Candidates++
	cand := m.buildCandidate(a.NodeID(), diff, deltaA, deltaB, membersA+membersB)
	if !m.cfg.Cost.ShouldMerge(cand) {
		m.stats.Rejects++
		return nil, false
	}

	rep, subA, subB := vm.FuseStates(a, b, deltaA, diff)
	orderA := orderedPairs(m.eb, deltaA, diff, subA)
	orderB := orderedPairs(m.eb, deltaA, diff, subB)
	repPC := append([]*expr.Expr(nil), pcA[:n]...)
	if or := m.eb.Or(deltaA, deltaB); !or.IsTrue() {
		repPC = append(repPC, or)
	}
	rep.MergeSetPathCond(repPC)

	rec := &repRec{st: rep, node: a.NodeID()}
	rec.members = append(rec.members, m.absorb(a, subA, orderA, rep)...)
	rec.members = append(rec.members, m.absorb(b, subB, orderB, rep)...)
	rec.maxID = rec.members[len(rec.members)-1].st.ID()
	m.reps[rep] = rec
	for _, mb := range rec.members {
		m.byMem[mb.st] = rec
	}
	m.stats.Merges++
	if len(rec.members) > m.stats.MaxMembers {
		m.stats.MaxMembers = len(rec.members)
	}
	if away := m.MergedAway(); away > m.stats.PeakMerged {
		m.stats.PeakMerged = away
	}
	m.drv.ScheduleIdle(rep)
	return rep, true
}

// absorb turns one fusion side into member records of the new rep. A plain
// state is frozen; an old rep transfers its members with their
// substitutions composed (new-level entries first — substitution rewrites
// mapped values, so old-level entries resolve inside them) and is then
// discarded.
func (m *Manager) absorb(side *vm.State, sideSub map[*expr.Expr]*expr.Expr, sideOrder []SubPair, rep *vm.State) []*member {
	old, wasRep := m.reps[side]
	if !wasRep {
		side.MergeFreeze()
		return []*member{{
			st:        side,
			sub:       sideSub,
			subOrder:  sideOrder,
			memo:      make(map[*expr.Expr]*expr.Expr),
			stepsBase: rep.Steps(),
		}}
	}
	out := make([]*member, 0, len(old.members))
	for _, om := range old.members {
		sub := make(map[*expr.Expr]*expr.Expr, len(sideSub)+len(om.sub))
		order := make([]SubPair, 0, len(sideSub)+len(om.sub))
		for _, p := range sideOrder {
			sub[p.Key] = p.Val
			order = append(order, p)
		}
		for _, p := range om.subOrder {
			if _, dup := sub[p.Key]; dup {
				// A structurally identical ite forces identical arms; the
				// new-level entry already resolves it consistently.
				continue
			}
			sub[p.Key] = p.Val
			order = append(order, p)
		}
		out = append(out, &member{
			st:        om.st,
			sub:       sub,
			subOrder:  order,
			memo:      make(map[*expr.Expr]*expr.Expr),
			stepsBase: rep.Steps(),
			carried:   om.carried + side.Steps() - om.stepsBase,
		})
		delete(m.byMem, om.st)
	}
	delete(m.reps, side)
	side.MergeDiscard()
	return out
}

// orderedPairs lists one side's substitution entries in divergence-site
// order (map iteration is not deterministic; snapshots and composed
// re-merges need a stable order). The ite keys are recomputed through the
// hash-consed builder, so they are pointer-identical to FuseStates'.
func orderedPairs(eb *expr.Builder, delta *expr.Expr, d *vm.MergeDiff, sub map[*expr.Expr]*expr.Expr) []SubPair {
	pairs := make([]SubPair, 0, len(sub))
	seen := make(map[*expr.Expr]bool, len(sub))
	for _, site := range d.Sites {
		ite := eb.Ite(delta, site.A, site.B)
		if v, ok := sub[ite]; ok && !seen[ite] {
			seen[ite] = true
			pairs = append(pairs, SubPair{Key: ite, Val: v})
		}
	}
	return pairs
}

func (m *Manager) conj(cs []*expr.Expr) *expr.Expr {
	d := cs[0]
	for _, c := range cs[1:] {
		d = m.eb.And(d, c)
	}
	return d
}

// extraSteps is the member's share of instructions the rep executed on its
// behalf since it joined.
func (r *repRec) extraSteps(mb *member) uint64 {
	return mb.carried + r.st.Steps() - mb.stepsBase
}

// --- splitting ---------------------------------------------------------------

// SplitIdle dissolves a quiescent (idle or halted) rep back into its exact
// members and reschedules them. Used by the pop-time gate, by mapping
// points that must see the true frontier (mapper forks, deliveries), and
// at run end.
func (m *Manager) SplitIdle(s *vm.State) {
	r, ok := m.reps[s]
	if !ok {
		return
	}
	m.dissolve(r, 0)
	for _, mb := range r.members {
		m.drv.ScheduleIdle(mb.st)
	}
}

// SplitAllIdle dissolves every rep (ascending rep id, so reconstruction
// order is deterministic).
func (m *Manager) SplitAllIdle() {
	for _, r := range m.sortedReps() {
		m.SplitIdle(r.st)
	}
}

// SplitNodeIdle dissolves every rep of one node — used before deliveries
// under mapping algorithms that fork only the destination's states.
func (m *Manager) SplitNodeIdle(node int) {
	for _, r := range m.sortedReps() {
		if r.node == node {
			m.SplitIdle(r.st)
		}
	}
}

// SplitDead dissolves a rep that died wholesale (step budget, pc range):
// every member adopts the dead machine and the rep's error. Members are
// returned in ascending id order so the engine can report their deaths
// exactly as an unmerged run would. ok is false when s is not a rep.
func (m *Manager) SplitDead(s *vm.State) (members []*vm.State, ok bool) {
	r, found := m.reps[s]
	if !found {
		return nil, false
	}
	m.dissolve(r, 0)
	out := make([]*vm.State, len(r.members))
	for i, mb := range r.members {
		out[i] = mb.st
	}
	return out, true
}

// splitMid dissolves a rep mid-event: members come back StatusRunning at
// the rep's current instruction and are enqueued on the engine's LIFO run
// stack in reverse id order, so the smallest id executes first and each
// member's own forks drain within its turn — the unmerged activation
// order. countedCurrent is true when the rep already counted the current
// instruction (verdict intercepts run after the step counter; the
// pre-instruction barrier runs before it) and the members will re-execute
// it themselves.
func (m *Manager) splitMid(r *repRec, countedCurrent bool) {
	adjust := uint64(0)
	if countedCurrent {
		adjust = 1
	}
	m.dissolve(r, adjust)
	for i := len(r.members) - 1; i >= 0; i-- {
		m.drv.EnqueueRunnable(r.members[i].st)
	}
}

// dissolve reconstructs every member from the rep and unregisters the rep.
func (m *Manager) dissolve(r *repRec, adjust uint64) {
	for _, mb := range r.members {
		mb.st.AdoptMergedMachine(r.st, mb.sub, mb.memo, r.extraSteps(mb)-adjust)
		delete(m.byMem, mb.st)
	}
	delete(m.reps, r.st)
	r.st.MergeDiscard()
	m.stats.Splits++
}

// --- vm.MergeHooks -----------------------------------------------------------

// MergedBranch resolves a conditional branch on a rep: the condition is
// substituted per member, and only all-true or all-false lets the rep
// continue. Disagreement splits mid-event.
func (m *Manager) MergedBranch(s *vm.State, cond *expr.Expr) vm.MergeVerdict {
	r := m.reps[s]
	if r == nil {
		panic(fmt.Sprintf("merge: MergedBranch on unknown rep %d", s.ID()))
	}
	allTrue, allFalse := true, true
	for _, mb := range r.members {
		c := m.eb.Substitute(cond, mb.sub, mb.memo)
		switch {
		case c.IsTrue():
			allFalse = false
		case c.IsFalse():
			allTrue = false
		default:
			allTrue, allFalse = false, false
		}
		if !allTrue && !allFalse {
			break
		}
	}
	switch {
	case allTrue:
		return vm.MergeFoldTrue
	case allFalse:
		return vm.MergeFoldFalse
	}
	m.splitMid(r, true)
	return vm.MergeSplit
}

// MergedCheck resolves an assume/assert condition: only uniformly
// structurally-true conditions let the rep continue.
func (m *Manager) MergedCheck(s *vm.State, cond *expr.Expr) vm.MergeVerdict {
	r := m.reps[s]
	if r == nil {
		panic(fmt.Sprintf("merge: MergedCheck on unknown rep %d", s.ID()))
	}
	for _, mb := range r.members {
		if !m.eb.Substitute(cond, mb.sub, mb.memo).IsTrue() {
			m.splitMid(r, true)
			return vm.MergeSplit
		}
	}
	return vm.MergeFoldTrue
}

// MergedBarrier splits a rep before an instruction it must never execute.
func (m *Manager) MergedBarrier(s *vm.State) {
	r := m.reps[s]
	if r == nil {
		panic(fmt.Sprintf("merge: MergedBarrier on unknown rep %d", s.ID()))
	}
	m.splitMid(r, false)
}
