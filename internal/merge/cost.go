package merge

import (
	"sde/internal/expr"
	"sde/internal/vm"
)

// Candidate summarizes a structurally mergeable pair for the merge-vs-fork
// decision. All quantities are cheap to compute: divergence-site count and
// member totals come from the structural diff, depths are DAG-memoized
// walks clamped at the model's cap, and the variable coupling estimate is
// the size of the union of free-variable sets over the deltas and every
// site value — the variables a single merge-introduced ite would entangle
// in future solver queries.
type Candidate struct {
	Node    int
	Sites   int
	Members int // member count of the resulting rep
	// MaxDepth is the operator depth the deepest merged value would reach
	// (1 + max over deltas and site arms, clamped at the walk cap).
	MaxDepth int
	// CoupledVars counts the distinct free variables the merge ties
	// together through shared ite nodes.
	CoupledVars int
	// AvgSliceFactor is the solver's observed independence-slicing payoff
	// (factors per sliced query, 1 when unknown). High values mean queries
	// currently split into many independent factors — exactly what
	// coupling variables through ites destroys.
	AvgSliceFactor float64
}

// CostModel decides whether a structurally mergeable candidate is worth
// fusing. Implementations must be deterministic pure functions of the
// candidate — the decision is replayed on resumed runs.
type CostModel interface {
	ShouldMerge(c Candidate) bool
}

// DefaultCostModel implements the repo's standard merge heuristic, in the
// Cloud9/KLEE lineage: merging pays when it hides states without making
// individual solver queries disproportionately harder. Zero values select
// the documented defaults.
type DefaultCostModel struct {
	// MaxDepth rejects merges whose ite values would exceed this operator
	// depth (default 48): each nesting level is another gate layer in
	// every future query that touches the value.
	MaxDepth int
	// MaxCoupledVars rejects merges entangling more distinct variables
	// than this (default 24).
	MaxCoupledVars int
	// SliceGuard scales the coupling budget down when the solver reports
	// strong independence slicing: with an average slice factor f, the
	// effective variable budget is MaxCoupledVars/f (default guard on;
	// set SliceGuardOff to disable).
	SliceGuardOff bool
}

func (d DefaultCostModel) ShouldMerge(c Candidate) bool {
	maxDepth := d.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 48
	}
	maxVars := d.MaxCoupledVars
	if maxVars <= 0 {
		maxVars = 24
	}
	if c.MaxDepth > maxDepth {
		return false
	}
	budget := float64(maxVars)
	if !d.SliceGuardOff && c.AvgSliceFactor > 1 {
		budget /= c.AvgSliceFactor
	}
	return float64(c.CoupledVars) <= budget
}

func (m *Manager) buildCandidate(node int, d *vm.MergeDiff, deltaA, deltaB *expr.Expr, members int) Candidate {
	cap := 64
	depth := expr.Depth(deltaA, cap)
	if db := expr.Depth(deltaB, cap); db > depth {
		depth = db
	}
	vars := make(map[uint32]struct{})
	for _, id := range deltaA.VarIDs() {
		vars[id] = struct{}{}
	}
	for _, id := range deltaB.VarIDs() {
		vars[id] = struct{}{}
	}
	for _, site := range d.Sites {
		for _, arm := range [2]*expr.Expr{site.A, site.B} {
			if arm == nil {
				continue
			}
			if dd := expr.Depth(arm, cap); dd > depth {
				depth = dd
			}
			for _, id := range arm.VarIDs() {
				vars[id] = struct{}{}
			}
		}
	}
	factor := 1.0
	if m.cfg.SliceStats != nil {
		if q, f := m.cfg.SliceStats(); q > 0 {
			factor = float64(f) / float64(q)
		}
	}
	return Candidate{
		Node:           node,
		Sites:          len(d.Sites),
		Members:        members,
		MaxDepth:       depth + 1, // the introduced ite layer
		CoupledVars:    len(vars),
		AvgSliceFactor: factor,
	}
}
