package merge

import "testing"

// The cost model is a deterministic pure function of the candidate — the
// merge decision is replayed on resumed runs, so these tables pin the
// default thresholds and the slice-guard scaling exactly.

func TestDefaultCostModel(t *testing.T) {
	cases := []struct {
		name  string
		model DefaultCostModel
		c     Candidate
		want  bool
	}{
		{"trivial-pair", DefaultCostModel{},
			Candidate{Sites: 1, Members: 2, MaxDepth: 3, CoupledVars: 2, AvgSliceFactor: 1}, true},
		{"at-depth-limit", DefaultCostModel{},
			Candidate{Sites: 2, Members: 2, MaxDepth: 48, CoupledVars: 4, AvgSliceFactor: 1}, true},
		{"over-depth-limit", DefaultCostModel{},
			Candidate{Sites: 2, Members: 2, MaxDepth: 49, CoupledVars: 4, AvgSliceFactor: 1}, false},
		{"at-var-limit", DefaultCostModel{},
			Candidate{Sites: 3, Members: 2, MaxDepth: 10, CoupledVars: 24, AvgSliceFactor: 1}, true},
		{"over-var-limit", DefaultCostModel{},
			Candidate{Sites: 3, Members: 2, MaxDepth: 10, CoupledVars: 25, AvgSliceFactor: 1}, false},
		// Slice guard: with an observed average slice factor of 3 the
		// effective variable budget shrinks to 24/3 = 8.
		{"slice-guard-scales-budget", DefaultCostModel{},
			Candidate{Sites: 1, Members: 2, MaxDepth: 10, CoupledVars: 9, AvgSliceFactor: 3}, false},
		{"slice-guard-within-scaled-budget", DefaultCostModel{},
			Candidate{Sites: 1, Members: 2, MaxDepth: 10, CoupledVars: 8, AvgSliceFactor: 3}, true},
		{"slice-guard-off", DefaultCostModel{SliceGuardOff: true},
			Candidate{Sites: 1, Members: 2, MaxDepth: 10, CoupledVars: 9, AvgSliceFactor: 3}, true},
		// A slice factor of exactly 1 (no observed independence) must
		// not scale the budget even with the guard on.
		{"factor-one-no-scaling", DefaultCostModel{},
			Candidate{Sites: 1, Members: 2, MaxDepth: 10, CoupledVars: 24, AvgSliceFactor: 1}, true},
		// Explicit overrides replace the defaults.
		{"custom-depth", DefaultCostModel{MaxDepth: 4},
			Candidate{Sites: 1, Members: 2, MaxDepth: 5, CoupledVars: 1, AvgSliceFactor: 1}, false},
		{"custom-vars", DefaultCostModel{MaxCoupledVars: 2},
			Candidate{Sites: 1, Members: 2, MaxDepth: 3, CoupledVars: 3, AvgSliceFactor: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.model.ShouldMerge(tc.c); got != tc.want {
				t.Errorf("ShouldMerge(%+v) = %v, want %v", tc.c, got, tc.want)
			}
		})
	}
}
