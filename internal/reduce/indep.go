package reduce

import "sde/internal/isa"

// Classifier answers per-activation independence questions for the
// partial-order layer, from the program's transitive effect summaries
// (isa.FuncEffects). All answers are static over-approximations: "pure"
// and "sendless" are only claimed when every execution of the handler is.
type Classifier struct {
	prog *isa.Program
}

// NewClassifier wraps a program. The underlying effect summaries are
// computed lazily by the program itself and shared across users.
func NewClassifier(prog *isa.Program) *Classifier {
	return &Classifier{prog: prog}
}

// Pure reports that an activation of handler fn is confined to its own
// state's registers and memory: no sends, no forks (conditional branches),
// no fresh symbolic values, no asserts/assumes, no timers, no trace
// output. Negative fn (absent handler — the event is consumed silently)
// is pure. Pure activations commute with any activation that cannot
// deliver a packet to their node.
func (c *Classifier) Pure(fn int) bool {
	if fn < 0 {
		return true
	}
	return c.prog.FuncEffects(fn).Pure()
}

// MaySend reports that an activation of handler fn may transmit a packet
// (transitively through calls). Negative fn cannot send.
func (c *Classifier) MaySend(fn int) bool {
	if fn < 0 {
		return false
	}
	return c.prog.FuncEffects(fn).MaySend
}
