package reduce_test

import (
	"testing"

	"sde/internal/reduce"
	"sde/internal/sim"
)

// checkGroupProperties asserts the algebraic properties every enumerated
// automorphism group must have: it contains the identity, is closed under
// composition and inverse, and every member preserves the topology's
// neighbor relation.
func checkGroupProperties(t *testing.T, topo sim.Topology, g *reduce.Group) {
	t.Helper()
	k := topo.K()
	byKey := make(map[string]bool, g.Order())
	key := func(p reduce.Perm) string {
		b := make([]byte, 0, 3*k)
		for _, v := range p {
			b = append(b, byte(v>>8), byte(v))
		}
		return string(b)
	}
	hasIdentity := false
	for _, p := range g.Perms {
		if len(p) != k {
			t.Fatalf("%s: permutation %v has length %d, want %d", topo.Name(), p, len(p), k)
		}
		byKey[key(p)] = true
		if p.IsIdentity() {
			hasIdentity = true
		}
	}
	if !hasIdentity {
		t.Errorf("%s: group is missing the identity", topo.Name())
	}
	if len(byKey) != g.Order() {
		t.Errorf("%s: group has duplicate permutations (%d unique of %d)", topo.Name(), len(byKey), g.Order())
	}

	// Neighbor preservation: m ∈ N(n) ⟺ π(m) ∈ N(π(n)).
	adj := make([]map[int]bool, k)
	for n := 0; n < k; n++ {
		adj[n] = make(map[int]bool)
		for _, m := range topo.Neighbors(n) {
			adj[n][m] = true
		}
	}
	for _, p := range g.Perms {
		for n := 0; n < k; n++ {
			for m := 0; m < k; m++ {
				if adj[n][m] != adj[p[n]][p[m]] {
					t.Fatalf("%s: %v does not preserve edge (%d,%d)", topo.Name(), p, n, m)
				}
			}
		}
	}

	// Closure under composition and inverse.
	for _, p := range g.Perms {
		if !byKey[key(p.Inverse())] {
			t.Errorf("%s: inverse of %v is not in the group", topo.Name(), p)
		}
		for _, q := range g.Perms {
			if !byKey[key(p.Compose(q))] {
				t.Errorf("%s: composition of %v and %v is not in the group", topo.Name(), p, q)
			}
		}
	}
}

func TestAutomorphismGroups(t *testing.T) {
	cases := []struct {
		topo  sim.Topology
		order int
	}{
		// A line of k ≥ 2 nodes has exactly the reversal symmetry.
		{sim.NewLine(2), 2},
		{sim.NewLine(5), 2},
		// A square grid has the dihedral group D4.
		{sim.NewGrid(3, 3), 8},
		{sim.NewGrid(5, 5), 8},
		// A non-square grid loses the transpositions: only the
		// horizontal/vertical reflections and 180° rotation remain.
		{sim.NewGrid(4, 2), 4},
		{sim.NewGrid(2, 3), 4},
		// A full mesh on k nodes is fully symmetric: k! permutations.
		{sim.NewFullMesh(3), 6},
		{sim.NewFullMesh(5), 120},
		// Degenerate topologies.
		{sim.NewLine(1), 1},
	}
	for _, tc := range cases {
		t.Run(tc.topo.Name(), func(t *testing.T) {
			g := reduce.Automorphisms(tc.topo)
			if g.Truncated {
				t.Fatalf("%s: search truncated unexpectedly", tc.topo.Name())
			}
			if g.Order() != tc.order {
				t.Errorf("%s: group order = %d, want %d", tc.topo.Name(), g.Order(), tc.order)
			}
			checkGroupProperties(t, tc.topo, g)
		})
	}
}

// A 7-node mesh has 5040 automorphisms — just under the cap — while an
// 8-node mesh overflows and must fall back to the sound trivial group.
func TestAutomorphismOverflowFallsBackToTrivial(t *testing.T) {
	g := reduce.Automorphisms(sim.NewFullMesh(8))
	if !g.Truncated {
		t.Fatal("mesh8: expected truncated search")
	}
	if g.Order() != 1 || !g.Perms[0].IsIdentity() {
		t.Fatalf("mesh8: truncated group must be trivial, got order %d", g.Order())
	}
	g7 := reduce.Automorphisms(sim.NewFullMesh(7))
	if g7.Truncated || g7.Order() != 5040 {
		t.Fatalf("mesh7: got order %d (truncated=%v), want 5040", g7.Order(), g7.Truncated)
	}
}

func TestStabilizeLabels(t *testing.T) {
	topo := sim.NewGrid(3, 3)
	g := reduce.Automorphisms(topo)
	// Labeling the center (node 4) distinctly changes nothing: every grid
	// automorphism fixes the center.
	labels := make([]uint64, 9)
	labels[4] = 1
	if got := g.Stabilize(labels).Order(); got != 8 {
		t.Errorf("center label: order = %d, want 8", got)
	}
	// Labeling one corner keeps only the symmetries fixing that corner:
	// identity and the diagonal reflection through it.
	labels = make([]uint64, 9)
	labels[0] = 1
	sub := g.Stabilize(labels)
	if got := sub.Order(); got != 2 {
		t.Errorf("corner label: order = %d, want 2", got)
	}
	checkGroupProperties(t, topo, sub)
	// Labeling an off-axis node (1,0)=node 1... node 1 is on the vertical
	// mirror axis of the top edge: stabilizer is identity + that mirror.
	labels = make([]uint64, 9)
	labels[3] = 1 // (0,1): on the horizontal mirror axis
	if got := g.Stabilize(labels).Order(); got != 2 {
		t.Errorf("edge-mid label: order = %d, want 2", got)
	}
}

func TestStabilizeRouting(t *testing.T) {
	topo := sim.NewGrid(3, 3)
	g := reduce.Automorphisms(topo)
	// A staircase route from corner 8 to corner 0 breaks the transpose
	// symmetry: only automorphisms mapping the route onto itself survive.
	// For the 3x3 staircase (8 -> 5 -> 4 -> 1 -> 0, or as built by
	// StaircaseRoute) the surviving subgroup is trivial or the single
	// diagonal reflection that happens to preserve it.
	route := topo.StaircaseRoute(8, 0)
	hops := sim.NextHops(9, route)
	sub := g.StabilizeRouting(hops)
	for _, p := range sub.Perms {
		for n, h := range hops {
			want := -1
			if h >= 0 {
				want = p[h]
			}
			if hops[p[n]] != want {
				t.Fatalf("%v does not preserve routing at node %d", p, n)
			}
		}
	}
	if sub.Order() >= g.Order() {
		t.Errorf("staircase routing should break most grid symmetry: got order %d of %d", sub.Order(), g.Order())
	}
	checkGroupProperties(t, topo, sub)

	// All-off-route hops constrain nothing.
	allOff := make([]int, 9)
	for i := range allOff {
		allOff[i] = -1
	}
	if got := g.StabilizeRouting(allOff).Order(); got != 8 {
		t.Errorf("vacuous routing: order = %d, want 8", got)
	}
}
