package reduce

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"

	"sde/internal/expr"
	"sde/internal/vm"
)

// Failure-decision kinds, matching the engine's failure plan.
const (
	KindDrop = iota
	KindDup
	KindReboot
	numKinds
)

// Decision is one armed symbolic failure decision: a (kind, node) site and
// the path-condition variable name the engine forks on.
type Decision struct {
	Kind int
	Node int
	Name string
}

// DecisionName returns the engine's variable name for a failure decision.
// Only the first reception (r0) is armed, matching sim.applyFailures.
func DecisionName(kind, node int) string {
	switch kind {
	case KindDrop:
		return fmt.Sprintf("drop_n%d_r0", node)
	case KindDup:
		return fmt.Sprintf("dup_n%d_r0", node)
	default:
		return fmt.Sprintf("reboot_n%d_r0", node)
	}
}

// Reducer prunes symmetric failure-decision branches. It is built once per
// engine from immutable configuration (topology group, armed failure plan,
// shard pins) and is safe for concurrent reads after construction.
//
// The decision universe is the set of armed (kind, node) sites, ordered by
// variable name. An assignment A maps decisions to {0,1} (0 = failure
// branch, matching the engine's convention). The group acts on assignments
// by relabeling nodes: (π·A)(kind, node) = A(kind, π⁻¹(node)).
//
// Pruning rule (see DESIGN §10 for the soundness argument): exploration
// registers the canonical form — the minimum over the group of the jointly
// encoded (decided sites, values) pair — of every decision branch it
// commits to exploring. When the engine is about to fork decision d on a
// lineage whose accumulated decided context is α, an extension α ∪ {d=v}
// whose canonical form is already registered is a symmetric image of a
// partial assignment some live lineage is already exploring, so the
// engine pins the other side instead of forking. Because every prune
// points at a registered twin over an equal-size decided set, and every
// subsequent prune inside the twin's subtree happens over a strictly
// larger decided set, coverage chains terminate: every full assignment
// has an explored symmetric representative.
//
// The induction needs decided contexts that grow along each lineage and
// funnel every decision of a lineage through one context chain — true for
// COB, where a dscenario's members share one path condition and the
// context is the union over the dscenario. COW and SDS states carry only
// their own node's decisions; cross-node contexts are incomparable there
// and the chain argument fails, so the engine consults the symmetry layer
// for COB only (the partial-order layer is what reduction contributes to
// COW/SDS runs).
//
// The Reducer is stateful (the registered-canon set) and must only be
// used from the engine's single-threaded event loop.
type Reducer struct {
	group     *Group
	decisions []Decision     // sorted by Name
	nameIdx   map[string]int // Name -> index in decisions
	// permIdx[p][i] = index of decision i's image under group.Perms[p]
	// (same kind, node mapped through the permutation).
	permIdx [][]int
	// seen holds canonical encodings of every partial assignment whose
	// subtree the exploration has committed to. Derived state: rebuilt
	// empty on checkpoint resume, which only costs pruning power.
	seen map[string]struct{}
}

// NewReducer builds a reducer from a node-permutation group and the armed
// decision sites. Permutations that do not map the armed site set of each
// kind onto itself are discarded (their images would be executions of a
// different failure plan). When pinned is non-empty (sharded runs), only
// permutations that preserve the pinned partial assignment survive, so
// every covering lex-smaller assignment stays inside the same shard leaf.
func NewReducer(g *Group, decisions []Decision, pinned map[string]uint64) *Reducer {
	r := &Reducer{
		decisions: append([]Decision(nil), decisions...),
		nameIdx:   make(map[string]int, len(decisions)),
		seen:      make(map[string]struct{}),
	}
	sort.Slice(r.decisions, func(i, j int) bool { return r.decisions[i].Name < r.decisions[j].Name })
	for i, d := range r.decisions {
		r.nameIdx[d.Name] = i
	}
	kept := &Group{Truncated: g.Truncated}
	for _, p := range g.Perms {
		idx, ok := r.imageIndex(p)
		if !ok {
			continue
		}
		if !preservesPins(r.decisions, idx, pinned) {
			continue
		}
		kept.Perms = append(kept.Perms, p)
		r.permIdx = append(r.permIdx, idx)
	}
	if len(kept.Perms) == 0 {
		k := 0
		if len(g.Perms) > 0 {
			k = len(g.Perms[0])
		}
		kept.Perms = []Perm{Identity(k)}
		r.permIdx = append(r.permIdx, identityIndex(len(r.decisions)))
	}
	r.group = kept
	return r
}

// imageIndex maps each decision through p: decision (kind, n) goes to
// (kind, p[n]). Returns ok=false if any image site is not armed.
func (r *Reducer) imageIndex(p Perm) ([]int, bool) {
	idx := make([]int, len(r.decisions))
	for i, d := range r.decisions {
		if d.Node >= len(p) {
			return nil, false
		}
		j, ok := r.nameIdx[DecisionName(d.Kind, p[d.Node])]
		if !ok {
			return nil, false
		}
		idx[i] = j
	}
	return idx, true
}

// preservesPins reports that the permuted assignment of every pinned
// decision equals its own pin: pinned[image] exists and matches. Decisions
// that are not pinned must not map onto pinned ones either (that would let
// a covering assignment escape the leaf).
func preservesPins(decisions []Decision, idx []int, pinned map[string]uint64) bool {
	if len(pinned) == 0 {
		return true
	}
	for i, d := range decisions {
		v, dPinned := pinned[d.Name]
		w, imgPinned := pinned[decisions[idx[i]].Name]
		if dPinned != imgPinned {
			return false
		}
		if dPinned && v != w {
			return false
		}
	}
	return true
}

func identityIndex(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Group returns the effective (filtered) group the reducer prunes and
// replicates with.
func (r *Reducer) Group() *Group { return r.group }

// Decisions returns the size of the decision universe.
func (r *Reducer) Decisions() int { return len(r.decisions) }

// CollectDecided scans a path condition for decision literals — a bare
// decision variable (value 1, no failure) or its negation (value 0,
// failure branch) — and records them in dst. Composite constraints are
// ignored: only the unit literals the engine's forks and pins add encode
// decided failure choices.
func (r *Reducer) CollectDecided(dst map[string]uint64, pc []*expr.Expr) {
	for _, c := range pc {
		if c.IsVar() {
			if _, ok := r.nameIdx[c.VarName()]; ok {
				dst[c.VarName()] = 1
			}
			continue
		}
		if c.Kind() == expr.KindNot {
			if a := c.Arg(0); a.IsVar() {
				if _, ok := r.nameIdx[a.VarName()]; ok {
					dst[a.VarName()] = 0
				}
			}
		}
	}
}

// Decide is consulted when the engine is about to fork decision name on a
// lineage whose decided context is alpha (a sub-assignment every
// completion of the lineage's subtree extends — for COB, the union of the
// dscenario members' decided failure choices). It returns (v, true) to
// pin the decision to v without forking: the pruned sibling's canonical
// form is already registered by a live lineage, so its subtree is a
// symmetric image of work the exploration keeps. (0, false) means fork
// both sides; Decide has then registered both extensions as committed.
//
// When both extensions are already registered the lineage is fully
// redundant, but the engine cannot silently discard a live state, so the
// no-failure side (v=1) is kept — sound, merely conservative.
func (r *Reducer) Decide(alpha map[string]uint64, name string) (uint64, bool) {
	if len(r.group.Perms) <= 1 {
		return 0, false
	}
	d, ok := r.nameIdx[name]
	if !ok {
		return 0, false
	}
	vals := r.context(alpha, d)
	vals[d] = 0
	canon0 := r.canon(vals)
	vals[d] = 1
	canon1 := r.canon(vals)
	_, seen0 := r.seen[canon0]
	_, seen1 := r.seen[canon1]
	switch {
	case seen0 && seen1:
		return 1, true
	case seen0:
		r.seen[canon1] = struct{}{}
		return 1, true
	case seen1:
		r.seen[canon0] = struct{}{}
		return 0, true
	default:
		r.seen[canon0] = struct{}{}
		r.seen[canon1] = struct{}{}
		return 0, false
	}
}

// RegisterPinned records a decision the engine resolved without the
// reducer (a shard pin) so later consultations can prune against its
// subtree too.
func (r *Reducer) RegisterPinned(alpha map[string]uint64, name string, val uint64) {
	if len(r.group.Perms) <= 1 {
		return
	}
	d, ok := r.nameIdx[name]
	if !ok {
		return
	}
	vals := r.context(alpha, d)
	vals[d] = int8(val & 1)
	r.seen[r.canon(vals)] = struct{}{}
}

// context converts the decided map into the dense value vector used by
// canon, leaving decision d undecided for the caller to set.
func (r *Reducer) context(alpha map[string]uint64, d int) []int8 {
	vals := make([]int8, len(r.decisions))
	for i := range vals {
		vals[i] = -1
	}
	for nm, v := range alpha {
		if i, ok := r.nameIdx[nm]; ok && i != d {
			vals[i] = int8(v & 1)
		}
	}
	return vals
}

// canon returns the canonical encoding of a partial assignment: the
// minimum over the group of the image's (site, value) list in decision
// order. Two partial assignments have equal canons iff some group element
// maps one onto the other, domains included.
func (r *Reducer) canon(vals []int8) string {
	img := make([]int8, len(vals))
	best := ""
	buf := make([]byte, 0, 2*len(vals))
	for p := range r.group.Perms {
		idx := r.permIdx[p]
		for i := range img {
			img[i] = -1
		}
		for i, v := range vals {
			if v >= 0 {
				img[idx[i]] = v
			}
		}
		buf = buf[:0]
		for i, v := range img {
			if v >= 0 {
				buf = append(buf, byte(i>>8), byte(i), byte('0'+v))
			}
		}
		if best == "" || string(buf) < best {
			best = string(buf)
		}
	}
	return best
}

// --- witness relabeling -----------------------------------------------------

// nodeVarRe matches the node-id infix the engine embeds in every symbolic
// variable name: failure decisions ("drop_n3_r0") and symbolic inputs
// ("sensor_n12_0") both use "_n<id>_".
var nodeVarRe = regexp.MustCompile(`_n(\d+)_`)

// RelabelName rewrites the node-id infix of a symbolic variable name
// through the permutation: drop_n3_r0 under π with π(3)=7 becomes
// drop_n7_r0. Names without a node infix are returned unchanged.
func RelabelName(name string, p Perm) string {
	return nodeVarRe.ReplaceAllStringFunc(name, func(m string) string {
		id, err := strconv.Atoi(m[2 : len(m)-1])
		if err != nil || id < 0 || id >= len(p) {
			return m
		}
		return fmt.Sprintf("_n%d_", p[id])
	})
}

// RelabelEnv rewrites every variable name in a witness model through the
// permutation. Values are unchanged — the permuted assignment drives the
// same execution at the image nodes.
func RelabelEnv(env expr.Env, p Perm) expr.Env {
	if env == nil {
		return nil
	}
	out := make(expr.Env, len(env))
	for k, v := range env {
		out[RelabelName(k, p)] = v
	}
	return out
}

// ExpandViolations closes a violation list under the reducer's group: for
// every violation and every non-identity permutation it synthesizes the
// relabeled image — node mapped through the permutation, witness model
// variable names rewritten via RelabelName, values unchanged. The filtered
// group is closed under composition (armed-site and pin preservation both
// compose), so a single pass over the group reaches the full orbit.
//
// Images that duplicate an existing (Node, Time, Msg) triple are dropped;
// the survivors are appended after the originals in deterministic
// (Node, Time, Msg) order, marked Synthesized with a nil Cond. The input
// slice is not modified.
func (r *Reducer) ExpandViolations(vs []*vm.Violation) []*vm.Violation {
	if len(r.group.Perms) <= 1 || len(vs) == 0 {
		return vs
	}
	type vkey struct {
		node int
		time uint64
		msg  string
	}
	seen := make(map[vkey]struct{}, len(vs))
	for _, v := range vs {
		seen[vkey{v.Node, v.Time, v.Msg}] = struct{}{}
	}
	var synth []*vm.Violation
	for _, v := range vs {
		for _, p := range r.group.Perms {
			if p.IsIdentity() {
				continue
			}
			img := &vm.Violation{
				Node:        v.Node,
				Time:        v.Time,
				Msg:         v.Msg,
				Model:       RelabelEnv(v.Model, p),
				StateID:     v.StateID,
				Synthesized: true,
			}
			if v.Node >= 0 && v.Node < len(p) {
				img.Node = p[v.Node]
			}
			k := vkey{img.Node, img.Time, img.Msg}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			synth = append(synth, img)
		}
	}
	sort.Slice(synth, func(i, j int) bool {
		a, b := synth[i], synth[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Msg < b.Msg
	})
	out := make([]*vm.Violation, 0, len(vs)+len(synth))
	out = append(out, vs...)
	return append(out, synth...)
}

// Stats counts the reducer's work for telemetry.
type Stats struct {
	GroupOrder int
	Truncated  bool
	Decisions  int
	Checks     uint64 // Decide consultations
	Pins       uint64 // decisions pinned instead of forked
}
