package reduce_test

import (
	"testing"

	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/reduce"
	"sde/internal/sim"
)

func dropDecisions(nodes []int) []reduce.Decision {
	ds := make([]reduce.Decision, 0, len(nodes))
	for _, n := range nodes {
		ds = append(ds, reduce.Decision{Kind: reduce.KindDrop, Node: n, Name: reduce.DecisionName(reduce.KindDrop, n)})
	}
	return ds
}

// simulateLineage walks the decision universe in the given order the way a
// COB exploration does — every lineage's full decided context is visible
// at each decision — forking where Decide declines and pinning where it
// prunes. It returns the surviving complete assignments.
func simulateLineage(r *reduce.Reducer, order []string, base map[string]uint64) []map[string]uint64 {
	root := make(map[string]uint64, len(base))
	for k, v := range base {
		root[k] = v
	}
	frontier := []map[string]uint64{root}
	clone := func(a map[string]uint64) map[string]uint64 {
		b := make(map[string]uint64, len(a)+1)
		for k, v := range a {
			b[k] = v
		}
		return b
	}
	for _, name := range order {
		next := make([]map[string]uint64, 0, 2*len(frontier))
		for _, a := range frontier {
			if v, ok := r.Decide(a, name); ok {
				b := clone(a)
				b[name] = v
				next = append(next, b)
			} else {
				b0, b1 := clone(a), clone(a)
				b0[name] = 0
				b1[name] = 1
				next = append(next, b0, b1)
			}
		}
		frontier = next
	}
	return frontier
}

// checkOrbitCoverage asserts that every complete assignment of the
// decision universe is a symmetric image of some survivor — the coverage
// guarantee the engine's violation replication relies on.
func checkOrbitCoverage(t *testing.T, g *reduce.Group, names []string, survivors []map[string]uint64) {
	t.Helper()
	covered := make(map[string]bool)
	enc := func(a map[string]uint64) string {
		b := make([]byte, len(names))
		for i, n := range names {
			b[i] = byte('0' + a[n])
		}
		return string(b)
	}
	for _, s := range survivors {
		for _, p := range g.Perms {
			img := make(map[string]uint64, len(s))
			for n, v := range s {
				img[reduce.RelabelName(n, p)] = v
			}
			covered[enc(img)] = true
		}
	}
	total := 1 << len(names)
	for i := 0; i < total; i++ {
		a := make(map[string]uint64, len(names))
		for j, n := range names {
			a[n] = uint64((i >> j) & 1)
		}
		if !covered[enc(a)] {
			t.Fatalf("assignment %s is not covered by any survivor orbit", enc(a))
		}
	}
}

// orbitCount computes the number of distinct orbits of complete
// assignments under the group — the information-theoretic floor for the
// number of surviving lineages.
func orbitCount(g *reduce.Group, names []string) int {
	seen := make(map[string]bool)
	orbits := 0
	enc := func(a map[string]uint64) string {
		b := make([]byte, len(names))
		for i, n := range names {
			b[i] = byte('0' + a[n])
		}
		return string(b)
	}
	total := 1 << len(names)
	for i := 0; i < total; i++ {
		a := make(map[string]uint64, len(names))
		for j, n := range names {
			a[n] = uint64((i >> j) & 1)
		}
		if seen[enc(a)] {
			continue
		}
		orbits++
		for _, p := range g.Perms {
			img := make(map[string]uint64, len(a))
			for n, v := range a {
				img[reduce.RelabelName(n, p)] = v
			}
			seen[enc(img)] = true
		}
	}
	return orbits
}

// TestDecideMeshSortsAssignments: on a full mesh with drops armed
// everywhere the group is the full symmetric group, so the surviving
// lineages are exactly the sorted assignments — one per failure count.
func TestDecideMeshSortsAssignments(t *testing.T) {
	topo := sim.NewFullMesh(5)
	nodes := []int{0, 1, 2, 3, 4}
	ds := dropDecisions(nodes)
	r := reduce.NewReducer(reduce.Automorphisms(topo), ds, nil)
	if got := r.Group().Order(); got != 120 {
		t.Fatalf("effective group order = %d, want 120", got)
	}
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	survivors := simulateLineage(r, names, nil)
	if len(survivors) != 6 {
		t.Errorf("mesh5: %d survivors, want 6 (one per failure count)", len(survivors))
	}
	checkOrbitCoverage(t, r.Group(), names, survivors)
}

// TestDecideGridCorners: drops on the four corners of a 3x3 grid under
// D4. The orbit count is 6; the prefix rule keeps 7 lineages (one lineage
// dead-ends with both extensions covered and is pinned to the no-failure
// side rather than killed — sound, slightly conservative).
func TestDecideGridCorners(t *testing.T) {
	topo := sim.NewGrid(3, 3)
	ds := dropDecisions([]int{0, 2, 6, 8})
	r := reduce.NewReducer(reduce.Automorphisms(topo), ds, nil)
	if got := r.Group().Order(); got != 8 {
		t.Fatalf("effective group order = %d, want 8", got)
	}
	names := []string{"drop_n0_r0", "drop_n2_r0", "drop_n6_r0", "drop_n8_r0"}
	survivors := simulateLineage(r, names, nil)
	if orbits := orbitCount(r.Group(), names); orbits != 6 {
		t.Fatalf("orbit count = %d, want 6", orbits)
	}
	if len(survivors) < 6 || len(survivors) > 8 {
		t.Errorf("corners: %d survivors, want 6..8 (6 orbits + pin-fallback slack)", len(survivors))
	}
	t.Logf("corners: %d survivors of 16 assignments (6 orbits)", len(survivors))
	checkOrbitCoverage(t, r.Group(), names, survivors)
}

// TestDecideGridTwoRings mirrors the sde-bench symmetric workload: a 5x5
// grid with drops armed on the two D4-invariant rings around the center
// (edge-adjacent {7,11,13,17} and diagonal {6,8,16,18}), decided in the
// order flood delivery reaches them. 256 assignments fall into 51 orbits;
// the prefix rule must stay within a small factor of that floor for the
// bench's ≥4x state reduction to hold (256/64 = 4x).
func TestDecideGridTwoRings(t *testing.T) {
	topo := sim.NewGrid(5, 5)
	armed := []int{7, 11, 13, 17, 6, 8, 16, 18}
	ds := dropDecisions(armed)
	r := reduce.NewReducer(reduce.Automorphisms(topo), ds, nil)
	if got := r.Group().Order(); got != 8 {
		t.Fatalf("effective group order = %d, want 8", got)
	}
	// Delivery order: inner ring at t=2 in id order, then diagonal ring.
	order := []string{
		"drop_n7_r0", "drop_n11_r0", "drop_n13_r0", "drop_n17_r0",
		"drop_n6_r0", "drop_n8_r0", "drop_n16_r0", "drop_n18_r0",
	}
	orbits := orbitCount(r.Group(), order)
	if orbits != 51 {
		t.Fatalf("orbit count = %d, want 51", orbits)
	}
	survivors := simulateLineage(r, order, nil)
	t.Logf("two rings: %d survivors of 256 assignments (%d orbits)", len(survivors), orbits)
	if len(survivors) < orbits {
		t.Fatalf("%d survivors below the %d-orbit floor: coverage must be broken", len(survivors), orbits)
	}
	if len(survivors) > 64 {
		t.Errorf("two rings: %d survivors exceeds 64 (bench needs 256/survivors >= 4x)", len(survivors))
	}
	checkOrbitCoverage(t, r.Group(), order, survivors)
}

// TestDecideAsymmetricArmSetIsInert: arming a non-symmetric site set
// filters the group down to whatever maps the set onto itself; a fully
// asymmetric set leaves only the identity and Decide never prunes.
func TestDecideAsymmetricArmSetIsInert(t *testing.T) {
	topo := sim.NewGrid(3, 3)
	// {0, 1}: corner + edge-mid; no grid automorphism maps this set onto
	// itself except... the vertical mirror maps 0->2, the one fixing 1 is
	// the vertical axis mirror (0<->2), which moves 0 out of the set
	// unless 2 is armed. So only the identity survives.
	ds := dropDecisions([]int{0, 1})
	r := reduce.NewReducer(reduce.Automorphisms(topo), ds, nil)
	if got := r.Group().Order(); got != 1 {
		t.Fatalf("effective group order = %d, want 1", got)
	}
	names := []string{"drop_n0_r0", "drop_n1_r0"}
	if len(simulateLineage(r, names, nil)) != 4 {
		t.Error("trivial group must not prune anything")
	}
}

// TestReducerRespectsShardPins: with a decision pinned (as shard leaves
// do), only permutations preserving the pinned assignment survive, so
// pruning never points at work outside the leaf.
func TestReducerRespectsShardPins(t *testing.T) {
	topo := sim.NewFullMesh(4)
	ds := dropDecisions([]int{0, 1, 2, 3})
	pins := map[string]uint64{"drop_n0_r0": 0}
	r := reduce.NewReducer(reduce.Automorphisms(topo), ds, pins)
	// Permutations must fix node 0's pinned decision relative to pins:
	// since only node 0 is pinned, any perm moving 0 maps its pinned
	// decision onto an unpinned one and is dropped: stabilizer of 0 in
	// S4 = S3 on {1,2,3}, order 6.
	if got := r.Group().Order(); got != 6 {
		t.Fatalf("pinned group order = %d, want 6", got)
	}
	// Within the leaf, the remaining three decisions still sort.
	order := []string{"drop_n1_r0", "drop_n2_r0", "drop_n3_r0"}
	survivors := simulateLineage(r, order, nil)
	// Survivors here simulate only the unpinned decisions; with S3 acting
	// on three symmetric sites that is one per failure count = 4.
	if len(survivors) != 4 {
		t.Errorf("pinned leaf: %d survivors, want 4", len(survivors))
	}
}

func TestCollectDecided(t *testing.T) {
	b := expr.NewBuilder()
	ds := dropDecisions([]int{0, 1})
	r := reduce.NewReducer(reduce.Trivial(2), ds, nil)
	v0 := b.Var("drop_n0_r0", 1)
	v1 := b.Var("drop_n1_r0", 1)
	other := b.Var("sensor_n0_0", 8)
	pc := []*expr.Expr{v0, b.Not(v1), b.Eq(other, b.Const(3, 8))}
	got := make(map[string]uint64)
	r.CollectDecided(got, pc)
	if len(got) != 2 || got["drop_n0_r0"] != 1 || got["drop_n1_r0"] != 0 {
		t.Errorf("CollectDecided = %v, want drop_n0_r0=1 drop_n1_r0=0", got)
	}
}

func TestRelabelName(t *testing.T) {
	p := reduce.Perm{2, 0, 1} // 0->2, 1->0, 2->1
	cases := map[string]string{
		"drop_n0_r0":   "drop_n2_r0",
		"dup_n1_r0":    "dup_n0_r0",
		"reboot_n2_r0": "reboot_n1_r0",
		"sensor_n1_3":  "sensor_n0_3",
		"plain":        "plain",
		"x_n9_y":       "x_n9_y", // out of range: unchanged
	}
	for in, want := range cases {
		if got := reduce.RelabelName(in, p); got != want {
			t.Errorf("RelabelName(%q) = %q, want %q", in, got, want)
		}
	}
	env := expr.Env{"drop_n0_r0": 1, "sensor_n2_0": 77}
	out := reduce.RelabelEnv(env, p)
	if out["drop_n2_r0"] != 1 || out["sensor_n1_0"] != 77 || len(out) != 2 {
		t.Errorf("RelabelEnv = %v", out)
	}
}

// TestClassifier checks the effect-based purity classification on a
// program with a pure helper, an impure handler, and a call chain.
func TestClassifier(t *testing.T) {
	prog := buildClassifierProgram()
	c := reduce.NewClassifier(prog)
	cases := []struct {
		fn      string
		pure    bool
		maySend bool
	}{
		{"mix", true, false},
		{"tick", true, false},      // calls mix only
		{"sender", false, true},    // contains Send
		{"relay", false, true},     // calls sender
		{"brancher", false, false}, // conditional branch forks
	}
	for _, tc := range cases {
		fn := prog.FuncIndex(tc.fn)
		if fn < 0 {
			t.Fatalf("function %s not found", tc.fn)
		}
		if got := c.Pure(fn); got != tc.pure {
			t.Errorf("Pure(%s) = %v, want %v", tc.fn, got, tc.pure)
		}
		if got := c.MaySend(fn); got != tc.maySend {
			t.Errorf("MaySend(%s) = %v, want %v", tc.fn, got, tc.maySend)
		}
	}
	if !c.Pure(-1) || c.MaySend(-1) {
		t.Error("absent handler must be pure and sendless")
	}
}

func buildClassifierProgram() *isa.Program {
	b := isa.NewBuilder()
	mix := b.Func("mix")
	mix.Load(isa.R1, isa.R0, 0x40)
	mix.AddI(isa.R1, isa.R1, 7)
	mix.XorI(isa.R1, isa.R1, 0x5a)
	mix.Store(isa.R0, 0x40, isa.R1)
	mix.Ret()
	tick := b.Func("tick")
	tick.MovI(isa.R0, 0)
	tick.Call("mix")
	tick.Ret()
	sender := b.Func("sender")
	sender.MovI(isa.R2, 1)
	sender.MovI(isa.R3, 0x80)
	sender.Send(isa.R2, isa.R3, 4)
	sender.Ret()
	relay := b.Func("relay")
	relay.Call("sender")
	relay.Ret()
	brancher := b.Func("brancher")
	brancher.Load(isa.R1, isa.R0, 0x40)
	brancher.BrNZ(isa.R1, "done")
	brancher.AddI(isa.R1, isa.R1, 1)
	brancher.Label("done")
	brancher.Ret()
	prog, err := b.Build()
	if err != nil {
		panic(err)
	}
	return prog
}
