package reduce_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"sde/internal/expr"
	"sde/internal/reduce"
	"sde/internal/sim"
	"sde/internal/vm"
)

// meshReducer builds a reducer over the full symmetric group of a k-node
// mesh with drops armed everywhere — the richest orbit structure the
// expansion can face.
func meshReducer(k int) *reduce.Reducer {
	nodes := make([]int, k)
	for i := range nodes {
		nodes[i] = i
	}
	return reduce.NewReducer(reduce.Automorphisms(sim.NewFullMesh(k)), dropDecisions(nodes), nil)
}

// TestExpandViolationsOrbitClosure: a single observed violation at node 0
// of a 3-mesh must be replicated to nodes 1 and 2, with the witness model
// relabeled through the same permutation that moved the node, the
// Synthesized flag set, and the originals untouched in front.
func TestExpandViolationsOrbitClosure(t *testing.T) {
	r := meshReducer(3)
	if r.Group().Order() != 6 {
		t.Fatalf("group order = %d, want 6", r.Group().Order())
	}
	in := []*vm.Violation{{
		Node:  0,
		Time:  7,
		Msg:   "boom",
		Model: expr.Env{"drop_n0_r0": 0, "sensor_n0_0": 42},
	}}
	out := r.ExpandViolations(in)
	if len(out) != 3 {
		t.Fatalf("got %d violations, want 3 (orbit of a single node)", len(out))
	}
	if out[0] != in[0] {
		t.Error("observed violation must stay first and unmodified")
	}
	if out[0].Synthesized {
		t.Error("observed violation must not be marked Synthesized")
	}
	for i, want := range []int{1, 2} {
		v := out[1+i]
		if v.Node != want || v.Time != 7 || v.Msg != "boom" {
			t.Errorf("synth[%d] = node %d t=%d %q, want node %d t=7 \"boom\"",
				i, v.Node, v.Time, v.Msg, want)
		}
		if !v.Synthesized {
			t.Errorf("synth[%d] not marked Synthesized", i)
		}
		// The witness must drive the image node: the model's variable
		// names follow the node through the permutation, values intact.
		wantModel := expr.Env{
			fmt.Sprintf("drop_n%d_r0", want):  0,
			fmt.Sprintf("sensor_n%d_0", want): 42,
		}
		if !reflect.DeepEqual(v.Model, wantModel) {
			t.Errorf("synth[%d].Model = %v, want %v", i, v.Model, wantModel)
		}
	}
}

// TestExpandViolationsDedupe: when the full orbit is already observed,
// nothing is synthesized; when part of it is, only the missing triples
// appear, each exactly once even though many permutations produce it.
func TestExpandViolationsDedupe(t *testing.T) {
	r := meshReducer(3)
	full := []*vm.Violation{
		{Node: 0, Time: 3, Msg: "m"},
		{Node: 1, Time: 3, Msg: "m"},
		{Node: 2, Time: 3, Msg: "m"},
	}
	if out := r.ExpandViolations(full); len(out) != 3 {
		t.Errorf("fully observed orbit: got %d violations, want 3", len(out))
	}
	partial := []*vm.Violation{
		{Node: 0, Time: 3, Msg: "m"},
		{Node: 1, Time: 3, Msg: "m"},
	}
	out := r.ExpandViolations(partial)
	if len(out) != 3 {
		t.Fatalf("partial orbit: got %d violations, want 3", len(out))
	}
	v := out[2]
	if v.Node != 2 || !v.Synthesized {
		t.Errorf("missing orbit member = node %d synth=%v, want node 2 synth=true", v.Node, v.Synthesized)
	}
	// Distinct messages at the same (node, time) are distinct triples.
	mixed := []*vm.Violation{
		{Node: 0, Time: 3, Msg: "a"},
		{Node: 0, Time: 3, Msg: "b"},
	}
	if out := r.ExpandViolations(mixed); len(out) != 6 {
		t.Errorf("two messages: got %d violations, want 6 (two 3-orbits)", len(out))
	}
}

// TestExpandViolationsDeterministicOrder: the synthesized tail is sorted
// by (Node, Time, Msg) regardless of input order or group enumeration.
func TestExpandViolationsDeterministicOrder(t *testing.T) {
	r := meshReducer(4)
	in := []*vm.Violation{
		{Node: 2, Time: 9, Msg: "z"},
		{Node: 2, Time: 5, Msg: "a"},
	}
	out := r.ExpandViolations(in)
	if len(out) != 8 {
		t.Fatalf("got %d violations, want 8 (two 4-orbits)", len(out))
	}
	synth := out[2:]
	sorted := sort.SliceIsSorted(synth, func(i, j int) bool {
		a, b := synth[i], synth[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Msg < b.Msg
	})
	if !sorted {
		for _, v := range synth {
			t.Logf("synth: node=%d time=%d msg=%q", v.Node, v.Time, v.Msg)
		}
		t.Error("synthesized violations not in (Node, Time, Msg) order")
	}
	// Determinism across calls on a fresh reducer.
	again := meshReducer(4).ExpandViolations(in)
	if !reflect.DeepEqual(violationKeys(out), violationKeys(again)) {
		t.Error("expansion order differs between identical runs")
	}
}

// TestExpandViolationsTrivialGroup: a trivial group (or empty input) is a
// strict no-op — the input slice itself comes back, unmodified.
func TestExpandViolationsTrivialGroup(t *testing.T) {
	// An asymmetric armed set filters the mesh group down to the identity.
	r := reduce.NewReducer(reduce.Automorphisms(sim.NewGrid(3, 3)), dropDecisions([]int{0, 1}), nil)
	if r.Group().Order() != 1 {
		t.Fatalf("group order = %d, want 1", r.Group().Order())
	}
	in := []*vm.Violation{{Node: 0, Time: 1, Msg: "x"}}
	if out := r.ExpandViolations(in); len(out) != 1 || out[0] != in[0] {
		t.Error("trivial group must return the input unchanged")
	}
	r2 := meshReducer(3)
	if out := r2.ExpandViolations(nil); out != nil {
		t.Error("empty input must come back empty")
	}
}

// TestExpandViolationsInputUntouched: the input slice and its elements
// are never mutated, and nil models stay nil on the images.
func TestExpandViolationsInputUntouched(t *testing.T) {
	r := meshReducer(3)
	orig := &vm.Violation{Node: 1, Time: 2, Msg: "m", Model: expr.Env{"sensor_n1_0": 9}}
	in := []*vm.Violation{orig}
	out := r.ExpandViolations(in)
	if orig.Node != 1 || orig.Synthesized || orig.Model["sensor_n1_0"] != 9 {
		t.Error("input violation was mutated")
	}
	if len(in) != 1 {
		t.Error("input slice was modified")
	}
	nilModel := r.ExpandViolations([]*vm.Violation{{Node: 0, Time: 1, Msg: "n"}})
	for _, v := range nilModel[1:] {
		if v.Model != nil {
			t.Errorf("image of a nil model has Model = %v", v.Model)
		}
	}
	_ = out
}

func violationKeys(vs []*vm.Violation) []string {
	keys := make([]string, len(vs))
	for i, v := range vs {
		keys[i] = fmt.Sprintf("%d/%d/%s/%v", v.Node, v.Time, v.Msg, v.Synthesized)
	}
	return keys
}
