// Package reduce implements symmetry and partial-order reduction for
// symmetric-topology exploration.
//
// The symmetry layer computes the automorphism group of a topology at load
// time (line reversal, grid rotations/reflections, mesh permutations) and
// prunes failure-decision branches whose outcome is a symmetric image of an
// assignment the exploration already covers, keeping only one representative
// per orbit. A witness map rewrites the reduced run's violations back to
// concrete node ids at the end, so reports stay concrete.
//
// The partial-order layer classifies handler activations by their effect
// footprint (internal/isa FuncEffects) and lets merged representatives
// execute through same-virtual-time activations of provably independent
// foreign states, so commuting orderings of independent activations are
// explored once.
//
// Everything here is derived from the immutable scenario configuration —
// nothing is ever serialized, so the snapshot wire format is unchanged.
package reduce

import "sort"

// Topology is the minimal view of a network the group search needs. It is
// satisfied by sim.Topology (declared locally to avoid an import cycle:
// sim imports reduce).
type Topology interface {
	K() int
	Neighbors(n int) []int
}

// Perm is a permutation of node ids: p[i] is the image of node i.
type Perm []int

// Identity returns the identity permutation on k nodes.
func Identity(k int) Perm {
	p := make(Perm, k)
	for i := range p {
		p[i] = i
	}
	return p
}

// IsIdentity reports whether p fixes every node.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Compose returns the permutation "p after q": (p∘q)(i) = p(q(i)).
func (p Perm) Compose(q Perm) Perm {
	r := make(Perm, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Inverse returns p⁻¹.
func (p Perm) Inverse() Perm {
	r := make(Perm, len(p))
	for i, v := range p {
		r[v] = i
	}
	return r
}

// Equal reports element-wise equality.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// key returns a comparable encoding of the permutation, for dedup maps.
// Node counts are far below 2^16 in practice.
func (p Perm) key() string {
	b := make([]byte, 2*len(p))
	for i, v := range p {
		b[2*i] = byte(v >> 8)
		b[2*i+1] = byte(v)
	}
	return string(b)
}

// Group is an explicitly enumerated permutation group. Perms always
// contains the identity; order is deterministic (sorted by image sequence)
// so every consumer iterates the group identically.
type Group struct {
	Perms []Perm
	// Truncated is set when the automorphism search hit its cap and fell
	// back to the trivial group. The trivial group is always sound — it
	// just reduces nothing — but callers may want to report the miss.
	Truncated bool
}

// Trivial returns the group containing only the identity on k nodes.
func Trivial(k int) *Group {
	return &Group{Perms: []Perm{Identity(k)}}
}

// Order returns the number of permutations in the group.
func (g *Group) Order() int { return len(g.Perms) }

// sortPerms orders permutations lexicographically by image sequence, with
// the identity first (the identity is lex-minimal only by accident of the
// topology, so we pin it explicitly for readability of dumps; the rest are
// lex-sorted).
func sortPerms(perms []Perm) []Perm {
	sort.Slice(perms, func(i, j int) bool {
		a, b := perms[i], perms[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return perms
}

// Search caps. Beyond maxAutomorphisms found automorphisms (a 7-node full
// mesh has 5040) or maxSearchSteps backtracking steps the search gives up
// and returns the trivial group: a partial, possibly non-closed set of
// automorphisms would break the orbit reasoning the pruning rule relies
// on, whereas the trivial group is always sound.
const (
	maxAutomorphisms = 6000
	maxSearchSteps   = 2_000_000
)

// Automorphisms computes the full automorphism group of the topology by
// backtracking search over candidate node images, pruning on degree and
// adjacency consistency. Node ids are assigned images in BFS order from
// node 0 so that the adjacency constraints bind as early as possible.
//
// For the topologies the engine ships this is exact and fast: a line gives
// the order-2 reversal group, a W×H grid gives the dihedral group D4
// (order 8) when W==H and the order-4 rectangle group otherwise, and a
// full mesh on k nodes gives all k! permutations up to the cap.
func Automorphisms(t Topology) *Group {
	k := t.K()
	if k <= 0 {
		return Trivial(0)
	}
	adj := make([]map[int]bool, k)
	deg := make([]int, k)
	for n := 0; n < k; n++ {
		nbrs := t.Neighbors(n)
		adj[n] = make(map[int]bool, len(nbrs))
		for _, m := range nbrs {
			adj[n][m] = true
		}
		deg[n] = len(nbrs)
	}

	// Visit order: BFS from node 0 (fall back to unvisited nodes for
	// disconnected topologies) so each newly placed node has a placed
	// neighbor whose adjacency constrains its image.
	order := make([]int, 0, k)
	seen := make([]bool, k)
	var bfs func(root int)
	bfs = func(root int) {
		queue := []int{root}
		seen[root] = true
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			order = append(order, n)
			for _, m := range t.Neighbors(n) {
				if !seen[m] {
					seen[m] = true
					queue = append(queue, m)
				}
			}
		}
	}
	for n := 0; n < k; n++ {
		if !seen[n] {
			bfs(n)
		}
	}

	img := make([]int, k) // img[n] = image of n, -1 unassigned
	used := make([]bool, k)
	for i := range img {
		img[i] = -1
	}
	var found []Perm
	steps := 0
	overflow := false

	var rec func(pos int)
	rec = func(pos int) {
		if overflow {
			return
		}
		steps++
		if steps > maxSearchSteps {
			overflow = true
			return
		}
		if pos == k {
			p := make(Perm, k)
			copy(p, img)
			found = append(found, p)
			if len(found) > maxAutomorphisms {
				overflow = true
			}
			return
		}
		n := order[pos]
		for cand := 0; cand < k; cand++ {
			if used[cand] || deg[cand] != deg[n] {
				continue
			}
			// Every already-placed neighbor of n must map to a
			// neighbor of cand, and every placed non-neighbor to a
			// non-neighbor (|adj| equality makes the two checks
			// symmetric; we check placed nodes directly).
			ok := true
			for _, prev := range order[:pos] {
				if adj[n][prev] != adj[cand][img[prev]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			img[n] = cand
			used[cand] = true
			rec(pos + 1)
			img[n] = -1
			used[cand] = false
			if overflow {
				return
			}
		}
	}
	rec(0)

	if overflow {
		g := Trivial(k)
		g.Truncated = true
		return g
	}
	return &Group{Perms: sortPerms(found)}
}

// filter returns the subgroup of permutations satisfying keep. The result
// of filtering a closed group by any property that is preserved under
// composition and inverse (label equality, routing equivariance, setwise
// stabilization) is again a closed group.
func (g *Group) filter(keep func(Perm) bool) *Group {
	out := &Group{Truncated: g.Truncated}
	for _, p := range g.Perms {
		if keep(p) {
			out.Perms = append(out.Perms, p)
		}
	}
	if len(out.Perms) == 0 {
		// Cannot happen when g contains the identity, but stay safe.
		out.Perms = []Perm{Identity(len(g.Perms[0]))}
	}
	return out
}

// Stabilize returns the subgroup whose permutations preserve the given
// per-node labels: labels[p(n)] == labels[n] for every node. Scenarios
// with distinguished nodes (a flood source, a collect sink) declare those
// roles as labels; only automorphisms fixing the roles survive.
func (g *Group) Stabilize(labels []uint64) *Group {
	return g.filter(func(p Perm) bool {
		for n, v := range p {
			if labels[v] != labels[n] {
				return false
			}
		}
		return true
	})
}

// StabilizeRouting returns the subgroup equivariant with respect to a
// static next-hop routing table: hops[p(n)] == p(hops[n]) for every node,
// with p(-1) = -1 for off-route nodes. A grid's transpose symmetry, for
// example, does not survive a staircase route — the transposed route is a
// different staircase — so declaring the route honestly trivializes the
// group for routed workloads.
func (g *Group) StabilizeRouting(hops []int) *Group {
	return g.filter(func(p Perm) bool {
		for n, h := range hops {
			var want int
			if h < 0 {
				want = -1
			} else {
				want = p[h]
			}
			if hops[p[n]] != want {
				return false
			}
		}
		return true
	})
}
