package core

import (
	"fmt"
	"math/big"
)

// dscenario is COB's grouping unit: exactly one execution state per node,
// the natural representation of one concrete network execution (§III-A).
type dscenario[S StateHandle[S]] struct {
	states []S // indexed by node id
}

// COB implements the Copy On Branch state mapping algorithm (§III-A). It
// mimics the symbolic execution of a monolithic network simulation: every
// local branch of one node state forks every other state of the branching
// state's dscenario, so packet delivery is a constant-time lookup but the
// number of duplicate states is maximal.
type COB[S StateHandle[S]] struct {
	k         int
	scenarios []*dscenario[S]
	index     map[S]*dscenario[S]
	pending   *dscenario[S] // initial dscenario under construction
	nRegister int
}

// NewCOB returns an empty COB mapper for a k-node network.
func NewCOB[S StateHandle[S]](k int) *COB[S] {
	var zero S
	init := &dscenario[S]{states: make([]S, k)}
	for i := range init.states {
		init.states[i] = zero
	}
	return &COB[S]{
		k:       k,
		index:   make(map[S]*dscenario[S], k),
		pending: init,
	}
}

// Algorithm implements Mapper.
func (m *COB[S]) Algorithm() Algorithm { return COBAlgorithm }

// Register implements Mapper.
func (m *COB[S]) Register(s S) {
	node := s.NodeID()
	if node < 0 || node >= m.k {
		panic(fmt.Sprintf("core: COB.Register node %d out of range", node))
	}
	if m.pending == nil {
		panic("core: COB.Register after mapping started")
	}
	m.pending.states[node] = s
	m.index[s] = m.pending
	m.nRegister++
	if m.nRegister == m.k {
		m.scenarios = append(m.scenarios, m.pending)
		m.pending = nil
	}
}

// OnBranch implements Mapper: the dscenario containing orig is duplicated
// in full — sibling replaces orig, every other member is forked (paper
// Figure 3: "the state mapping phase forks the states on node 2 and 3 to
// create two separate dscenarios as a direct response to the first
// branch").
func (m *COB[S]) OnBranch(orig, sibling S) []S {
	n, ok := m.index[orig]
	if !ok {
		panic(fmt.Sprintf("core: COB.OnBranch of unknown state %d", orig.ID()))
	}
	fresh := &dscenario[S]{states: make([]S, m.k)}
	var forked []S
	for node, st := range n.states {
		if st == orig {
			fresh.states[node] = sibling
			continue
		}
		cp := st.Fork()
		fresh.states[node] = cp
		forked = append(forked, cp)
	}
	for _, st := range fresh.states {
		m.index[st] = fresh
	}
	m.scenarios = append(m.scenarios, fresh)
	return forked
}

// MapSend implements Mapper: within a dscenario the receiver is simply the
// destination node's unique state; no conflicts can arise (§III-A: "the
// delivery of a transmission is processed by identifying the receiver
// simply by examining the sender's dscenario and the destination node").
func (m *COB[S]) MapSend(sender S, dst int) (Delivery[S], error) {
	if err := validateSend[S](m.k, sender, dst); err != nil {
		return Delivery[S]{}, err
	}
	n, ok := m.index[sender]
	if !ok {
		return Delivery[S]{}, fmt.Errorf("core: COB.MapSend of unknown state %d", sender.ID())
	}
	return Delivery[S]{Receivers: []S{n.states[dst]}}, nil
}

// ScenarioFor implements Mapper: the state's own dscenario.
func (m *COB[S]) ScenarioFor(s S) ([]S, bool) {
	n, ok := m.index[s]
	if !ok {
		return nil, false
	}
	return append([]S(nil), n.states...), true
}

// NumStates implements Mapper.
func (m *COB[S]) NumStates() int { return len(m.index) }

// NumGroups implements Mapper.
func (m *COB[S]) NumGroups() int { return len(m.scenarios) }

// DScenarioCount implements Mapper.
func (m *COB[S]) DScenarioCount() *big.Int {
	return big.NewInt(int64(len(m.scenarios)))
}

// Explode implements Mapper; for COB the dscenarios are already explicit.
func (m *COB[S]) Explode(limit int) [][]S {
	var out [][]S
	m.ExplodeFunc(limit, func(sc []S) bool {
		out = append(out, sc)
		return true
	})
	return out
}

// ExplodeFunc implements Mapper.
func (m *COB[S]) ExplodeFunc(limit int, fn func([]S) bool) {
	n := len(m.scenarios)
	if limit > 0 && limit < n {
		n = limit
	}
	for _, sc := range m.scenarios[:n] {
		if !fn(append([]S(nil), sc.states...)) {
			return
		}
	}
}

// ForEachState implements Mapper; visiting order is (dscenario creation,
// node id).
func (m *COB[S]) ForEachState(f func(S)) {
	for _, sc := range m.scenarios {
		for _, st := range sc.states {
			f(st)
		}
	}
}

// CheckInvariants implements Mapper: every dscenario holds exactly one
// state per node, every state belongs to exactly one dscenario, and the
// histories within a dscenario are mutually consistent is implied by
// construction (delivery is always within the dscenario).
func (m *COB[S]) CheckInvariants() error {
	if m.pending != nil {
		return fmt.Errorf("core: COB: registration incomplete (%d of %d)", m.nRegister, m.k)
	}
	seen := make(map[S]bool, len(m.index))
	for si, sc := range m.scenarios {
		if len(sc.states) != m.k {
			return fmt.Errorf("core: COB: dscenario %d has %d slots, want %d", si, len(sc.states), m.k)
		}
		for node, st := range sc.states {
			if st.NodeID() != node {
				return fmt.Errorf("core: COB: dscenario %d slot %d holds state of node %d",
					si, node, st.NodeID())
			}
			if seen[st] {
				return fmt.Errorf("core: COB: state %d appears in two dscenarios", st.ID())
			}
			seen[st] = true
			if m.index[st] != sc {
				return fmt.Errorf("core: COB: index of state %d is stale", st.ID())
			}
		}
	}
	if len(seen) != len(m.index) {
		return fmt.Errorf("core: COB: index has %d states, scenarios have %d", len(m.index), len(seen))
	}
	return nil
}
