package core

import (
	"math/big"
	"testing"
)

// Compile-time interface compliance checks (one per algorithm).
var (
	_ Mapper[*mockState] = (*COB[*mockState])(nil)
	_ Mapper[*mockState] = (*COW[*mockState])(nil)
	_ Mapper[*mockState] = (*SDS[*mockState])(nil)
)

// preparedMapper builds a mapper with a non-trivial dstate structure.
func preparedMapper(t *testing.T, algo Algorithm) Mapper[*mockState] {
	t.Helper()
	net := newMockNet(4)
	m, err := New[*mockState](algo, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range net {
		m.Register(s)
	}
	doBranch(m, net[0])
	doBranch(m, net[2])
	if _, err := doSend(m, net[0], 1, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := doSend(m, net[2], 3, 22); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExplodeFuncMatchesExplode(t *testing.T) {
	for _, algo := range []Algorithm{COBAlgorithm, COWAlgorithm, SDSAlgorithm} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			m := preparedMapper(t, algo)
			want := m.Explode(0)
			var got [][]*mockState
			m.ExplodeFunc(0, func(sc []*mockState) bool {
				got = append(got, sc)
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("ExplodeFunc yielded %d dscenarios, Explode %d", len(got), len(want))
			}
			for i := range got {
				for node := range got[i] {
					if got[i][node] != want[i][node] {
						t.Fatalf("dscenario %d node %d differs", i, node)
					}
				}
			}
			if big.NewInt(int64(len(got))).Cmp(m.DScenarioCount()) != 0 {
				t.Errorf("enumerated %d, DScenarioCount = %v", len(got), m.DScenarioCount())
			}
		})
	}
}

func TestExplodeFuncEarlyStop(t *testing.T) {
	for _, algo := range []Algorithm{COBAlgorithm, COWAlgorithm, SDSAlgorithm} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			m := preparedMapper(t, algo)
			total := len(m.Explode(0))
			if total < 3 {
				t.Fatalf("degenerate: %d dscenarios", total)
			}
			// Stop via callback after 2.
			n := 0
			m.ExplodeFunc(0, func([]*mockState) bool {
				n++
				return n < 2
			})
			if n != 2 {
				t.Errorf("callback stop: visited %d, want 2", n)
			}
			// Stop via limit.
			n = 0
			m.ExplodeFunc(2, func([]*mockState) bool {
				n++
				return true
			})
			if n != 2 {
				t.Errorf("limit stop: visited %d, want 2", n)
			}
		})
	}
}

func TestScenarioFor(t *testing.T) {
	for _, algo := range []Algorithm{COBAlgorithm, COWAlgorithm, SDSAlgorithm} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			m := preparedMapper(t, algo)
			m.ForEachState(func(s *mockState) {
				sc, ok := m.ScenarioFor(s)
				if !ok {
					t.Fatalf("ScenarioFor(%d) failed", s.ID())
				}
				if len(sc) != 4 {
					t.Fatalf("scenario has %d slots", len(sc))
				}
				if sc[s.node] != s {
					t.Errorf("scenario does not contain the requested state")
				}
				for node, member := range sc {
					if member.node != node {
						t.Errorf("slot %d holds node %d", node, member.node)
					}
				}
				// The returned dscenario must be one of the exploded set.
				found := false
				m.ExplodeFunc(0, func(cand []*mockState) bool {
					same := true
					for i := range cand {
						if cand[i] != sc[i] {
							same = false
							break
						}
					}
					if same {
						found = true
						return false
					}
					return true
				})
				if !found {
					t.Errorf("ScenarioFor(%d) returned a non-represented dscenario", s.ID())
				}
			})
			// Unknown states are rejected.
			stranger := &mockState{id: 9999, node: 0, alloc: &mockAlloc{next: 10000}}
			if _, ok := m.ScenarioFor(stranger); ok {
				t.Error("ScenarioFor accepted an unknown state")
			}
		})
	}
}
