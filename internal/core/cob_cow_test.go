package core

import (
	"math/big"
	"testing"
)

func register(t *testing.T, m Mapper[*mockState], states []*mockState) {
	t.Helper()
	for _, s := range states {
		m.Register(s)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after registration: %v", err)
	}
}

// TestCOBFigure3 reproduces paper Figure 3: a symbolic branch of node 1 in
// a 3-node network forks the states of nodes 2 and 3, creating two
// separate dscenarios "although there is no transmission whatsoever".
func TestCOBFigure3(t *testing.T) {
	net := newMockNet(3)
	m := NewCOB[*mockState](3)
	register(t, m, net)

	_, extra := doBranch(m, net[0])
	if len(extra) != 2 {
		t.Fatalf("COB branch forked %d states, want 2 (nodes 2 and 3)", len(extra))
	}
	if extra[0].node != 1 || extra[1].node != 2 {
		t.Errorf("forked nodes = %d,%d, want 1,2", extra[0].node, extra[1].node)
	}
	if m.NumGroups() != 2 {
		t.Errorf("dscenarios = %d, want 2", m.NumGroups())
	}
	if m.NumStates() != 6 {
		t.Errorf("states = %d, want 6 (two full dscenarios)", m.NumStates())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// The forked copies are pure duplicates of their originals.
	if d := duplicateGroups(m); d != 2 {
		t.Errorf("duplicate groups = %d, want 2", d)
	}
}

func TestCOBMapSendIsLookup(t *testing.T) {
	net := newMockNet(3)
	m := NewCOB[*mockState](3)
	register(t, m, net)
	sib, _ := doBranch(m, net[0])

	del, err := doSend(m, net[0], 1, 100)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	if len(del.Forked) != 0 {
		t.Errorf("COB send forked %d states, want 0", len(del.Forked))
	}
	if len(del.Receivers) != 1 {
		t.Fatalf("receivers = %d, want 1", len(del.Receivers))
	}
	// The receiver must be the node-1 state of the sender's dscenario,
	// which still holds the original states.
	if del.Receivers[0] != net[1] {
		t.Errorf("receiver = state %d, want original %d", del.Receivers[0].ID(), net[1].ID())
	}
	// A send from the sibling's dscenario reaches the copy instead.
	del2, err := m.MapSend(sib, 1)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	if del2.Receivers[0] == net[1] {
		t.Error("sibling's dscenario delivered to the original state")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCOBSendValidation(t *testing.T) {
	net := newMockNet(2)
	m := NewCOB[*mockState](2)
	register(t, m, net)
	if _, err := m.MapSend(net[0], 0); err == nil {
		t.Error("self-send accepted")
	}
	if _, err := m.MapSend(net[0], 5); err == nil {
		t.Error("out-of-range destination accepted")
	}
	stranger := &mockState{id: 999, node: 1, alloc: &mockAlloc{next: 1000}}
	if _, err := m.MapSend(stranger, 0); err == nil {
		t.Error("unregistered sender accepted")
	}
}

func TestCOBChainedBranches(t *testing.T) {
	net := newMockNet(4)
	m := NewCOB[*mockState](4)
	register(t, m, net)
	// Each branch doubles nothing — it adds one dscenario per branch of
	// one state. Branch the same node's lineage three times.
	s := net[0]
	for i := 0; i < 3; i++ {
		sib, extra := doBranch(m, s)
		if len(extra) != 3 {
			t.Fatalf("branch %d forked %d, want 3", i, len(extra))
		}
		s = sib
	}
	if m.NumGroups() != 4 {
		t.Errorf("dscenarios = %d, want 4", m.NumGroups())
	}
	if m.NumStates() != 16 {
		t.Errorf("states = %d, want 16", m.NumStates())
	}
	if got := m.DScenarioCount(); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("DScenarioCount = %v, want 4", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCOWFigure4 reproduces paper Figure 4: after a symbolic branch on
// node 1, a transmission from one of node 1's states to node 2 forks the
// states of nodes 2 and 3 into a fresh dstate, and the packet is delivered
// there.
func TestCOWFigure4(t *testing.T) {
	net := newMockNet(3)
	m := NewCOW[*mockState](3)
	register(t, m, net)

	// The branch costs nothing: same dstate, one more state.
	_, extra := doBranch(m, net[0])
	if len(extra) != 0 {
		t.Fatalf("COW branch forked %d states, want 0", len(extra))
	}
	if m.NumGroups() != 1 || m.NumStates() != 4 {
		t.Fatalf("after branch: %d dstates, %d states; want 1, 4",
			m.NumGroups(), m.NumStates())
	}

	// The send has one rival (the sibling), so the dstate splits.
	del, err := doSend(m, net[0], 1, 100)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	if len(del.Forked) != 2 {
		t.Errorf("send forked %d states, want 2 (target + bystander)", len(del.Forked))
	}
	if len(del.Receivers) != 1 {
		t.Fatalf("receivers = %d, want 1", len(del.Receivers))
	}
	if del.Receivers[0] == net[1] {
		t.Error("COW delivered to the original target; must deliver to the copy")
	}
	if m.NumGroups() != 2 {
		t.Errorf("dstates = %d, want 2", m.NumGroups())
	}
	if m.NumStates() != 6 {
		t.Errorf("states = %d, want 6", m.NumStates())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// The bystander copy is a duplicate; the target copy is not (it
	// received the packet).
	if d := duplicateGroups(m); d != 1 {
		t.Errorf("duplicate groups = %d, want 1 (bystander only)", d)
	}
}

func TestCOWNoRivalDeliversInPlace(t *testing.T) {
	net := newMockNet(3)
	m := NewCOW[*mockState](3)
	register(t, m, net)
	del, err := doSend(m, net[0], 2, 7)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	if len(del.Forked) != 0 {
		t.Errorf("rival-free send forked %d states", len(del.Forked))
	}
	if len(del.Receivers) != 1 || del.Receivers[0] != net[2] {
		t.Errorf("receivers = %v, want the original node-2 state", del.Receivers)
	}
	if m.NumGroups() != 1 {
		t.Errorf("dstates = %d, want 1", m.NumGroups())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCOWMultiTargetDelivery(t *testing.T) {
	// Two states on the destination node, no rivals for the sender: both
	// targets receive in place.
	net := newMockNet(3)
	m := NewCOW[*mockState](3)
	register(t, m, net)
	doBranch(m, net[1]) // two states on node 1 now
	del, err := doSend(m, net[0], 1, 3)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	if len(del.Receivers) != 2 {
		t.Errorf("receivers = %d, want 2", len(del.Receivers))
	}
	if len(del.Forked) != 0 {
		t.Errorf("forked = %d, want 0", len(del.Forked))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestClassificationFigure5 reproduces paper Figure 5's sender / targets /
// rivals / bystanders classification in a 4-node line: COW forks targets
// and bystanders, never the rivals or the sender.
func TestClassificationFigure5(t *testing.T) {
	net := newMockNet(4)
	m := NewCOW[*mockState](4)
	register(t, m, net)
	doBranch(m, net[0]) // sender + 1 rival on node 0
	doBranch(m, net[1]) // 2 targets on node 1
	// Nodes 2 and 3 are bystanders.
	before := statesOf(m)
	if len(before[0]) != 2 || len(before[1]) != 2 {
		t.Fatalf("setup wrong: %d node-0, %d node-1 states", len(before[0]), len(before[1]))
	}

	del, err := doSend(m, net[0], 1, 50)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	if len(del.Receivers) != 2 {
		t.Errorf("targets = %d, want 2", len(del.Receivers))
	}
	// Forked: 2 target copies + 2 bystander copies.
	if len(del.Forked) != 4 {
		t.Errorf("forked = %d, want 4", len(del.Forked))
	}
	forkedByNode := map[int]int{}
	for _, f := range del.Forked {
		forkedByNode[f.node]++
	}
	if forkedByNode[0] != 0 {
		t.Error("a rival or the sender was forked")
	}
	if forkedByNode[1] != 2 || forkedByNode[2] != 1 || forkedByNode[3] != 1 {
		t.Errorf("forked per node = %v, want map[1:2 2:1 3:1]", forkedByNode)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Exactly the two bystander copies are duplicates.
	if d := duplicateGroups(m); d != 2 {
		t.Errorf("duplicate groups = %d, want 2", d)
	}
}

func TestCOWDScenarioCount(t *testing.T) {
	net := newMockNet(3)
	m := NewCOW[*mockState](3)
	register(t, m, net)
	doBranch(m, net[0])
	doBranch(m, net[1])
	// One dstate with buckets 2,2,1: 4 dscenarios.
	if got := m.DScenarioCount(); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("DScenarioCount = %v, want 4", got)
	}
	if _, err := doSend(m, net[0], 2, 9); err != nil {
		t.Fatal(err)
	}
	// Split: fresh dstate {sender, 2 copies of node1... no: copies of
	// targets (node 2: 1) and bystanders (node 1: 2)} = buckets 1,2,1 = 2;
	// old dstate buckets 1,2,1 = 2. Total 4 — the split preserves the
	// represented dscenario count.
	if got := m.DScenarioCount(); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("DScenarioCount after split = %v, want 4", got)
	}
}

func TestExplodeCOW(t *testing.T) {
	net := newMockNet(2)
	m := NewCOW[*mockState](2)
	register(t, m, net)
	doBranch(m, net[0])
	doBranch(m, net[0])
	// Buckets 3,1: 3 dscenarios.
	sc := m.Explode(0)
	if len(sc) != 3 {
		t.Fatalf("exploded = %d dscenarios, want 3", len(sc))
	}
	for _, s := range sc {
		if len(s) != 2 || s[0].node != 0 || s[1].node != 1 {
			t.Fatalf("malformed dscenario %v", s)
		}
	}
	if got := m.Explode(2); len(got) != 2 {
		t.Errorf("Explode(2) = %d, want 2", len(got))
	}
}

func TestNewFactory(t *testing.T) {
	for _, algo := range []Algorithm{COBAlgorithm, COWAlgorithm, SDSAlgorithm} {
		m, err := New[*mockState](algo, 3)
		if err != nil {
			t.Fatalf("New(%v): %v", algo, err)
		}
		if m.Algorithm() != algo {
			t.Errorf("New(%v).Algorithm() = %v", algo, m.Algorithm())
		}
	}
	if _, err := New[*mockState](Algorithm(99), 3); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	if COBAlgorithm.String() != "COB" || COWAlgorithm.String() != "COW" || SDSAlgorithm.String() != "SDS" {
		t.Error("algorithm names wrong")
	}
}
