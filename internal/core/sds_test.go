package core

import (
	"math/big"
	"testing"
)

// TestSDSBranchJoinsAllDStates: after a branch, the sibling must appear in
// every dstate of its predecessor.
func TestSDSBranchJoinsAllDStates(t *testing.T) {
	net := newMockNet(3)
	m := NewSDS[*mockState](3)
	register(t, m, net)
	sib, extra := doBranch(m, net[0])
	if len(extra) != 0 {
		t.Fatalf("SDS branch forked %d states, want 0", len(extra))
	}
	if m.SuperDStateSize(sib) != 1 {
		t.Errorf("sibling super-dstate size = %d, want 1", m.SuperDStateSize(sib))
	}
	if m.NumGroups() != 1 || m.NumStates() != 4 {
		t.Errorf("groups=%d states=%d, want 1, 4", m.NumGroups(), m.NumStates())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestSDSNoRivalDeliversInPlace: a sender alone on its node delivers to
// the original targets with no forking at all.
func TestSDSNoRivalDeliversInPlace(t *testing.T) {
	net := newMockNet(3)
	m := NewSDS[*mockState](3)
	register(t, m, net)
	del, err := doSend(m, net[0], 1, 5)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	if len(del.Forked) != 0 || len(del.Receivers) != 1 || del.Receivers[0] != net[1] {
		t.Errorf("delivery = %+v, want in-place to original", del)
	}
	if m.NumGroups() != 1 || m.NumStates() != 3 {
		t.Errorf("groups=%d states=%d, want 1, 3", m.NumGroups(), m.NumStates())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestSDSBystandersNeverForked is the algorithm's core claim (Figure 6):
// resolving a conflict forks only the target, never the bystanders.
func TestSDSBystandersNeverForked(t *testing.T) {
	const k = 6
	net := newMockNet(k)
	m := NewSDS[*mockState](k)
	register(t, m, net)
	doBranch(m, net[0]) // sender gains one rival

	del, err := doSend(m, net[0], 1, 77)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	if len(del.Forked) != 1 {
		t.Fatalf("forked = %d states, want 1 (the target only)", len(del.Forked))
	}
	if del.Forked[0].node != 1 {
		t.Errorf("forked node = %d, want 1", del.Forked[0].node)
	}
	if len(del.Receivers) != 1 || del.Receivers[0] != net[1] {
		t.Errorf("receiver = %v, want the original target", del.Receivers)
	}
	// 6 initial + 1 branch sibling + 1 target fork.
	if m.NumStates() != k+2 {
		t.Errorf("states = %d, want %d", m.NumStates(), k+2)
	}
	if m.NumGroups() != 2 {
		t.Errorf("dstates = %d, want 2", m.NumGroups())
	}
	// The bystanders now belong to both dstates.
	for n := 2; n < k; n++ {
		if got := m.SuperDStateSize(net[n]); got != 2 {
			t.Errorf("bystander node %d super-dstate size = %d, want 2", n, got)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// No duplicates — compare with COW which would have created k-2.
	if d := duplicateGroups(m); d != 0 {
		t.Errorf("duplicate groups = %d, want 0", d)
	}
}

// TestSDSFigure7 reproduces paper Figure 7: a sender without direct
// rivals whose target has a super-rival. The target is forked and its
// virtual state in the foreign dstate is moved to the fork; no dstate is
// split.
func TestSDSFigure7(t *testing.T) {
	net := newMockNet(4)
	m := NewSDS[*mockState](4)
	register(t, m, net)

	// Build two dstates: branch node 0, then let the original send once,
	// splitting the initial dstate.
	doBranch(m, net[0])
	if _, err := doSend(m, net[0], 1, 1); err != nil {
		t.Fatal(err)
	}
	if m.NumGroups() != 2 {
		t.Fatalf("setup: dstates = %d, want 2", m.NumGroups())
	}
	// Now net[0] is alone on node 0 in its dstate (no direct rival), and
	// node 2's state sits in both dstates; the other dstate's node-0
	// population (the branch sibling) is a super-rival.
	if m.SuperDStateSize(net[2]) != 2 {
		t.Fatalf("setup: node-2 state should span 2 dstates")
	}
	statesBefore := m.NumStates()
	groupsBefore := m.NumGroups()

	del, err := doSend(m, net[0], 2, 2)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	if len(del.Forked) != 1 {
		t.Fatalf("forked = %d, want 1 (the target)", len(del.Forked))
	}
	fork := del.Forked[0]
	if fork.node != 2 {
		t.Errorf("fork node = %d, want 2", fork.node)
	}
	if m.NumGroups() != groupsBefore {
		t.Errorf("dstates = %d, want unchanged %d (no direct rivals => no split)",
			m.NumGroups(), groupsBefore)
	}
	if m.NumStates() != statesBefore+1 {
		t.Errorf("states = %d, want %d", m.NumStates(), statesBefore+1)
	}
	// The original target now lives only in the sender's dstate; the fork
	// holds the virtual state of the foreign dstate.
	if m.SuperDStateSize(net[2]) != 1 || m.SuperDStateSize(fork) != 1 {
		t.Errorf("super-dstate sizes: target %d, fork %d; want 1, 1",
			m.SuperDStateSize(net[2]), m.SuperDStateSize(fork))
	}
	// Verify membership via the structure dump: the fork must share a
	// dstate with the branch sibling (the super-rival side).
	foundForkWithSibling := false
	for _, ds := range m.DStateActuals() {
		has := map[*mockState]bool{}
		for _, bucket := range ds {
			for _, s := range bucket {
				has[s] = true
			}
		}
		if has[fork] && !has[net[0]] {
			foundForkWithSibling = true
		}
		if has[fork] && has[net[2]] {
			t.Error("fork and original target share a dstate")
		}
	}
	if !foundForkWithSibling {
		t.Error("fork did not take over the foreign dstate membership")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if d := duplicateGroups(m); d != 0 {
		t.Errorf("duplicate groups = %d, want 0", d)
	}
}

// buildFigure8 constructs the exact input of paper Figure 8(a) by hand
// (white-box): four nodes, three dstates, a sender with virtual states in
// dstates 0 and 1, direct rivals in both, three super-rivals in dstate 2,
// and one target (B5) whose virtual states span dstates 1 and 2.
func buildFigure8() (m *SDS[*mockState], sender *mockState, actual map[string]*mockState) {
	alloc := &mockAlloc{}
	mk := func(node int) *mockState {
		return &mockState{id: alloc.newID(), node: node, alloc: alloc, cfg: alloc.next * 1000}
	}
	actual = map[string]*mockState{}
	for _, name := range []string{"A1", "A2", "A3", "A4", "A5", "A6"} {
		actual[name] = mk(0)
	}
	for _, name := range []string{"B1", "B2", "B3", "B4", "B5"} {
		actual[name] = mk(1)
	}
	for _, name := range []string{"C1", "C2", "C3"} {
		actual[name] = mk(2)
	}
	for _, name := range []string{"D1", "D2", "D3"} {
		actual[name] = mk(3)
	}
	m = &SDS[*mockState]{
		k:         4,
		virtuals:  map[*mockState]*vlist[*mockState]{},
		nRegister: 4,
	}
	addDS := func(names ...string) {
		d := m.newDState()
		for _, n := range names {
			s := actual[n]
			v := &vstate[*mockState]{actual: s}
			d.add(v)
			if m.virtuals[s] == nil {
				m.virtuals[s] = &vlist[*mockState]{}
			}
			m.virtuals[s].prepend(v)
		}
		m.dstates = append(m.dstates, d)
	}
	// dstate 0: sender A1 + direct rival A2; three targets; bystanders.
	addDS("A1", "A2", "B1", "B2", "B3", "C1", "D1")
	// dstate 1: sender A1 + direct rival A3; two targets (B4, B5).
	addDS("A1", "A3", "B4", "B5", "C2", "D2")
	// dstate 2: three super-rivals; B5's second virtual state; bystanders.
	addDS("A4", "A5", "A6", "B5", "C3", "D3")
	return m, actual["A1"], actual
}

// TestSDSFigure8 replays the paper's Figure 8(a) -> 8(b) conflict
// resolution: both sender dstates split (3 dstates become 5), every
// target is forked exactly once, and no bystander or rival is forked.
func TestSDSFigure8(t *testing.T) {
	m, sender, actual := buildFigure8()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("hand-built Figure 8(a) is invalid: %v", err)
	}
	if got := m.NumStates(); got != 17 {
		t.Fatalf("setup states = %d, want 17", got)
	}
	if got := m.SuperDStateSize(sender); got != 2 {
		t.Fatalf("sender virtual states = %d, want 2", got)
	}

	del, err := m.MapSend(sender, 1)
	if err != nil {
		t.Fatalf("MapSend: %v", err)
	}
	deliverMock(sender, del.Receivers, 42)

	// All five targets receive; all five are forked exactly once.
	if len(del.Receivers) != 5 {
		t.Errorf("receivers = %d, want 5", len(del.Receivers))
	}
	if len(del.Forked) != 5 {
		t.Errorf("forked = %d, want 5", len(del.Forked))
	}
	forkCount := map[*mockState]int{}
	for _, f := range del.Forked {
		if f.node != 1 {
			t.Errorf("non-target state of node %d was forked", f.node)
		}
		forkCount[f]++
	}
	for f, c := range forkCount {
		if c != 1 {
			t.Errorf("state %d forked %d times", f.ID(), c)
		}
	}
	// Figure 8(b): five dstates.
	if m.NumGroups() != 5 {
		t.Errorf("dstates = %d, want 5", m.NumGroups())
	}
	// 17 original + 5 forks.
	if m.NumStates() != 22 {
		t.Errorf("states = %d, want 22", m.NumStates())
	}
	// "Note how no bystander has been forked (only their virtual states
	// are forked)": C1/C2, D1/D2 gained a virtual state each.
	for _, name := range []string{"C1", "C2", "D1", "D2"} {
		if got := m.SuperDStateSize(actual[name]); got != 2 {
			t.Errorf("bystander %s super-dstate size = %d, want 2", name, got)
		}
	}
	// dstate-2 bystanders are untouched.
	for _, name := range []string{"C3", "D3"} {
		if got := m.SuperDStateSize(actual[name]); got != 1 {
			t.Errorf("bystander %s super-dstate size = %d, want 1", name, got)
		}
	}
	// B5's foreign (dstate 2) virtual state must now belong to B5's fork:
	// the fork shares a dstate with the super-rivals A4..A6.
	var b5Fork *mockState
	for _, f := range del.Forked {
		for _, ds := range m.DStateActuals() {
			has := map[*mockState]bool{}
			for _, bucket := range ds {
				for _, s := range bucket {
					has[s] = true
				}
			}
			if has[f] && has[actual["A4"]] {
				b5Fork = f
			}
		}
	}
	if b5Fork == nil {
		t.Error("no fork took over B5's membership in the super-rival dstate")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// §III-D non-duplication: the mapping created no duplicate states.
	if d := duplicateGroups(m); d != 0 {
		t.Errorf("duplicate groups = %d, want 0", d)
	}
}

func TestSDSMultipleSendsProgressive(t *testing.T) {
	// A line of 4 nodes; node 0 branches, sends to 1; node 1 forwards to
	// 2; node 2 forwards to 3. Invariants and non-duplication must hold
	// throughout, and dscenario counts must stay consistent.
	net := newMockNet(4)
	m := NewSDS[*mockState](4)
	register(t, m, net)
	doBranch(m, net[0])

	if _, err := doSend(m, net[0], 1, 1); err != nil {
		t.Fatal(err)
	}
	checkStep(t, m)
	if _, err := doSend(m, net[1], 2, 2); err != nil {
		t.Fatal(err)
	}
	checkStep(t, m)
	if _, err := doSend(m, net[2], 3, 3); err != nil {
		t.Fatal(err)
	}
	checkStep(t, m)
}

func checkStep(t *testing.T, m Mapper[*mockState]) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if d := duplicateGroups(m); d != 0 {
		t.Fatalf("SDS produced %d duplicate groups", d)
	}
}

func TestSDSDScenarioCountMatchesExplode(t *testing.T) {
	net := newMockNet(3)
	m := NewSDS[*mockState](3)
	register(t, m, net)
	doBranch(m, net[0])
	doBranch(m, net[1])
	if _, err := doSend(m, net[0], 1, 9); err != nil {
		t.Fatal(err)
	}
	want := m.DScenarioCount()
	got := big.NewInt(int64(len(m.Explode(0))))
	if want.Cmp(got) != 0 {
		t.Errorf("DScenarioCount = %v, Explode yields %v", want, got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSDSForEachStateVisitsOnce(t *testing.T) {
	net := newMockNet(4)
	m := NewSDS[*mockState](4)
	register(t, m, net)
	doBranch(m, net[0])
	if _, err := doSend(m, net[0], 1, 1); err != nil {
		t.Fatal(err)
	}
	// Bystanders now span two dstates; they must still be visited once.
	counts := map[*mockState]int{}
	m.ForEachState(func(s *mockState) { counts[s]++ })
	for s, c := range counts {
		if c != 1 {
			t.Errorf("state %d visited %d times", s.ID(), c)
		}
	}
	if len(counts) != m.NumStates() {
		t.Errorf("visited %d states, NumStates = %d", len(counts), m.NumStates())
	}
}
