package core

// Mock execution states for white-box mapper tests. The mock reproduces
// the aspects of a symbolic execution state the mapping algorithms can
// observe indirectly: forking copies the configuration, a local branch
// differentiates the two sides (they gain complementary constraints), and
// a packet delivery differentiates receivers from non-receivers. States
// that are never differentiated remain fingerprint-duplicates — exactly
// the duplicates the paper's §III-D argument is about.

type mockState struct {
	id    uint64
	node  int
	hist  uint64 // communication history digest
	cfg   uint64 // remaining configuration digest
	alloc *mockAlloc
}

type mockAlloc struct {
	next uint64
}

func (a *mockAlloc) newID() uint64 {
	a.next++
	return a.next
}

// newMockNet returns one initial state per node, sharing an id allocator.
func newMockNet(k int) []*mockState {
	alloc := &mockAlloc{}
	states := make([]*mockState, k)
	for i := range states {
		states[i] = &mockState{id: alloc.newID(), node: i, alloc: alloc}
	}
	return states
}

func (m *mockState) ID() uint64          { return m.id }
func (m *mockState) NodeID() int         { return m.node }
func (m *mockState) HistoryHash() uint64 { return m.hist }

func (m *mockState) Fork() *mockState {
	cp := *m
	cp.id = m.alloc.newID()
	return &cp
}

func (m *mockState) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	for _, v := range []uint64{uint64(m.node), m.hist, m.cfg} {
		h ^= v
		h *= 1099511628211
	}
	return h
}

func mixMock(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15
	h *= 1099511628211
	return h
}

// branchMock simulates a local symbolic branch: a sibling is forked and
// the two sides' configurations diverge (complementary path constraints).
func branchMock(s *mockState) *mockState {
	sib := s.Fork()
	s.cfg = mixMock(s.cfg, 1)
	sib.cfg = mixMock(sib.cfg, 2)
	return sib
}

// deliverMock simulates the engine's delivery of packet pkt from sender to
// the chosen receivers: histories and configurations of the receivers
// change; everyone else is untouched.
func deliverMock(sender *mockState, receivers []*mockState, pkt uint64) {
	sender.hist = mixMock(sender.hist, pkt)
	for _, r := range receivers {
		r.hist = mixMock(r.hist, pkt|1<<63)
		r.cfg = mixMock(r.cfg, pkt)
	}
}

// doBranch runs a branch through a mapper.
func doBranch(m Mapper[*mockState], s *mockState) (*mockState, []*mockState) {
	sib := branchMock(s)
	extra := m.OnBranch(s, sib)
	return sib, extra
}

// doSend runs a transmission through a mapper and performs the delivery.
func doSend(m Mapper[*mockState], s *mockState, dst int, pkt uint64) (Delivery[*mockState], error) {
	del, err := m.MapSend(s, dst)
	if err != nil {
		return del, err
	}
	deliverMock(s, del.Receivers, pkt)
	return del, nil
}

// duplicateGroups returns how many fingerprints are shared by two or more
// current states of the mapper.
func duplicateGroups(m Mapper[*mockState]) int {
	counts := map[uint64]int{}
	m.ForEachState(func(s *mockState) { counts[s.Fingerprint()]++ })
	dups := 0
	for _, c := range counts {
		if c > 1 {
			dups++
		}
	}
	return dups
}

// statesOf collects the mapper's states grouped by node.
func statesOf(m Mapper[*mockState]) map[int][]*mockState {
	out := map[int][]*mockState{}
	m.ForEachState(func(s *mockState) { out[s.node] = append(out[s.node], s) })
	return out
}
