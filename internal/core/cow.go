package core

import (
	"fmt"
	"math/big"
)

// dstate is COW's grouping unit (§III-B): a set of pairwise conflict-free
// states, at least one per node, possibly several per node. All states of
// one node within a dstate share the same communication history, so a
// dstate compactly represents the cartesian product of its per-node state
// sets as dscenarios.
type dstate[S StateHandle[S]] struct {
	byNode [][]S // indexed by node id
}

func newDState[S StateHandle[S]](k int) *dstate[S] {
	return &dstate[S]{byNode: make([][]S, k)}
}

func (d *dstate[S]) add(s S) { d.byNode[s.NodeID()] = append(d.byNode[s.NodeID()], s) }

func (d *dstate[S]) remove(s S) bool {
	node := s.NodeID()
	bucket := d.byNode[node]
	for i, st := range bucket {
		if st == s {
			d.byNode[node] = append(bucket[:i:i], bucket[i+1:]...)
			return true
		}
	}
	return false
}

// scenarios returns the number of dscenarios this dstate represents: the
// product of its per-node state counts.
func (d *dstate[S]) scenarios() *big.Int {
	n := big.NewInt(1)
	for _, bucket := range d.byNode {
		n.Mul(n, big.NewInt(int64(len(bucket))))
	}
	return n
}

// COW implements the Copy On Write state mapping algorithm (§III-B).
// Local branches are free: the sibling simply joins its predecessor's
// dstate. Conflicts are resolved lazily at transmission time: when the
// sender has rivals (other states of its node in the same dstate), the
// dstate is split — the sender moves to a fresh dstate together with
// forked copies of all targets and bystanders, and the packet is delivered
// in the fresh dstate.
type COW[S StateHandle[S]] struct {
	k         int
	dstates   []*dstate[S]
	index     map[S]*dstate[S]
	nRegister int
}

// NewCOW returns an empty COW mapper for a k-node network.
func NewCOW[S StateHandle[S]](k int) *COW[S] {
	m := &COW[S]{
		k:     k,
		index: make(map[S]*dstate[S], k),
	}
	m.dstates = append(m.dstates, newDState[S](k))
	return m
}

// Algorithm implements Mapper.
func (m *COW[S]) Algorithm() Algorithm { return COWAlgorithm }

// Register implements Mapper.
func (m *COW[S]) Register(s S) {
	node := s.NodeID()
	if node < 0 || node >= m.k {
		panic(fmt.Sprintf("core: COW.Register node %d out of range", node))
	}
	d := m.dstates[0]
	if len(d.byNode[node]) != 0 {
		panic(fmt.Sprintf("core: COW.Register node %d twice", node))
	}
	d.add(s)
	m.index[s] = d
	m.nRegister++
}

// OnBranch implements Mapper: "branching a state due to symbolic input
// will simply add the newly created state to the same dstate as its
// predecessor without forking the rest of the dstate's states" (§III-B).
func (m *COW[S]) OnBranch(orig, sibling S) []S {
	d, ok := m.index[orig]
	if !ok {
		panic(fmt.Sprintf("core: COW.OnBranch of unknown state %d", orig.ID()))
	}
	d.add(sibling)
	m.index[sibling] = d
	return nil
}

// MapSend implements Mapper (§III-B, Figure 4). With no rivals the packet
// is delivered in place to all targets. With rivals, a fresh dstate is
// created holding the sender plus forked copies of every non-rival state
// (targets and bystanders); the copies of the targets receive the packet.
func (m *COW[S]) MapSend(sender S, dst int) (Delivery[S], error) {
	if err := validateSend[S](m.k, sender, dst); err != nil {
		return Delivery[S]{}, err
	}
	d, ok := m.index[sender]
	if !ok {
		return Delivery[S]{}, fmt.Errorf("core: COW.MapSend of unknown state %d", sender.ID())
	}
	senderNode := sender.NodeID()
	hasRival := len(d.byNode[senderNode]) > 1
	if !hasRival {
		// Every dscenario covered by d has this sender; deliver in place.
		return Delivery[S]{Receivers: append([]S(nil), d.byNode[dst]...)}, nil
	}
	// Split: sender leaves d; targets and bystanders are forked into the
	// fresh dstate; rivals stay behind with the originals.
	fresh := newDState[S](m.k)
	d.remove(sender)
	fresh.add(sender)
	m.index[sender] = fresh
	var delivery Delivery[S]
	for node := 0; node < m.k; node++ {
		if node == senderNode {
			continue
		}
		for _, st := range d.byNode[node] {
			cp := st.Fork()
			fresh.add(cp)
			m.index[cp] = fresh
			delivery.Forked = append(delivery.Forked, cp)
			if node == dst {
				delivery.Receivers = append(delivery.Receivers, cp)
			}
		}
	}
	m.dstates = append(m.dstates, fresh)
	return delivery, nil
}

// ScenarioFor implements Mapper: s plus the first same-dstate state of
// every other node (all selections within a dstate are conflict-free).
func (m *COW[S]) ScenarioFor(s S) ([]S, bool) {
	d, ok := m.index[s]
	if !ok {
		return nil, false
	}
	out := make([]S, m.k)
	for node := 0; node < m.k; node++ {
		if node == s.NodeID() {
			out[node] = s
		} else {
			out[node] = d.byNode[node][0]
		}
	}
	return out, true
}

// NumStates implements Mapper.
func (m *COW[S]) NumStates() int { return len(m.index) }

// NumGroups implements Mapper.
func (m *COW[S]) NumGroups() int { return len(m.dstates) }

// DScenarioCount implements Mapper: dstates represent disjoint dscenario
// sets, each the cartesian product of its per-node buckets.
func (m *COW[S]) DScenarioCount() *big.Int {
	total := new(big.Int)
	for _, d := range m.dstates {
		total.Add(total, d.scenarios())
	}
	return total
}

// Explode implements Mapper: enumerate the per-node cartesian product of
// every dstate (§IV-C "deliberate state explosion").
func (m *COW[S]) Explode(limit int) [][]S {
	var out [][]S
	m.ExplodeFunc(limit, func(sc []S) bool {
		out = append(out, sc)
		return true
	})
	return out
}

// ExplodeFunc implements Mapper.
func (m *COW[S]) ExplodeFunc(limit int, fn func([]S) bool) {
	emitted := 0
	for _, d := range m.dstates {
		if !explodeDState(d.byNode, limit, &emitted, func(sc []S) bool { return fn(sc) }) {
			return
		}
	}
}

// explodeDState streams the cartesian product of per-node buckets of
// states, stopping when the shared counter reaches limit (limit > 0) or
// fn returns false; the return value reports whether to continue with
// further dstates.
func explodeDState[S any](byNode [][]S, limit int, emitted *int, fn func([]S) bool) bool {
	k := len(byNode)
	pick := make([]int, k)
	for {
		sc := make([]S, k)
		for node := 0; node < k; node++ {
			if len(byNode[node]) == 0 {
				return true // structurally impossible; guarded by invariants
			}
			sc[node] = byNode[node][pick[node]]
		}
		*emitted++
		if !fn(sc) {
			return false
		}
		if limit > 0 && *emitted >= limit {
			return false
		}
		// Advance the odometer.
		i := k - 1
		for i >= 0 {
			pick[i]++
			if pick[i] < len(byNode[i]) {
				break
			}
			pick[i] = 0
			i--
		}
		if i < 0 {
			return true
		}
	}
}

// ForEachState implements Mapper; visiting order is (dstate creation,
// node id, insertion).
func (m *COW[S]) ForEachState(f func(S)) {
	for _, d := range m.dstates {
		for _, bucket := range d.byNode {
			for _, st := range bucket {
				f(st)
			}
		}
	}
}

// CheckInvariants implements Mapper: every dstate holds at least one state
// per node; states belong to exactly one dstate; all states of one node in
// a dstate have identical communication histories (conflict-freedom,
// §II-B).
func (m *COW[S]) CheckInvariants() error {
	if m.nRegister != m.k {
		return fmt.Errorf("core: COW: registration incomplete (%d of %d)", m.nRegister, m.k)
	}
	seen := make(map[S]bool, len(m.index))
	for di, d := range m.dstates {
		if len(d.byNode) != m.k {
			return fmt.Errorf("core: COW: dstate %d has %d nodes, want %d", di, len(d.byNode), m.k)
		}
		for node, bucket := range d.byNode {
			if len(bucket) == 0 {
				return fmt.Errorf("core: COW: dstate %d has no state for node %d", di, node)
			}
			for _, st := range bucket {
				if st.NodeID() != node {
					return fmt.Errorf("core: COW: dstate %d bucket %d holds state of node %d",
						di, node, st.NodeID())
				}
				if seen[st] {
					return fmt.Errorf("core: COW: state %d appears in two dstates", st.ID())
				}
				seen[st] = true
				if m.index[st] != d {
					return fmt.Errorf("core: COW: index of state %d is stale", st.ID())
				}
			}
			// Conflict-freedom: same node, same dstate => same history.
			for _, st := range bucket[1:] {
				if st.HistoryHash() != bucket[0].HistoryHash() {
					return fmt.Errorf("core: COW: dstate %d node %d holds conflicting states %d and %d",
						di, node, bucket[0].ID(), st.ID())
				}
			}
		}
	}
	if len(seen) != len(m.index) {
		return fmt.Errorf("core: COW: index has %d states, dstates have %d", len(m.index), len(seen))
	}
	return nil
}
