package core

import (
	"math/big"
	"math/rand"
	"testing"
)

// collectStates snapshots the mapper's current states.
func collectStates(m Mapper[*mockState]) []*mockState {
	var out []*mockState
	m.ForEachState(func(s *mockState) { out = append(out, s) })
	return out
}

// fuzzMapper drives a mapper through a random interleaving of local
// branches and transmissions, checking after every operation that
//
//   - the algorithm's structural invariants hold (incl. conflict-freedom),
//   - MapSend never changes the number of represented dscenarios (it only
//     restructures how they are represented),
//   - OnBranch strictly increases it, and
//   - for SDS, no operation ever creates a duplicate state (§III-D).
func fuzzMapper(t testing.TB, algo Algorithm, k, nOps int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := newMockNet(k)
	m, err := New[*mockState](algo, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range net {
		m.Register(s)
	}
	var pkt uint64
	for op := 0; op < nOps; op++ {
		states := collectStates(m)
		s := states[rng.Intn(len(states))]
		before := m.DScenarioCount()
		if rng.Intn(2) == 0 {
			doBranch(m, s)
			after := m.DScenarioCount()
			if after.Cmp(before) <= 0 {
				t.Fatalf("op %d: branch did not increase dscenario count (%v -> %v)",
					op, before, after)
			}
		} else {
			dst := rng.Intn(k - 1)
			if dst >= s.node {
				dst++
			}
			pkt++
			if _, err := doSend(m, s, dst, pkt); err != nil {
				t.Fatalf("op %d: MapSend: %v", op, err)
			}
			after := m.DScenarioCount()
			if after.Cmp(before) != 0 {
				t.Fatalf("op %d: MapSend changed dscenario count (%v -> %v)",
					op, before, after)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if algo == SDSAlgorithm {
			if d := duplicateGroups(m); d != 0 {
				t.Fatalf("op %d: SDS created %d duplicate state groups", op, d)
			}
		}
	}
	// Explode agrees with the count when small enough to enumerate.
	count := m.DScenarioCount()
	if count.Cmp(big.NewInt(4096)) <= 0 {
		if got := len(m.Explode(0)); big.NewInt(int64(got)).Cmp(count) != 0 {
			t.Fatalf("Explode yields %d dscenarios, DScenarioCount says %v", got, count)
		}
	}
}

func TestFuzzCOB(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		fuzzMapper(t, COBAlgorithm, 3+int(seed)%3, 12, seed)
	}
}

func TestFuzzCOW(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		fuzzMapper(t, COWAlgorithm, 3+int(seed)%4, 25, seed)
	}
}

func TestFuzzSDS(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		fuzzMapper(t, SDSAlgorithm, 3+int(seed)%4, 30, seed)
	}
}

// statesOfNode snapshots the mapper's current states of one node.
func statesOfNode(m Mapper[*mockState], node int) []*mockState {
	var out []*mockState
	m.ForEachState(func(s *mockState) {
		if s.node == node {
			out = append(out, s)
		}
	})
	return out
}

// TestStateGrowthOrdering runs the same logical workload — a packet
// forwarded along a line where every receiving state makes a symbolic
// drop decision — on the three algorithms and checks the paper's headline
// ordering: states(SDS) < states(COW) < states(COB). Unlike the fuzz
// driver, the workload is execution-faithful: *every* state of the
// forwarding node transmits (duplicates execute too, which is exactly why
// they are expensive), and every state that received the packet branches.
func TestStateGrowthOrdering(t *testing.T) {
	run := func(algo Algorithm) int {
		const k = 5
		net := newMockNet(k)
		m, err := New[*mockState](algo, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range net {
			m.Register(s)
		}
		for hop := 0; hop < k-1; hop++ {
			pkt := uint64(hop + 1)
			var receivers []*mockState
			seen := map[*mockState]bool{}
			for _, s := range statesOfNode(m, hop) {
				del, err := doSend(m, s, hop+1, pkt)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range del.Receivers {
					if !seen[r] {
						seen[r] = true
						receivers = append(receivers, r)
					}
				}
			}
			for _, r := range receivers {
				doBranch(m, r) // symbolic drop decision on reception
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("%v hop %d: %v", algo, hop, err)
			}
		}
		return m.NumStates()
	}
	cob := run(COBAlgorithm)
	cow := run(COWAlgorithm)
	sds := run(SDSAlgorithm)
	if !(sds < cow && cow < cob) {
		t.Errorf("state ordering violated: SDS=%d COW=%d COB=%d (want SDS < COW < COB)",
			sds, cow, cob)
	}
}

// FuzzMapper is the coverage-guided companion of TestFuzzCOB/COW/SDS:
// the fuzzer picks the algorithm, network size, operation count, and
// interleaving seed, and the same invariant battery must hold.
func FuzzMapper(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint8(20), int64(1))
	f.Add(uint8(1), uint8(4), uint8(25), int64(2))
	f.Add(uint8(2), uint8(2), uint8(30), int64(3))
	algos := []Algorithm{COBAlgorithm, COWAlgorithm, SDSAlgorithm}
	f.Fuzz(func(t *testing.T, algoByte, kByte, opsByte uint8, seed int64) {
		algo := algos[int(algoByte)%len(algos)]
		k := 2 + int(kByte)%4       // 2..5 nodes
		nOps := 1 + int(opsByte)%30 // bounded so COB stays small
		fuzzMapper(t, algo, k, nOps, seed)
	})
}
