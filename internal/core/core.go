// Package core implements the paper's primary contribution: the state
// mapping problem and its three online algorithms — Copy On Branch (COB),
// Copy On Write (COW), and Super DStates (SDS) — described in §III of
// "Scalable Symbolic Execution of Distributed Systems" (ICDCS 2011).
//
// The state mapping problem (paper §II-B): during symbolic distributed
// execution each node is represented by many execution states. When one
// state transmits a packet, the mapping algorithm must decide which states
// of the destination node receive it, keeping every group of states that
// stands for a concrete network execution (a "dscenario") free of
// contradictory communication histories — while creating as few duplicate
// states as possible.
//
// The package is engine-agnostic, mirroring the paper's claim (§V) that
// the algorithms "can be easily transferred to any other symbolic
// execution engine": mappers manipulate opaque state handles that only
// need an identity, a node id, a fork operation, and hashes for the
// test-time oracles. Package vm's *State satisfies the constraint; unit
// tests use lightweight mocks.
package core

import (
	"fmt"
	"math/big"
)

// StateHandle is the constraint a symbolic execution state must satisfy to
// participate in state mapping. Fork must produce an independent duplicate
// (same configuration, fresh identity) whose subsequent evolution does not
// affect the original.
type StateHandle[S comparable] interface {
	comparable
	// ID returns a unique, monotonically assigned state id.
	ID() uint64
	// NodeID returns the id of the node this state executes, in [0, k).
	NodeID() int
	// Fork returns an independent copy of the state.
	Fork() S
	// Fingerprint hashes the state's full configuration (program state,
	// path condition, history); equal fingerprints mean duplicate states.
	Fingerprint() uint64
	// HistoryHash hashes the communication history alone; dstate members
	// of the same node must agree on it (conflict-freedom invariant).
	HistoryHash() uint64
}

// Delivery is the outcome of a MapSend call.
type Delivery[S comparable] struct {
	// Receivers are the destination-node states chosen to receive the
	// packet. The engine is responsible for the actual delivery (history
	// recording and event scheduling).
	Receivers []S
	// Forked lists every state the mapping algorithm created while
	// resolving conflicts, in creation order. The engine must adopt them
	// into its scheduler. Receivers and Forked may overlap (COW delivers
	// to fresh copies) or not (SDS delivers to the original targets).
	Forked []S
}

// Algorithm enumerates the three state mapping algorithms.
type Algorithm int

// The mapping algorithms of paper §III.
const (
	COBAlgorithm Algorithm = iota + 1
	COWAlgorithm
	SDSAlgorithm
)

var algoNames = map[Algorithm]string{
	COBAlgorithm: "COB",
	COWAlgorithm: "COW",
	SDSAlgorithm: "SDS",
}

// String returns the paper's abbreviation for the algorithm.
func (a Algorithm) String() string {
	if s, ok := algoNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Mapper is the common interface of the three state mapping algorithms.
//
// Lifecycle: Register the k initial node states (node ids must be exactly
// 0..k-1, one state each), then feed every local symbolic branch to
// OnBranch and every packet transmission to MapSend. Mappers are not
// safe for concurrent use; the engine serialises execution.
type Mapper[S StateHandle[S]] interface {
	// Algorithm identifies the implementation.
	Algorithm() Algorithm

	// Register adds an initial node state. Must be called exactly once
	// per node before any OnBranch/MapSend.
	Register(s S)

	// OnBranch records that orig forked locally (symbolic input) into
	// sibling. It returns any additional states the algorithm created in
	// response (only COB forks here); the engine must adopt them.
	OnBranch(orig, sibling S) []S

	// MapSend resolves the state mapping for a packet sent by sender to
	// node dst and returns the receivers plus any states created.
	MapSend(sender S, dst int) (Delivery[S], error)

	// NumStates returns the number of execution states currently tracked.
	NumStates() int

	// NumGroups returns the number of grouping structures: dscenarios for
	// COB, dstates for COW and SDS.
	NumGroups() int

	// DScenarioCount returns how many distinct concrete network scenarios
	// (dscenarios) the current state population represents.
	DScenarioCount() *big.Int

	// Explode enumerates up to limit represented dscenarios, each as a
	// slice of k states indexed by node id (limit <= 0 means all). This
	// is the §IV-C "deliberate state explosion" used for test-case
	// generation and for the cross-algorithm equivalence oracle.
	Explode(limit int) [][]S

	// ExplodeFunc streams up to limit dscenarios to fn without
	// materialising the whole list — the incremental generation of
	// §IV-C/§VI ("forking states for a dscenario, generating test cases,
	// and deleting the states could be done in one step"). fn returning
	// false stops the enumeration. The callback owns the slice.
	ExplodeFunc(limit int, fn func(scenario []S) bool)

	// ScenarioFor returns one dscenario containing s — a consistent
	// choice of one state per node. Distributed assertion witnesses are
	// solved over such a dscenario's combined constraints, because the
	// violating state's own path condition lacks the decisions taken on
	// other nodes. ok is false if s is unknown to the mapper.
	ScenarioFor(s S) (scenario []S, ok bool)

	// ForEachState visits every tracked state in a deterministic order.
	ForEachState(f func(S))

	// CheckInvariants validates the algorithm's internal structural
	// invariants (used by tests); it returns the first violation found.
	CheckInvariants() error
}

// New constructs the mapper for the chosen algorithm with the given
// network size.
func New[S StateHandle[S]](algo Algorithm, k int) (Mapper[S], error) {
	switch algo {
	case COBAlgorithm:
		return NewCOB[S](k), nil
	case COWAlgorithm:
		return NewCOW[S](k), nil
	case SDSAlgorithm:
		return NewSDS[S](k), nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", algo)
	}
}

// validateSend checks the common MapSend preconditions.
func validateSend[S StateHandle[S]](k int, sender S, dst int) error {
	if dst < 0 || dst >= k {
		return fmt.Errorf("core: destination node %d out of range [0,%d)", dst, k)
	}
	if dst == sender.NodeID() {
		return fmt.Errorf("core: state %d sends to its own node %d", sender.ID(), dst)
	}
	return nil
}
