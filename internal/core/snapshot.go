// Mapper snapshots: a plain-data mirror of each algorithm's grouping
// structure, referencing execution states by id only. SnapshotMapper
// flattens a mapper for the checkpoint subsystem; RestoreMapper rebuilds
// it around already-restored states. Bucket and list orders are preserved
// exactly — COW's ScenarioFor picks bucket heads and SDS's send phases
// walk super-dstate lists in order, so a reordered restore would diverge
// from the interrupted run. Snapshots cross a disk round-trip, so every
// structural invariant is validated with errors, never panics.
package core

import (
	"fmt"
	"sort"
)

// VDStateImage is one SDS dstate over virtual states, each virtual state
// named by its actual state's id (unambiguous: SDS guarantees at most one
// virtual state per actual state per dstate).
type VDStateImage struct {
	ID     int
	ByNode [][]uint64
}

// SuperImage is one actual state's super-dstate: the dstates its virtual
// states inhabit, in list (head-first) order.
type SuperImage struct {
	StateID   uint64
	DStateIDs []int
}

// MapperSnapshot is the flattened form of a Mapper. Exactly one of the
// per-algorithm sections is populated, selected by Algorithm.
type MapperSnapshot struct {
	Algorithm Algorithm
	K         int

	// COB: one row per dscenario, one state id per node.
	Scenarios [][]uint64

	// COW: one entry per dstate, per node an ordered state bucket.
	DStates [][][]uint64

	// SDS: dstates over virtual states plus per-state super-dstates.
	NextDSID int
	VDStates []VDStateImage
	Supers   []SuperImage // sorted by StateID
}

// SnapshotMapper flattens a mapper produced by New. It fails on a mapper
// still in its registration phase — checkpoints are only taken between
// engine steps, long after registration completes.
func SnapshotMapper[S StateHandle[S]](m Mapper[S]) (*MapperSnapshot, error) {
	switch mm := m.(type) {
	case *COB[S]:
		if mm.pending != nil {
			return nil, fmt.Errorf("core: snapshot of COB mid-registration")
		}
		sp := &MapperSnapshot{Algorithm: COBAlgorithm, K: mm.k}
		for _, sc := range mm.scenarios {
			row := make([]uint64, len(sc.states))
			for node, s := range sc.states {
				row[node] = s.ID()
			}
			sp.Scenarios = append(sp.Scenarios, row)
		}
		return sp, nil
	case *COW[S]:
		if mm.nRegister != mm.k {
			return nil, fmt.Errorf("core: snapshot of COW mid-registration")
		}
		sp := &MapperSnapshot{Algorithm: COWAlgorithm, K: mm.k}
		for _, d := range mm.dstates {
			ds := make([][]uint64, mm.k)
			for node, bucket := range d.byNode {
				ids := make([]uint64, len(bucket))
				for i, s := range bucket {
					ids[i] = s.ID()
				}
				ds[node] = ids
			}
			sp.DStates = append(sp.DStates, ds)
		}
		return sp, nil
	case *SDS[S]:
		if mm.nRegister != mm.k {
			return nil, fmt.Errorf("core: snapshot of SDS mid-registration")
		}
		sp := &MapperSnapshot{Algorithm: SDSAlgorithm, K: mm.k, NextDSID: mm.nextDSID}
		for _, d := range mm.dstates {
			img := VDStateImage{ID: d.id, ByNode: make([][]uint64, mm.k)}
			for node, bucket := range d.byNode {
				ids := make([]uint64, len(bucket))
				for i, v := range bucket {
					ids[i] = v.actual.ID()
				}
				img.ByNode[node] = ids
			}
			sp.VDStates = append(sp.VDStates, img)
		}
		supers := make([]SuperImage, 0, len(mm.virtuals))
		for s, l := range mm.virtuals {
			si := SuperImage{StateID: s.ID()}
			for v := l.head; v != nil; v = v.next {
				si.DStateIDs = append(si.DStateIDs, v.ds.id)
			}
			supers = append(supers, si)
		}
		sort.Slice(supers, func(i, j int) bool { return supers[i].StateID < supers[j].StateID })
		sp.Supers = supers
		return sp, nil
	}
	return nil, fmt.Errorf("core: cannot snapshot mapper %T", m)
}

// RestoreMapper rebuilds a mapper from its snapshot. lookup resolves a
// state id to its restored state; every referenced id must resolve, live
// on the node its bucket claims, and appear in exactly the positions the
// algorithm's invariants allow.
func RestoreMapper[S StateHandle[S]](sp *MapperSnapshot, lookup func(uint64) (S, bool)) (Mapper[S], error) {
	if sp == nil {
		return nil, fmt.Errorf("core: nil mapper snapshot")
	}
	k := sp.K
	if k <= 0 {
		return nil, fmt.Errorf("core: mapper snapshot with k=%d", k)
	}
	resolve := func(id uint64, node int) (S, error) {
		s, ok := lookup(id)
		if !ok {
			var zero S
			return zero, fmt.Errorf("core: mapper snapshot references unknown state %d", id)
		}
		if s.NodeID() != node {
			var zero S
			return zero, fmt.Errorf("core: state %d is on node %d, bucket says %d", id, s.NodeID(), node)
		}
		return s, nil
	}
	switch sp.Algorithm {
	case COBAlgorithm:
		m := &COB[S]{k: k, index: make(map[S]*dscenario[S]), nRegister: k}
		for _, row := range sp.Scenarios {
			if len(row) != k {
				return nil, fmt.Errorf("core: COB dscenario with %d nodes, want %d", len(row), k)
			}
			sc := &dscenario[S]{states: make([]S, k)}
			for node, id := range row {
				s, err := resolve(id, node)
				if err != nil {
					return nil, err
				}
				if _, dup := m.index[s]; dup {
					return nil, fmt.Errorf("core: state %d in two COB dscenarios", id)
				}
				sc.states[node] = s
				m.index[s] = sc
			}
			m.scenarios = append(m.scenarios, sc)
		}
		if len(m.scenarios) == 0 {
			return nil, fmt.Errorf("core: COB snapshot with no dscenarios")
		}
		return m, nil
	case COWAlgorithm:
		m := &COW[S]{k: k, index: make(map[S]*dstate[S]), nRegister: k}
		for di, src := range sp.DStates {
			if len(src) != k {
				return nil, fmt.Errorf("core: COW dstate %d with %d nodes, want %d", di, len(src), k)
			}
			d := newDState[S](k)
			for node, ids := range src {
				if len(ids) == 0 {
					return nil, fmt.Errorf("core: COW dstate %d has no states for node %d", di, node)
				}
				for _, id := range ids {
					s, err := resolve(id, node)
					if err != nil {
						return nil, err
					}
					if _, dup := m.index[s]; dup {
						return nil, fmt.Errorf("core: state %d in two COW dstates", id)
					}
					d.add(s)
					m.index[s] = d
				}
			}
			m.dstates = append(m.dstates, d)
		}
		if len(m.dstates) == 0 {
			return nil, fmt.Errorf("core: COW snapshot with no dstates")
		}
		return m, nil
	case SDSAlgorithm:
		m := &SDS[S]{k: k, virtuals: make(map[S]*vlist[S]), nRegister: k, nextDSID: sp.NextDSID}
		type vkey struct {
			sid uint64
			ds  int
		}
		vmap := make(map[vkey]*vstate[S])
		seenDS := make(map[int]bool, len(sp.VDStates))
		for _, img := range sp.VDStates {
			if img.ID < 0 || img.ID >= sp.NextDSID {
				return nil, fmt.Errorf("core: SDS dstate id %d outside [0,%d)", img.ID, sp.NextDSID)
			}
			if seenDS[img.ID] {
				return nil, fmt.Errorf("core: SDS dstate id %d twice", img.ID)
			}
			seenDS[img.ID] = true
			if len(img.ByNode) != k {
				return nil, fmt.Errorf("core: SDS dstate %d with %d nodes, want %d", img.ID, len(img.ByNode), k)
			}
			d := &vDState[S]{id: img.ID, byNode: make([][]*vstate[S], k)}
			for node, ids := range img.ByNode {
				if len(ids) == 0 {
					return nil, fmt.Errorf("core: SDS dstate %d has no states for node %d", img.ID, node)
				}
				for _, id := range ids {
					s, err := resolve(id, node)
					if err != nil {
						return nil, err
					}
					key := vkey{sid: id, ds: img.ID}
					if vmap[key] != nil {
						return nil, fmt.Errorf("core: state %d twice in SDS dstate %d", id, img.ID)
					}
					v := &vstate[S]{actual: s}
					d.add(v)
					vmap[key] = v
				}
			}
			m.dstates = append(m.dstates, d)
		}
		if len(m.dstates) == 0 {
			return nil, fmt.Errorf("core: SDS snapshot with no dstates")
		}
		attached := make(map[*vstate[S]]bool, len(vmap))
		for _, si := range sp.Supers {
			s, ok := lookup(si.StateID)
			if !ok {
				return nil, fmt.Errorf("core: super-dstate of unknown state %d", si.StateID)
			}
			if _, dup := m.virtuals[s]; dup {
				return nil, fmt.Errorf("core: state %d has two super-dstates", si.StateID)
			}
			l := &vlist[S]{}
			// prepend builds the list back-to-front, so feed it the stored
			// head-first order in reverse.
			for i := len(si.DStateIDs) - 1; i >= 0; i-- {
				v := vmap[vkey{sid: si.StateID, ds: si.DStateIDs[i]}]
				if v == nil {
					return nil, fmt.Errorf("core: state %d's super-dstate names dstate %d it is not in",
						si.StateID, si.DStateIDs[i])
				}
				if attached[v] {
					return nil, fmt.Errorf("core: state %d lists dstate %d twice", si.StateID, si.DStateIDs[i])
				}
				attached[v] = true
				l.prepend(v)
			}
			m.virtuals[s] = l
		}
		if len(attached) != len(vmap) {
			return nil, fmt.Errorf("core: %d virtual states not claimed by any super-dstate",
				len(vmap)-len(attached))
		}
		return m, nil
	}
	return nil, fmt.Errorf("core: mapper snapshot with unknown algorithm %d", sp.Algorithm)
}
