package core

import (
	"fmt"
	"math/big"
)

// vstate is a virtual state (§III-C): a lightweight reference to an actual
// execution state, living in exactly one dstate. An actual state has one
// or more virtual states; the set of dstates reachable through them is the
// state's super-dstate. Virtual states of one actual state form an
// intrusive singly-linked list (next) — appends during dstate splits are
// the hottest operation of large runs and must not reallocate.
type vstate[S StateHandle[S]] struct {
	actual S
	ds     *vDState[S]
	next   *vstate[S]
}

// vlist is the super-dstate of one actual state: its virtual states.
type vlist[S StateHandle[S]] struct {
	head *vstate[S]
	n    int
}

func (l *vlist[S]) prepend(v *vstate[S]) {
	v.next = l.head
	l.head = v
	l.n++
}

// vDState is a dstate over virtual states.
type vDState[S StateHandle[S]] struct {
	id     int
	byNode [][]*vstate[S] // indexed by node id
}

func (d *vDState[S]) add(v *vstate[S]) {
	v.ds = d
	d.byNode[v.actual.NodeID()] = append(d.byNode[v.actual.NodeID()], v)
}

func (d *vDState[S]) remove(v *vstate[S]) bool {
	node := v.actual.NodeID()
	bucket := d.byNode[node]
	for i, u := range bucket {
		if u == v {
			d.byNode[node] = append(bucket[:i:i], bucket[i+1:]...)
			return true
		}
	}
	return false
}

// SDS implements the Super DStates mapping algorithm (§III-C):
// conceptually COW executed on virtual states, so that a bystander's
// virtual state is forked while the actual bystander state is executed
// only once. Only target states are ever forked — at most once per
// transmission — which yields the algorithm's non-duplication property
// (§III-D).
type SDS[S StateHandle[S]] struct {
	k         int
	dstates   []*vDState[S]
	virtuals  map[S]*vlist[S] // actual state -> its super-dstate
	nRegister int
	nextDSID  int
}

// NewSDS returns an empty SDS mapper for a k-node network.
func NewSDS[S StateHandle[S]](k int) *SDS[S] {
	m := &SDS[S]{
		k:        k,
		virtuals: make(map[S]*vlist[S], k),
	}
	m.dstates = append(m.dstates, m.newDState())
	return m
}

func (m *SDS[S]) newDState() *vDState[S] {
	d := &vDState[S]{id: m.nextDSID, byNode: make([][]*vstate[S], m.k)}
	m.nextDSID++
	return d
}

// Algorithm implements Mapper.
func (m *SDS[S]) Algorithm() Algorithm { return SDSAlgorithm }

// Register implements Mapper.
func (m *SDS[S]) Register(s S) {
	node := s.NodeID()
	if node < 0 || node >= m.k {
		panic(fmt.Sprintf("core: SDS.Register node %d out of range", node))
	}
	d := m.dstates[0]
	if len(d.byNode[node]) != 0 {
		panic(fmt.Sprintf("core: SDS.Register node %d twice", node))
	}
	v := &vstate[S]{actual: s}
	d.add(v)
	l := &vlist[S]{}
	l.prepend(v)
	m.virtuals[s] = l
	m.nRegister++
}

// OnBranch implements Mapper: the sibling joins every dstate of its
// predecessor — COW's branch rule applied to each virtual state.
func (m *SDS[S]) OnBranch(orig, sibling S) []S {
	origList, ok := m.virtuals[orig]
	if !ok {
		panic(fmt.Sprintf("core: SDS.OnBranch of unknown state %d", orig.ID()))
	}
	sibList := &vlist[S]{}
	for vs := origList.head; vs != nil; vs = vs.next {
		v2 := &vstate[S]{actual: sibling}
		vs.ds.add(v2)
		sibList.prepend(v2)
	}
	m.virtuals[sibling] = sibList
	return nil
}

// MapSend implements Mapper, following the four phases of §III-C:
//
//  1. Finding targets: the actual states behind the virtual targets in
//     every dstate holding a virtual state of the sender.
//  2. Finding rivals: direct rivals share a dstate with a sending virtual
//     state; super-rivals share a dstate with a target but not the sender.
//  3. Forking condition: a target is forked (exactly once) iff any of its
//     virtual states will not receive the packet — i.e. it shares a
//     dstate with a direct rival, or it lives in a dstate without the
//     sender (super-rival dstates, Figure 7).
//  4. Virtual forking: dstates with direct rivals are split exactly as
//     COW splits dstates of actual states (Figure 8); bystander virtual
//     copies attach to the *same* actual state, so no bystander is ever
//     duplicated.
//
// The original target receives the packet; its fork does not.
func (m *SDS[S]) MapSend(sender S, dst int) (Delivery[S], error) {
	if err := validateSend[S](m.k, sender, dst); err != nil {
		return Delivery[S]{}, err
	}
	senderList, ok := m.virtuals[sender]
	if !ok {
		return Delivery[S]{}, fmt.Errorf("core: SDS.MapSend of unknown state %d", sender.ID())
	}
	senderNode := sender.NodeID()

	// Phase 1+2: sender dstates, their rivals, and the actual targets.
	senderDS := make(map[*vDState[S]]*vstate[S], senderList.n)
	for vs := senderList.head; vs != nil; vs = vs.next {
		senderDS[vs.ds] = vs
	}
	hasRivals := func(d *vDState[S]) bool {
		// Any virtual state of the sender's node other than the sending
		// virtual state itself is a direct rival.
		for _, v := range d.byNode[senderNode] {
			if v != senderDS[d] {
				return true
			}
		}
		return false
	}
	var targets []S
	targetSeen := make(map[S]bool)
	for vs := senderList.head; vs != nil; vs = vs.next { // deterministic order
		for _, vt := range vs.ds.byNode[dst] {
			if !targetSeen[vt.actual] {
				targetSeen[vt.actual] = true
				targets = append(targets, vt.actual)
			}
		}
	}

	// Phase 3: classify each target's virtual states; a virtual state
	// does not receive when its dstate lacks the sender (super-rival
	// case) or will be split (direct-rival case).
	nonRecv := make(map[*vstate[S]]bool)
	var delivery Delivery[S]
	forkOf := make(map[S]S, len(targets))
	for _, t := range targets {
		fork := false
		for vt := m.virtuals[t].head; vt != nil; vt = vt.next {
			if _, inSenderDS := senderDS[vt.ds]; !inSenderDS {
				fork = true
				nonRecv[vt] = true
			} else if hasRivals(vt.ds) {
				fork = true
				nonRecv[vt] = true
			}
		}
		if fork {
			tq := t.Fork()
			forkOf[t] = tq
			m.virtuals[tq] = &vlist[S]{}
			delivery.Forked = append(delivery.Forked, tq)
		}
		delivery.Receivers = append(delivery.Receivers, t)
	}

	// Phase 4a: split every sender dstate that has direct rivals, exactly
	// as COW would: the sending virtual state moves to the fresh dstate
	// together with copies of all non-rival virtual states. Copies of
	// virtual targets attach to the receiving original target; copies of
	// bystander virtual states attach to the same actual state — this is
	// precisely what avoids duplicating bystanders.
	for vs := senderList.head; vs != nil; vs = vs.next {
		d := vs.ds
		if !hasRivals(d) {
			continue // virtual delivery in place; nothing to restructure
		}
		fresh := m.newDState()
		d.remove(vs)
		fresh.add(vs)
		for node := 0; node < m.k; node++ {
			if node == senderNode {
				continue // direct rivals stay behind
			}
			fresh.byNode[node] = make([]*vstate[S], 0, len(d.byNode[node]))
			for _, v := range d.byNode[node] {
				v2 := &vstate[S]{actual: v.actual}
				fresh.add(v2)
				m.virtuals[v.actual].prepend(v2)
			}
		}
		m.dstates = append(m.dstates, fresh)
	}

	// Phase 4b: reassign the non-receiving original virtual states of
	// each forked target to the fork (Figure 7: "vt is only moved to t'
	// without changing vt's dstate"), partitioning each target's list in
	// one pass.
	for _, t := range targets {
		tq, forked := forkOf[t]
		if !forked {
			continue
		}
		keep := &vlist[S]{}
		move := m.virtuals[tq] // empty list created above
		list := m.virtuals[t]
		var next *vstate[S]
		for vt := list.head; vt != nil; vt = next {
			next = vt.next
			if nonRecv[vt] {
				vt.actual = tq
				move.prepend(vt)
			} else {
				keep.prepend(vt)
			}
		}
		m.virtuals[t] = keep
	}
	return delivery, nil
}

// ScenarioFor implements Mapper: s plus the first actual state of every
// other node in the dstate of s's first virtual state.
func (m *SDS[S]) ScenarioFor(s S) ([]S, bool) {
	l, ok := m.virtuals[s]
	if !ok || l.head == nil {
		return nil, false
	}
	d := l.head.ds
	out := make([]S, m.k)
	for node := 0; node < m.k; node++ {
		if node == s.NodeID() {
			out[node] = s
		} else {
			out[node] = d.byNode[node][0].actual
		}
	}
	return out, true
}

// NumStates implements Mapper (actual execution states).
func (m *SDS[S]) NumStates() int { return len(m.virtuals) }

// NumVirtualStates returns the number of virtual states, the measure of
// SDS's bookkeeping overhead.
func (m *SDS[S]) NumVirtualStates() int {
	n := 0
	for _, l := range m.virtuals {
		n += l.n
	}
	return n
}

// NumGroups implements Mapper.
func (m *SDS[S]) NumGroups() int { return len(m.dstates) }

// SuperDStateSize returns how many dstates the state belongs to.
func (m *SDS[S]) SuperDStateSize(s S) int {
	if l, ok := m.virtuals[s]; ok {
		return l.n
	}
	return 0
}

// DScenarioCount implements Mapper.
func (m *SDS[S]) DScenarioCount() *big.Int {
	total := new(big.Int)
	one := big.NewInt(1)
	for _, d := range m.dstates {
		n := new(big.Int).Set(one)
		for _, bucket := range d.byNode {
			n.Mul(n, big.NewInt(int64(len(bucket))))
		}
		total.Add(total, n)
	}
	return total
}

// Explode implements Mapper: the per-node cartesian product of every
// dstate, projected to actual states.
func (m *SDS[S]) Explode(limit int) [][]S {
	var out [][]S
	m.ExplodeFunc(limit, func(sc []S) bool {
		out = append(out, sc)
		return true
	})
	return out
}

// ExplodeFunc implements Mapper.
func (m *SDS[S]) ExplodeFunc(limit int, fn func([]S) bool) {
	emitted := 0
	for _, d := range m.dstates {
		// Project the virtual buckets to actual states once per dstate.
		byNode := make([][]S, m.k)
		for node, bucket := range d.byNode {
			actuals := make([]S, len(bucket))
			for i, v := range bucket {
				actuals[i] = v.actual
			}
			byNode[node] = actuals
		}
		if !explodeDState(byNode, limit, &emitted, fn) {
			return
		}
	}
}

// ForEachState implements Mapper; each actual state is visited once, in
// (dstate creation, node, position) order of its first appearance.
func (m *SDS[S]) ForEachState(f func(S)) {
	seen := make(map[S]bool, len(m.virtuals))
	for _, d := range m.dstates {
		for _, bucket := range d.byNode {
			for _, v := range bucket {
				if !seen[v.actual] {
					seen[v.actual] = true
					f(v.actual)
				}
			}
		}
	}
}

// DStateActuals exposes the dstate structure for tests and diagnostics:
// one entry per dstate, holding the actual states behind each node's
// virtual states.
func (m *SDS[S]) DStateActuals() [][][]S {
	out := make([][][]S, 0, len(m.dstates))
	for _, d := range m.dstates {
		ds := make([][]S, m.k)
		for node, bucket := range d.byNode {
			for _, v := range bucket {
				ds[node] = append(ds[node], v.actual)
			}
		}
		out = append(out, ds)
	}
	return out
}

// CheckInvariants implements Mapper: every dstate holds at least one
// virtual state per node; no two virtual states of one dstate share an
// actual state (Figure 8a caption); back-pointers are consistent; every
// actual state has at least one virtual state; and same-node actual
// states within a dstate have identical communication histories.
func (m *SDS[S]) CheckInvariants() error {
	if m.nRegister != m.k {
		return fmt.Errorf("core: SDS: registration incomplete (%d of %d)", m.nRegister, m.k)
	}
	attached := make(map[*vstate[S]]bool)
	for _, d := range m.dstates {
		for node, bucket := range d.byNode {
			if len(bucket) == 0 {
				return fmt.Errorf("core: SDS: dstate %d has no virtual state for node %d", d.id, node)
			}
			actuals := make(map[S]bool, len(bucket))
			for _, v := range bucket {
				if v.actual.NodeID() != node {
					return fmt.Errorf("core: SDS: dstate %d node %d holds virtual of node %d",
						d.id, node, v.actual.NodeID())
				}
				if v.ds != d {
					return fmt.Errorf("core: SDS: virtual state back-pointer stale in dstate %d", d.id)
				}
				if actuals[v.actual] {
					return fmt.Errorf("core: SDS: dstate %d holds two virtuals of state %d",
						d.id, v.actual.ID())
				}
				actuals[v.actual] = true
				attached[v] = true
				found := false
				for u := m.virtuals[v.actual].head; u != nil; u = u.next {
					if u == v {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("core: SDS: virtual of state %d missing from its super-dstate",
						v.actual.ID())
				}
			}
			first := bucket[0].actual
			for _, v := range bucket[1:] {
				if v.actual.HistoryHash() != first.HistoryHash() {
					return fmt.Errorf("core: SDS: dstate %d node %d holds conflicting states %d and %d",
						d.id, node, first.ID(), v.actual.ID())
				}
			}
		}
	}
	total := 0
	for s, l := range m.virtuals {
		if l.head == nil {
			return fmt.Errorf("core: SDS: state %d has no virtual states", s.ID())
		}
		count := 0
		for v := l.head; v != nil; v = v.next {
			count++
			if !attached[v] {
				return fmt.Errorf("core: SDS: dangling virtual state of %d", s.ID())
			}
			if v.actual != s {
				return fmt.Errorf("core: SDS: super-dstate of %d lists foreign virtual", s.ID())
			}
		}
		if count != l.n {
			return fmt.Errorf("core: SDS: state %d list count %d != recorded %d", s.ID(), count, l.n)
		}
		total += count
	}
	if total != len(attached) {
		return fmt.Errorf("core: SDS: %d virtuals attached, %d listed", len(attached), total)
	}
	return nil
}
