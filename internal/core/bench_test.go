package core

import (
	"fmt"
	"testing"
)

// benchNet prepares a mapper with b branched states per armed node, the
// population shape of a mid-run scenario.
func benchNet(tb testing.TB, algo Algorithm, k, branches int) (Mapper[*mockState], []*mockState) {
	tb.Helper()
	net := newMockNet(k)
	m, err := New[*mockState](algo, k)
	if err != nil {
		tb.Fatal(err)
	}
	for _, s := range net {
		m.Register(s)
	}
	for i := 0; i < branches; i++ {
		doBranch(m, net[0])
		doBranch(m, net[1])
	}
	return m, net
}

// BenchmarkMapSend measures one state-mapping resolution per algorithm on
// a 32-node network where the sender has rivals — the hot operation of
// every SDE run. COW pays for bystander forks, SDS only for virtual
// bookkeeping.
func BenchmarkMapSend(b *testing.B) {
	for _, algo := range []Algorithm{COWAlgorithm, SDSAlgorithm} {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, net := benchNet(b, algo, 32, 1)
				b.StartTimer()
				if _, err := doSend(m, net[0], 1, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnBranch measures the local-branch cost: free for COW/SDS,
// a whole-dscenario fork for COB.
func BenchmarkOnBranch(b *testing.B) {
	for _, algo := range []Algorithm{COBAlgorithm, COWAlgorithm, SDSAlgorithm} {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, net := benchNet(b, algo, 32, 0)
				b.StartTimer()
				doBranch(m, net[0])
			}
		})
	}
}

// BenchmarkExplodeMapper measures dscenario enumeration from the compact
// representations.
func BenchmarkExplodeMapper(b *testing.B) {
	for _, algo := range []Algorithm{COWAlgorithm, SDSAlgorithm} {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			m, net := benchNet(b, algo, 8, 3)
			for hop := 0; hop < 7; hop++ {
				if _, err := doSend(m, net[hop], hop+1, uint64(hop)); err != nil {
					b.Fatal(err)
				}
			}
			count := m.DScenarioCount().Int64()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := len(m.Explode(0)); int64(got) != count {
					b.Fatalf("exploded %d, want %d", got, count)
				}
			}
			b.ReportMetric(float64(count), "dscenarios")
		})
	}
}

// BenchmarkSuperDStateGrowth demonstrates the SDS virtual-state overhead:
// repeated conflicted sends grow bystander super-dstates, and the
// bookkeeping per send with it.
func BenchmarkSuperDStateGrowth(b *testing.B) {
	for _, sends := range []int{4, 16, 64} {
		sends := sends
		b.Run(fmt.Sprintf("sends%d", sends), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m, net := benchNet(b, SDSAlgorithm, 16, 1)
				b.StartTimer()
				for j := 0; j < sends; j++ {
					src := net[j%2]
					if _, err := doSend(m, src, 2+(j%14), uint64(j)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
