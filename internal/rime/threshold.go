package rime

import (
	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/vm"
)

// Threshold-alarm workload: symbolic *data* instead of symbolic failures.
// The source samples a symbolic sensor reading and broadcasts it; each
// hop compares the received value against an alarm threshold and only
// forwards readings above it. This is the paper's §II-A "symbolic packet
// header" setting: the sender's symbolic variable travels inside packets,
// receivers branch on it, and the path conditions of *different nodes*
// constrain the *same* variable — dscenario test cases must therefore be
// solved over cross-node constraint sets.

// Threshold configuration and state words.
const (
	AddrThreshold  = 0x30 // alarm threshold
	AddrAlarms     = 0x31 // receiver: alarms raised
	AddrQuiet      = 0x32 // receiver: readings below the threshold
	AddrSensorBits = 0x33 // source: width of the symbolic reading
)

// Threshold packet layout (words).
const (
	ThPktMagic = 0
	ThPktValue = 1
	ThPktHops  = 2
	ThPktLen   = 3
)

// ThresholdMagic identifies sensor-reading packets.
const ThresholdMagic = 0x5E45

// ThresholdProgram builds the threshold-alarm node software. The node
// with AddrRole == RoleSource samples one symbolic reading at boot and
// broadcasts it; every receiver raises an alarm and forwards the reading
// when it exceeds AddrThreshold, and counts it quietly otherwise. An
// assertion checks the invariant that alarms are only raised for
// above-threshold readings (it holds — the interesting output is the
// path structure and the cross-node test cases).
func ThresholdProgram() (*isa.Program, error) {
	b := isa.NewBuilder()

	boot := b.Func("boot")
	boot.MovI(isa.R3, 0)
	boot.Load(isa.R1, isa.R3, AddrRole)
	boot.NeI(isa.R2, isa.R1, RoleSource)
	boot.BrNZ(isa.R2, "done")
	boot.Load(isa.R4, isa.R3, AddrInterval)
	boot.Timer("sample", isa.R4, isa.R0)
	boot.Label("done")
	boot.Ret()

	sample := b.Func("sample")
	sample.MovI(isa.R3, 0)
	sample.Sym(isa.R1, "reading", 16) // the symbolic sensor value
	sample.MovI(isa.R6, TxBuf)
	sample.MovI(isa.R7, ThresholdMagic)
	sample.Store(isa.R6, ThPktMagic, isa.R7)
	sample.Store(isa.R6, ThPktValue, isa.R1)
	sample.MovI(isa.R7, 0)
	sample.Store(isa.R6, ThPktHops, isa.R7)
	sample.MovI(isa.R8, isa.BroadcastAddr)
	sample.Send(isa.R8, isa.R6, ThPktLen)
	sample.Ret()

	recv := b.Func("on_recv")
	recv.MovI(isa.R3, 0)
	recv.Load(isa.R4, isa.R1, ThPktMagic)
	recv.EqI(isa.R5, isa.R4, ThresholdMagic)
	recv.BrZ(isa.R5, "ignore")
	recv.Load(isa.R4, isa.R1, ThPktValue) // the (symbolic) reading
	recv.Load(isa.R5, isa.R3, AddrThreshold)
	recv.Ult(isa.R6, isa.R5, isa.R4) // threshold < reading ?
	recv.BrNZ(isa.R6, "alarm")
	// Quiet reading: count and stop the spread.
	recv.Load(isa.R7, isa.R3, AddrQuiet)
	recv.AddI(isa.R7, isa.R7, 1)
	recv.Store(isa.R3, AddrQuiet, isa.R7)
	recv.Ret()

	recv.Label("alarm")
	// The invariant the assertion guards: an alarm is only raised for a
	// reading strictly above the threshold (trivially true on this path;
	// the checker proves it across all forwarding chains).
	recv.Assert(isa.R6, "threshold: alarm for quiet reading")
	recv.Load(isa.R7, isa.R3, AddrAlarms)
	recv.AddI(isa.R7, isa.R7, 1)
	recv.Store(isa.R3, AddrAlarms, isa.R7)
	// Forward above-threshold readings (bounded by hop count).
	recv.Load(isa.R8, isa.R1, ThPktHops)
	recv.AddI(isa.R8, isa.R8, 1)
	recv.UltI(isa.R9, isa.R8, MaxHops)
	recv.Assert(isa.R9, "threshold: hop overflow")
	recv.Load(isa.R10, isa.R3, AddrAlarms)
	recv.UltI(isa.R10, isa.R10, 2) // re-forward only the first alarm
	recv.BrZ(isa.R10, "ignore")
	recv.MovI(isa.R6, TxBuf)
	recv.MovI(isa.R7, ThresholdMagic)
	recv.Store(isa.R6, ThPktMagic, isa.R7)
	recv.Store(isa.R6, ThPktValue, isa.R4)
	recv.Store(isa.R6, ThPktHops, isa.R8)
	recv.MovI(isa.R11, isa.BroadcastAddr)
	recv.Send(isa.R11, isa.R6, ThPktLen)
	recv.Label("ignore")
	recv.Ret()

	return b.Build()
}

// ThresholdConfig parameterises a threshold-alarm scenario.
type ThresholdConfig struct {
	Source    int
	Threshold uint64
	Interval  uint64
}

// NodeInit returns the engine callback for the threshold scenario.
func (c ThresholdConfig) NodeInit() func(node int, s *vm.State, eb *expr.Builder) {
	return func(node int, s *vm.State, eb *expr.Builder) {
		cw := func(addr uint32, v uint64) {
			s.StoreWord(addr, eb.Const(v, vm.WordBits))
		}
		role := uint64(RoleForwarder)
		if node == c.Source {
			role = RoleSource
		}
		cw(AddrRole, role)
		cw(AddrThreshold, c.Threshold)
		cw(AddrInterval, c.Interval)
	}
}
