package rime_test

import (
	"strings"
	"testing"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/vm"
)

func runConcrete(t *testing.T, topo sim.Topology, prog *isa.Program,
	nodeInit func(int, *vm.State, *expr.Builder), horizon uint64) *sim.Result {
	t.Helper()
	eng, err := sim.NewEngine(sim.Config{
		Topo:      topo,
		Prog:      prog,
		Algorithm: core.SDSAlgorithm,
		Horizon:   horizon,
		NodeInit:  nodeInit,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func nodeState(res *sim.Result, node int) *vm.State {
	var out *vm.State
	res.Mapper.ForEachState(func(s *vm.State) {
		if s.NodeID() == node {
			out = s
		}
	})
	return out
}

func word(t *testing.T, s *vm.State, addr uint32) uint64 {
	t.Helper()
	v := s.LoadWord(addr)
	if !v.IsConst() {
		t.Fatalf("word at %#x is symbolic: %v", addr, v)
	}
	return v.ConstVal()
}

func TestCollectProgramBuilds(t *testing.T) {
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatalf("CollectProgram: %v", err)
	}
	for _, fn := range []string{"boot", "send_data", "on_recv", "forward"} {
		if prog.FuncIndex(fn) < 0 {
			t.Errorf("program lacks function %q", fn)
		}
	}
	asm := prog.Disasm()
	if !strings.Contains(asm, "send dst=") {
		t.Error("disassembly lacks a send instruction")
	}
}

func TestCollectLineDelivery(t *testing.T) {
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := rime.CollectConfig{
		Source: 3, Sink: 0, Route: []int{3, 2, 1, 0}, Interval: 100, Packets: 4,
	}
	nodeInit, err := cfg.NodeInit(4)
	if err != nil {
		t.Fatal(err)
	}
	res := runConcrete(t, sim.NewLine(4), prog, nodeInit, 10000)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	sink := nodeState(res, 0)
	if got := word(t, sink, rime.AddrDelivered); got != 4 {
		t.Errorf("sink delivered %d packets, want 4", got)
	}
	if got := word(t, sink, rime.AddrLastSeq); got != 4 {
		t.Errorf("sink last-seq+1 = %d, want 4", got)
	}
	// Both forwarders relayed all 4 packets.
	for _, n := range []int{1, 2} {
		if got := word(t, nodeState(res, n), rime.AddrForwarded); got != 4 {
			t.Errorf("node %d forwarded %d, want 4", n, got)
		}
	}
	// The source overhears its downstream neighbour's forward.
	if got := word(t, nodeState(res, 3), rime.AddrOverheard); got != 4 {
		t.Errorf("source overheard %d, want 4", got)
	}
}

func TestCollectOffRouteOverhears(t *testing.T) {
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewGrid(3, 3)
	route := g.StaircaseRoute(8, 0)
	cfg := rime.CollectConfig{Source: 8, Sink: 0, Route: route, Interval: 100, Packets: 2}
	nodeInit, err := cfg.NodeInit(g.K())
	if err != nil {
		t.Fatal(err)
	}
	res := runConcrete(t, g, prog, nodeInit, 10000)
	// Node 5 neighbours route nodes 8 and 4: it overhears but never
	// forwards or delivers.
	n5 := nodeState(res, 5)
	if got := word(t, n5, rime.AddrOverheard); got == 0 {
		t.Error("off-route neighbour overheard nothing")
	}
	if got := word(t, n5, rime.AddrForwarded); got != 0 {
		t.Errorf("off-route neighbour forwarded %d packets", got)
	}
	// Node 2 touches no route node: total silence.
	n2 := nodeState(res, 2)
	if got := word(t, n2, rime.AddrOverheard); got != 0 {
		t.Errorf("isolated node overheard %d packets", got)
	}
	if got := len(n2.History()); got != 0 {
		t.Errorf("isolated node history has %d entries", got)
	}
}

func TestCollectConfigValidation(t *testing.T) {
	cfg := rime.CollectConfig{Source: 2, Sink: 0, Route: []int{2}, Interval: 1, Packets: 1}
	if _, err := cfg.NodeInit(3); err == nil {
		t.Error("single-node route accepted")
	}
	cfg = rime.CollectConfig{Source: 2, Sink: 0, Route: []int{1, 0}, Interval: 1, Packets: 1}
	if _, err := cfg.NodeInit(3); err == nil {
		t.Error("route not starting at the source accepted")
	}
	cfg = rime.CollectConfig{Source: 2, Sink: 0, Route: []int{2, 1}, Interval: 1, Packets: 1}
	if _, err := cfg.NodeInit(3); err == nil {
		t.Error("route not ending at the sink accepted")
	}
}

func TestCollectRoutingLoopAssertion(t *testing.T) {
	// A deliberately mis-configured network: nodes 1 and 2 route to each
	// other, so a packet ping-pongs until the hop-count assertion trips —
	// the loop-detection corner case surfaced by SDE.
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatal(err)
	}
	nodeInit := func(node int, s *vm.State, eb *expr.Builder) {
		cw := func(addr uint32, v uint64) { s.StoreWord(addr, eb.Const(v, vm.WordBits)) }
		role := uint64(rime.RoleForwarder)
		if node == 0 {
			role = rime.RoleSource
		}
		cw(rime.AddrRole, role)
		next := map[int]uint64{0: 1, 1: 2, 2: 1}[node]
		cw(rime.AddrNextHop, next)
		cw(rime.AddrInterval, 100)
		cw(rime.AddrNumPackets, 1)
	}
	res := runConcrete(t, sim.NewLine(3), prog, nodeInit, 100000)
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Msg, "routing loop") {
			found = true
		}
	}
	if !found {
		t.Errorf("routing loop not detected; violations: %+v", res.Violations)
	}
}

func TestFloodProgramBuilds(t *testing.T) {
	prog, err := rime.FloodProgram()
	if err != nil {
		t.Fatalf("FloodProgram: %v", err)
	}
	for _, fn := range []string{"boot", "send_flood", "on_recv"} {
		if prog.FuncIndex(fn) < 0 {
			t.Errorf("program lacks function %q", fn)
		}
	}
}

func TestFloodReachesEveryNode(t *testing.T) {
	prog, err := rime.FloodProgram()
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewGrid(3, 3)
	fc := rime.FloodConfig{Source: 0, Interval: 100, Packets: 2}
	res := runConcrete(t, g, prog, fc.NodeInit(), 10000)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	// Every non-source node has marked both packets from origin 0 as
	// seen (seen word = last seq + 1 = 2).
	for n := 1; n < g.K(); n++ {
		s := nodeState(res, n)
		if got := word(t, s, rime.AddrFloodSeen+0); got != 2 {
			t.Errorf("node %d saw %d packets from origin 0, want 2", n, got)
		}
	}
	// Flooding terminates: the run completed within the horizon without
	// hitting any cap, so rebroadcast suppression works.
	if res.Aborted {
		t.Errorf("flood did not terminate: %s", res.AbortReason)
	}
	// Each node rebroadcasts each packet exactly once: sends per node =
	// packets * degree (broadcast = one unicast per neighbour).
	for n := 1; n < g.K(); n++ {
		s := nodeState(res, n)
		sent := 0
		for _, h := range s.History() {
			if h.Dir == vm.DirSent {
				sent++
			}
		}
		want := 2 * len(g.Neighbors(n))
		if sent != want {
			t.Errorf("node %d sent %d unicasts, want %d", n, sent, want)
		}
	}
}

func TestFloodIgnoresDuplicates(t *testing.T) {
	// On a full mesh every node hears every rebroadcast; without the
	// seen-check the flood would never terminate.
	prog, err := rime.FloodProgram()
	if err != nil {
		t.Fatal(err)
	}
	fc := rime.FloodConfig{Source: 0, Interval: 100, Packets: 1}
	res := runConcrete(t, sim.NewFullMesh(5), prog, fc.NodeInit(), 10000)
	if res.Aborted {
		t.Fatalf("mesh flood did not terminate: %s", res.AbortReason)
	}
	for n := 1; n < 5; n++ {
		s := nodeState(res, n)
		sent := 0
		for _, h := range s.History() {
			if h.Dir == vm.DirSent {
				sent++
			}
		}
		if sent != 4 {
			t.Errorf("node %d sent %d unicasts, want 4 (one rebroadcast)", n, sent)
		}
	}
}
