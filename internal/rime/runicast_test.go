package rime_test

import (
	"testing"

	"sde/internal/core"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/vm"
)

func runicastEngine(t *testing.T, algo core.Algorithm, failures sim.FailurePlan) *sim.Result {
	t.Helper()
	prog, err := rime.RunicastProgram()
	if err != nil {
		t.Fatal(err)
	}
	rc := rime.RunicastConfig{Sender: 1, Receiver: 0, Interval: 100, Packets: 2}
	eng, err := sim.NewEngine(sim.Config{
		Topo:            sim.NewLine(2),
		Prog:            prog,
		Algorithm:       algo,
		Horizon:         100*2 + rime.RuRTO*(rime.RuMaxRetries+3) + 100,
		NodeInit:        rc.NodeInit(),
		Failures:        failures,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunicastConcreteDelivery(t *testing.T) {
	res := runicastEngine(t, core.SDSAlgorithm, sim.FailurePlan{})
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	if res.FinalStates != 2 {
		t.Fatalf("states = %d, want 2 (fully concrete)", res.FinalStates)
	}
	recv := nodeState(res, 0)
	if got := word(t, recv, rime.AddrRuDelivered); got != 2 {
		t.Errorf("delivered = %d, want 2", got)
	}
	snd := nodeState(res, 1)
	if got := word(t, snd, rime.AddrRuFailures); got != 0 {
		t.Errorf("failures = %d, want 0", got)
	}
	// No losses: zero retransmissions were spent.
	for seq := uint32(0); seq < 2; seq++ {
		if got := word(t, snd, rime.AddrRuTriesBase+seq); got != 0 {
			t.Errorf("seq %d retransmitted %d times without losses", seq, got)
		}
	}
}

// TestRunicastHealsSymbolicDrop is the headline property: with a symbolic
// drop at the receiver, the retransmission recovers the lost DATA in the
// failure branch, so the end-to-end delivery assertions hold on every
// explored path — no violations anywhere in the state space.
func TestRunicastHealsSymbolicDrop(t *testing.T) {
	for _, algo := range []core.Algorithm{core.COBAlgorithm, core.COWAlgorithm, core.SDSAlgorithm} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			res := runicastEngine(t, algo, sim.FailurePlan{
				DropFirst: sim.NodeSet([]int{0}),
			})
			if len(res.Violations) != 0 {
				t.Fatalf("violations: %+v", res.Violations)
			}
			if res.DScenarios.Int64() != 2 {
				t.Fatalf("dscenarios = %v, want 2 (drop / no drop)", res.DScenarios)
			}
			// Both receiver branches delivered everything.
			var receivers []*vm.State
			res.Mapper.ForEachState(func(s *vm.State) {
				if s.NodeID() == 0 {
					receivers = append(receivers, s)
				}
			})
			sawRetransmission := false
			for _, r := range receivers {
				if got := word(t, r, rime.AddrRuDelivered); got != 2 {
					t.Errorf("receiver state %d delivered %d, want 2", r.ID(), got)
				}
			}
			var senders []*vm.State
			res.Mapper.ForEachState(func(s *vm.State) {
				if s.NodeID() == 1 {
					senders = append(senders, s)
				}
			})
			for _, s := range senders {
				if got := word(t, s, rime.AddrRuFailures); got != 0 {
					t.Errorf("sender state %d recorded %d failures", s.ID(), got)
				}
				if word(t, s, rime.AddrRuTriesBase+0) > 0 {
					sawRetransmission = true
				}
			}
			if !sawRetransmission {
				t.Error("no sender branch retransmitted; the drop never took effect")
			}
		})
	}
}

// TestRunicastUnreachablePeer: a mis-configured peer outside radio range
// kills the sending state at its first transmission, surfaced as a
// violation by the engine.
func TestRunicastUnreachablePeer(t *testing.T) {
	prog, err := rime.RunicastProgram()
	if err != nil {
		t.Fatal(err)
	}
	rc := rime.RunicastConfig{Sender: 1, Receiver: 3, Interval: 100, Packets: 1}
	eng, err := sim.NewEngine(sim.Config{
		Topo:      sim.NewLine(2),
		Prog:      prog,
		Algorithm: core.SDSAlgorithm,
		Horizon:   1000,
		NodeInit:  rc.NodeInit(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("unreachable receiver produced no violation")
	}
}

// TestRunicastDropAtSenderLosesAck: a symbolic drop armed at the *sender*
// discards an ACK instead of a DATA packet; the dedup at the receiver and
// re-acknowledgement on the retransmission still heal the exchange.
func TestRunicastDropAtSenderLosesAck(t *testing.T) {
	res := runicastEngine(t, core.SDSAlgorithm, sim.FailurePlan{
		DropFirst: sim.NodeSet([]int{1}), // the sender's first reception is ACK(0)
	})
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	// In the ACK-drop branch the retransmission is re-acknowledged, and
	// the duplicate DATA is not double-delivered.
	res.Mapper.ForEachState(func(s *vm.State) {
		if s.NodeID() != 0 {
			return
		}
		if got := word(t, s, rime.AddrRuDelivered); got != 2 {
			t.Errorf("receiver state %d delivered %d, want 2 (dedup)", s.ID(), got)
		}
	})
}
