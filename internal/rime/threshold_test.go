package rime_test

import (
	"testing"

	"sde/internal/core"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/trace"
	"sde/internal/vm"
)

func thresholdEngine(t *testing.T, algo core.Algorithm, k int) *sim.Result {
	t.Helper()
	prog, err := rime.ThresholdProgram()
	if err != nil {
		t.Fatal(err)
	}
	tc := rime.ThresholdConfig{Source: k - 1, Threshold: 500, Interval: 10}
	eng, err := sim.NewEngine(sim.Config{
		Topo:            sim.NewLine(k),
		Prog:            prog,
		Algorithm:       algo,
		Horizon:         500,
		NodeInit:        tc.NodeInit(),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatalf("aborted: %s", res.AbortReason)
	}
	return res
}

// TestThresholdSymbolicDataPropagation: the source's symbolic reading
// travels through the network; each node's alarm/quiet split is driven by
// the *same* variable, so downstream branches in the alarm context are
// implied and must not fork again.
func TestThresholdSymbolicDataPropagation(t *testing.T) {
	res := thresholdEngine(t, core.SDSAlgorithm, 3)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	// Exactly two behaviours exist: reading > 500 (alarms everywhere) and
	// reading <= 500 (quiet at the first hop, nothing downstream).
	if got := res.DScenarios.Int64(); got != 2 {
		t.Fatalf("dscenarios = %d, want 2", got)
	}
	byNode := map[int][]*vm.State{}
	res.Mapper.ForEachState(func(s *vm.State) {
		byNode[s.NodeID()] = append(byNode[s.NodeID()], s)
	})
	// Hop 1 (node 1) forked once on the reading; its alarm-side state
	// forwarded, so node 0 received only in the alarm context.
	if len(byNode[1]) != 2 {
		t.Fatalf("node 1 states = %d, want 2 (alarm/quiet)", len(byNode[1]))
	}
	// Node 0 has the never-received state plus the alarm-context receiver;
	// crucially its receiving state did NOT fork again on the implied
	// comparison.
	for _, s := range byNode[0] {
		alarms := s.LoadWord(rime.AddrAlarms).ConstVal()
		quiet := s.LoadWord(rime.AddrQuiet).ConstVal()
		if quiet != 0 {
			t.Errorf("node 0 state %d counted a quiet reading in the alarm-only context", s.ID())
		}
		if alarms > 0 {
			// The receiving state's path condition must constrain the
			// source's variable (inherited + implied).
			found := false
			for _, c := range s.PathCond() {
				for _, v := range collectVarNames(c) {
					if v == "reading_n2_0" {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("alarm state at node 0 lacks a constraint on the source's reading")
			}
		}
	}
}

func collectVarNames(c interface{ String() string }) []string {
	// The expression printer renders variable names; a light-weight scan
	// suffices for the assertion above.
	s := c.String()
	var out []string
	if containsWord(s, "reading_n2_0") {
		out = append(out, "reading_n2_0")
	}
	return out
}

func containsWord(s, w string) bool {
	return len(s) >= len(w) && (s == w || indexOf(s, w) >= 0)
}

func indexOf(s, w string) int {
	for i := 0; i+len(w) <= len(s); i++ {
		if s[i:i+len(w)] == w {
			return i
		}
	}
	return -1
}

// TestThresholdNoContradictoryDScenarios: constraint inheritance keeps
// every represented dscenario satisfiable, so test-case generation
// succeeds and yields cross-node-consistent concrete readings.
func TestThresholdNoContradictoryDScenarios(t *testing.T) {
	res := thresholdEngine(t, core.SDSAlgorithm, 4)
	tcs, err := trace.Generate(res.Mapper, res.Ctx, 0)
	if err != nil {
		t.Fatalf("test-case generation failed (contradictory dscenario?): %v", err)
	}
	if int64(len(tcs)) != res.DScenarios.Int64() {
		t.Fatalf("test cases = %d, dscenarios = %v", len(tcs), res.DScenarios)
	}
	sawAlarm, sawQuiet := false, false
	for _, tc := range tcs {
		reading, ok := tc.Inputs["reading_n3_0"]
		if !ok {
			// A dscenario whose constraints don't mention the reading
			// (possible only if nothing branched on it) would be a bug.
			t.Fatalf("test case %d lacks the sensor reading: %v", tc.Index, tc.Inputs)
		}
		if reading > 500 {
			sawAlarm = true
		} else {
			sawQuiet = true
		}
	}
	if !sawAlarm || !sawQuiet {
		t.Errorf("test cases do not cover both behaviours: alarm=%v quiet=%v",
			sawAlarm, sawQuiet)
	}
}

// TestThresholdEquivalence: symbolic-data workloads agree across the
// three mapping algorithms, like everything else.
func TestThresholdEquivalence(t *testing.T) {
	sets := map[core.Algorithm]map[uint64]bool{}
	var counts []int64
	for _, algo := range []core.Algorithm{core.COBAlgorithm, core.COWAlgorithm, core.SDSAlgorithm} {
		res := thresholdEngine(t, algo, 3)
		counts = append(counts, res.DScenarios.Int64())
		set := map[uint64]bool{}
		for _, sc := range res.Mapper.Explode(0) {
			h := uint64(14695981039346656037)
			for _, s := range sc {
				h ^= s.Fingerprint()
				h *= 1099511628211
			}
			set[h] = true
		}
		sets[algo] = set
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("dscenario counts diverge: %v", counts)
	}
	ref := sets[core.COBAlgorithm]
	for algo, set := range sets {
		if len(set) != len(ref) {
			t.Fatalf("%v set size %d, COB %d", algo, len(set), len(ref))
		}
		for fp := range ref {
			if !set[fp] {
				t.Fatalf("%v missing a COB dscenario", algo)
			}
		}
	}
}

// TestThresholdConflictFreeDScenarios: the §II-B oracle holds on the
// symbolic-data workload too.
func TestThresholdConflictFree(t *testing.T) {
	res := thresholdEngine(t, core.COWAlgorithm, 3)
	for i, sc := range res.Mapper.Explode(0) {
		if err := trace.CheckDScenario(sc); err != nil {
			t.Fatalf("dscenario %d: %v", i, err)
		}
	}
}
