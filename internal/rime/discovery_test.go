package rime_test

import (
	"testing"

	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/vm"
)

func TestDiscoveryProgramBuilds(t *testing.T) {
	prog, err := rime.DiscoveryProgram()
	if err != nil {
		t.Fatalf("DiscoveryProgram: %v", err)
	}
	for _, fn := range []string{"boot", "send_hello", "on_recv"} {
		if prog.FuncIndex(fn) < 0 {
			t.Errorf("program lacks function %q", fn)
		}
	}
}

func TestDiscoveryFindsAllNeighbors(t *testing.T) {
	prog, err := rime.DiscoveryProgram()
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewGrid(3, 3)
	dc := rime.DiscoveryConfig{Interval: 100, Rounds: 2}
	res := runConcrete(t, g, prog, dc.NodeInit(), 10000)
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	for n := 0; n < g.K(); n++ {
		s := nodeState(res, n)
		wantDeg := len(g.Neighbors(n))
		if got := word(t, s, rime.AddrNbrCount); got != uint64(wantDeg) {
			t.Errorf("node %d discovered %d neighbours, want %d", n, got, wantDeg)
		}
		for _, nb := range g.Neighbors(n) {
			if got := word(t, s, rime.AddrNbrBase+uint32(nb)); got != 1 {
				t.Errorf("node %d missed neighbour %d", n, nb)
			}
		}
		// No phantom neighbours.
		for other := 0; other < g.K(); other++ {
			isNb := false
			for _, nb := range g.Neighbors(n) {
				if nb == other {
					isNb = true
				}
			}
			if got := word(t, s, rime.AddrNbrBase+uint32(other)); !isNb && got != 0 {
				t.Errorf("node %d recorded non-neighbour %d", n, other)
			}
		}
		// Each node beaconed exactly Rounds times.
		if got := word(t, s, rime.AddrRounds); got != 2 {
			t.Errorf("node %d sent %d rounds, want 2", n, got)
		}
	}
}

func TestDiscoveryDedupAcrossRounds(t *testing.T) {
	// Two rounds of beacons: neighbour counts must not double.
	prog, err := rime.DiscoveryProgram()
	if err != nil {
		t.Fatal(err)
	}
	l := sim.NewLine(3)
	dc := rime.DiscoveryConfig{Interval: 50, Rounds: 3}
	res := runConcrete(t, l, prog, dc.NodeInit(), 10000)
	mid := nodeState(res, 1)
	if got := word(t, mid, rime.AddrNbrCount); got != 2 {
		t.Errorf("middle node count = %d, want 2 despite 3 rounds", got)
	}
}

func TestDiscoveryIgnoresForeignPackets(t *testing.T) {
	// A collect packet delivered to a discovery node must be ignored.
	prog, err := rime.DiscoveryProgram()
	if err != nil {
		t.Fatal(err)
	}
	ctx := vm.NewContext()
	s := vm.NewState(ctx, prog, 1)
	junk := []uint64{rime.CollectMagic, 1, 2, 3, 4}
	ev := vm.Event{Time: 5, Kind: vm.EventRecv, Fn: prog.FuncIndex("on_recv"), Src: 0}
	for _, w := range junk {
		ev.Data = append(ev.Data, ctx.Exprs.Const(w, vm.WordBits))
	}
	s.PushEvent(ev)
	s.BeginEvent(rime.RxBuf)
	if err := s.Run(5, 0, vm.NopHooks{}); err != nil {
		t.Fatal(err)
	}
	if got := s.LoadWord(rime.AddrNbrCount); !got.IsConst() || got.ConstVal() != 0 {
		t.Errorf("foreign packet changed neighbour count: %v", got)
	}
}
