// Package rime provides the node software of the evaluation scenarios as
// isa programs — the repository's stand-in for Contiki OS and its Rime
// communication stack (paper §IV: "we use the latest Contiki OS CVS
// snapshot, specifically the Rime communication stack — a lightweight
// protocol stack designed for low-power radios").
//
// Three protocol primitives are modeled after Rime:
//
//   - anonymous best-effort broadcast (abc/broadcast): a link-layer
//     transmission perceived by every radio neighbour;
//   - identified unicast (unicast): a transmission carrying an intended
//     next-hop address, filtered by the receiver;
//   - multihop forwarding (multihop/collect): hop-by-hop forwarding along
//     a preconfigured static route towards a sink.
//
// The programs communicate through a small packet header and per-node
// configuration words seeded by the NodeInit callbacks below, mirroring
// how the paper's scenarios preconfigure static routes (Figure 9).
package rime

import (
	"fmt"

	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/sim"
	"sde/internal/vm"
)

// Word addresses of the per-node configuration and state (all programs).
const (
	AddrRole       = 0x00 // RoleForwarder / RoleSource / RoleSink
	AddrNextHop    = 0x01 // next hop towards the sink; NoNextHop if none
	AddrInterval   = 0x02 // source transmission interval (ticks)
	AddrNumPackets = 0x03 // number of data packets the source emits

	AddrSeq       = 0x10 // source: next sequence number
	AddrDelivered = 0x11 // sink: packets delivered
	AddrLastSeq   = 0x12 // sink: last delivered sequence number (+1)
	AddrOverheard = 0x13 // packets overheard (not addressed to this node)
	AddrForwarded = 0x14 // packets forwarded
	AddrFloodSeen = 0x40 // flood: AddrFloodSeen+origin = last seq seen +1

	// TxBuf is where programs assemble outgoing packets.
	TxBuf = 0x200
	// RxBuf is where the runtime places incoming payloads.
	RxBuf = 0x8000
)

// Node roles.
const (
	RoleForwarder = 0
	RoleSource    = 1
	RoleSink      = 2
)

// NoNextHop marks the absence of a configured route.
const NoNextHop = 0xffffffff

// Collect packet layout (words).
const (
	PktMagic  = 0 // CollectMagic
	PktTarget = 1 // intended next hop (link destination)
	PktOrigin = 2 // originating node
	PktSeq    = 3 // sequence number
	PktHops   = 4 // hop count
	PktLen    = 5
)

// CollectMagic identifies collect data packets.
const CollectMagic = 0xC011

// MaxHops bounds forwarding chains; exceeding it trips an assertion
// (routing loop detection).
const MaxHops = 64

// CollectProgram builds the paper's evaluation application: a source
// emits a data packet every interval; every transmission is a link-layer
// broadcast perceived by all neighbours; the node addressed as the next
// hop forwards the packet along the static route; the sink checks
// delivery invariants (paper §IV-A).
func CollectProgram() (*isa.Program, error) {
	b := isa.NewBuilder()

	boot := b.Func("boot")
	boot.MovI(isa.R3, 0)
	boot.Load(isa.R1, isa.R3, AddrRole)
	boot.NeI(isa.R2, isa.R1, RoleSource)
	boot.BrNZ(isa.R2, "done") // only the source arms the send timer
	boot.Load(isa.R4, isa.R3, AddrInterval)
	boot.Timer("send_data", isa.R4, isa.R0)
	boot.Label("done")
	boot.Ret()

	send := b.Func("send_data")
	send.MovI(isa.R3, 0)
	send.Load(isa.R1, isa.R3, AddrSeq) // r1 = seq
	// Assemble the packet in the TX buffer.
	send.MovI(isa.R4, TxBuf)
	send.MovI(isa.R5, CollectMagic)
	send.Store(isa.R4, PktMagic, isa.R5)
	send.Load(isa.R5, isa.R3, AddrNextHop)
	send.Store(isa.R4, PktTarget, isa.R5)
	send.NodeID(isa.R5)
	send.Store(isa.R4, PktOrigin, isa.R5)
	send.Store(isa.R4, PktSeq, isa.R1)
	send.MovI(isa.R5, 0)
	send.Store(isa.R4, PktHops, isa.R5)
	// Link-layer broadcast: all neighbours perceive the packet.
	send.MovI(isa.R6, isa.BroadcastAddr)
	send.Send(isa.R6, isa.R4, PktLen)
	// seq++ and re-arm while data remains.
	send.AddI(isa.R1, isa.R1, 1)
	send.Store(isa.R3, AddrSeq, isa.R1)
	send.Load(isa.R5, isa.R3, AddrNumPackets)
	send.Ult(isa.R2, isa.R1, isa.R5)
	send.BrZ(isa.R2, "stop")
	send.Load(isa.R4, isa.R3, AddrInterval)
	send.Timer("send_data", isa.R4, isa.R0)
	send.Label("stop")
	send.Ret()

	// on_recv(src=r0, buf=r1, len=r2)
	recv := b.Func("on_recv")
	recv.MovI(isa.R3, 0)
	recv.Load(isa.R4, isa.R1, PktMagic)
	recv.EqI(isa.R5, isa.R4, CollectMagic)
	recv.BrZ(isa.R5, "ignore") // not a collect packet
	recv.Load(isa.R4, isa.R1, PktTarget)
	recv.NodeID(isa.R5)
	recv.Eq(isa.R6, isa.R4, isa.R5)
	recv.BrNZ(isa.R6, "addressed")
	// Overheard: perceived but not addressed to us.
	recv.Load(isa.R4, isa.R3, AddrOverheard)
	recv.AddI(isa.R4, isa.R4, 1)
	recv.Store(isa.R3, AddrOverheard, isa.R4)
	recv.Ret()

	recv.Label("addressed")
	recv.Load(isa.R4, isa.R3, AddrRole)
	recv.EqI(isa.R5, isa.R4, RoleSink)
	recv.BrNZ(isa.R5, "deliver")
	recv.Call("forward")
	recv.Ret()

	// Sink delivery: count and check sequence monotonicity. With ideal
	// conditions and drop failures only, sequence numbers at the sink are
	// strictly increasing; a duplicated packet violates the assertion —
	// the kind of corner case the paper's symbolic failures surface.
	recv.Label("deliver")
	recv.Load(isa.R4, isa.R3, AddrDelivered)
	recv.AddI(isa.R4, isa.R4, 1)
	recv.Store(isa.R3, AddrDelivered, isa.R4)
	recv.Load(isa.R4, isa.R1, PktSeq) // received seq
	recv.Load(isa.R5, isa.R3, AddrLastSeq)
	recv.Ule(isa.R6, isa.R5, isa.R4) // lastSeq+1 stored, so check last <= seq
	recv.Assert(isa.R6, "sink: sequence number regression (duplicate or reorder)")
	recv.AddI(isa.R4, isa.R4, 1)
	recv.Store(isa.R3, AddrLastSeq, isa.R4)
	recv.Ret()

	recv.Label("ignore")
	recv.Ret()

	// forward: rebuild the packet for the next hop and rebroadcast.
	fwd := b.Func("forward")
	fwd.MovI(isa.R3, 0)
	fwd.Load(isa.R4, isa.R3, AddrNextHop)
	fwd.NeI(isa.R5, isa.R4, NoNextHop)
	fwd.BrZ(isa.R5, "noroute")
	fwd.MovI(isa.R6, TxBuf)
	fwd.MovI(isa.R7, CollectMagic)
	fwd.Store(isa.R6, PktMagic, isa.R7)
	fwd.Store(isa.R6, PktTarget, isa.R4)
	fwd.Load(isa.R7, isa.R1, PktOrigin)
	fwd.Store(isa.R6, PktOrigin, isa.R7)
	fwd.Load(isa.R7, isa.R1, PktSeq)
	fwd.Store(isa.R6, PktSeq, isa.R7)
	fwd.Load(isa.R7, isa.R1, PktHops)
	fwd.AddI(isa.R7, isa.R7, 1)
	fwd.UltI(isa.R8, isa.R7, MaxHops)
	fwd.Assert(isa.R8, "forward: hop count overflow (routing loop)")
	fwd.Store(isa.R6, PktHops, isa.R7)
	fwd.MovI(isa.R8, isa.BroadcastAddr)
	fwd.Send(isa.R8, isa.R6, PktLen)
	fwd.Load(isa.R7, isa.R3, AddrForwarded)
	fwd.AddI(isa.R7, isa.R7, 1)
	fwd.Store(isa.R3, AddrForwarded, isa.R7)
	fwd.Label("noroute")
	fwd.Ret()

	return b.Build()
}

// CollectConfig parameterises a collect scenario.
type CollectConfig struct {
	Source   int
	Sink     int
	Route    []int  // static route from Source to Sink (inclusive)
	Interval uint64 // ticks between source transmissions
	Packets  uint32 // number of packets the source emits
}

// NodeInit returns the engine callback seeding each node's configuration
// memory for the collect scenario.
func (c CollectConfig) NodeInit(k int) (func(node int, s *vm.State, eb *expr.Builder), error) {
	if len(c.Route) < 2 {
		return nil, fmt.Errorf("rime: route must span source and sink, got %v", c.Route)
	}
	if c.Route[0] != c.Source || c.Route[len(c.Route)-1] != c.Sink {
		return nil, fmt.Errorf("rime: route %v does not go %d -> %d", c.Route, c.Source, c.Sink)
	}
	hops := sim.NextHops(k, c.Route)
	return func(node int, s *vm.State, eb *expr.Builder) {
		cw := func(addr uint32, v uint64) {
			s.StoreWord(addr, eb.Const(v, vm.WordBits))
		}
		role := uint64(RoleForwarder)
		switch node {
		case c.Source:
			role = RoleSource
		case c.Sink:
			role = RoleSink
		}
		cw(AddrRole, role)
		next := uint64(NoNextHop)
		if hops[node] >= 0 {
			next = uint64(hops[node])
		}
		cw(AddrNextHop, next)
		cw(AddrInterval, c.Interval)
		cw(AddrNumPackets, uint64(c.Packets))
	}, nil
}

// FloodMagic identifies flooding packets.
const FloodMagic = 0xF100D

// Flood packet layout (words).
const (
	FloodPktMagic  = 0
	FloodPktOrigin = 1
	FloodPktSeq    = 2
	FloodPktLen    = 3
)

// FloodProgram builds the §IV-C limitation workload: network-wide
// flooding ("communication protocols based on network flooding such as
// neighbor discovery or data dissemination"). The source periodically
// broadcasts; every node rebroadcasts each packet it has not seen before,
// so every node talks to all of its neighbours and the bystander-saving
// structure of COW/SDS buys little.
func FloodProgram() (*isa.Program, error) {
	b := isa.NewBuilder()

	boot := b.Func("boot")
	boot.MovI(isa.R3, 0)
	boot.Load(isa.R1, isa.R3, AddrRole)
	boot.NeI(isa.R2, isa.R1, RoleSource)
	boot.BrNZ(isa.R2, "done")
	boot.Load(isa.R4, isa.R3, AddrInterval)
	boot.Timer("send_flood", isa.R4, isa.R0)
	boot.Label("done")
	boot.Ret()

	send := b.Func("send_flood")
	send.MovI(isa.R3, 0)
	send.Load(isa.R1, isa.R3, AddrSeq)
	send.MovI(isa.R4, TxBuf)
	send.MovI(isa.R5, FloodMagic)
	send.Store(isa.R4, FloodPktMagic, isa.R5)
	send.NodeID(isa.R5)
	send.Store(isa.R4, FloodPktOrigin, isa.R5)
	send.Store(isa.R4, FloodPktSeq, isa.R1)
	send.MovI(isa.R6, isa.BroadcastAddr)
	send.Send(isa.R6, isa.R4, FloodPktLen)
	send.AddI(isa.R1, isa.R1, 1)
	send.Store(isa.R3, AddrSeq, isa.R1)
	send.Load(isa.R5, isa.R3, AddrNumPackets)
	send.Ult(isa.R2, isa.R1, isa.R5)
	send.BrZ(isa.R2, "stop")
	send.Load(isa.R4, isa.R3, AddrInterval)
	send.Timer("send_flood", isa.R4, isa.R0)
	send.Label("stop")
	send.Ret()

	// on_recv: rebroadcast unseen packets.
	recv := b.Func("on_recv")
	recv.Load(isa.R4, isa.R1, FloodPktMagic)
	recv.EqI(isa.R5, isa.R4, FloodMagic)
	recv.BrZ(isa.R5, "ignore")
	recv.Load(isa.R4, isa.R1, FloodPktOrigin) // origin
	recv.Load(isa.R5, isa.R1, FloodPktSeq)    // seq
	// seen[origin] holds last seen seq + 1 (0 = nothing seen).
	recv.AddI(isa.R6, isa.R4, AddrFloodSeen)
	recv.Load(isa.R7, isa.R6, 0)
	recv.Ult(isa.R8, isa.R5, isa.R7)
	recv.BrNZ(isa.R8, "ignore") // already seen
	recv.AddI(isa.R7, isa.R5, 1)
	recv.Store(isa.R6, 0, isa.R7)
	// Rebroadcast.
	recv.MovI(isa.R6, TxBuf)
	recv.MovI(isa.R7, FloodMagic)
	recv.Store(isa.R6, FloodPktMagic, isa.R7)
	recv.Store(isa.R6, FloodPktOrigin, isa.R4)
	recv.Store(isa.R6, FloodPktSeq, isa.R5)
	recv.MovI(isa.R8, isa.BroadcastAddr)
	recv.Send(isa.R8, isa.R6, FloodPktLen)
	recv.Label("ignore")
	recv.Ret()

	return b.Build()
}

// FloodConfig parameterises a flooding scenario.
type FloodConfig struct {
	Source   int
	Interval uint64
	Packets  uint32
}

// NodeInit returns the engine callback for the flood scenario.
func (c FloodConfig) NodeInit() func(node int, s *vm.State, eb *expr.Builder) {
	return func(node int, s *vm.State, eb *expr.Builder) {
		cw := func(addr uint32, v uint64) {
			s.StoreWord(addr, eb.Const(v, vm.WordBits))
		}
		role := uint64(RoleForwarder)
		if node == c.Source {
			role = RoleSource
		}
		cw(AddrRole, role)
		cw(AddrInterval, c.Interval)
		cw(AddrNumPackets, uint64(c.Packets))
	}
}
