package rime

import (
	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/vm"
)

// Neighbor-discovery protocol — the second flooding-class workload named
// by the paper's §IV-C ("Further examples comprise communication
// protocols based on network flooding such as neighbor discovery or data
// dissemination"). Every node periodically broadcasts a HELLO beacon and
// records the senders it hears. Because every node transmits, every
// transmission has k-1 perceivers and no node is ever a bystander — the
// workload that erodes COW's and SDS's advantage.

// HelloMagic identifies discovery beacons.
const HelloMagic = 0x4E110

// Discovery word addresses (shared config words reuse the collect layout).
const (
	AddrNbrCount = 0x20 // number of distinct neighbours heard
	AddrNbrBase  = 0x60 // AddrNbrBase+n = 1 once node n was heard
	AddrRounds   = 0x21 // beacons sent so far
)

// Hello packet layout (words).
const (
	HelloPktMagic  = 0
	HelloPktOrigin = 1
	HelloPktRound  = 2
	HelloPktLen    = 3
)

// DiscoveryProgram builds the neighbour-discovery node software: every
// node arms a periodic beacon timer at boot (AddrInterval, AddrNumPackets
// control period and round count) and updates its neighbour table on
// every HELLO it hears.
func DiscoveryProgram() (*isa.Program, error) {
	b := isa.NewBuilder()

	boot := b.Func("boot")
	boot.MovI(isa.R3, 0)
	boot.Load(isa.R4, isa.R3, AddrInterval)
	// Desynchronise first beacons: node id modulates the initial delay,
	// like Contiki's randomised timer offsets (deterministic here).
	boot.NodeID(isa.R5)
	boot.AddI(isa.R5, isa.R5, 1)
	boot.Add(isa.R4, isa.R4, isa.R5)
	boot.Timer("send_hello", isa.R4, isa.R0)
	boot.Ret()

	send := b.Func("send_hello")
	send.MovI(isa.R3, 0)
	send.Load(isa.R1, isa.R3, AddrRounds)
	send.MovI(isa.R4, TxBuf)
	send.MovI(isa.R5, HelloMagic)
	send.Store(isa.R4, HelloPktMagic, isa.R5)
	send.NodeID(isa.R5)
	send.Store(isa.R4, HelloPktOrigin, isa.R5)
	send.Store(isa.R4, HelloPktRound, isa.R1)
	send.MovI(isa.R6, isa.BroadcastAddr)
	send.Send(isa.R6, isa.R4, HelloPktLen)
	send.AddI(isa.R1, isa.R1, 1)
	send.Store(isa.R3, AddrRounds, isa.R1)
	send.Load(isa.R5, isa.R3, AddrNumPackets)
	send.Ult(isa.R2, isa.R1, isa.R5)
	send.BrZ(isa.R2, "stop")
	send.Load(isa.R4, isa.R3, AddrInterval)
	send.Timer("send_hello", isa.R4, isa.R0)
	send.Label("stop")
	send.Ret()

	recv := b.Func("on_recv")
	recv.MovI(isa.R3, 0)
	recv.Load(isa.R4, isa.R1, HelloPktMagic)
	recv.EqI(isa.R5, isa.R4, HelloMagic)
	recv.BrZ(isa.R5, "ignore")
	recv.Load(isa.R4, isa.R1, HelloPktOrigin)
	// A node never hears itself; the radio model guarantees it, and the
	// neighbour table relies on it.
	recv.NodeID(isa.R5)
	recv.Ne(isa.R6, isa.R4, isa.R5)
	recv.Assert(isa.R6, "discovery: received own beacon")
	// Mark the sender; count it the first time only.
	recv.AddI(isa.R6, isa.R4, AddrNbrBase)
	recv.Load(isa.R7, isa.R6, 0)
	recv.BrNZ(isa.R7, "known")
	recv.MovI(isa.R7, 1)
	recv.Store(isa.R6, 0, isa.R7)
	recv.Load(isa.R7, isa.R3, AddrNbrCount)
	recv.AddI(isa.R7, isa.R7, 1)
	recv.Store(isa.R3, AddrNbrCount, isa.R7)
	recv.Label("known")
	recv.Ret()

	recv.Label("ignore")
	recv.Ret()

	return b.Build()
}

// DiscoveryConfig parameterises a neighbour-discovery scenario.
type DiscoveryConfig struct {
	Interval uint64 // beacon period in ticks
	Rounds   uint32 // beacons per node
}

// NodeInit returns the engine callback for the discovery scenario.
func (c DiscoveryConfig) NodeInit() func(node int, s *vm.State, eb *expr.Builder) {
	return func(node int, s *vm.State, eb *expr.Builder) {
		s.StoreWord(AddrInterval, eb.Const(c.Interval, vm.WordBits))
		s.StoreWord(AddrNumPackets, eb.Const(uint64(c.Rounds), vm.WordBits))
	}
}
