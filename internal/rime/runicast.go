package rime

import (
	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/vm"
)

// Reliable unicast (Rime's "runicast" primitive): DATA packets are
// acknowledged per sequence number and retransmitted on a timeout until
// acknowledged or a retry budget is exhausted. Receivers deduplicate
// retransmissions. Under a symbolic packet drop the protocol *heals*: the
// branch that lost the first DATA recovers it through a retransmission,
// so the sender-side delivery assertions hold on every explored path —
// the kind of positive protocol property SDE establishes exhaustively.

// Runicast word addresses (the shared AddrInterval/AddrNumPackets config
// words are reused; AddrSeq counts transmissions).
const (
	AddrRuPeer      = 0x25 // destination node id; NoNextHop = pure receiver
	AddrRuFailures  = 0x26 // sequences that exhausted their retries
	AddrRuDelivered = 0x27 // receiver: distinct DATA sequences delivered
	AddrRuAckSeen   = 0x28 // sender: ACKs received (incl. duplicates)
	AddrRuAckedBase = 0x80 // AddrRuAckedBase+seq = 1 once ACK(seq) arrived
	AddrRuTriesBase = 0xA0 // AddrRuTriesBase+seq = retransmissions so far
	AddrRuSeenBase  = 0xC0 // receiver: AddrRuSeenBase+seq = 1 once delivered
)

// Runicast packet layout (words).
const (
	RuPktMagic  = 0
	RuPktTarget = 1
	RuPktOrigin = 2
	RuPktSeq    = 3
	RuPktLen    = 4
)

// Runicast packet magics.
const (
	RuMagicData = 0xDA7A
	RuMagicAck  = 0xACED
)

// RuMaxRetries bounds retransmissions per sequence number.
const RuMaxRetries = 3

// RuRTO is the retransmission timeout in ticks (must exceed one round
// trip at the default latency of 2 ticks per hop).
const RuRTO = 16

// RunicastProgram builds the reliable-unicast node software. A node whose
// AddrRuPeer is configured sends AddrNumPackets DATA packets, one per
// AddrInterval ticks, and checks at the end that every sequence was
// acknowledged and no retry budget was exhausted.
func RunicastProgram() (*isa.Program, error) {
	b := isa.NewBuilder()

	boot := b.Func("boot")
	boot.MovI(isa.R3, 0)
	boot.Load(isa.R4, isa.R3, AddrRuPeer)
	boot.EqI(isa.R5, isa.R4, NoNextHop)
	boot.BrNZ(isa.R5, "done") // pure receiver
	boot.Load(isa.R4, isa.R3, AddrInterval)
	boot.Timer("send_data", isa.R4, isa.R0)
	boot.Label("done")
	boot.Ret()

	// send_data: transmit DATA(seq), arm the retransmit timer for it,
	// schedule the next packet or the final check.
	send := b.Func("send_data")
	send.MovI(isa.R3, 0)
	send.Load(isa.R1, isa.R3, AddrSeq) // r1 = seq
	send.Mov(isa.R0, isa.R1)
	send.Call("xmit_data")
	// Arm the per-sequence retransmission timeout.
	send.MovI(isa.R4, RuRTO)
	send.Timer("retransmit", isa.R4, isa.R1)
	// seq++ and continue or finish.
	send.AddI(isa.R1, isa.R1, 1)
	send.Store(isa.R3, AddrSeq, isa.R1)
	send.Load(isa.R5, isa.R3, AddrNumPackets)
	send.Ult(isa.R2, isa.R1, isa.R5)
	send.BrZ(isa.R2, "last")
	send.Load(isa.R4, isa.R3, AddrInterval)
	send.Timer("send_data", isa.R4, isa.R0)
	send.Ret()
	send.Label("last")
	// Check after the retry budget of the final packet can elapse.
	send.MovI(isa.R4, RuRTO*(RuMaxRetries+2))
	send.Timer("check", isa.R4, isa.R0)
	send.Ret()

	// xmit_data(r0 = seq): build and unicast DATA(seq) to the peer.
	xmit := b.Func("xmit_data")
	xmit.MovI(isa.R3, 0)
	xmit.MovI(isa.R6, TxBuf)
	xmit.MovI(isa.R7, RuMagicData)
	xmit.Store(isa.R6, RuPktMagic, isa.R7)
	xmit.Load(isa.R7, isa.R3, AddrRuPeer)
	xmit.Store(isa.R6, RuPktTarget, isa.R7)
	xmit.NodeID(isa.R8)
	xmit.Store(isa.R6, RuPktOrigin, isa.R8)
	xmit.Store(isa.R6, RuPktSeq, isa.R0)
	xmit.Send(isa.R7, isa.R6, RuPktLen)
	xmit.Ret()

	// retransmit(r0 = seq): resend unless acknowledged; give up after
	// RuMaxRetries.
	rtx := b.Func("retransmit")
	rtx.MovI(isa.R3, 0)
	rtx.Mov(isa.R1, isa.R0) // r1 = seq
	rtx.AddI(isa.R4, isa.R1, AddrRuAckedBase)
	rtx.Load(isa.R5, isa.R4, 0)
	rtx.BrNZ(isa.R5, "acked") // nothing to do
	rtx.AddI(isa.R4, isa.R1, AddrRuTriesBase)
	rtx.Load(isa.R5, isa.R4, 0)
	rtx.UltI(isa.R6, isa.R5, RuMaxRetries)
	rtx.BrZ(isa.R6, "giveup")
	rtx.AddI(isa.R5, isa.R5, 1)
	rtx.Store(isa.R4, 0, isa.R5)
	rtx.Mov(isa.R0, isa.R1)
	rtx.Call("xmit_data")
	rtx.MovI(isa.R4, RuRTO)
	rtx.Timer("retransmit", isa.R4, isa.R1)
	rtx.Ret()
	rtx.Label("giveup")
	rtx.Load(isa.R5, isa.R3, AddrRuFailures)
	rtx.AddI(isa.R5, isa.R5, 1)
	rtx.Store(isa.R3, AddrRuFailures, isa.R5)
	rtx.Label("acked")
	rtx.Ret()

	// on_recv: DATA -> deliver once, always (re-)acknowledge;
	// ACK -> mark the sequence acknowledged.
	recv := b.Func("on_recv")
	recv.MovI(isa.R3, 0)
	recv.Load(isa.R4, isa.R1, RuPktMagic)
	recv.Load(isa.R5, isa.R1, RuPktTarget)
	recv.NodeID(isa.R6)
	recv.Ne(isa.R7, isa.R5, isa.R6)
	recv.BrNZ(isa.R7, "ignore") // not addressed to us (overheard)
	recv.EqI(isa.R7, isa.R4, RuMagicData)
	recv.BrNZ(isa.R7, "data")
	recv.EqI(isa.R7, isa.R4, RuMagicAck)
	recv.BrNZ(isa.R7, "ack")
	recv.Label("ignore")
	recv.Ret()

	recv.Label("data")
	recv.Load(isa.R8, isa.R1, RuPktSeq) // r8 = seq
	recv.AddI(isa.R9, isa.R8, AddrRuSeenBase)
	recv.Load(isa.R10, isa.R9, 0)
	recv.BrNZ(isa.R10, "reack") // duplicate: deliver once only
	recv.MovI(isa.R10, 1)
	recv.Store(isa.R9, 0, isa.R10)
	recv.Load(isa.R10, isa.R3, AddrRuDelivered)
	recv.AddI(isa.R10, isa.R10, 1)
	recv.Store(isa.R3, AddrRuDelivered, isa.R10)
	recv.Label("reack")
	// Build and send ACK(seq) back to the origin.
	recv.Load(isa.R5, isa.R1, RuPktOrigin)
	recv.MovI(isa.R6, TxBuf)
	recv.MovI(isa.R7, RuMagicAck)
	recv.Store(isa.R6, RuPktMagic, isa.R7)
	recv.Store(isa.R6, RuPktTarget, isa.R5)
	recv.NodeID(isa.R7)
	recv.Store(isa.R6, RuPktOrigin, isa.R7)
	recv.Store(isa.R6, RuPktSeq, isa.R8)
	recv.Send(isa.R5, isa.R6, RuPktLen)
	recv.Ret()

	recv.Label("ack")
	recv.Load(isa.R8, isa.R1, RuPktSeq)
	recv.AddI(isa.R9, isa.R8, AddrRuAckedBase)
	recv.MovI(isa.R10, 1)
	recv.Store(isa.R9, 0, isa.R10)
	recv.Load(isa.R10, isa.R3, AddrRuAckSeen)
	recv.AddI(isa.R10, isa.R10, 1)
	recv.Store(isa.R3, AddrRuAckSeen, isa.R10)
	recv.Ret()

	// check: every sequence acknowledged, no retry budget exhausted.
	check := b.Func("check")
	check.MovI(isa.R3, 0)
	check.Load(isa.R4, isa.R3, AddrRuFailures)
	check.EqI(isa.R5, isa.R4, 0)
	check.Assert(isa.R5, "runicast: delivery failed after retries")
	check.Load(isa.R6, isa.R3, AddrNumPackets)
	check.MovI(isa.R7, 0) // seq iterator
	check.Label("loop")
	check.Ult(isa.R8, isa.R7, isa.R6)
	check.BrZ(isa.R8, "end")
	check.AddI(isa.R9, isa.R7, AddrRuAckedBase)
	check.Load(isa.R10, isa.R9, 0)
	check.Assert(isa.R10, "runicast: sequence never acknowledged")
	check.AddI(isa.R7, isa.R7, 1)
	check.Jmp("loop")
	check.Label("end")
	check.Ret()

	return b.Build()
}

// RunicastConfig parameterises a reliable-unicast scenario: Sender
// transmits Packets DATA packets to Receiver.
type RunicastConfig struct {
	Sender   int
	Receiver int
	Interval uint64
	Packets  uint32
}

// NodeInit returns the engine callback for the runicast scenario.
func (c RunicastConfig) NodeInit() func(node int, s *vm.State, eb *expr.Builder) {
	return func(node int, s *vm.State, eb *expr.Builder) {
		cw := func(addr uint32, v uint64) {
			s.StoreWord(addr, eb.Const(v, vm.WordBits))
		}
		peer := uint64(NoNextHop)
		if node == c.Sender {
			peer = uint64(c.Receiver)
		}
		cw(AddrRuPeer, peer)
		cw(AddrInterval, c.Interval)
		cw(AddrNumPackets, uint64(c.Packets))
	}
}
