package solver

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sde/internal/expr"
	"sde/internal/qopt"
)

// ErrBudget is returned when a query exceeds the configured conflict budget
// before a definite answer is found.
var ErrBudget = errors.New("solver: conflict budget exhausted")

// Stats counts solver activity since construction. Reads are only
// consistent when the solver is quiescent.
type Stats struct {
	Queries         int64 // total Feasible/Model calls
	CacheHits       int64 // answered from the exact-key query cache
	SubsumptionHits int64 // answered by an UNSAT-subset / SAT-superset entry
	SharedHits      int64 // answered from the cross-solver shared cache
	PoolHits        int64 // answered by re-using a previous model
	FastPath        int64 // answered by the syntactic literal scan
	Partitions      int64 // queries split into independent components
	SATCalls        int64 // CDCL runs (incremental and from-scratch)
	IncSolves       int64 // CDCL runs answered by a persistent instance
	Conflicts       int64 // CDCL conflicts across all runs
	Decisions       int64 // CDCL decisions across all runs
	AssumeReuses    int64 // assumption literals reused from session prefixes
	EncodeSkips     int64 // constraint encodes served by a persistent blast memo
	Gates           int64 // Tseitin gate variables allocated across all runs
	LearnedRetained int64 // learned clauses alive in the main persistent instance (gauge)
	RewarmSessions  int64 // sessions re-synced after a checkpoint resume
	RewarmEncodes   int64 // constraints re-encoded during those re-warms

	// Query-optimizer pipeline counters (internal/qopt). The last three
	// are owned by the Optimizer and merged into snapshots by Stats().
	SlicedQueries    int64 // feasibility queries shrunk by independence slicing
	SlicedFactors    int64 // independent factor groups dropped across those queries
	RewriteHits      int64 // constraints changed by the algebraic rewriter
	ConcretizedReads int64 // VM reads/branches decided from implied bindings
	GatesElided      int64 // DAG nodes removed from queries before encoding (proxy for gates)
}

type cacheEntry struct {
	hashes []uint64 // sorted constraint hashes, to guard against collisions
	sat    bool
	model  expr.Env // nil for unsat entries
}

// Options tunes a Solver. The zero value enables every optimisation;
// the Disable* switches exist for ablation benchmarks that quantify each
// layer's contribution (see the solver benchmarks).
type Options struct {
	// DisableCache turns off the query-result cache.
	DisableCache bool
	// DisablePool turns off counterexample (model) reuse.
	DisablePool bool
	// DisableFastPath turns off the syntactic boolean-literal scan.
	DisableFastPath bool
	// DisablePartition turns off independent-constraint partitioning.
	DisablePartition bool
	// DisableIncremental turns off the persistent assumption-based CDCL
	// instance: every SAT-core query is bit-blasted and solved from
	// scratch on a throwaway instance.
	DisableIncremental bool
	// DisableSubsumption turns off subset/superset reasoning in the
	// private cache; exact-key lookups still work unless DisableCache is
	// also set (DisableCache implies both off).
	DisableSubsumption bool
	// MaxConflicts bounds a single CDCL run; zero means unlimited.
	MaxConflicts int64
	// SharedCache, when non-nil, is consulted after the private query
	// cache and populated with every verdict this solver computes. The
	// same cache may back any number of solvers concurrently, even ones
	// whose expressions come from different expr.Builders: query keys
	// are structural constraint hashes, comparable across builders.
	SharedCache *SharedCache

	// Optimizer, when non-nil, enables the query-optimization pipeline
	// (internal/qopt) on feasibility queries: independence slicing and
	// algebraic rewriting run between constant folding and every later
	// stage, so caches, the shared cache, and the SAT core all see the
	// shrunk query. Model queries are never optimized — they always
	// solve the original constraints from scratch, which keeps witness
	// models bit-identical whether the optimizer is on or off. The
	// Optimizer must share the expr.Builder of the query expressions.
	Optimizer *qopt.Optimizer
	// DisableSlicing turns off independence slicing while keeping the
	// rest of the optimizer. Per-stage switches exist because shutting
	// stages off one at a time is the first triage step for a suspected
	// optimizer soundness bug.
	DisableSlicing bool
	// DisableRewrite turns off the algebraic rewriter (both the
	// per-constraint fixpoint pass and cross-constraint substitution).
	DisableRewrite bool
	// DisableConcretization turns off implied-value concretization in
	// the VM. The solver itself ignores it; internal/vm consults it when
	// wiring a Context.
	DisableConcretization bool
}

// cacheStripes is the number of exact-cache segments. Striping lets
// speculation workers and the main thread decide disjoint queries without
// contending on one map lock.
const cacheStripes = 64

type cacheStripe struct {
	mu sync.Mutex
	m  map[uint64]cacheEntry
}

// solverSlot is one persistent incremental solving context plus the mutex
// that serialises it. The Solver owns slot 0 (session-pinned queries from
// the interpreter thread); the speculation pool allocates one extra slot
// per worker so feasibility queries never share a CDCL instance — only
// the read-mostly caches — across goroutines.
type solverSlot struct {
	mu sync.Mutex
	ic *incContext
}

// queryCtx routes one query through the pipeline: which incremental slot
// decides it, and whether the query-optimizer stage is bypassed.
// Speculative workers bypass the optimizer (and the rewrite hook): the
// optimizer is a pure optimisation, and bypassing it keeps its internal
// memo tables off the concurrent path.
type queryCtx struct {
	slot    *solverSlot
	skipOpt bool
}

// Solver answers satisfiability queries over sets of 1-bit constraint
// expressions. It is safe for concurrent use: the exact cache is striped,
// the subsumption index sits behind a read-mostly RWMutex, and every
// incremental CDCL instance lives in its own slot — there is no global
// mutex on the query path. All constraint expressions passed to one
// Solver must come from a single expr.Builder.
type Solver struct {
	opts Options

	cache [cacheStripes]cacheStripe

	// subsMu guards the subsumption index. One index (not striped):
	// subset/superset lookups must see every stored entry to stay
	// complete, so reads take the shared lock and stores the exclusive.
	subsMu sync.RWMutex
	subs   subsumptionIndex

	poolMu  sync.Mutex
	pool    []expr.Env // recent satisfying models, most recent last
	poolCap int

	statsMu sync.Mutex
	stats   Stats

	// slot0 is the main incremental context: all session-pinned queries
	// (the interpreter thread) and session re-warms land here.
	slot0 solverSlot
}

// New returns a Solver with all optimisations enabled.
func New() *Solver { return NewWithOptions(Options{}) }

// NewWithOptions returns a Solver with the given tuning. Options is the
// single source of truth for the conflict budget (Options.MaxConflicts).
func NewWithOptions(opts Options) *Solver {
	s := &Solver{
		opts:    opts,
		poolCap: 16,
	}
	for i := range s.cache {
		s.cache[i].m = make(map[uint64]cacheEntry, 8)
	}
	return s
}

// NewWorkerSlot returns a fresh incremental solving slot with its own
// CDCL instance and blast context. The speculation pool gives one to each
// worker, so concurrent feasibility queries share only the caches.
func (s *Solver) NewWorkerSlot() *SolverSlot { return &SolverSlot{} }

// SolverSlot is the exported handle for a worker-owned incremental
// context; see Solver.NewWorkerSlot.
type SolverSlot struct {
	slot solverSlot
}

// FeasibleOn decides prefix ∧ extra on the given worker slot, bypassing
// the query optimizer and any session. This is the speculation-worker
// entry point: it shares the Solver's caches but never its slot-0 CDCL
// instance, so it is safe to call concurrently with every other method.
func (s *Solver) FeasibleOn(slot *SolverSlot, prefix []*expr.Expr, extra *expr.Expr) (bool, error) {
	sat, _, err := s.checkQuery(queryCtx{slot: &slot.slot, skipOpt: true}, nil, prefix, extra, false)
	return sat, err
}

// Stats returns a snapshot of the activity counters, merging in the
// counters owned by the attached query optimizer (if any).
func (s *Solver) Stats() Stats {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	if o := s.opts.Optimizer; o != nil {
		st.RewriteHits = o.RewriteHits()
		st.ConcretizedReads = o.ConcretizedReads()
		st.GatesElided = o.GatesElided()
	}
	return st
}

// rewriteFn returns the per-constraint rewrite hook for encoding, or nil
// when rewriting is off. Sessions and re-warms encode through this hook,
// so the persistent blast context only ever sees rewritten constraints.
func (s *Solver) rewriteFn() func(*expr.Expr) *expr.Expr {
	if o := s.opts.Optimizer; o != nil && !s.opts.DisableRewrite {
		return o.Rewrite
	}
	return nil
}

// Feasible reports whether the conjunction of the constraints is
// satisfiable. Every constraint must be a 1-bit expression.
func (s *Solver) Feasible(constraints []*expr.Expr) (bool, error) {
	sat, _, err := s.check(constraints, false)
	return sat, err
}

// Model reports satisfiability and, when satisfiable, returns a concrete
// assignment (a test case) under which every constraint evaluates to true.
// Variables not mentioned in the model are don't-cares (any value works;
// by convention they are 0).
func (s *Solver) Model(constraints []*expr.Expr) (expr.Env, bool, error) {
	sat, model, err := s.check(constraints, true)
	return model, sat, err
}

// FeasibleWith is Feasible for prefix-extension queries — the shape every
// branch decision takes: decide prefix ∧ extra without the caller
// materialising the combined slice. sess, when non-nil, pins the query to
// an incremental solving session whose cached assumption literals grow
// with the (append-only) prefix; a nil sess (or nil extra) is always
// valid and falls back to stateless solving.
func (s *Solver) FeasibleWith(sess *Session, prefix []*expr.Expr, extra *expr.Expr) (bool, error) {
	sat, _, err := s.checkQuery(queryCtx{slot: &s.slot0}, sess, prefix, extra, false)
	return sat, err
}

// ModelWith is Model for prefix-extension queries; see FeasibleWith.
func (s *Solver) ModelWith(sess *Session, prefix []*expr.Expr, extra *expr.Expr) (expr.Env, bool, error) {
	sat, model, err := s.checkQuery(queryCtx{slot: &s.slot0}, sess, prefix, extra, true)
	return model, sat, err
}

func (s *Solver) check(constraints []*expr.Expr, needModel bool) (bool, expr.Env, error) {
	return s.checkQuery(queryCtx{slot: &s.slot0}, nil, constraints, nil, needModel)
}

func (s *Solver) bumpStat(f func(*Stats)) {
	s.statsMu.Lock()
	f(&s.stats)
	s.statsMu.Unlock()
}

func (s *Solver) stripe(key uint64) *cacheStripe {
	return &s.cache[key&(cacheStripes-1)]
}

func (s *Solver) checkQuery(qc queryCtx, sess *Session, prefix []*expr.Expr, extra *expr.Expr, needModel bool) (bool, expr.Env, error) {
	s.bumpStat(func(st *Stats) { st.Queries++ })

	// Constant-fold the constraint set.
	n := len(prefix)
	if extra != nil {
		n++
	}
	active := make([]*expr.Expr, 0, n)
	var foldErr error
	// fold returns true when the query is already decided: either a
	// malformed constraint (foldErr set) or a constant-false one (the
	// whole conjunction is UNSAT).
	fold := func(c *expr.Expr) bool {
		if c.Width() != 1 {
			foldErr = fmt.Errorf("solver: constraint has width %d, want 1", c.Width())
			return true
		}
		if c.IsTrue() {
			return false
		}
		if c.IsFalse() {
			return true
		}
		active = append(active, c)
		return false
	}
	for _, c := range prefix {
		if fold(c) {
			return false, nil, foldErr
		}
	}
	if extra != nil && fold(extra) {
		return false, nil, foldErr
	}
	if len(active) == 0 {
		return true, expr.Env{}, nil
	}

	// Query-optimization pipeline (internal/qopt): shrink feasibility
	// queries before any cache key, cache lookup, or encoding sees them.
	// Model queries skip the pipeline entirely — they are decided on the
	// original constraints by a from-scratch SAT run below, so the models
	// an exploration emits cannot depend on optimizer history.
	// Speculation workers skip it too (qc.skipOpt): the optimizer is an
	// optimisation, never a soundness requirement.
	bypassSession := false
	if o := s.opts.Optimizer; o != nil && !needModel && !qc.skipOpt {
		// Independence slicing: drop the factor groups of the path
		// condition not variable-connected to the query expression. Every
		// dropped group joined the path condition through a feasibility
		// check, so it is satisfiable on its own, and being variable-
		// disjoint from the kept factors it cannot flip the verdict.
		if !s.opts.DisableSlicing && extra != nil && !extra.IsConst() && len(active) > 1 {
			kept, dropped := o.Slice(active, extra)
			if len(dropped) > 0 {
				active = kept
				// The session's assumption literals cover the whole
				// prefix; answering with them would re-assert the dropped
				// factors, so a sliced query solves sessionless.
				bypassSession = true
				o.NoteSliced(dropped)
				s.bumpStat(func(st *Stats) {
					st.SlicedQueries++
					st.SlicedFactors += int64(len(dropped))
				})
			}
		}
		// Algebraic rewriting: per-constraint fixpoint rules plus
		// cross-constraint substitution of implied constants. The result
		// set's conjunction is equivalent to the input's; substitution
		// results are not per-constraint session literals, so they also
		// solve sessionless.
		if !s.opts.DisableRewrite {
			out, subChanged, unsat := o.OptimizeSet(active)
			if unsat {
				return false, nil, nil
			}
			if subChanged {
				bypassSession = true
			}
			active = out
			if len(active) == 0 {
				return true, expr.Env{}, nil
			}
		}
	}

	// Fast path: a pure conjunction of boolean literals (v / ¬v) is
	// satisfiable iff no variable occurs with both polarities. This covers
	// the failure-model decision variables that dominate sensornet
	// scenarios without touching the SAT core.
	if !s.opts.DisableFastPath {
		if sat, model, ok := literalScan(active, needModel); ok {
			s.bumpStat(func(st *Stats) { st.FastPath++ })
			return sat, model, nil
		}
	}

	key, hashes := queryKey(active)

	if !s.opts.DisableCache {
		str := s.stripe(key)
		str.mu.Lock()
		if ent, ok := str.m[key]; ok && hashesEqual(ent.hashes, hashes) {
			if !ent.sat || !needModel || ent.model != nil {
				model := ent.model
				str.mu.Unlock()
				s.bumpStat(func(st *Stats) { st.CacheHits++ })
				return ent.sat, model, nil
			}
		}
		str.mu.Unlock()
		// Subsumption: a cached UNSAT subset of the query proves UNSAT, a
		// cached SAT superset proves SAT (and donates its model).
		if !s.opts.DisableSubsumption {
			s.subsMu.RLock()
			ent, ok := s.subs.lookup(hashes, needModel)
			s.subsMu.RUnlock()
			if ok {
				str.mu.Lock()
				str.m[key] = cacheEntry{hashes: hashes, sat: ent.sat, model: ent.model}
				str.mu.Unlock()
				s.bumpStat(func(st *Stats) { st.SubsumptionHits++ })
				return ent.sat, ent.model, nil
			}
		}
	}
	// Counterexample reuse: a recent model satisfying all constraints
	// proves satisfiability without a SAT call. Pool models may come from
	// optimized queries on a persistent instance, so they decide
	// feasibility verdicts only — model queries always fall through to
	// the deterministic from-scratch solve.
	var pool []expr.Env
	if !s.opts.DisablePool && !needModel {
		s.poolMu.Lock()
		pool = append(pool, s.pool...)
		s.poolMu.Unlock()
	}

	// Cross-solver shared cache: another shard of a parallel run may
	// already have decided this structural query.
	if sc := s.opts.SharedCache; sc != nil {
		if ent, ok := sc.lookup(key, hashes); ok && (!ent.sat || !needModel || ent.model != nil) {
			s.bumpStat(func(st *Stats) { st.SharedHits++ })
			if !s.opts.DisableCache {
				s.remember(key, hashes, ent.sat, ent.model)
			}
			return ent.sat, ent.model, nil
		}
	}

	for i := len(pool) - 1; i >= 0; i-- {
		if satisfies(pool[i], active) {
			// Verdict-only caching: pool models never become cache or
			// shared-cache models, so a later model query cannot observe
			// a model whose origin depended on optimizer history.
			s.bumpStat(func(st *Stats) { st.PoolHits++ })
			s.remember(key, hashes, true, nil)
			if sc := s.opts.SharedCache; sc != nil {
				sc.store(key, hashes, true, nil)
			}
			return true, pool[i], nil
		}
	}

	// Split into independent components when possible: each component is
	// decided through the full pipeline and its result cached separately.
	if !s.opts.DisablePartition {
		if sat, model, handled, err := s.checkPartitioned(qc, active, needModel); handled {
			if err != nil {
				return false, nil, err
			}
			if sat {
				s.remember(key, hashes, true, model)
				if sc := s.opts.SharedCache; sc != nil {
					sc.store(key, hashes, true, model)
				}
			}
			return sat, model, nil
		}
	}

	var sat bool
	var model expr.Env
	var err error
	incremental := !s.opts.DisableIncremental && !needModel
	if incremental {
		useSess := sess
		if bypassSession {
			useSess = nil
		}
		sat, model, err = s.solveIncremental(qc, useSess, prefix, extra, active)
	} else {
		// Model queries always bit-blast the original constraints on a
		// throwaway instance: the persistent instance's saved phases and
		// activities depend on the whole query history (and so on the
		// optimizer), which would leak into the concrete witnesses.
		sat, model, err = s.solveSAT(active)
	}
	if err != nil {
		// Budget-exhausted verdicts are unknowns: they must never reach
		// any cache (an unknown stored as UNSAT would be unsound).
		return false, nil, err
	}

	// Only deterministic models (from the needModel path) enter the
	// caches; feasibility-path models go to the pool, which never serves
	// model queries.
	cacheModel := model
	if !needModel {
		cacheModel = nil
	}
	s.bumpStat(func(st *Stats) {
		st.SATCalls++
		if incremental {
			st.IncSolves++
		}
	})
	s.remember(key, hashes, sat, cacheModel)
	if sat {
		s.poolMu.Lock()
		s.pool = append(s.pool, model)
		if len(s.pool) > s.poolCap {
			s.pool = s.pool[len(s.pool)-s.poolCap:]
		}
		s.poolMu.Unlock()
	}
	if sc := s.opts.SharedCache; sc != nil {
		sc.store(key, hashes, sat, cacheModel)
	}
	return sat, model, nil
}

// remember records a decided query in the private caches. The caller must
// never pass a budget-exhausted (ErrBudget) verdict.
func (s *Solver) remember(key uint64, hashes []uint64, sat bool, model expr.Env) {
	if s.opts.DisableCache {
		return
	}
	str := s.stripe(key)
	str.mu.Lock()
	str.m[key] = cacheEntry{hashes: hashes, sat: sat, model: model}
	str.mu.Unlock()
	if !s.opts.DisableSubsumption {
		s.subsMu.Lock()
		s.subs.store(key, hashes, sat, model)
		s.subsMu.Unlock()
	}
}

// solveSAT runs a full bit-blast + CDCL query on a throwaway instance.
func (s *Solver) solveSAT(constraints []*expr.Expr) (bool, expr.Env, error) {
	sat := newSatSolver()
	sat.maxConfl = s.opts.MaxConflicts
	bl := newBlaster(sat)
	for _, c := range constraints {
		lits := bl.encode(c)
		if !bl.assertTrue(lits[0]) {
			s.addRunStats(sat, bl)
			return false, nil, nil
		}
	}
	switch sat.solve() {
	case valFalse:
		s.addRunStats(sat, bl)
		return false, nil, nil
	case valUnassigned:
		s.addRunStats(sat, bl)
		return false, nil, ErrBudget
	}
	s.addRunStats(sat, bl)
	model := make(expr.Env, len(bl.vars))
	for v, lits := range bl.vars {
		var val uint64
		for i, l := range lits {
			if sat.litValue(l) == valTrue {
				val |= uint64(1) << uint(i)
			}
		}
		model[v.VarName()] = val
	}
	return true, model, nil
}

func (s *Solver) addRunStats(sat *satSolver, bl *blaster) {
	s.bumpStat(func(st *Stats) {
		st.Conflicts += sat.conflicts
		st.Decisions += sat.decisions
		st.Gates += bl.gates
	})
}

// literalScan handles constraint sets consisting solely of boolean
// variables and their negations. It returns ok=false when any constraint
// has a different shape.
func literalScan(constraints []*expr.Expr, needModel bool) (bool, expr.Env, bool) {
	polarity := make(map[string]bool, len(constraints))
	for _, c := range constraints {
		pos := true
		e := c
		if e.Kind() == expr.KindNot {
			pos = false
			e = e.Arg(0)
		}
		if e.Kind() != expr.KindVar || e.Width() != 1 {
			return false, nil, false
		}
		if prev, seen := polarity[e.VarName()]; seen && prev != pos {
			return false, nil, true // v ∧ ¬v
		}
		polarity[e.VarName()] = pos
	}
	if !needModel {
		return true, nil, true
	}
	model := make(expr.Env, len(polarity))
	for name, pos := range polarity {
		if pos {
			model[name] = 1
		} else {
			model[name] = 0
		}
	}
	return true, model, true
}

// satisfies reports whether env makes every constraint true.
func satisfies(env expr.Env, constraints []*expr.Expr) bool {
	for _, c := range constraints {
		if expr.Eval(c, env) == 0 {
			return false
		}
	}
	return true
}

func queryKey(constraints []*expr.Expr) (uint64, []uint64) {
	hashes := make([]uint64, len(constraints))
	for i, c := range constraints {
		hashes[i] = c.Hash()
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	// Deduplicate: the same constraint asserted twice is one constraint.
	uniq := hashes[:0]
	for i, h := range hashes {
		if i == 0 || h != hashes[i-1] {
			uniq = append(uniq, h)
		}
	}
	hashes = uniq
	key := uint64(14695981039346656037)
	for _, h := range hashes {
		key = hashCombine64(key, h)
	}
	return key, hashes
}

func hashCombine64(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	h ^= h >> 29
	return h
}

func hashesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
