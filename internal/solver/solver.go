package solver

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sde/internal/expr"
)

// ErrBudget is returned when a query exceeds the configured conflict budget
// before a definite answer is found.
var ErrBudget = errors.New("solver: conflict budget exhausted")

// Stats counts solver activity since construction. Reads are only
// consistent when the solver is quiescent.
type Stats struct {
	Queries    int64 // total Feasible/Model calls
	CacheHits  int64 // answered from the query cache
	SharedHits int64 // answered from the cross-solver shared cache
	PoolHits   int64 // answered by re-using a previous model
	FastPath   int64 // answered by the syntactic literal scan
	Partitions int64 // queries split into independent components
	SATCalls   int64 // full bit-blast + CDCL runs
	Conflicts  int64 // CDCL conflicts across all runs
	Decisions  int64 // CDCL decisions across all runs
}

type cacheEntry struct {
	hashes []uint64 // sorted constraint hashes, to guard against collisions
	sat    bool
	model  expr.Env // nil for unsat entries
}

// Options tunes a Solver. The zero value enables every optimisation;
// the Disable* switches exist for ablation benchmarks that quantify each
// layer's contribution (see the solver benchmarks).
type Options struct {
	// DisableCache turns off the query-result cache.
	DisableCache bool
	// DisablePool turns off counterexample (model) reuse.
	DisablePool bool
	// DisableFastPath turns off the syntactic boolean-literal scan.
	DisableFastPath bool
	// DisablePartition turns off independent-constraint partitioning.
	DisablePartition bool
	// MaxConflicts bounds a single CDCL run; zero means unlimited.
	MaxConflicts int64
	// SharedCache, when non-nil, is consulted after the private query
	// cache and populated with every verdict this solver computes. The
	// same cache may back any number of solvers concurrently, even ones
	// whose expressions come from different expr.Builders: query keys
	// are structural constraint hashes, comparable across builders.
	SharedCache *SharedCache
}

// Solver answers satisfiability queries over sets of 1-bit constraint
// expressions. It is safe for concurrent use. All constraint expressions
// passed to one Solver must come from a single expr.Builder.
type Solver struct {
	// MaxConflicts bounds a single CDCL run; zero means unlimited.
	MaxConflicts int64

	opts      Options
	mu        sync.Mutex
	cache     map[uint64]cacheEntry
	pool      []expr.Env // recent satisfying models, most recent last
	poolCap   int
	varsCache map[*expr.Expr][]uint32
	stats     Stats
}

// New returns a Solver with all optimisations enabled.
func New() *Solver { return NewWithOptions(Options{}) }

// NewWithOptions returns a Solver with the given tuning.
func NewWithOptions(opts Options) *Solver {
	return &Solver{
		MaxConflicts: opts.MaxConflicts,
		opts:         opts,
		cache:        make(map[uint64]cacheEntry, 256),
		poolCap:      16,
	}
}

// Stats returns a snapshot of the activity counters.
func (s *Solver) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Feasible reports whether the conjunction of the constraints is
// satisfiable. Every constraint must be a 1-bit expression.
func (s *Solver) Feasible(constraints []*expr.Expr) (bool, error) {
	sat, _, err := s.check(constraints, false)
	return sat, err
}

// Model reports satisfiability and, when satisfiable, returns a concrete
// assignment (a test case) under which every constraint evaluates to true.
// Variables not mentioned in the model are don't-cares (any value works;
// by convention they are 0).
func (s *Solver) Model(constraints []*expr.Expr) (expr.Env, bool, error) {
	sat, model, err := s.check(constraints, true)
	return model, sat, err
}

func (s *Solver) check(constraints []*expr.Expr, needModel bool) (bool, expr.Env, error) {
	s.mu.Lock()
	s.stats.Queries++
	s.mu.Unlock()

	// Constant-fold the constraint set.
	active := make([]*expr.Expr, 0, len(constraints))
	for _, c := range constraints {
		if c.Width() != 1 {
			return false, nil, fmt.Errorf("solver: constraint has width %d, want 1", c.Width())
		}
		if c.IsTrue() {
			continue
		}
		if c.IsFalse() {
			return false, nil, nil
		}
		active = append(active, c)
	}
	if len(active) == 0 {
		return true, expr.Env{}, nil
	}

	// Fast path: a pure conjunction of boolean literals (v / ¬v) is
	// satisfiable iff no variable occurs with both polarities. This covers
	// the failure-model decision variables that dominate sensornet
	// scenarios without touching the SAT core.
	if !s.opts.DisableFastPath {
		if sat, model, ok := literalScan(active, needModel); ok {
			s.mu.Lock()
			s.stats.FastPath++
			s.mu.Unlock()
			return sat, model, nil
		}
	}

	key, hashes := queryKey(active)

	s.mu.Lock()
	if ent, ok := s.cache[key]; ok && !s.opts.DisableCache && hashesEqual(ent.hashes, hashes) {
		if !ent.sat || !needModel || ent.model != nil {
			s.stats.CacheHits++
			model := ent.model
			s.mu.Unlock()
			return ent.sat, model, nil
		}
	}
	// Counterexample reuse: a recent model satisfying all constraints
	// proves satisfiability without a SAT call.
	var pool []expr.Env
	if !s.opts.DisablePool {
		pool = append(pool, s.pool...)
	}
	s.mu.Unlock()

	// Cross-solver shared cache: another shard of a parallel run may
	// already have decided this structural query.
	if sc := s.opts.SharedCache; sc != nil {
		if ent, ok := sc.lookup(key, hashes); ok && (!ent.sat || !needModel || ent.model != nil) {
			s.mu.Lock()
			s.stats.SharedHits++
			if !s.opts.DisableCache {
				s.cache[key] = ent
			}
			s.mu.Unlock()
			return ent.sat, ent.model, nil
		}
	}

	for i := len(pool) - 1; i >= 0; i-- {
		if satisfies(pool[i], active) {
			s.mu.Lock()
			s.stats.PoolHits++
			s.cache[key] = cacheEntry{hashes: hashes, sat: true, model: pool[i]}
			s.mu.Unlock()
			if sc := s.opts.SharedCache; sc != nil {
				sc.store(key, hashes, true, pool[i])
			}
			return true, pool[i], nil
		}
	}

	// Split into independent components when possible: each component is
	// decided through the full pipeline and its result cached separately.
	if !s.opts.DisablePartition {
		if sat, model, handled, err := s.checkPartitioned(active, needModel); handled {
			if err != nil {
				return false, nil, err
			}
			if sat {
				s.mu.Lock()
				key2, hashes2 := key, hashes
				s.cache[key2] = cacheEntry{hashes: hashes2, sat: true, model: model}
				s.mu.Unlock()
				if sc := s.opts.SharedCache; sc != nil {
					sc.store(key, hashes, true, model)
				}
			}
			return sat, model, nil
		}
	}

	sat, model, err := s.solveSAT(active)
	if err != nil {
		return false, nil, err
	}

	s.mu.Lock()
	s.stats.SATCalls++
	s.cache[key] = cacheEntry{hashes: hashes, sat: sat, model: model}
	if sat {
		s.pool = append(s.pool, model)
		if len(s.pool) > s.poolCap {
			s.pool = s.pool[len(s.pool)-s.poolCap:]
		}
	}
	s.mu.Unlock()
	if sc := s.opts.SharedCache; sc != nil {
		sc.store(key, hashes, sat, model)
	}
	return sat, model, nil
}

// solveSAT runs a full bit-blast + CDCL query.
func (s *Solver) solveSAT(constraints []*expr.Expr) (bool, expr.Env, error) {
	sat := newSatSolver()
	sat.maxConfl = s.MaxConflicts
	bl := newBlaster(sat)
	for _, c := range constraints {
		lits := bl.encode(c)
		if !bl.assertTrue(lits[0]) {
			return false, nil, nil
		}
	}
	switch sat.solve() {
	case valFalse:
		s.addRunStats(sat)
		return false, nil, nil
	case valUnassigned:
		s.addRunStats(sat)
		return false, nil, ErrBudget
	}
	s.addRunStats(sat)
	model := make(expr.Env, len(bl.vars))
	for v, lits := range bl.vars {
		var val uint64
		for i, l := range lits {
			if sat.litValue(l) == valTrue {
				val |= uint64(1) << uint(i)
			}
		}
		model[v.VarName()] = val
	}
	return true, model, nil
}

func (s *Solver) addRunStats(sat *satSolver) {
	s.mu.Lock()
	s.stats.Conflicts += sat.conflicts
	s.stats.Decisions += sat.decisions
	s.mu.Unlock()
}

// literalScan handles constraint sets consisting solely of boolean
// variables and their negations. It returns ok=false when any constraint
// has a different shape.
func literalScan(constraints []*expr.Expr, needModel bool) (bool, expr.Env, bool) {
	polarity := make(map[string]bool, len(constraints))
	for _, c := range constraints {
		pos := true
		e := c
		if e.Kind() == expr.KindNot {
			pos = false
			e = e.Arg(0)
		}
		if e.Kind() != expr.KindVar || e.Width() != 1 {
			return false, nil, false
		}
		if prev, seen := polarity[e.VarName()]; seen && prev != pos {
			return false, nil, true // v ∧ ¬v
		}
		polarity[e.VarName()] = pos
	}
	if !needModel {
		return true, nil, true
	}
	model := make(expr.Env, len(polarity))
	for name, pos := range polarity {
		if pos {
			model[name] = 1
		} else {
			model[name] = 0
		}
	}
	return true, model, true
}

// satisfies reports whether env makes every constraint true.
func satisfies(env expr.Env, constraints []*expr.Expr) bool {
	for _, c := range constraints {
		if expr.Eval(c, env) == 0 {
			return false
		}
	}
	return true
}

func queryKey(constraints []*expr.Expr) (uint64, []uint64) {
	hashes := make([]uint64, len(constraints))
	for i, c := range constraints {
		hashes[i] = c.Hash()
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	// Deduplicate: the same constraint asserted twice is one constraint.
	uniq := hashes[:0]
	for i, h := range hashes {
		if i == 0 || h != hashes[i-1] {
			uniq = append(uniq, h)
		}
	}
	hashes = uniq
	key := uint64(14695981039346656037)
	for _, h := range hashes {
		key = hashCombine64(key, h)
	}
	return key, hashes
}

func hashCombine64(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	h ^= h >> 29
	return h
}

func hashesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
