package solver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sde/internal/expr"
)

func feasible(t *testing.T, s *Solver, cs []*expr.Expr) bool {
	t.Helper()
	ok, err := s.Feasible(cs)
	if err != nil {
		t.Fatalf("Feasible: %v", err)
	}
	return ok
}

func TestEmptyQueryIsSat(t *testing.T) {
	s := New()
	if !feasible(t, s, nil) {
		t.Error("empty constraint set should be SAT")
	}
}

func TestConstantConstraints(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	if !feasible(t, s, []*expr.Expr{b.True(), b.True()}) {
		t.Error("true ∧ true should be SAT")
	}
	if feasible(t, s, []*expr.Expr{b.True(), b.False()}) {
		t.Error("true ∧ false should be UNSAT")
	}
}

func TestSimpleRange(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 32)
	// x != 0 ∧ x < 50 ∧ x > 10  (Figure 1, path 2)
	cs := []*expr.Expr{
		b.Ne(x, b.Const(0, 32)),
		b.Ult(x, b.Const(50, 32)),
		b.Ult(b.Const(10, 32), x),
	}
	model, sat, err := s.Model(cs)
	if err != nil || !sat {
		t.Fatalf("range query: sat=%v err=%v", sat, err)
	}
	v := model["x"]
	if v == 0 || v >= 50 || v <= 10 {
		t.Errorf("model x=%d violates 10 < x < 50, x != 0", v)
	}
}

func TestUnsatRange(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 8)
	cs := []*expr.Expr{
		b.Ult(x, b.Const(5, 8)),
		b.Ult(b.Const(10, 8), x),
	}
	if feasible(t, s, cs) {
		t.Error("x < 5 ∧ x > 10 should be UNSAT")
	}
}

func TestArithmeticModel(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 16)
	y := b.Var("y", 16)
	// x * y == 391 (17 * 23), x > 1, y > 1, x < y: forces the factorisation.
	cs := []*expr.Expr{
		b.Eq(b.Mul(x, y), b.Const(391, 16)),
		b.Ult(b.Const(1, 16), x),
		b.Ult(b.Const(1, 16), y),
		b.Ult(x, y),
		b.Ult(y, b.Const(30, 16)),
	}
	model, sat, err := s.Model(cs)
	if err != nil || !sat {
		t.Fatalf("factorisation: sat=%v err=%v", sat, err)
	}
	if model["x"] != 17 || model["y"] != 23 {
		t.Errorf("model = (%d, %d), want (17, 23)", model["x"], model["y"])
	}
}

func TestDivisionSemantics(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 8)
	// SMT-LIB: x / 0 == 0xff must be valid (its negation UNSAT).
	cs := []*expr.Expr{
		b.Ne(b.UDiv(x, b.Const(0, 8)), b.Const(0xff, 8)),
	}
	if feasible(t, s, cs) {
		t.Error("x/0 != 0xff should be UNSAT under SMT-LIB semantics")
	}
	// x % 0 == x must be valid.
	cs = []*expr.Expr{
		b.Ne(b.URem(x, b.Const(0, 8)), x),
	}
	if feasible(t, s, cs) {
		t.Error("x%0 != x should be UNSAT under SMT-LIB semantics")
	}
}

func TestSignedComparisonModel(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 8)
	// x <s 0 ∧ x >s -10: a small negative number.
	cs := []*expr.Expr{
		b.Slt(x, b.Const(0, 8)),
		b.Slt(b.Const(0xf6, 8), x), // -10
	}
	model, sat, err := s.Model(cs)
	if err != nil || !sat {
		t.Fatalf("signed range: sat=%v err=%v", sat, err)
	}
	v := int8(model["x"])
	if v >= 0 || v <= -10 {
		t.Errorf("model x=%d violates -10 < x < 0", v)
	}
}

func TestLiteralScanFastPath(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	d1 := b.Var("drop_1", 1)
	d2 := b.Var("drop_2", 1)
	if !feasible(t, s, []*expr.Expr{d1, b.Not(d2)}) {
		t.Error("independent drop literals should be SAT")
	}
	if feasible(t, s, []*expr.Expr{d1, b.Not(d1)}) {
		t.Error("contradictory drop literals should be UNSAT")
	}
	st := s.Stats()
	if st.FastPath != 2 {
		t.Errorf("FastPath = %d, want 2 (no SAT calls for literal sets)", st.FastPath)
	}
	if st.SATCalls != 0 {
		t.Errorf("SATCalls = %d, want 0", st.SATCalls)
	}
	// Fast-path models must satisfy the constraints too.
	model, sat, err := s.Model([]*expr.Expr{d1, b.Not(d2)})
	if err != nil || !sat {
		t.Fatalf("model query: sat=%v err=%v", sat, err)
	}
	if model["drop_1"] != 1 || model["drop_2"] != 0 {
		t.Errorf("fast-path model = %v", model)
	}
}

func TestQueryCache(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 32)
	cs := []*expr.Expr{b.Ult(x, b.Const(5, 32)), b.Ne(x, b.Const(0, 32))}
	feasible(t, s, cs)
	before := s.Stats()
	feasible(t, s, cs)
	after := s.Stats()
	if after.CacheHits != before.CacheHits+1 {
		t.Errorf("second identical query missed the cache: %+v", after)
	}
	// Order must not matter.
	feasible(t, s, []*expr.Expr{cs[1], cs[0]})
	if s.Stats().CacheHits != before.CacheHits+2 {
		t.Error("permuted query missed the cache")
	}
	// The same constraint asserted twice is the same query.
	feasible(t, s, []*expr.Expr{cs[0], cs[1], cs[0]})
	if s.Stats().CacheHits != before.CacheHits+3 {
		t.Error("duplicated-constraint query missed the cache")
	}
}

func TestModelReusePool(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 32)
	base := []*expr.Expr{b.Ult(b.Const(100, 32), x)}
	if !feasible(t, s, base) {
		t.Fatal("x > 100 should be SAT")
	}
	// A weaker superset query should be answerable from the model pool.
	weaker := []*expr.Expr{b.Ult(b.Const(50, 32), x)}
	before := s.Stats().SATCalls
	if !feasible(t, s, weaker) {
		t.Fatal("x > 50 should be SAT")
	}
	if s.Stats().SATCalls != before {
		t.Error("weaker query was not answered from the model pool")
	}
}

func TestWidthValidation(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	if _, err := s.Feasible([]*expr.Expr{b.Const(3, 8)}); err == nil {
		t.Error("8-bit constraint accepted; want width error")
	}
}

// TestModelsSatisfyQueries is the central solver property: on random
// constraint sets over small widths, (1) the SAT/UNSAT verdict matches
// brute-force enumeration and (2) any returned model satisfies every
// constraint under the independent concrete evaluator.
func TestModelsSatisfyQueries(t *testing.T) {
	const width = 6
	cfg := &quick.Config{MaxCount: 120}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := expr.NewBuilder()
		x := b.Var("a", width)
		y := b.Var("b", width)
		nCons := 1 + rng.Intn(4)
		cs := make([]*expr.Expr, 0, nCons)
		for i := 0; i < nCons; i++ {
			var lhs *expr.Expr
			switch rng.Intn(6) {
			case 0:
				lhs = b.Add(x, y)
			case 1:
				lhs = b.Mul(x, y)
			case 2:
				lhs = b.Xor(x, y)
			case 3:
				lhs = b.UDiv(x, y)
			case 4:
				lhs = b.Shl(x, b.Trunc(b.ZExt(y, 8), width))
			default:
				lhs = b.Sub(y, x)
			}
			rhs := b.Const(rng.Uint64(), width)
			var c *expr.Expr
			switch rng.Intn(4) {
			case 0:
				c = b.Eq(lhs, rhs)
			case 1:
				c = b.Ult(lhs, rhs)
			case 2:
				c = b.Sle(lhs, rhs)
			default:
				c = b.Ne(lhs, rhs)
			}
			cs = append(cs, c)
		}

		// Brute force over the 2^12 input combinations.
		bruteSat := false
		for av := uint64(0); av < 1<<width && !bruteSat; av++ {
			for bv := uint64(0); bv < 1<<width; bv++ {
				env := expr.Env{"a": av, "b": bv}
				if satisfies(env, cs) {
					bruteSat = true
					break
				}
			}
		}

		s := New()
		model, sat, err := s.Model(cs)
		if err != nil {
			t.Logf("seed %d: error %v", seed, err)
			return false
		}
		if sat != bruteSat {
			t.Logf("seed %d: solver=%v brute=%v", seed, sat, bruteSat)
			return false
		}
		if sat && !satisfies(model, cs) {
			t.Logf("seed %d: model %v does not satisfy query", seed, model)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestWidths exercises the blaster at every boundary width.
func TestWidths(t *testing.T) {
	for _, w := range []int{1, 2, 7, 8, 9, 16, 31, 32, 33, 63, 64} {
		b := expr.NewBuilder()
		s := New()
		x := b.Var("x", w)
		hi := b.Const(mask(uint8(w)), w)
		// x == all-ones is always satisfiable.
		model, sat, err := s.Model([]*expr.Expr{b.Eq(x, hi)})
		if err != nil || !sat {
			t.Fatalf("w=%d: sat=%v err=%v", w, sat, err)
		}
		if model["x"] != hi.ConstVal() {
			t.Errorf("w=%d: model x=%#x, want %#x", w, model["x"], hi.ConstVal())
		}
		// x < 0 (unsigned) is never satisfiable.
		if feasible(t, s, []*expr.Expr{b.Ult(x, b.Const(0, w))}) {
			t.Errorf("w=%d: x <u 0 should be UNSAT", w)
		}
	}
}

func mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

func TestOverflowWraps(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 8)
	// x + 1 == 0 forces x == 255 (wraparound).
	model, sat, err := s.Model([]*expr.Expr{
		b.Eq(b.Add(x, b.Const(1, 8)), b.Const(0, 8)),
	})
	if err != nil || !sat {
		t.Fatalf("wrap query: sat=%v err=%v", sat, err)
	}
	if model["x"] != 255 {
		t.Errorf("model x=%d, want 255", model["x"])
	}
}

func TestShiftBySymbolicAmount(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 16)
	n := b.Var("n", 16)
	// (x << n) == 0x8000 with x == 1 forces n == 15.
	model, sat, err := s.Model([]*expr.Expr{
		b.Eq(x, b.Const(1, 16)),
		b.Eq(b.Shl(x, n), b.Const(0x8000, 16)),
	})
	if err != nil || !sat {
		t.Fatalf("shift query: sat=%v err=%v", sat, err)
	}
	if model["n"] != 15 {
		t.Errorf("model n=%d, want 15", model["n"])
	}
	// Shifting 1 by >= 16 yields 0, so == 0x8000 with n >= 16 is UNSAT.
	if feasible(t, s, []*expr.Expr{
		b.Eq(x, b.Const(1, 16)),
		b.Ule(b.Const(16, 16), n),
		b.Eq(b.Shl(x, n), b.Const(0x8000, 16)),
	}) {
		t.Error("oversized shift producing nonzero should be UNSAT")
	}
}

func TestIteConstraint(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	c := b.Var("c", 1)
	x := b.Var("x", 8)
	// ite(c, x, 0) == 7 forces c == 1 and x == 7.
	model, sat, err := s.Model([]*expr.Expr{
		b.Eq(b.Ite(c, x, b.Const(0, 8)), b.Const(7, 8)),
	})
	if err != nil || !sat {
		t.Fatalf("ite query: sat=%v err=%v", sat, err)
	}
	if model["c"] != 1 || model["x"] != 7 {
		t.Errorf("model = %v, want c=1 x=7", model)
	}
}

func TestConcurrentQueries(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 16)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 20; i++ {
				bound := uint64(g*100 + i + 1)
				ok, err := s.Feasible([]*expr.Expr{b.Ult(x, b.Const(bound, 16))})
				if err != nil {
					done <- err
					return
				}
				if !ok {
					done <- errFalse
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errFalse = &errString{"query unexpectedly UNSAT"}

type errString struct{ s string }

func (e *errString) Error() string { return e.s }
