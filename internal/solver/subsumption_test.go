package solver

import (
	"errors"
	"testing"

	"sde/internal/expr"
)

// subsumptionTestOpts isolates the subsumption layer: the model pool,
// fast path, and partitioning are off so a second query can only be
// answered by the exact cache, subsumption, or a fresh SAT call.
var subsumptionTestOpts = Options{
	DisablePool:      true,
	DisableFastPath:  true,
	DisablePartition: true,
}

// TestSubsumptionUnsatSubset: once {x<5, 5<x} is known UNSAT, any
// superset of it — here with an extra constraint coupling in y — must be
// refuted by the cache without another SAT call.
func TestSubsumptionUnsatSubset(t *testing.T) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 8)
	y := eb.Var("y", 8)
	a := eb.Ult(x, eb.Const(5, 8))
	b := eb.Ult(eb.Const(5, 8), x)

	s := NewWithOptions(subsumptionTestOpts)
	if sat, err := s.Feasible([]*expr.Expr{a, b}); err != nil || sat {
		t.Fatalf("core: sat=%v err=%v", sat, err)
	}
	calls := s.Stats().SATCalls

	if sat, err := s.Feasible([]*expr.Expr{a, b, eb.Ult(x, y)}); err != nil || sat {
		t.Fatalf("superset of an UNSAT core must be UNSAT: sat=%v err=%v", sat, err)
	}
	st := s.Stats()
	if st.SubsumptionHits != 1 {
		t.Errorf("SubsumptionHits = %d, want 1", st.SubsumptionHits)
	}
	if st.SATCalls != calls {
		t.Errorf("SATCalls = %d, want %d (no new CDCL run)", st.SATCalls, calls)
	}
}

// TestSubsumptionSatSuperset: once {c1, c2, c3} is known SAT with a
// model, any subset of it is SAT too, and the stored model answers it.
func TestSubsumptionSatSuperset(t *testing.T) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 8)
	y := eb.Var("y", 8)
	c1 := eb.Ult(x, y)
	c2 := eb.Ult(x, eb.Const(20, 8))
	c3 := eb.Ne(y, eb.Const(0, 8))

	s := NewWithOptions(subsumptionTestOpts)
	if _, sat, err := s.Model([]*expr.Expr{c1, c2, c3}); err != nil || !sat {
		t.Fatalf("superset: sat=%v err=%v", sat, err)
	}
	calls := s.Stats().SATCalls

	model, sat, err := s.Model([]*expr.Expr{c1, c3})
	if err != nil || !sat {
		t.Fatalf("subset of a SAT query must be SAT: sat=%v err=%v", sat, err)
	}
	for _, c := range []*expr.Expr{c1, c3} {
		if expr.Eval(c, model) == 0 {
			t.Fatalf("subsumption model %v violates a query constraint", model)
		}
	}
	st := s.Stats()
	if st.SubsumptionHits != 1 {
		t.Errorf("SubsumptionHits = %d, want 1", st.SubsumptionHits)
	}
	if st.SATCalls != calls {
		t.Errorf("SATCalls = %d, want %d (no new CDCL run)", st.SATCalls, calls)
	}
}

// TestDisableSubsumption: with the switch set, the same subset/superset
// pair needs fresh SAT calls and records no subsumption hits.
func TestDisableSubsumption(t *testing.T) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 8)
	y := eb.Var("y", 8)
	a := eb.Ult(x, eb.Const(5, 8))
	b := eb.Ult(eb.Const(5, 8), x)

	opts := subsumptionTestOpts
	opts.DisableSubsumption = true
	s := NewWithOptions(opts)
	if sat, err := s.Feasible([]*expr.Expr{a, b}); err != nil || sat {
		t.Fatalf("core: sat=%v err=%v", sat, err)
	}
	if sat, err := s.Feasible([]*expr.Expr{a, b, eb.Ult(x, y)}); err != nil || sat {
		t.Fatalf("superset: sat=%v err=%v", sat, err)
	}
	st := s.Stats()
	if st.SubsumptionHits != 0 {
		t.Errorf("SubsumptionHits = %d, want 0 when disabled", st.SubsumptionHits)
	}
	if st.SATCalls != 2 {
		t.Errorf("SATCalls = %d, want 2 (each query decided on its own)", st.SATCalls)
	}
}

// unsatVerdictsCached counts UNSAT verdicts across the solver's private
// exact cache and subsumption index.
func unsatVerdictsCached(s *Solver) int {
	n := 0
	for i := range s.cache {
		str := &s.cache[i]
		str.mu.Lock()
		for _, e := range str.m {
			if !e.sat {
				n++
			}
		}
		str.mu.Unlock()
	}
	s.subsMu.RLock()
	for _, e := range s.subs.entries {
		if !e.sat {
			n++
		}
	}
	s.subsMu.RUnlock()
	return n
}

// exactCacheLen counts entries across the striped exact cache.
func exactCacheLen(s *Solver) int {
	n := 0
	for i := range s.cache {
		str := &s.cache[i]
		str.mu.Lock()
		n += len(str.m)
		str.mu.Unlock()
	}
	return n
}

// hardQuery returns a constraint set that forces real CDCL search: find a
// nontrivial factorisation of a 16-bit constant. It is a single connected
// component (all constraints share x or y).
func hardQuery(eb *expr.Builder) []*expr.Expr {
	x := eb.Var("hx", 16)
	y := eb.Var("hy", 16)
	one := eb.Const(1, 16)
	return []*expr.Expr{
		eb.Eq(eb.Mul(x, y), eb.Const(0xD431, 16)),
		eb.Ult(one, x),
		eb.Ult(one, y),
		eb.Ult(x, y),
	}
}

// TestErrBudgetNeverCached (direct path): a budget-exhausted query must
// leave every cache — private exact, subsumption, and shared — untouched.
// A cached "unknown" would be replayed as a definite verdict forever.
func TestErrBudgetNeverCached(t *testing.T) {
	eb := expr.NewBuilder()
	q := hardQuery(eb)
	shared := NewSharedCache()

	opts := subsumptionTestOpts
	opts.MaxConflicts = 1
	opts.SharedCache = shared
	s := NewWithOptions(opts)

	_, err := s.Feasible(q)
	if err == nil {
		t.Skip("query solved within 1 conflict; no budget exhaustion to test")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	ncache := exactCacheLen(s)
	s.subsMu.RLock()
	nsubs := len(s.subs.entries)
	s.subsMu.RUnlock()
	if ncache != 0 || nsubs != 0 {
		t.Errorf("budget-exhausted verdict cached: %d exact entries, %d subsumption entries", ncache, nsubs)
	}
	if st := shared.Stats(); st.Stores != 0 {
		t.Errorf("budget-exhausted verdict stored in shared cache: %d stores", st.Stores)
	}
	// A second attempt must retry (and fail) rather than replay a verdict.
	if _, err := s.Feasible(q); !errors.Is(err, ErrBudget) {
		t.Errorf("second attempt: err = %v, want ErrBudget again", err)
	}

	// An unlimited solver over the same shared cache must agree with an
	// isolated from-scratch oracle — a poisoned shared entry would not.
	unlimited := NewWithOptions(Options{SharedCache: shared})
	got, err := unlimited.Feasible(q)
	if err != nil {
		t.Fatalf("unlimited solver: %v", err)
	}
	oracle := NewWithOptions(Options{DisableIncremental: true, DisableCache: true})
	want, err := oracle.Feasible(q)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if got != want {
		t.Errorf("verdict after budget exhaustion = %v, oracle says %v", got, want)
	}
}

// TestErrBudgetNeverCachedPartitioned: same guarantee through
// checkPartitioned — the query splits into an easy component and a hard
// one; when the hard component exhausts the budget, no UNSAT verdict may
// survive anywhere (the easy component's SAT verdict is legitimate).
func TestErrBudgetNeverCachedPartitioned(t *testing.T) {
	eb := expr.NewBuilder()
	z := eb.Var("z", 8)
	q := append(hardQuery(eb), eb.Ult(z, eb.Const(5, 8)))
	shared := NewSharedCache()

	s := NewWithOptions(Options{
		DisablePool:     true,
		DisableFastPath: true,
		MaxConflicts:    1,
		SharedCache:     shared,
	})
	_, err := s.Feasible(q)
	if err == nil {
		t.Skip("query solved within 1 conflict; no budget exhaustion to test")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if st := s.Stats(); st.Partitions == 0 {
		t.Fatalf("query was not partitioned; test needs the checkPartitioned path")
	}
	if n := unsatVerdictsCached(s); n != 0 {
		t.Errorf("%d UNSAT verdicts cached after budget exhaustion", n)
	}

	// Same cross-check through the shared cache.
	unlimited := NewWithOptions(Options{SharedCache: shared})
	got, err := unlimited.Feasible(q)
	if err != nil {
		t.Fatalf("unlimited solver: %v", err)
	}
	oracle := NewWithOptions(Options{DisableIncremental: true, DisableCache: true})
	want, err := oracle.Feasible(q)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if got != want {
		t.Errorf("verdict after budget exhaustion = %v, oracle says %v", got, want)
	}
}
