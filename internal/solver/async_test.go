package solver

import (
	"fmt"
	"testing"

	"sde/internal/expr"
)

// specPoolOpts isolates the pool's own scheduling behaviour: the model
// pool is off so every verdict is either a worker solve, an exact-cache
// hit, or a subsumption hit.
func specPoolOpts() Options {
	return Options{DisablePool: true}
}

func TestSpecPoolSubmitOne(t *testing.T) {
	s := NewWithOptions(specPoolOpts())
	p := NewSpecPool(s, 2)
	defer p.Close()
	b := expr.NewBuilder()
	x := b.Var("x", 8)

	sat := p.SubmitOne([]*expr.Expr{b.Ult(x, b.Const(5, 8))}, b.Ne(x, b.Const(0, 8)))
	unsat := p.SubmitOne([]*expr.Expr{b.Ult(x, b.Const(5, 8))}, b.Eq(x, b.Const(9, 8)))
	sat.Wait()
	unsat.Wait()
	if ok, err := sat.SatTrue(); err != nil || !ok {
		t.Errorf("satisfiable assume: ok=%v err=%v", ok, err)
	}
	if ok, err := unsat.SatTrue(); err != nil || ok {
		t.Errorf("unsatisfiable assume: ok=%v err=%v", ok, err)
	}
	st := p.Stats()
	if st.Submitted != 2 || st.Assumes != 2 || st.Pairs != 0 {
		t.Errorf("stats = %+v, want 2 assume submissions", st)
	}
}

func TestSpecPoolSubmitPair(t *testing.T) {
	s := NewWithOptions(specPoolOpts())
	p := NewSpecPool(s, 2)
	defer p.Close()
	b := expr.NewBuilder()
	x := b.Var("x", 8)

	// Both sides feasible: x < 5 with x = 3 vs x != 3.
	cond := b.Eq(x, b.Const(3, 8))
	both := p.SubmitPair([]*expr.Expr{b.Ult(x, b.Const(5, 8))}, cond, b.Not(cond))
	both.Wait()
	if ok, err := both.SatTrue(); err != nil || !ok {
		t.Errorf("true side: ok=%v err=%v", ok, err)
	}
	if ok, err := both.SatFalse(); err != nil || !ok {
		t.Errorf("false side: ok=%v err=%v", ok, err)
	}
	if both.Elided() {
		t.Error("both-feasible pair must not be elided")
	}
}

func TestSpecPoolComplementElision(t *testing.T) {
	s := NewWithOptions(specPoolOpts())
	p := NewSpecPool(s, 1)
	defer p.Close()
	b := expr.NewBuilder()
	x := b.Var("x", 8)

	// True side infeasible under the prefix: x = 3 ∧ x = 4. The false
	// side must be answered by complement elision, not a solve.
	cond := b.Eq(x, b.Const(4, 8))
	pair := p.SubmitPair([]*expr.Expr{b.Eq(x, b.Const(3, 8))}, cond, b.Not(cond))
	pair.Wait()
	if ok, err := pair.SatTrue(); err != nil || ok {
		t.Errorf("true side: ok=%v err=%v, want infeasible", ok, err)
	}
	if ok, err := pair.SatFalse(); err != nil || !ok {
		t.Errorf("false side: ok=%v err=%v, want elided feasible", ok, err)
	}
	if !pair.Elided() {
		t.Error("false side was not elided")
	}
	st := p.Stats()
	if st.Elided != 1 {
		t.Errorf("Elided = %d, want 1", st.Elided)
	}
	if st.Solves != 1 {
		t.Errorf("Solves = %d, want 1 (false side must not be solved)", st.Solves)
	}
}

// TestSpecPoolLIFODrain pins the deepest-first drain order that the whole
// pipeline's performance rests on: when a prefix chain is queued all at
// once, the worker must pop the deepest query first so the shallower ones
// are answered by SAT-superset subsumption instead of separate CDCL runs.
// The queue is loaded under the pool lock so the single worker cannot
// start until every level is in the stack.
func TestSpecPoolLIFODrain(t *testing.T) {
	const depth = 8
	s := NewWithOptions(specPoolOpts())
	p := NewSpecPool(s, 1)
	defer p.Close()
	b := expr.NewBuilder()

	// An entangled chain: level i asserts k_i <= sum of m_0..m_i.
	acc := b.Var("seed", 8)
	prefix := make([]*expr.Expr, 0, depth)
	tasks := make([]*SpecTask, 0, depth)
	p.mu.Lock()
	for i := 0; i < depth; i++ {
		acc = b.Add(acc, b.Var(fmt.Sprintf("m%d", i), 8))
		cond := b.Ule(b.Var(fmt.Sprintf("k%d", i), 8), acc)
		task := &SpecTask{prefix: prefix, cond: cond, done: make(chan struct{})}
		prefix = append(prefix, cond)
		p.stack = append(p.stack, task)
		p.inflight++
		p.stats.Submitted++
		p.stats.Assumes++
		tasks = append(tasks, task)
	}
	p.mu.Unlock()
	p.cond.Signal()

	for _, task := range tasks {
		task.Wait()
		if ok, err := task.SatTrue(); err != nil || !ok {
			t.Fatalf("chain level: ok=%v err=%v", ok, err)
		}
	}
	if sat := s.Stats().SATCalls; sat != 1 {
		t.Errorf("SATCalls = %d, want 1 (deepest-first drain + subsumption)", sat)
	}
	if hits := s.Stats().SubsumptionHits; hits != depth-1 {
		t.Errorf("SubsumptionHits = %d, want %d", hits, depth-1)
	}
}

// TestSpecPoolCancel: canceled tasks must still resolve their done
// channel on drain, and a canceled-before-pickup task is skipped without
// a solve. Cancellation racing a worker is inherently nondeterministic,
// so the only hard assertions are no deadlock and conserved counters.
func TestSpecPoolCancel(t *testing.T) {
	s := NewWithOptions(specPoolOpts())
	p := NewSpecPool(s, 2)
	b := expr.NewBuilder()
	x := b.Var("x", 8)

	const n = 32
	tasks := make([]*SpecTask, 0, n)
	for i := 0; i < n; i++ {
		task := p.SubmitOne([]*expr.Expr{b.Ult(x, b.Const(200, 8))},
			b.Ne(x, b.Const(uint64(i), 8)))
		task.Cancel()
		tasks = append(tasks, task)
	}
	p.Close() // drains: every task's done channel must be closed
	for _, task := range tasks {
		task.Wait()
	}
	st := p.Stats()
	if st.Submitted != n {
		t.Errorf("Submitted = %d, want %d", st.Submitted, n)
	}
	if st.Solves > n {
		t.Errorf("Solves = %d exceeds submissions", st.Solves)
	}
}

func TestSpecPoolCloseTwice(t *testing.T) {
	s := NewWithOptions(specPoolOpts())
	p := NewSpecPool(s, 1)
	p.Close()
	p.Close() // must not panic or hang
}
