package solver

import (
	"math/rand"
	"testing"
)

func TestSATTrivial(t *testing.T) {
	s := newSatSolver()
	a := s.newVar()
	b := s.newVar()
	if !s.addClause(a, b) {
		t.Fatal("adding (a ∨ b) reported conflict")
	}
	if s.solve() != valTrue {
		t.Fatal("(a ∨ b) should be SAT")
	}
	if s.litValue(a) != valTrue && s.litValue(b) != valTrue {
		t.Error("model does not satisfy (a ∨ b)")
	}
}

func TestSATUnit(t *testing.T) {
	s := newSatSolver()
	a := s.newVar()
	if !s.addClause(a) {
		t.Fatal("unit clause reported conflict")
	}
	if s.solve() != valTrue {
		t.Fatal("unit problem should be SAT")
	}
	if s.litValue(a) != valTrue {
		t.Error("unit literal not assigned true")
	}
}

func TestSATContradiction(t *testing.T) {
	s := newSatSolver()
	a := s.newVar()
	ok1 := s.addClause(a)
	ok2 := s.addClause(-a)
	if ok1 && ok2 && s.solve() != valFalse {
		t.Error("a ∧ ¬a should be UNSAT")
	}
}

func TestSATPigeonhole(t *testing.T) {
	// 4 pigeons, 3 holes: classic small UNSAT instance requiring real
	// conflict analysis.
	const pigeons, holes = 4, 3
	s := newSatSolver()
	var v [pigeons][holes]Lit
	for p := 0; p < pigeons; p++ {
		for h := 0; h < holes; h++ {
			v[p][h] = s.newVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		s.addClause(v[p][0], v[p][1], v[p][2])
	}
	ok := true
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				ok = s.addClause(-v[p1][h], -v[p2][h]) && ok
			}
		}
	}
	if ok && s.solve() != valFalse {
		t.Error("pigeonhole(4,3) should be UNSAT")
	}
}

func TestSATTautologyDropped(t *testing.T) {
	s := newSatSolver()
	a := s.newVar()
	if !s.addClause(a, -a) {
		t.Error("tautological clause reported conflict")
	}
	if s.solve() != valTrue {
		t.Error("empty effective problem should be SAT")
	}
}

// bruteForceSAT decides a CNF by enumeration; usable up to ~20 variables.
func bruteForceSAT(nVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<uint(nVars); m++ {
		ok := true
		for _, cl := range clauses {
			clauseSat := false
			for _, l := range cl {
				bit := (m>>uint(l.v()-1))&1 == 1
				if (l > 0) == bit {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestSATRandom3CNF cross-checks CDCL against brute force on random 3-CNF
// instances around the phase-transition density.
func TestSATRandom3CNF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nVars := 5 + rng.Intn(9) // 5..13
		nClauses := int(float64(nVars) * (3.0 + rng.Float64()*2.5))
		var clauses [][]Lit
		for i := 0; i < nClauses; i++ {
			cl := make([]Lit, 3)
			for j := range cl {
				v := Lit(1 + rng.Intn(nVars))
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			clauses = append(clauses, cl)
		}
		want := bruteForceSAT(nVars, clauses)

		s := newSatSolver()
		for i := 0; i < nVars; i++ {
			s.newVar()
		}
		consistent := true
		for _, cl := range clauses {
			if !s.addClause(cl...) {
				consistent = false
				break
			}
		}
		var got bool
		if !consistent {
			got = false
		} else {
			got = s.solve() == valTrue
		}
		if got != want {
			t.Fatalf("trial %d (n=%d, m=%d): CDCL=%v brute=%v",
				trial, nVars, nClauses, got, want)
		}
		// When SAT, the assignment must satisfy every clause.
		if got {
			for ci, cl := range clauses {
				sat := false
				for _, l := range cl {
					if s.litValue(l) == valTrue {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: clause %d unsatisfied by model", trial, ci)
				}
			}
		}
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard UNSAT instance with a tiny budget must report unknown
	// (valUnassigned), not a wrong answer.
	const pigeons, holes = 7, 6
	s := newSatSolver()
	s.maxConfl = 3
	var v [pigeons][holes]Lit
	for p := 0; p < pigeons; p++ {
		for h := 0; h < holes; h++ {
			v[p][h] = s.newVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = v[p][h]
		}
		s.addClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.addClause(-v[p1][h], -v[p2][h])
			}
		}
	}
	if got := s.solve(); got == valTrue {
		t.Error("budgeted run of an UNSAT instance returned SAT")
	}
}
