package solver

import (
	"fmt"
	"sync"
	"testing"

	"sde/internal/expr"
)

// TestSharedCacheCrossBuilder: a verdict computed by one solver answers
// the structurally identical query of another solver whose expressions
// come from a completely independent Builder — the cross-shard reuse
// case of the parallel scheduler.
func TestSharedCacheCrossBuilder(t *testing.T) {
	shared := NewSharedCache()
	mkQuery := func(b *expr.Builder) []*expr.Expr {
		x := b.Var("x", 16)
		return []*expr.Expr{
			b.Eq(b.Mul(x, x), b.Const(49, 16)),
			b.Ult(x, b.Const(100, 16)),
		}
	}

	b1 := expr.NewBuilder()
	s1 := NewWithOptions(Options{SharedCache: shared})
	model1, sat, err := s1.Model(mkQuery(b1))
	if err != nil || !sat {
		t.Fatalf("first solver: sat=%v err=%v", sat, err)
	}
	if s1.Stats().SharedHits != 0 {
		t.Error("first solver hit an empty shared cache")
	}
	if st := shared.Stats(); st.Stores == 0 {
		t.Fatal("first solver stored nothing")
	}

	b2 := expr.NewBuilder()
	q2 := mkQuery(b2)
	s2 := NewWithOptions(Options{SharedCache: shared})
	model2, sat, err := s2.Model(q2)
	if err != nil || !sat {
		t.Fatalf("second solver: sat=%v err=%v", sat, err)
	}
	st2 := s2.Stats()
	if st2.SharedHits == 0 {
		t.Errorf("second solver stats: %+v, want a shared hit", st2)
	}
	if st2.SATCalls != 0 {
		t.Errorf("second solver ran %d SAT calls despite the shared verdict", st2.SATCalls)
	}
	// The cached model must satisfy the second builder's constraints.
	if !satisfies(model2, q2) {
		t.Errorf("shared model %v does not satisfy the query", model2)
	}
	if model1["x"] != model2["x"] {
		t.Errorf("models diverge: %v vs %v", model1, model2)
	}
}

// TestSharedCacheUnsat: unsat verdicts are shared too.
func TestSharedCacheUnsat(t *testing.T) {
	shared := NewSharedCache()
	mkQuery := func(b *expr.Builder) []*expr.Expr {
		x := b.Var("x", 8)
		return []*expr.Expr{
			b.Ult(x, b.Const(5, 8)),
			b.Ult(b.Const(10, 8), x),
		}
	}
	s1 := NewWithOptions(Options{SharedCache: shared})
	if sat, err := s1.Feasible(mkQuery(expr.NewBuilder())); err != nil || sat {
		t.Fatalf("sat=%v err=%v, want unsat", sat, err)
	}
	s2 := NewWithOptions(Options{SharedCache: shared})
	if sat, err := s2.Feasible(mkQuery(expr.NewBuilder())); err != nil || sat {
		t.Fatalf("second solver: sat=%v err=%v, want unsat", sat, err)
	}
	if st := s2.Stats(); st.SharedHits == 0 || st.SATCalls != 0 {
		t.Errorf("second solver stats: %+v, want shared hit and no SAT call", st)
	}
}

// TestSharedCacheModelUpgrade: a Feasible verdict (no model) does not
// starve a later Model call — the solver recomputes and upgrades the
// shared entry with a model.
func TestSharedCacheModelUpgrade(t *testing.T) {
	shared := NewSharedCache()
	mkQuery := func(b *expr.Builder) []*expr.Expr {
		x := b.Var("x", 12)
		return []*expr.Expr{b.Eq(b.Mul(x, x), b.Const(0x121, 12))}
	}
	s1 := NewWithOptions(Options{SharedCache: shared})
	if sat, err := s1.Feasible(mkQuery(expr.NewBuilder())); err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}

	b2 := expr.NewBuilder()
	q2 := mkQuery(b2)
	s2 := NewWithOptions(Options{SharedCache: shared})
	model, sat, err := s2.Model(q2)
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if !satisfies(model, q2) {
		t.Errorf("model %v does not satisfy the query", model)
	}

	// A third solver now gets the upgraded entry, model included.
	b3 := expr.NewBuilder()
	q3 := mkQuery(b3)
	s3 := NewWithOptions(Options{SharedCache: shared})
	model3, sat, err := s3.Model(q3)
	if err != nil || !sat {
		t.Fatalf("third solver: sat=%v err=%v", sat, err)
	}
	if st := s3.Stats(); st.SharedHits == 0 || st.SATCalls != 0 {
		t.Errorf("third solver stats: %+v, want shared model hit", st)
	}
	if !satisfies(model3, q3) {
		t.Errorf("shared model %v does not satisfy the query", model3)
	}
}

// TestSharedCacheConcurrent hammers one cache from many solvers on
// distinct builders; run under -race this is the scheduler's memory
// model in miniature.
func TestSharedCacheConcurrent(t *testing.T) {
	shared := NewSharedCache()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := expr.NewBuilder()
			s := NewWithOptions(Options{SharedCache: shared})
			for i := 0; i < 40; i++ {
				x := b.Var(fmt.Sprintf("v%d", i%7), 16)
				q := []*expr.Expr{
					b.Eq(b.Mul(x, x), b.Const(uint64((i%7)*(i%7)), 16)),
					b.Ult(x, b.Const(200, 16)),
				}
				model, sat, err := s.Model(q)
				if err != nil {
					errs <- fmt.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				if !sat {
					errs <- fmt.Errorf("worker %d query %d: unexpectedly unsat", w, i)
					return
				}
				if !satisfies(model, q) {
					errs <- fmt.Errorf("worker %d query %d: bad model %v", w, i, model)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := shared.Stats()
	if st.Lookups == 0 || st.Stores == 0 {
		t.Errorf("cache never used: %+v", st)
	}
	if st.Entries > st.Stores {
		t.Errorf("entries %d exceed stores %d", st.Entries, st.Stores)
	}
}

// TestSharedCacheDisabledByDefault: a solver without the option never
// touches a shared cache and reports no shared hits.
func TestSharedCacheDisabledByDefault(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	s := New()
	if sat, err := s.Feasible([]*expr.Expr{b.Ult(x, b.Const(5, 8))}); err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if st := s.Stats(); st.SharedHits != 0 {
		t.Errorf("SharedHits = %d without a shared cache", st.SharedHits)
	}
}
