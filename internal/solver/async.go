package solver

import (
	"sync"
	"sync/atomic"

	"sde/internal/expr"
)

// SpecTask is a pending-verdict token for one speculative feasibility
// query (or query pair) submitted to a SpecPool. The submitter keeps
// executing; Wait blocks until a worker has produced the verdicts.
//
// A pair task decides prefix ∧ cond (the "true side") and, when needed,
// prefix ∧ notCond (the "false side"). The false side is answered by
// complement elision whenever the true side is UNSAT: the engine only
// consumes verdicts whose prefix was feasible (resolution happens in
// creation order, so every provisional constraint in the prefix has been
// confirmed by the time the verdict is read), and a feasible prefix whose
// every model falsifies cond must satisfy ¬cond. Elided verdicts are
// never cached — their validity depends on that resolution-order
// invariant, which caches outlive.
type SpecTask struct {
	prefix  []*expr.Expr
	cond    *expr.Expr
	notCond *expr.Expr // nil for single-query (assume) tasks

	canceled atomic.Bool
	done     chan struct{}

	// Verdicts; valid only after done is closed.
	satT, satF bool
	errT, errF error
	elided     bool
}

// Wait blocks until the task's verdicts are available.
func (t *SpecTask) Wait() { <-t.done }

// SatTrue reports the true-side verdict; call only after Wait.
func (t *SpecTask) SatTrue() (bool, error) { return t.satT, t.errT }

// SatFalse reports the false-side verdict; call only after Wait, and only
// on pair tasks whose true side was error-free.
func (t *SpecTask) SatFalse() (bool, error) { return t.satF, t.errF }

// Elided reports whether the false side was answered by complement
// elision rather than a solve; call only after Wait.
func (t *SpecTask) Elided() bool { return t.elided }

// Cancel marks the task abandoned: a worker that has not started it skips
// the solve entirely. The submitter must not Wait on a canceled task.
func (t *SpecTask) Cancel() { t.canceled.Store(true) }

// SpecPoolStats counts SpecPool activity. Reads are only consistent when
// the pool is quiescent.
type SpecPoolStats struct {
	Submitted    int64 // tasks submitted (a pair counts once)
	Pairs        int64 // two-sided branch tasks
	Assumes      int64 // single-query tasks
	Elided       int64 // false-side verdicts answered by complement elision
	Solves       int64 // feasibility queries actually issued by workers
	InflightPeak int64 // high-water mark of unresolved tasks
}

// SpecPool runs speculative feasibility queries on a pool of solver
// workers. Each worker owns a private incremental CDCL instance and blast
// context (a Solver slot); workers share only the Solver's striped exact
// cache, subsumption index, and model pool — there is no global solver
// mutex on this path.
//
// The task queue is a single shared LIFO stack: the deepest outstanding
// query — whose prefix subsumes every shallower one still queued — is
// solved first, so shallower queries resolve by SAT-superset subsumption
// instead of separate CDCL runs.
type SpecPool struct {
	s *Solver

	mu       sync.Mutex
	cond     *sync.Cond
	stack    []*SpecTask
	closed   bool
	inflight int64
	stats    SpecPoolStats

	wg      sync.WaitGroup
	workers int
}

// NewSpecPool starts workers goroutines, each with its own solver slot.
// workers < 1 is treated as 1.
func NewSpecPool(s *Solver, workers int) *SpecPool {
	if workers < 1 {
		workers = 1
	}
	p := &SpecPool{s: s, workers: workers}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		slot := s.NewWorkerSlot()
		p.wg.Add(1)
		go p.worker(slot)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *SpecPool) Workers() int { return p.workers }

// SubmitPair queues a two-sided branch speculation: decide
// prefix ∧ cond and (unless elided) prefix ∧ notCond. The prefix slice
// must not be mutated in place after submission; appending to a larger
// backing array is fine, which is exactly what path conditions do.
func (p *SpecPool) SubmitPair(prefix []*expr.Expr, cond, notCond *expr.Expr) *SpecTask {
	t := &SpecTask{prefix: prefix, cond: cond, notCond: notCond, done: make(chan struct{})}
	p.submit(t, true)
	return t
}

// SubmitOne queues a single-query speculation (an assume): decide
// prefix ∧ cond.
func (p *SpecPool) SubmitOne(prefix []*expr.Expr, cond *expr.Expr) *SpecTask {
	t := &SpecTask{prefix: prefix, cond: cond, done: make(chan struct{})}
	p.submit(t, false)
	return t
}

func (p *SpecPool) submit(t *SpecTask, pair bool) {
	p.mu.Lock()
	p.stack = append(p.stack, t)
	p.inflight++
	p.stats.Submitted++
	if pair {
		p.stats.Pairs++
	} else {
		p.stats.Assumes++
	}
	if p.inflight > p.stats.InflightPeak {
		p.stats.InflightPeak = p.inflight
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// Stats returns a snapshot of the pool's counters.
func (p *SpecPool) Stats() SpecPoolStats {
	p.mu.Lock()
	st := p.stats
	p.mu.Unlock()
	return st
}

// Close drains the queue and stops the workers. Safe to call twice.
func (p *SpecPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *SpecPool) worker(slot *SolverSlot) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.stack) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.stack) == 0 {
			p.mu.Unlock()
			return
		}
		t := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		p.mu.Unlock()
		p.run(slot, t)
	}
}

func (p *SpecPool) run(slot *SolverSlot, t *SpecTask) {
	var solves int64
	elided := false
	if !t.canceled.Load() {
		t.satT, t.errT = p.s.FeasibleOn(slot, t.prefix, t.cond)
		solves++
		if t.notCond != nil && t.errT == nil {
			if !t.satT {
				// Complement elision (see SpecTask): never cached.
				t.satF, t.elided = true, true
				elided = true
			} else if !t.canceled.Load() {
				t.satF, t.errF = p.s.FeasibleOn(slot, t.prefix, t.notCond)
				solves++
			}
		}
	}
	close(t.done)
	p.mu.Lock()
	p.inflight--
	p.stats.Solves += solves
	if elided {
		p.stats.Elided++
	}
	p.mu.Unlock()
}
