package solver

import (
	"fmt"
	"math/rand"
	"testing"

	"sde/internal/expr"
)

func TestPartitionGroups(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	z := b.Var("z", 8)
	s := New()
	cs := []*expr.Expr{
		b.Ult(x, b.Const(10, 8)), // component {x}
		b.Eq(y, z),               // component {y, z}
		b.Ult(b.Const(1, 8), x),  // joins {x}
		b.Ult(z, b.Const(5, 8)),  // joins {y, z}
	}
	comps := s.partition(cs)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1])}
	if !(sizes[0] == 2 && sizes[1] == 2) {
		t.Errorf("component sizes = %v, want [2 2]", sizes)
	}
}

func TestPartitionBridge(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	s := New()
	cs := []*expr.Expr{
		b.Ult(x, b.Const(10, 8)),
		b.Ult(y, b.Const(10, 8)),
		b.Eq(x, y), // bridges the two
	}
	if comps := s.partition(cs); len(comps) != 1 {
		t.Errorf("bridged set split into %d components", len(comps))
	}
}

func TestPartitionedModelsMerge(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	cs := []*expr.Expr{
		b.Eq(x, b.Const(42, 8)),
		b.Eq(y, b.Const(7, 8)),
	}
	model, sat, err := s.Model(cs)
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if model["x"] != 42 || model["y"] != 7 {
		t.Errorf("merged model = %v", model)
	}
	if s.Stats().Partitions == 0 {
		t.Error("independent query did not use partitioning")
	}
}

func TestPartitionedUnsatComponent(t *testing.T) {
	b := expr.NewBuilder()
	s := New()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	cs := []*expr.Expr{
		b.Eq(x, b.Const(1, 8)), // satisfiable component
		b.Ult(y, b.Const(3, 8)),
		b.Ult(b.Const(5, 8), y), // contradicts within {y}
	}
	sat, err := s.Feasible(cs)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("query with an UNSAT component reported SAT")
	}
}

// TestPartitionEquivalence: partitioning on and off must agree on random
// multi-component queries, and every SAT model must satisfy the whole set.
func TestPartitionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		b := expr.NewBuilder()
		nVars := 2 + rng.Intn(4)
		vars := make([]*expr.Expr, nVars)
		for i := range vars {
			vars[i] = b.Var(fmt.Sprintf("v%d", i), 5)
		}
		nCons := 1 + rng.Intn(6)
		cs := make([]*expr.Expr, 0, nCons)
		for i := 0; i < nCons; i++ {
			v := vars[rng.Intn(nVars)]
			c := b.Const(rng.Uint64(), 5)
			switch rng.Intn(4) {
			case 0:
				cs = append(cs, b.Eq(v, c))
			case 1:
				cs = append(cs, b.Ult(v, c))
			case 2:
				cs = append(cs, b.Ne(v, c))
			default:
				// Occasionally couple two variables.
				cs = append(cs, b.Ule(v, vars[rng.Intn(nVars)]))
			}
		}
		on := New()
		off := NewWithOptions(Options{DisablePartition: true})
		mOn, satOn, err := on.Model(cs)
		if err != nil {
			t.Fatal(err)
		}
		_, satOff, err := off.Model(cs)
		if err != nil {
			t.Fatal(err)
		}
		if satOn != satOff {
			t.Fatalf("trial %d: partitioned=%v, monolithic=%v", trial, satOn, satOff)
		}
		if satOn && !satisfies(mOn, cs) {
			t.Fatalf("trial %d: merged model %v does not satisfy the query", trial, mOn)
		}
	}
}

func BenchmarkPartitionedTestCaseQueries(b *testing.B) {
	// The shape of distributed test-case generation: a stream of queries
	// (one per dscenario) over k nodes whose per-node constraint
	// components repeat across queries with only one component varying.
	// Partitioning lets the cache answer the repeated components, so a
	// dscenario sweep costs one SAT call per *new* component instead of
	// one per query.
	const nodes = 10
	mk := func() (*expr.Builder, [][]*expr.Expr) {
		eb := expr.NewBuilder()
		perNode := make([][]*expr.Expr, nodes)
		for n := 0; n < nodes; n++ {
			x := eb.Var(fmt.Sprintf("x_n%d", n), 16)
			y := eb.Var(fmt.Sprintf("y_n%d", n), 16)
			perNode[n] = []*expr.Expr{
				eb.Ult(eb.Add(x, y), eb.Const(uint64(900+n), 16)),
				eb.Ult(eb.Const(uint64(n), 16), x),
			}
		}
		var queries [][]*expr.Expr
		for q := 0; q < 32; q++ {
			var cs []*expr.Expr
			for n := 0; n < nodes; n++ {
				cs = append(cs, perNode[n]...)
			}
			// One varying constraint makes each query distinct.
			v := eb.Var(fmt.Sprintf("x_n%d", q%nodes), 16)
			cs = append(cs, eb.Ne(v, eb.Const(uint64(100+q), 16)))
			queries = append(queries, cs)
		}
		return eb, queries
	}
	for _, disabled := range []bool{false, true} {
		name := "partitioned"
		if disabled {
			name = "monolithic"
		}
		b.Run(name, func(b *testing.B) {
			_, queries := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewWithOptions(Options{DisablePartition: disabled})
				for _, q := range queries {
					if _, sat, err := s.Model(q); err != nil || !sat {
						b.Fatal(sat, err)
					}
				}
			}
			b.StopTimer()
		})
	}
}

// TestPartitionFeasibleThenModel is a regression test: a Feasible call
// on a partitioned query used to cache a *partial* merged model (the
// literal-scan component contributes no bindings when no model is
// needed), and a later Model call returned it — an env whose
// missing-means-zero defaults can violate the literal constraints.
func TestPartitionFeasibleThenModel(t *testing.T) {
	b := expr.NewBuilder()
	d := b.Var("d", 1)
	x := b.Var("x", 8)
	q := []*expr.Expr{
		d,                       // literal component: requires d = 1, zero default violates it
		b.Ult(b.Const(4, 8), x), // arithmetic component
	}
	s := New()
	if sat, err := s.Feasible(q); err != nil || !sat {
		t.Fatalf("Feasible: sat=%v err=%v", sat, err)
	}
	model, sat, err := s.Model(q)
	if err != nil || !sat {
		t.Fatalf("Model: sat=%v err=%v", sat, err)
	}
	if !satisfies(model, q) {
		t.Fatalf("Model returned %v, which does not satisfy the query", model)
	}
}
