// Package solver decides satisfiability of bitvector constraint sets from
// package expr and produces concrete models (test cases).
//
// The pipeline is the classical one used by symbolic executors: expressions
// are bit-blasted to CNF (Tseitin encoding, ripple-carry adders, shift-add
// multipliers, restoring dividers, barrel shifters) and handed to an
// embedded CDCL SAT solver with two-literal watching, first-UIP clause
// learning, VSIDS branching, phase saving, and Luby restarts. A query cache
// and a counterexample (model reuse) cache sit in front, mirroring KLEE's
// solver stack at a small scale.
package solver

// Lit is a CNF literal: +v asserts variable v, -v asserts its negation.
// Variables are numbered starting at 1.
type Lit int32

// Neg returns the negated literal.
func (l Lit) Neg() Lit { return -l }

func (l Lit) v() int32 {
	if l < 0 {
		return int32(-l)
	}
	return int32(l)
}

// index maps a literal to a dense slice index (2v for +v, 2v+1 for -v).
func (l Lit) index() int32 {
	if l < 0 {
		return -int32(l)*2 + 1
	}
	return int32(l) * 2
}

const (
	valUnassigned int8 = 0
	valTrue       int8 = 1
	valFalse      int8 = -1
)

type clause struct {
	lits []Lit
}

type watcher struct {
	clauseIdx int32
	blocker   Lit // a literal whose truth makes the clause satisfied
}

// satSolver is a self-contained CDCL SAT solver instance. It supports two
// modes of use: one instance per query (solve), and MiniSat-style
// incremental solving (solveUnder), where one long-lived instance answers
// a stream of queries under changing assumption sets while keeping its
// learned clauses, variable activities, and saved phases alive between
// calls.
type satSolver struct {
	clauses []clause
	watches [][]watcher // indexed by Lit.index()

	assign  []int8  // per var: valTrue/valFalse/valUnassigned
	level   []int32 // per var: decision level of assignment
	reason  []int32 // per var: clause that implied it, or -1 for decisions
	phase   []int8  // per var: saved phase for decisions
	trail   []Lit
	trailAt []int32 // trail length at each decision level
	qhead   int

	activity []float64
	varInc   float64
	heap     varHeap

	seen []bool // scratch for conflict analysis

	conflicts int64
	decisions int64
	propags   int64
	learned   int64 // learned clauses (incl. units) recorded so far
	maxConfl  int64 // per-solve conflict budget, 0 = unlimited
}

func newSatSolver() *satSolver {
	s := &satSolver{varInc: 1.0}
	s.addVarsUpTo(0)
	return s
}

func (s *satSolver) numVars() int { return len(s.assign) - 1 }

// newVar allocates a fresh variable and returns its positive literal.
func (s *satSolver) newVar() Lit {
	v := int32(len(s.assign))
	s.addVarsUpTo(int(v))
	return Lit(v)
}

func (s *satSolver) addVarsUpTo(v int) {
	for len(s.assign) <= v {
		s.assign = append(s.assign, valUnassigned)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, -1)
		s.phase = append(s.phase, valFalse)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, false)
		s.watches = append(s.watches, nil, nil)
		if len(s.assign) > 1 {
			s.heap.push(int32(len(s.assign)-1), s.activity)
		}
	}
}

func (s *satSolver) litValue(l Lit) int8 {
	v := s.assign[l.v()]
	if l < 0 {
		return -v
	}
	return v
}

// addClause installs a problem clause. It returns false if the clause set
// is already trivially unsatisfiable (empty clause or conflicting units at
// level 0).
func (s *satSolver) addClause(lits ...Lit) bool {
	// Deduplicate and drop clauses with complementary literals.
	out := lits[:0:len(lits)]
	for _, l := range lits {
		dup := false
		for _, m := range out {
			if m == l {
				dup = true
				break
			}
			if m == -l {
				return true // tautology: a ∨ ¬a
			}
		}
		// Drop literals already false at level 0; clause satisfied if any
		// literal already true at level 0.
		if s.litValue(l) == valTrue && s.level[l.v()] == 0 {
			return true
		}
		if s.litValue(l) == valFalse && s.level[l.v()] == 0 {
			continue
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		return false
	case 1:
		if s.litValue(out[0]) == valFalse {
			return false
		}
		if s.litValue(out[0]) == valUnassigned {
			s.enqueue(out[0], -1)
		}
		return s.propagate() == -1
	}
	cl := clause{lits: append([]Lit(nil), out...)}
	idx := int32(len(s.clauses))
	s.clauses = append(s.clauses, cl)
	s.watch(cl.lits[0], idx, cl.lits[1])
	s.watch(cl.lits[1], idx, cl.lits[0])
	return true
}

func (s *satSolver) watch(l Lit, cl int32, blocker Lit) {
	i := l.index()
	s.watches[i] = append(s.watches[i], watcher{clauseIdx: cl, blocker: blocker})
}

func (s *satSolver) enqueue(l Lit, reason int32) {
	v := l.v()
	if l > 0 {
		s.assign[v] = valTrue
	} else {
		s.assign[v] = valFalse
	}
	s.level[v] = int32(len(s.trailAt))
	s.reason[v] = reason
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the index of a
// conflicting clause or -1 if no conflict arises.
func (s *satSolver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propags++
		// Clauses watching ¬p must be checked.
		wi := (-p).index()
		ws := s.watches[wi]
		kept := ws[:0]
		conflict := int32(-1)
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.litValue(w.blocker) == valTrue {
				kept = append(kept, w)
				continue
			}
			cl := &s.clauses[w.clauseIdx]
			lits := cl.lits
			// Normalise so lits[0] is the other watched literal.
			if lits[0] == -p {
				lits[0], lits[1] = lits[1], lits[0]
			}
			if s.litValue(lits[0]) == valTrue {
				kept = append(kept, watcher{clauseIdx: w.clauseIdx, blocker: lits[0]})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for j := 2; j < len(lits); j++ {
				if s.litValue(lits[j]) != valFalse {
					lits[1], lits[j] = lits[j], lits[1]
					s.watch(lits[1], w.clauseIdx, lits[0])
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, w)
			if s.litValue(lits[0]) == valFalse {
				// Conflict: keep remaining watchers and bail out.
				kept = append(kept, ws[i+1:]...)
				conflict = w.clauseIdx
				break
			}
			s.enqueue(lits[0], w.clauseIdx)
		}
		s.watches[wi] = kept
		if conflict >= 0 {
			s.qhead = len(s.trail)
			return conflict
		}
	}
	return -1
}

func (s *satSolver) decisionLevel() int32 { return int32(len(s.trailAt)) }

func (s *satSolver) newDecisionLevel() {
	s.trailAt = append(s.trailAt, int32(len(s.trail)))
}

func (s *satSolver) backtrackTo(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailAt[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		l := s.trail[i]
		v := l.v()
		s.phase[v] = s.assign[v]
		s.assign[v] = valUnassigned
		s.reason[v] = -1
		s.heap.pushIfAbsent(v, s.activity)
	}
	s.trail = s.trail[:bound]
	s.trailAt = s.trailAt[:lvl]
	s.qhead = len(s.trail)
}

func (s *satSolver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (asserting literal first) and the backjump level.
func (s *satSolver) analyze(conflIdx int32) ([]Lit, int32) {
	learned := []Lit{0} // placeholder for the asserting literal
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	cl := conflIdx
	for {
		lits := s.clauses[cl].lits
		for _, q := range lits {
			if q == p {
				continue
			}
			v := q.v()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] >= s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Select next literal from the trail to resolve on.
		for !s.seen[s.trail[idx].v()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.v()] = false
		counter--
		if counter == 0 {
			break
		}
		cl = s.reason[p.v()]
	}
	learned[0] = -p
	for _, l := range learned[1:] {
		s.seen[l.v()] = false
	}
	// Backjump level: highest level among the non-asserting literals.
	backLvl := int32(0)
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].v()] > s.level[learned[maxI].v()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		backLvl = s.level[learned[1].v()]
	}
	return learned, backLvl
}

func (s *satSolver) recordLearned(lits []Lit) {
	s.learned++
	if len(lits) == 1 {
		s.enqueue(lits[0], -1)
		return
	}
	cl := clause{lits: append([]Lit(nil), lits...)}
	idx := int32(len(s.clauses))
	s.clauses = append(s.clauses, cl)
	s.watch(cl.lits[0], idx, cl.lits[1])
	s.watch(cl.lits[1], idx, cl.lits[0])
	s.enqueue(cl.lits[0], idx)
}

func (s *satSolver) pickBranchVar() int32 {
	for {
		v, ok := s.heap.pop(s.activity)
		if !ok {
			return 0
		}
		if s.assign[v] == valUnassigned {
			return v
		}
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// solve runs the CDCL main loop without assumptions. It returns valTrue
// for SAT, valFalse for UNSAT, and valUnassigned if the conflict budget
// was exhausted.
func (s *satSolver) solve() int8 { return s.solveUnder(nil) }

// solveUnder runs the CDCL main loop under a set of assumption literals,
// MiniSat-style: assumptions are pushed as pseudo-decisions at levels
// 1..len(assumptions), so restarts and backjumps re-install them
// automatically, and every clause learned along the way is implied by the
// problem clauses alone — it stays valid for later calls with different
// assumptions. The instance remains usable after any outcome; on valTrue
// the caller reads the model off the assignment and then backtracks to
// level 0.
//
// It returns valTrue for SAT under the assumptions, valFalse for UNSAT
// under them (or globally), and valUnassigned when the per-call conflict
// budget (maxConfl, measured relative to the call's start) is exhausted.
func (s *satSolver) solveUnder(assumptions []Lit) int8 {
	s.backtrackTo(0)
	startConfl := s.conflicts
	if s.propagate() >= 0 {
		return valFalse
	}
	restartUnit := int64(100)
	restartNo := int64(1)
	budget := restartUnit * luby(restartNo)
	conflictsAtRestart := int64(0)
	for {
		confl := s.propagate()
		if confl >= 0 {
			s.conflicts++
			conflictsAtRestart++
			if s.decisionLevel() == 0 {
				return valFalse
			}
			learned, backLvl := s.analyze(confl)
			s.backtrackTo(backLvl)
			s.recordLearned(learned)
			s.varInc /= 0.95
			if s.maxConfl > 0 && s.conflicts-startConfl >= s.maxConfl {
				return valUnassigned
			}
			continue
		}
		if conflictsAtRestart >= budget {
			conflictsAtRestart = 0
			restartNo++
			budget = restartUnit * luby(restartNo)
			s.backtrackTo(0)
			continue
		}
		if lvl := int(s.decisionLevel()); lvl < len(assumptions) {
			a := assumptions[lvl]
			switch s.litValue(a) {
			case valTrue:
				// Already implied: open an empty decision level to keep
				// the level <-> assumption-index alignment.
				s.newDecisionLevel()
			case valFalse:
				// The clause database (plus earlier assumptions) forces
				// ¬a: the query is UNSAT under the assumptions, though
				// the instance itself may well stay satisfiable.
				return valFalse
			default:
				s.decisions++
				s.newDecisionLevel()
				s.enqueue(a, -1)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return valTrue // all variables assigned
		}
		s.decisions++
		s.newDecisionLevel()
		if s.phase[v] == valTrue {
			s.enqueue(Lit(v), -1)
		} else {
			s.enqueue(-Lit(v), -1)
		}
	}
}

// varHeap is a max-heap of variables ordered by activity, with lazy
// deletion (popped variables may be re-pushed on backtrack).
type varHeap struct {
	data []int32
	pos  map[int32]int
}

func (h *varHeap) init() {
	if h.pos == nil {
		h.pos = make(map[int32]int)
	}
}

func (h *varHeap) less(i, j int, act []float64) bool {
	return act[h.data[i]] > act[h.data[j]]
}

func (h *varHeap) swap(i, j int) {
	h.data[i], h.data[j] = h.data[j], h.data[i]
	h.pos[h.data[i]] = i
	h.pos[h.data[j]] = j
}

func (h *varHeap) up(i int, act []float64) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent, act) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int, act []float64) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.data) && h.less(l, best, act) {
			best = l
		}
		if r < len(h.data) && h.less(r, best, act) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) push(v int32, act []float64) {
	h.init()
	h.data = append(h.data, v)
	h.pos[v] = len(h.data) - 1
	h.up(len(h.data)-1, act)
}

func (h *varHeap) pushIfAbsent(v int32, act []float64) {
	h.init()
	if _, ok := h.pos[v]; ok {
		return
	}
	h.push(v, act)
}

func (h *varHeap) pop(act []float64) (int32, bool) {
	if len(h.data) == 0 {
		return 0, false
	}
	v := h.data[0]
	last := len(h.data) - 1
	h.swap(0, last)
	h.data = h.data[:last]
	delete(h.pos, v)
	if last > 0 {
		h.down(0, act)
	}
	return v, true
}

func (h *varHeap) update(v int32, act []float64) {
	if i, ok := h.pos[v]; ok {
		h.up(i, act)
	}
}
