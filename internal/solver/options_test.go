package solver

import (
	"testing"

	"sde/internal/expr"
)

// TestOptionsPreserveAnswers: every ablation configuration must return
// the same verdicts, only with different work profiles.
func TestOptionsPreserveAnswers(t *testing.T) {
	configs := []Options{
		{},
		{DisableCache: true},
		{DisablePool: true},
		{DisableFastPath: true},
		{DisableCache: true, DisablePool: true, DisableFastPath: true},
	}
	b := expr.NewBuilder()
	x := b.Var("x", 16)
	d := b.Var("d", 1)
	queries := [][]*expr.Expr{
		{b.Ult(x, b.Const(5, 16))},
		{b.Ult(x, b.Const(5, 16)), b.Ult(b.Const(10, 16), x)}, // UNSAT
		{d},
		{d, b.Not(d)}, // UNSAT
		{b.Eq(b.Mul(x, x), b.Const(49, 16))},
		{b.Ult(x, b.Const(5, 16))}, // repeat: exercises the cache
	}
	want := []bool{true, false, true, false, true, true}
	for _, opts := range configs {
		s := NewWithOptions(opts)
		for i, q := range queries {
			got, err := s.Feasible(q)
			if err != nil {
				t.Fatalf("opts %+v query %d: %v", opts, i, err)
			}
			if got != want[i] {
				t.Errorf("opts %+v query %d: got %v, want %v", opts, i, got, want[i])
			}
		}
	}
}

func TestDisableFastPathStillCounts(t *testing.T) {
	b := expr.NewBuilder()
	d := b.Var("d", 1)
	s := NewWithOptions(Options{DisableFastPath: true, DisableCache: true, DisablePool: true})
	if ok, err := s.Feasible([]*expr.Expr{d}); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	st := s.Stats()
	if st.FastPath != 0 {
		t.Errorf("FastPath = %d with fast path disabled", st.FastPath)
	}
	if st.SATCalls != 1 {
		t.Errorf("SATCalls = %d, want 1", st.SATCalls)
	}
}

func TestDisableCacheRecomputes(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	q := []*expr.Expr{b.Ult(x, b.Const(5, 8))}
	s := NewWithOptions(Options{DisableCache: true, DisablePool: true})
	for i := 0; i < 3; i++ {
		if ok, err := s.Feasible(q); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
	st := s.Stats()
	if st.CacheHits != 0 {
		t.Errorf("CacheHits = %d with cache disabled", st.CacheHits)
	}
	if st.SATCalls != 3 {
		t.Errorf("SATCalls = %d, want 3 (no reuse)", st.SATCalls)
	}
}

func TestMaxConflictsViaOptions(t *testing.T) {
	b := expr.NewBuilder()
	// A hard query: two 24-bit multiplications forced equal with
	// conflicting range constraints; tiny conflict budget must error.
	x := b.Var("x", 24)
	y := b.Var("y", 24)
	q := []*expr.Expr{
		b.Eq(b.Mul(x, y), b.Const(0x7fffd, 24)),
		b.Ult(x, y),
	}
	s := NewWithOptions(Options{MaxConflicts: 1, DisableCache: true, DisablePool: true})
	_, err := s.Feasible(q)
	if err == nil {
		t.Skip("query solved within one conflict; budget untestable here")
	}
	if err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}
