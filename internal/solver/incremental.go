package solver

import "sde/internal/expr"

// incContext is the persistent incremental solving context: one long-lived
// satSolver + blaster pair shared by every SAT-core query of an
// exploration. Each expression DAG node is Tseitin-encoded once per
// exploration rather than once per query, and learned clauses, variable
// activities, and saved phases survive between queries.
//
// Path constraints are never asserted as unit clauses on this instance —
// each constraint is encoded once and its output literal is passed to
// solveUnder as an assumption, which keeps the instance reusable for any
// constraint subset. Because the instance only ever contains gate
// definitions (satisfiable by construction) and clauses learned from
// them, a valFalse answer always means "UNSAT under the assumptions",
// never a poisoned instance.
type incContext struct {
	sat       *satSolver
	bl        *blaster
	gatesSeen int64 // blaster gate count already flushed into Stats.Gates
}

// Session pins a monotonically growing path condition (a VM state's
// pathCond) to the solver's persistent incremental context. It caches the
// assumption literal of each prefix constraint, so a prefix-extension
// query costs one encode (of the new constraint) instead of a walk over
// the whole prefix. Forking a state is a cheap session branch: the child
// copies the cached literals and diverges independently.
//
// A Session is owned by one execution state and must not be used from
// multiple goroutines at once; distinct Sessions of the same Solver may
// be used concurrently (the Solver serialises access to the underlying
// instance).
type Session struct {
	exprs []*expr.Expr // the synced prefix, for append-only validation
	lits  []Lit        // assumption literal of each synced constraint
}

// NewSession returns a session handle for prefix-extension queries
// (FeasibleWith/ModelWith), or nil when incremental solving is disabled.
// A nil Session is valid everywhere and falls back to stateless solving.
func (s *Solver) NewSession() *Session {
	if s.opts.DisableIncremental {
		return nil
	}
	return &Session{}
}

// Branch returns an independent copy of the session for a forked state.
// Branching a nil session returns nil.
func (sess *Session) Branch() *Session {
	if sess == nil {
		return nil
	}
	return &Session{
		exprs: append([]*expr.Expr(nil), sess.exprs...),
		lits:  append([]Lit(nil), sess.lits...),
	}
}

// sync extends the session's cached assumption literals to cover prefix.
// It returns how many cached literals were reused and how many of the
// newly encoded constraints were already in the persistent blast memo.
// Path conditions are append-only, so the common case is a pure
// extension; if the prefix diverged anyway, the session resyncs from the
// divergence point — correct, just slower.
//
// rw, when non-nil, maps each constraint to an equivalent (rewritten)
// form before encoding: the session's assumption literal then asserts
// the rewritten constraint, so the persistent blast context only ever
// sees post-rewrite gates. sess.exprs still records the original
// constraints — prefix identity, not encoding, drives resync.
func (sess *Session) sync(ic *incContext, prefix []*expr.Expr, rw func(*expr.Expr) *expr.Expr) (reused, skips int64) {
	n := len(sess.lits)
	if n > len(prefix) {
		n = 0
	}
	for i := 0; i < n; i++ {
		if sess.exprs[i] != prefix[i] {
			n = i
			break
		}
	}
	sess.exprs = sess.exprs[:n]
	sess.lits = sess.lits[:n]
	reused = int64(n)
	for _, c := range prefix[n:] {
		ec := c
		if rw != nil {
			ec = rw(c)
		}
		if _, ok := ic.bl.memo[ec]; ok {
			skips++
		}
		sess.exprs = append(sess.exprs, c)
		sess.lits = append(sess.lits, ic.bl.encode(ec)[0])
	}
	return reused, skips
}

// solveIncremental decides active (the constant-folded form of
// prefix ∧ extra) on the persistent instance of qc's slot. All encoding
// happens at decision level 0 — the instance is backtracked before any
// blasting — so new gate clauses and their unit consequences are
// installed as permanent level-0 facts.
//
// Each slot owns a private CDCL instance and blast memo, so concurrent
// solves on distinct slots never contend here; a session is only ever
// pinned to slot 0 (the interpreter thread).
func (s *Solver) solveIncremental(qc queryCtx, sess *Session, prefix []*expr.Expr, extra *expr.Expr, active []*expr.Expr) (bool, expr.Env, error) {
	slot := qc.slot
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.ic == nil {
		sat := newSatSolver()
		slot.ic = &incContext{sat: sat, bl: newBlaster(sat)}
	}
	ic := slot.ic
	ic.sat.maxConfl = s.opts.MaxConflicts
	ic.sat.backtrackTo(0)

	// Speculation workers bypass the rewrite hook along with the rest of
	// the optimizer: its memo tables are not built for concurrent access.
	rw := s.rewriteFn()
	if qc.skipOpt {
		rw = nil
	}
	var assumptions []Lit
	var reused, skips int64
	memoed := func(c *expr.Expr) {
		if _, ok := ic.bl.memo[c]; ok {
			skips++
		}
	}
	if sess != nil {
		reused, skips = sess.sync(ic, prefix, rw)
		assumptions = make([]Lit, 0, len(sess.lits)+1)
		assumptions = append(assumptions, sess.lits...)
		if extra != nil && !extra.IsTrue() {
			ec := extra
			if rw != nil {
				ec = rw(ec)
			}
			memoed(ec)
			assumptions = append(assumptions, ic.bl.encode(ec)[0])
		}
	} else {
		// Sessionless queries receive active already optimized (the
		// checkQuery pipeline runs before the solve); rw here is a no-op
		// on already-rewritten constraints via the rewrite memo.
		assumptions = make([]Lit, 0, len(active))
		for _, c := range active {
			memoed(c)
			assumptions = append(assumptions, ic.bl.encode(c)[0])
		}
	}

	confl0, dec0 := ic.sat.conflicts, ic.sat.decisions
	res := ic.sat.solveUnder(assumptions)
	mainSlot := slot == &s.slot0
	s.bumpStat(func(st *Stats) {
		st.Conflicts += ic.sat.conflicts - confl0
		st.Decisions += ic.sat.decisions - dec0
		st.Gates += ic.bl.gates - ic.gatesSeen
		st.AssumeReuses += reused
		st.EncodeSkips += skips
		if mainSlot {
			st.LearnedRetained = ic.sat.learned
		}
	})
	ic.gatesSeen = ic.bl.gates

	switch res {
	case valFalse:
		ic.sat.backtrackTo(0)
		return false, nil, nil
	case valUnassigned:
		ic.sat.backtrackTo(0)
		return false, nil, ErrBudget
	}
	// SAT: read back a model for exactly the query's variables before
	// releasing the trail. Variables outside the query stay don't-cares,
	// matching from-scratch solving (missing entries default to 0).
	var qvars []*expr.Expr
	for _, c := range active {
		qvars = expr.CollectVars(c, qvars)
	}
	model := make(expr.Env, len(qvars))
	for _, v := range qvars {
		var val uint64
		for i, l := range ic.bl.vars[v] {
			if ic.sat.litValue(l) == valTrue {
				val |= uint64(1) << uint(i)
			}
		}
		model[v.VarName()] = val
	}
	ic.sat.backtrackTo(0)
	return true, model, nil
}
