package solver

import (
	"testing"

	"sde/internal/expr"
	"sde/internal/qopt"
)

// optimizedOptions returns solver options with the query optimizer
// attached, plus the optimizer itself for counter checks.
func optimizedOptions(eb *expr.Builder) (Options, *qopt.Optimizer) {
	o := qopt.New(eb)
	return Options{Optimizer: o}, o
}

// TestOptimizerFeasibilityAgreement replays the runicast query stream on
// an optimized and an unoptimized solver and requires identical verdicts
// on every query — the per-query form of the whole-run soundness test.
func TestOptimizerFeasibilityAgreement(t *testing.T) {
	ebA := expr.NewBuilder()
	ebB := expr.NewBuilder()
	optsA, _ := optimizedOptions(ebA)
	sa := NewWithOptions(optsA)
	sb := NewWithOptions(Options{})
	qa := RunicastPrefixQueries(ebA, 3, 6)
	qb := RunicastPrefixQueries(ebB, 3, 6)
	sessA, sessB := sa.NewSession(), sb.NewSession()
	for i := range qa {
		gotA, err := sa.FeasibleWith(sessA, qa[i].Prefix, qa[i].Extra)
		if err != nil {
			t.Fatalf("query %d (optimized): %v", i, err)
		}
		gotB, err := sb.FeasibleWith(sessB, qb[i].Prefix, qb[i].Extra)
		if err != nil {
			t.Fatalf("query %d (baseline): %v", i, err)
		}
		if gotA != gotB {
			t.Fatalf("query %d: optimized=%v baseline=%v", i, gotA, gotB)
		}
	}
	st := sa.Stats()
	if st.SlicedQueries == 0 {
		t.Error("no queries were sliced on the runicast stream")
	}
	if st.RewriteHits == 0 {
		t.Error("no constraints were rewritten on the runicast stream")
	}
	if st.GatesElided == 0 {
		t.Error("no elided encoding work was recorded")
	}
	if base := sb.Stats(); st.Gates >= base.Gates {
		t.Errorf("optimized run allocated %d gates, baseline %d — expected fewer",
			st.Gates, base.Gates)
	}
}

// TestWarmSessionEncodesRewritten pins the resume contract: re-warming a
// session encodes the rewritten constraints into the persistent blast
// context, never the originals — a resumed run's instance is built
// exactly like the killed run's.
func TestWarmSessionEncodesRewritten(t *testing.T) {
	eb := expr.NewBuilder()
	opts, o := optimizedOptions(eb)
	s := NewWithOptions(opts)

	x := eb.Var("x", 12)
	orig := eb.Ult(eb.Mul(x, eb.Const(8, 12)), eb.Const(100, 12))
	rewritten := o.Rewrite(orig)
	if rewritten == orig {
		t.Fatal("workload constraint unexpectedly not rewritable")
	}

	sess := s.NewSession()
	s.WarmSession(sess, []*expr.Expr{orig})

	s.slot0.mu.Lock()
	memo := s.slot0.ic.bl.memo
	_, hasRewritten := memo[rewritten]
	_, hasOrig := memo[orig]
	s.slot0.mu.Unlock()
	if !hasRewritten {
		t.Error("re-warm did not encode the rewritten constraint")
	}
	if hasOrig {
		t.Error("re-warm encoded the original (unrewritten) constraint")
	}
	if st := s.Stats(); st.RewarmSessions != 1 {
		t.Errorf("RewarmSessions = %d, want 1", st.RewarmSessions)
	}

	// The warmed literal must actually decide follow-up queries: the
	// session path reuses it as an assumption.
	ok, err := s.FeasibleWith(sess, []*expr.Expr{orig}, eb.Ult(x, eb.Const(5, 12)))
	if err != nil || !ok {
		t.Fatalf("warmed session query: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.AssumeReuses == 0 {
		t.Error("warmed assumption literal was not reused")
	}
}

// TestWarmSessionGateReduction compares re-warm encoding cost with the
// optimizer on and off on the same prefix: the rewritten constraints must
// produce at least 2x fewer Tseitin gates (the restoring-division loops
// behind the modulo-window terms become mask wiring).
func TestWarmSessionGateReduction(t *testing.T) {
	warmGates := func(withOpt bool) int64 {
		eb := expr.NewBuilder()
		var opts Options
		if withOpt {
			opts, _ = optimizedOptions(eb)
		}
		s := NewWithOptions(opts)
		x := eb.Var("x", 12)
		var prefix []*expr.Expr
		for i := 0; i < 6; i++ {
			prefix = append(prefix,
				eb.Ult(eb.URem(eb.Add(x, eb.Const(uint64(i+1), 12)), eb.Const(32, 12)),
					eb.Const(31, 12)))
		}
		s.WarmSession(s.NewSession(), prefix)
		return s.Stats().Gates
	}
	with, without := warmGates(true), warmGates(false)
	if with*2 > without {
		t.Errorf("optimized re-warm allocated %d gates, baseline %d — want at least 2x fewer", with, without)
	}
}

// TestModelQueriesUnaffectedByOptimizer requires the models of needModel
// queries to be bit-identical with the optimizer on and off — the
// property that makes optimized runs emit identical test cases.
func TestModelQueriesUnaffectedByOptimizer(t *testing.T) {
	run := func(withOpt bool) []expr.Env {
		eb := expr.NewBuilder()
		var opts Options
		if withOpt {
			opts, _ = optimizedOptions(eb)
		}
		s := NewWithOptions(opts)
		queries := RunicastPrefixQueries(eb, 2, 5)
		sess := s.NewSession()
		var models []expr.Env
		for i, q := range queries {
			if _, err := s.FeasibleWith(sess, q.Prefix, q.Extra); err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			// Interleave model queries the way assert/test-case
			// generation does.
			if i%3 == 0 {
				model, ok, err := s.ModelWith(sess, q.Prefix, q.Extra)
				if err != nil {
					t.Fatalf("model query %d: %v", i, err)
				}
				if ok {
					models = append(models, model)
				}
			}
		}
		return models
	}
	with, without := run(true), run(false)
	if len(with) != len(without) {
		t.Fatalf("model count diverged: %d with optimizer, %d without", len(with), len(without))
	}
	for i := range with {
		if len(with[i]) != len(without[i]) {
			t.Fatalf("model %d: variable sets diverge: %v vs %v", i, with[i], without[i])
		}
		for name, v := range without[i] {
			if with[i][name] != v {
				t.Fatalf("model %d: %s = %d with optimizer, %d without",
					i, name, with[i][name], v)
			}
		}
	}
}

// TestOptimizerUnsatShortCircuit: cross-constraint substitution exposing
// a contradiction must answer UNSAT without a SAT call.
func TestOptimizerUnsatShortCircuit(t *testing.T) {
	eb := expr.NewBuilder()
	opts, _ := optimizedOptions(eb)
	s := NewWithOptions(opts)
	x := eb.Var("x", 8)
	prefix := []*expr.Expr{eb.Eq(x, eb.Const(3, 8))}
	ok, err := s.FeasibleWith(nil, prefix, eb.Ult(x, eb.Const(2, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("x==3 ∧ x<2 reported feasible")
	}
	if st := s.Stats(); st.SATCalls != 0 {
		t.Errorf("UNSAT-by-rewriting still made %d SAT calls", st.SATCalls)
	}
}
