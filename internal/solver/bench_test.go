package solver

import (
	"fmt"
	"testing"

	"sde/internal/expr"
	"sde/internal/qopt"
)

// branchQueries builds the query stream a symbolic executor generates: a
// growing path condition re-checked with one new condition at a time.
func branchQueries(b *expr.Builder, depth int) [][]*expr.Expr {
	x := b.Var("x", 32)
	var pc []*expr.Expr
	var queries [][]*expr.Expr
	for i := 0; i < depth; i++ {
		c := b.Ult(x, b.Const(uint64(1000-i), 32))
		queries = append(queries, append(append([]*expr.Expr{}, pc...), c))
		pc = append(pc, c)
	}
	return queries
}

func BenchmarkBranchFeasibility(b *testing.B) {
	for _, opts := range []struct {
		name string
		o    Options
	}{
		{"full", Options{}},
		{"noCache", Options{DisableCache: true}},
		{"noPool", Options{DisablePool: true}},
		{"noCacheNoPool", Options{DisableCache: true, DisablePool: true}},
	} {
		opts := opts
		b.Run(opts.name, func(b *testing.B) {
			eb := expr.NewBuilder()
			queries := branchQueries(eb, 24)
			s := NewWithOptions(opts.o)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if ok, err := s.Feasible(q); err != nil || !ok {
						b.Fatalf("query failed: ok=%v err=%v", ok, err)
					}
				}
			}
			b.StopTimer()
			st := s.Stats()
			b.ReportMetric(float64(st.SATCalls)/float64(b.N), "satcalls/op")
		})
	}
}

// BenchmarkLiteralScan measures the drop-decision fast path that dominates
// sensornet scenarios, against the full SAT pipeline.
func BenchmarkLiteralScan(b *testing.B) {
	for _, fast := range []bool{true, false} {
		name := "fastpath"
		if !fast {
			name = "satcore"
		}
		b.Run(name, func(b *testing.B) {
			eb := expr.NewBuilder()
			var cs []*expr.Expr
			for i := 0; i < 12; i++ {
				v := eb.Var(fmt.Sprintf("drop_%d", i), 1)
				if i%2 == 0 {
					cs = append(cs, v)
				} else {
					cs = append(cs, eb.Not(v))
				}
			}
			s := NewWithOptions(Options{
				DisableFastPath: !fast,
				DisableCache:    true, // isolate per-query cost
				DisablePool:     true,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ok, err := s.Feasible(cs); err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
	}
}

func BenchmarkBitBlastMul(b *testing.B) {
	for _, width := range []int{8, 16, 32} {
		width := width
		b.Run(fmt.Sprintf("w%d", width), func(b *testing.B) {
			eb := expr.NewBuilder()
			x := eb.Var("x", width)
			y := eb.Var("y", width)
			q := []*expr.Expr{eb.Eq(eb.Mul(x, y), eb.Const(143, width))}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewWithOptions(Options{DisableCache: true, DisablePool: true})
				if ok, err := s.Feasible(q); err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
	}
}

// BenchmarkPrefixExtension is the tentpole's acceptance benchmark: the
// shared prefix-extension workload (see PrefixExtensionQueries) replayed
// on the persistent incremental instance versus from-scratch solving.
// Every other pipeline layer is disabled in both modes so the comparison
// isolates assumption-based solving + the persistent blast context.
func BenchmarkPrefixExtension(b *testing.B) {
	base := Options{
		DisableCache:       true,
		DisablePool:        true,
		DisableFastPath:    true,
		DisablePartition:   true,
		DisableSubsumption: true,
	}
	for _, mode := range []struct {
		name        string
		fromScratch bool
	}{
		{"incremental", false},
		{"fromscratch", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			eb := expr.NewBuilder()
			queries := PrefixExtensionQueries(eb, 24)
			opts := base
			opts.DisableIncremental = mode.fromScratch
			var last Stats
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewWithOptions(opts)
				sess := s.NewSession()
				for j, q := range queries {
					if _, err := s.FeasibleWith(sess, q.Prefix, q.Extra); err != nil {
						b.Fatalf("query %d: %v", j, err)
					}
				}
				last = s.Stats()
			}
			b.StopTimer()
			b.ReportMetric(float64(last.SATCalls), "satcalls/op")
			b.ReportMetric(float64(last.Conflicts), "conflicts/op")
			b.ReportMetric(float64(last.Gates), "gates/op")
		})
	}
}

func BenchmarkModelGeneration(b *testing.B) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 32)
	y := eb.Var("y", 32)
	q := []*expr.Expr{
		eb.Eq(eb.Add(x, y), eb.Const(1000, 32)),
		eb.Ult(x, y),
		eb.Ult(eb.Const(10, 32), x),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewWithOptions(Options{DisableCache: true, DisablePool: true})
		model, ok, err := s.Model(q)
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
		if (model["x"]+model["y"])&0xffffffff != 1000 {
			b.Fatalf("bad model: %v", model)
		}
	}
}

// BenchmarkQueryOptimizer is the query-optimization pipeline's acceptance
// benchmark: the runicast prefix stream (see RunicastPrefixQueries)
// replayed with the full optimizer, with one stage ablated at a time, and
// with the optimizer off. The caching layers are disabled in every mode
// so the comparison isolates what the optimizer saves per encoded query.
func BenchmarkQueryOptimizer(b *testing.B) {
	base := Options{
		DisableCache:       true,
		DisablePool:        true,
		DisableFastPath:    true,
		DisablePartition:   true,
		DisableSubsumption: true,
	}
	for _, mode := range []struct {
		name      string
		optimized bool
		mutate    func(*Options)
	}{
		{"optimized", true, nil},
		{"no-slicing", true, func(o *Options) { o.DisableSlicing = true }},
		{"no-rewrite", true, func(o *Options) { o.DisableRewrite = true }},
		{"unoptimized", false, nil},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			eb := expr.NewBuilder()
			queries := RunicastPrefixQueries(eb, 4, 8)
			var last Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := base
				if mode.optimized {
					opts.Optimizer = qopt.New(eb)
				}
				if mode.mutate != nil {
					mode.mutate(&opts)
				}
				s := NewWithOptions(opts)
				sess := s.NewSession()
				for j, q := range queries {
					if _, err := s.FeasibleWith(sess, q.Prefix, q.Extra); err != nil {
						b.Fatalf("query %d: %v", j, err)
					}
				}
				last = s.Stats()
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Gates), "gates/op")
			b.ReportMetric(float64(last.SATCalls), "satcalls/op")
			b.ReportMetric(float64(last.SlicedQueries), "sliced/op")
			b.ReportMetric(float64(last.GatesElided), "gateselided/op")
		})
	}
}
