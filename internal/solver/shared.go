package solver

import (
	"sync"
	"sync/atomic"

	"sde/internal/expr"
)

// SharedCache is a concurrent query-result store shared by several
// Solvers — the cross-shard constraint cache of the parallel SDE
// extension. Shards run on independent engines with independent
// expr.Builders, but expression hashes are purely structural (see
// expr.Builder), so a query key computed in one shard identifies the
// same constraint set in every other shard; pin-independent components
// of the shards' path conditions recur across the whole fleet and are
// decided once.
//
// The cache is striped: the well-mixed query key selects one of 64
// independently locked segments, so concurrent shards rarely contend on
// the same mutex. Entries are never evicted — a run's distinct query
// population is bounded by its constraint structure, and the entries
// (hash slices plus small models) are cheap relative to the states that
// produced them.
//
// Cached models are aliased by every shard that hits them and must be
// treated as read-only, like the models returned by Solver itself.
type SharedCache struct {
	stripes [sharedStripes]sharedStripe

	lookups atomic.Int64
	hits    atomic.Int64
	stores  atomic.Int64
}

// sharedStripes must be a power of two (the stripe index is a mask of
// the query key).
const sharedStripes = 64

type sharedStripe struct {
	mu sync.RWMutex
	m  map[uint64]cacheEntry
}

// NewSharedCache returns an empty cache ready for concurrent use.
func NewSharedCache() *SharedCache {
	c := &SharedCache{}
	for i := range c.stripes {
		c.stripes[i].m = make(map[uint64]cacheEntry, 64)
	}
	return c
}

// SharedCacheStats is a snapshot of the cache's activity counters.
type SharedCacheStats struct {
	Lookups int64 // queries that consulted the cache
	Hits    int64 // lookups answered from the cache
	Stores  int64 // entries inserted (or upgraded with a model)
	Entries int64 // current number of cached verdicts
}

// Stats returns a snapshot of the activity counters. Lookups, Hits, and
// Stores are monotone; Entries is the current population.
func (c *SharedCache) Stats() SharedCacheStats {
	s := SharedCacheStats{
		Lookups: c.lookups.Load(),
		Hits:    c.hits.Load(),
		Stores:  c.stores.Load(),
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.RLock()
		s.Entries += int64(len(st.m))
		st.mu.RUnlock()
	}
	return s
}

// HitRate returns the fraction of lookups answered from the cache.
func (c *SharedCache) HitRate() float64 {
	l := c.lookups.Load()
	if l == 0 {
		return 0
	}
	return float64(c.hits.Load()) / float64(l)
}

func (c *SharedCache) stripe(key uint64) *sharedStripe {
	return &c.stripes[key&(sharedStripes-1)]
}

// lookup returns the cached verdict for a query key. The sorted
// constraint hashes guard against key collisions, exactly as in the
// private per-solver cache.
func (c *SharedCache) lookup(key uint64, hashes []uint64) (cacheEntry, bool) {
	c.lookups.Add(1)
	st := c.stripe(key)
	st.mu.RLock()
	ent, ok := st.m[key]
	st.mu.RUnlock()
	if !ok || !hashesEqual(ent.hashes, hashes) {
		return cacheEntry{}, false
	}
	c.hits.Add(1)
	return ent, true
}

// store publishes a verdict. The hashes and model are copied so the
// cache shares no mutable structure with the storing solver. An existing
// entry is only replaced to attach a model to a model-less sat verdict.
func (c *SharedCache) store(key uint64, hashes []uint64, sat bool, model expr.Env) {
	st := c.stripe(key)
	st.mu.Lock()
	if prev, ok := st.m[key]; ok && (!prev.sat || prev.model != nil || model == nil) {
		st.mu.Unlock()
		return
	}
	var mcopy expr.Env
	if model != nil {
		mcopy = make(expr.Env, len(model))
		for k, v := range model {
			mcopy[k] = v
		}
	}
	st.m[key] = cacheEntry{
		hashes: append([]uint64(nil), hashes...),
		sat:    sat,
		model:  mcopy,
	}
	st.mu.Unlock()
	c.stores.Add(1)
}
