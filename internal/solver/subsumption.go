package solver

import "sde/internal/expr"

// subsumptionIndex is a KLEE CexCache-style verdict store that answers
// queries by set reasoning over sorted, deduplicated constraint-hash
// sets instead of exact key equality:
//
//   - a stored UNSAT entry that is a *subset* of the query proves UNSAT
//     (adding constraints cannot make an unsatisfiable core satisfiable);
//   - a stored SAT entry that is a *superset* of the query proves SAT,
//     and its model — satisfying every constraint of the superset — is a
//     valid model for the query too.
//
// Entries are reached through two inverted indexes so a lookup touches
// only entries sharing a constraint with the query. The zero value is
// ready to use; the Solver guards it with its own mutex.
type subsumptionIndex struct {
	entries []subsEntry
	// unsatByMin indexes UNSAT entries under their smallest hash: a
	// subset of the query necessarily has its minimum element among the
	// query's hashes.
	unsatByMin map[uint64][]int32
	// satByHash indexes SAT entries under every member hash: a superset
	// of the query necessarily contains the query's first (smallest)
	// hash.
	satByHash map[uint64][]int32
	// seen dedupes entries by combined query key.
	seen map[uint64]struct{}
}

type subsEntry struct {
	hashes []uint64 // sorted, deduplicated constraint hashes
	sat    bool
	model  expr.Env // nil for UNSAT entries and model-less SAT verdicts
}

// lookup decides the query with hash set hs (sorted, deduplicated) by
// subsumption. When needModel is set, SAT entries without a model are
// skipped so the caller falls through to a model-producing layer.
func (x *subsumptionIndex) lookup(hs []uint64, needModel bool) (subsEntry, bool) {
	if len(x.entries) == 0 {
		return subsEntry{}, false
	}
	// UNSAT subsets: every candidate's minimum hash is one of ours.
	for _, h := range hs {
		for _, idx := range x.unsatByMin[h] {
			if isSubsetOf(x.entries[idx].hashes, hs) {
				return x.entries[idx], true
			}
		}
	}
	// SAT supersets: every candidate contains our smallest hash.
	for _, idx := range x.satByHash[hs[0]] {
		ent := x.entries[idx]
		if needModel && ent.model == nil {
			continue
		}
		if isSubsetOf(hs, ent.hashes) {
			return ent, true
		}
	}
	return subsEntry{}, false
}

// store records a decided query. Budget-exhausted (ErrBudget) verdicts
// must never reach here: an unknown stored as UNSAT would subsume — and
// wrongly refute — every extension of the query.
func (x *subsumptionIndex) store(key uint64, hs []uint64, sat bool, model expr.Env) {
	if x.seen == nil {
		x.unsatByMin = make(map[uint64][]int32)
		x.satByHash = make(map[uint64][]int32)
		x.seen = make(map[uint64]struct{})
	}
	if _, dup := x.seen[key]; dup {
		return
	}
	x.seen[key] = struct{}{}
	idx := int32(len(x.entries))
	x.entries = append(x.entries, subsEntry{hashes: hs, sat: sat, model: model})
	if sat {
		for _, h := range hs {
			x.satByHash[h] = append(x.satByHash[h], idx)
		}
	} else {
		x.unsatByMin[hs[0]] = append(x.unsatByMin[hs[0]], idx)
	}
}

// isSubsetOf reports a ⊆ b for sorted, deduplicated slices.
func isSubsetOf(a, b []uint64) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j >= len(b) || b[j] != v {
			return false
		}
		j++
	}
	return true
}
