package solver

import "sde/internal/expr"

// WarmSession syncs a freshly created session onto the persistent
// incremental instance, encoding the given path-condition prefix so later
// prefix-extension queries find their assumption literals cached.
//
// This is the resume half of the checkpoint subsystem's deliberate
// trade-off: solver state (SAT instance, blast memo, caches) is never
// serialized, because it is derived data — re-warming each restored
// state's session rebuilds it from the path conditions alone. The cost is
// recorded in Stats (RewarmSessions, RewarmEncodes) so the trade-off
// stays visible in benchmark output.
//
// A nil session (incremental solving disabled) is a no-op.
func (s *Solver) WarmSession(sess *Session, prefix []*expr.Expr) {
	if sess == nil || s.opts.DisableIncremental {
		return
	}
	// Sessions always live on slot 0, the interpreter thread's slot.
	s.slot0.mu.Lock()
	if s.slot0.ic == nil {
		sat := newSatSolver()
		s.slot0.ic = &incContext{sat: sat, bl: newBlaster(sat)}
	}
	ic := s.slot0.ic
	// Encoding must happen at decision level 0 so gate clauses become
	// permanent facts (same discipline as solveIncremental).
	ic.sat.backtrackTo(0)
	// Re-warming encodes through the same rewrite hook as live solving,
	// so a resumed run's blast context sees the rewritten constraints —
	// never the originals — exactly as the killed run's did.
	reused, skips := sess.sync(ic, prefix, s.rewriteFn())
	gates := ic.bl.gates - ic.gatesSeen
	ic.gatesSeen = ic.bl.gates
	s.slot0.mu.Unlock()

	s.bumpStat(func(st *Stats) {
		st.RewarmSessions++
		st.RewarmEncodes += int64(len(prefix)) - reused
		st.AssumeReuses += reused
		st.EncodeSkips += skips
		st.Gates += gates
	})
}
