package solver

import "sde/internal/expr"

// WarmSession syncs a freshly created session onto the persistent
// incremental instance, encoding the given path-condition prefix so later
// prefix-extension queries find their assumption literals cached.
//
// This is the resume half of the checkpoint subsystem's deliberate
// trade-off: solver state (SAT instance, blast memo, caches) is never
// serialized, because it is derived data — re-warming each restored
// state's session rebuilds it from the path conditions alone. The cost is
// recorded in Stats (RewarmSessions, RewarmEncodes) so the trade-off
// stays visible in benchmark output.
//
// A nil session (incremental solving disabled) is a no-op.
func (s *Solver) WarmSession(sess *Session, prefix []*expr.Expr) {
	if sess == nil || s.opts.DisableIncremental {
		return
	}
	s.incMu.Lock()
	if s.inc == nil {
		sat := newSatSolver()
		s.inc = &incContext{sat: sat, bl: newBlaster(sat)}
	}
	ic := s.inc
	// Encoding must happen at decision level 0 so gate clauses become
	// permanent facts (same discipline as solveIncremental).
	ic.sat.backtrackTo(0)
	// Re-warming encodes through the same rewrite hook as live solving,
	// so a resumed run's blast context sees the rewritten constraints —
	// never the originals — exactly as the killed run's did.
	reused, skips := sess.sync(ic, prefix, s.rewriteFn())
	gates := ic.bl.gates - ic.gatesSeen
	ic.gatesSeen = ic.bl.gates
	s.incMu.Unlock()

	s.mu.Lock()
	s.stats.RewarmSessions++
	s.stats.RewarmEncodes += int64(len(prefix)) - reused
	s.stats.AssumeReuses += reused
	s.stats.EncodeSkips += skips
	s.stats.Gates += gates
	s.mu.Unlock()
}
