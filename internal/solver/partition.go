package solver

import (
	"sde/internal/expr"
)

// Constraint-set partitioning: constraints that share no symbolic
// variables are independent, so a conjunction splits into connected
// components that can be decided (and cached) separately, with their
// models merged. This mirrors KLEE's independent-constraint optimisation
// and pays off heavily on distributed test-case queries, which union the
// path conditions of k nodes whose decisions are largely disjoint.

// varsOf returns the ids of the variables in e. The id sets are memoised
// eagerly on the hash-consed DAG at intern time (see expr.VarIDs), so
// this is a field read, not a traversal.
func (s *Solver) varsOf(e *expr.Expr) []uint32 { return e.VarIDs() }

// partition groups the constraints into connected components linked by
// shared variables. Constraints without any variable (non-constant-folded
// tautologies cannot occur; guarded anyway) join the first component.
func (s *Solver) partition(constraints []*expr.Expr) [][]*expr.Expr {
	n := len(constraints)
	if n <= 1 {
		return [][]*expr.Expr{constraints}
	}
	// Union-find over constraint indices.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	owner := make(map[uint32]int) // variable id -> first constraint seen
	for i, c := range constraints {
		for _, id := range s.varsOf(c) {
			if j, ok := owner[id]; ok {
				union(i, j)
			} else {
				owner[id] = i
			}
		}
	}
	groups := make(map[int][]*expr.Expr)
	var order []int
	for i, c := range constraints {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], c)
	}
	out := make([][]*expr.Expr, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// checkPartitioned decides the conjunction component by component. Each
// component goes through the full pipeline (fast path, cache, pool, SAT),
// so repeated components — the common case across a run's many queries —
// hit the cache. Returns ok=false when partitioning does not apply
// (single component). Recursion stays on the caller's query context, so
// a speculation worker's components solve on the worker's own slot.
func (s *Solver) checkPartitioned(qc queryCtx, constraints []*expr.Expr, needModel bool) (bool, expr.Env, bool, error) {
	comps := s.partition(constraints)
	if len(comps) <= 1 {
		return false, nil, false, nil
	}
	s.bumpStat(func(st *Stats) { st.Partitions++ })
	merged := expr.Env{}
	for _, comp := range comps {
		sat, model, err := s.checkQuery(qc, nil, comp, nil, needModel)
		if err != nil {
			return false, nil, true, err
		}
		if !sat {
			return false, nil, true, nil
		}
		if needModel {
			for name, v := range model {
				merged[name] = v
			}
		}
	}
	if !needModel {
		// Without needModel the components may answer through paths that
		// return no bindings (literal scan, verdict-only cache hits), so
		// merged would be incomplete. Return no model at all — a non-nil
		// partial model would be cached and later handed to a Model call,
		// whose missing-means-zero convention could then violate the
		// constraints.
		return true, nil, true, nil
	}
	return true, merged, true, nil
}
