package solver

import (
	"fmt"
	"sync"

	"sde/internal/expr"
)

// litScratch pools the literal scratch buffers of the word-level circuit
// constructors below. The big circuits (multiplier, divider, barrel
// shifter) build and discard one transient word per stage; on constraint-
// heavy runs those made the blaster the dominant allocator. Only buffers
// that never escape are pooled — memoised encode outputs live as long as
// the blaster. satSolver.addClause copies its literals, so a recycled
// buffer never aliases a stored clause, and the pool is shared safely by
// the per-slot blasters of concurrent speculation workers.
var litScratch = sync.Pool{
	New: func() any {
		s := make([]Lit, 0, 64)
		return &s
	},
}

// scratchWord borrows a width-w literal buffer from the pool.
func scratchWord(w int) *[]Lit {
	p := litScratch.Get().(*[]Lit)
	if cap(*p) < w {
		*p = make([]Lit, w)
	}
	*p = (*p)[:w]
	return p
}

// blaster lowers expression DAGs onto a satSolver instance. Each bitvector
// expression becomes a little-endian slice of literals (index 0 = LSB).
// Encodings are memoised per expression node, so shared DAG nodes are
// encoded once per query.
type blaster struct {
	sat  *satSolver
	memo map[*expr.Expr][]Lit
	// vars records, per symbolic variable, its bit literals so the model
	// can be read back after solving.
	vars map[*expr.Expr][]Lit
	// litTrue is a variable constrained true; constants are expressed as
	// ±litTrue so gate code never special-cases them.
	litTrue Lit
	// gates counts the auxiliary Tseitin variables allocated by the gate
	// constructors — the encoding work a persistent blaster avoids
	// repeating across queries.
	gates int64
}

func newBlaster(sat *satSolver) *blaster {
	b := &blaster{
		sat:  sat,
		memo: make(map[*expr.Expr][]Lit),
		vars: make(map[*expr.Expr][]Lit),
	}
	b.litTrue = sat.newVar()
	sat.addClause(b.litTrue)
	return b
}

func (b *blaster) litFalse() Lit { return -b.litTrue }

func (b *blaster) isTrue(l Lit) bool  { return l == b.litTrue }
func (b *blaster) isFalse(l Lit) bool { return l == -b.litTrue }

func (b *blaster) constBit(v bool) Lit {
	if v {
		return b.litTrue
	}
	return b.litFalse()
}

// assertTrue constrains a 1-bit encoding to hold.
func (b *blaster) assertTrue(l Lit) bool {
	return b.sat.addClause(l)
}

// --- gates ---------------------------------------------------------------

func (b *blaster) notGate(a Lit) Lit { return -a }

func (b *blaster) andGate(x, y Lit) Lit {
	switch {
	case b.isFalse(x) || b.isFalse(y):
		return b.litFalse()
	case b.isTrue(x):
		return y
	case b.isTrue(y):
		return x
	case x == y:
		return x
	case x == -y:
		return b.litFalse()
	}
	b.gates++
	o := b.sat.newVar()
	b.sat.addClause(-o, x)
	b.sat.addClause(-o, y)
	b.sat.addClause(o, -x, -y)
	return o
}

func (b *blaster) orGate(x, y Lit) Lit {
	return -b.andGate(-x, -y)
}

func (b *blaster) xorGate(x, y Lit) Lit {
	switch {
	case b.isFalse(x):
		return y
	case b.isFalse(y):
		return x
	case b.isTrue(x):
		return -y
	case b.isTrue(y):
		return -x
	case x == y:
		return b.litFalse()
	case x == -y:
		return b.litTrue
	}
	b.gates++
	o := b.sat.newVar()
	b.sat.addClause(-o, x, y)
	b.sat.addClause(-o, -x, -y)
	b.sat.addClause(o, -x, y)
	b.sat.addClause(o, x, -y)
	return o
}

// muxGate returns c ? x : y.
func (b *blaster) muxGate(c, x, y Lit) Lit {
	switch {
	case b.isTrue(c):
		return x
	case b.isFalse(c):
		return y
	case x == y:
		return x
	}
	b.gates++
	o := b.sat.newVar()
	b.sat.addClause(-c, -x, o)
	b.sat.addClause(-c, x, -o)
	b.sat.addClause(c, -y, o)
	b.sat.addClause(c, y, -o)
	return o
}

// majGate returns the majority of three bits (the full-adder carry).
func (b *blaster) majGate(x, y, z Lit) Lit {
	return b.orGate(b.andGate(x, y), b.orGate(b.andGate(x, z), b.andGate(y, z)))
}

// --- word-level circuits ---------------------------------------------------

func (b *blaster) constWord(v uint64, width int) []Lit {
	out := make([]Lit, width)
	for i := 0; i < width; i++ {
		out[i] = b.constBit((v>>uint(i))&1 == 1)
	}
	return out
}

// adder returns x + y + cin and the carry-out.
func (b *blaster) adder(x, y []Lit, cin Lit) ([]Lit, Lit) {
	out := make([]Lit, len(x))
	c := cin
	for i := range x {
		out[i] = b.xorGate(b.xorGate(x[i], y[i]), c)
		c = b.majGate(x[i], y[i], c)
	}
	return out, c
}

func (b *blaster) negWord(x []Lit) []Lit {
	ip := scratchWord(len(x))
	inv := *ip
	for i := range x {
		inv[i] = -x[i]
	}
	out, _ := b.adder(inv, b.constWord(1, len(x)), b.litFalse())
	litScratch.Put(ip)
	return out
}

func (b *blaster) mul(x, y []Lit) []Lit {
	w := len(x)
	acc := b.constWord(0, w)
	pp := scratchWord(w)
	partial := *pp
	for i := 0; i < w; i++ {
		// acc += y_i ? (x << i) : 0
		for j := 0; j < w; j++ {
			if j < i {
				partial[j] = b.litFalse()
			} else {
				partial[j] = b.andGate(x[j-i], y[i])
			}
		}
		acc, _ = b.adder(acc, partial, b.litFalse())
	}
	litScratch.Put(pp)
	return acc
}

// ugeWord returns the 1-bit result of x >= y (unsigned).
func (b *blaster) ugeWord(x, y []Lit) Lit {
	return -b.ultWord(x, y)
}

// ultWord returns the 1-bit result of x < y (unsigned), via an LSB-to-MSB
// comparison chain.
func (b *blaster) ultWord(x, y []Lit) Lit {
	lt := b.litFalse()
	for i := 0; i < len(x); i++ {
		eq := -b.xorGate(x[i], y[i])
		lt = b.orGate(b.andGate(-x[i], y[i]), b.andGate(eq, lt))
	}
	return lt
}

func (b *blaster) eqWord(x, y []Lit) Lit {
	acc := b.litTrue
	for i := range x {
		acc = b.andGate(acc, -b.xorGate(x[i], y[i]))
	}
	return acc
}

// subIf returns (cond ? x - y : x). Used by the restoring divider.
func (b *blaster) subIf(cond Lit, x, y []Lit) []Lit {
	diff, _ := b.adder(x, b.negWord(y), b.litFalse())
	out := make([]Lit, len(x))
	for i := range x {
		out[i] = b.muxGate(cond, diff[i], x[i])
	}
	return out
}

// divRem builds a restoring-division circuit. Division by zero follows the
// SMT-LIB convention (quotient all-ones, remainder = dividend), enforced
// with a final mux on the "divisor is zero" bit.
func (b *blaster) divRem(x, y []Lit) (quo, rem []Lit) {
	w := len(x)
	r := b.constWord(0, w)
	q := make([]Lit, w)
	sp := scratchWord(w)
	shifted := *sp
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | x_i
		shifted[0] = x[i]
		copy(shifted[1:], r[:w-1])
		ge := b.ugeWord(shifted, y)
		r = b.subIf(ge, shifted, y)
		q[i] = ge
	}
	litScratch.Put(sp)
	yZero := b.eqWord(y, b.constWord(0, w))
	quo = make([]Lit, w)
	rem = make([]Lit, w)
	for i := 0; i < w; i++ {
		quo[i] = b.muxGate(yZero, b.litTrue, q[i])
		rem[i] = b.muxGate(yZero, x[i], r[i])
	}
	return quo, rem
}

// shift builds a barrel shifter. dir selects the variant: left, logical
// right, or arithmetic right. Shift amounts >= width produce the fill
// value (0 or the sign bit for arithmetic right shifts).
type shiftDir uint8

const (
	shiftLeft shiftDir = iota + 1
	shiftRightLogic
	shiftRightArith
)

func (b *blaster) shift(x, amount []Lit, dir shiftDir) []Lit {
	w := len(x)
	fill := b.litFalse()
	if dir == shiftRightArith {
		fill = x[w-1]
	}
	cp, np := scratchWord(w), scratchWord(w)
	cur, next := *cp, *np
	copy(cur, x)
	// Stages for each amount bit that can shift within the word.
	for k := 0; k < len(amount) && (1<<uint(k)) < w; k++ {
		step := 1 << uint(k)
		for i := 0; i < w; i++ {
			var from Lit
			switch dir {
			case shiftLeft:
				if i-step >= 0 {
					from = cur[i-step]
				} else {
					from = fill
				}
			default:
				if i+step < w {
					from = cur[i+step]
				} else {
					from = fill
				}
			}
			next[i] = b.muxGate(amount[k], from, cur[i])
		}
		cur, next = next, cur
	}
	// If any amount bit at or above log2(w) is set, the shift saturates.
	over := b.litFalse()
	for k := 0; k < len(amount); k++ {
		if 1<<uint(k) >= w {
			over = b.orGate(over, amount[k])
		}
	}
	out := make([]Lit, w)
	for i := 0; i < w; i++ {
		out[i] = b.muxGate(over, fill, cur[i])
	}
	litScratch.Put(cp)
	litScratch.Put(np)
	return out
}

// encode lowers e to its literal vector, memoised per node.
func (b *blaster) encode(e *expr.Expr) []Lit {
	if lits, ok := b.memo[e]; ok {
		return lits
	}
	var out []Lit
	w := e.Width()
	switch e.Kind() {
	case expr.KindConst:
		out = b.constWord(e.ConstVal(), w)
	case expr.KindVar:
		out = make([]Lit, w)
		for i := range out {
			out[i] = b.sat.newVar()
		}
		b.vars[e] = out
	case expr.KindAdd:
		out, _ = b.adder(b.encode(e.Arg(0)), b.encode(e.Arg(1)), b.litFalse())
	case expr.KindSub:
		y := b.negWord(b.encode(e.Arg(1)))
		out, _ = b.adder(b.encode(e.Arg(0)), y, b.litFalse())
	case expr.KindMul:
		out = b.mul(b.encode(e.Arg(0)), b.encode(e.Arg(1)))
	case expr.KindUDiv:
		out, _ = b.divRem(b.encode(e.Arg(0)), b.encode(e.Arg(1)))
	case expr.KindURem:
		_, out = b.divRem(b.encode(e.Arg(0)), b.encode(e.Arg(1)))
	case expr.KindAnd, expr.KindOr, expr.KindXor:
		x, y := b.encode(e.Arg(0)), b.encode(e.Arg(1))
		out = make([]Lit, w)
		for i := 0; i < w; i++ {
			switch e.Kind() {
			case expr.KindAnd:
				out[i] = b.andGate(x[i], y[i])
			case expr.KindOr:
				out[i] = b.orGate(x[i], y[i])
			default:
				out[i] = b.xorGate(x[i], y[i])
			}
		}
	case expr.KindNot:
		x := b.encode(e.Arg(0))
		out = make([]Lit, w)
		for i := range x {
			out[i] = -x[i]
		}
	case expr.KindShl:
		out = b.shift(b.encode(e.Arg(0)), b.encode(e.Arg(1)), shiftLeft)
	case expr.KindLShr:
		out = b.shift(b.encode(e.Arg(0)), b.encode(e.Arg(1)), shiftRightLogic)
	case expr.KindAShr:
		out = b.shift(b.encode(e.Arg(0)), b.encode(e.Arg(1)), shiftRightArith)
	case expr.KindEq:
		out = []Lit{b.eqWord(b.encode(e.Arg(0)), b.encode(e.Arg(1)))}
	case expr.KindUlt:
		out = []Lit{b.ultWord(b.encode(e.Arg(0)), b.encode(e.Arg(1)))}
	case expr.KindUle:
		out = []Lit{-b.ultWord(b.encode(e.Arg(1)), b.encode(e.Arg(0)))}
	case expr.KindSlt, expr.KindSle:
		x := append([]Lit(nil), b.encode(e.Arg(0))...)
		y := append([]Lit(nil), b.encode(e.Arg(1))...)
		// Signed comparison = unsigned comparison with sign bits flipped.
		x[len(x)-1] = -x[len(x)-1]
		y[len(y)-1] = -y[len(y)-1]
		if e.Kind() == expr.KindSlt {
			out = []Lit{b.ultWord(x, y)}
		} else {
			out = []Lit{-b.ultWord(y, x)}
		}
	case expr.KindIte:
		c := b.encode(e.Arg(0))[0]
		x, y := b.encode(e.Arg(1)), b.encode(e.Arg(2))
		out = make([]Lit, w)
		for i := 0; i < w; i++ {
			out[i] = b.muxGate(c, x[i], y[i])
		}
	case expr.KindZExt:
		x := b.encode(e.Arg(0))
		out = make([]Lit, w)
		copy(out, x)
		for i := len(x); i < w; i++ {
			out[i] = b.litFalse()
		}
	case expr.KindSExt:
		x := b.encode(e.Arg(0))
		out = make([]Lit, w)
		copy(out, x)
		for i := len(x); i < w; i++ {
			out[i] = x[len(x)-1]
		}
	case expr.KindTrunc:
		x := b.encode(e.Arg(0))
		out = append([]Lit(nil), x[:w]...)
	default:
		panic(fmt.Sprintf("solver: cannot blast kind %v", e.Kind()))
	}
	b.memo[e] = out
	return out
}
