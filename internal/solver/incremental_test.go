package solver

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sde/internal/expr"
)

// diffBranch is one live branch of the randomized differential
// exploration: a path condition plus the incremental sessions tracking it.
type diffBranch struct {
	pc       []*expr.Expr
	sessFull *Session // session on the full default pipeline
	sessBare *Session // session on the bare incremental solver
}

func randomTerm(eb *expr.Builder, rng *rand.Rand, vars []*expr.Expr, depth int) *expr.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(3) == 0 {
			return eb.Const(rng.Uint64()&0xff, 8)
		}
		return vars[rng.Intn(len(vars))]
	}
	x := randomTerm(eb, rng, vars, depth-1)
	y := randomTerm(eb, rng, vars, depth-1)
	switch rng.Intn(6) {
	case 0:
		return eb.Add(x, y)
	case 1:
		return eb.Sub(x, y)
	case 2:
		return eb.Mul(x, y)
	case 3:
		return eb.And(x, y)
	case 4:
		return eb.Or(x, y)
	default:
		return eb.Xor(x, y)
	}
}

func randomConstraint(eb *expr.Builder, rng *rand.Rand, vars, bools []*expr.Expr) *expr.Expr {
	// Sometimes emit a pure boolean literal, the shape the engine's
	// failure decisions take (exercises the literal fast path).
	if rng.Intn(4) == 0 {
		d := bools[rng.Intn(len(bools))]
		if rng.Intn(2) == 0 {
			return eb.Not(d)
		}
		return d
	}
	x := randomTerm(eb, rng, vars, 2)
	y := randomTerm(eb, rng, vars, 2)
	var c *expr.Expr
	switch rng.Intn(4) {
	case 0:
		c = eb.Eq(x, y)
	case 1:
		c = eb.Ne(x, y)
	case 2:
		c = eb.Ult(x, y)
	default:
		c = eb.Ule(x, y)
	}
	if rng.Intn(3) == 0 {
		c = eb.Not(c)
	}
	return c
}

// TestIncrementalDifferential is the soundness guard for the incremental
// pipeline: a randomized exploration — monotonically growing path
// conditions with fork points that branch sessions — is decided three
// ways in lockstep, and all must agree on every query:
//
//   - oracle: from-scratch solving with every cache disabled;
//   - bare:   the persistent incremental instance, every cache disabled;
//   - full:   the default pipeline (caches, pool, subsumption, sessions).
//
// Models returned by the incremental solvers are validated against the
// ground-truth evaluator. Well over 1000 prefix-extension queries run.
func TestIncrementalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eb := expr.NewBuilder()
	vars := []*expr.Expr{eb.Var("a", 8), eb.Var("b", 8), eb.Var("c", 8)}
	bools := []*expr.Expr{eb.Var("d0", 1), eb.Var("d1", 1), eb.Var("d2", 1)}

	bareOpts := Options{
		DisableCache:       true,
		DisablePool:        true,
		DisableFastPath:    true,
		DisablePartition:   true,
		DisableSubsumption: true,
	}
	oracleOpts := bareOpts
	oracleOpts.DisableIncremental = true

	full := New()
	bare := NewWithOptions(bareOpts)
	oracle := NewWithOptions(oracleOpts)

	ask := func(br *diffBranch, c *expr.Expr, step int) bool {
		want, err := oracle.FeasibleWith(nil, br.pc, c)
		if err != nil {
			t.Fatalf("step %d: oracle: %v", step, err)
		}
		gotBare, err := bare.FeasibleWith(br.sessBare, br.pc, c)
		if err != nil {
			t.Fatalf("step %d: bare incremental: %v", step, err)
		}
		gotFull, err := full.FeasibleWith(br.sessFull, br.pc, c)
		if err != nil {
			t.Fatalf("step %d: full pipeline: %v", step, err)
		}
		if gotBare != want || gotFull != want {
			t.Fatalf("step %d: verdicts disagree: oracle=%v bare=%v full=%v (|pc|=%d)",
				step, want, gotBare, gotFull, len(br.pc))
		}
		if want && rng.Intn(3) == 0 {
			model, sat, err := bare.ModelWith(br.sessBare, br.pc, c)
			if err != nil || !sat {
				t.Fatalf("step %d: bare ModelWith: sat=%v err=%v", step, sat, err)
			}
			for _, q := range br.pc {
				if expr.Eval(q, model) == 0 {
					t.Fatalf("step %d: incremental model %v violates prefix constraint", step, model)
				}
			}
			if expr.Eval(c, model) == 0 {
				t.Fatalf("step %d: incremental model %v violates the extension", step, model)
			}
		}
		return want
	}

	// The acceptance bar is ≥1000 prefix-extension queries; -short keeps
	// race/smoke runs fast while the regular run covers the full count.
	target := 1200
	if testing.Short() {
		target = 250
	}
	branches := []*diffBranch{{sessFull: full.NewSession(), sessBare: bare.NewSession()}}
	queries := 0
	for step := 0; queries < target; step++ {
		br := branches[rng.Intn(len(branches))]
		c := randomConstraint(eb, rng, vars, bools)
		notC := eb.Not(c)
		feasC := ask(br, c, step)
		queries++
		feasNot := ask(br, notC, step)
		queries++
		switch {
		case feasC && feasNot:
			// Fork: the sibling takes the negated side on branched
			// sessions, mirroring vm.State.Fork + AddConstraint.
			if len(branches) < 24 && rng.Intn(2) == 0 {
				sib := &diffBranch{
					pc:       append(append([]*expr.Expr(nil), br.pc...), notC),
					sessFull: br.sessFull.Branch(),
					sessBare: br.sessBare.Branch(),
				}
				branches = append(branches, sib)
			}
			br.pc = append(br.pc, c)
		case feasC:
			br.pc = append(br.pc, c)
		case feasNot:
			br.pc = append(br.pc, notC)
		default:
			t.Fatalf("step %d: both sides infeasible under a feasible prefix", step)
		}
	}

	if st := bare.Stats(); st.IncSolves == 0 {
		t.Error("bare incremental solver never used the persistent instance")
	} else if st.AssumeReuses == 0 {
		t.Error("bare incremental solver never reused a session assumption literal")
	}
	// The full pipeline answers most of this workload from its caches and
	// splits the rest into independent components (which are decided with a
	// nil session), so only assert it reached the persistent instance.
	if st := full.Stats(); st.IncSolves == 0 {
		t.Error("full pipeline never used the persistent instance")
	}
}

// TestSessionBranchIndependence: after a fork, parent and child sessions
// extend divergently; both must stay sound (a shared backing array would
// corrupt one of them).
func TestSessionBranchIndependence(t *testing.T) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 8)
	s := NewWithOptions(Options{
		DisableCache:    true,
		DisablePool:     true,
		DisableFastPath: true,
	})

	pc := []*expr.Expr{eb.Ult(x, eb.Const(100, 8))}
	parent := s.NewSession()
	if sat, err := s.FeasibleWith(parent, pc, nil); err != nil || !sat {
		t.Fatalf("prefix: sat=%v err=%v", sat, err)
	}
	child := parent.Branch()

	parentPC := append(append([]*expr.Expr(nil), pc...), eb.Ult(x, eb.Const(10, 8)))
	childPC := append(append([]*expr.Expr(nil), pc...), eb.Ult(eb.Const(50, 8), x))

	// Interleave divergent extensions on both sessions.
	for i := 0; i < 4; i++ {
		pq := eb.Ult(x, eb.Const(uint64(9-i), 8))
		cq := eb.Ult(eb.Const(uint64(50+i), 8), x)
		if sat, err := s.FeasibleWith(parent, parentPC, pq); err != nil || !sat {
			t.Fatalf("parent step %d: sat=%v err=%v", i, sat, err)
		}
		if sat, err := s.FeasibleWith(child, childPC, cq); err != nil || !sat {
			t.Fatalf("child step %d: sat=%v err=%v", i, sat, err)
		}
		parentPC = append(parentPC, pq)
		childPC = append(childPC, cq)
	}
	// The combination of the two diverged paths is UNSAT (x<10 ∧ 50<x).
	combined := append(append([]*expr.Expr(nil), parentPC...), childPC...)
	if sat, err := s.FeasibleWith(nil, combined, nil); err != nil || sat {
		t.Fatalf("diverged paths should conflict: sat=%v err=%v", sat, err)
	}
}

// TestIncrementalConcurrentSessions exercises the documented concurrency
// contract under -race: one Solver, many goroutines, each with its own
// Session replaying the prefix-extension workload.
func TestIncrementalConcurrentSessions(t *testing.T) {
	eb := expr.NewBuilder()
	queries := PrefixExtensionQueries(eb, 8)
	s := New()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := s.NewSession()
			for i, q := range queries {
				if _, err := s.FeasibleWith(sess, q.Prefix, q.Extra); err != nil {
					errs <- fmt.Errorf("query %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
