package solver

import "sde/internal/expr"

// PrefixQuery is one step of a prefix-extension query stream: decide
// Prefix ∧ Extra. When Take is set, Extra joins the path condition after
// the query, so later entries' prefixes extend this one — exactly the
// query stream a symbolic-execution branch loop emits.
type PrefixQuery struct {
	Prefix []*expr.Expr
	Extra  *expr.Expr
	Take   bool
}

// PrefixExtensionQueries builds the canonical exploration workload shared
// by BenchmarkPrefixExtension and cmd/sde-bench -json: a path condition
// grows one branch constraint at a time, and both branch directions are
// queried at each step. Every step introduces a fresh multiplier circuit
// over the shared symbolic words, so a from-scratch solver re-encodes
// O(depth²) multipliers over the stream while a persistent blast context
// encodes O(depth); the probe queries (the untaken directions) force real
// CDCL search whose learned clauses only an incremental instance can
// reuse.
func PrefixExtensionQueries(eb *expr.Builder, depth int) []PrefixQuery {
	const w = 12
	x := eb.Var("x", w)
	y := eb.Var("y", w)
	var pc []*expr.Expr
	out := make([]PrefixQuery, 0, 2*depth)
	for i := 0; i < depth; i++ {
		t := eb.Mul(eb.Add(x, eb.Const(uint64(i+1), w)), y)
		bound := eb.Const(uint64(4000-13*i), w)
		c := eb.Ult(t, bound)
		out = append(out, PrefixQuery{Prefix: pc, Extra: eb.Not(c)})
		out = append(out, PrefixQuery{Prefix: pc, Extra: c, Take: true})
		pc = append(pc, c)
	}
	return out
}
