package solver

import (
	"fmt"

	"sde/internal/expr"
)

// PrefixQuery is one step of a prefix-extension query stream: decide
// Prefix ∧ Extra. When Take is set, Extra joins the path condition after
// the query, so later entries' prefixes extend this one — exactly the
// query stream a symbolic-execution branch loop emits.
type PrefixQuery struct {
	Prefix []*expr.Expr
	Extra  *expr.Expr
	Take   bool
}

// PrefixExtensionQueries builds the canonical exploration workload shared
// by BenchmarkPrefixExtension and cmd/sde-bench -json: a path condition
// grows one branch constraint at a time, and both branch directions are
// queried at each step. Every step introduces a fresh multiplier circuit
// over the shared symbolic words, so a from-scratch solver re-encodes
// O(depth²) multipliers over the stream while a persistent blast context
// encodes O(depth); the probe queries (the untaken directions) force real
// CDCL search whose learned clauses only an incremental instance can
// reuse.
func PrefixExtensionQueries(eb *expr.Builder, depth int) []PrefixQuery {
	const w = 12
	x := eb.Var("x", w)
	y := eb.Var("y", w)
	var pc []*expr.Expr
	out := make([]PrefixQuery, 0, 2*depth)
	for i := 0; i < depth; i++ {
		t := eb.Mul(eb.Add(x, eb.Const(uint64(i+1), w)), y)
		bound := eb.Const(uint64(4000-13*i), w)
		c := eb.Ult(t, bound)
		out = append(out, PrefixQuery{Prefix: pc, Extra: eb.Not(c)})
		out = append(out, PrefixQuery{Prefix: pc, Extra: c, Take: true})
		pc = append(pc, c)
	}
	return out
}

// RunicastPrefixQueries models the query stream of the Rime runicast
// scenario: pairs concurrent sender→receiver sessions, each advancing a
// 12-bit sequence number through depth retransmission rounds (depth ≤ 24
// keeps every taken prefix jointly satisfiable at seq=0). Each round of
// pair i bounds the sequence number's slot inside the 32-tick
// retransmission window — (seqᵢ + round) mod 32 — or, on alternating
// rounds, its backoff epoch (seqᵢ + 16·round) ÷ 16, and then forks a
// fresh 1-bit packet-drop decision variable into the path condition.
//
// The stream is the query-optimizer's acceptance workload, and each
// pipeline stage has a distinct target in it:
//   - the window and epoch terms divide by the constant power-of-two
//     window width, which strength-reduces to a mask / constant shift.
//     Unrewritten, each lands in the blaster's restoring-division loop —
//     ~5·w² gates of comparators and conditional subtractors per
//     constraint — where the rewritten mask costs none, and the probe
//     queries' negated comparisons rewrite to the opposite comparison;
//   - the drop literals and the other pairs' bounds are variable-disjoint
//     from the queried pair, so independence slicing cuts each query to
//     the one pair it concerns;
//   - the drop literals mixed into the prefix keep the whole-prefix
//     literal scan from short-circuiting the stream, exactly as in the
//     real scenario where boolean failure pins and arithmetic sequence
//     bounds interleave.
func RunicastPrefixQueries(eb *expr.Builder, pairs, depth int) []PrefixQuery {
	const w = 12
	const window = 32 // retransmission window in ticks, a power of two
	seqs := make([]*expr.Expr, pairs)
	for i := range seqs {
		seqs[i] = eb.Var(fmt.Sprintf("seq%d", i), w)
	}
	var pc []*expr.Expr
	out := make([]PrefixQuery, 0, 3*pairs*depth)
	for round := 0; round < depth; round++ {
		for i := 0; i < pairs; i++ {
			var c *expr.Expr
			if round%2 == 0 {
				// Slot constraint: the retransmission lands inside the
				// window, never on its guard slot.
				slot := eb.URem(eb.Add(seqs[i], eb.Const(uint64(round+1), w)), eb.Const(window, w))
				c = eb.Ult(slot, eb.Const(window-1, w))
			} else {
				// Epoch constraint: the backoff epoch stays under the
				// round's deadline.
				epoch := eb.UDiv(eb.Add(seqs[i], eb.Const(uint64(16*(round+1)), w)), eb.Const(16, w))
				c = eb.Ult(epoch, eb.Const(uint64(200-2*round-i), w))
			}
			out = append(out, PrefixQuery{Prefix: pc, Extra: eb.Not(c)})
			out = append(out, PrefixQuery{Prefix: pc, Extra: c, Take: true})
			pc = append(pc, c)
			drop := eb.Var(fmt.Sprintf("drop%d_%d", i, round), 1)
			out = append(out, PrefixQuery{Prefix: pc, Extra: drop, Take: true})
			pc = append(pc, drop)
		}
	}
	return out
}
