// Wire framing: the checkpoint format promoted to a transport. The
// coordinator/worker protocol of internal/dist moves snapshots and small
// control messages as length-prefixed frames, each stamped with the snap
// format version — the same version byte the on-disk checkpoint carries —
// so version negotiation and rejection of future-format peers reuse the
// one place the format is versioned.
//
// A frame on the wire:
//
//	magic "SDEfrm"  (6 bytes)
//	version         (1 byte, = the snap format version of the sender)
//	type            (1 byte, application-defined)
//	payload length  (4 bytes, little-endian)
//	payload         (length bytes)
//	checksum        (8 bytes, little-endian FNV-1a of everything above)
//
// Like the checkpoint decoder, the frame reader treats its input as
// untrusted: truncation, oversized lengths, garbage magic, checksum
// mismatches, and future versions all return errors wrapping ErrCorrupt,
// never a panic. A reader at version v accepts frames of version <= v
// (older minors are forward-decodable by construction; there are none
// yet) and must reject version > v — it cannot know how to parse them.
package snap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WireVersion is the frame format version this build speaks: the snap
// checkpoint version, because snapshot payloads are the protocol's bulk
// cargo and their format is what actually changes between releases.
const WireVersion = version

// MaxFramePayload bounds a single frame's payload (64 MiB). Snapshots of
// runs worth distributing stay far below this; anything larger is treated
// as corruption rather than a reason to allocate unboundedly.
const MaxFramePayload = 64 << 20

var frameMagic = []byte("SDEfrm")

// frameHeaderLen is magic + version + type + 4-byte length.
const frameHeaderLen = len("SDEfrm") + 1 + 1 + 4

const frameSumLen = 8

// AppendFrame appends one version-WireVersion frame to dst and returns
// the extended slice.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, frameMagic...)
	dst = append(dst, WireVersion, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint64(dst, fnv64a(dst[start:]))
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("snap: frame payload of %d bytes exceeds the %d-byte cap",
			len(payload), MaxFramePayload)
	}
	buf := AppendFrame(make([]byte, 0, frameHeaderLen+len(payload)+frameSumLen), typ, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r. Protocol-level damage — truncated
// input, bad magic, an oversized length, a checksum mismatch — wraps
// ErrCorrupt. A frame from a future format version also wraps ErrCorrupt
// and names the offending version, so a mixed-version fleet fails with a
// diagnosable error instead of a parse explosion. Clean EOF before any
// byte of a frame is returned as io.EOF (the peer hung up between
// frames).
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	header := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(r, header[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: truncated frame header: %v", ErrCorrupt, err)
	}
	if _, err := io.ReadFull(r, header[1:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame header: %v", ErrCorrupt, err)
	}
	for i, c := range frameMagic {
		if header[i] != c {
			return 0, nil, fmt.Errorf("%w: bad frame magic %q", ErrCorrupt, header[:len(frameMagic)])
		}
	}
	ver := header[len(frameMagic)]
	if ver > WireVersion {
		return 0, nil, fmt.Errorf("%w: frame has future wire version %d (this reader speaks <= %d)",
			ErrCorrupt, ver, WireVersion)
	}
	typ = header[len(frameMagic)+1]
	n := binary.LittleEndian.Uint32(header[len(frameMagic)+2:])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: frame payload length %d exceeds the %d-byte cap",
			ErrCorrupt, n, MaxFramePayload)
	}
	body := make([]byte, int(n)+frameSumLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame payload: %v", ErrCorrupt, err)
	}
	sum := binary.LittleEndian.Uint64(body[n:])
	h := fnv64a(header)
	for _, c := range body[:n] {
		h ^= uint64(c)
		h *= 1099511628211
	}
	if h != sum {
		return 0, nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return typ, body[:n:n], nil
}
