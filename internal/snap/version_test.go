package snap_test

// Cross-version wire-format tests for the v2 → v3 bump (merged
// frontiers). The format promises: a new reader decodes real v2 bytes
// (old writer × new reader); a v2 writer cannot emit a merged frontier at
// all; and a blob claiming v2 while carrying trailing merged-rep bytes is
// rejected as corrupt with an error naming the version that could hold
// them — not a panic, not a silent truncation.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"strings"
	"testing"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/snap"
)

// mergedSnapshot steps a merge-enabled collect run until the live
// frontier holds at least one merged representative, then snapshots it.
func mergedSnapshot(t *testing.T) (*snap.Snapshot, *expr.Builder) {
	t.Helper()
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewGrid(3, 3)
	route := g.StaircaseRoute(8, 0)
	cc := rime.CollectConfig{
		Source: route[0], Sink: route[len(route)-1],
		Route: route, Interval: 10, Packets: 2,
	}
	nodeInit, err := cc.NodeInit(g.K())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Config{
		Topo:        g,
		Prog:        prog,
		Algorithm:   core.SDSAlgorithm,
		Horizon:     120,
		NodeInit:    nodeInit,
		Failures:    sim.FailurePlan{DropFirst: sim.NodeSet(route)},
		EnableMerge: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for eng.Step() {
		sp, err := eng.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		if len(sp.Merged) > 0 {
			return sp, eng.Ctx().Exprs
		}
	}
	t.Fatal("run never held a merged representative; workload no longer merges")
	return nil, nil
}

// reversion rewrites the format-version byte of an encoded snapshot and
// repairs the trailing FNV-1a checksum, simulating a blob whose declared
// version disagrees with its actual contents.
func reversion(t *testing.T, data []byte, ver byte) []byte {
	t.Helper()
	const magicLen = 7 // "SDEsnp\x00"
	out := append([]byte(nil), data...)
	out[magicLen] = ver
	h := fnv.New64a()
	h.Write(out[:len(out)-8])
	binary.LittleEndian.PutUint64(out[len(out)-8:], h.Sum64())
	return out
}

// TestCrossVersionOldWriterNewReader: real v2 bytes (written by this
// build's version-parameterized encoder, identical to what a v2 writer
// produced) must decode in the current reader, with no merged frontier
// and all common fields intact — and re-encode at v2 byte-identically,
// so per-version byte stability survives the bump.
func TestCrossVersionOldWriterNewReader(t *testing.T) {
	sp, b := liveSnapshot(t, core.SDSAlgorithm, 60)
	old, err := sp.EncodeAt(b, snap.OldVersion)
	if err != nil {
		t.Fatalf("EncodeAt(%d): %v", snap.OldVersion, err)
	}
	cur, err := sp.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(old, cur) {
		t.Fatal("v2 and v3 encodings are byte-identical; version gate is dead")
	}

	b2 := expr.NewBuilder()
	sp2, err := snap.Decode(old, b2)
	if err != nil {
		t.Fatalf("new reader rejects v2 bytes: %v", err)
	}
	if len(sp2.Merged) != 0 {
		t.Fatalf("v2 decode produced %d merged reps, want 0", len(sp2.Merged))
	}
	if sp2.Events != sp.Events || sp2.Clock != sp.Clock || len(sp2.States) != len(sp.States) {
		t.Fatalf("v2 decode lost fields: events %d/%d clock %d/%d states %d/%d",
			sp2.Events, sp.Events, sp2.Clock, sp.Clock, len(sp2.States), len(sp.States))
	}
	old2, err := sp2.EncodeAt(b2, snap.OldVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, old2) {
		t.Fatal("v2 encode→decode→encode not byte-stable")
	}
}

// TestCrossVersionMergedRequiresV3: the writer half of the gate — a
// merged frontier cannot be serialized at the old version.
func TestCrossVersionMergedRequiresV3(t *testing.T) {
	sp, b := mergedSnapshot(t)
	_, err := sp.EncodeAt(b, snap.OldVersion)
	if err == nil {
		t.Fatal("EncodeAt(v2) accepted a merged frontier")
	}
	if !strings.Contains(err.Error(), "wire version 3") {
		t.Fatalf("error does not name the required version: %v", err)
	}

	// At the current version the same snapshot round-trips byte-stably,
	// representatives included.
	data, err := sp.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	b2 := expr.NewBuilder()
	sp2, err := snap.Decode(data, b2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp2.Merged) != len(sp.Merged) {
		t.Fatalf("decoded %d merged reps, want %d", len(sp2.Merged), len(sp.Merged))
	}
	for i := range sp2.Merged {
		if len(sp2.Merged[i].Members) != len(sp.Merged[i].Members) {
			t.Fatalf("rep %d: %d members, want %d",
				i, len(sp2.Merged[i].Members), len(sp.Merged[i].Members))
		}
	}
	data2, err := sp2.Encode(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("merged snapshot encode→decode→encode not byte-stable")
	}
}

// TestCrossVersionDecodeTable: the reader half of the gate, as a table
// over version-byte corruptions of real blobs.
func TestCrossVersionDecodeTable(t *testing.T) {
	plain, pb := liveSnapshot(t, core.SDSAlgorithm, 60)
	plainV3, err := plain.Encode(pb)
	if err != nil {
		t.Fatal(err)
	}
	merged, mb := mergedSnapshot(t)
	mergedV3, err := merged.Encode(mb)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		data    []byte
		wantErr string // "" = must decode
	}{
		// A merged v3 blob relabelled v2: the merged section becomes
		// trailing garbage for a v2 parse — the clear-rejection case the
		// version bump exists for.
		{"merged-v3-claiming-v2", reversion(t, mergedV3, snap.OldVersion),
			"merged-frontier snapshots require wire version 3"},
		// A plain v3 blob relabelled v2 still fails (the v3 sample
		// columns misalign the v2 parse), just with a less specific
		// diagnosis — any ErrCorrupt is acceptable.
		{"plain-v3-claiming-v2", reversion(t, plainV3, snap.OldVersion), "snap: corrupt"},
		// A version from the future is refused up front, naming the
		// range this reader speaks.
		{"future-version", reversion(t, plainV3, snap.Version+1), "this reader speaks"},
		{"current-version", plainV3, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := snap.Decode(tc.data, expr.NewBuilder())
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Decode: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Decode accepted a corrupt blob")
			}
			if !errors.Is(err, snap.ErrCorrupt) {
				t.Fatalf("error does not wrap ErrCorrupt: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
