package snap_test

// The tests live in an external package so they can build real snapshots
// through sde/internal/sim (which itself imports snap).

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/snap"
)

var allAlgorithms = []core.Algorithm{core.COBAlgorithm, core.COWAlgorithm, core.SDSAlgorithm}

// liveSnapshot runs the collect scenario partway and snapshots a frontier
// with forked states, symbolic path conditions, pending events, and
// shared memory pages.
func liveSnapshot(t testing.TB, algo core.Algorithm, steps int) (*snap.Snapshot, *expr.Builder) {
	t.Helper()
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewGrid(3, 3)
	route := g.StaircaseRoute(8, 0)
	cc := rime.CollectConfig{
		Source:   route[0],
		Sink:     route[len(route)-1],
		Route:    route,
		Interval: 10,
		Packets:  2,
	}
	nodeInit, err := cc.NodeInit(g.K())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Config{
		Topo:      g,
		Prog:      prog,
		Algorithm: algo,
		Horizon:   120,
		NodeInit:  nodeInit,
		Failures:  sim.FailurePlan{DropFirst: sim.NodeSet(route)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps && eng.Step(); i++ {
	}
	sp, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return sp, eng.Ctx().Exprs
}

// TestRoundTripByteStable is the format's core guarantee: an encoded
// snapshot, decoded into a fresh builder and re-encoded, is byte-identical
// — for every algorithm, at an early (pre-fork) and a late frontier.
func TestRoundTripByteStable(t *testing.T) {
	for _, algo := range allAlgorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			for _, steps := range []int{3, 60} {
				sp, b := liveSnapshot(t, algo, steps)
				data, err := sp.Encode(b)
				if err != nil {
					t.Fatalf("Encode: %v", err)
				}
				b2 := expr.NewBuilder()
				sp2, err := snap.Decode(data, b2)
				if err != nil {
					t.Fatalf("Decode: %v", err)
				}
				data2, err := sp2.Encode(b2)
				if err != nil {
					t.Fatalf("re-Encode: %v", err)
				}
				if !bytes.Equal(data, data2) {
					t.Fatalf("steps=%d: encode→decode→encode changed %d-byte snapshot", steps, len(data))
				}
				if sp2.Events != sp.Events || sp2.Clock != sp.Clock ||
					len(sp2.States) != len(sp.States) || len(sp2.Pages) != len(sp.Pages) {
					t.Fatalf("steps=%d: decoded header diverges: %+v", steps, sp2)
				}
			}
		})
	}
}

// TestDecodeTruncated: every prefix of a valid snapshot must fail with
// ErrCorrupt, never panic.
func TestDecodeTruncated(t *testing.T) {
	sp, b := liveSnapshot(t, core.SDSAlgorithm, 40)
	data, err := sp.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	step := len(data)/200 + 1
	for n := 0; n < len(data); n += step {
		_, err := snap.Decode(data[:n], expr.NewBuilder())
		if err == nil {
			t.Fatalf("Decode accepted a %d-byte prefix of a %d-byte snapshot", n, len(data))
		}
		if !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("prefix %d: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

// TestDecodeBitFlips: flipping any single byte must be rejected (the
// checksum guarantees this) with ErrCorrupt.
func TestDecodeBitFlips(t *testing.T) {
	sp, b := liveSnapshot(t, core.COWAlgorithm, 40)
	data, err := sp.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	step := len(data)/100 + 1
	for pos := 0; pos < len(data); pos += step {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x41
		_, err := snap.Decode(mut, expr.NewBuilder())
		if err == nil {
			t.Fatalf("Decode accepted a snapshot with byte %d flipped", pos)
		}
		if !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("flip at %d: error %v does not wrap ErrCorrupt", pos, err)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "ckpt")
	sp, b := liveSnapshot(t, core.SDSAlgorithm, 20)

	if _, err := snap.LoadBytes(dir); !errors.Is(err, snap.ErrNoCheckpoint) {
		t.Fatalf("LoadBytes on empty dir: %v, want ErrNoCheckpoint", err)
	}
	if err := snap.Save(dir, sp, b); err != nil {
		t.Fatalf("Save: %v", err)
	}
	want, err := sp.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := snap.LoadBytes(dir)
	if err != nil {
		t.Fatalf("LoadBytes: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("LoadBytes returned different bytes than Encode")
	}
	sp2, err := snap.Load(dir, expr.NewBuilder())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if sp2.Events != sp.Events {
		t.Fatalf("Load events = %d, want %d", sp2.Events, sp.Events)
	}
	if _, err := os.Stat(filepath.Join(dir, snap.CheckpointFile+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file left behind after Save")
	}

	// A second Save overwrites the snapshot and appends a journal line.
	if err := snap.Save(dir, sp, b); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	journal, err := os.ReadFile(filepath.Join(dir, snap.JournalFile))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(journal)), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines after two saves:\n%s", len(lines), journal)
	}
	for _, line := range lines {
		if !strings.Contains(line, "algo=SDS") || !strings.Contains(line, "events=") {
			t.Fatalf("malformed journal line: %q", line)
		}
	}
}

// TestEncodeWithoutMapper: programming-error path, not a corrupt-input one.
func TestEncodeWithoutMapper(t *testing.T) {
	sp, b := liveSnapshot(t, core.COBAlgorithm, 5)
	sp.Mapper = nil
	if _, err := sp.Encode(b); err == nil {
		t.Fatal("Encode accepted a snapshot without a mapper")
	}
}
