package snap_test

// Fuzz target for the snapshot decoder: the decoder treats its input as
// untrusted bytes and must never panic — every rejection wraps
// snap.ErrCorrupt, and everything it accepts must re-encode byte-
// identically (the resume path re-encodes accepted snapshots at the next
// checkpoint).

import (
	"errors"
	"testing"

	"sde/internal/expr"
	"sde/internal/snap"
)

func FuzzDecode(f *testing.F) {
	// Seed with real snapshots from all three algorithms so the fuzzer
	// starts past the checksum and explores the structural decoders, plus
	// hand-mutated variants that defeat the checksum gate.
	for _, algo := range allAlgorithms {
		sp, b := liveSnapshot(f, algo, 30)
		data, err := sp.Encode(b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		mut := append([]byte(nil), data...)
		mut[len(mut)/3] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("SDEsnp\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		b := expr.NewBuilder()
		sp, err := snap.Decode(data, b)
		if err != nil {
			if !errors.Is(err, snap.ErrCorrupt) {
				t.Fatalf("Decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// Accepted input: it must survive a re-encode/re-decode cycle.
		// (Byte-identity is only guaranteed for Encode's own output —
		// TestRoundTripByteStable covers that — since Decode tolerates
		// non-minimal varints that Encode would canonicalise.)
		out, err := sp.Encode(b)
		if err != nil {
			t.Fatalf("accepted snapshot fails to re-encode: %v", err)
		}
		sp2, err := snap.Decode(out, expr.NewBuilder())
		if err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
		if sp2.Events != sp.Events || len(sp2.States) != len(sp.States) {
			t.Fatalf("re-encode changed the snapshot: events %d→%d, states %d→%d",
				sp.Events, sp2.Events, len(sp.States), len(sp2.States))
		}
	})
}
