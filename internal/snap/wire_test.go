package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xA5}, 10_000)}
	var buf bytes.Buffer
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatalf("WriteFrame(%d): %v", i, err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%d): %v", i, err)
		}
		if typ != byte(i+1) {
			t.Errorf("frame %d: type = %d, want %d", i, typ, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("ReadFrame at end = %v, want io.EOF", err)
	}
}

// frameBytes builds one well-formed frame and lets the test damage it.
func frameBytes(t *testing.T, typ byte, payload []byte) []byte {
	t.Helper()
	return AppendFrame(nil, typ, payload)
}

// TestFrameVersionNegotiation: this reader speaks WireVersion; any frame
// stamped with a later version must be rejected with an error that wraps
// ErrCorrupt and names the offending version — the mixed-fleet diagnosis
// depends on that number surfacing.
func TestFrameVersionNegotiation(t *testing.T) {
	for _, future := range []byte{WireVersion + 1, WireVersion + 7, 255} {
		future := future
		t.Run(fmt.Sprintf("v%d", future), func(t *testing.T) {
			frame := frameBytes(t, 9, []byte("payload"))
			frame[len(frameMagic)] = future
			// The version check happens before the checksum is read, so no
			// re-stamping of the trailer is needed — but fix it up anyway to
			// prove rejection is about the version, not collateral damage.
			body := frame[:len(frame)-frameSumLen]
			binary.LittleEndian.PutUint64(frame[len(frame)-frameSumLen:], fnv64a(body))

			_, _, err := ReadFrame(bytes.NewReader(frame))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("future version %d: err = %v, want ErrCorrupt", future, err)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("%d", future)) {
				t.Errorf("error %q does not name the offending version %d", err, future)
			}
		})
	}
	// Frames at or below our version pass the version gate.
	frame := frameBytes(t, 9, []byte("payload"))
	if _, _, err := ReadFrame(bytes.NewReader(frame)); err != nil {
		t.Errorf("current-version frame rejected: %v", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	good := frameBytes(t, 3, []byte("the payload"))
	tests := []struct {
		name string
		data func() []byte
	}{
		{"empty input is clean EOF, handled separately", nil},
		{"truncated magic", func() []byte { return good[:3] }},
		{"truncated header", func() []byte { return good[:frameHeaderLen-1] }},
		{"truncated payload", func() []byte { return good[:frameHeaderLen+4] }},
		{"truncated checksum", func() []byte { return good[:len(good)-2] }},
		{"garbage magic", func() []byte {
			f := append([]byte(nil), good...)
			f[0] = 'X'
			return f
		}},
		{"garbage everywhere", func() []byte {
			return bytes.Repeat([]byte{0xDE, 0xAD}, 32)
		}},
		{"oversized length", func() []byte {
			f := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(f[len(frameMagic)+2:], MaxFramePayload+1)
			return f
		}},
		{"length beyond input", func() []byte {
			f := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(f[len(frameMagic)+2:], uint32(len(good)+512))
			return f
		}},
		{"flipped payload bit", func() []byte {
			f := append([]byte(nil), good...)
			f[frameHeaderLen] ^= 0x40
			return f
		}},
		{"flipped checksum bit", func() []byte {
			f := append([]byte(nil), good...)
			f[len(f)-1] ^= 0x01
			return f
		}},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.data == nil {
				_, _, err := ReadFrame(bytes.NewReader(nil))
				if err != io.EOF {
					t.Fatalf("empty input: err = %v, want io.EOF", err)
				}
				return
			}
			_, _, err := ReadFrame(bytes.NewReader(tc.data()))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestWriteFrameRejectsOversizedPayload: the writer refuses to emit a
// frame its own reader would reject.
func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	big := make([]byte, MaxFramePayload+1)
	if err := WriteFrame(io.Discard, 1, big); err == nil {
		t.Fatal("WriteFrame accepted an oversized payload")
	}
}
