package snap

import "sde/internal/expr"

// EncodeAt exposes version-parameterized encoding to tests, so
// cross-version decode tests run against real old-format bytes rather
// than hand-crafted ones.
func (s *Snapshot) EncodeAt(b *expr.Builder, ver byte) ([]byte, error) {
	return s.encodeAt(b, ver)
}

// Version and OldVersion mirror the unexported format-version constants.
const (
	Version    = version
	OldVersion = oldVersion
)
