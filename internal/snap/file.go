package snap

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"sde/internal/expr"
)

// CheckpointFile is the snapshot file name within a checkpoint directory.
const CheckpointFile = "checkpoint.sde"

// JournalFile is the append-only progress journal next to the snapshot:
// one line per checkpoint, human-readable, for post-crash forensics.
const JournalFile = "journal.log"

// ErrNoCheckpoint is returned by LoadBytes/Load when the directory holds
// no checkpoint (distinguishing "never checkpointed" from real IO errors,
// so resume-or-start logic can fall back to a fresh run).
var ErrNoCheckpoint = errors.New("snap: no checkpoint found")

// Save writes the snapshot durably into dir: encode, write to a temp
// file, fsync, close, then rename over CheckpointFile — so a crash at any
// point leaves either the previous checkpoint or the new one, never a
// torn file. Every writer error return is checked; a checkpoint that
// silently dropped bytes is worse than none.
func Save(dir string, s *Snapshot, b *expr.Builder) error {
	data, err := s.Encode(b)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, CheckpointFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, CheckpointFile)); err != nil {
		return err
	}
	return appendJournal(dir, s, len(data))
}

func appendJournal(dir string, s *Snapshot, size int) error {
	f, err := os.OpenFile(filepath.Join(dir, JournalFile),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := fmt.Fprintf(f, "%s algo=%s events=%d clock=%d states=%d bytes=%d\n",
		time.Now().UTC().Format(time.RFC3339),
		s.Algorithm, s.Events, s.Clock, len(s.States), size)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// LoadBytes reads the raw checkpoint from dir, or ErrNoCheckpoint when
// none has been written there.
func LoadBytes(dir string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Load reads and decodes the checkpoint in dir.
func Load(dir string, b *expr.Builder) (*Snapshot, error) {
	data, err := LoadBytes(dir)
	if err != nil {
		return nil, err
	}
	return Decode(data, b)
}
