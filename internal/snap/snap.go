// Package snap implements the durable checkpoint format: a versioned,
// deterministic binary snapshot of a whole exploration frontier — VM
// states, COW memory pages (deduplicated), path conditions as a
// topological encoding of the hash-consed expression DAG, the
// state-mapping structures of all three algorithms, the event queues, and
// the virtual clock.
//
// The format is deterministic in the strong sense the resume guarantee
// needs: encode→decode→encode is byte-identical. Two properties carry
// that: expression nodes are numbered in a fixed traversal order (all
// builder variables in creation order, then reachable nodes in
// first-visit post-order), and shared memory pages are numbered densely
// in first-reference order rather than by their process-local identities.
// (Decoding an older-version snapshot re-encodes at the current version —
// a one-way upgrade; byte-identity holds per version.)
//
// Decoding treats its input as untrusted: every failure — truncation,
// bit flips, impossible counts, malformed expression structure — returns
// an error wrapping ErrCorrupt, never a panic. A trailing FNV-1a checksum
// rejects most corruption before parsing begins; the structural checks
// behind it make the decoder total anyway (the fuzz target's contract).
//
// Solver state is deliberately absent from snapshots: it is derived data,
// rebuilt on resume by re-warming each state's session from its path
// condition (see solver.WarmSession).
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/metrics"
	"sde/internal/vm"
)

// ErrCorrupt is wrapped by every decoding failure.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

var magic = []byte("SDEsnp\x00")

// version 2 added the query-optimizer columns (QueriesSliced,
// GatesElided) to metric samples. Optimizer state itself is derived and
// never serialized — only the recorded time series changed shape.
//
// version 3 added the merged frontier (state-merging reps with their
// member records, trailing the violations section) and the merge columns
// (MergedStates, MergeCandidates, MergeRejects) to metric samples. A
// version-3 reader still accepts version-2 snapshots; a version-2 blob
// carrying merged-frontier bytes is rejected as corrupt — the old format
// has no way to express a merged frontier.
//
// version 4 accompanies the depth-horizon continuation protocol: the
// snapshot body is unchanged (a version-4 blob decodes exactly like a
// version-3 one), but the exploration service grew continuation lease
// and frontier-suspension message kinds, and WireVersion tracks this
// constant — bumping it makes pre-4 peers reject the handshake instead
// of misparsing frames they do not know.
const version = 4

// oldVersion is the oldest format this reader still decodes.
const oldVersion = 2

// Snapshot is the complete persistent form of an exploration frontier,
// taken at an event boundary (no state mid-execution).
type Snapshot struct {
	Algorithm core.Algorithm
	K         int
	Topology  string // topology name, to reject mismatched resumes

	Clock      uint64 // engine virtual clock
	Events     uint64 // events processed so far
	PeakStates int
	PeakMem    int64
	PriorWall  time.Duration // wall time already spent before this point

	NextStateID  uint64 // context counters, so resumed ids continue exactly
	Instructions uint64
	Forks        uint64

	States []vm.StateImage
	Pages  [][]*expr.Expr // dense page table, vm.PageWords words each
	Mapper *core.MapperSnapshot

	Samples    []metrics.Sample
	Violations []*vm.Violation

	// Merged is the state-merging subsystem's durable frontier (wire
	// version 3): each rep's full machine plus, per member, the identity of
	// its frozen shell (which lives in States like any frontier state), the
	// step-accounting bases, and the substitution pairs mapping
	// merge-introduced ite expressions back to the member's own values.
	Merged []MergedRep
}

// SubPairImage is one substitution pair of a merged member, in creation
// order. Both expressions live in the snapshot's shared DAG table.
type SubPairImage struct {
	Key, Val *expr.Expr
}

// MergedMember identifies one member of a merged rep by the id of its
// frozen shell in Snapshot.States.
type MergedMember struct {
	ID        uint64
	StepsBase uint64
	Carried   uint64
	Subs      []SubPairImage
}

// MergedRep is one merged representative: a full state image (its id is
// the first member's) plus the member records in ascending id order.
type MergedRep struct {
	Rep     vm.StateImage
	Members []MergedMember
}

// --- encoding ----------------------------------------------------------------

type writer struct {
	buf []byte
}

func (w *writer) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) i64(v int64)  { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) byte(v byte)  { w.buf = append(w.buf, v) }

func (w *writer) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) bool(v bool) {
	if v {
		w.byte(1)
		return
	}
	w.byte(0)
}

// exprTable assigns every serialized expression node a stable index:
// builder variables first (in creation order, so the decoder's var-id
// sequence replays exactly), then reachable non-variable nodes in
// first-visit post-order — every operand index precedes its user's, which
// makes decoding a single forward pass with no cycle risk.
type exprTable struct {
	idx   map[*expr.Expr]uint64
	nodes []*expr.Expr
	nv    int
}

func (t *exprTable) collect(root *expr.Expr) {
	if root == nil {
		return
	}
	if _, ok := t.idx[root]; ok {
		return
	}
	type frame struct {
		e    *expr.Expr
		next int
	}
	stack := []frame{{e: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if _, done := t.idx[f.e]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		if f.next < 3 {
			a := f.e.Arg(f.next)
			f.next++
			if a != nil {
				if _, ok := t.idx[a]; !ok {
					stack = append(stack, frame{e: a})
				}
			}
			continue
		}
		t.idx[f.e] = uint64(t.nv + len(t.nodes))
		t.nodes = append(t.nodes, f.e)
		stack = stack[:len(stack)-1]
	}
}

// ref encodes a nilable expression reference: 0 for nil, index+1 otherwise.
func (w *writer) ref(t *exprTable, e *expr.Expr) {
	if e == nil {
		w.u64(0)
		return
	}
	w.u64(t.idx[e] + 1)
}

// Encode serializes the snapshot. b must be the builder that produced
// every expression in it; all of b's variables are serialized (reachable
// or not) so the restored builder assigns future variable ids exactly as
// the original would have.
func (s *Snapshot) Encode(b *expr.Builder) ([]byte, error) {
	return s.encodeAt(b, version)
}

func (t *exprTable) collectImage(img *vm.StateImage) {
	for _, r := range img.Regs {
		t.collect(r)
	}
	for _, c := range img.PathCond {
		t.collect(c)
	}
	for _, ev := range img.Events {
		t.collect(ev.Arg)
		for _, d := range ev.Data {
			t.collect(d)
		}
	}
	for _, tr := range img.Trace {
		t.collect(tr.Val)
	}
}

// encodeAt serializes at a specific format version. The public Encode
// always writes the current version; the legacy path exists so tests can
// exercise cross-version decoding against real old-format bytes.
func (s *Snapshot) encodeAt(b *expr.Builder, ver byte) ([]byte, error) {
	if s.Mapper == nil {
		return nil, fmt.Errorf("snap: snapshot without mapper")
	}
	if ver < oldVersion || ver > version {
		return nil, fmt.Errorf("snap: cannot encode at version %d (supported: %d..%d)", ver, oldVersion, version)
	}
	if ver < 3 && len(s.Merged) > 0 {
		return nil, fmt.Errorf("snap: merged-frontier snapshots require wire version 3 (asked for %d)", ver)
	}
	vars := b.Vars()
	t := &exprTable{idx: make(map[*expr.Expr]uint64, 1024), nv: len(vars)}
	for i, v := range vars {
		t.idx[v] = uint64(i)
	}
	for si := range s.States {
		t.collectImage(&s.States[si])
	}
	for mi := range s.Merged {
		mr := &s.Merged[mi]
		t.collectImage(&mr.Rep)
		for _, mm := range mr.Members {
			for _, p := range mm.Subs {
				t.collect(p.Key)
				t.collect(p.Val)
			}
		}
	}
	for _, pw := range s.Pages {
		if len(pw) != vm.PageWords {
			return nil, fmt.Errorf("snap: page with %d words, want %d", len(pw), vm.PageWords)
		}
		for _, wd := range pw {
			t.collect(wd)
		}
	}
	for _, v := range s.Violations {
		t.collect(v.Cond)
	}

	w := &writer{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, magic...)
	w.byte(ver)
	w.u64(uint64(s.Algorithm))
	w.u64(uint64(s.K))
	w.str(s.Topology)
	w.u64(s.Clock)
	w.u64(s.Events)
	w.u64(uint64(s.PeakStates))
	w.i64(s.PeakMem)
	w.i64(int64(s.PriorWall))
	w.u64(s.NextStateID)
	w.u64(s.Instructions)
	w.u64(s.Forks)

	w.u64(uint64(len(vars)))
	for _, v := range vars {
		w.str(v.VarName())
		w.byte(byte(v.Width()))
	}
	w.u64(uint64(len(t.nodes)))
	for _, e := range t.nodes {
		w.byte(byte(e.Kind()))
		w.byte(byte(e.Width()))
		if e.IsConst() {
			w.u64(e.ConstVal())
			continue
		}
		for i := 0; i < 3; i++ {
			a := e.Arg(i)
			if a == nil {
				break
			}
			w.u64(t.idx[a])
		}
	}

	w.u64(uint64(len(s.Pages)))
	for _, pw := range s.Pages {
		nset := 0
		for _, wd := range pw {
			if wd != nil {
				nset++
			}
		}
		w.u64(uint64(nset))
		for slot, wd := range pw {
			if wd != nil {
				w.u64(uint64(slot))
				w.ref(t, wd)
			}
		}
	}

	w.u64(uint64(len(s.States)))
	for si := range s.States {
		if err := encodeState(w, t, &s.States[si], len(s.Pages)); err != nil {
			return nil, err
		}
	}
	if err := encodeMapper(w, s.Mapper); err != nil {
		return nil, err
	}

	w.u64(uint64(len(s.Samples)))
	for _, sm := range s.Samples {
		w.i64(int64(sm.Wall))
		w.u64(sm.VirtualTime)
		w.i64(int64(sm.States))
		w.i64(int64(sm.Groups))
		w.i64(sm.MemBytes)
		w.u64(sm.Instructions)
		w.i64(sm.SolverQueries)
		w.i64(sm.QueriesSliced)
		w.i64(sm.GatesElided)
		if ver >= 3 {
			w.i64(int64(sm.MergedStates))
			w.u64(sm.MergeCandidates)
			w.u64(sm.MergeRejects)
		}
	}

	w.u64(uint64(len(s.Violations)))
	for _, v := range s.Violations {
		w.i64(int64(v.Node))
		w.u64(v.Time)
		w.str(v.Msg)
		w.u64(v.StateID)
		w.ref(t, v.Cond)
		names := make([]string, 0, len(v.Model))
		for name := range v.Model {
			names = append(names, name)
		}
		sort.Strings(names)
		w.u64(uint64(len(names)))
		for _, name := range names {
			w.str(name)
			w.u64(v.Model[name])
		}
	}

	if ver >= 3 {
		w.u64(uint64(len(s.Merged)))
		for mi := range s.Merged {
			mr := &s.Merged[mi]
			if len(mr.Members) < 2 {
				return nil, fmt.Errorf("snap: merged rep %d with %d members", mr.Rep.ID, len(mr.Members))
			}
			if err := encodeState(w, t, &mr.Rep, len(s.Pages)); err != nil {
				return nil, err
			}
			w.u64(uint64(len(mr.Members)))
			for _, mm := range mr.Members {
				w.u64(mm.ID)
				w.u64(mm.StepsBase)
				w.u64(mm.Carried)
				w.u64(uint64(len(mm.Subs)))
				for _, p := range mm.Subs {
					w.ref(t, p.Key)
					w.ref(t, p.Val)
				}
			}
		}
	}

	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], fnv64a(w.buf))
	return append(w.buf, sum[:]...), nil
}

func encodeState(w *writer, t *exprTable, img *vm.StateImage, npages int) error {
	if len(img.Regs) != isa.NumRegs {
		return fmt.Errorf("snap: state %d with %d registers", img.ID, len(img.Regs))
	}
	w.u64(img.ID)
	w.i64(int64(img.Node))
	for _, r := range img.Regs {
		w.ref(t, r)
	}
	w.u64(uint64(len(img.Frames)))
	for _, fr := range img.Frames {
		w.i64(int64(fr.Fn))
		w.i64(int64(fr.PC))
	}
	w.i64(int64(img.Fn))
	w.i64(int64(img.PC))
	w.byte(byte(img.Status))
	w.bool(img.HasErr)
	if img.HasErr {
		w.str(img.ErrMsg)
	}
	w.u64(uint64(len(img.PathCond)))
	for _, c := range img.PathCond {
		w.ref(t, c)
	}
	w.u64(uint64(len(img.Events)))
	for _, ev := range img.Events {
		w.u64(ev.Time)
		w.byte(byte(ev.Kind))
		w.i64(int64(ev.Fn))
		w.ref(t, ev.Arg)
		w.u64(uint64(ev.Src))
		w.u64(uint64(len(ev.Data)))
		for _, d := range ev.Data {
			w.ref(t, d)
		}
	}
	w.u64(uint64(len(img.Hist)))
	for _, h := range img.Hist {
		w.byte(byte(h.Dir))
		w.u64(uint64(h.Peer))
		w.u64(h.Time)
		w.u64(uint64(h.Seq))
		w.u64(h.Payload)
		w.u64(h.SenderFP)
	}
	w.u64(uint64(len(img.Trace)))
	for _, tr := range img.Trace {
		w.u64(tr.Time)
		w.str(tr.Msg)
		w.ref(t, tr.Val)
	}
	w.u64(uint64(img.SendSeq))
	w.u64(uint64(img.RecvSeq))
	w.u64(uint64(img.SymSeq))
	w.u64(img.Steps)
	w.u64(uint64(len(img.Pages)))
	for _, pr := range img.Pages {
		if pr.Page < 0 || pr.Page >= npages {
			return fmt.Errorf("snap: state %d references page %d of %d", img.ID, pr.Page, npages)
		}
		w.u64(uint64(pr.MemIndex))
		w.u64(uint64(pr.Page))
	}
	return nil
}

func encodeMapper(w *writer, m *core.MapperSnapshot) error {
	w.u64(uint64(m.Algorithm))
	w.u64(uint64(m.K))
	switch m.Algorithm {
	case core.COBAlgorithm:
		w.u64(uint64(len(m.Scenarios)))
		for _, row := range m.Scenarios {
			if len(row) != m.K {
				return fmt.Errorf("snap: COB dscenario with %d nodes, want %d", len(row), m.K)
			}
			for _, id := range row {
				w.u64(id)
			}
		}
	case core.COWAlgorithm:
		w.u64(uint64(len(m.DStates)))
		for _, ds := range m.DStates {
			if len(ds) != m.K {
				return fmt.Errorf("snap: COW dstate with %d nodes, want %d", len(ds), m.K)
			}
			for _, bucket := range ds {
				w.u64(uint64(len(bucket)))
				for _, id := range bucket {
					w.u64(id)
				}
			}
		}
	case core.SDSAlgorithm:
		w.u64(uint64(m.NextDSID))
		w.u64(uint64(len(m.VDStates)))
		for _, d := range m.VDStates {
			if len(d.ByNode) != m.K {
				return fmt.Errorf("snap: SDS dstate with %d nodes, want %d", len(d.ByNode), m.K)
			}
			w.u64(uint64(d.ID))
			for _, bucket := range d.ByNode {
				w.u64(uint64(len(bucket)))
				for _, id := range bucket {
					w.u64(id)
				}
			}
		}
		w.u64(uint64(len(m.Supers)))
		for _, s := range m.Supers {
			w.u64(s.StateID)
			w.u64(uint64(len(s.DStateIDs)))
			for _, id := range s.DStateIDs {
				w.u64(uint64(id))
			}
		}
	default:
		return fmt.Errorf("snap: mapper snapshot with unknown algorithm %d", m.Algorithm)
	}
	return nil
}

// --- decoding ----------------------------------------------------------------

type reader struct {
	data []byte
	pos  int
}

func (r *reader) corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s (offset %d)", ErrCorrupt, fmt.Sprintf(format, args...), r.pos)
}

func (r *reader) remaining() int { return len(r.data) - r.pos }

func (r *reader) u64() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, r.corrupt("truncated uvarint")
	}
	r.pos += n
	return v, nil
}

func (r *reader) i64() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, r.corrupt("truncated varint")
	}
	r.pos += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, r.corrupt("truncated byte")
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) bool() (bool, error) {
	b, err := r.byte()
	if err != nil {
		return false, err
	}
	if b > 1 {
		return false, r.corrupt("bool byte %d", b)
	}
	return b == 1, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u64()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", r.corrupt("string of %d bytes with %d left", n, r.remaining())
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// count reads an element count and bounds it by the bytes remaining (each
// element takes at least one encoded byte), so a corrupt count cannot
// trigger a huge allocation.
func (r *reader) count() (int, error) {
	n, err := r.u64()
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining()) {
		return 0, r.corrupt("count %d with %d bytes left", n, r.remaining())
	}
	return int(n), nil
}

// signedInt reads a varint that must fit the platform int.
func (r *reader) signedInt() (int, error) {
	v, err := r.i64()
	if err != nil {
		return 0, err
	}
	if v < int64(minInt) || v > int64(maxInt) {
		return 0, r.corrupt("integer %d out of range", v)
	}
	return int(v), nil
}

// unsignedInt reads a uvarint that must fit a non-negative int.
func (r *reader) unsignedInt() (int, error) {
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	if v > uint64(maxInt) {
		return 0, r.corrupt("integer %d out of range", v)
	}
	return int(v), nil
}

const (
	maxInt = int(^uint(0) >> 1)
	minInt = -maxInt - 1
)

// Decode parses a snapshot. b should be a fresh builder for the resumed
// run's context: all of the snapshot's variables are recreated in their
// original creation order, so variables created after the resume receive
// the same ids they would have in an uninterrupted run. Any failure wraps
// ErrCorrupt.
func Decode(data []byte, b *expr.Builder) (*Snapshot, error) {
	if len(data) < len(magic)+1+8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any snapshot", ErrCorrupt, len(data))
	}
	body := data[:len(data)-8]
	want := binary.LittleEndian.Uint64(data[len(data)-8:])
	if fnv64a(body) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := &reader{data: body}
	for _, c := range magic {
		got, err := r.byte()
		if err != nil {
			return nil, err
		}
		if got != c {
			return nil, r.corrupt("bad magic")
		}
	}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver < oldVersion || ver > version {
		return nil, r.corrupt("unsupported version %d (this reader speaks %d..%d)", ver, oldVersion, version)
	}

	s := &Snapshot{}
	if v, err := r.u64(); err != nil {
		return nil, err
	} else {
		s.Algorithm = core.Algorithm(v)
	}
	if s.Algorithm < core.COBAlgorithm || s.Algorithm > core.SDSAlgorithm {
		return nil, r.corrupt("algorithm %d", s.Algorithm)
	}
	k, err := r.count()
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, r.corrupt("k=%d", k)
	}
	s.K = k
	if s.Topology, err = r.str(); err != nil {
		return nil, err
	}
	if s.Clock, err = r.u64(); err != nil {
		return nil, err
	}
	if s.Events, err = r.u64(); err != nil {
		return nil, err
	}
	peakStates, err := r.u64()
	if err != nil {
		return nil, err
	}
	s.PeakStates = int(peakStates)
	if s.PeakMem, err = r.i64(); err != nil {
		return nil, err
	}
	wall, err := r.i64()
	if err != nil {
		return nil, err
	}
	if wall < 0 {
		return nil, r.corrupt("negative prior wall time")
	}
	s.PriorWall = time.Duration(wall)
	if s.NextStateID, err = r.u64(); err != nil {
		return nil, err
	}
	if s.Instructions, err = r.u64(); err != nil {
		return nil, err
	}
	if s.Forks, err = r.u64(); err != nil {
		return nil, err
	}

	exprs, err := decodeExprs(r, b)
	if err != nil {
		return nil, err
	}
	// getRef resolves a nilable reference (0 = nil, otherwise index+1).
	getRef := func() (*expr.Expr, error) {
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		if v == 0 {
			return nil, nil
		}
		if v-1 >= uint64(len(exprs)) {
			return nil, r.corrupt("expression reference %d of %d", v-1, len(exprs))
		}
		return exprs[v-1], nil
	}
	mustRef := func() (*expr.Expr, error) {
		e, err := getRef()
		if err != nil {
			return nil, err
		}
		if e == nil {
			return nil, r.corrupt("nil expression where one is required")
		}
		return e, nil
	}

	np, err := r.count()
	if err != nil {
		return nil, err
	}
	s.Pages = make([][]*expr.Expr, np)
	for i := range s.Pages {
		nset, err := r.count()
		if err != nil {
			return nil, err
		}
		if nset > vm.PageWords {
			return nil, r.corrupt("page with %d set words", nset)
		}
		words := make([]*expr.Expr, vm.PageWords)
		last := -1
		for j := 0; j < nset; j++ {
			slot, err := r.u64()
			if err != nil {
				return nil, err
			}
			if slot >= vm.PageWords || int(slot) <= last {
				return nil, r.corrupt("page slot %d out of order", slot)
			}
			last = int(slot)
			if words[slot], err = mustRef(); err != nil {
				return nil, err
			}
		}
		s.Pages[i] = words
	}

	ns, err := r.count()
	if err != nil {
		return nil, err
	}
	s.States = make([]vm.StateImage, 0, ns)
	for i := 0; i < ns; i++ {
		img, err := decodeState(r, getRef, mustRef, np)
		if err != nil {
			return nil, err
		}
		s.States = append(s.States, img)
	}

	if s.Mapper, err = decodeMapper(r); err != nil {
		return nil, err
	}

	nsamples, err := r.count()
	if err != nil {
		return nil, err
	}
	s.Samples = make([]metrics.Sample, 0, nsamples)
	for i := 0; i < nsamples; i++ {
		var sm metrics.Sample
		wall, err := r.i64()
		if err != nil {
			return nil, err
		}
		sm.Wall = time.Duration(wall)
		if sm.VirtualTime, err = r.u64(); err != nil {
			return nil, err
		}
		if sm.States, err = r.signedInt(); err != nil {
			return nil, err
		}
		if sm.Groups, err = r.signedInt(); err != nil {
			return nil, err
		}
		if sm.MemBytes, err = r.i64(); err != nil {
			return nil, err
		}
		if sm.Instructions, err = r.u64(); err != nil {
			return nil, err
		}
		if sm.SolverQueries, err = r.i64(); err != nil {
			return nil, err
		}
		if sm.QueriesSliced, err = r.i64(); err != nil {
			return nil, err
		}
		if sm.GatesElided, err = r.i64(); err != nil {
			return nil, err
		}
		if ver >= 3 {
			if sm.MergedStates, err = r.signedInt(); err != nil {
				return nil, err
			}
			if sm.MergeCandidates, err = r.u64(); err != nil {
				return nil, err
			}
			if sm.MergeRejects, err = r.u64(); err != nil {
				return nil, err
			}
		}
		s.Samples = append(s.Samples, sm)
	}

	nviol, err := r.count()
	if err != nil {
		return nil, err
	}
	s.Violations = make([]*vm.Violation, 0, nviol)
	for i := 0; i < nviol; i++ {
		v := &vm.Violation{}
		if v.Node, err = r.signedInt(); err != nil {
			return nil, err
		}
		if v.Time, err = r.u64(); err != nil {
			return nil, err
		}
		if v.Msg, err = r.str(); err != nil {
			return nil, err
		}
		if v.StateID, err = r.u64(); err != nil {
			return nil, err
		}
		if v.Cond, err = getRef(); err != nil {
			return nil, err
		}
		nmodel, err := r.count()
		if err != nil {
			return nil, err
		}
		v.Model = make(expr.Env, nmodel)
		for j := 0; j < nmodel; j++ {
			name, err := r.str()
			if err != nil {
				return nil, err
			}
			if _, dup := v.Model[name]; dup {
				return nil, r.corrupt("model variable %q twice", name)
			}
			if v.Model[name], err = r.u64(); err != nil {
				return nil, err
			}
		}
		s.Violations = append(s.Violations, v)
	}

	if ver >= 3 {
		nreps, err := r.count()
		if err != nil {
			return nil, err
		}
		s.Merged = make([]MergedRep, 0, nreps)
		for i := 0; i < nreps; i++ {
			rep, err := decodeState(r, getRef, mustRef, np)
			if err != nil {
				return nil, err
			}
			mr := MergedRep{Rep: rep}
			nmem, err := r.count()
			if err != nil {
				return nil, err
			}
			if nmem < 2 {
				return nil, r.corrupt("merged rep %d with %d members", rep.ID, nmem)
			}
			var prev uint64
			for j := 0; j < nmem; j++ {
				var mm MergedMember
				if mm.ID, err = r.u64(); err != nil {
					return nil, err
				}
				if j == 0 && mm.ID != rep.ID {
					return nil, r.corrupt("merged rep %d does not share its first member's id %d", rep.ID, mm.ID)
				}
				if j > 0 && mm.ID <= prev {
					return nil, r.corrupt("merged rep %d member ids out of order", rep.ID)
				}
				prev = mm.ID
				if mm.StepsBase, err = r.u64(); err != nil {
					return nil, err
				}
				if mm.Carried, err = r.u64(); err != nil {
					return nil, err
				}
				nsubs, err := r.count()
				if err != nil {
					return nil, err
				}
				for k := 0; k < nsubs; k++ {
					var p SubPairImage
					if p.Key, err = mustRef(); err != nil {
						return nil, err
					}
					if p.Val, err = mustRef(); err != nil {
						return nil, err
					}
					mm.Subs = append(mm.Subs, p)
				}
				mr.Members = append(mr.Members, mm)
			}
			s.Merged = append(s.Merged, mr)
		}
	}

	if r.remaining() != 0 {
		if ver < 3 {
			return nil, r.corrupt("%d trailing bytes — merged-frontier snapshots require wire version 3, this snapshot claims version %d", r.remaining(), ver)
		}
		return nil, r.corrupt("%d trailing bytes", r.remaining())
	}
	return s, nil
}

func decodeExprs(r *reader, b *expr.Builder) ([]*expr.Expr, error) {
	nv, err := r.count()
	if err != nil {
		return nil, err
	}
	exprs := make([]*expr.Expr, 0, nv)
	for i := 0; i < nv; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		width, err := r.byte()
		if err != nil {
			return nil, err
		}
		if width < 1 || width > 64 {
			return nil, r.corrupt("variable %q of width %d", name, width)
		}
		if prev, ok := b.LookupVar(name); ok && prev.Width() != int(width) {
			// Var would panic on a width conflict; a corrupt snapshot must
			// not be able to trigger that.
			return nil, r.corrupt("variable %q redeclared at width %d", name, width)
		}
		exprs = append(exprs, b.Var(name, int(width)))
	}
	nn, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nn; i++ {
		kb, err := r.byte()
		if err != nil {
			return nil, err
		}
		kind := expr.Kind(kb)
		width, err := r.byte()
		if err != nil {
			return nil, err
		}
		arity, ok := expr.KindArity(kind)
		if !ok || kind == expr.KindVar {
			return nil, r.corrupt("node of kind %d", kind)
		}
		var val uint64
		var args []*expr.Expr
		if kind == expr.KindConst {
			if val, err = r.u64(); err != nil {
				return nil, err
			}
		} else {
			args = make([]*expr.Expr, arity)
			for j := range args {
				ref, err := r.u64()
				if err != nil {
					return nil, err
				}
				// Topological order: operands strictly precede users.
				if ref >= uint64(len(exprs)) {
					return nil, r.corrupt("forward expression reference %d", ref)
				}
				args[j] = exprs[ref]
			}
		}
		e, err := b.RawNode(kind, int(width), val, args...)
		if err != nil {
			return nil, r.corrupt("%v", err)
		}
		exprs = append(exprs, e)
	}
	return exprs, nil
}

func decodeState(r *reader, getRef, mustRef func() (*expr.Expr, error), npages int) (vm.StateImage, error) {
	var img vm.StateImage
	var err error
	if img.ID, err = r.u64(); err != nil {
		return img, err
	}
	if img.Node, err = r.signedInt(); err != nil {
		return img, err
	}
	if img.Node < 0 {
		return img, r.corrupt("state %d on node %d", img.ID, img.Node)
	}
	img.Regs = make([]*expr.Expr, isa.NumRegs)
	for i := range img.Regs {
		if img.Regs[i], err = getRef(); err != nil {
			return img, err
		}
	}
	nframes, err := r.count()
	if err != nil {
		return img, err
	}
	for i := 0; i < nframes; i++ {
		var fr vm.FrameImage
		if fr.Fn, err = r.signedInt(); err != nil {
			return img, err
		}
		if fr.PC, err = r.signedInt(); err != nil {
			return img, err
		}
		img.Frames = append(img.Frames, fr)
	}
	if img.Fn, err = r.signedInt(); err != nil {
		return img, err
	}
	if img.PC, err = r.signedInt(); err != nil {
		return img, err
	}
	status, err := r.byte()
	if err != nil {
		return img, err
	}
	img.Status = vm.Status(status)
	if img.HasErr, err = r.bool(); err != nil {
		return img, err
	}
	if img.HasErr {
		if img.ErrMsg, err = r.str(); err != nil {
			return img, err
		}
	}
	ncond, err := r.count()
	if err != nil {
		return img, err
	}
	for i := 0; i < ncond; i++ {
		c, err := mustRef()
		if err != nil {
			return img, err
		}
		if c.Width() != 1 {
			return img, r.corrupt("path constraint of width %d", c.Width())
		}
		img.PathCond = append(img.PathCond, c)
	}
	nevents, err := r.count()
	if err != nil {
		return img, err
	}
	for i := 0; i < nevents; i++ {
		var ev vm.EventImage
		if ev.Time, err = r.u64(); err != nil {
			return img, err
		}
		kind, err := r.byte()
		if err != nil {
			return img, err
		}
		ev.Kind = vm.EventKind(kind)
		if ev.Fn, err = r.signedInt(); err != nil {
			return img, err
		}
		if ev.Arg, err = getRef(); err != nil {
			return img, err
		}
		src, err := r.u64()
		if err != nil {
			return img, err
		}
		if src > uint64(^uint32(0)) {
			return img, r.corrupt("event source %d", src)
		}
		ev.Src = uint32(src)
		ndata, err := r.count()
		if err != nil {
			return img, err
		}
		for j := 0; j < ndata; j++ {
			d, err := mustRef()
			if err != nil {
				return img, err
			}
			ev.Data = append(ev.Data, d)
		}
		img.Events = append(img.Events, ev)
	}
	nhist, err := r.count()
	if err != nil {
		return img, err
	}
	for i := 0; i < nhist; i++ {
		var h vm.HistEntry
		dir, err := r.byte()
		if err != nil {
			return img, err
		}
		if dir < byte(vm.DirSent) || dir > byte(vm.DirRecv) {
			return img, r.corrupt("history direction %d", dir)
		}
		h.Dir = vm.Dir(dir)
		peer, err := r.u64()
		if err != nil {
			return img, err
		}
		if peer > uint64(^uint32(0)) {
			return img, r.corrupt("history peer %d", peer)
		}
		h.Peer = uint32(peer)
		if h.Time, err = r.u64(); err != nil {
			return img, err
		}
		seq, err := r.u64()
		if err != nil {
			return img, err
		}
		if seq > uint64(^uint32(0)) {
			return img, r.corrupt("history sequence %d", seq)
		}
		h.Seq = uint32(seq)
		if h.Payload, err = r.u64(); err != nil {
			return img, err
		}
		if h.SenderFP, err = r.u64(); err != nil {
			return img, err
		}
		img.Hist = append(img.Hist, h)
	}
	ntrace, err := r.count()
	if err != nil {
		return img, err
	}
	for i := 0; i < ntrace; i++ {
		var tr vm.TraceEntry
		if tr.Time, err = r.u64(); err != nil {
			return img, err
		}
		if tr.Msg, err = r.str(); err != nil {
			return img, err
		}
		if tr.Val, err = getRef(); err != nil {
			return img, err
		}
		img.Trace = append(img.Trace, tr)
	}
	for _, dst := range []*uint32{&img.SendSeq, &img.RecvSeq, &img.SymSeq} {
		v, err := r.u64()
		if err != nil {
			return img, err
		}
		if v > uint64(^uint32(0)) {
			return img, r.corrupt("sequence counter %d", v)
		}
		*dst = uint32(v)
	}
	if img.Steps, err = r.u64(); err != nil {
		return img, err
	}
	nrefs, err := r.count()
	if err != nil {
		return img, err
	}
	for i := 0; i < nrefs; i++ {
		var pr vm.PageRef
		idx, err := r.u64()
		if err != nil {
			return img, err
		}
		if idx > uint64(^uint32(0)) {
			return img, r.corrupt("page index %d", idx)
		}
		pr.MemIndex = uint32(idx)
		page, err := r.u64()
		if err != nil {
			return img, err
		}
		if page >= uint64(npages) {
			return img, r.corrupt("page reference %d of %d", page, npages)
		}
		pr.Page = int(page)
		img.Pages = append(img.Pages, pr)
	}
	return img, nil
}

func decodeMapper(r *reader) (*core.MapperSnapshot, error) {
	m := &core.MapperSnapshot{}
	algo, err := r.u64()
	if err != nil {
		return nil, err
	}
	m.Algorithm = core.Algorithm(algo)
	k, err := r.count()
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, r.corrupt("mapper with k=%d", k)
	}
	m.K = k
	readBucket := func() ([]uint64, error) {
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		ids := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			id, err := r.u64()
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		return ids, nil
	}
	switch m.Algorithm {
	case core.COBAlgorithm:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			row := make([]uint64, k)
			for node := range row {
				if row[node], err = r.u64(); err != nil {
					return nil, err
				}
			}
			m.Scenarios = append(m.Scenarios, row)
		}
	case core.COWAlgorithm:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			ds := make([][]uint64, k)
			for node := range ds {
				if ds[node], err = readBucket(); err != nil {
					return nil, err
				}
			}
			m.DStates = append(m.DStates, ds)
		}
	case core.SDSAlgorithm:
		if m.NextDSID, err = r.unsignedInt(); err != nil {
			return nil, err
		}
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			d := core.VDStateImage{ByNode: make([][]uint64, k)}
			if d.ID, err = r.unsignedInt(); err != nil {
				return nil, err
			}
			for node := range d.ByNode {
				if d.ByNode[node], err = readBucket(); err != nil {
					return nil, err
				}
			}
			m.VDStates = append(m.VDStates, d)
		}
		nsup, err := r.count()
		if err != nil {
			return nil, err
		}
		for i := 0; i < nsup; i++ {
			var s core.SuperImage
			if s.StateID, err = r.u64(); err != nil {
				return nil, err
			}
			nds, err := r.count()
			if err != nil {
				return nil, err
			}
			for j := 0; j < nds; j++ {
				id, err := r.unsignedInt()
				if err != nil {
					return nil, err
				}
				s.DStateIDs = append(s.DStateIDs, id)
			}
			m.Supers = append(m.Supers, s)
		}
	default:
		return nil, r.corrupt("mapper algorithm %d", m.Algorithm)
	}
	return m, nil
}

func fnv64a(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range data {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
