package trace_test

import (
	"testing"

	"sde/internal/core"
	"sde/internal/sim"
	"sde/internal/trace"
	"sde/internal/vm"
)

// TestExplodedDScenariosAreConflictFree is the §II-B ground-truth oracle:
// every dscenario enumerated from any mapping algorithm's final structure
// must be free of direct conflicts.
func TestExplodedDScenariosAreConflictFree(t *testing.T) {
	for _, algo := range []core.Algorithm{core.COBAlgorithm, core.COWAlgorithm, core.SDSAlgorithm} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := lineCollect(t, algo, sim.FailurePlan{
				DropFirst: sim.NodeSet([]int{0, 1, 2}),
			})
			res := runScenario(t, cfg)
			scenarios := res.Mapper.Explode(0)
			if len(scenarios) < 4 {
				t.Fatalf("degenerate: only %d dscenarios", len(scenarios))
			}
			for i, sc := range scenarios {
				if err := trace.CheckDScenario(sc); err != nil {
					t.Fatalf("dscenario %d: %v", i, err)
				}
			}
		})
	}
}

// TestMixedDScenarioConflicts checks the negative direction: combining
// states from different dscenarios produces a direct conflict when their
// communication histories disagree.
func TestMixedDScenarioConflicts(t *testing.T) {
	cfg := lineCollect(t, core.COBAlgorithm, sim.FailurePlan{
		DropFirst: sim.NodeSet([]int{1}),
	})
	res := runScenario(t, cfg)
	scenarios := res.Mapper.Explode(0)
	if len(scenarios) != 2 {
		t.Fatalf("dscenarios = %d, want 2 (drop / no drop)", len(scenarios))
	}
	// In the drop scenario node 1 never forwards the first packet, so
	// node 0's state differs. Swapping node 0's states across the two
	// dscenarios must produce a direct conflict between nodes 0 and 1.
	mixed := append([]*vm.State(nil), scenarios[0]...)
	mixed[0] = scenarios[1][0]
	if err := trace.CheckDScenario(mixed); err == nil {
		t.Error("mixed dscenario passed the conflict check")
	}
	// The pairwise primitive agrees.
	conflict, desc := trace.DirectConflict(mixed[0], mixed[1])
	if !conflict {
		t.Error("DirectConflict missed the contradiction")
	} else if desc == "" {
		t.Error("DirectConflict returned no description")
	}
}

func TestDirectConflictSymmetric(t *testing.T) {
	cfg := lineCollect(t, core.SDSAlgorithm, sim.FailurePlan{
		DropFirst: sim.NodeSet([]int{1}),
	})
	res := runScenario(t, cfg)
	scenarios := res.Mapper.Explode(0)
	a := scenarios[0]
	b := scenarios[1]
	// Conflicting pair must conflict in both argument orders.
	c1, _ := trace.DirectConflict(a[0], b[1])
	c2, _ := trace.DirectConflict(b[1], a[0])
	if c1 != c2 {
		t.Error("DirectConflict is not symmetric")
	}
	// Conflict-free pair in both orders.
	c1, _ = trace.DirectConflict(a[0], a[1])
	c2, _ = trace.DirectConflict(a[1], a[0])
	if c1 || c2 {
		t.Error("consistent pair reported as conflicting")
	}
}

func TestCheckDScenarioValidatesShape(t *testing.T) {
	cfg := lineCollect(t, core.SDSAlgorithm, sim.FailurePlan{})
	res := runScenario(t, cfg)
	sc := res.Mapper.Explode(1)[0]
	// Swap two slots: node ids no longer match their index.
	bad := []*vm.State{sc[1], sc[0], sc[2]}
	if err := trace.CheckDScenario(bad); err == nil {
		t.Error("mis-indexed dscenario accepted")
	}
}
