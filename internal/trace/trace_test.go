package trace_test

import (
	"strings"
	"testing"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/trace"
	"sde/internal/vm"
)

// lineCollect builds the standard 3-node line collect configuration.
func lineCollect(t *testing.T, algo core.Algorithm, failures sim.FailurePlan) sim.Config {
	t.Helper()
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := rime.CollectConfig{Source: 2, Sink: 0, Route: []int{2, 1, 0}, Interval: 10, Packets: 2}
	nodeInit, err := cfg.NodeInit(3)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Topo:      sim.NewLine(3),
		Prog:      prog,
		Algorithm: algo,
		Horizon:   200,
		NodeInit:  nodeInit,
		Failures:  failures,
	}
}

func runScenario(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateTestCases(t *testing.T) {
	cfg := lineCollect(t, core.SDSAlgorithm, sim.FailurePlan{
		DropFirst: sim.NodeSet([]int{0, 1}),
	})
	res := runScenario(t, cfg)
	tcs, err := trace.FromResult(res, 0)
	if err != nil {
		t.Fatalf("FromResult: %v", err)
	}
	if int64(len(tcs)) != res.DScenarios.Int64() {
		t.Fatalf("test cases = %d, dscenarios = %v", len(tcs), res.DScenarios)
	}
	// Each test case must assign a distinct combination of the drop
	// decisions that appear in its constraints.
	seen := map[string]bool{}
	for _, tc := range tcs {
		key := ""
		for _, name := range tc.Vars() {
			key += name + "=" + string(rune('0'+tc.Inputs[name])) + ";"
		}
		if seen[key] {
			t.Errorf("duplicate test case inputs: %s", key)
		}
		seen[key] = true
		if len(tc.Nodes) != 3 {
			t.Errorf("test case %d snapshots %d nodes, want 3", tc.Index, len(tc.Nodes))
		}
	}
}

func TestStreamLimit(t *testing.T) {
	cfg := lineCollect(t, core.COWAlgorithm, sim.FailurePlan{
		DropFirst: sim.NodeSet([]int{0, 1}),
	})
	res := runScenario(t, cfg)
	n := 0
	err := trace.Stream(res.Mapper, res.Ctx, 2, func(tc trace.TestCase) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("streamed %d test cases, want 2", n)
	}
}

func TestReplayDeterministic(t *testing.T) {
	symCfg := lineCollect(t, core.SDSAlgorithm, sim.FailurePlan{
		DropFirst: sim.NodeSet([]int{1}),
	})
	res := runScenario(t, symCfg)
	tcs, err := trace.FromResult(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tcs) != 2 {
		t.Fatalf("test cases = %d, want 2 (drop / no drop)", len(tcs))
	}
	for _, tc := range tcs {
		rep, err := trace.Replay(symCfg, tc.Inputs)
		if err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if rep.FinalStates != 3 {
			t.Fatalf("replay produced %d states, want 3 (one per node)", rep.FinalStates)
		}
		// The replayed sink must match the dscenario's sink behaviour:
		// with the drop (var = 0) the first packet is lost, so only one
		// packet is delivered; without it both arrive.
		var sink *vm.State
		rep.Mapper.ForEachState(func(s *vm.State) {
			if s.NodeID() == 0 {
				sink = s
			}
		})
		delivered := sink.LoadWord(rime.AddrDelivered).ConstVal()
		want := uint64(2)
		if tc.Inputs["drop_n1_r0"] == 0 {
			want = 1
		}
		if delivered != want {
			t.Errorf("replay of %v delivered %d packets, want %d",
				tc.Inputs, delivered, want)
		}
	}
}

// TestReplayMatchesSymbolicFingerprint replays each test case and checks
// that the concrete final states coincide with one of the exploded
// symbolic dscenarios, node for node, in observable behaviour.
func TestReplayMatchesSymbolicBehaviour(t *testing.T) {
	symCfg := lineCollect(t, core.SDSAlgorithm, sim.FailurePlan{
		DropFirst: sim.NodeSet([]int{0, 1}),
	})
	res := runScenario(t, symCfg)
	scenarios := res.Mapper.Explode(0)
	tcs, err := trace.FromResult(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tcs) != len(scenarios) {
		t.Fatalf("%d test cases vs %d dscenarios", len(tcs), len(scenarios))
	}
	for i, tc := range tcs {
		rep, err := trace.Replay(symCfg, tc.Inputs)
		if err != nil {
			t.Fatal(err)
		}
		var sinkConcrete *vm.State
		rep.Mapper.ForEachState(func(s *vm.State) {
			if s.NodeID() == 0 {
				sinkConcrete = s
			}
		})
		// Find the sink of the matching symbolic dscenario.
		sinkSym := scenarios[i][0]
		cDel := sinkConcrete.LoadWord(rime.AddrDelivered).ConstVal()
		sDel := sinkSym.LoadWord(rime.AddrDelivered).ConstVal()
		if cDel != sDel {
			t.Errorf("test case %d: concrete sink delivered %d, symbolic dscenario says %d",
				i, cDel, sDel)
		}
		if len(sinkConcrete.History()) != len(sinkSym.History()) {
			t.Errorf("test case %d: history lengths differ (%d vs %d)",
				i, len(sinkConcrete.History()), len(sinkSym.History()))
		}
	}
}

func TestReplayViolationReproduces(t *testing.T) {
	symCfg := lineCollect(t, core.SDSAlgorithm, sim.FailurePlan{
		DuplicateFirst: sim.NodeSet([]int{0}),
	})
	res := runScenario(t, symCfg)
	var hit *vm.Violation
	for _, v := range res.Violations {
		if strings.Contains(v.Msg, "sequence number regression") {
			hit = v
			break
		}
	}
	if hit == nil {
		t.Fatalf("no violation found: %+v", res.Violations)
	}
	ok, rep, err := trace.ReplayViolation(symCfg, hit)
	if err != nil {
		t.Fatalf("ReplayViolation: %v", err)
	}
	if !ok {
		t.Fatalf("violation did not reproduce; replay violations: %+v", rep.Violations)
	}
	// Flipping the decision to the no-failure side must NOT reproduce.
	clean := expr.Env{"dup_n0_r0": 1}
	rep2, err := trace.Replay(symCfg, clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Violations) != 0 {
		t.Errorf("no-failure replay still violates: %+v", rep2.Violations)
	}
}

// TestMinimizeWitness: a scenario with several armed failures where only
// the duplication at the sink causes the violation; minimisation must
// strip the irrelevant drop decisions from the witness.
func TestMinimizeWitness(t *testing.T) {
	symCfg := lineCollect(t, core.SDSAlgorithm, sim.FailurePlan{
		DuplicateFirst: sim.NodeSet([]int{0}),
		DropFirst:      sim.NodeSet([]int{2}), // irrelevant to the sink bug
	})
	res := runScenario(t, symCfg)
	var hit *vm.Violation
	for _, v := range res.Violations {
		if strings.Contains(v.Msg, "sequence number regression") {
			hit = v
			break
		}
	}
	if hit == nil {
		t.Fatalf("bug not found: %+v", res.Violations)
	}
	minimal, needed, err := trace.MinimizeWitness(symCfg, hit)
	if err != nil {
		t.Fatalf("MinimizeWitness: %v", err)
	}
	if len(needed) != 1 || needed[0] != "dup_n0_r0" {
		t.Fatalf("needed = %v, want exactly the duplication decision", needed)
	}
	if minimal["dup_n0_r0"] != 0 {
		t.Error("the load-bearing failure was disabled")
	}
	// Any drop decision present in the witness must have been flipped off.
	for name, v := range minimal {
		if strings.HasPrefix(name, "drop_") && v != 1 {
			t.Errorf("irrelevant failure %s left enabled", name)
		}
	}
	// The minimised witness still reproduces.
	ok, _, err := trace.ReplayViolation(symCfg, &vm.Violation{
		Node: hit.Node, Msg: hit.Msg, Model: minimal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("minimised witness does not reproduce the violation")
	}
}

func TestMinimizeWitnessRejectsNonReproducing(t *testing.T) {
	symCfg := lineCollect(t, core.SDSAlgorithm, sim.FailurePlan{
		DuplicateFirst: sim.NodeSet([]int{0}),
	})
	bogus := &vm.Violation{Node: 0, Msg: "nonexistent assertion", Model: expr.Env{}}
	if _, _, err := trace.MinimizeWitness(symCfg, bogus); err == nil {
		t.Error("non-reproducing witness accepted")
	}
}

func TestTestCaseString(t *testing.T) {
	tc := trace.TestCase{Index: 3, Inputs: expr.Env{"b": 1, "a": 0}}
	if got := tc.String(); got != "testcase 3: a=0 b=1" {
		t.Errorf("String() = %q", got)
	}
}
