package trace

import (
	"fmt"

	"sde/internal/vm"
)

// The paper's §II-B conflict definitions, as executable checks:
//
//	"Two states s, t are said to be in direct conflict if their
//	communication histories are contradictory, i.e., if s sent a packet
//	to node(t) that was not received by t, or if t received a packet
//	from node(s) which was not sent by s (and vice versa)."
//
// A dscenario — one state per node — is consistent iff no pair of its
// members is in direct conflict. The checker below is the ground-truth
// oracle for the state mapping algorithms: every dscenario they produce
// must pass it, and mixing states across dscenarios must generally fail.

// packetKey identifies one transmission between a node pair. Within a
// dscenario each node has one state, so (time, sender sequence number,
// payload hash) is unique per direction.
type packetKey struct {
	time    uint64
	seq     uint32
	payload uint64
}

// DirectConflict reports whether states s and t (of different nodes) have
// contradictory communication histories, and describes the first
// contradiction found.
func DirectConflict(s, t *vm.State) (bool, string) {
	if conflict, desc := halfConflict(s, t); conflict {
		return true, desc
	}
	return halfConflict(t, s)
}

// halfConflict checks the packets flowing from s to t: everything s sent
// to node(t) must have been received by t, and everything t received from
// node(s) must have been sent by s.
func halfConflict(s, t *vm.State) (bool, string) {
	sent := make(map[packetKey]int)
	for _, h := range s.History() {
		if h.Dir == vm.DirSent && int(h.Peer) == t.NodeID() {
			sent[packetKey{h.Time, h.Seq, h.Payload}]++
		}
	}
	recv := make(map[packetKey]int)
	for _, h := range t.History() {
		if h.Dir == vm.DirRecv && int(h.Peer) == s.NodeID() {
			recv[packetKey{h.Time, h.Seq, h.Payload}]++
		}
	}
	for k, n := range sent {
		if recv[k] != n {
			return true, fmt.Sprintf(
				"node %d sent packet (t=%d seq=%d) to node %d %d time(s), received %d time(s)",
				s.NodeID(), k.time, k.seq, t.NodeID(), n, recv[k])
		}
	}
	for k, n := range recv {
		if sent[k] != n {
			return true, fmt.Sprintf(
				"node %d received packet (t=%d seq=%d) from node %d %d time(s), sent %d time(s)",
				t.NodeID(), k.time, k.seq, s.NodeID(), n, sent[k])
		}
	}
	return false, ""
}

// CheckDScenario validates that a dscenario (one state per node, indexed
// by node id) is free of direct conflicts. It returns the first conflict
// found, or nil.
func CheckDScenario(states []*vm.State) error {
	for i, s := range states {
		if s.NodeID() != i {
			return fmt.Errorf("trace: slot %d holds state of node %d", i, s.NodeID())
		}
	}
	for i := 0; i < len(states); i++ {
		for j := i + 1; j < len(states); j++ {
			if conflict, desc := DirectConflict(states[i], states[j]); conflict {
				return fmt.Errorf("trace: direct conflict: %s", desc)
			}
		}
	}
	return nil
}
