// Package trace implements the post-processing stage of SDE: turning the
// compact symbolic representation of a finished run into concrete test
// cases, and replaying a test case as a deterministic concrete execution.
//
// This is the paper's §IV-C workflow: "If someone wants to gather the test
// cases for all nodes in all dscenarios, the compact systems'
// representation provided by the SDS algorithm has to be 'exploded' to the
// output of COB to generate concrete test case values. ... [this] can be
// done incrementally, i.e., by forking states for a dscenario, generating
// test cases, and deleting the states in one step."
package trace

import (
	"fmt"
	"sort"
	"strings"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/sim"
	"sde/internal/vm"
)

// NodeSnapshot captures one node's state within a dscenario.
type NodeSnapshot struct {
	Node        int
	StateID     uint64
	Constraints int // size of the state's path condition
	Receptions  int // received packets in the communication history
	Sends       int // sent packets in the communication history
}

// TestCase is a concrete input assignment that steers a concrete execution
// into one particular dscenario.
type TestCase struct {
	Index  int
	Inputs expr.Env // value per symbolic input (absent = don't care = 0)
	Nodes  []NodeSnapshot
}

// Vars lists the test case's input names in sorted order.
func (tc TestCase) Vars() []string {
	names := make([]string, 0, len(tc.Inputs))
	for name := range tc.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String renders the test case compactly for reports.
func (tc TestCase) String() string {
	s := fmt.Sprintf("testcase %d:", tc.Index)
	for _, name := range tc.Vars() {
		s += fmt.Sprintf(" %s=%d", name, tc.Inputs[name])
	}
	return s
}

// Stream explodes up to limit dscenarios (limit <= 0 = all) of a finished
// run and invokes fn once per dscenario with its solved test case. The
// enumeration is incremental (core.Mapper.ExplodeFunc): one dscenario is
// materialised, solved, and discarded at a time, so memory stays bounded
// regardless of the dscenario count — the paper's §VI plan.
func Stream(m core.Mapper[*vm.State], ctx *vm.Context, limit int, fn func(tc TestCase) error) error {
	var callbackErr error
	index := 0
	m.ExplodeFunc(limit, func(sc []*vm.State) bool {
		// The dscenario's combined path condition: the union of all
		// member constraints. Conflict-freedom makes it satisfiable.
		var combined []*expr.Expr
		nodes := make([]NodeSnapshot, 0, len(sc))
		for _, s := range sc {
			combined = append(combined, s.PathCond()...)
			recv, sent := 0, 0
			for _, h := range s.History() {
				if h.Dir == vm.DirRecv {
					recv++
				} else {
					sent++
				}
			}
			nodes = append(nodes, NodeSnapshot{
				Node:        s.NodeID(),
				StateID:     s.ID(),
				Constraints: len(s.PathCond()),
				Receptions:  recv,
				Sends:       sent,
			})
		}
		model, sat, err := ctx.Solver.Model(combined)
		if err != nil {
			callbackErr = fmt.Errorf("trace: dscenario %d: %w", index, err)
			return false
		}
		if !sat {
			callbackErr = fmt.Errorf("trace: dscenario %d has contradictory constraints", index)
			return false
		}
		if err := fn(TestCase{Index: index, Inputs: model, Nodes: nodes}); err != nil {
			callbackErr = err
			return false
		}
		index++
		return true
	})
	return callbackErr
}

// Generate collects up to limit test cases (limit <= 0 = all).
func Generate(m core.Mapper[*vm.State], ctx *vm.Context, limit int) ([]TestCase, error) {
	var out []TestCase
	err := Stream(m, ctx, limit, func(tc TestCase) error {
		out = append(out, tc)
		return nil
	})
	return out, err
}

// FromResult generates test cases from an engine result.
func FromResult(res *sim.Result, limit int) ([]TestCase, error) {
	return Generate(res.Mapper, res.Ctx, limit)
}

// Replay re-executes a scenario concretely under the given inputs: the
// same configuration, but symbolic choices resolved by the test case.
// Exactly one execution path is followed, yielding one state per node —
// the deterministic replay the paper's introduction motivates.
func Replay(cfg sim.Config, inputs expr.Env) (*sim.Result, error) {
	cfg.Replay = inputs
	cfg.CheckInvariants = false
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		return nil, fmt.Errorf("trace: replay: %w", err)
	}
	res, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("trace: replay: %w", err)
	}
	return res, nil
}

// ReplayViolation replays the concrete witness of a violation and reports
// whether the same assertion fires again.
func ReplayViolation(cfg sim.Config, v *vm.Violation) (reproduced bool, res *sim.Result, err error) {
	res, err = Replay(cfg, v.Model)
	if err != nil {
		return false, nil, err
	}
	for _, got := range res.Violations {
		if got.Msg == v.Msg && got.Node == v.Node {
			return true, res, nil
		}
	}
	return false, res, nil
}

// MinimizeWitness shrinks a violation's witness to the failure decisions
// that are actually needed to reproduce it: every failure-branch variable
// (value 0) is flipped to the no-failure side one at a time, and flips
// that still reproduce the violation are kept — one-minimal delta
// debugging over concrete replays. The result replays the violation with
// the fewest injected failures, sharpening the paper's "narrow down their
// root-causes" workflow.
//
// The returned environment contains the original witness with the
// unnecessary failures disabled (set to 1). needed lists the variables
// that remained on the failure branch.
func MinimizeWitness(cfg sim.Config, v *vm.Violation) (minimal expr.Env, needed []string, err error) {
	current := make(expr.Env, len(v.Model))
	for name, val := range v.Model {
		current[name] = val
	}
	reproduces := func(env expr.Env) (bool, error) {
		res, err := Replay(cfg, env)
		if err != nil {
			return false, err
		}
		for _, got := range res.Violations {
			if got.Msg == v.Msg && got.Node == v.Node {
				return true, nil
			}
		}
		return false, nil
	}
	ok, err := reproduces(current)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("trace: witness does not reproduce the violation")
	}
	// Deterministic flip order.
	names := make([]string, 0, len(current))
	for name, val := range current {
		if val == 0 && isFailureVar(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		current[name] = 1 // try the no-failure side
		ok, err := reproduces(current)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			current[name] = 0 // this failure is load-bearing
			needed = append(needed, name)
		}
	}
	return current, needed, nil
}

// isFailureVar recognises the failure-model decision variables by their
// engine-assigned name prefixes.
func isFailureVar(name string) bool {
	for _, prefix := range []string{"drop_n", "dup_n", "reboot_n"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
