package dist

// Depth-horizon partitioning over the wire: jobs with a depth horizon
// suspend leases at event boundaries, ship frontiers back as MsgSuspend,
// and fan continuation leases (MsgContLease) out to the fleet. The
// assembled report must match the in-process horizon-partitioned oracle
// bit-for-bit, including across a worker crash mid-continuation.

import (
	"context"
	"testing"
	"time"

	"sde"
)

// oracleDigestHorizon is the in-process ground truth for a
// depth-partitioned job: same spec, same (horizon, fanout) pair.
func oracleDigestHorizon(t *testing.T, spec sde.ScenarioSpec, bits, testCases int,
	horizon uint64, fanout int) string {
	t.Helper()
	s, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sde.RunScenarioShardedWith(s, sde.ShardConfig{
		ShardBits:     bits,
		DepthHorizon:  horizon,
		HorizonFanout: fanout,
	})
	if err != nil {
		t.Fatal(err)
	}
	digest, err := rep.Digest(testCases)
	if err != nil {
		t.Fatal(err)
	}
	return digest
}

// TestServiceDepthPartition is the acceptance test for the second shard
// dimension: a job with zero shard bits but a depth horizon spreads over
// two workers via continuation leases, and the assembled report is
// bit-identical to the in-process run with the same horizon. The COB
// spec exercises real frontier slicing (fan-out 2); the default SDS
// spec exercises the fan-out-1 continuation chain.
func TestServiceDepthPartition(t *testing.T) {
	cases := []struct {
		name    string
		spec    sde.ScenarioSpec
		horizon uint64
	}{
		{"cob-fanout", func() sde.ScenarioSpec {
			s := testSpec
			s.Algorithm = "cob"
			return s
		}(), 300},
		{"sds-chain", testSpec, 50},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, addr := startCoordinator(t, Options{RetryMillis: 10})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			startWorker(t, ctx, addr, WorkerOptions{Name: "w0"})
			startWorker(t, ctx, addr, WorkerOptions{Name: "w1"})

			id, err := c.AddJobWith(tc.spec, JobOptions{
				TestCases:    8,
				DepthHorizon: tc.horizon,
			})
			if err != nil {
				t.Fatal(err)
			}
			st := waitJob(t, c, id, 60*time.Second)
			if st.State != JobDone {
				t.Fatalf("job state = %s (%s)", st.State, st.Error)
			}
			want := oracleDigestHorizon(t, tc.spec, 0, 8, tc.horizon, 0)
			if st.Digest != want {
				t.Errorf("distributed digest %s != in-process digest %s", st.Digest, want)
			}
			reg := c.Registry()
			if n := reg.Value("sde_lease_suspensions_total", nil); n < 1 {
				t.Errorf("suspensions = %v, want >= 1", n)
			}
			if n := reg.Value("sde_continuation_leases_total", nil); n < 1 {
				t.Errorf("continuation leases = %v, want >= 1", n)
			}
			if n := reg.Value("sde_continuation_blobs", nil); n != 0 {
				t.Errorf("continuation blobs still held after job done: %v", n)
			}
		})
	}
}

// TestServiceDepthCrashRecovery SIGKILLs (abrupt connection drop) a
// worker mid-continuation-lease and requires the restarted fleet to
// finish with the in-process digest: re-issued continuation leases
// resume from the crashed worker's own checkpoint or re-slice the
// parent frontier the coordinator still holds.
func TestServiceDepthCrashRecovery(t *testing.T) {
	spec := testSpec
	spec.Algorithm = "cob"
	const horizon = 300

	c, addr := startCoordinator(t, Options{RetryMillis: 10})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Phase 1: a throwaway worker runs the root lease until it suspends
	// and the continuation items are queued, then is torn down (anything
	// it still holds requeues on disconnect). That guarantees the
	// crasher's first lease is a continuation item.
	ctx0, cancel0 := context.WithCancel(context.Background())
	defer cancel0()
	startWorker(t, ctx0, addr, WorkerOptions{Name: "w0", CheckpointEvery: 1})

	id, err := c.AddJobWith(spec, JobOptions{TestCases: 8, DepthHorizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for c.Registry().Value("sde_lease_suspensions_total", nil) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("root lease never suspended")
		}
		if st, ok := c.JobStatus(id); ok && st.State != JobRunning {
			t.Fatalf("job reached %s before any suspension", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel0()

	// Phase 2: the crasher picks up a continuation lease and drops its
	// connection right after that lease's first durable checkpoints —
	// mid-continuation, like a SIGKILL.
	crashDir := t.TempDir()
	crasher := startWorker(t, ctx, addr, WorkerOptions{
		Name:                  "crasher",
		WorkDir:               crashDir,
		CheckpointEvery:       1,
		CrashAfterCheckpoints: 3,
	})
	select {
	case err := <-crasher:
		if err != ErrCrashed {
			t.Fatalf("crasher exited with %v, want ErrCrashed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("crash hook never fired")
	}

	// Phase 3: a fresh worker plus the restarted crasher (same work
	// directory, so its re-issued lease resumes from the crash-time
	// checkpoint) finish the job.
	startWorker(t, ctx, addr, WorkerOptions{Name: "w1"})
	startWorker(t, ctx, addr, WorkerOptions{Name: "crasher", WorkDir: crashDir})

	st := waitJob(t, c, id, 60*time.Second)
	if st.State != JobDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	want := oracleDigestHorizon(t, spec, 0, 8, horizon, 0)
	if st.Digest != want {
		t.Errorf("post-crash digest %s != in-process digest %s", st.Digest, want)
	}
}

// TestSplitWanted pins the straggler self-split predicate, in particular
// that continuation leases never bit-split: their pinned decisions
// already materialised inside the parent frontier, so the depth
// dimension is the only way to subdivide them further.
func TestSplitWanted(t *testing.T) {
	armed := WorkerOptions{SplitStates: 10, SplitAfter: time.Second}
	plain := Lease{Item: sde.ShardItem{Depth: 1, Bits: 0}, MaxSplitDepth: 4}
	cont := plain
	cont.Item.Cont = []sde.ContStep{{Seg: 0, Of: 2}}

	cases := []struct {
		name    string
		opts    WorkerOptions
		lease   Lease
		states  int
		elapsed time.Duration
		starved bool
		want    bool
	}{
		{"all conditions met", armed, plain, 11, 2 * time.Second, true, true},
		{"disarmed", WorkerOptions{}, plain, 11, 2 * time.Second, true, false},
		{"below state threshold", armed, plain, 10, 2 * time.Second, true, false},
		{"inside grace period", armed, plain, 11, 500 * time.Millisecond, true, false},
		{"queue not starved", armed, plain, 11, 2 * time.Second, false, false},
		{"at split depth cap", armed, func() Lease {
			l := plain
			l.Item.Depth = 4
			return l
		}(), 11, 2 * time.Second, true, false},
		{"continuation lease never splits", armed, cont, 11, 2 * time.Second, true, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := splitWanted(tc.opts, tc.lease, tc.states, tc.elapsed, tc.starved); got != tc.want {
				t.Errorf("splitWanted = %v, want %v", got, tc.want)
			}
		})
	}
}
