package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"sde"
	"sde/internal/snap"
)

// ErrCrashed reports that the worker's injected crash hook fired: the
// connection was dropped abruptly mid-lease, exactly like a SIGKILL.
var ErrCrashed = errors.New("dist: worker crashed (injected)")

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator (and in per-worker
	// metrics). Required.
	Name string
	// WorkDir holds per-lease checkpoint directories
	// (WorkDir/<job>/<item dir>). Required. A worker restarted with the
	// same WorkDir resumes re-issued leases from its own checkpoints.
	WorkDir string
	// HeartbeatEvery is the progress/liveness reporting interval while
	// executing a lease (default 500ms). It must be well under the
	// coordinator's lease TTL.
	HeartbeatEvery time.Duration
	// DialTimeout bounds the initial connection (default 5s).
	DialTimeout time.Duration
	// CheckpointEvery, DisableSpeculation, SpecWorkers,
	// DisableCompiledIR, EnableMerge, and EnableReduce default the
	// per-lease execution knobs when the lease does not set them.
	CheckpointEvery    int
	DisableSpeculation bool
	SpecWorkers        int
	DisableCompiledIR  bool
	EnableMerge        bool
	EnableReduce       bool
	// SplitStates, when > 0, arms straggler self-splitting: a lease
	// whose live state count exceeds it after SplitAfter, while the
	// coordinator reports a starved queue, is abandoned with a Split so
	// the coordinator re-issues its two child sub-spaces.
	SplitStates int
	SplitAfter  time.Duration
	// CrashAfterCheckpoints, when > 0, injects a crash: once the active
	// lease's checkpoint file has been observed that many times, the
	// worker abruptly closes its connection and RunWorker returns
	// ErrCrashed. The service end-to-end tests use this to kill a worker
	// mid-lease at a moment when recovery provably has a checkpoint.
	CrashAfterCheckpoints int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

type inMsg struct {
	typ     byte
	payload []byte
}

// RunWorker connects to a coordinator and executes leases until the
// context is cancelled (returns nil) or the connection fails (returns the
// error). Each lease runs through sde.RunShardLease with a progress hook
// that streams heartbeats and honours cancellation, splitting, and the
// injected crash.
func RunWorker(ctx context.Context, addr string, opts WorkerOptions) error {
	if opts.Name == "" {
		return fmt.Errorf("dist: worker needs a name")
	}
	if opts.WorkDir == "" {
		return fmt.Errorf("dist: worker needs a work directory")
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 500 * time.Millisecond
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("dist: dialing coordinator: %w", err)
	}
	defer conn.Close()
	if err := writeMsg(conn, MsgHello, Hello{Name: opts.Name, Wire: snap.WireVersion}); err != nil {
		return err
	}
	typ, payload, err := snap.ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("dist: handshake: %w", err)
	}
	if typ == MsgError {
		if em, derr := decode[ErrorMsg](payload); derr == nil {
			return fmt.Errorf("dist: coordinator rejected us: %s", em.Msg)
		}
	}
	if typ != MsgWelcome {
		return fmt.Errorf("dist: handshake: unexpected message type %d", typ)
	}
	welcome, err := decode[Welcome](payload)
	if err != nil {
		return err
	}
	logf("connected to %s (wire v%d)", welcome.Name, welcome.Wire)

	// The reader splits the inbound stream: heartbeat acks flow to the
	// progress hook through a buffered channel; everything else is the
	// main loop's request/response traffic.
	msgs := make(chan inMsg)
	acks := make(chan HeartbeatAck, 16)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer close(msgs)
		for {
			typ, payload, err := snap.ReadFrame(conn)
			if err != nil {
				return
			}
			if typ == MsgHeartbeatAck {
				if ack, err := decode[HeartbeatAck](payload); err == nil {
					select {
					case acks <- ack:
					default: // the hook is behind; drop the oldest signal
					}
				}
				continue
			}
			select {
			case msgs <- inMsg{typ, payload}:
			case <-ctx.Done():
				return
			}
		}
	}()
	// Unblock the reader when the context dies mid-wait.
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-readerDone:
		}
	}()

	crashed := false
	for {
		if err := writeMsg(conn, MsgReady, struct{}{}); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		var m inMsg
		var ok bool
		select {
		case <-ctx.Done():
			return nil
		case m, ok = <-msgs:
			if !ok {
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("dist: coordinator connection lost")
			}
		}
		switch m.typ {
		case MsgNoWork:
			nw, err := decode[NoWork](m.payload)
			if err != nil {
				return err
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(time.Duration(nw.RetryMillis) * time.Millisecond):
			}
		case MsgLease:
			lease, err := decode[Lease](m.payload)
			if err != nil {
				return err
			}
			if err := executeLease(ctx, conn, acks, lease, nil, opts, logf, &crashed); err != nil {
				if ctx.Err() != nil && !crashed {
					return nil
				}
				return err
			}
		case MsgContLease:
			lease, parent, err := parseContLease(m.payload)
			if err != nil {
				return err
			}
			if err := executeLease(ctx, conn, acks, lease, parent, opts, logf, &crashed); err != nil {
				if ctx.Err() != nil && !crashed {
					return nil
				}
				return err
			}
		case MsgError:
			em, _ := decode[ErrorMsg](m.payload)
			return fmt.Errorf("dist: coordinator error: %s", em.Msg)
		default:
			return fmt.Errorf("dist: unexpected message type %d", m.typ)
		}
	}
}

// executeLease runs one lease and reports its outcome (result, suspend,
// split, or error) back to the coordinator. parent is the suspended
// ancestor frontier shipped with a continuation lease (nil otherwise).
func executeLease(ctx context.Context, conn net.Conn, acks <-chan HeartbeatAck,
	lease Lease, parent []byte, opts WorkerOptions, logf func(string, ...any), crashed *bool) error {
	scenario, err := lease.Spec.Scenario()
	if err != nil {
		return writeMsg(conn, MsgError, ErrorMsg{Lease: lease.ID, Msg: err.Error()})
	}
	dir := filepath.Join(opts.WorkDir, lease.Job, lease.Item.Dir())
	ckptPath := filepath.Join(dir, snap.CheckpointFile)
	logf("lease %d: shard %s of %s -> %s", lease.ID, lease.Item.Label(), lease.Job, dir)

	every := lease.CheckpointEvery
	if every == 0 {
		every = opts.CheckpointEvery
	}
	specWorkers := lease.SpecWorkers
	if specWorkers == 0 {
		specWorkers = opts.SpecWorkers
	}

	var (
		ckptSeen  int
		cancelled bool
		starved   bool
		wantSplit bool
		lastBeat  = time.Now()
		started   = time.Now()
	)
	progress := func(states int, elapsed time.Duration) bool {
		if opts.CrashAfterCheckpoints > 0 {
			if _, err := os.Stat(ckptPath); err == nil {
				ckptSeen++
				if ckptSeen >= opts.CrashAfterCheckpoints {
					*crashed = true
					conn.Close() // abrupt: no goodbye frame, like a SIGKILL
					return true
				}
			}
		}
		if ctx.Err() != nil {
			cancelled = true
			return true
		}
		if time.Since(lastBeat) >= opts.HeartbeatEvery {
			lastBeat = time.Now()
			hb := Heartbeat{Lease: lease.ID, States: states, ElapsedMillis: elapsed.Milliseconds()}
			if err := writeMsg(conn, MsgHeartbeat, hb); err != nil {
				cancelled = true // dead connection: further work is wasted
				return true
			}
		}
	drain:
		for {
			select {
			case ack := <-acks:
				if ack.Lease == lease.ID {
					if ack.Cancel {
						cancelled = true
					}
					starved = ack.Starved
				}
			default:
				break drain
			}
		}
		if cancelled {
			return true
		}
		if splitWanted(opts, lease, states, time.Since(started), starved) {
			wantSplit = true
			return true
		}
		return false
	}

	out, err := sde.RunShardLease(scenario, lease.Item, sde.LeaseOptions{
		CheckpointDir:      dir,
		CheckpointEvery:    every,
		DisableSpeculation: lease.DisableSpeculation || opts.DisableSpeculation,
		SpecWorkers:        specWorkers,
		DisableCompiledIR:  lease.DisableCompiledIR || opts.DisableCompiledIR,
		EnableMerge:        lease.EnableMerge || opts.EnableMerge,
		EnableReduce:       lease.EnableReduce || opts.EnableReduce,
		Progress:           progress,
		EventTarget:        lease.EventTarget,
		Continuation:       parent,
	})
	switch {
	case *crashed:
		return ErrCrashed
	case err != nil:
		logf("lease %d: failed: %v", lease.ID, err)
		return writeMsg(conn, MsgError, ErrorMsg{Lease: lease.ID, Msg: err.Error()})
	case wantSplit:
		logf("lease %d: splitting straggler %s", lease.ID, lease.Item.Label())
		return writeMsg(conn, MsgSplit, Split{Lease: lease.ID})
	case out.Stopped:
		logf("lease %d: stopped", lease.ID)
		return writeResult(conn, ResultHeader{Lease: lease.ID, Stopped: true}, nil)
	case out.Suspended:
		logf("lease %d: suspended at %d events (%d units, %d frontier bytes)",
			lease.ID, out.Events, out.Units, len(out.Snapshot))
		return writeSuspend(conn, SuspendHeader{
			Lease: lease.ID, Units: out.Units, Events: out.Events,
		}, out.Snapshot)
	default:
		logf("lease %d: done, %d snapshot bytes", lease.ID, len(out.Snapshot))
		return writeResult(conn, ResultHeader{Lease: lease.ID}, out.Snapshot)
	}
}

// splitWanted decides whether a running lease should be abandoned for a
// straggler re-split: self-splitting must be armed, the lease must look
// heavy (live states over the threshold after the grace period), the
// coordinator must be reporting a starved queue, and the item must still
// be splittable — below the job's pin cap and not a continuation item,
// whose pinned decisions already materialised inside its parent frontier
// (the depth dimension subdivides those instead).
func splitWanted(opts WorkerOptions, lease Lease, states int, elapsed time.Duration, starved bool) bool {
	return opts.SplitStates > 0 && states > opts.SplitStates &&
		elapsed >= opts.SplitAfter &&
		starved &&
		lease.Item.Depth < lease.MaxSplitDepth &&
		len(lease.Item.Cont) == 0
}
