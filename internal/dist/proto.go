// Package dist implements the multi-process exploration service: a
// coordinator that owns the shard queue of submitted jobs and a fleet of
// workers that lease (depth, bits) sub-spaces, execute them with the same
// machinery the in-process shard scheduler uses, and stream back each
// leaf's final durable checkpoint.
//
// The wire protocol rides the length-prefixed, versioned, checksummed
// frames of internal/snap (one frame per message, the frame type byte
// naming the message kind), so transport corruption and version skew are
// detected by the same code that guards on-disk snapshots. Messages are
// JSON payloads — small control messages dominated by the one exception,
// Result, whose payload is a JSON header followed by the raw snapshot
// bytes of the finished shard.
//
// The protocol is deliberately coordinator-passive: workers pull. A
// worker sends Ready when idle and receives a Lease or NoWork; while
// executing it streams Heartbeat messages (which double as progress
// reports) and reads HeartbeatAck replies carrying the cancellation flag
// and the queue-starvation hint that drives straggler re-splitting. A
// worker that decides to split sends Split and abandons the lease; the
// coordinator re-issues the two child sub-spaces. A worker that vanishes
// mid-lease — crash, SIGKILL, network partition — is detected by lease
// TTL expiry or connection teardown, and its item is simply requeued:
// shard execution is deterministic and resumable, so a re-issued lease
// produces the exact same leaf.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"sde"
	"sde/internal/snap"
)

// Message kinds, carried in the snap frame's type byte.
const (
	// MsgHello opens a worker connection: name + wire version.
	MsgHello byte = iota + 1
	// MsgWelcome is the coordinator's handshake reply.
	MsgWelcome
	// MsgReady asks for work; the reply is MsgLease or MsgNoWork.
	MsgReady
	// MsgLease grants one shard sub-space to the worker.
	MsgLease
	// MsgNoWork tells an idle worker to retry later.
	MsgNoWork
	// MsgHeartbeat is the worker's periodic liveness + progress report
	// while executing a lease.
	MsgHeartbeat
	// MsgHeartbeatAck answers a heartbeat with the cancel flag and the
	// starvation hint.
	MsgHeartbeatAck
	// MsgSplit abandons a straggling lease so the coordinator re-issues
	// its two child sub-spaces.
	MsgSplit
	// MsgResult delivers a finished (or stopped) lease: JSON header plus
	// the shard's final checkpoint bytes.
	MsgResult
	// MsgError reports a failed lease execution.
	MsgError
	// MsgContLease grants a continuation work item: the Lease JSON plus
	// the suspended parent frontier the worker slice-resumes from. (New
	// in wire version 4 — the handshake's version check keeps pre-4
	// peers from ever seeing it.)
	MsgContLease
	// MsgSuspend delivers a lease that hit its depth horizon: JSON
	// header plus the surviving frontier — the continuation payload the
	// coordinator fans out as new work items. (New in wire version 4.)
	MsgSuspend
)

// Hello is the worker's opening message.
type Hello struct {
	Name string `json:"name"`
	Wire int    `json:"wire"`
}

// Welcome is the coordinator's handshake reply.
type Welcome struct {
	Name string `json:"name"`
	Wire int    `json:"wire"`
}

// Lease grants one work item. The spec travels with every lease: worker
// and coordinator each materialise the scenario from it, which is what
// keeps leases self-contained and workers stateless across jobs.
type Lease struct {
	ID                 uint64           `json:"id"`
	Job                string           `json:"job"`
	Spec               sde.ScenarioSpec `json:"spec"`
	Item               sde.ShardItem    `json:"item"`
	CheckpointEvery    int              `json:"checkpoint_every,omitempty"`
	DisableSpeculation bool             `json:"disable_speculation,omitempty"`
	SpecWorkers        int              `json:"spec_workers,omitempty"`
	DisableCompiledIR  bool             `json:"disable_compile,omitempty"`
	EnableMerge        bool             `json:"enable_merge,omitempty"`
	EnableReduce       bool             `json:"enable_reduce,omitempty"`
	// MaxSplitDepth caps straggler re-splitting for this job (the
	// scenario's MaxShardBits at most); a worker never splits past it.
	MaxSplitDepth int `json:"max_split_depth,omitempty"`
	// EventTarget is the job's next depth horizon for this item as an
	// absolute cumulative processed-event count (0 = run to completion).
	// Absolute, so a crashed-and-resumed lease suspends on exactly the
	// same event boundary.
	EventTarget uint64 `json:"event_target,omitempty"`
}

// NoWork tells an idle worker when to ask again.
type NoWork struct {
	RetryMillis int `json:"retry_millis"`
}

// Heartbeat is the worker's periodic report while holding a lease.
type Heartbeat struct {
	Lease         uint64 `json:"lease"`
	States        int    `json:"states"`
	ElapsedMillis int64  `json:"elapsed_millis"`
}

// HeartbeatAck answers a heartbeat.
type HeartbeatAck struct {
	Lease uint64 `json:"lease"`
	// Cancel tells the worker to stop the lease: its job was cancelled
	// or its lease already expired and was re-issued elsewhere.
	Cancel bool `json:"cancel,omitempty"`
	// Starved reports an empty work queue with idle capacity — the
	// signal that makes splitting a straggler worthwhile.
	Starved bool `json:"starved,omitempty"`
}

// Split abandons a lease for re-partitioning.
type Split struct {
	Lease uint64 `json:"lease"`
}

// ResultHeader precedes the snapshot bytes in a MsgResult payload.
type ResultHeader struct {
	Lease uint64 `json:"lease"`
	// Stopped: the lease was cut short (cancellation); no snapshot
	// follows and the item is not complete.
	Stopped bool `json:"stopped,omitempty"`
}

// SuspendHeader precedes the frontier bytes in a MsgSuspend payload.
type SuspendHeader struct {
	Lease uint64 `json:"lease"`
	// Units is how many independently resumable slices the suspended
	// frontier supports; the coordinator clamps the job's fan-out to it.
	Units int `json:"units"`
	// Events is the cumulative processed-event count at suspension; the
	// continuation generation's EventTarget is Events + horizon.
	Events uint64 `json:"events"`
}

// ErrorMsg reports a failed lease execution (the item is requeued).
type ErrorMsg struct {
	Lease uint64 `json:"lease"`
	Msg   string `json:"msg"`
}

// writeMsg sends one JSON message as a single frame.
func writeMsg(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dist: encoding message %d: %w", typ, err)
	}
	return snap.WriteFrame(w, typ, payload)
}

// writeHdrBlob sends one frame carrying a JSON header followed by raw
// bytes: uvarint header length, JSON header, blob. MsgResult, MsgSuspend,
// and MsgContLease all use this shape.
func writeHdrBlob(w io.Writer, typ byte, hdr any, blob []byte) error {
	hj, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("dist: encoding message %d header: %w", typ, err)
	}
	payload := make([]byte, 0, binary.MaxVarintLen64+len(hj)+len(blob))
	payload = binary.AppendUvarint(payload, uint64(len(hj)))
	payload = append(payload, hj...)
	payload = append(payload, blob...)
	return snap.WriteFrame(w, typ, payload)
}

// parseHdrBlob splits a header+blob payload back into its parts.
func parseHdrBlob[T any](payload []byte) (T, []byte, error) {
	var hdr T
	n, sz := binary.Uvarint(payload)
	if sz <= 0 || n > uint64(len(payload)-sz) {
		return hdr, nil, fmt.Errorf("dist: %w: header length", snap.ErrCorrupt)
	}
	if err := json.Unmarshal(payload[sz:sz+int(n)], &hdr); err != nil {
		return hdr, nil, fmt.Errorf("dist: decoding header: %w", err)
	}
	return hdr, payload[sz+int(n):], nil
}

// writeResult sends a MsgResult frame: uvarint header length, JSON
// header, raw snapshot bytes.
func writeResult(w io.Writer, hdr ResultHeader, snapshot []byte) error {
	return writeHdrBlob(w, MsgResult, hdr, snapshot)
}

// parseResult splits a MsgResult payload back into header and snapshot.
func parseResult(payload []byte) (ResultHeader, []byte, error) {
	return parseHdrBlob[ResultHeader](payload)
}

// writeSuspend sends a MsgSuspend frame: header plus the suspended
// frontier bytes.
func writeSuspend(w io.Writer, hdr SuspendHeader, frontier []byte) error {
	return writeHdrBlob(w, MsgSuspend, hdr, frontier)
}

// parseSuspend splits a MsgSuspend payload back into header and frontier.
func parseSuspend(payload []byte) (SuspendHeader, []byte, error) {
	return parseHdrBlob[SuspendHeader](payload)
}

// writeContLease sends a MsgContLease frame: the lease plus the suspended
// parent frontier the worker slice-resumes from.
func writeContLease(w io.Writer, lease Lease, parent []byte) error {
	return writeHdrBlob(w, MsgContLease, lease, parent)
}

// parseContLease splits a MsgContLease payload back into lease and
// parent frontier.
func parseContLease(payload []byte) (Lease, []byte, error) {
	return parseHdrBlob[Lease](payload)
}

// decode unmarshals a JSON message payload.
func decode[T any](payload []byte) (T, error) {
	var v T
	if err := json.Unmarshal(payload, &v); err != nil {
		return v, fmt.Errorf("dist: decoding message: %w", err)
	}
	return v, nil
}
