package dist

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"sde"
	"sde/internal/metrics"
	"sde/internal/snap"
)

// Job states.
const (
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Options configures a Coordinator. The zero value works.
type Options struct {
	// Name identifies the coordinator in the handshake.
	Name string
	// LeaseTTL expires leases whose worker stopped heartbeating
	// (default 15s). The item is requeued; determinism makes the
	// re-issued lease produce the identical leaf.
	LeaseTTL time.Duration
	// RetryMillis is the idle-worker backoff sent in NoWork
	// (default 200).
	RetryMillis int
	// Registry receives service metrics (created if nil).
	Registry *metrics.PromRegistry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Coordinator owns the shard queues of submitted jobs and leases work to
// connected workers. Work-stealing across jobs is inherent: any idle
// worker serves whichever job has queued items, round-robin.
type Coordinator struct {
	opts Options
	reg  *metrics.PromRegistry

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // job ids, submission order
	rr        int      // round-robin cursor into order
	nextJobID int
	nextLease uint64
	leases    map[uint64]*lease
	closed    bool
	stop      chan struct{}
	listeners []net.Listener
	conns     map[net.Conn]bool
}

type job struct {
	id            string
	spec          sde.ScenarioSpec
	shardBits     int
	testCases     int
	depthHorizon  uint64
	horizonFanout int
	scenario      sde.Scenario
	state         string
	queue         []queued
	outstanding   map[uint64]bool
	leaves        []sde.ShardLeaf
	// conts holds suspended frontiers by id, reference-counted by the
	// continuation items that still need them: a blob is freed when its
	// last slice completes (or suspends again), and wholesale when the
	// job reaches a terminal state.
	conts    map[uint64]*contBlob
	nextCont uint64
	report   *sde.ShardedReport
	digest   string
	errMsg   string
	done     chan struct{}
}

// queued is one queue entry: the item plus its depth-dimension context —
// the absolute event count of its next horizon and, for continuation
// items, the id of the suspended parent frontier it resumes from.
type queued struct {
	item   sde.ShardItem
	target uint64
	contID uint64
}

// contBlob is a suspended frontier held for its continuation items.
type contBlob struct {
	data []byte
	refs int
}

type lease struct {
	id       uint64
	jobID    string
	item     sde.ShardItem
	target   uint64
	contID   uint64
	worker   string
	holder   *workerConn
	lastBeat time.Time
}

type workerConn struct {
	name string
	conn net.Conn
}

// JobStatus is a point-in-time snapshot of one job, JSON-ready for the
// job API.
type JobStatus struct {
	ID          string           `json:"id"`
	State       string           `json:"state"`
	Spec        sde.ScenarioSpec `json:"spec"`
	ShardBits   int              `json:"shard_bits"`
	Queued      int              `json:"queued"`
	Outstanding int              `json:"outstanding"`
	Completed   int              `json:"completed"`
	States      int              `json:"states,omitempty"`
	DScenarios  string           `json:"dscenarios,omitempty"`
	Digest      string           `json:"digest,omitempty"`
	Error       string           `json:"error,omitempty"`
}

// NewCoordinator builds a coordinator and starts its lease-expiry
// sweeper. Close stops it.
func NewCoordinator(opts Options) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.RetryMillis <= 0 {
		opts.RetryMillis = 200
	}
	if opts.Name == "" {
		opts.Name = "sde-serve"
	}
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewPromRegistry()
	}
	reg.Declare("sde_workers_connected", "currently connected workers", metrics.PromGauge)
	reg.Declare("sde_jobs_submitted_total", "jobs accepted by the job API", metrics.PromCounter)
	reg.Declare("sde_jobs_active", "jobs not yet done, failed, or cancelled", metrics.PromGauge)
	reg.Declare("sde_leases_issued_total", "work leases granted to workers", metrics.PromCounter)
	reg.Declare("sde_lease_requeues_total", "leases returned to the queue, by reason", metrics.PromCounter)
	reg.Declare("sde_lease_splits_total", "straggler leases re-partitioned into child sub-spaces", metrics.PromCounter)
	reg.Declare("sde_results_total", "shard-leaf results received from workers", metrics.PromCounter)
	reg.Declare("sde_heartbeats_total", "worker heartbeats received", metrics.PromCounter)
	reg.Declare("sde_worker_leases_active", "leases currently held, per worker", metrics.PromGauge)
	reg.Declare("sde_lease_suspensions_total", "leases suspended at a depth horizon and fanned out", metrics.PromCounter)
	reg.Declare("sde_continuation_leases_total", "continuation work leases granted to workers", metrics.PromCounter)
	reg.Declare("sde_continuation_blobs", "suspended frontiers currently held for continuation items", metrics.PromGauge)
	c := &Coordinator{
		opts:   opts,
		reg:    reg,
		jobs:   make(map[string]*job),
		leases: make(map[uint64]*lease),
		stop:   make(chan struct{}),
		conns:  make(map[net.Conn]bool),
	}
	go c.sweepLoop()
	return c
}

// Registry exposes the coordinator's metrics registry (for /metrics).
func (c *Coordinator) Registry() *metrics.PromRegistry { return c.reg }

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Close stops the sweeper, closes all listeners and worker connections.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.stop)
	listeners := c.listeners
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, conn := range conns {
		conn.Close()
	}
	return nil
}

// Serve accepts worker connections until the listener closes.
func (c *Coordinator) Serve(l net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("dist: coordinator closed")
	}
	c.listeners = append(c.listeners, l)
	c.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-c.stop:
				return nil
			default:
				return err
			}
		}
		go c.handleConn(conn)
	}
}

// JobOptions parameterises AddJobWith.
type JobOptions struct {
	// ShardBits is the initial static pre-split (clamped to the
	// scenario's MaxShardBits).
	ShardBits int
	// TestCases is the per-shard test-case budget the job digest is
	// computed with.
	TestCases int
	// DepthHorizon, when non-zero, adds exploration depth as a second
	// shard dimension (see sde.ShardConfig.DepthHorizon): leases suspend
	// at multiples of the horizon and their frontiers fan out as
	// continuation items. Part of the partition definition — in-process
	// digest oracles must use the same value.
	DepthHorizon uint64
	// HorizonFanout is the continuation fan-out per suspension (default
	// 2 when DepthHorizon is set; clamped per suspension to what the
	// frontier supports). Never derived from fleet size.
	HorizonFanout int
}

// AddJob accepts a job with default depth-partitioning options; see
// AddJobWith.
func (c *Coordinator) AddJob(spec sde.ScenarioSpec, shardBits, testCases int) (string, error) {
	return c.AddJobWith(spec, JobOptions{ShardBits: shardBits, TestCases: testCases})
}

// AddJobWith accepts a job: the spec is materialised (validating it), the
// initial shard queue is enumerated at opts.ShardBits (clamped to the
// scenario's MaxShardBits), and workers start leasing immediately.
func (c *Coordinator) AddJobWith(spec sde.ScenarioSpec, opts JobOptions) (string, error) {
	scenario, err := spec.Scenario()
	if err != nil {
		return "", err
	}
	shardBits := opts.ShardBits
	if shardBits < 0 {
		return "", fmt.Errorf("dist: shard bits must be >= 0 (got %d)", shardBits)
	}
	if opts.HorizonFanout < 0 {
		return "", fmt.Errorf("dist: horizon fanout must be >= 0 (got %d)", opts.HorizonFanout)
	}
	fanout := opts.HorizonFanout
	if opts.DepthHorizon == 0 {
		fanout = 0
	} else if fanout == 0 {
		fanout = 2
	}
	// Same heads-up sde-run prints for flag-driven runs: a spec whose
	// program has candidate shard points but no shardable nodes yields a
	// single-shard job no matter what shardBits asks for.
	if note := scenario.ShardabilityNote(); note != "" {
		c.logf("job spec %s: %s", spec, note)
	}
	if scenario.MaxShardBits() == 0 && opts.DepthHorizon == 0 {
		c.logf("job spec %s: 0 shardable bits and no depth horizon — the job runs as a single lease and a multi-worker fleet sits idle; set a depth horizon to fan deep exploration out", spec)
	}
	if max := scenario.MaxShardBits(); shardBits > max {
		shardBits = max
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", fmt.Errorf("dist: coordinator closed")
	}
	c.nextJobID++
	j := &job{
		id:            fmt.Sprintf("job-%d", c.nextJobID),
		spec:          spec,
		shardBits:     shardBits,
		testCases:     opts.TestCases,
		depthHorizon:  opts.DepthHorizon,
		horizonFanout: fanout,
		scenario:      scenario,
		state:         JobRunning,
		outstanding:   make(map[uint64]bool),
		conts:         make(map[uint64]*contBlob),
		done:          make(chan struct{}),
	}
	for bits := uint64(0); bits < 1<<uint(shardBits); bits++ {
		j.queue = append(j.queue, queued{
			item:   sde.ShardItem{Depth: shardBits, Bits: bits},
			target: opts.DepthHorizon,
		})
	}
	c.jobs[j.id] = j
	c.order = append(c.order, j.id)
	c.reg.Add("sde_jobs_submitted_total", nil, 1)
	c.reg.Set("sde_jobs_active", nil, float64(c.activeJobsLocked()))
	c.logf("job %s submitted: %s, %d initial shards", j.id, spec, len(j.queue))
	return j.id, nil
}

// CancelJob marks a job cancelled: its queue is dropped and running
// leases are told to stop on their next heartbeat.
func (c *Coordinator) CancelJob(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return fmt.Errorf("dist: no job %s", id)
	}
	if j.state != JobRunning {
		return nil
	}
	j.state = JobCancelled
	j.queue = nil
	j.conts = nil
	c.reg.Set("sde_continuation_blobs", nil, float64(c.contBlobsLocked()))
	close(j.done)
	c.reg.Set("sde_jobs_active", nil, float64(c.activeJobsLocked()))
	c.logf("job %s cancelled", id)
	return nil
}

// JobStatus snapshots one job.
func (c *Coordinator) JobStatus(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return c.statusLocked(j), true
}

// Jobs snapshots every job in submission order.
func (c *Coordinator) Jobs() []JobStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobStatus, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.statusLocked(c.jobs[id]))
	}
	return out
}

func (c *Coordinator) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Spec:        j.spec,
		ShardBits:   j.shardBits,
		Queued:      len(j.queue),
		Outstanding: len(j.outstanding),
		Completed:   len(j.leaves),
		Digest:      j.digest,
		Error:       j.errMsg,
	}
	if j.report != nil {
		st.States = j.report.States()
		st.DScenarios = j.report.DScenarios().String()
	}
	return st
}

// WaitJob returns a channel closed when the job reaches a terminal
// state (nil for unknown jobs).
func (c *Coordinator) WaitJob(id string) <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.jobs[id]; ok {
		return j.done
	}
	return nil
}

// JobReport returns a finished job's assembled report, its digest, and
// the test-case budget the digest was computed with.
func (c *Coordinator) JobReport(id string) (*sde.ShardedReport, string, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, "", 0, fmt.Errorf("dist: no job %s", id)
	}
	switch j.state {
	case JobDone:
		return j.report, j.digest, j.testCases, nil
	case JobFailed:
		return nil, "", 0, fmt.Errorf("dist: job %s failed: %s", id, j.errMsg)
	case JobCancelled:
		return nil, "", 0, fmt.Errorf("dist: job %s was cancelled", id)
	default:
		return nil, "", 0, fmt.Errorf("dist: job %s still %s", id, j.state)
	}
}

func (c *Coordinator) activeJobsLocked() int {
	n := 0
	for _, j := range c.jobs {
		if j.state == JobRunning {
			n++
		}
	}
	return n
}

func (c *Coordinator) contBlobsLocked() int {
	n := 0
	for _, j := range c.jobs {
		n += len(j.conts)
	}
	return n
}

// releaseContLocked drops one reference to a suspended frontier; the
// blob is freed when its last continuation item has completed or
// suspended again.
func (c *Coordinator) releaseContLocked(j *job, contID uint64) {
	if contID == 0 || j.conts == nil {
		return
	}
	b := j.conts[contID]
	if b == nil {
		return
	}
	b.refs--
	if b.refs <= 0 {
		delete(j.conts, contID)
		c.reg.Set("sde_continuation_blobs", nil, float64(c.contBlobsLocked()))
	}
}

// handleConn speaks the worker protocol on one connection.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer conn.Close()
	typ, payload, err := snap.ReadFrame(conn)
	if err != nil || typ != MsgHello {
		c.logf("conn %s: bad handshake: %v", conn.RemoteAddr(), err)
		return
	}
	hello, err := decode[Hello](payload)
	if err != nil {
		return
	}
	if hello.Wire != snap.WireVersion {
		writeMsg(conn, MsgError, ErrorMsg{Msg: fmt.Sprintf(
			"wire version %d not supported (coordinator speaks %d)",
			hello.Wire, snap.WireVersion)})
		c.logf("worker %s rejected: wire version %d != %d",
			hello.Name, hello.Wire, snap.WireVersion)
		return
	}
	if err := writeMsg(conn, MsgWelcome, Welcome{Name: c.opts.Name, Wire: snap.WireVersion}); err != nil {
		return
	}
	w := &workerConn{name: hello.Name, conn: conn}
	workerLabel := map[string]string{"worker": w.name}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.conns[conn] = true
	c.mu.Unlock()
	c.reg.AddGauge("sde_workers_connected", nil, 1)
	c.reg.Set("sde_worker_leases_active", workerLabel, 0)
	c.logf("worker %s connected from %s", w.name, conn.RemoteAddr())

	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		var held []*lease
		for _, l := range c.leases {
			if l.holder == w {
				held = append(held, l)
			}
		}
		for _, l := range held {
			c.requeueLocked(l, "disconnect")
		}
		c.mu.Unlock()
		c.reg.AddGauge("sde_workers_connected", nil, -1)
		c.reg.DeleteSeries("sde_worker_leases_active", workerLabel)
		c.logf("worker %s disconnected (%d leases requeued)", w.name, len(held))
	}()

	for {
		typ, payload, err := snap.ReadFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case MsgReady:
			if err := c.grantLease(w); err != nil {
				return
			}
		case MsgHeartbeat:
			hb, err := decode[Heartbeat](payload)
			if err != nil {
				return
			}
			if err := writeMsg(conn, MsgHeartbeatAck, c.beat(w, hb)); err != nil {
				return
			}
		case MsgSplit:
			sp, err := decode[Split](payload)
			if err != nil {
				return
			}
			c.split(w, sp.Lease)
		case MsgResult:
			hdr, snapshot, err := parseResult(payload)
			if err != nil {
				c.logf("worker %s: bad result: %v", w.name, err)
				return
			}
			c.completeLease(w, hdr, snapshot)
		case MsgSuspend:
			hdr, frontier, err := parseSuspend(payload)
			if err != nil {
				c.logf("worker %s: bad suspend: %v", w.name, err)
				return
			}
			c.suspendLease(w, hdr, frontier)
		case MsgError:
			em, err := decode[ErrorMsg](payload)
			if err != nil {
				return
			}
			c.failLease(w, em)
		default:
			c.logf("worker %s: unexpected message type %d", w.name, typ)
			return
		}
	}
}

// grantLease answers a Ready: pop a work item round-robin across running
// jobs, or tell the worker to retry.
func (c *Coordinator) grantLease(w *workerConn) error {
	c.mu.Lock()
	var (
		j  *job
		qi queued
	)
	for off := 0; off < len(c.order); off++ {
		cand := c.jobs[c.order[(c.rr+off)%len(c.order)]]
		if cand.state == JobRunning && len(cand.queue) > 0 {
			j = cand
			qi = cand.queue[0]
			cand.queue = cand.queue[1:]
			c.rr = (c.rr + off + 1) % len(c.order)
			break
		}
	}
	if j == nil {
		retry := c.opts.RetryMillis
		c.mu.Unlock()
		return writeMsg(w.conn, MsgNoWork, NoWork{RetryMillis: retry})
	}
	c.nextLease++
	l := &lease{
		id:       c.nextLease,
		jobID:    j.id,
		item:     qi.item,
		target:   qi.target,
		contID:   qi.contID,
		worker:   w.name,
		holder:   w,
		lastBeat: time.Now(),
	}
	c.leases[l.id] = l
	j.outstanding[l.id] = true
	msg := Lease{
		ID:            l.id,
		Job:           j.id,
		Spec:          j.spec,
		Item:          qi.item,
		MaxSplitDepth: j.scenario.MaxShardBits(),
		EventTarget:   qi.target,
	}
	// Continuation items ship the suspended parent frontier with the
	// lease; blobs are immutable once stored, so the bytes may be written
	// outside the lock.
	var parent []byte
	if qi.contID != 0 {
		if b := j.conts[qi.contID]; b != nil {
			parent = b.data
		}
	}
	c.mu.Unlock()
	c.reg.Add("sde_leases_issued_total", map[string]string{"worker": w.name}, 1)
	c.reg.AddGauge("sde_worker_leases_active", map[string]string{"worker": w.name}, 1)
	c.logf("lease %d: shard %s of %s -> %s", l.id, qi.item.Label(), j.id, w.name)
	if qi.contID != 0 {
		c.reg.Add("sde_continuation_leases_total", nil, 1)
		return writeContLease(w.conn, msg, parent)
	}
	return writeMsg(w.conn, MsgLease, msg)
}

// beat refreshes a lease and answers with cancel/starvation flags.
func (c *Coordinator) beat(w *workerConn, hb Heartbeat) HeartbeatAck {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Add("sde_heartbeats_total", map[string]string{"worker": w.name}, 1)
	ack := HeartbeatAck{Lease: hb.Lease}
	l, ok := c.leases[hb.Lease]
	if !ok || l.holder != w {
		// Expired and re-issued elsewhere, or the job is gone: the
		// worker's effort is wasted — stop it.
		ack.Cancel = true
		return ack
	}
	l.lastBeat = time.Now()
	j := c.jobs[l.jobID]
	if j == nil || j.state != JobRunning {
		ack.Cancel = true
		return ack
	}
	queued := 0
	for _, id := range c.order {
		queued += len(c.jobs[id].queue)
	}
	ack.Starved = queued == 0
	return ack
}

// split abandons a straggling lease and queues its two child sub-spaces.
func (c *Coordinator) split(w *workerConn, leaseID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[leaseID]
	if !ok || l.holder != w {
		return
	}
	c.dropLeaseLocked(l)
	j := c.jobs[l.jobID]
	if j == nil || j.state != JobRunning {
		return
	}
	it := l.item
	if it.Depth >= j.scenario.MaxShardBits() || len(it.Cont) > 0 {
		// Cannot split further — no bits left to pin, or a continuation
		// item whose pinned decisions already materialised inside its
		// parent frontier. Run it whole on the next worker.
		j.queue = append(j.queue, queued{item: it, target: l.target, contID: l.contID})
		c.reg.Add("sde_lease_requeues_total", map[string]string{"reason": "unsplittable"}, 1)
		return
	}
	j.queue = append(j.queue,
		queued{item: sde.ShardItem{Depth: it.Depth + 1, Bits: it.Bits}, target: l.target},
		queued{item: sde.ShardItem{Depth: it.Depth + 1, Bits: it.Bits | 1<<uint(it.Depth)}, target: l.target})
	c.reg.Add("sde_lease_splits_total", nil, 1)
	c.logf("lease %d: shard %s of %s split", leaseID, it.Label(), l.jobID)
}

// completeLease records a finished leaf and finalises the job when it
// was the last one.
func (c *Coordinator) completeLease(w *workerConn, hdr ResultHeader, snapshot []byte) {
	c.mu.Lock()
	l, ok := c.leases[hdr.Lease]
	if !ok || l.holder != w {
		c.mu.Unlock()
		c.logf("worker %s: result for unknown lease %d dropped", w.name, hdr.Lease)
		return
	}
	c.dropLeaseLocked(l)
	j := c.jobs[l.jobID]
	if j == nil || j.state != JobRunning {
		c.mu.Unlock()
		return
	}
	if hdr.Stopped {
		// The worker honoured a cancellation that has since been
		// rescinded, or stopped for its own reasons: requeue (keeping the
		// parent-frontier reference — the item will run again).
		c.requeueItemLocked(j, queued{item: l.item, target: l.target, contID: l.contID}, "stopped")
		c.mu.Unlock()
		return
	}
	j.leaves = append(j.leaves, sde.ShardLeaf{Item: l.item, Snapshot: snapshot})
	c.releaseContLocked(j, l.contID)
	c.reg.Add("sde_results_total", map[string]string{"worker": w.name}, 1)
	finished := len(j.queue) == 0 && len(j.outstanding) == 0
	c.mu.Unlock()
	c.logf("lease %d: shard %s of %s complete (%d bytes)",
		hdr.Lease, l.item.Label(), l.jobID, len(snapshot))
	if finished {
		c.finalizeJob(j)
	}
}

// suspendLease records a lease that hit its depth horizon: the shipped
// frontier is stored and fanned out as continuation items — the job's
// fan-out clamped to what the frontier supports — each targeting the
// next horizon. The suspended item itself is done; its sub-space is now
// exactly covered by its continuation children.
func (c *Coordinator) suspendLease(w *workerConn, hdr SuspendHeader, frontier []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[hdr.Lease]
	if !ok || l.holder != w {
		c.logf("worker %s: suspend for unknown lease %d dropped", w.name, hdr.Lease)
		return
	}
	c.dropLeaseLocked(l)
	j := c.jobs[l.jobID]
	if j == nil || j.state != JobRunning {
		return
	}
	if j.depthHorizon == 0 || hdr.Units < 1 {
		// A suspension we never asked for (or an unusable one) would
		// leave a hole in the cover: requeue the item to run again.
		c.requeueItemLocked(j, queued{item: l.item, target: l.target, contID: l.contID}, "bad-suspend")
		c.logf("lease %d: unexpected suspend from %s requeued", hdr.Lease, w.name)
		return
	}
	f := j.horizonFanout
	if f > hdr.Units {
		f = hdr.Units
	}
	if f < 1 {
		f = 1
	}
	j.nextCont++
	contID := j.nextCont
	j.conts[contID] = &contBlob{data: frontier, refs: f}
	// The parent frontier this lease resumed from is no longer needed by
	// this item — its continuation work is now covered by the children.
	c.releaseContLocked(j, l.contID)
	target := hdr.Events + j.depthHorizon
	for seg := 0; seg < f; seg++ {
		cont := make([]sde.ContStep, len(l.item.Cont)+1)
		copy(cont, l.item.Cont)
		cont[len(l.item.Cont)] = sde.ContStep{Seg: seg, Of: f}
		j.queue = append(j.queue, queued{
			item:   sde.ShardItem{Depth: l.item.Depth, Bits: l.item.Bits, Cont: cont},
			target: target,
			contID: contID,
		})
	}
	c.reg.Add("sde_lease_suspensions_total", nil, 1)
	c.reg.Set("sde_continuation_blobs", nil, float64(c.contBlobsLocked()))
	c.logf("lease %d: shard %s of %s suspended at %d events (%d units) -> %d continuations",
		hdr.Lease, l.item.Label(), l.jobID, hdr.Events, hdr.Units, f)
}

// failLease requeues a lease whose execution errored worker-side.
func (c *Coordinator) failLease(w *workerConn, em ErrorMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[em.Lease]
	if !ok || l.holder != w {
		return
	}
	c.logf("lease %d: worker %s failed: %s", em.Lease, w.name, em.Msg)
	c.requeueLocked(l, "error")
}

// dropLeaseLocked removes a lease from the books without requeueing.
func (c *Coordinator) dropLeaseLocked(l *lease) {
	delete(c.leases, l.id)
	if j := c.jobs[l.jobID]; j != nil {
		delete(j.outstanding, l.id)
	}
	c.reg.AddGauge("sde_worker_leases_active", map[string]string{"worker": l.worker}, -1)
}

// requeueLocked returns a lease's item to its job's queue.
func (c *Coordinator) requeueLocked(l *lease, reason string) {
	c.dropLeaseLocked(l)
	j := c.jobs[l.jobID]
	if j == nil || j.state != JobRunning {
		return
	}
	c.requeueItemLocked(j, queued{item: l.item, target: l.target, contID: l.contID}, reason)
	c.logf("lease %d: shard %s of %s requeued (%s)", l.id, l.item.Label(), l.jobID, reason)
}

func (c *Coordinator) requeueItemLocked(j *job, qi queued, reason string) {
	// Front of the queue: a recovered item is the oldest work we have.
	j.queue = append([]queued{qi}, j.queue...)
	c.reg.Add("sde_lease_requeues_total", map[string]string{"reason": reason}, 1)
}

// finalizeJob assembles the leaves into the job's report. Runs outside
// the coordinator lock: assembly resumes every leaf snapshot.
func (c *Coordinator) finalizeJob(j *job) {
	c.mu.Lock()
	if j.state != JobRunning {
		c.mu.Unlock()
		return
	}
	leaves := j.leaves
	scenario := j.scenario
	testCases := j.testCases
	c.mu.Unlock()

	report, err := sde.AssembleSharded(scenario, leaves)
	var digest string
	if err == nil {
		digest, err = report.Digest(testCases)
	}

	c.mu.Lock()
	if j.state != JobRunning {
		c.mu.Unlock()
		return
	}
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.report = report
		j.digest = digest
	}
	j.conts = nil
	c.reg.Set("sde_continuation_blobs", nil, float64(c.contBlobsLocked()))
	close(j.done)
	c.reg.Set("sde_jobs_active", nil, float64(c.activeJobsLocked()))
	c.mu.Unlock()
	if err != nil {
		c.logf("job %s failed: %v", j.id, err)
	} else {
		c.logf("job %s done: %d shards, digest %s", j.id, len(leaves), digest)
	}
}

// sweepLoop expires leases whose worker stopped heartbeating.
func (c *Coordinator) sweepLoop() {
	interval := c.opts.LeaseTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			var expired []*lease
			for _, l := range c.leases {
				if time.Since(l.lastBeat) > c.opts.LeaseTTL {
					expired = append(expired, l)
				}
			}
			sort.Slice(expired, func(i, k int) bool { return expired[i].id < expired[k].id })
			for _, l := range expired {
				c.requeueLocked(l, "expired")
			}
			c.mu.Unlock()
		}
	}
}
