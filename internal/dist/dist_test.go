package dist

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sde"
	"sde/internal/snap"
)

// testSpec is the reference workload: small enough for CI, sharded deep
// enough (MaxShardBits >= 2) to exercise multi-lease scheduling.
var testSpec = sde.ScenarioSpec{
	Workload: "collect",
	Topology: "grid:3",
	Packets:  2,
	Drops:    "route+neighbors",
}

// oracleDigest runs the spec in-process through the shard scheduler —
// the ground truth every distributed run must reproduce bit-for-bit.
func oracleDigest(t *testing.T, spec sde.ScenarioSpec, bits, testCases int) string {
	t.Helper()
	s, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sde.RunScenarioSharded(s, bits)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := rep.Digest(testCases)
	if err != nil {
		t.Fatal(err)
	}
	return digest
}

func startCoordinator(t *testing.T, opts Options) (*Coordinator, string) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c := NewCoordinator(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go c.Serve(l)
	t.Cleanup(func() { c.Close() })
	return c, l.Addr().String()
}

// startWorker runs a worker until the test ends, reporting its exit
// error on the returned channel.
func startWorker(t *testing.T, ctx context.Context, addr string, opts WorkerOptions) <-chan error {
	t.Helper()
	if opts.WorkDir == "" {
		opts.WorkDir = t.TempDir()
	}
	if opts.Logf == nil {
		name := opts.Name
		opts.Logf = func(format string, args ...any) {
			t.Logf("["+name+"] "+format, args...)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- RunWorker(ctx, addr, opts) }()
	return errc
}

func waitJob(t *testing.T, c *Coordinator, id string, timeout time.Duration) JobStatus {
	t.Helper()
	select {
	case <-c.WaitJob(id):
	case <-time.After(timeout):
		st, _ := c.JobStatus(id)
		t.Fatalf("job %s did not finish in %v: %+v", id, timeout, st)
	}
	st, ok := c.JobStatus(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	return st
}

// TestServiceBitIdentical is the acceptance test of the exploration
// service: two workers lease shards of a submitted job over TCP and the
// assembled report's digest equals the in-process sharded run's.
func TestServiceBitIdentical(t *testing.T) {
	c, addr := startCoordinator(t, Options{RetryMillis: 10})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(t, ctx, addr, WorkerOptions{Name: "w0"})
	startWorker(t, ctx, addr, WorkerOptions{Name: "w1"})

	id, err := c.AddJob(testSpec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, c, id, 60*time.Second)
	if st.State != JobDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	want := oracleDigest(t, testSpec, 2, 8)
	if st.Digest != want {
		t.Errorf("distributed digest %s != in-process digest %s", st.Digest, want)
	}
	if st.Completed != 4 {
		t.Errorf("completed leaves = %d, want 4", st.Completed)
	}
	if _, digest, _, err := c.JobReport(id); err != nil || digest != want {
		t.Errorf("JobReport digest = %s, %v", digest, err)
	}
}

// TestServiceWorkerCrashRecovery kills one worker mid-lease — abrupt
// connection drop right after its shard's first durable checkpoint, like
// a SIGKILL — and requires the surviving fleet to finish the job with a
// report bit-identical to an uninterrupted in-process run.
func TestServiceWorkerCrashRecovery(t *testing.T) {
	c, addr := startCoordinator(t, Options{RetryMillis: 10})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	crashDir := t.TempDir()
	crasher := startWorker(t, ctx, addr, WorkerOptions{
		Name:    "crasher",
		WorkDir: crashDir,
		// Checkpoint every event so the crash provably happens with a
		// durable checkpoint on disk, mid-lease.
		CheckpointEvery:       1,
		CrashAfterCheckpoints: 3,
	})

	id, err := c.AddJob(testSpec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-crasher:
		if err != ErrCrashed {
			t.Fatalf("crasher exited with %v, want ErrCrashed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("crash hook never fired")
	}

	// The fleet that picks up the pieces: one fresh worker, plus the
	// "restarted" crasher reusing its work directory — its re-issued
	// lease resumes from the checkpoint the crash left behind.
	startWorker(t, ctx, addr, WorkerOptions{Name: "w0"})
	startWorker(t, ctx, addr, WorkerOptions{Name: "crasher", WorkDir: crashDir})

	st := waitJob(t, c, id, 60*time.Second)
	if st.State != JobDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	want := oracleDigest(t, testSpec, 2, 8)
	if st.Digest != want {
		t.Errorf("post-crash digest %s != in-process digest %s", st.Digest, want)
	}
	reg := c.Registry()
	if n := reg.Value("sde_lease_requeues_total", map[string]string{"reason": "disconnect"}); n < 1 {
		t.Errorf("disconnect requeues = %v, want >= 1", n)
	}
}

// TestServiceLeaseExpiry: a worker that takes a lease and then hangs
// (connection open, no heartbeats) must lose it to TTL expiry, and the
// job must still finish bit-identically on a healthy worker.
func TestServiceLeaseExpiry(t *testing.T) {
	c, addr := startCoordinator(t, Options{RetryMillis: 10, LeaseTTL: 300 * time.Millisecond})

	// A hand-rolled zombie worker: handshake, take one lease, go silent.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn, MsgHello, Hello{Name: "zombie", Wire: snap.WireVersion}); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := snap.ReadFrame(conn); err != nil || typ != MsgWelcome {
		t.Fatalf("handshake: type %d, %v", typ, err)
	}

	id, err := c.AddJob(testSpec, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeMsg(conn, MsgReady, struct{}{}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := snap.ReadFrame(conn)
	if err != nil || typ != MsgLease {
		t.Fatalf("expected a lease, got type %d, %v", typ, err)
	}
	if _, err := decode[Lease](payload); err != nil {
		t.Fatal(err)
	}
	// ... and now the zombie says nothing, forever.

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(t, ctx, addr, WorkerOptions{Name: "healthy"})

	st := waitJob(t, c, id, 60*time.Second)
	if st.State != JobDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	want := oracleDigest(t, testSpec, 1, 8)
	if st.Digest != want {
		t.Errorf("digest %s != in-process digest %s", st.Digest, want)
	}
	if n := c.Registry().Value("sde_lease_requeues_total", map[string]string{"reason": "expired"}); n < 1 {
		t.Errorf("expired requeues = %v, want >= 1", n)
	}
}

// TestServiceStragglerSplit arms worker self-splitting with a threshold
// of one live state: the single worker must split the root lease when
// the coordinator reports a starved queue, and the assembled mixed-depth
// cover must still explore the exact dscenario space.
func TestServiceStragglerSplit(t *testing.T) {
	c, addr := startCoordinator(t, Options{RetryMillis: 10})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(t, ctx, addr, WorkerOptions{
		Name:            "splitter",
		HeartbeatEvery:  time.Millisecond,
		CheckpointEvery: 1, // slow the run down so heartbeats exchange
		SplitStates:     1,
	})

	id, err := c.AddJob(testSpec, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, c, id, 60*time.Second)
	if st.State != JobDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	if n := c.Registry().Value("sde_lease_splits_total", nil); n < 1 {
		t.Errorf("splits = %v, want >= 1", n)
	}

	s, err := testSpec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sde.RunScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	report, _, _, err := c.JobReport(id)
	if err != nil {
		t.Fatal(err)
	}
	if report.DScenarios().Cmp(ref.DScenarios()) != 0 {
		t.Errorf("dscenarios = %v, want %v", report.DScenarios(), ref.DScenarios())
	}
	if report.States() < ref.States() {
		t.Errorf("states = %d below unsharded %d", report.States(), ref.States())
	}
}

// TestServiceVersionNegotiation: a worker speaking a different wire
// version must be rejected at handshake with an error naming both
// versions.
func TestServiceVersionNegotiation(t *testing.T) {
	_, addr := startCoordinator(t, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn, MsgHello, Hello{Name: "future", Wire: snap.WireVersion + 1}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := snap.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("expected MsgError, got type %d", typ)
	}
	em, err := decode[ErrorMsg](payload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(em.Msg, "version") {
		t.Errorf("rejection %q does not mention the version", em.Msg)
	}
}

// TestServiceCancel: cancelling a queued job flips it to cancelled and
// leaves nothing for workers.
func TestServiceCancel(t *testing.T) {
	c, addr := startCoordinator(t, Options{RetryMillis: 10})
	id, err := c.AddJob(testSpec, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CancelJob(id); err != nil {
		t.Fatal(err)
	}
	st, _ := c.JobStatus(id)
	if st.State != JobCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	// A worker connecting afterwards finds no work and idles.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorker(t, ctx, addr, WorkerOptions{Name: "idle"})
	time.Sleep(100 * time.Millisecond)
	if st, _ := c.JobStatus(id); st.Completed != 0 || st.Outstanding != 0 {
		t.Errorf("cancelled job gained work: %+v", st)
	}
	if _, _, _, err := c.JobReport(id); err == nil {
		t.Error("JobReport on a cancelled job succeeded")
	}
}

// TestAddJobLogsShardabilityNote: the service entry point must surface
// the same shardability warning sde-run prints for flag-driven runs. A
// ScenarioSpec whose program has candidate shard points but no shardable
// nodes is accepted (it still runs, as a single shard) with the note in
// the coordinator log; a shardable spec submits silently.
func TestAddJobLogsShardabilityNote(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	c := NewCoordinator(Options{Logf: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	defer c.Close()

	logged := func() string {
		mu.Lock()
		defer mu.Unlock()
		return strings.Join(lines, "\n")
	}

	warn := sde.ScenarioSpec{
		Workload: "threshold", Topology: "line:3", Algorithm: "sds",
		Packets: 2, Drops: "none",
	}
	if _, err := c.AddJob(warn, 2, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logged(), "cannot partition") {
		t.Fatalf("note missing from coordinator log:\n%s", logged())
	}

	mu.Lock()
	lines = nil
	mu.Unlock()
	if _, err := c.AddJob(testSpec, 2, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(logged(), "cannot partition") {
		t.Fatalf("shardable spec drew a shardability note:\n%s", logged())
	}
}
