package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServiceHTTPAPI drives the whole job lifecycle through the HTTP
// surface: submit, observe, stream events, fetch the report, and check
// the digest against the in-process oracle; then exercise /metrics,
// /healthz, cancellation, and the 404 paths.
func TestServiceHTTPAPI(t *testing.T) {
	c, addr := startCoordinator(t, Options{RetryMillis: 10})
	srv := httptest.NewServer(c.HTTPHandler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fast heartbeats + per-event checkpoints so the heartbeat counters
	// demonstrably move during this short job.
	startWorker(t, ctx, addr, WorkerOptions{
		Name:            "w0",
		HeartbeatEvery:  time.Millisecond,
		CheckpointEvery: 1,
	})

	// Submit.
	body, _ := json.Marshal(SubmitRequest{Spec: testSpec, ShardBits: 2, TestCases: 8})
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" {
		t.Fatal("empty job id")
	}

	// Stream events until the terminal status arrives.
	resp, err = http.Get(srv.URL + "/api/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var last JobStatus
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		if err := json.Unmarshal(scanner.Bytes(), &last); err != nil {
			t.Fatalf("bad event line %q: %v", scanner.Text(), err)
		}
	}
	resp.Body.Close()
	if last.State != JobDone {
		t.Fatalf("final streamed state = %s (%s)", last.State, last.Error)
	}

	// Report: digest must equal the in-process oracle.
	resp, err = http.Get(srv.URL + "/api/v1/jobs/" + sub.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d", resp.StatusCode)
	}
	var report shardedReportJSON
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := oracleDigest(t, testSpec, 2, 8)
	if report.Digest != want {
		t.Errorf("report digest %s != oracle %s", report.Digest, want)
	}
	if len(report.Shards) != 4 {
		t.Errorf("report shards = %d, want 4", len(report.Shards))
	}
	for _, sh := range report.Shards {
		if sh.Report == nil || sh.Report.States == 0 {
			t.Errorf("shard %d has an empty report", sh.Shard)
		}
	}

	// List includes the job.
	resp, err = http.Get(srv.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Errorf("job list = %+v", list)
	}

	// Metrics expose the service counters.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"sde_leases_issued_total", "sde_results_total",
		"sde_heartbeats_total", "sde_workers_connected",
	} {
		if !strings.Contains(string(metricsText), want) {
			t.Errorf("/metrics missing %s:\n%s", want, metricsText)
		}
	}

	// Healthz.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}

	// Cancel a second job before any worker can finish it.
	body, _ = json.Marshal(SubmitRequest{Spec: testSpec, ShardBits: 2})
	resp, err = http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub2 SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sub2)
	resp.Body.Close()
	resp, err = http.Post(srv.URL+"/api/v1/jobs/"+sub2.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := c.JobStatus(sub2.ID)
		if st.State == JobCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job 2 state = %s, want cancelled", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = http.Get(srv.URL + "/api/v1/jobs/" + sub2.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report of cancelled job: status %d, want 409", resp.StatusCode)
	}

	// 404s.
	for _, path := range []string{"/api/v1/jobs/nope", "/api/v1/jobs/nope/report", "/api/v1/jobs/nope/events"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
	}

	// Bad submissions are rejected.
	for _, bad := range []string{`{not json`, `{"spec":{"workload":"collect","topology":"ring:4"}}`} {
		resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q status = %d, want 400", bad, resp.StatusCode)
		}
	}
}
