package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"sde"
)

// SubmitRequest is the POST /api/v1/jobs body.
type SubmitRequest struct {
	Spec sde.ScenarioSpec `json:"spec"`
	// ShardBits sizes the initial partition (clamped to the scenario's
	// MaxShardBits).
	ShardBits int `json:"shard_bits"`
	// TestCases is the per-shard test-case budget used for the report
	// and its digest (0 = none).
	TestCases int `json:"test_cases"`
	// DepthHorizon, when non-zero, partitions the job along the second
	// shard dimension — exploration depth: leases suspend every
	// DepthHorizon processed events and fan their frontiers out as
	// continuation items (see JobOptions.DepthHorizon).
	DepthHorizon uint64 `json:"depth_horizon,omitempty"`
	// HorizonFanout is the continuation fan-out per suspension (0 =
	// default 2 when DepthHorizon is set).
	HorizonFanout int `json:"horizon_fanout,omitempty"`
}

// SubmitResponse answers a job submission.
type SubmitResponse struct {
	ID string `json:"id"`
}

type shardReportJSON struct {
	Shard  int               `json:"shard"`
	Pin    map[string]uint64 `json:"pin,omitempty"`
	Report *sde.ReportJSON   `json:"report"`
}

type shardedReportJSON struct {
	Job        string            `json:"job"`
	Digest     string            `json:"digest"`
	States     int               `json:"states"`
	DScenarios string            `json:"dscenarios"`
	Shards     []shardReportJSON `json:"shards"`
}

// HTTPHandler exposes the job API:
//
//	POST /api/v1/jobs              submit a job (SubmitRequest -> SubmitResponse)
//	GET  /api/v1/jobs              list job statuses
//	GET  /api/v1/jobs/{id}         one job's status
//	GET  /api/v1/jobs/{id}/report  the finished job's full report + digest
//	GET  /api/v1/jobs/{id}/events  stream status JSON lines until terminal
//	POST /api/v1/jobs/{id}/cancel  cancel a job
//	GET  /metrics                  Prometheus text exposition
//	GET  /healthz                  liveness probe
func (c *Coordinator) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		id, err := c.AddJobWith(req.Spec, JobOptions{
			ShardBits:     req.ShardBits,
			TestCases:     req.TestCases,
			DepthHorizon:  req.DepthHorizon,
			HorizonFanout: req.HorizonFanout,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, SubmitResponse{ID: id})
	})
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Jobs())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.JobStatus(r.PathValue("id"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		report, digest, testCases, err := c.JobReport(id)
		if err != nil {
			if _, ok := c.JobStatus(id); !ok {
				http.NotFound(w, r)
			} else {
				http.Error(w, err.Error(), http.StatusConflict)
			}
			return
		}
		out := shardedReportJSON{
			Job:        id,
			Digest:     digest,
			States:     report.States(),
			DScenarios: report.DScenarios().String(),
		}
		for _, sh := range report.Shards {
			rj, err := sh.Report.JSON(testCases)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			out.Shards = append(out.Shards, shardReportJSON{
				Shard: sh.Shard, Pin: sh.Pin, Report: rj,
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := c.JobStatus(id); !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		done := c.WaitJob(id)
		ticker := time.NewTicker(250 * time.Millisecond)
		defer ticker.Stop()
		for {
			st, ok := c.JobStatus(id)
			if !ok {
				return
			}
			if err := enc.Encode(st); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if st.State != JobRunning {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-done:
				// Loop once more to emit the terminal status.
			case <-ticker.C:
			}
		}
	})
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		if err := c.CancelJob(r.PathValue("id")); err != nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, map[string]string{"status": "cancelled"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.reg.WriteTo(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
