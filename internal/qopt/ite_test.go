package qopt

// ITE-folding rewrite cases over the expression shapes state merging
// produces: branch conditions of the form k == ite(pathΔ, v1, v2), ite
// chains nested by re-merging (sharing a condition), and conditions or
// arms that constant-fold away once members' values are substituted back
// in. Every rule is an equivalence (covered by FuzzRewriteEquivalence,
// whose generator emits ite nodes); these tests pin the exact folds so a
// regression shows up as a wrong shape, not just a missed reduction.

import (
	"testing"

	"sde/internal/expr"
)

func TestRewriteIteFolding(t *testing.T) {
	eb := expr.NewBuilder()
	o := New(eb)
	d := eb.Var("d", 1)   // a merge path-delta condition
	d2 := eb.Var("d2", 1) // a second, independent delta
	x := eb.Var("x", 8)
	y := eb.Var("y", 8)
	c3 := eb.Const(3, 8)
	c7 := eb.Const(7, 8)

	cases := []struct {
		name     string
		in, want *expr.Expr
	}{
		// Branch on a merged value with constant member values: the
		// whole comparison collapses onto the merge condition.
		{"const-arms-eq-then",
			eb.Eq(c3, eb.Ite(d, c3, c7)), d},
		{"const-arms-eq-else",
			eb.Eq(c3, eb.Ite(d, c7, c3)), eb.Not(d)},
		{"const-arms-eq-neither",
			eb.Eq(eb.Const(9, 8), eb.Ite(d, c3, c7)), eb.False()},
		// Negated condition: ite(¬d, a, b) = ite(d, b, a).
		{"negated-cond",
			eb.Ite(eb.Not(d), x, y), eb.Ite(d, y, x)},
		// Re-merge nesting with the same delta: the inner ite is
		// already decided by the outer condition.
		{"nested-same-cond-then",
			eb.Ite(d, eb.Ite(d, x, y), c3), eb.Ite(d, x, c3)},
		{"nested-same-cond-else",
			eb.Ite(d, c3, eb.Ite(d, x, y)), eb.Ite(d, c3, y)},
		// Independent deltas must NOT fold: the chain stays.
		{"nested-independent-cond",
			eb.Ite(d, eb.Ite(d2, x, y), c3), eb.Ite(d, eb.Ite(d2, x, y), c3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := o.Rewrite(tc.in); got != tc.want {
				t.Errorf("Rewrite(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

// TestRewriteIteChainCollapse runs a three-deep chain — the worst shape a
// rep merged out of four members produces once all sub-maps substitute
// back to the same condition — through Rewrite's fixpoint loop: each
// round peels one nesting level, and the loop must reach the single-ite
// normal form.
func TestRewriteIteChainCollapse(t *testing.T) {
	eb := expr.NewBuilder()
	o := New(eb)
	d := eb.Var("d", 1)
	x := eb.Var("x", 8)
	y := eb.Var("y", 8)
	z := eb.Var("z", 8)
	w := eb.Var("w", 8)

	chain := eb.Ite(d, eb.Ite(d, eb.Ite(d, x, y), z), w)
	if got, want := o.Rewrite(chain), eb.Ite(d, x, w); got != want {
		t.Errorf("Rewrite(%v) = %v, want %v", chain, got, want)
	}

	// Constant-cond and same-arm folds happen in the Builder itself, so
	// merge code paths can never even construct the redundant node —
	// pin that contract here since the rewriter relies on it.
	if got := eb.Ite(eb.True(), x, y); got != x {
		t.Errorf("Ite(true, x, y) = %v, want x", got)
	}
	if got := eb.Ite(eb.False(), x, y); got != y {
		t.Errorf("Ite(false, x, y) = %v, want y", got)
	}
	if got := eb.Ite(d, x, x); got != x {
		t.Errorf("Ite(d, x, x) = %v, want x", got)
	}
	// And through the rewriter: inner rewriting simplifies the condition
	// and rebuild re-runs Builder.Ite over the result.
	in := eb.Ite(eb.Eq(eb.Add(x, eb.Const(5, 8)), eb.Const(5, 8)), z, w)
	// (x+5 == 5) rewrites to (x == 0); the ite survives but over the
	// simpler condition.
	if got, want := o.Rewrite(in), eb.Ite(eb.Eq(eb.Const(0, 8), x), z, w); got != want {
		t.Errorf("Rewrite(%v) = %v, want %v", in, got, want)
	}
}
