// Package qopt implements the query-optimization pipeline that sits
// between path-condition construction and the solver. Three independent
// stages shrink a query before it reaches Tseitin encoding and the CDCL
// core:
//
//  1. Independence slicing (Slice): union-find the constraint set into
//     variable-connected factor groups and keep only the factors
//     transitively connected to the query expression. The dropped
//     factors are feasibility-irrelevant by construction — every prefix
//     constraint was feasibility-checked when it joined the path
//     condition, so a variable-disjoint factor is satisfiable on its
//     own and SAT(A ∧ B) = SAT(A) ∧ SAT(B) for disjoint A, B.
//  2. Algebraic rewriting (Rewrite / OptimizeSet): a fixpoint rewrite
//     pass — constant propagation through comparisons, x==c
//     substitution across the conjunction, double-negation/De Morgan,
//     strength reduction of power-of-two multiplies/divides/mods, ITE
//     folding — that runs before encoding so the persistent blast
//     context sees strictly fewer gates. Every rule is an equivalence:
//     the rewritten conjunction has exactly the models of the original.
//  3. Implied-value concretization: helpers (ImpliedBinding plus
//     expr.EvalBound) that let the VM record variables forced to
//     constants by the path condition and decide later reads and branch
//     conditions concretely, without any solver query.
//
// Optimizer state is derived from interned expressions and is never
// serialized: checkpoints stay bit-identical, and a resumed run rebuilds
// rewrite memos on demand. Each stage is independently toggleable via
// solver.Options; disabling a stage is the first triage step when a
// soundness bug is suspected.
package qopt

import (
	"sync"
	"sync/atomic"

	"sde/internal/expr"
)

// Optimizer carries the per-run rewrite memos and activity counters. One
// Optimizer serves one expr.Builder (and hence one solver); it is safe
// for concurrent use.
type Optimizer struct {
	eb *expr.Builder

	mu    sync.Mutex
	rw    map[*expr.Expr]*expr.Expr // constraint → fixpoint rewrite
	nodes map[*expr.Expr]int        // DAG node-count memo

	rewriteHits      atomic.Int64
	gatesElided      atomic.Int64
	concretizedReads atomic.Int64
}

// New returns an Optimizer building rewritten expressions with eb. All
// constraints passed to the Optimizer must come from eb.
func New(eb *expr.Builder) *Optimizer {
	return &Optimizer{
		eb:    eb,
		rw:    make(map[*expr.Expr]*expr.Expr, 256),
		nodes: make(map[*expr.Expr]int, 256),
	}
}

// RewriteHits returns how many constraints a rewrite pass changed.
func (o *Optimizer) RewriteHits() int64 { return o.rewriteHits.Load() }

// GatesElided estimates the encoding work avoided, in expression DAG
// nodes removed from queries by rewriting and slicing (each node costs a
// handful of Tseitin gates to encode).
func (o *Optimizer) GatesElided() int64 { return o.gatesElided.Load() }

// ConcretizedReads returns how many reads and branch decisions the VM
// decided concretely from implied bindings instead of querying the
// solver.
func (o *Optimizer) ConcretizedReads() int64 { return o.concretizedReads.Load() }

// NoteConcretizedRead records one concretized read or branch decision.
func (o *Optimizer) NoteConcretizedRead() { o.concretizedReads.Add(1) }

// --- stage 1: independence slicing --------------------------------------

// Slice partitions constraints into variable-connected factor groups and
// returns the constraints transitively connected to query (kept, in
// input order) plus the disconnected factor groups (dropped). A
// constraint without variables is kept conservatively.
func (o *Optimizer) Slice(constraints []*expr.Expr, query *expr.Expr) (kept []*expr.Expr, dropped [][]*expr.Expr) {
	n := len(constraints)
	if n == 0 || len(query.VarIDs()) == 0 {
		return constraints, nil
	}
	// Union-find over n constraints plus the query (index n).
	parent := make([]int, n+1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	owner := make(map[uint32]int, 2*n)
	link := func(i int, e *expr.Expr) {
		for _, id := range e.VarIDs() {
			if j, ok := owner[id]; ok {
				union(i, j)
			} else {
				owner[id] = i
			}
		}
	}
	for i, c := range constraints {
		link(i, c)
	}
	link(n, query)

	root := find(n)
	var groups map[int][]*expr.Expr
	var order []int
	for i, c := range constraints {
		switch {
		case len(c.VarIDs()) == 0 || find(i) == root:
			kept = append(kept, c)
		default:
			if groups == nil {
				groups = make(map[int][]*expr.Expr)
			}
			r := find(i)
			if _, ok := groups[r]; !ok {
				order = append(order, r)
			}
			groups[r] = append(groups[r], c)
		}
	}
	if len(order) == 0 {
		return constraints, nil
	}
	dropped = make([][]*expr.Expr, 0, len(order))
	for _, r := range order {
		dropped = append(dropped, groups[r])
	}
	return kept, dropped
}

// NoteSliced records the estimated encoding work avoided by dropping the
// given factor groups from one query.
func (o *Optimizer) NoteSliced(dropped [][]*expr.Expr) {
	var n int
	for _, group := range dropped {
		for _, c := range group {
			n += o.NodeCount(c)
		}
	}
	o.gatesElided.Add(int64(n))
}

// NodeCount returns the number of distinct DAG nodes in e, memoised
// across calls.
func (o *Optimizer) NodeCount(e *expr.Expr) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.nodeCountLocked(e)
}

func (o *Optimizer) nodeCountLocked(e *expr.Expr) int {
	if n, ok := o.nodes[e]; ok {
		return n
	}
	seen := make(map[*expr.Expr]bool)
	var walk func(*expr.Expr) int
	walk = func(e *expr.Expr) int {
		if e == nil || seen[e] {
			return 0
		}
		seen[e] = true
		return 1 + walk(e.Arg(0)) + walk(e.Arg(1)) + walk(e.Arg(2))
	}
	n := walk(e)
	o.nodes[e] = n
	return n
}

// --- stage 2: algebraic rewriting ---------------------------------------

// maxRewriteRounds bounds the per-constraint fixpoint iteration; the rule
// set strictly shrinks expressions, so this is a safety net, not a tuning
// knob.
const maxRewriteRounds = 8

// Rewrite applies the algebraic rewrite rules to one constraint until a
// fixpoint, memoised per constraint. The result is equivalent to c (same
// value under every assignment).
func (o *Optimizer) Rewrite(c *expr.Expr) *expr.Expr {
	o.mu.Lock()
	if out, ok := o.rw[c]; ok {
		o.mu.Unlock()
		return out
	}
	o.mu.Unlock()

	out := c
	for i := 0; i < maxRewriteRounds; i++ {
		next := o.rewriteOnce(out)
		if next == out {
			break
		}
		out = next
	}
	o.mu.Lock()
	o.rw[c] = out
	o.rw[out] = out
	if out != c {
		delta := o.nodeCountLocked(c) - o.nodeCountLocked(out)
		o.mu.Unlock()
		o.rewriteHits.Add(1)
		if delta > 0 {
			o.gatesElided.Add(int64(delta))
		}
		return out
	}
	o.mu.Unlock()
	return out
}

// rewriteOnce rebuilds e bottom-up through the Builder (re-triggering its
// constant folding and canonicalisation) and applies one round of the
// local rules at every node.
func (o *Optimizer) rewriteOnce(e *expr.Expr) *expr.Expr {
	memo := make(map[*expr.Expr]*expr.Expr)
	return o.walkRewrite(e, memo)
}

func (o *Optimizer) walkRewrite(e *expr.Expr, memo map[*expr.Expr]*expr.Expr) *expr.Expr {
	if out, ok := memo[e]; ok {
		return out
	}
	out := e
	if e.Arg(0) != nil {
		a := o.walkRewrite(e.Arg(0), memo)
		var b, c *expr.Expr
		if e.Arg(1) != nil {
			b = o.walkRewrite(e.Arg(1), memo)
		}
		if e.Arg(2) != nil {
			c = o.walkRewrite(e.Arg(2), memo)
		}
		out = o.rebuild(e, a, b, c)
	}
	out = o.peephole(out)
	memo[e] = out
	return out
}

// rebuild reconstructs a node of e's kind over new operands via the
// Builder, reusing e when nothing changed.
func (o *Optimizer) rebuild(e, a, b, c *expr.Expr) *expr.Expr {
	if a == e.Arg(0) && b == e.Arg(1) && c == e.Arg(2) {
		return e
	}
	eb := o.eb
	switch e.Kind() {
	case expr.KindAdd:
		return eb.Add(a, b)
	case expr.KindSub:
		return eb.Sub(a, b)
	case expr.KindMul:
		return eb.Mul(a, b)
	case expr.KindUDiv:
		return eb.UDiv(a, b)
	case expr.KindURem:
		return eb.URem(a, b)
	case expr.KindAnd:
		return eb.And(a, b)
	case expr.KindOr:
		return eb.Or(a, b)
	case expr.KindXor:
		return eb.Xor(a, b)
	case expr.KindNot:
		return eb.Not(a)
	case expr.KindShl:
		return eb.Shl(a, b)
	case expr.KindLShr:
		return eb.LShr(a, b)
	case expr.KindAShr:
		return eb.AShr(a, b)
	case expr.KindEq:
		return eb.Eq(a, b)
	case expr.KindUlt:
		return eb.Ult(a, b)
	case expr.KindUle:
		return eb.Ule(a, b)
	case expr.KindSlt:
		return eb.Slt(a, b)
	case expr.KindSle:
		return eb.Sle(a, b)
	case expr.KindIte:
		return eb.Ite(a, b, c)
	case expr.KindZExt:
		return eb.ZExt(a, e.Width())
	case expr.KindSExt:
		return eb.SExt(a, e.Width())
	case expr.KindTrunc:
		return eb.Trunc(a, e.Width())
	default:
		return e
	}
}

// peephole applies the local rewrite rules at one node. Every rule is an
// equivalence (verified by FuzzRewriteEquivalence) and strictly reduces
// either node count or encoding cost. The Builder canonicalises
// commutative operands constant-first, which the patterns rely on.
func (o *Optimizer) peephole(e *expr.Expr) *expr.Expr {
	eb := o.eb
	w := e.Width()
	switch e.Kind() {
	case expr.KindNot:
		a := e.Arg(0)
		switch a.Kind() {
		case expr.KindUlt:
			// ¬(x < y) = y ≤ x
			return eb.Ule(a.Arg(1), a.Arg(0))
		case expr.KindUle:
			// ¬(x ≤ y) = y < x
			return eb.Ult(a.Arg(1), a.Arg(0))
		case expr.KindSlt:
			return eb.Sle(a.Arg(1), a.Arg(0))
		case expr.KindSle:
			return eb.Slt(a.Arg(1), a.Arg(0))
		case expr.KindAnd:
			// De Morgan, only in the direction that sheds negations:
			// ¬(¬x ∧ ¬y) = x ∨ y (bitwise, any width).
			if a.Arg(0).Kind() == expr.KindNot && a.Arg(1).Kind() == expr.KindNot {
				return eb.Or(a.Arg(0).Arg(0), a.Arg(1).Arg(0))
			}
		case expr.KindOr:
			if a.Arg(0).Kind() == expr.KindNot && a.Arg(1).Kind() == expr.KindNot {
				return eb.And(a.Arg(0).Arg(0), a.Arg(1).Arg(0))
			}
		}
	case expr.KindMul:
		// Strength reduction: a power-of-two multiplier becomes a shift
		// (a bit rewiring instead of a partial-product array).
		if c := e.Arg(0); c.IsConst() && isPow2(c.ConstVal()) {
			return eb.Shl(e.Arg(1), eb.Const(log2(c.ConstVal()), w))
		}
	case expr.KindUDiv:
		if c := e.Arg(1); c.IsConst() && isPow2(c.ConstVal()) {
			return eb.LShr(e.Arg(0), eb.Const(log2(c.ConstVal()), w))
		}
	case expr.KindURem:
		if c := e.Arg(1); c.IsConst() && isPow2(c.ConstVal()) {
			return eb.And(e.Arg(0), eb.Const(c.ConstVal()-1, w))
		}
	case expr.KindUlt:
		// x < 1 = (x == 0): an equality chain beats a comparator.
		if c := e.Arg(1); c.IsConst() && c.ConstVal() == 1 {
			return eb.Eq(eb.Const(0, e.Arg(0).Width()), e.Arg(0))
		}
	case expr.KindEq:
		// Constant propagation through invertible operators:
		// (c == c2+x) → (c-c2 == x), (c == c2^x) → (c^c2 == x),
		// (c == ¬x) → (¬c == x).
		if c := e.Arg(0); c.IsConst() {
			y := e.Arg(1)
			yw := y.Width()
			switch {
			case y.Kind() == expr.KindAdd && y.Arg(0).IsConst():
				return eb.Eq(eb.Const(c.ConstVal()-y.Arg(0).ConstVal(), yw), y.Arg(1))
			case y.Kind() == expr.KindXor && y.Arg(0).IsConst():
				return eb.Eq(eb.Const(c.ConstVal()^y.Arg(0).ConstVal(), yw), y.Arg(1))
			case y.Kind() == expr.KindNot:
				return eb.Eq(eb.Const(^c.ConstVal(), yw), y.Arg(0))
			case y.Kind() == expr.KindIte &&
				y.Arg(1).IsConst() && y.Arg(2).IsConst():
				// (k == ite(d, c1, c2)) with constant arms — the shape
				// every branch on a merged value takes — collapses to a
				// predicate on the merge condition alone: d, ¬d, or
				// false. (c1 == c2 cannot reach here: hash-consing makes
				// equal constants one node and Builder.Ite folds t==f.)
				switch {
				case c.ConstVal() == y.Arg(1).ConstVal():
					return y.Arg(0)
				case c.ConstVal() == y.Arg(2).ConstVal():
					return eb.Not(y.Arg(0))
				default:
					return eb.False()
				}
			}
		}
	case expr.KindIte:
		// Merge-produced ite chains: re-merging substitutes members'
		// sub-mapped values back in, nesting ites that often share the
		// same path-delta condition. (Constant conditions and equal arms
		// never reach here — Builder.Ite folds those at construction.)
		cond, tv, fv := e.Arg(0), e.Arg(1), e.Arg(2)
		if cond.Kind() == expr.KindNot {
			// ite(¬d, a, b) = ite(d, b, a): sheds the negation.
			return eb.Ite(cond.Arg(0), fv, tv)
		}
		// Same condition nested in an arm: the inner ite is decided.
		// ite(d, ite(d, a, b), c) = ite(d, a, c) and symmetrically.
		if tv.Kind() == expr.KindIte && tv.Arg(0) == cond {
			return eb.Ite(cond, tv.Arg(1), fv)
		}
		if fv.Kind() == expr.KindIte && fv.Arg(0) == cond {
			return eb.Ite(cond, tv, fv.Arg(2))
		}
	}
	return e
}

func isPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

func log2(v uint64) uint64 {
	var n uint64
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// OptimizeSet rewrites a conjunction of constraints: each constraint goes
// through Rewrite, constants forced by one constraint (x==c, v, ¬v) are
// substituted into the others, and constraints reduced to true are
// dropped. The returned set's conjunction is equivalent to the input's —
// defining constraints are kept, so no model is lost or gained.
//
// subChanged reports whether cross-constraint substitution (as opposed to
// per-constraint rewriting) modified the set; callers use it to decide
// whether per-constraint session caches still apply. unsat is true when
// some constraint reduced to constant false, deciding the whole
// conjunction.
func (o *Optimizer) OptimizeSet(active []*expr.Expr) (out []*expr.Expr, subChanged, unsat bool) {
	out = make([]*expr.Expr, 0, len(active))
	for _, c := range active {
		r := o.Rewrite(c)
		if r.IsFalse() {
			return nil, subChanged, true
		}
		if r.IsTrue() {
			continue
		}
		out = append(out, r)
	}

	for round := 0; round < maxRewriteRounds; round++ {
		bind, defines := impliedBindings(out)
		if len(bind) == 0 {
			return out, subChanged, false
		}
		changedRound := false
		next := out[:0]
		for i, c := range out {
			sub := o.substitute(c, bind, defines[i])
			if sub != c {
				sub = o.Rewrite(sub)
				changedRound = true
				subChanged = true
				o.rewriteHits.Add(1)
				if d := o.NodeCount(c) - o.NodeCount(sub); d > 0 {
					o.gatesElided.Add(int64(d))
				}
			}
			if sub.IsFalse() {
				return nil, subChanged, true
			}
			if sub.IsTrue() {
				continue
			}
			next = append(next, sub)
		}
		out = next
		if !changedRound {
			break
		}
	}
	return out, subChanged, false
}

// impliedBindings scans a constraint set for constraints that force a
// variable to a constant and returns the binding map (variable node →
// constant value) plus, per constraint index, the variable it defines
// (nil for non-defining constraints). A constraint must keep defining its
// own variable — substituting a binding into its own definition would
// drop the model restriction — so substitution excludes it.
func impliedBindings(constraints []*expr.Expr) (map[*expr.Expr]uint64, []*expr.Expr) {
	var bind map[*expr.Expr]uint64
	defines := make([]*expr.Expr, len(constraints))
	for i, c := range constraints {
		v, val, ok := ImpliedBinding(c)
		if !ok {
			continue
		}
		if bind == nil {
			bind = make(map[*expr.Expr]uint64, 4)
		}
		if _, dup := bind[v]; !dup {
			bind[v] = val
		}
		defines[i] = v
	}
	return bind, defines
}

// ImpliedBinding reports the variable binding a single constraint forces:
// Eq(const, v) binds v to the constant (the Builder canonicalises
// constants to the left), a bare 1-bit variable binds it to 1, and its
// negation binds it to 0.
func ImpliedBinding(c *expr.Expr) (v *expr.Expr, val uint64, ok bool) {
	switch {
	case c.Kind() == expr.KindVar:
		return c, 1, true
	case c.Kind() == expr.KindNot && c.Arg(0).Kind() == expr.KindVar:
		return c.Arg(0), 0, true
	case c.Kind() == expr.KindEq && c.Arg(0).IsConst() && c.Arg(1).Kind() == expr.KindVar:
		return c.Arg(1), c.Arg(0).ConstVal(), true
	}
	return nil, 0, false
}

// substitute replaces bound variables in c with their constants, skipping
// the variable c itself defines. Only constraints that mention a bound
// variable are rebuilt.
func (o *Optimizer) substitute(c *expr.Expr, bind map[*expr.Expr]uint64, defines *expr.Expr) *expr.Expr {
	touches := false
	for v := range bind {
		if v != defines && c.HasVar(v.VarID()) {
			touches = true
			break
		}
	}
	if !touches {
		return c
	}
	memo := make(map[*expr.Expr]*expr.Expr)
	var walk func(*expr.Expr) *expr.Expr
	walk = func(e *expr.Expr) *expr.Expr {
		if out, ok := memo[e]; ok {
			return out
		}
		out := e
		if e.Kind() == expr.KindVar {
			if val, ok := bind[e]; ok && e != defines {
				out = o.eb.Const(val, e.Width())
			}
		} else if e.Arg(0) != nil {
			a := walk(e.Arg(0))
			var b, cc *expr.Expr
			if e.Arg(1) != nil {
				b = walk(e.Arg(1))
			}
			if e.Arg(2) != nil {
				cc = walk(e.Arg(2))
			}
			out = o.rebuild(e, a, b, cc)
		}
		memo[e] = out
		return out
	}
	return walk(c)
}
