package qopt

import (
	"testing"

	"sde/internal/expr"
)

func TestSliceKeepsConnectedComponent(t *testing.T) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 8)
	y := eb.Var("y", 8)
	z := eb.Var("z", 8)
	d0 := eb.Var("d0", 1)
	cs := []*expr.Expr{
		eb.Ult(x, eb.Const(10, 8)), // connected to query via x
		eb.Ult(y, eb.Const(20, 8)), // connected to x through the next one
		eb.Ult(eb.Add(x, y), eb.Const(30, 8)),
		eb.Eq(z, eb.Const(3, 8)), // independent factor
		d0,                       // independent singleton factor
	}
	o := New(eb)
	query := eb.Ult(eb.Const(5, 8), x)
	kept, dropped := o.Slice(cs, query)
	if len(kept) != 3 {
		t.Fatalf("kept %d constraints, want 3: %v", len(kept), kept)
	}
	for i, c := range cs[:3] {
		if kept[i] != c {
			t.Fatalf("kept[%d] = %v, want input order preserved", i, kept[i])
		}
	}
	if len(dropped) != 2 {
		t.Fatalf("dropped %d groups, want 2", len(dropped))
	}
}

func TestSliceAllConnected(t *testing.T) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 8)
	cs := []*expr.Expr{eb.Ult(x, eb.Const(10, 8)), eb.Ult(eb.Const(2, 8), x)}
	o := New(eb)
	kept, dropped := o.Slice(cs, eb.Eq(x, eb.Const(5, 8)))
	if len(kept) != 2 || dropped != nil {
		t.Fatalf("kept=%d dropped=%d, want 2/none", len(kept), len(dropped))
	}
}

func TestRewriteStrengthReduction(t *testing.T) {
	eb := expr.NewBuilder()
	o := New(eb)
	x := eb.Var("x", 12)
	cases := []struct{ in, want *expr.Expr }{
		{eb.Ult(eb.Mul(x, eb.Const(8, 12)), eb.Const(100, 12)),
			eb.Ult(eb.Shl(x, eb.Const(3, 12)), eb.Const(100, 12))},
		{eb.Eq(eb.UDiv(x, eb.Const(4, 12)), eb.Const(1, 12)),
			eb.Eq(eb.Const(1, 12), eb.LShr(x, eb.Const(2, 12)))},
		{eb.Eq(eb.URem(x, eb.Const(16, 12)), eb.Const(0, 12)),
			eb.Eq(eb.Const(0, 12), eb.And(x, eb.Const(15, 12)))},
		{eb.Not(eb.Ult(x, eb.Const(7, 12))),
			eb.Ule(eb.Const(7, 12), x)},
		{eb.Ult(x, eb.Const(1, 12)),
			eb.Eq(eb.Const(0, 12), x)},
		{eb.Eq(eb.Add(x, eb.Const(5, 12)), eb.Const(9, 12)),
			eb.Eq(eb.Const(4, 12), x)},
	}
	for i, c := range cases {
		if got := o.Rewrite(c.in); got != c.want {
			t.Errorf("case %d: Rewrite(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
	if o.RewriteHits() == 0 {
		t.Error("RewriteHits not counted")
	}
	if o.GatesElided() == 0 {
		t.Error("GatesElided not counted")
	}
}

func TestRewriteFixpointMemo(t *testing.T) {
	eb := expr.NewBuilder()
	o := New(eb)
	x := eb.Var("x", 8)
	c := eb.Not(eb.Ule(eb.Mul(x, eb.Const(4, 8)), eb.Const(40, 8)))
	first := o.Rewrite(c)
	want := eb.Ult(eb.Const(40, 8), eb.Shl(x, eb.Const(2, 8)))
	if first != want {
		t.Fatalf("Rewrite = %v, want %v", first, want)
	}
	hits := o.RewriteHits()
	if got := o.Rewrite(c); got != first {
		t.Fatalf("memoised Rewrite diverged: %v", got)
	}
	if o.RewriteHits() != hits {
		t.Fatalf("memoised Rewrite recounted a hit")
	}
	// A rewritten constraint is its own fixpoint.
	if got := o.Rewrite(first); got != first {
		t.Fatalf("Rewrite not idempotent: %v", got)
	}
}

func TestImpliedBinding(t *testing.T) {
	eb := expr.NewBuilder()
	x := eb.Var("x", 8)
	d := eb.Var("d", 1)
	if v, val, ok := ImpliedBinding(eb.Eq(x, eb.Const(7, 8))); !ok || v != x || val != 7 {
		t.Fatalf("Eq binding: %v %d %v", v, val, ok)
	}
	if v, val, ok := ImpliedBinding(d); !ok || v != d || val != 1 {
		t.Fatalf("bare bool binding: %v %d %v", v, val, ok)
	}
	if v, val, ok := ImpliedBinding(eb.Not(d)); !ok || v != d || val != 0 {
		t.Fatalf("negated bool binding: %v %d %v", v, val, ok)
	}
	if _, _, ok := ImpliedBinding(eb.Ult(x, eb.Const(3, 8))); ok {
		t.Fatal("Ult is not a binding")
	}
}

func TestOptimizeSetSubstitution(t *testing.T) {
	eb := expr.NewBuilder()
	o := New(eb)
	x := eb.Var("x", 8)
	y := eb.Var("y", 8)
	def := eb.Eq(x, eb.Const(3, 8))
	use := eb.Ult(eb.Add(x, y), eb.Const(10, 8))
	out, subChanged, unsat := o.OptimizeSet([]*expr.Expr{def, use})
	if unsat || !subChanged {
		t.Fatalf("unsat=%v subChanged=%v, want false/true", unsat, subChanged)
	}
	// The defining constraint stays; the use site sees x=3.
	wantUse := eb.Ult(eb.Add(eb.Const(3, 8), y), eb.Const(10, 8))
	wantUse = o.Rewrite(wantUse)
	if len(out) != 2 || out[0] != o.Rewrite(def) || out[1] != wantUse {
		t.Fatalf("OptimizeSet = %v, want [%v %v]", out, o.Rewrite(def), wantUse)
	}
}

func TestOptimizeSetDetectsUnsat(t *testing.T) {
	eb := expr.NewBuilder()
	o := New(eb)
	x := eb.Var("x", 8)
	cs := []*expr.Expr{
		eb.Eq(x, eb.Const(3, 8)),
		eb.Ult(x, eb.Const(2, 8)), // x=3 makes this false
	}
	if _, _, unsat := o.OptimizeSet(cs); !unsat {
		t.Fatal("substitution should expose the contradiction")
	}
}

func TestOptimizeSetKeepsDefiningConstraint(t *testing.T) {
	// A defining constraint must not be substituted into itself: the set
	// {x==3} must stay {x==3}, not become {}.
	eb := expr.NewBuilder()
	o := New(eb)
	x := eb.Var("x", 8)
	def := eb.Eq(x, eb.Const(3, 8))
	out, subChanged, unsat := o.OptimizeSet([]*expr.Expr{def})
	if unsat || subChanged || len(out) != 1 || out[0] != def {
		t.Fatalf("OptimizeSet({x==3}) = %v (sub=%v unsat=%v), want unchanged",
			out, subChanged, unsat)
	}
}

func TestNodeCount(t *testing.T) {
	eb := expr.NewBuilder()
	o := New(eb)
	x := eb.Var("x", 8)
	// Ult(Add(x, 1), 5): Ult, Add, x, 1, 5 — five distinct nodes.
	c := eb.Ult(eb.Add(x, eb.Const(1, 8)), eb.Const(5, 8))
	if n := o.NodeCount(c); n != 5 {
		t.Fatalf("NodeCount = %d, want 5", n)
	}
}
