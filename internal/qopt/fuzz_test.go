package qopt

import (
	"math/rand"
	"testing"

	"sde/internal/expr"
)

// exprGen grows random expression DAGs from a fuzz byte stream. The
// stream is the only source of shape decisions, so the corpus minimiser
// works; an exhausted stream degrades to leaves, which bounds depth.
type exprGen struct {
	eb   *expr.Builder
	data []byte
	pos  int
}

func (g *exprGen) byte() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

var genWidths = []int{1, 4, 8, 12}

// word returns a random expression of the given width.
func (g *exprGen) word(width, depth int) *expr.Expr {
	eb := g.eb
	op := g.byte()
	if depth <= 0 {
		op %= 2
	}
	switch op % 12 {
	case 0:
		return eb.Const(uint64(g.byte()), width)
	case 1:
		return eb.Var(varName(width, int(g.byte())%3), width)
	case 2:
		return eb.Add(g.word(width, depth-1), g.word(width, depth-1))
	case 3:
		return eb.Sub(g.word(width, depth-1), g.word(width, depth-1))
	case 4:
		return eb.Mul(g.word(width, depth-1), g.word(width, depth-1))
	case 5:
		return eb.UDiv(g.word(width, depth-1), g.word(width, depth-1))
	case 6:
		return eb.URem(g.word(width, depth-1), g.word(width, depth-1))
	case 7:
		switch g.byte() % 3 {
		case 0:
			return eb.And(g.word(width, depth-1), g.word(width, depth-1))
		case 1:
			return eb.Or(g.word(width, depth-1), g.word(width, depth-1))
		default:
			return eb.Xor(g.word(width, depth-1), g.word(width, depth-1))
		}
	case 8:
		return eb.Not(g.word(width, depth-1))
	case 9:
		switch g.byte() % 3 {
		case 0:
			return eb.Shl(g.word(width, depth-1), g.word(width, depth-1))
		case 1:
			return eb.LShr(g.word(width, depth-1), g.word(width, depth-1))
		default:
			return eb.AShr(g.word(width, depth-1), g.word(width, depth-1))
		}
	case 10:
		return eb.Ite(g.boolean(depth-1), g.word(width, depth-1), g.word(width, depth-1))
	default:
		// Width change: extend or truncate through a different width.
		from := genWidths[int(g.byte())%len(genWidths)]
		inner := g.word(from, depth-1)
		switch {
		case from < width && g.byte()%2 == 0:
			return g.eb.ZExt(inner, width)
		case from < width:
			return g.eb.SExt(inner, width)
		case from > width:
			return g.eb.Trunc(inner, width)
		default:
			return inner
		}
	}
}

// boolean returns a random 1-bit expression (a constraint).
func (g *exprGen) boolean(depth int) *expr.Expr {
	eb := g.eb
	op := g.byte()
	if depth <= 0 {
		op %= 2
	}
	switch op % 8 {
	case 0:
		return eb.Var(varName(1, int(g.byte())%3), 1)
	case 1:
		return eb.Bool(g.byte()%2 == 0)
	case 2:
		return eb.Not(g.boolean(depth - 1))
	case 3:
		if g.byte()%2 == 0 {
			return eb.And(g.boolean(depth-1), g.boolean(depth-1))
		}
		return eb.Or(g.boolean(depth-1), g.boolean(depth-1))
	default:
		w := genWidths[int(g.byte())%len(genWidths)]
		a, b := g.word(w, depth-1), g.word(w, depth-1)
		switch g.byte() % 5 {
		case 0:
			return eb.Eq(a, b)
		case 1:
			return eb.Ult(a, b)
		case 2:
			return eb.Ule(a, b)
		case 3:
			return eb.Slt(a, b)
		default:
			return eb.Sle(a, b)
		}
	}
}

func varName(width, idx int) string {
	return "v" + string(rune('a'+idx)) + "_w" + string(rune('0'+width%10))
}

// randomEnv assigns a pseudo-random value to every variable the builder
// has seen, derived deterministically from the fuzz input.
func randomEnv(eb *expr.Builder, rng *rand.Rand) expr.Env {
	env := expr.Env{}
	for _, v := range eb.Vars() {
		env[v.VarName()] = rng.Uint64()
	}
	return env
}

// FuzzRewriteEquivalence is the rewriter's differential oracle: for
// random constraint DAGs, the per-constraint rewrite must evaluate
// identically to the original under random concrete assignments, and the
// set-level OptimizeSet output's conjunction must evaluate identically to
// the input conjunction (including its unsat short-circuit).
func FuzzRewriteEquivalence(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{4, 2, 8, 1, 0, 3, 200, 11, 7, 5, 9, 13, 17, 255, 128, 64})
	f.Add([]byte("runicast-backoff-times-eight"))
	f.Add([]byte{11, 1, 3, 0, 7, 4, 0, 8, 2, 2, 2, 9, 1, 0, 5, 6, 10, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		eb := expr.NewBuilder()
		g := &exprGen{eb: eb, data: data}
		n := 1 + int(g.byte())%4
		cs := make([]*expr.Expr, 0, n)
		for i := 0; i < n; i++ {
			cs = append(cs, g.boolean(4))
		}
		o := New(eb)

		seed := int64(len(data))
		for _, b := range data {
			seed = seed*131 + int64(b)
		}
		rng := rand.New(rand.NewSource(seed))

		rewritten := make([]*expr.Expr, len(cs))
		for i, c := range cs {
			rewritten[i] = o.Rewrite(c)
		}
		out, _, unsat := o.OptimizeSet(cs)

		for trial := 0; trial < 16; trial++ {
			env := randomEnv(eb, rng)
			for i, c := range cs {
				if got, want := expr.Eval(rewritten[i], env), expr.Eval(c, env); got != want {
					t.Fatalf("rewrite changed value: %v -> %v (%d != %d) under %v",
						c, rewritten[i], want, got, env)
				}
			}
			conj := uint64(1)
			for _, c := range cs {
				conj &= expr.Eval(c, env)
			}
			optConj := uint64(1)
			if unsat {
				optConj = 0
			} else {
				for _, c := range out {
					optConj &= expr.Eval(c, env)
				}
			}
			if conj != optConj {
				t.Fatalf("OptimizeSet changed conjunction value (%d != %d): %v -> %v (unsat=%v) under %v",
					conj, optConj, cs, out, unsat, env)
			}
		}
	})
}
