// Package metrics collects the time series the paper's evaluation plots:
// the number of execution states and the modeled memory footprint of the
// whole SDE process over (wall and virtual) time — Figure 10's state
// growth and memory growth curves.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is one measurement point.
type Sample struct {
	Wall          time.Duration // wall-clock time since the run started
	VirtualTime   uint64        // engine virtual clock (ticks)
	States        int           // live execution states
	Groups        int           // dscenarios (COB) or dstates (COW/SDS)
	MemBytes      int64         // modeled RAM (deduplicated pages + overheads)
	Instructions  uint64        // instructions executed so far
	SolverQueries int64         // constraint-solver queries issued so far
	QueriesSliced int64         // queries shrunk by constraint independence slicing
	GatesElided   int64         // encoding work avoided by the query optimizer (DAG nodes)

	// Compiled-IR fast-path counters (see VMStats). Derived state: these
	// columns are not part of the snapshot format, so a resumed run's
	// series counts from zero again — like the IR itself, they are
	// recomputed, never serialized.
	FastBlocks   uint64 // block executions taken by the concrete fast path
	SlowBlocks   uint64 // block entries interpreted instruction by instruction
	FoldedInstrs uint64 // fast-path instructions answered by load-time folding

	// State-merging counters (see MergeStats). MergedStates is a gauge —
	// how many states are hidden inside merged representatives right now,
	// so States − MergedStates is the live frontier the scheduler actually
	// drives; the other two are cumulative. All zero with merging off.
	MergedStates    int    // states currently fused away into reps
	MergeCandidates uint64 // structurally mergeable pairs considered so far
	MergeRejects    uint64 // candidates declined by the cost model so far

	// Symmetry-reduction counters (see ReduceStats), cumulative. All zero
	// with reduction off.
	ReduceChecks uint64 // failure decisions the reducer was consulted on
	ReducePins   uint64 // decisions pinned instead of forked (pruned branches)
}

// Series accumulates samples in order.
type Series struct {
	samples []Sample
}

// Add appends a sample.
func (s *Series) Add(sm Sample) { s.samples = append(s.samples, sm) }

// Restore replaces the series with samples recovered from a checkpoint,
// so a resumed run's series continues where the interrupted one stopped.
func (s *Series) Restore(samples []Sample) {
	s.samples = append([]Sample(nil), samples...)
}

// Samples returns the recorded samples (shared slice; do not modify).
func (s *Series) Samples() []Sample { return s.samples }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Last returns the most recent sample; ok is false when empty.
func (s *Series) Last() (Sample, bool) {
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// PeakMem returns the largest MemBytes seen.
func (s *Series) PeakMem() int64 {
	var peak int64
	for _, sm := range s.samples {
		if sm.MemBytes > peak {
			peak = sm.MemBytes
		}
	}
	return peak
}

// PeakStates returns the largest state count seen.
func (s *Series) PeakStates() int {
	peak := 0
	for _, sm := range s.samples {
		if sm.States > peak {
			peak = sm.States
		}
	}
	return peak
}

// Downsample returns at most n samples, evenly spaced, always keeping the
// first and last. It is used to keep figure outputs readable.
func (s *Series) Downsample(n int) []Sample {
	if n <= 0 || len(s.samples) <= n {
		return append([]Sample(nil), s.samples...)
	}
	out := make([]Sample, 0, n)
	step := float64(len(s.samples)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, s.samples[int(float64(i)*step+0.5)])
	}
	out[n-1] = s.samples[len(s.samples)-1]
	return out
}

// CSV renders the series with a header row, one sample per line.
func (s *Series) CSV() string {
	var sb strings.Builder
	sb.WriteString("wall_ms,virtual_time,states,groups,mem_bytes,instructions,solver_queries,queries_sliced,gates_elided,fast_blocks,slow_blocks,folded_instrs,merged_states,merge_candidates,merge_rejects,reduce_checks,reduce_pins\n")
	for _, sm := range s.samples {
		fmt.Fprintf(&sb, "%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			float64(sm.Wall.Microseconds())/1000.0,
			sm.VirtualTime, sm.States, sm.Groups, sm.MemBytes, sm.Instructions,
			sm.SolverQueries, sm.QueriesSliced, sm.GatesElided,
			sm.FastBlocks, sm.SlowBlocks, sm.FoldedInstrs,
			sm.MergedStates, sm.MergeCandidates, sm.MergeRejects,
			sm.ReduceChecks, sm.ReducePins)
	}
	return sb.String()
}

// SpecStats summarises one run's speculative-fork solver pipeline
// activity: how many branch decisions overlapped with execution, how the
// speculation resolved, and how much time resolution barriers spent
// waiting on verdicts. All zero when speculation is disabled.
type SpecStats struct {
	Workers int // solver worker count of the pipeline

	Submitted    int64 // speculations submitted (a branch pair counts once)
	Pairs        int64 // two-sided branch speculations
	Assumes      int64 // single-query assume speculations
	Solves       int64 // feasibility queries the workers actually issued
	Elided       int64 // false-side verdicts answered by complement elision
	InflightPeak int64 // high-water mark of unresolved speculations

	Rewinds   int64 // speculative executions rewound onto the false side
	SpecKills int64 // states killed at resolution (infeasible assume, solver error)
	Removed   int64 // provisional constraints removed (one-sided-true branches)

	Barriers      int64 // resolution barriers that found a non-empty pipeline
	BarrierWaitNs int64 // total nanoseconds barriers spent draining verdicts
}

// String renders a one-line speculation summary.
func (s SpecStats) String() string {
	if s.Submitted == 0 {
		return "speculation: off"
	}
	return fmt.Sprintf("spec: workers=%d submitted=%d (pairs=%d assumes=%d) solves=%d elided=%d rewinds=%d kills=%d barrier-wait=%s",
		s.Workers, s.Submitted, s.Pairs, s.Assumes, s.Solves, s.Elided,
		s.Rewinds, s.SpecKills, time.Duration(s.BarrierWaitNs).Round(time.Microsecond))
}

// VMStats summarises one run's compiled-IR fast-path activity: how many
// basic-block executions ran on the concrete straight-line fast path
// versus falling back to the per-instruction interpreter, and how many
// fast-path instructions were answered by load-time constant folding.
// All zero when compiled execution is disabled.
type VMStats struct {
	FastBlocks   uint64 // block executions taken by the concrete fast path
	SlowBlocks   uint64 // block entries that fell back to the interpreter
	FoldedInstrs uint64 // fast-path instructions answered by load-time folding
}

// FastRate returns the fraction of block entries executed on the fast
// path (0 when compiled execution was off or the program never ran).
func (v VMStats) FastRate() float64 {
	total := v.FastBlocks + v.SlowBlocks
	if total == 0 {
		return 0
	}
	return float64(v.FastBlocks) / float64(total)
}

// String renders a one-line compiled-execution summary.
func (v VMStats) String() string {
	if v.FastBlocks == 0 && v.SlowBlocks == 0 {
		return "compile: off"
	}
	return fmt.Sprintf("compile: fast-blocks=%d slow-blocks=%d (%.0f%% fast) folded=%d",
		v.FastBlocks, v.SlowBlocks, 100*v.FastRate(), v.FoldedInstrs)
}

// MergeStats summarises one run's state-merging activity (internal/merge):
// how many sibling-state fusions the scan performed, how the cost model
// filtered candidates, and how large the merged frontier got. All zero
// when merging is disabled.
type MergeStats struct {
	Merges     uint64 // accepted fusions (each hides one more live state)
	Candidates uint64 // structurally mergeable pairs considered
	Rejects    uint64 // candidates declined by the cost model
	Splits     uint64 // rep dissolutions back into exact members
	MaxMembers int    // largest member count any rep reached
	PeakMerged int    // peak number of states hidden inside reps

	// ScansSkipped counts end-of-event merge scans elided by the barren-
	// workload backoff: after a run of consecutive scans that produced no
	// fusion, the engine scans only every 2^i-th eligible Step (capped),
	// resetting on the next fusion. Candidate nodes accumulate across the
	// skipped scans, so no merge opportunity is lost — only deferred.
	ScansSkipped uint64
}

// String renders a one-line merging summary.
func (m MergeStats) String() string {
	if m.Candidates == 0 && m.Merges == 0 {
		return "merge: off"
	}
	return fmt.Sprintf("merge: merges=%d candidates=%d rejects=%d splits=%d max-members=%d peak-merged=%d scans-skipped=%d",
		m.Merges, m.Candidates, m.Rejects, m.Splits, m.MaxMembers, m.PeakMerged, m.ScansSkipped)
}

// ReduceStats summarises one run's symmetry/partial-order reduction
// activity (internal/reduce): the effective automorphism group the
// reducer pruned with, how often it was consulted, and how many failure
// decisions it pinned instead of forking (each pin halves that lineage's
// subtree). All zero when reduction is disabled.
type ReduceStats struct {
	GroupOrder int  // order of the effective (filtered) automorphism group
	Truncated  bool // automorphism search overflowed; fell back to trivial
	Decisions  int  // size of the armed failure-decision universe

	Checks      uint64 // failure decisions the reducer was consulted on
	Pins        uint64 // decisions pinned instead of forked
	PORCommutes uint64 // merged executions allowed by the independence check
	Synthesized int    // violations synthesized by witness expansion
}

// String renders a one-line reduction summary.
func (r ReduceStats) String() string {
	if r.Checks == 0 && r.GroupOrder <= 1 {
		return "reduce: off"
	}
	trunc := ""
	if r.Truncated {
		trunc = " (truncated)"
	}
	return fmt.Sprintf("reduce: group=%d%s decisions=%d checks=%d pins=%d por-commutes=%d synthesized=%d",
		r.GroupOrder, trunc, r.Decisions, r.Checks, r.Pins, r.PORCommutes, r.Synthesized)
}

// SchedStats summarises one parallel scheduler run: how the adaptive
// work-stealing shard scheduler spent its worker pool. It is the
// scheduling counterpart of the per-run Sample series — per-worker
// utilisation, steal/split activity, and cross-shard solver-cache reuse.
type SchedStats struct {
	Workers     int // worker pool size
	Shards      int // leaf shards that ran to completion
	Steals      int // work items executed by a worker other than their creator
	Splits      int // straggling shards subdivided in place
	Resumed     int // work items restored from durable checkpoints
	Suspensions int // runs suspended at a depth horizon and fanned out as continuations

	SharedLookups int64 // cross-shard solver cache lookups
	SharedHits    int64 // lookups answered from the cross-shard cache

	// Per-shard solver activity, summed over the leaf shards: how much
	// of the constraint-solving work the incremental pipeline absorbed.
	IncrementalSolves int64 // CDCL runs on the persistent per-shard instances
	SubsumptionHits   int64 // queries answered by subset/superset cache entries
	EncodeSkips       int64 // constraint encodes served by persistent blast memos
	QueriesSliced     int64 // queries shrunk by constraint independence slicing
	GatesElided       int64 // encoding work the query optimizer avoided (DAG nodes)

	// Per-shard speculative-fork pipeline activity, summed over the leaf
	// shards (see SpecStats).
	SpecSubmitted int64 // speculations submitted across shards
	SpecSolves    int64 // feasibility queries issued by speculation workers
	SpecElided    int64 // false-side verdicts answered by complement elision
	SpecRewinds   int64 // speculative executions rewound onto the false side

	// Per-shard compiled-IR fast-path activity, summed over the leaf
	// shards (see VMStats).
	FastBlocks   uint64 // block executions taken by the concrete fast path
	SlowBlocks   uint64 // block entries that fell back to the interpreter
	FoldedInstrs uint64 // fast-path instructions answered by load-time folding

	// Per-shard state-merging activity, summed over the leaf shards (see
	// MergeStats).
	MergeMerges     uint64 // accepted state fusions across shards
	MergeCandidates uint64 // structurally mergeable pairs considered
	MergeRejects    uint64 // candidates declined by the cost model

	// Per-shard symmetry-reduction activity, summed over the leaf shards
	// (see ReduceStats).
	ReduceChecks uint64 // failure decisions the reducers were consulted on
	ReducePins   uint64 // decisions pinned instead of forked across shards

	WorkerBusy []time.Duration // per-worker time spent running shards
	Elapsed    time.Duration   // scheduler wall time (the makespan)
}

// SharedHitRate returns the fraction of cross-shard cache lookups that
// were answered from the cache (0 when the cache was off or unused).
func (s SchedStats) SharedHitRate() float64 {
	if s.SharedLookups == 0 {
		return 0
	}
	return float64(s.SharedHits) / float64(s.SharedLookups)
}

// Utilization returns each worker's busy fraction of the scheduler wall
// time, clamped to [0, 1].
func (s SchedStats) Utilization() []float64 {
	out := make([]float64, len(s.WorkerBusy))
	if s.Elapsed <= 0 {
		return out
	}
	for i, busy := range s.WorkerBusy {
		u := float64(busy) / float64(s.Elapsed)
		if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out
}

// MeanUtilization returns the pool-wide average busy fraction.
func (s SchedStats) MeanUtilization() float64 {
	us := s.Utilization()
	if len(us) == 0 {
		return 0
	}
	total := 0.0
	for _, u := range us {
		total += u
	}
	return total / float64(len(us))
}

// String renders a one-line scheduling summary.
func (s SchedStats) String() string {
	shared := "off"
	if s.SharedLookups > 0 {
		shared = fmt.Sprintf("%.0f%%", 100*s.SharedHitRate())
	}
	return fmt.Sprintf("workers=%d shards=%d steals=%d splits=%d shared-hit=%s util=%.0f%% makespan=%s",
		s.Workers, s.Shards, s.Steals, s.Splits, shared,
		100*s.MeanUtilization(), s.Elapsed.Round(time.Millisecond))
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// AsciiChart renders a crude log-scale chart of one column over sample
// index — enough to eyeball the Figure 10 curve shapes in a terminal.
func AsciiChart(title string, series map[string][]Sample, value func(Sample) float64, width, height int) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	maxV := 1.0
	for _, ss := range series {
		for _, sm := range ss {
			if v := value(sm); v > maxV {
				maxV = v
			}
		}
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := series[name]
		fmt.Fprintf(&sb, "%-4s |", name)
		pts := resample(ss, width)
		for _, sm := range pts {
			v := value(sm)
			frac := logFrac(v, maxV)
			sb.WriteByte(" .:-=+*#%@"[int(frac*9.999)])
		}
		last := 0.0
		if len(ss) > 0 {
			last = value(ss[len(ss)-1])
		}
		fmt.Fprintf(&sb, "| final %.4g\n", last)
	}
	_ = height
	return sb.String()
}

func resample(ss []Sample, n int) []Sample {
	if len(ss) == 0 {
		return nil
	}
	out := make([]Sample, n)
	div := n - 1
	if div < 1 {
		div = 1
	}
	for i := 0; i < n; i++ {
		out[i] = ss[i*(len(ss)-1)/div]
	}
	return out
}

func logFrac(v, maxV float64) float64 {
	if v <= 1 {
		return 0
	}
	if maxV <= 1 {
		return 1
	}
	l := math.Log2(v) / math.Log2(maxV)
	if l > 1 {
		l = 1
	}
	return l
}
