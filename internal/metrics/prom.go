package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus-style text exposition for the exploration service: a tiny
// dependency-free registry of counters and gauges with labels, rendered
// deterministically (families sorted by name, series sorted by label
// string) so /metrics output is stable under test and diffable in
// incident forensics. Only the subset of the exposition format the
// service needs is implemented: HELP/TYPE headers, label escaping, and
// float64 values.

// PromKind distinguishes the two metric families the service exports.
type PromKind int

// Metric kinds.
const (
	PromCounter PromKind = iota
	PromGauge
)

func (k PromKind) String() string {
	if k == PromCounter {
		return "counter"
	}
	return "gauge"
}

type promFamily struct {
	help   string
	kind   PromKind
	series map[string]float64 // rendered label string -> value
}

// PromRegistry accumulates metric families. The zero value is not ready;
// use NewPromRegistry.
type PromRegistry struct {
	mu       sync.Mutex
	families map[string]*promFamily
}

// NewPromRegistry returns an empty registry.
func NewPromRegistry() *PromRegistry {
	return &PromRegistry{families: make(map[string]*promFamily)}
}

// Declare registers a family's help text and kind. Declaring twice keeps
// the first help text; the kind must not change.
func (r *PromRegistry) Declare(name, help string, kind PromKind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s redeclared as %v (was %v)", name, kind, f.kind))
		}
		return
	}
	r.families[name] = &promFamily{help: help, kind: kind, series: make(map[string]float64)}
}

// Add increments a counter series by delta (creating it at delta).
func (r *PromRegistry) Add(name string, labels map[string]string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, PromCounter)
	f.series[renderLabels(labels)] += delta
}

// AddGauge adjusts a gauge series by delta (creating it at delta) —
// atomically, unlike a read-modify-write through Value and Set.
func (r *PromRegistry) AddGauge(name string, labels map[string]string, delta float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, PromGauge)
	f.series[renderLabels(labels)] += delta
}

// Set sets a gauge series to v.
func (r *PromRegistry) Set(name string, labels map[string]string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, PromGauge)
	f.series[renderLabels(labels)] = v
}

// DeleteSeries drops one series (e.g. a disconnected worker's gauges) so
// stale per-worker values do not linger in the export forever.
func (r *PromRegistry) DeleteSeries(name string, labels map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		delete(f.series, renderLabels(labels))
	}
}

// Value reads one series back (0 when absent) — for tests and the job
// API's status snapshots.
func (r *PromRegistry) Value(name string, labels map[string]string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	return f.series[renderLabels(labels)]
}

// family returns the named family, auto-declaring it (no help) on first use.
func (r *PromRegistry) family(name string, kind PromKind) *promFamily {
	f, ok := r.families[name]
	if !ok {
		f = &promFamily{kind: kind, series: make(map[string]float64)}
		r.families[name] = f
	}
	return f
}

// WriteTo renders the registry in the Prometheus text exposition format.
// Output is deterministic: families in name order, series in label order.
func (r *PromRegistry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		f := r.families[name]
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s%s %s\n", name, k,
				strconv.FormatFloat(f.series[k], 'g', -1, 64))
		}
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// renderLabels produces the canonical `{k="v",...}` form, empty for no
// labels, with label names sorted and values escaped per the exposition
// format (backslash, double quote, newline).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(labels[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}
