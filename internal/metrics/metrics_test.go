package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func sampleSeries(n int) *Series {
	var s Series
	for i := 0; i < n; i++ {
		s.Add(Sample{
			Wall:        time.Duration(i) * time.Millisecond,
			VirtualTime: uint64(i * 10),
			States:      i + 1,
			MemBytes:    int64((i + 1) * 1000),
		})
	}
	return &s
}

func TestSeriesBasics(t *testing.T) {
	s := sampleSeries(5)
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	last, ok := s.Last()
	if !ok || last.States != 5 {
		t.Errorf("Last = %+v, ok=%v", last, ok)
	}
	if got := s.PeakStates(); got != 5 {
		t.Errorf("PeakStates = %d, want 5", got)
	}
	if got := s.PeakMem(); got != 5000 {
		t.Errorf("PeakMem = %d, want 5000", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if _, ok := s.Last(); ok {
		t.Error("Last on empty series reported ok")
	}
	if s.PeakMem() != 0 || s.PeakStates() != 0 {
		t.Error("peaks on empty series nonzero")
	}
	if got := s.Downsample(10); len(got) != 0 {
		t.Errorf("Downsample(empty) = %d samples", len(got))
	}
}

func TestPeakNotLast(t *testing.T) {
	var s Series
	s.Add(Sample{States: 10, MemBytes: 100})
	s.Add(Sample{States: 50, MemBytes: 900})
	s.Add(Sample{States: 20, MemBytes: 300})
	if s.PeakStates() != 50 || s.PeakMem() != 900 {
		t.Errorf("peaks = %d/%d, want 50/900", s.PeakStates(), s.PeakMem())
	}
}

func TestDownsample(t *testing.T) {
	s := sampleSeries(100)
	got := s.Downsample(10)
	if len(got) != 10 {
		t.Fatalf("Downsample(10) = %d samples", len(got))
	}
	if got[0].States != 1 {
		t.Errorf("first sample = %+v, want the series head", got[0])
	}
	if got[9].States != 100 {
		t.Errorf("last sample = %+v, want the series tail", got[9])
	}
	for i := 1; i < len(got); i++ {
		if got[i].States < got[i-1].States {
			t.Errorf("downsampled series not monotone at %d", i)
		}
	}
	// Fewer samples than requested: return all.
	if got := sampleSeries(3).Downsample(10); len(got) != 3 {
		t.Errorf("Downsample beyond length = %d samples, want 3", len(got))
	}
}

func TestCSV(t *testing.T) {
	s := sampleSeries(2)
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3 (header + 2)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "wall_ms,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], ",2,") {
		t.Errorf("second sample line = %q", lines[2])
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.in); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestAsciiChart(t *testing.T) {
	series := map[string][]Sample{
		"COB": sampleSeries(50).Samples(),
		"SDS": sampleSeries(10).Samples(),
	}
	chart := AsciiChart("states", series, func(s Sample) float64 { return float64(s.States) }, 40, 8)
	if !strings.Contains(chart, "COB") || !strings.Contains(chart, "SDS") {
		t.Errorf("chart lacks series labels:\n%s", chart)
	}
	// COB (sorted first) must appear before SDS for deterministic output.
	if strings.Index(chart, "COB") > strings.Index(chart, "SDS") {
		t.Error("series not sorted by name")
	}
	if !strings.Contains(chart, "final 50") {
		t.Errorf("chart lacks final value:\n%s", chart)
	}
}

func TestAsciiChartEmpty(t *testing.T) {
	chart := AsciiChart("empty", map[string][]Sample{"X": nil},
		func(s Sample) float64 { return 0 }, 10, 4)
	if !strings.Contains(chart, "X") {
		t.Errorf("chart lacks label for empty series:\n%s", chart)
	}
}

func TestSchedStatsSharedHitRate(t *testing.T) {
	if got := (SchedStats{}).SharedHitRate(); got != 0 {
		t.Errorf("zero-value hit rate = %v, want 0", got)
	}
	s := SchedStats{SharedLookups: 8, SharedHits: 2}
	if got := s.SharedHitRate(); got != 0.25 {
		t.Errorf("hit rate = %v, want 0.25", got)
	}
}

func TestSchedStatsUtilization(t *testing.T) {
	s := SchedStats{
		WorkerBusy: []time.Duration{
			time.Second, 500 * time.Millisecond, 2 * time.Second,
		},
		Elapsed: time.Second,
	}
	got := s.Utilization()
	want := []float64{1, 0.5, 1} // the 2s entry clamps to the makespan
	if len(got) != len(want) {
		t.Fatalf("utilization has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("worker %d utilization = %v, want %v", i, got[i], want[i])
		}
	}
	if mean := s.MeanUtilization(); math.Abs(mean-2.5/3) > 1e-9 {
		t.Errorf("mean utilization = %v, want %v", mean, 2.5/3)
	}
	if got := (SchedStats{WorkerBusy: []time.Duration{time.Second}}).Utilization(); got[0] != 0 {
		t.Errorf("utilization with zero elapsed = %v, want 0", got[0])
	}
}

func TestSchedStatsString(t *testing.T) {
	s := SchedStats{
		Workers: 4, Shards: 9, Steals: 3, Splits: 2,
		SharedLookups: 10, SharedHits: 5,
		WorkerBusy: []time.Duration{time.Second, time.Second, time.Second, time.Second},
		Elapsed:    2 * time.Second,
	}
	str := s.String()
	for _, want := range []string{"workers=4", "shards=9", "steals=3", "splits=2", "shared-hit=50%", "util=50%"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
	if off := (SchedStats{}).String(); !strings.Contains(off, "shared-hit=off") {
		t.Errorf("zero-value String() = %q, want shared-hit=off", off)
	}
}
