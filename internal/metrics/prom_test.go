package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestPromRegistryRendering(t *testing.T) {
	r := NewPromRegistry()
	r.Declare("sde_leases_total", "work leases issued", PromCounter)
	r.Declare("sde_workers_connected", "currently connected workers", PromGauge)
	r.Add("sde_leases_total", map[string]string{"worker": "w1"}, 2)
	r.Add("sde_leases_total", map[string]string{"worker": "w1"}, 1)
	r.Add("sde_leases_total", map[string]string{"worker": "w0"}, 5)
	r.Set("sde_workers_connected", nil, 2)
	r.Add("sde_undeclared_total", nil, 1) // auto-declared, no HELP line

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP sde_leases_total work leases issued
# TYPE sde_leases_total counter
sde_leases_total{worker="w0"} 5
sde_leases_total{worker="w1"} 3
# TYPE sde_undeclared_total counter
sde_undeclared_total 1
# HELP sde_workers_connected currently connected workers
# TYPE sde_workers_connected gauge
sde_workers_connected 2
`
	if got != want {
		t.Errorf("rendering mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}

	// Determinism: a second render is byte-identical.
	var sb2 strings.Builder
	if _, err := r.WriteTo(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != got {
		t.Error("second render differs from the first")
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewPromRegistry()
	r.Set("g", map[string]string{"job": "a\"b\\c\nd"}, 1)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `g{job="a\"b\\c\nd"} 1` + "\n# TYPE g gauge\n"
	if !strings.Contains(sb.String(), `g{job="a\"b\\c\nd"} 1`) {
		t.Errorf("escaped output missing, got:\n%s\nwant fragment:\n%s", sb.String(), want)
	}
}

func TestPromDeleteAndValue(t *testing.T) {
	r := NewPromRegistry()
	lbl := map[string]string{"worker": "w3"}
	r.Set("sde_worker_heartbeat_age_seconds", lbl, 1.5)
	if v := r.Value("sde_worker_heartbeat_age_seconds", lbl); v != 1.5 {
		t.Fatalf("Value = %v, want 1.5", v)
	}
	r.DeleteSeries("sde_worker_heartbeat_age_seconds", lbl)
	if v := r.Value("sde_worker_heartbeat_age_seconds", lbl); v != 0 {
		t.Fatalf("Value after delete = %v, want 0", v)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "w3") {
		t.Errorf("deleted series still rendered:\n%s", sb.String())
	}
}

func TestPromConcurrentAccess(t *testing.T) {
	r := NewPromRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add("c", nil, 1)
				r.Set("g", nil, float64(j))
			}
		}()
	}
	wg.Wait()
	if v := r.Value("c", nil); v != 800 {
		t.Fatalf("counter = %v, want 800", v)
	}
}
