package sim

import (
	"testing"
	"time"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/solver"
)

// chattyProgram builds a program that keeps scheduling timer events, so
// a run produces enough events to cross several progress polls.
func chattyProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()
	boot := b.Func("boot")
	boot.MovI(isa.R1, 1)
	boot.Timer("tick", isa.R1, isa.R0)
	boot.Ret()
	tick := b.Func("tick")
	tick.MovI(isa.R1, 1)
	tick.Timer("tick", isa.R1, isa.R0)
	tick.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestProgressHookStopsRun: returning true from the Progress hook ends
// the run and marks the result Stopped (not Aborted, not finished).
func TestProgressHookStopsRun(t *testing.T) {
	polls := 0
	cfg := Config{
		Topo:      NewLine(2),
		Algorithm: core.SDSAlgorithm,
		Prog:      chattyProgram(t),
		Horizon:   10000,
		Progress: func(states int, elapsed time.Duration) bool {
			polls++
			if states <= 0 {
				t.Errorf("progress poll saw %d states", states)
			}
			if elapsed < 0 {
				t.Errorf("progress poll saw negative elapsed %v", elapsed)
			}
			return polls >= 3
		},
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("result not marked Stopped")
	}
	if res.Aborted {
		t.Error("stopped run reported as aborted")
	}
	if polls != 3 {
		t.Errorf("polls = %d, want 3", polls)
	}
	// The run stopped well before the horizon's worth of events.
	if res.Events > progressPollEvents*3 {
		t.Errorf("run processed %d events after the stop request", res.Events)
	}
	// A stopped engine stays stopped.
	if eng.Step() {
		t.Error("Step returned true after the run was stopped")
	}
}

// TestProgressHookNilNeverPolled: the default configuration runs to
// completion with no hook involvement.
func TestProgressHookNilNeverPolled(t *testing.T) {
	cfg := Config{
		Topo:      NewLine(2),
		Algorithm: core.SDSAlgorithm,
		Prog:      chattyProgram(t),
		Horizon:   100,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped {
		t.Error("run without a Progress hook reported Stopped")
	}
}

// TestSharedSolverCachePlumbing: a cache injected through the config
// backs the engine's solver, so two engines share verdicts even though
// each has its own expression builder.
func TestSharedSolverCachePlumbing(t *testing.T) {
	shared := solver.NewSharedCache()
	query := func(eng *Engine) {
		t.Helper()
		b := eng.Ctx().Exprs
		x := b.Var("probe", 16)
		sat, err := eng.Ctx().Solver.Feasible([]*expr.Expr{
			b.Eq(b.Mul(x, x), b.Const(49, 16)),
			b.Ult(x, b.Const(100, 16)),
		})
		if err != nil || !sat {
			t.Fatalf("probe query: sat=%v err=%v", sat, err)
		}
	}
	mkEngine := func() *Engine {
		t.Helper()
		eng, err := NewEngine(Config{
			Topo:              NewLine(2),
			Algorithm:         core.SDSAlgorithm,
			Prog:              chattyProgram(t),
			Horizon:           50,
			SharedSolverCache: shared,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	first := mkEngine()
	query(first)
	second := mkEngine()
	query(second)
	if hits := second.Ctx().Solver.Stats().SharedHits; hits == 0 {
		t.Errorf("second engine's solver recorded no shared hits (cache stats %+v)",
			shared.Stats())
	}
}
