package sim

import (
	"testing"
	"testing/quick"
)

// TestGridProperties checks structural invariants of grids of random
// shapes: symmetric edges, correct degrees, and staircase routes that are
// valid paths of Manhattan length between any two nodes.
func TestGridProperties(t *testing.T) {
	f := func(wRaw, hRaw, fromRaw, toRaw uint8) bool {
		w := int(wRaw%6) + 1
		h := int(hRaw%6) + 1
		g := NewGrid(w, h)
		from := int(fromRaw) % g.K()
		to := int(toRaw) % g.K()

		// Degree: 2 at corners, 3 on edges, 4 inside (for w,h >= 2).
		for n := 0; n < g.K(); n++ {
			x, y := n%w, n/w
			want := 0
			if x > 0 {
				want++
			}
			if x < w-1 {
				want++
			}
			if y > 0 {
				want++
			}
			if y < h-1 {
				want++
			}
			if len(g.Neighbors(n)) != want {
				return false
			}
		}

		route := g.StaircaseRoute(from, to)
		// Manhattan length.
		fx, fy := from%w, from/w
		tx, ty := to%w, to/w
		manhattan := abs(fx-tx) + abs(fy-ty)
		if len(route) != manhattan+1 {
			return false
		}
		if route[0] != from || route[len(route)-1] != to {
			return false
		}
		// Every step is an edge; no node repeats.
		seen := map[int]bool{route[0]: true}
		for i := 0; i+1 < len(route); i++ {
			edge := false
			for _, nb := range g.Neighbors(route[i]) {
				if nb == route[i+1] {
					edge = true
				}
			}
			if !edge || seen[route[i+1]] {
				return false
			}
			seen[route[i+1]] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestNeighborhoodProperties: the route neighbourhood always contains the
// route, only contains route nodes and their direct neighbours, and has
// no duplicates.
func TestNeighborhoodProperties(t *testing.T) {
	f := func(wRaw, hRaw uint8) bool {
		w := int(wRaw%5) + 2
		h := int(hRaw%5) + 2
		g := NewGrid(w, h)
		route := g.StaircaseRoute(g.K()-1, 0)
		nodes := RouteNeighborhood(g, route)
		seen := map[int]bool{}
		onRoute := NodeSet(route)
		for _, n := range nodes {
			if seen[n] {
				return false // duplicate
			}
			seen[n] = true
			if onRoute[n] {
				continue
			}
			adjacent := false
			for _, nb := range g.Neighbors(n) {
				if onRoute[nb] {
					adjacent = true
				}
			}
			if !adjacent {
				return false // neither on route nor adjacent to it
			}
		}
		for _, r := range route {
			if !seen[r] {
				return false // route node missing
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
