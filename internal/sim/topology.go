// Package sim provides the distributed substrate of SDE: network
// topologies, an ideal network model with failure injection, and the
// discrete-event engine that executes the symbolic states of all nodes and
// drives the state mapping algorithms of package core.
//
// It corresponds to the simulation machinery of KleeNet (paper §IV):
// "KleeNet simulates a complete distributed system in a single process. It
// starts with k states representing the nodes in the network. As in any
// simulation, in each step KleeNet executes an event of a node and
// advances the time to the next event in the queue."
package sim

import (
	"fmt"
)

// Topology describes which nodes can communicate directly. Node ids are
// always the contiguous range [0, K).
type Topology interface {
	// K returns the number of nodes.
	K() int
	// Neighbors returns the radio neighbours of node n in ascending
	// order. The result must not be modified.
	Neighbors(n int) []int
	// Name returns a short description for reports.
	Name() string
}

// Grid is a W x H lattice with 4-way connectivity, the paper's evaluation
// topology (§IV-A: "linear grid topology (5x5, 7x7, and 10x10 nodes)").
// Node n sits at column n%W, row n/W; node 0 is the top-left corner (the
// paper's sink) and node K-1 the bottom-right corner (the source).
type Grid struct {
	W, H      int
	neighbors [][]int
}

// NewGrid returns a W x H grid topology.
func NewGrid(w, h int) *Grid {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("sim: invalid grid %dx%d", w, h))
	}
	g := &Grid{W: w, H: h}
	g.neighbors = make([][]int, w*h)
	for n := range g.neighbors {
		x, y := n%w, n/w
		var nb []int
		if y > 0 {
			nb = append(nb, n-w)
		}
		if x > 0 {
			nb = append(nb, n-1)
		}
		if x < w-1 {
			nb = append(nb, n+1)
		}
		if y < h-1 {
			nb = append(nb, n+w)
		}
		g.neighbors[n] = nb
	}
	return g
}

// K implements Topology.
func (g *Grid) K() int { return g.W * g.H }

// Neighbors implements Topology.
func (g *Grid) Neighbors(n int) []int { return g.neighbors[n] }

// Name implements Topology.
func (g *Grid) Name() string { return fmt.Sprintf("grid%dx%d", g.W, g.H) }

// StaircaseRoute returns the paper's preconfigured data path from node
// `from` to node `to`: a staircase that alternates horizontal and vertical
// single-node steps (Figure 9). The result includes both endpoints.
func (g *Grid) StaircaseRoute(from, to int) []int {
	x, y := from%g.W, from/g.W
	tx, ty := to%g.W, to/g.W
	route := []int{from}
	for x != tx || y != ty {
		if x != tx {
			if x < tx {
				x++
			} else {
				x--
			}
			route = append(route, y*g.W+x)
		}
		if y != ty {
			if y < ty {
				y++
			} else {
				y--
			}
			route = append(route, y*g.W+x)
		}
	}
	return route
}

// Line is a 1-dimensional chain of k nodes, the topology of the paper's
// multi-hop examples (§II-B).
type Line struct {
	N int
}

// NewLine returns a k-node line topology.
func NewLine(k int) *Line {
	if k < 1 {
		panic("sim: empty line")
	}
	return &Line{N: k}
}

// K implements Topology.
func (l *Line) K() int { return l.N }

// Neighbors implements Topology.
func (l *Line) Neighbors(n int) []int {
	switch {
	case l.N == 1:
		return nil
	case n == 0:
		return []int{1}
	case n == l.N-1:
		return []int{n - 1}
	default:
		return []int{n - 1, n + 1}
	}
}

// Name implements Topology.
func (l *Line) Name() string { return fmt.Sprintf("line%d", l.N) }

// FullMesh connects every node to every other node — the §IV-C limitation
// scenario where "COW and SDS algorithms perform nearly as bad as COB".
type FullMesh struct {
	N         int
	neighbors [][]int
}

// NewFullMesh returns a k-node full mesh.
func NewFullMesh(k int) *FullMesh {
	if k < 1 {
		panic("sim: empty mesh")
	}
	m := &FullMesh{N: k, neighbors: make([][]int, k)}
	for n := 0; n < k; n++ {
		nb := make([]int, 0, k-1)
		for o := 0; o < k; o++ {
			if o != n {
				nb = append(nb, o)
			}
		}
		m.neighbors[n] = nb
	}
	return m
}

// K implements Topology.
func (m *FullMesh) K() int { return m.N }

// Neighbors implements Topology.
func (m *FullMesh) Neighbors(n int) []int { return m.neighbors[n] }

// Name implements Topology.
func (m *FullMesh) Name() string { return fmt.Sprintf("mesh%d", m.N) }

// NextHops converts a route (a node sequence) into a next-hop table:
// hops[n] is the successor of n on the route, or -1 off the route and at
// the final hop.
func NextHops(k int, route []int) []int {
	hops := make([]int, k)
	for i := range hops {
		hops[i] = -1
	}
	for i := 0; i+1 < len(route); i++ {
		hops[route[i]] = route[i+1]
	}
	return hops
}

// RouteNeighborhood returns the route nodes together with every direct
// neighbour of a route node — the node set the paper configures for
// symbolic packet drops (§IV-A: "nodes on the data path towards the
// destination and their neighbors should symbolically drop one packet").
func RouteNeighborhood(topo Topology, route []int) []int {
	seen := make(map[int]bool, len(route)*3)
	var out []int
	add := func(n int) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range route {
		add(n)
	}
	for _, n := range route {
		for _, nb := range topo.Neighbors(n) {
			add(nb)
		}
	}
	return out
}
