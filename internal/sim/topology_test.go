package sim

import (
	"reflect"
	"sort"
	"testing"
)

func TestGridNeighbors(t *testing.T) {
	g := NewGrid(3, 3)
	if g.K() != 9 {
		t.Fatalf("K = %d, want 9", g.K())
	}
	tests := []struct {
		node int
		want []int
	}{
		{0, []int{1, 3}},       // top-left corner
		{2, []int{1, 5}},       // top-right corner
		{4, []int{1, 3, 5, 7}}, // centre
		{8, []int{5, 7}},       // bottom-right corner
		{3, []int{0, 4, 6}},    // left edge
	}
	for _, tt := range tests {
		got := append([]int(nil), g.Neighbors(tt.node)...)
		sort.Ints(got)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Neighbors(%d) = %v, want %v", tt.node, got, tt.want)
		}
	}
}

func TestGridNeighborsSymmetric(t *testing.T) {
	g := NewGrid(5, 4)
	for n := 0; n < g.K(); n++ {
		for _, nb := range g.Neighbors(n) {
			back := false
			for _, o := range g.Neighbors(nb) {
				if o == n {
					back = true
				}
			}
			if !back {
				t.Errorf("edge %d->%d not symmetric", n, nb)
			}
		}
	}
}

func TestStaircaseRoute(t *testing.T) {
	g := NewGrid(3, 3)
	route := g.StaircaseRoute(8, 0)
	want := []int{8, 7, 4, 3, 0}
	if !reflect.DeepEqual(route, want) {
		t.Errorf("route = %v, want %v", route, want)
	}
	// Every consecutive pair must be a neighbour edge.
	for i := 0; i+1 < len(route); i++ {
		found := false
		for _, nb := range g.Neighbors(route[i]) {
			if nb == route[i+1] {
				found = true
			}
		}
		if !found {
			t.Errorf("route step %d->%d is not an edge", route[i], route[i+1])
		}
	}
}

func TestStaircaseRouteLengths(t *testing.T) {
	for _, dim := range []int{5, 7, 10} {
		g := NewGrid(dim, dim)
		route := g.StaircaseRoute(g.K()-1, 0)
		// Manhattan distance corner-to-corner plus the starting node.
		want := 2*(dim-1) + 1
		if len(route) != want {
			t.Errorf("%dx%d route length = %d, want %d", dim, dim, len(route), want)
		}
		if route[0] != g.K()-1 || route[len(route)-1] != 0 {
			t.Errorf("%dx%d route endpoints wrong: %v", dim, dim, route)
		}
	}
}

func TestLineTopology(t *testing.T) {
	l := NewLine(4)
	if !reflect.DeepEqual(l.Neighbors(0), []int{1}) {
		t.Errorf("Neighbors(0) = %v", l.Neighbors(0))
	}
	if !reflect.DeepEqual(l.Neighbors(2), []int{1, 3}) {
		t.Errorf("Neighbors(2) = %v", l.Neighbors(2))
	}
	if !reflect.DeepEqual(l.Neighbors(3), []int{2}) {
		t.Errorf("Neighbors(3) = %v", l.Neighbors(3))
	}
	if NewLine(1).Neighbors(0) != nil {
		t.Error("singleton line should have no neighbours")
	}
}

func TestFullMesh(t *testing.T) {
	m := NewFullMesh(4)
	for n := 0; n < 4; n++ {
		if got := len(m.Neighbors(n)); got != 3 {
			t.Errorf("node %d has %d neighbours, want 3", n, got)
		}
		for _, nb := range m.Neighbors(n) {
			if nb == n {
				t.Errorf("node %d neighbours itself", n)
			}
		}
	}
}

func TestNextHops(t *testing.T) {
	hops := NextHops(5, []int{4, 2, 0})
	want := []int{-1, -1, 0, -1, 2}
	if !reflect.DeepEqual(hops, want) {
		t.Errorf("NextHops = %v, want %v", hops, want)
	}
}

func TestRouteNeighborhood(t *testing.T) {
	g := NewGrid(3, 3)
	route := g.StaircaseRoute(8, 0) // 8 7 4 3 0
	nodes := RouteNeighborhood(g, route)
	set := NodeSet(nodes)
	for _, n := range route {
		if !set[n] {
			t.Errorf("route node %d missing from neighbourhood", n)
		}
	}
	// Nodes 1, 5, 6 are off-route neighbours of route nodes; node 2 (the
	// top-right corner) touches none of 8-7-4-3-0 and must be excluded.
	for _, n := range []int{1, 5, 6} {
		if !set[n] {
			t.Errorf("node %d (route neighbour) missing", n)
		}
	}
	if set[2] {
		t.Error("node 2 is not adjacent to the route but was included")
	}
	if len(nodes) != 8 {
		t.Errorf("neighbourhood size = %d, want 8", len(nodes))
	}
}

func TestGridName(t *testing.T) {
	if got := NewGrid(5, 5).Name(); got != "grid5x5" {
		t.Errorf("Name = %q", got)
	}
	if got := NewLine(7).Name(); got != "line7" {
		t.Errorf("Name = %q", got)
	}
	if got := NewFullMesh(3).Name(); got != "mesh3" {
		t.Errorf("Name = %q", got)
	}
}
