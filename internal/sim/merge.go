package sim

// Engine-side state merging (tentpole of internal/merge): the end-of-event
// merge scan, the pop-time ordering gate that makes merged execution
// bit-identical to unmerged execution, and the scheduling driver the merge
// manager splits members back through.
//
// The ordering argument: the event heap pops (time, stateID) ascending. A
// rep carries the id of its smallest member, so it pops exactly where that
// member would have. Executing the shared event once for all members is
// indistinguishable from executing it member by member as long as no
// OTHER state would, unmerged, have run between the members — i.e. no
// foreign state with an id strictly inside the rep's member-id span is due
// at the same timestamp. The gate checks exactly that and splits the rep
// otherwise, so the sequence of handler activations (and therefore every
// fork, solver query, violation, and fingerprint) is the unmerged one.

import (
	"sde/internal/vm"
)

// mergeExecOK decides whether rep s, due at time t, may execute through
// the shared event. It fails when a foreign state due at t has an id
// strictly inside the member span (unmerged interleaving would put it
// between the members), or when the event would trigger the failure
// models' first-reception forking (reps never fork).
func (e *Engine) mergeExecOK(s *vm.State, t uint64) bool {
	lo, hi, ok := e.mergeMgr.Span(s)
	if !ok {
		return false
	}
	for i := range e.evHeap {
		ent := &e.evHeap[i]
		if ent.time != t || ent.state == s {
			continue
		}
		if ent.stateID <= lo || ent.stateID >= hi {
			continue
		}
		// Live entry? Frozen members (no events) and superseded entries
		// drop out here, exactly as the pop loop would skip them.
		if ent.seq != e.entrySeq[ent.state] || ent.state.Status() != vm.StatusIdle {
			continue
		}
		if et, due := ent.state.NextEventTime(); !due || et != t {
			continue
		}
		// Partial-order relaxation (internal/reduce): a foreign activation
		// that is independent of the rep's pending one — the rep's handler
		// is pure and the foreign one cannot deliver to the rep's node —
		// commutes with it, so the unmerged interleaving is observably
		// identical and the rep may stay merged.
		if e.porCanCommute(s, ent.state) {
			e.porCommutes++
			continue
		}
		return false
	}
	if ev, pending := s.PeekEvent(); pending && ev.Kind == vm.EventRecv {
		n := s.NodeID()
		f := e.cfg.Failures
		if (f.DropFirst[n] || f.DuplicateFirst[n] || f.RebootOnFirst[n]) && s.RecvCount() == 0 {
			return false
		}
	}
	return true
}

// Merge-scan backoff tuning: after mergeBarrenThreshold consecutive scans
// without a fusion the engine starts skipping scans, doubling the skip
// interval (up to mergeBackoffCap) while the workload stays barren and
// resetting to every-Step scanning on the first new fusion.
const (
	mergeBarrenThreshold = 8
	mergeBackoffCap      = 64
)

// mergeWake cancels the scan backoff. Called whenever the frontier gains
// states that could pair up — fork adoptions and rep splits — so the
// backoff only ever skips scans over a frontier that has not grown since
// the last fruitless scan.
func (e *Engine) mergeWake() {
	e.mergeBarren = 0
	e.mergeInterval = 0
	e.mergeSkip = 0
}

// maybeMergeScan runs the end-of-event merge scan, or skips it under the
// exponential backoff a barren workload earns. Touched nodes accumulate
// across skipped scans and are cleared only after a scan actually runs,
// so skipping defers merge candidates without losing any — and because
// mergeWake cancels the backoff the moment the frontier grows, a deferred
// scan only ever covers states that already failed to pair up. Deferral
// is safe: merging is an optimisation that preserves execution
// bit-for-bit, so WHEN a fusion happens affects only how much work it
// saves.
func (e *Engine) maybeMergeScan() {
	if e.mergeSkip > 0 {
		e.mergeSkip--
		e.mergeScansSkipped++
		return
	}
	before := e.mergeMgr.Stats()
	e.mergeScan()
	clear(e.mergeTouched)
	after := e.mergeMgr.Stats()
	if after.Merges > before.Merges || after.Candidates > before.Candidates {
		// The scan found structurally mergeable pairs (fused or not):
		// the workload is not barren, keep scanning every Step.
		e.mergeWake()
		return
	}
	e.mergeBarren++
	if e.mergeBarren >= mergeBarrenThreshold {
		if e.mergeInterval == 0 {
			e.mergeInterval = 1
		} else if e.mergeInterval < mergeBackoffCap {
			e.mergeInterval *= 2
		}
		e.mergeSkip = e.mergeInterval
	}
}

// mergeScan offers the quiescent states of every node touched since the
// last scan to the merge manager. It runs after the event's runnable
// states are fully drained — every speculative verdict is resolved and
// each state is at an event boundary, the same property checkpoints rely
// on.
func (e *Engine) mergeScan() {
	if len(e.mergeTouched) == 0 {
		return
	}
	var cands []*vm.State
	for _, s := range e.states {
		if _, touched := e.mergeTouched[s.NodeID()]; !touched {
			continue
		}
		if st := s.Status(); st != vm.StatusIdle && st != vm.StatusHalted {
			continue
		}
		if e.mergeMgr.IsFrozen(s) {
			continue
		}
		cands = append(cands, s)
	}
	e.mergeMgr.ForEachRep(func(r *vm.State) {
		if _, touched := e.mergeTouched[r.NodeID()]; touched {
			cands = append(cands, r)
		}
	})
	e.mergeMgr.Scan(cands)
}

// merge.Driver: split members re-enter exploration through the same
// scheduling paths unmerged states use.

func (h *engineHooks) EnqueueRunnable(s *vm.State) {
	e := (*Engine)(h)
	e.runnable = append(e.runnable, s)
	e.mergeWake()
}

func (h *engineHooks) ScheduleIdle(s *vm.State) {
	e := (*Engine)(h)
	e.scheduleHeap(s)
	e.mergeWake()
}
