package sim

// Engine-side state merging (tentpole of internal/merge): the end-of-event
// merge scan, the pop-time ordering gate that makes merged execution
// bit-identical to unmerged execution, and the scheduling driver the merge
// manager splits members back through.
//
// The ordering argument: the event heap pops (time, stateID) ascending. A
// rep carries the id of its smallest member, so it pops exactly where that
// member would have. Executing the shared event once for all members is
// indistinguishable from executing it member by member as long as no
// OTHER state would, unmerged, have run between the members — i.e. no
// foreign state with an id strictly inside the rep's member-id span is due
// at the same timestamp. The gate checks exactly that and splits the rep
// otherwise, so the sequence of handler activations (and therefore every
// fork, solver query, violation, and fingerprint) is the unmerged one.

import (
	"sde/internal/vm"
)

// mergeExecOK decides whether rep s, due at time t, may execute through
// the shared event. It fails when a foreign state due at t has an id
// strictly inside the member span (unmerged interleaving would put it
// between the members), or when the event would trigger the failure
// models' first-reception forking (reps never fork).
func (e *Engine) mergeExecOK(s *vm.State, t uint64) bool {
	lo, hi, ok := e.mergeMgr.Span(s)
	if !ok {
		return false
	}
	for i := range e.evHeap {
		ent := &e.evHeap[i]
		if ent.time != t || ent.state == s {
			continue
		}
		if ent.stateID <= lo || ent.stateID >= hi {
			continue
		}
		// Live entry? Frozen members (no events) and superseded entries
		// drop out here, exactly as the pop loop would skip them.
		if ent.seq != e.entrySeq[ent.state] || ent.state.Status() != vm.StatusIdle {
			continue
		}
		if et, due := ent.state.NextEventTime(); !due || et != t {
			continue
		}
		return false
	}
	if ev, pending := s.PeekEvent(); pending && ev.Kind == vm.EventRecv {
		n := s.NodeID()
		f := e.cfg.Failures
		if (f.DropFirst[n] || f.DuplicateFirst[n] || f.RebootOnFirst[n]) && s.RecvCount() == 0 {
			return false
		}
	}
	return true
}

// mergeScan offers the quiescent states of every node touched by the
// current Step to the merge manager. It runs after the event's runnable
// states are fully drained — every speculative verdict is resolved and
// each state is at an event boundary, the same property checkpoints rely
// on.
func (e *Engine) mergeScan() {
	if len(e.mergeTouched) == 0 {
		return
	}
	var cands []*vm.State
	for _, s := range e.states {
		if _, touched := e.mergeTouched[s.NodeID()]; !touched {
			continue
		}
		if st := s.Status(); st != vm.StatusIdle && st != vm.StatusHalted {
			continue
		}
		if e.mergeMgr.IsFrozen(s) {
			continue
		}
		cands = append(cands, s)
	}
	e.mergeMgr.ForEachRep(func(r *vm.State) {
		if _, touched := e.mergeTouched[r.NodeID()]; touched {
			cands = append(cands, r)
		}
	})
	e.mergeMgr.Scan(cands)
}

// merge.Driver: split members re-enter exploration through the same
// scheduling paths unmerged states use.

func (h *engineHooks) EnqueueRunnable(s *vm.State) {
	e := (*Engine)(h)
	e.runnable = append(e.runnable, s)
}

func (h *engineHooks) ScheduleIdle(s *vm.State) {
	(*Engine)(h).scheduleHeap(s)
}
