package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"time"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/isa"
	mergepkg "sde/internal/merge"
	"sde/internal/metrics"
	reducepkg "sde/internal/reduce"
	"sde/internal/solver"
	"sde/internal/vm"
)

// FailurePlan selects which nodes are subject to which symbolic network
// failures (paper §IV-A). Each failure triggers on a state's first
// reception and forks the receiving state: one side experiences the
// failure, the other does not.
type FailurePlan struct {
	// DropFirst: the first received packet is symbolically dropped above
	// the radio ("in one state the radio receives the packet while in the
	// other the packet is dropped").
	DropFirst map[int]bool
	// DuplicateFirst: the first received packet is symbolically
	// duplicated (the receive handler runs twice in one branch).
	DuplicateFirst map[int]bool
	// RebootOnFirst: the node symbolically reboots upon its first
	// reception, losing volatile state.
	RebootOnFirst map[int]bool
}

// NodeSet builds a membership map from a node list.
func NodeSet(nodes []int) map[int]bool {
	set := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	return set
}

// Caps bound a run; the paper capped the COB run at ~40 GB RAM and aborted
// it ("we had to abort the test after 9 hours of execution due to the
// physical memory limit").
type Caps struct {
	MaxStates       int           // abort when live states exceed this (0 = unlimited)
	MaxMemBytes     int64         // abort when modeled RAM exceeds this (0 = unlimited)
	MaxWall         time.Duration // abort after this much wall time (0 = unlimited)
	MaxInstructions uint64        // abort after this many instructions (0 = unlimited)
}

// Config describes one SDE run.
type Config struct {
	Topo      Topology
	Prog      *isa.Program
	Algorithm core.Algorithm

	// BootFn and RecvFn name the entry points; they default to "boot"
	// and "on_recv". RecvFn may be absent if the program never receives.
	BootFn string
	RecvFn string

	// RXBufAddr is the word address the runtime copies received payloads
	// to before invoking RecvFn (default 0x8000).
	RXBufAddr uint32

	// Latency is the transmission delay in ticks (default 2, minimum 1).
	Latency uint64

	// Horizon stops the run at this virtual time; events scheduled later
	// are not executed (paper: "The simulation time is 10 seconds").
	Horizon uint64

	// EventBudget, when > 0, suspends the run once the cumulative
	// processed-event count reaches it and live pre-horizon work remains:
	// Step returns false and the Result reports Suspended. The count is
	// absolute — a resumed engine continues from the snapshot's event
	// counter — so a chain of suspensions lands on the same boundaries no
	// matter how many times the run was checkpointed, crashed, or shipped
	// between processes. This is the depth-horizon cutoff behind
	// continuation sharding: the surviving frontier is snapshotted and
	// re-partitioned instead of finishing on one engine.
	EventBudget uint64

	Failures FailurePlan

	// NodeInit seeds per-node memory (roles, routing tables) before boot.
	NodeInit func(node int, s *vm.State, eb *expr.Builder)

	Caps Caps

	// StepBudget bounds instructions per event handler activation.
	StepBudget int

	// SampleEvery takes a metrics sample every n processed events
	// (default 64; 0 disables all sampling except the final one).
	SampleEvery int

	// CheckInvariants runs the mapper's structural self-checks after
	// every mapping operation. Expensive; meant for tests.
	CheckInvariants bool

	// Replay, when non-nil, runs one concrete execution instead of a
	// symbolic one: symbolic inputs take their value from this test case
	// and failure decisions follow their variables (0 selects the
	// failure branch, matching the solver's don't-care default). No
	// forking occurs; the run yields exactly one state per node.
	Replay expr.Env

	// Pin pre-decides individual failure variables without forking: the
	// named decision takes the given value (0 = failure branch) and the
	// matching constraint is still added to the path condition, so test
	// cases and dscenario fingerprints remain complete. Pinning
	// partitions the dscenario space — the mechanism behind the parallel
	// SDE extension (paper §VI): shards explore disjoint halves of the
	// space on independent engines.
	Pin map[string]uint64

	// Progress, when non-nil, is polled between events (every
	// progressPollEvents processed events) with the number of adopted
	// states and the elapsed wall time. Returning true stops the run:
	// Step returns false and the Result reports Stopped. The adaptive
	// shard scheduler uses this to cut a straggling shard short and
	// re-partition it instead of waiting it out.
	Progress func(states int, elapsed time.Duration) (stop bool)

	// SharedSolverCache, when non-nil, backs this run's solver with a
	// cross-run query cache, so concurrent shards reuse each other's
	// constraint verdicts (pin-independent query components recur in
	// every shard).
	SharedSolverCache *solver.SharedCache

	// Solver tunes the run's constraint solver (ablation switches,
	// conflict budget). The zero value enables every optimisation. A
	// non-nil SharedSolverCache overrides Solver.SharedCache.
	Solver solver.Options

	// CheckpointDir, when non-empty, makes the run durable: a snapshot of
	// the full exploration frontier is written there (atomic
	// write-rename, plus an append-only journal line) every
	// CheckpointEvery processed events and once more on completion. A
	// crashed run restarts from the last snapshot via ResumeEngine.
	CheckpointDir string

	// CheckpointEvery is the checkpoint interval in processed events
	// (default 256). Only meaningful with CheckpointDir.
	CheckpointEvery int

	// DisableSpeculation turns the speculative-fork solver pipeline off:
	// every branch feasibility query is then solved synchronously on the
	// interpreter thread. Speculation preserves verdicts, fingerprints,
	// and test cases bit-for-bit, so disabling it is the first triage step
	// when a run looks wrong — if the output changes, the pipeline is the
	// bug. Replay runs never speculate (they take no symbolic branches).
	DisableSpeculation bool

	// SpecWorkers is the solver worker count of the speculation pipeline:
	// 0 picks one worker per available CPU; negative values are rejected.
	SpecWorkers int

	// DisableCompiledIR turns the basic-block compiled fast path off:
	// every instruction then goes through the per-instruction symbolic
	// interpreter. Compiled execution preserves fingerprints, forks,
	// sends, and violations bit-for-bit, so disabling it is the FIRST
	// triage step when a run looks wrong — before DisableSpeculation and
	// the query-optimizer switch. The IR is derived at load time and
	// never serialized, so this flag may differ between a checkpointed
	// run and its resumption without affecting the outcome.
	DisableCompiledIR bool

	// EnableMerge turns on ITE-based state merging (internal/merge):
	// sibling states of one node differing at a bounded number of
	// locations are fused into one merged representative whose diverging
	// values become ite(Δ, v1, v2) expressions, and split back into the
	// exact members at the first non-uniform control decision or
	// observable instruction. Merging preserves failure fingerprints,
	// violations, solver queries, and generated test cases bit-for-bit —
	// it reduces how many live machines exist, not what the run observes —
	// so turning it OFF is a soundness-triage step ordered after -compile
	// and before -speculate/-qopt. Off by default; replay runs never
	// merge (they hold a single concrete path).
	EnableMerge bool

	// MergeCost overrides the merge-vs-fork cost model (default
	// merge.DefaultCostModel). Only meaningful with EnableMerge.
	MergeCost mergepkg.CostModel

	// EnableReduce turns on symmetry and partial-order reduction
	// (internal/reduce): the topology's automorphism group canonicalizes
	// failure-decision branches so only one member of each symmetry orbit
	// is explored (COB), and an activation-independence check lets merged
	// representatives commute past foreign same-time activations
	// (COW/SDS). Reduction preserves the violation set — pruned branches'
	// violations are synthesized back onto concrete node ids at the end
	// of the run — and per-orbit-representative test cases, but NOT
	// bit-identity: fewer states are explored, so instruction counts,
	// solver queries, and fingerprint populations shrink. Turning it OFF
	// is therefore a soundness-triage step ordered after -merge and
	// before -speculate/-qopt. Off by default; replay runs never reduce.
	// Reduction state is derived (group recomputed, seen-set rebuilt
	// empty on resume) and never serialized; the snapshot format is
	// unchanged.
	EnableReduce bool

	// Symmetry declares the per-node asymmetries of the scenario (role
	// labels, static routes) so reduction can be used with node-aware
	// programs; see ReduceSymmetry. When nil, the automorphism group is
	// applied automatically only to node-uniform programs. Only
	// meaningful with EnableReduce.
	Symmetry *ReduceSymmetry
}

// Result summarises a finished (or aborted) run.
type Result struct {
	Algorithm   core.Algorithm
	Topology    string
	Aborted     bool
	AbortReason string
	// Stopped reports that the Progress hook ended the run early; the
	// result covers only the explored prefix and its consumer (the shard
	// scheduler) is expected to discard it and re-partition.
	Stopped bool
	// Resumed reports that the run continued from a durable checkpoint
	// rather than starting fresh. Wall includes the time the interrupted
	// run(s) already spent.
	Resumed bool
	// Suspended reports that the run hit its EventBudget with live
	// pre-horizon work remaining. The frontier snapshot written at the
	// suspension point is the continuation; SuspendUnits says how many
	// disjoint slices it supports (see ResumeEngineSlice).
	Suspended bool
	// SuspendUnits is the number of independently resumable slices of a
	// suspended frontier: COB dscenarios are disjoint state sets, so each
	// row can continue on its own engine; COW/SDS states share structure
	// across the whole frontier and yield a single unit.
	SuspendUnits int

	Wall         time.Duration
	VirtualTime  uint64
	Instructions uint64
	Events       uint64

	FinalStates int
	PeakStates  int
	Groups      int
	DScenarios  *big.Int
	FinalMem    int64
	PeakMem     int64

	Violations []*vm.Violation
	Series     *metrics.Series

	// SolverStats snapshots the constraint-solver activity counters.
	SolverStats solver.Stats

	// Spec summarises the speculative-fork solver pipeline's activity
	// (zero when speculation was disabled).
	Spec metrics.SpecStats

	// VM summarises the compiled-IR fast path's activity (zero when
	// compiled execution was disabled).
	VM metrics.VMStats

	// Merge summarises the state-merging subsystem's activity (zero when
	// merging was disabled).
	Merge metrics.MergeStats

	// Reduce summarises the symmetry/partial-order reduction activity
	// (zero when reduction was disabled).
	Reduce metrics.ReduceStats

	// Mapper and Ctx expose the final symbolic state population for
	// post-processing: dscenario explosion, test-case generation.
	Mapper core.Mapper[*vm.State]
	Ctx    *vm.Context
}

// Engine executes one SDE run. Create with NewEngine, then call Run (or
// Step repeatedly for fine-grained control in tests).
type Engine struct {
	cfg    Config
	ctx    *vm.Context
	mapper core.Mapper[*vm.State]

	states   []*vm.State
	runnable []*vm.State // mid-event states (branch siblings), LIFO
	evHeap   entryHeap
	entrySeq map[*vm.State]uint64

	clock      uint64
	events     uint64
	peakStates int
	peakMem    int64
	violations []*vm.Violation
	series     metrics.Series
	started    time.Time
	priorWall  time.Duration // wall time spent before a resume
	lastCkpt   uint64        // events count at the last written checkpoint
	resumed    bool

	bootFn, recvFn int
	aborted        bool
	abortReason    string
	stopped        bool
	suspended      bool
	finished       bool
	err            error

	// Speculative-fork pipeline (see speculate.go). specPending holds the
	// unresolved speculations of the currently executing state, in
	// creation order.
	specPool        *solver.SpecPool
	specPending     []specEntry
	specRewinds     int64
	specKills       int64
	specRemoved     int64
	specBarriers    int64
	specBarrierWait time.Duration

	// State merging (see merge.go). mergeMgr owns the merged frontier;
	// mergeTouched collects the nodes whose quiescent states changed
	// during the current Step, the only merge candidates its end-of-event
	// scan needs to look at.
	mergeMgr     *mergepkg.Manager
	mergeTouched map[int]struct{}

	// Merge-scan backoff (see maybeMergeScan): consecutive fruitless
	// scans back the scan frequency off exponentially; touched nodes
	// accumulate across the skipped scans, so candidates are deferred,
	// never lost.
	mergeBarren       int    // consecutive scans without a fusion
	mergeInterval     int    // current skip interval (0 = scan every Step)
	mergeSkip         int    // scans left to skip before the next real one
	mergeScansSkipped uint64 // total scans elided by the backoff

	// Symmetry/partial-order reduction (see reduce.go in this package).
	reducer      *reducepkg.Reducer
	porCls       *reducepkg.Classifier
	reduceChecks uint64 // failure decisions the reducer was consulted on
	reducePins   uint64 // decisions pinned instead of forked
	porCommutes  uint64 // merged executions allowed by the independence check
}

// defaultCheckpointEvery is the checkpoint interval (in processed events)
// when CheckpointDir is set but CheckpointEvery is not.
const defaultCheckpointEvery = 256

// progressPollEvents is how often (in processed events) Step consults
// the Progress hook. Events are coarse units of work — a single event
// can fork hundreds of states in a heavily symbolic handler — so the
// hook is polled on every event: a straggler is caught at the first
// event boundary after its state population explodes, and the per-event
// cost of the poll is invisible next to event processing itself.
const progressPollEvents = 1

type heapEntry struct {
	time    uint64
	stateID uint64
	seq     uint64
	state   *vm.State
}

type entryHeap []heapEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].stateID < h[j].stateID
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(heapEntry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// newEngineShell validates the configuration, applies defaults, and
// builds an engine without any states or mapper — the part of engine
// construction shared by NewEngine (fresh run) and ResumeEngine
// (checkpoint restore).
func newEngineShell(cfg Config) (*Engine, error) {
	if cfg.Topo == nil {
		return nil, errors.New("sim: config needs a topology")
	}
	if cfg.Prog == nil {
		return nil, errors.New("sim: config needs a program")
	}
	if cfg.BootFn == "" {
		cfg.BootFn = "boot"
	}
	if cfg.RecvFn == "" {
		cfg.RecvFn = "on_recv"
	}
	if cfg.RXBufAddr == 0 {
		cfg.RXBufAddr = 0x8000
	}
	if cfg.Latency == 0 {
		cfg.Latency = 2
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 64
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = defaultCheckpointEvery
	}
	bootFn := cfg.Prog.FuncIndex(cfg.BootFn)
	if bootFn < 0 {
		return nil, fmt.Errorf("sim: program lacks boot function %q", cfg.BootFn)
	}
	recvFn := cfg.Prog.FuncIndex(cfg.RecvFn) // may be -1: send-only programs

	sopts := cfg.Solver
	if cfg.SharedSolverCache != nil {
		sopts.SharedCache = cfg.SharedSolverCache
	}
	if cfg.SpecWorkers < 0 {
		return nil, fmt.Errorf("sim: SpecWorkers must be >= 0 (got %d)", cfg.SpecWorkers)
	}
	ctx := vm.NewContextWithSolver(sopts)
	ctx.Replay = cfg.Replay
	if cfg.DisableCompiledIR {
		ctx.SetCompiledIR(false)
	} else {
		// Compile eagerly so the (one-off) CREATE/BUILD cost is paid at
		// load time, not on the first event of the first state.
		cfg.Prog.IR()
	}
	e := &Engine{
		cfg:      cfg,
		ctx:      ctx,
		entrySeq: make(map[*vm.State]uint64),
		bootFn:   bootFn,
		recvFn:   recvFn,
		started:  time.Now(),
	}
	if !cfg.DisableSpeculation && cfg.Replay == nil {
		workers := cfg.SpecWorkers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		e.specPool = solver.NewSpecPool(ctx.Solver, workers)
		ctx.SetSpecHooks((*engineHooks)(e))
	}
	if cfg.EnableMerge && cfg.Replay == nil {
		e.mergeMgr = mergepkg.NewManager(ctx.Exprs, (*engineHooks)(e), mergepkg.Config{
			Cost: cfg.MergeCost,
			SliceStats: func() (uint64, uint64) {
				st := ctx.Solver.Stats()
				return uint64(st.SlicedQueries), uint64(st.SlicedFactors)
			},
		})
		ctx.SetMergeHooks(e.mergeMgr)
		e.mergeTouched = make(map[int]struct{})
	}
	if cfg.EnableReduce && cfg.Replay == nil {
		if err := validateSymmetry(&cfg); err != nil {
			return nil, err
		}
		e.reducer = buildReducer(&cfg)
		e.porCls = reducepkg.NewClassifier(cfg.Prog)
	}
	return e, nil
}

// NewEngine validates the configuration and builds the initial k node
// states (node i runs cfg.Prog with a boot event at time 0).
func NewEngine(cfg Config) (*Engine, error) {
	e, err := newEngineShell(cfg)
	if err != nil {
		return nil, err
	}
	cfg = e.cfg // with defaults applied
	ctx := e.ctx
	mapper, err := core.New[*vm.State](cfg.Algorithm, cfg.Topo.K())
	if err != nil {
		return nil, err
	}
	e.mapper = mapper
	for node := 0; node < cfg.Topo.K(); node++ {
		s := vm.NewState(ctx, cfg.Prog, node)
		if cfg.NodeInit != nil {
			cfg.NodeInit(node, s, ctx.Exprs)
		}
		s.PushEvent(vm.Event{Time: 0, Kind: vm.EventBoot, Fn: e.bootFn})
		e.states = append(e.states, s)
		mapper.Register(s)
		e.scheduleHeap(s)
	}
	e.peakStates = len(e.states)
	return e, nil
}

// Ctx returns the engine's VM context.
func (e *Engine) Ctx() *vm.Context { return e.ctx }

// Mapper returns the engine's state mapper.
func (e *Engine) Mapper() core.Mapper[*vm.State] { return e.mapper }

// Clock returns the current virtual time.
func (e *Engine) Clock() uint64 { return e.clock }

// NumStates returns the number of states the engine has adopted.
func (e *Engine) NumStates() int { return len(e.states) }

// scheduleHeap (re-)registers the state's earliest pending event in the
// global heap. Stale entries are invalidated via the per-state sequence.
func (e *Engine) scheduleHeap(s *vm.State) {
	t, ok := s.NextEventTime()
	if !ok || s.Status() != vm.StatusIdle {
		return
	}
	e.entrySeq[s]++
	heap.Push(&e.evHeap, heapEntry{time: t, stateID: s.ID(), seq: e.entrySeq[s], state: s})
}

// adopt integrates mapper- or failure-created states into the engine.
func (e *Engine) adopt(states []*vm.State) {
	for _, s := range states {
		e.states = append(e.states, s)
		e.scheduleHeap(s)
		if e.mergeTouched != nil {
			e.mergeTouched[s.NodeID()] = struct{}{}
		}
	}
	if len(states) > 0 {
		// Fresh forks are exactly what produces merge candidates: cancel
		// any scan backoff so the end-of-event scan sees them immediately.
		e.mergeWake()
	}
	if len(e.states) > e.peakStates {
		e.peakStates = len(e.states)
	}
}

// Step processes the next pending event (including all branch siblings it
// spawns). It returns false when the run is complete: no events remain
// before the horizon, the run was aborted, or a fatal error occurred.
func (e *Engine) Step() bool {
	if e.finished || e.aborted || e.stopped || e.suspended || e.err != nil {
		return false
	}
	if e.cfg.EventBudget > 0 && e.events >= e.cfg.EventBudget {
		// Depth-horizon cutoff. Merged reps are split first: a continuation
		// snapshot must carry exact member states so it can be sliced along
		// dscenario boundaries (splitting is bit-neutral — Finish does the
		// same before result assembly). The speculation pipeline needs no
		// such treatment: it is fully drained at the end of every
		// activation, so between Steps it is always empty.
		if e.mergeMgr != nil {
			e.mergeMgr.SplitAllIdle()
		}
		if e.hasLiveWork() {
			e.suspended = true
			return false
		}
		// Nothing live before the horizon: finish normally below.
	}
	if reason := e.capExceeded(); reason != "" {
		e.abort(reason)
		return false
	}
	if e.cfg.Progress != nil && e.events%progressPollEvents == 0 {
		if e.cfg.Progress(len(e.states), time.Since(e.started)) {
			e.stopped = true
			return false
		}
	}
	for {
		if e.evHeap.Len() == 0 {
			e.finished = true
			return false
		}
		entry := heap.Pop(&e.evHeap).(heapEntry)
		s := entry.state
		if entry.seq != e.entrySeq[s] || s.Status() != vm.StatusIdle {
			continue // stale
		}
		t, ok := s.NextEventTime()
		if !ok {
			continue
		}
		if t != entry.time {
			e.scheduleHeap(s)
			continue
		}
		if e.cfg.Horizon > 0 && t > e.cfg.Horizon {
			// Nothing before the horizon remains for this state; the heap
			// is time-ordered, so the whole run is done.
			e.finished = true
			return false
		}
		e.clock = t
		// A merged rep may only execute through this event if no unrelated
		// state due at the same timestamp would, unmerged, have run between
		// its members; otherwise split and let the members pop in their
		// exact heap order (see mergeExecOK).
		if e.mergeMgr != nil {
			if e.mergeMgr.IsRep(s) && !e.mergeExecOK(s, t) {
				e.mergeMgr.SplitIdle(s)
				continue
			}
			e.mergeTouched[s.NodeID()] = struct{}{}
		}
		e.processEvent(s)
		if e.mergeMgr != nil && e.err == nil && !e.aborted {
			e.maybeMergeScan()
		}
		e.events++
		if e.cfg.SampleEvery > 0 && e.events%uint64(e.cfg.SampleEvery) == 0 {
			e.sample()
		}
		if e.err == nil && e.cfg.CheckpointDir != "" && e.events != e.lastCkpt &&
			e.events%uint64(e.cfg.CheckpointEvery) == 0 {
			// Between Steps every state is at an event boundary (idle,
			// halted, or dead) — the only sound checkpoint point.
			if cerr := e.writeCheckpoint(); cerr != nil {
				e.err = fmt.Errorf("sim: checkpoint: %w", cerr)
			}
		}
		return e.err == nil && !e.aborted
	}
}

// hasLiveWork reports whether any state still has a pending event inside
// the virtual-time horizon — the condition under which hitting the
// EventBudget suspends instead of finishing.
func (e *Engine) hasLiveWork() bool {
	for _, s := range e.states {
		if s.Status() != vm.StatusIdle {
			continue
		}
		t, ok := s.NextEventTime()
		if !ok {
			continue
		}
		if e.cfg.Horizon == 0 || t <= e.cfg.Horizon {
			return true
		}
	}
	return false
}

// Run drives the engine to completion and returns the result.
func (e *Engine) Run() (*Result, error) {
	for e.Step() {
	}
	if e.err != nil {
		e.closeSpecPool()
		return nil, e.err
	}
	// A final checkpoint makes completed runs durable too: resuming a
	// finished run replays zero events and reports the same result. For a
	// suspended run this write is the continuation payload itself — the
	// surviving frontier at the event-budget boundary.
	if e.cfg.CheckpointDir != "" && e.events != e.lastCkpt {
		if err := e.writeCheckpoint(); err != nil {
			return nil, fmt.Errorf("sim: checkpoint: %w", err)
		}
	}
	return e.Finish(), nil
}

// Finish finalises metrics and assembles the result. It may be called
// once, after Step has returned false.
func (e *Engine) Finish() *Result {
	e.closeSpecPool()
	e.sample()
	// Dissolve the merged frontier before result assembly: scenario
	// explosion, test-case generation, and fingerprint collection must see
	// the exact member states. The final sample above still captures the
	// merged footprint; FinalMem below is comparable to a merge-off run.
	if e.mergeMgr != nil {
		e.mergeMgr.SplitAllIdle()
	}
	mem := e.modelBytes()
	res := &Result{
		Algorithm:    e.cfg.Algorithm,
		Topology:     e.cfg.Topo.Name(),
		Aborted:      e.aborted,
		AbortReason:  e.abortReason,
		Stopped:      e.stopped,
		Suspended:    e.suspended,
		Resumed:      e.resumed,
		Wall:         e.priorWall + time.Since(e.started),
		VirtualTime:  e.clock,
		Instructions: e.ctx.Instructions(),
		Events:       e.events,
		FinalStates:  e.mapper.NumStates(),
		PeakStates:   e.peakStates,
		Groups:       e.mapper.NumGroups(),
		DScenarios:   e.mapper.DScenarioCount(),
		FinalMem:     mem,
		PeakMem:      e.peakMem,
		Violations:   e.violations,
		Series:       &e.series,
		SolverStats:  e.ctx.Solver.Stats(),
		Mapper:       e.mapper,
		Ctx:          e.ctx,
	}
	if e.suspended {
		// COB keeps every state in exactly one dscenario
		// (core.COB.CheckInvariants), so each row is an independently
		// resumable slice. COW/SDS frontiers share buckets/virtual states
		// across the whole population and continue as one unit.
		if e.cfg.Algorithm == core.COBAlgorithm {
			res.SuspendUnits = e.mapper.NumGroups()
		} else {
			res.SuspendUnits = 1
		}
	}
	if e.specPool != nil {
		ps := e.specPool.Stats()
		res.Spec = metrics.SpecStats{
			Workers:       e.specPool.Workers(),
			Submitted:     ps.Submitted,
			Pairs:         ps.Pairs,
			Assumes:       ps.Assumes,
			Solves:        ps.Solves,
			Elided:        ps.Elided,
			InflightPeak:  ps.InflightPeak,
			Rewinds:       e.specRewinds,
			SpecKills:     e.specKills,
			Removed:       e.specRemoved,
			Barriers:      e.specBarriers,
			BarrierWaitNs: e.specBarrierWait.Nanoseconds(),
		}
	}
	res.VM = metrics.VMStats{
		FastBlocks:   e.ctx.FastBlocks(),
		SlowBlocks:   e.ctx.SlowBlocks(),
		FoldedInstrs: e.ctx.FoldedInstrs(),
	}
	if e.mergeMgr != nil {
		ms := e.mergeMgr.Stats()
		res.Merge = metrics.MergeStats{
			Merges:       ms.Merges,
			Candidates:   ms.Candidates,
			Rejects:      ms.Rejects,
			Splits:       ms.Splits,
			MaxMembers:   ms.MaxMembers,
			PeakMerged:   ms.PeakMerged,
			ScansSkipped: e.mergeScansSkipped,
		}
	}
	if e.reducer != nil {
		// Pruned branches' violations are recovered by closing the
		// observed set under the group: relabeled twins with concrete node
		// ids, marked Synthesized, deduplicated against observed triples.
		// The expansion runs unconditionally (not only when this engine
		// pinned something): a resumed finished shard replays zero events
		// and so records zero pins, yet its snapshot carries violations
		// whose orbit twins were pruned before the checkpoint — the
		// expansion here is what recovers them during sharded assembly.
		before := len(res.Violations)
		res.Violations = e.reducer.ExpandViolations(res.Violations)
		synthesized := len(res.Violations) - before
		g := e.reducer.Group()
		res.Reduce = metrics.ReduceStats{
			GroupOrder:  g.Order(),
			Truncated:   g.Truncated,
			Decisions:   e.reducer.Decisions(),
			Checks:      e.reduceChecks,
			Pins:        e.reducePins,
			PORCommutes: e.porCommutes,
			Synthesized: synthesized,
		}
	}
	if res.PeakMem < mem {
		res.PeakMem = mem
	}
	return res
}

func (e *Engine) abort(reason string) {
	e.aborted = true
	e.abortReason = reason
}

func (e *Engine) capExceeded() string {
	c := e.cfg.Caps
	if c.MaxStates > 0 && len(e.states) > c.MaxStates {
		return fmt.Sprintf("state cap exceeded (%d > %d)", len(e.states), c.MaxStates)
	}
	if c.MaxInstructions > 0 && e.ctx.Instructions() > c.MaxInstructions {
		return fmt.Sprintf("instruction cap exceeded (%d)", e.ctx.Instructions())
	}
	if c.MaxWall > 0 && e.priorWall+time.Since(e.started) > c.MaxWall {
		return fmt.Sprintf("wall-time cap exceeded (%v)", c.MaxWall)
	}
	// The memory cap is checked on sampling ticks (see sample), since
	// computing the modeled footprint walks all states.
	return ""
}

// processEvent applies the failure models, runs the event's handler to
// completion, and drains the branch siblings this produced.
func (e *Engine) processEvent(s *vm.State) {
	e.applyFailures(s)
	if s.Status() != vm.StatusIdle {
		return
	}
	// A failure model may have consumed or deferred the activation
	// (replayed drop, reboot); hand the state back to the scheduler.
	if t, ok := s.NextEventTime(); !ok || t != e.clock {
		e.scheduleHeap(s)
		return
	}
	ev, ok := s.PeekEvent()
	if !ok {
		return
	}
	if ev.Kind == vm.EventRecv && e.recvFn < 0 {
		// No receive handler: the packet is consumed silently.
		s.DropEvent()
		e.scheduleHeap(s)
		return
	}
	s.BeginEvent(e.cfg.RXBufAddr)
	e.runToCompletion(s)
	for len(e.runnable) > 0 {
		sib := e.runnable[len(e.runnable)-1]
		e.runnable = e.runnable[:len(e.runnable)-1]
		e.runToCompletion(sib)
	}
}

// runToCompletion drives one mid-event state until its handler returns.
// With speculation on, the activation ends with a pipeline drain: an
// infeasible-true-side verdict rewinds the state onto the false side and
// re-runs it, so by the time this returns the state's path condition is
// fully confirmed and the pipeline is empty.
func (e *Engine) runToCompletion(s *vm.State) {
	err := s.Run(e.clock, e.cfg.StepBudget, (*engineHooks)(e))
	if e.specPool != nil {
		for {
			e.drainSpec()
			if !s.SpecRewound() {
				break
			}
			s.ClearSpecRewound()
			err = s.Run(e.clock, e.cfg.StepBudget, (*engineHooks)(e))
		}
		if s.Status() == vm.StatusDead {
			// A deferred verdict may have killed the state after (or
			// regardless of) what Run returned; the resolution-time error
			// is what a synchronous run would have died of first.
			err = s.Err()
		}
	}
	if err == nil && s.Status() == vm.StatusDead {
		err = s.Err() // killed by a hook (e.g. out-of-range unicast)
	}
	if err != nil && e.mergeMgr != nil {
		// A rep can only die wholesale (step budget, pc out of range) —
		// asserts and sends split before executing. Every member dies of
		// the same cause; report them individually, in id order, exactly
		// as their unmerged runs would have.
		if members, ok := e.mergeMgr.SplitDead(s); ok {
			for _, m := range members {
				e.violations = append(e.violations, &vm.Violation{
					Node:    m.NodeID(),
					Time:    e.clock,
					Msg:     fmt.Sprintf("state died: %v", m.Err()),
					StateID: m.ID(),
				})
			}
			return
		}
	}
	if errors.Is(err, vm.ErrAssertFails) {
		// Already surfaced through OnViolation; the dead state simply
		// stops executing (the errored path terminates, as in KLEE).
		return
	}
	if err != nil {
		// The state died (runtime error). The run can continue — the
		// paper's model has no state death, so surface it as a violation
		// to make scenario bugs visible without stopping the analysis.
		e.violations = append(e.violations, &vm.Violation{
			Node:    s.NodeID(),
			Time:    e.clock,
			Msg:     fmt.Sprintf("state died: %v", err),
			StateID: s.ID(),
		})
		return
	}
	if s.Status() == vm.StatusIdle {
		e.scheduleHeap(s)
	}
}

// applyFailures injects the configured symbolic failures for a pending
// reception. Each failure forks the state via a fresh symbolic boolean —
// a local branch, so the mapper's OnBranch runs (for COB this forks the
// whole dscenario, exactly as in the paper's evaluation).
func (e *Engine) applyFailures(s *vm.State) {
	ev, ok := s.PeekEvent()
	if !ok || ev.Kind != vm.EventRecv {
		return
	}
	node := s.NodeID()
	f := e.cfg.Failures
	drop := f.DropFirst[node]
	dup := f.DuplicateFirst[node]
	reboot := f.RebootOnFirst[node]
	if !drop && !dup && !reboot {
		return
	}
	idx := s.NextRecvSeq()
	if idx != 0 {
		return // only the first reception is symbolic
	}
	if e.cfg.Replay != nil {
		// Concrete replay: follow the recorded failure decisions instead
		// of forking (variable value 0 selects the failure branch).
		if drop && e.cfg.Replay[fmt.Sprintf("drop_n%d_r%d", node, idx)] == 0 {
			s.DropEvent()
		}
		if dup && e.cfg.Replay[fmt.Sprintf("dup_n%d_r%d", node, idx)] == 0 {
			if _, ok := s.PeekEvent(); ok {
				s.DuplicateEvent()
			}
		}
		if reboot && e.cfg.Replay[fmt.Sprintf("reboot_n%d_r%d", node, idx)] == 0 {
			s.Reboot(e.bootFn, e.clock)
		}
		return
	}
	if drop {
		name := fmt.Sprintf("drop_n%d_r%d", node, idx)
		if val, pinned := e.decideFailure(s, name); pinned {
			if val == 0 {
				s.DropEvent()
			}
		} else {
			sib := s.ForkOnFreshBool(name) // s: no drop; sib: dropped
			e.onLocalBranch(s, sib)
			sib.DropEvent()
			e.adopt([]*vm.State{sib})
		}
	}
	if dup {
		name := fmt.Sprintf("dup_n%d_r%d", node, idx)
		if val, pinned := e.decideFailure(s, name); pinned {
			if val == 0 {
				if _, ok := s.PeekEvent(); ok {
					s.DuplicateEvent()
				}
			}
		} else {
			sib := s.ForkOnFreshBool(name) // s: normal; sib: duplicated
			e.onLocalBranch(s, sib)
			sib.DuplicateEvent()
			e.adopt([]*vm.State{sib})
		}
	}
	if reboot {
		name := fmt.Sprintf("reboot_n%d_r%d", node, idx)
		if val, pinned := e.decideFailure(s, name); pinned {
			if val == 0 {
				s.Reboot(e.bootFn, e.clock)
			}
		} else {
			sib := s.ForkOnFreshBool(name) // s: normal; sib: reboots
			e.onLocalBranch(s, sib)
			sib.Reboot(e.bootFn, e.clock)
			e.adopt([]*vm.State{sib})
		}
	}
}

// pinDecision checks whether a failure decision is pinned by Config.Pin;
// if so it adds the corresponding path constraint and returns the value.
func (e *Engine) pinDecision(s *vm.State, name string) (uint64, bool) {
	val, ok := e.cfg.Pin[name]
	if !ok {
		return 0, false
	}
	v := e.ctx.Exprs.Var(name, 1)
	if val == 0 {
		s.AddConstraint(e.ctx.Exprs.Not(v))
	} else {
		s.AddConstraint(v)
	}
	return val, true
}

// onLocalBranch notifies the mapper of a local fork and adopts whatever
// it created in response.
func (e *Engine) onLocalBranch(orig, sibling *vm.State) {
	// COB's OnBranch forks every other member of the dscenario — any node,
	// any state — so the whole merged frontier must be real first. COW and
	// SDS react to local forks without touching third-party states.
	if e.mergeMgr != nil && e.cfg.Algorithm == core.COBAlgorithm {
		e.mergeMgr.SplitAllIdle()
	}
	extra := e.mapper.OnBranch(orig, sibling)
	e.adopt(extra)
	e.checkMapper()
}

func (e *Engine) checkMapper() {
	if !e.cfg.CheckInvariants || e.err != nil {
		return
	}
	if err := e.mapper.CheckInvariants(); err != nil {
		e.err = fmt.Errorf("sim: mapper invariant violated: %w", err)
	}
}

// handleSend expands a transmission to its unicast deliveries (broadcast =
// one unicast per neighbour, paper footnote 1) and performs the state
// mapping and delivery for each.
func (e *Engine) handleSend(s *vm.State, dst uint32, payload []*expr.Expr) {
	if dst == isa.BroadcastAddr {
		for _, nb := range e.cfg.Topo.Neighbors(s.NodeID()) {
			e.deliverUnicast(s, nb, payload)
		}
		return
	}
	if int(dst) >= e.cfg.Topo.K() {
		s.Kill(fmt.Errorf("sim: send to nonexistent node %d", dst))
		return
	}
	if !e.isNeighbor(s.NodeID(), int(dst)) {
		s.Kill(fmt.Errorf("sim: node %d cannot reach node %d directly", s.NodeID(), dst))
		return
	}
	e.deliverUnicast(s, int(dst), payload)
}

func (e *Engine) isNeighbor(from, to int) bool {
	for _, nb := range e.cfg.Topo.Neighbors(from) {
		if nb == to {
			return true
		}
	}
	return false
}

func (e *Engine) deliverUnicast(s *vm.State, dst int, payload []*expr.Expr) {
	if e.err != nil {
		return
	}
	// Deliveries mutate (and may fork) the destination node's states, and
	// COW's rival handling forks bystanders on every node — those states
	// must be real, not frozen merge members.
	if e.mergeMgr != nil && e.mergeMgr.HasReps() {
		if e.cfg.Algorithm == core.COWAlgorithm {
			e.mergeMgr.SplitAllIdle()
		} else {
			e.mergeMgr.SplitNodeIdle(dst)
		}
	}
	del, err := e.mapper.MapSend(s, dst)
	if err != nil {
		e.err = fmt.Errorf("sim: state mapping: %w", err)
		return
	}
	e.adopt(del.Forked)
	e.checkMapper()
	payloadHash := payloadDigest(payload)
	// The sender's configuration fingerprint at transmission time makes
	// the packet globally unique (see vm.HistEntry) without introducing
	// run-order-dependent identifiers.
	senderFP := s.Fingerprint()
	senderPC := s.PathCond()
	seq := s.RecordSend(uint32(dst), e.clock, payloadHash)
	for _, r := range del.Receivers {
		if e.mergeTouched != nil {
			e.mergeTouched[r.NodeID()] = struct{}{}
		}
		r.RecordRecv(uint32(s.NodeID()), e.clock, seq, payloadHash, senderFP)
		// Receiving implies the sender's context (see
		// vm.InheritConstraints); with symbolic payloads the receiver
		// will branch on the sender's variables.
		r.InheritConstraints(senderPC)
		if r.Status() == vm.StatusIdle {
			r.PushEvent(vm.Event{
				Time: e.clock + e.cfg.Latency,
				Kind: vm.EventRecv,
				Fn:   e.recvFn,
				Src:  uint32(s.NodeID()),
				Data: payload,
			})
			e.scheduleHeap(r)
		}
	}
}

func payloadDigest(payload []*expr.Expr) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range payload {
		h ^= w.Hash()
		h *= 1099511628211
	}
	return h
}

// sample records a metrics point and enforces the memory cap.
func (e *Engine) sample() {
	mem := e.modelBytes()
	if mem > e.peakMem {
		e.peakMem = mem
	}
	st := e.ctx.Solver.Stats()
	sm := metrics.Sample{
		Wall:          e.priorWall + time.Since(e.started),
		VirtualTime:   e.clock,
		States:        e.mapper.NumStates(),
		Groups:        e.mapper.NumGroups(),
		MemBytes:      mem,
		Instructions:  e.ctx.Instructions(),
		SolverQueries: st.Queries,
		QueriesSliced: st.SlicedQueries,
		GatesElided:   st.GatesElided,
		FastBlocks:    e.ctx.FastBlocks(),
		SlowBlocks:    e.ctx.SlowBlocks(),
		FoldedInstrs:  e.ctx.FoldedInstrs(),
	}
	if e.mergeMgr != nil {
		ms := e.mergeMgr.Stats()
		sm.MergedStates = e.mergeMgr.MergedAway()
		sm.MergeCandidates = ms.Candidates
		sm.MergeRejects = ms.Rejects
	}
	if e.reducer != nil {
		sm.ReduceChecks = e.reduceChecks
		sm.ReducePins = e.reducePins
	}
	e.series.Add(sm)
	if c := e.cfg.Caps.MaxMemBytes; c > 0 && mem > c {
		e.abort(fmt.Sprintf("memory cap exceeded (%s > %s)",
			metrics.FormatBytes(mem), metrics.FormatBytes(c)))
	}
}

// nodeImageBytes models the per-node program image (the paper's runs
// spend ~1 GB loading LLVM bytecode for 100 nodes before any state
// growth).
const nodeImageBytes = 64 << 10

// modelBytes computes the modeled RAM footprint: every distinct COW page
// counted once plus per-state bookkeeping overhead. This mirrors what the
// paper's RSS curves measure — the marginal cost of duplicate states.
func (e *Engine) modelBytes() int64 {
	pages := make(map[uint64]struct{}, 1024)
	var total int64
	count := func(s *vm.State) {
		total += int64(s.OverheadBytes())
		s.ForEachPage(func(id uint64, bytes int) {
			if _, ok := pages[id]; !ok {
				pages[id] = struct{}{}
				total += int64(bytes)
			}
		})
	}
	for _, s := range e.states {
		count(s)
	}
	// Merged reps live outside the state table but their machines are the
	// footprint that replaces their members' (frozen shells share nothing).
	if e.mergeMgr != nil {
		e.mergeMgr.ForEachRep(count)
	}
	total += int64(e.cfg.Topo.K()) * nodeImageBytes
	return total
}

// engineHooks adapts *Engine to vm.Hooks without exporting the methods on
// Engine itself.
type engineHooks Engine

func (h *engineHooks) OnFork(orig, sibling *vm.State) {
	e := (*Engine)(h)
	e.onLocalBranch(orig, sibling)
	e.adopt([]*vm.State{sibling})
	e.runnable = append(e.runnable, sibling)
}

func (h *engineHooks) OnSend(s *vm.State, dst uint32, payload []*expr.Expr) {
	(*Engine)(h).handleSend(s, dst, payload)
}

func (h *engineHooks) OnViolation(s *vm.State, v *vm.Violation) {
	e := (*Engine)(h)
	e.enrichWitness(s, v)
	e.violations = append(e.violations, v)
}

// enrichWitness widens a violation's witness from the violating state's
// local path condition to a full dscenario: the combined constraints of
// one consistent state per node, so the test case also pins the failure
// decisions taken on other nodes and replays deterministically.
func (e *Engine) enrichWitness(s *vm.State, v *vm.Violation) {
	members, ok := e.mapper.ScenarioFor(s)
	if !ok {
		return
	}
	var combined []*expr.Expr
	for _, m := range members {
		combined = append(combined, m.PathCond()...)
	}
	if v.Cond != nil {
		combined = append(combined, v.Cond)
	}
	model, sat, err := e.ctx.Solver.Model(combined)
	if err != nil || !sat {
		return // keep the local witness
	}
	v.Model = model
}
