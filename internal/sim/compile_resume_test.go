package sim_test

// Compiled-IR regression tests at the whole-run level: the basic-block
// fast path must be invisible in every observable output — state counts,
// dscenario fingerprints, generated test cases — both between compile-on
// and compile-off runs and across a kill-and-resume of a compile-enabled
// run. The IR (and the fast path's block counters) is derived from the
// program at load time, never serialized, so a resumed run rebuilds it
// from the snapshot alone and the snap format is unchanged.

import (
	"os"
	"path/filepath"
	"testing"

	"sde/internal/core"
	"sde/internal/sim"
	"sde/internal/snap"
)

func withoutCompiledIR(cfg sim.Config) sim.Config {
	cfg.DisableCompiledIR = true
	return cfg
}

// TestCompiledIROnOffEquivalence: the fast path (on by default) must not
// change any observable run output versus pure interpretation, for every
// state-mapping algorithm.
func TestCompiledIROnOffEquivalence(t *testing.T) {
	for _, algo := range allAlgorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			on := runQoptCfg(t, collectConfig(t, algo))
			off := runQoptCfg(t, withoutCompiledIR(collectConfig(t, algo)))
			if on.VM.FastBlocks == 0 {
				t.Error("compiled run executed no fast blocks; the fast path never engaged")
			}
			if off.VM.FastBlocks != 0 || off.VM.SlowBlocks != 0 || off.VM.FoldedInstrs != 0 {
				t.Errorf("compile-off run recorded block counters: %+v", off.VM)
			}
			t.Logf("fast=%d slow=%d folded=%d (%.0f%% fast)",
				on.VM.FastBlocks, on.VM.SlowBlocks, on.VM.FoldedInstrs, 100*on.VM.FastRate())
			compareRuns(t, on, off)
		})
	}
}

// TestCompiledIRKillAndResume interrupts a compile-enabled checkpointed
// run, resumes it, and requires the result to be indistinguishable from
// an uninterrupted compile-off run — resume correctness and fast-path
// transparency at once, proving the rebuilt (never serialized) IR does
// not leak into outputs.
func TestCompiledIRKillAndResume(t *testing.T) {
	ref := runQoptCfg(t, withoutCompiledIR(collectConfig(t, core.SDSAlgorithm)))

	dir := t.TempDir()
	cfg := collectConfig(t, core.SDSAlgorithm)
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 8
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, snap.CheckpointFile)
	for eng.Step() {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatal("run finished before writing any checkpoint; lower CheckpointEvery")
	}

	data, err := snap.LoadBytes(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.ResumeEngine(cfg, data)
	if err != nil {
		t.Fatalf("ResumeEngine: %v", err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if !res.Resumed {
		t.Error("resumed result does not report Resumed")
	}
	if res.VM.FastBlocks == 0 {
		t.Error("resumed compile-on run executed no fast blocks")
	}
	compareRuns(t, res, ref)
}
