package sim

// Engine-side symmetry and partial-order reduction (tentpole of
// internal/reduce): the automorphism-group construction at engine build
// time, the failure-decision consultation that prunes symmetric branches,
// and the independence check that lets merged representatives commute past
// foreign same-time activations.
//
// Everything here is derived state: the group is recomputed from the
// topology, the seen-set starts empty on every (re)start, and the snapshot
// format is untouched. A resumed run prunes less than an uninterrupted one
// (the pre-resume registrations are gone) but never differently in outcome:
// pruning only ever pins a decision whose twin subtree is explored, so the
// violation set and the per-orbit-representative test cases are preserved —
// NOT bit-identity, which is why -reduce sits after -merge in triage order.

import (
	"fmt"

	"sde/internal/core"
	reducepkg "sde/internal/reduce"
	"sde/internal/vm"
)

// ReduceSymmetry declares the per-node asymmetries of a scenario so the
// symmetry layer can be used with node-aware programs. Without a
// declaration, reduction applies the topology's automorphism group
// automatically only when the program is node-uniform (never reads its
// node id and has no per-node initial memory); any other program gets the
// trivial group unless the caller vouches for its symmetry here.
type ReduceSymmetry struct {
	// Labels assigns every node an opaque role label (length K); only
	// automorphisms mapping like-labeled nodes onto each other survive.
	// This is how "node 12 is the sink" is declared: label the sink
	// distinctly and the group shrinks to the sink's stabilizer.
	Labels []uint64

	// NextHops declares a static routing function (next hop per node,
	// -1 = none); only automorphisms commuting with it survive. A
	// staircase route honestly trivializes a grid's symmetry group.
	NextHops []int
}

// buildReducer constructs the engine's reduction layer from immutable
// configuration. The group policy is conservative: a declared Symmetry is
// a caller promise and is honored (after stabilizing by its labels and
// routing); otherwise the full automorphism group applies only to
// node-uniform programs, and everything else gets the trivial group —
// reduction then prunes nothing but the partial-order layer still works.
func buildReducer(cfg *Config) *reducepkg.Reducer {
	group := reducepkg.Trivial(cfg.Topo.K())
	switch {
	case cfg.Symmetry != nil:
		g := reducepkg.Automorphisms(cfg.Topo)
		if cfg.Symmetry.Labels != nil {
			g = g.Stabilize(cfg.Symmetry.Labels)
		}
		if cfg.Symmetry.NextHops != nil {
			g = g.StabilizeRouting(cfg.Symmetry.NextHops)
		}
		group = g
	case !cfg.Prog.UsesNodeID() && cfg.NodeInit == nil:
		group = reducepkg.Automorphisms(cfg.Topo)
	}
	var decisions []reducepkg.Decision
	addAll := func(kind int, set map[int]bool) {
		for node, on := range set {
			if on {
				decisions = append(decisions, reducepkg.Decision{
					Kind: kind,
					Node: node,
					Name: reducepkg.DecisionName(kind, node),
				})
			}
		}
	}
	addAll(reducepkg.KindDrop, cfg.Failures.DropFirst)
	addAll(reducepkg.KindDup, cfg.Failures.DuplicateFirst)
	addAll(reducepkg.KindReboot, cfg.Failures.RebootOnFirst)
	return reducepkg.NewReducer(group, decisions, cfg.Pin)
}

// reduceContext assembles the decided failure-decision context the
// symmetry layer's pruning rule needs: a sub-assignment every completion
// of the lineage's subtree extends. For COB that is the union of the
// state's dscenario members' decided failure literals — the members share
// one path condition, so the union is exactly the lineage's decisions so
// far across all nodes.
func (e *Engine) reduceContext(s *vm.State) map[string]uint64 {
	alpha := make(map[string]uint64)
	if members, ok := e.mapper.ScenarioFor(s); ok {
		for _, m := range members {
			e.reducer.CollectDecided(alpha, m.PathCond())
		}
	} else {
		e.reducer.CollectDecided(alpha, s.PathCond())
	}
	return alpha
}

// decideFailure resolves one armed failure decision for state s. A shard
// pin (Config.Pin) always wins and is registered with the symmetry layer
// so later consultations prune against its subtree too. Otherwise, for
// COB runs with reduction on, the reducer may pin the decision instead of
// forking when the pruned side's canonical form is already being explored
// by a symmetric twin; the pin constraint is added to the path condition
// so dscenario fingerprints and test cases stay complete.
//
// The symmetry consultation is COB-only by design: its soundness argument
// needs decided contexts that grow along each lineage, which COB's shared
// per-dscenario path condition provides. COW and SDS states carry only
// their own node's decisions, so reduction contributes the partial-order
// layer there instead (see porCanCommute).
func (e *Engine) decideFailure(s *vm.State, name string) (uint64, bool) {
	useSym := e.reducer != nil && e.cfg.Algorithm == core.COBAlgorithm
	if val, pinned := e.pinDecision(s, name); pinned {
		if useSym {
			e.reducer.RegisterPinned(e.reduceContext(s), name, val)
		}
		return val, true
	}
	if !useSym {
		return 0, false
	}
	e.reduceChecks++
	val, pruned := e.reducer.Decide(e.reduceContext(s), name)
	if !pruned {
		return 0, false
	}
	e.reducePins++
	v := e.ctx.Exprs.Var(name, 1)
	if val == 0 {
		s.AddConstraint(e.ctx.Exprs.Not(v))
	} else {
		s.AddConstraint(v)
	}
	return val, true
}

// eventFn returns the handler function index a pending event will run:
// receptions dispatch to the configured receive handler, boot and timer
// events carry their own function index.
func (e *Engine) eventFn(ev *vm.Event) int {
	if ev.Kind == vm.EventRecv {
		return e.recvFn
	}
	return ev.Fn
}

// porCanCommute is the partial-order relaxation of the merge-ordering
// gate: merged representative rep, due now, may execute through its
// shared event even though foreign state other (same timestamp, id inside
// the member span) would, unmerged, have run between the members — when
// the two activations are independent:
//
//   - rep's pending handler is Pure (no sends, branches, symbolic inputs,
//     assertions, timers, or trace output, transitively through calls):
//     it touches only rep's own registers and memory, so no fork, solver
//     query, violation, or event it causes can interleave differently;
//   - other's pending handler cannot deliver a packet to rep's node: it
//     is sendless (transitively), or rep's node is not a radio neighbour
//     of other's node.
//
// Under these conditions the two activations commute — running rep's
// event once for all members before other is observably identical to the
// unmerged interleaving — so the rep stays merged instead of splitting.
// COB is excluded: its dscenario-wide forking makes any activation
// ordering observable through the mapper.
func (e *Engine) porCanCommute(rep, other *vm.State) bool {
	if e.porCls == nil || e.cfg.Algorithm == core.COBAlgorithm {
		return false
	}
	ev, ok := rep.PeekEvent()
	if !ok || !e.porCls.Pure(e.eventFn(ev)) {
		return false
	}
	oev, ok := other.PeekEvent()
	if !ok {
		return false
	}
	if !e.porCls.MaySend(e.eventFn(oev)) {
		return true
	}
	for _, n := range e.cfg.Topo.Neighbors(other.NodeID()) {
		if n == rep.NodeID() {
			return false
		}
	}
	return true
}

// validateSymmetry rejects malformed symmetry declarations at engine
// construction, before any exploration work happens.
func validateSymmetry(cfg *Config) error {
	if cfg.Symmetry == nil {
		return nil
	}
	k := cfg.Topo.K()
	if ls := cfg.Symmetry.Labels; ls != nil && len(ls) != k {
		return fmt.Errorf("sim: Symmetry.Labels has %d entries, topology has %d nodes", len(ls), k)
	}
	if hs := cfg.Symmetry.NextHops; hs != nil && len(hs) != k {
		return fmt.Errorf("sim: Symmetry.NextHops has %d entries, topology has %d nodes", len(hs), k)
	}
	return nil
}
