// Engine checkpoint/resume: Snapshot flattens the full exploration
// frontier between Steps; ResumeEngine rebuilds a live engine from a
// decoded snapshot so the resumed run is bit-identical to an
// uninterrupted one (same state ids, same mapper structure, same future
// forks). Solver state is deliberately absent from snapshots — each
// restored state's session is re-warmed from its path condition.
package sim

import (
	"fmt"
	"time"

	"sde/internal/core"
	mergepkg "sde/internal/merge"
	"sde/internal/metrics"
	"sde/internal/snap"
	"sde/internal/vm"
)

// Snapshot flattens the engine's current frontier. It must be called
// between Steps: every state is then at an event boundary (idle, halted,
// or dead), the only point where a state image is well-defined.
func (e *Engine) Snapshot() (*snap.Snapshot, error) {
	if len(e.runnable) != 0 {
		return nil, fmt.Errorf("sim: snapshot mid-event (%d runnable states)", len(e.runnable))
	}
	pt := vm.NewPageTable()
	images := make([]vm.StateImage, 0, len(e.states))
	for _, s := range e.states {
		if s.Status() == vm.StatusRunning {
			return nil, fmt.Errorf("sim: snapshot with running state %d", s.ID())
		}
		images = append(images, s.Image(pt))
	}
	mapper, err := core.SnapshotMapper[*vm.State](e.mapper)
	if err != nil {
		return nil, err
	}
	// The merged frontier serializes alongside the state table: reps as
	// full machines (their pages interned into the same table), members by
	// the id of their frozen shell in States.
	var merged []snap.MergedRep
	if e.mergeMgr != nil {
		for _, re := range e.mergeMgr.Export() {
			mr := snap.MergedRep{Rep: re.Rep.Image(pt)}
			for _, me := range re.Members {
				mm := snap.MergedMember{
					ID:        me.St.ID(),
					StepsBase: me.StepsBase,
					Carried:   me.Carried,
				}
				for _, p := range me.Subs {
					mm.Subs = append(mm.Subs, snap.SubPairImage{Key: p.Key, Val: p.Val})
				}
				mr.Members = append(mr.Members, mm)
			}
			merged = append(merged, mr)
		}
	}
	return &snap.Snapshot{
		Algorithm:    e.cfg.Algorithm,
		K:            e.cfg.Topo.K(),
		Topology:     e.cfg.Topo.Name(),
		Clock:        e.clock,
		Events:       e.events,
		PeakStates:   e.peakStates,
		PeakMem:      e.peakMem,
		PriorWall:    e.priorWall + time.Since(e.started),
		NextStateID:  e.ctx.StateIDSeq(),
		Instructions: e.ctx.Instructions(),
		Forks:        e.ctx.Forks(),
		States:       images,
		Pages:        pt.Pages(),
		Mapper:       mapper,
		Samples:      append([]metrics.Sample(nil), e.series.Samples()...),
		Violations:   append([]*vm.Violation(nil), e.violations...),
		Merged:       merged,
	}, nil
}

// writeCheckpoint snapshots the frontier and writes it durably into
// cfg.CheckpointDir, updating the checkpoint watermark on success.
func (e *Engine) writeCheckpoint() error {
	sp, err := e.Snapshot()
	if err != nil {
		return err
	}
	if err := snap.Save(e.cfg.CheckpointDir, sp, e.ctx.Exprs); err != nil {
		return err
	}
	e.lastCkpt = e.events
	return nil
}

// ResumeEngine rebuilds an engine from an encoded checkpoint. The config
// must describe the same scenario (program, topology, algorithm, failure
// plan) as the interrupted run; caps, checkpoint settings, and solver
// tuning may differ. Decoding interns the snapshot's expressions into a
// fresh builder whose variable ids match the interrupted run's, so every
// hash, fingerprint, and future canonicalisation is reproduced exactly.
func ResumeEngine(cfg Config, data []byte) (*Engine, error) {
	return resumeSnapshot(cfg, data, 0, 1)
}

// ResumeEngineSlice rebuilds an engine from slice seg of a suspended
// frontier partitioned `of` ways — the resume half of depth-horizon
// continuation sharding. The snapshot is decoded whole (interning every
// variable, so ids stay deterministic across slices) and then cut along
// dscenario rows: slice seg keeps the COB dscenarios whose creation-order
// index i satisfies i % of == seg, plus exactly the states they
// reference. COB's invariant that every state belongs to exactly one
// dscenario makes the slices disjoint; their union is the whole frontier.
// COW and SDS frontiers are not sliceable (states share buckets), so for
// them only of == 1 is accepted. Slice 0 is the carrier: it keeps the
// snapshot's accumulated violations, samples, and peak/wall telemetry,
// which the other slices zero so sharded assembly sums each exactly once.
func ResumeEngineSlice(cfg Config, data []byte, seg, of int) (*Engine, error) {
	if of < 1 || seg < 0 || seg >= of {
		return nil, fmt.Errorf("sim: slice %d/%d out of range", seg, of)
	}
	return resumeSnapshot(cfg, data, seg, of)
}

func resumeSnapshot(cfg Config, data []byte, seg, of int) (*Engine, error) {
	e, err := newEngineShell(cfg)
	if err != nil {
		return nil, err
	}
	cfg = e.cfg // with defaults applied
	sp, err := snap.Decode(data, e.ctx.Exprs)
	if err != nil {
		return nil, err
	}
	if sp.Algorithm != cfg.Algorithm {
		return nil, fmt.Errorf("sim: checkpoint is a %v run, config says %v", sp.Algorithm, cfg.Algorithm)
	}
	if sp.Topology != cfg.Topo.Name() || sp.K != cfg.Topo.K() {
		return nil, fmt.Errorf("sim: checkpoint topology %s (k=%d) does not match config %s (k=%d)",
			sp.Topology, sp.K, cfg.Topo.Name(), cfg.Topo.K())
	}
	if of > 1 {
		if err := sliceSnapshot(sp, seg, of); err != nil {
			return nil, err
		}
	}
	// Counters first: restored sessions and future forks must draw ids
	// after every id the snapshot already handed out.
	e.ctx.RestoreCounters(sp.NextStateID, sp.Instructions, sp.Forks)
	// Reps restore in the same call as the frontier: page interning is
	// per-call, so a rep re-shares the pages its members' shells reference.
	images := sp.States
	if len(sp.Merged) > 0 {
		images = make([]vm.StateImage, 0, len(sp.States)+len(sp.Merged))
		images = append(images, sp.States...)
		for i := range sp.Merged {
			images = append(images, sp.Merged[i].Rep)
		}
	}
	restored, err := vm.RestoreStates(e.ctx, cfg.Prog, images, sp.Pages)
	if err != nil {
		return nil, err
	}
	states, reps := restored[:len(sp.States)], restored[len(sp.States):]
	byID := make(map[uint64]*vm.State, len(states))
	for _, s := range states {
		if _, dup := byID[s.ID()]; dup {
			return nil, fmt.Errorf("sim: checkpoint contains state id %d twice", s.ID())
		}
		// Ids are handed out with Add(1), so the counter equals the
		// highest id already assigned.
		if s.ID() > sp.NextStateID {
			return nil, fmt.Errorf("sim: checkpoint state id %d beyond counter %d", s.ID(), sp.NextStateID)
		}
		byID[s.ID()] = s
	}
	mapper, err := core.RestoreMapper[*vm.State](sp.Mapper, func(id uint64) (*vm.State, bool) {
		s, ok := byID[id]
		return s, ok
	})
	if err != nil {
		return nil, err
	}
	e.mapper = mapper
	e.states = states
	e.clock = sp.Clock
	e.events = sp.Events
	e.lastCkpt = sp.Events
	e.peakStates = sp.PeakStates
	if len(states) > e.peakStates {
		e.peakStates = len(states)
	}
	e.peakMem = sp.PeakMem
	e.priorWall = sp.PriorWall
	e.violations = append([]*vm.Violation(nil), sp.Violations...)
	e.series.Restore(sp.Samples)
	e.resumed = true
	for _, s := range states {
		e.scheduleHeap(s)
	}
	// Re-link the merged frontier. A resume with merging disabled adopts
	// the reps into a throwaway manager and splits them immediately — the
	// members re-enter the heap as the exact states they always were.
	if len(reps) > 0 {
		mgr := e.mergeMgr
		if mgr == nil {
			mgr = mergepkg.NewManager(e.ctx.Exprs, (*engineHooks)(e), mergepkg.Config{})
		}
		for i, rep := range reps {
			mr := &sp.Merged[i]
			members := make([]mergepkg.MemberExport, 0, len(mr.Members))
			for _, mm := range mr.Members {
				st, ok := byID[mm.ID]
				if !ok {
					return nil, fmt.Errorf("sim: checkpoint rep %d references unknown member state %d", rep.ID(), mm.ID)
				}
				subs := make([]mergepkg.SubPair, 0, len(mm.Subs))
				for _, p := range mm.Subs {
					subs = append(subs, mergepkg.SubPair{Key: p.Key, Val: p.Val})
				}
				members = append(members, mergepkg.MemberExport{
					St:        st,
					StepsBase: mm.StepsBase,
					Carried:   mm.Carried,
					Subs:      subs,
				})
			}
			if err := mgr.AdoptRestored(rep, members); err != nil {
				return nil, err
			}
			if e.mergeMgr != nil {
				e.scheduleHeap(rep)
			}
		}
		if e.mergeMgr == nil {
			mgr.SplitAllIdle()
		}
	}
	return e, nil
}

// sliceSnapshot cuts a decoded suspension snapshot down to slice seg of
// `of`, in place. Only COB frontiers are sliceable — each dscenario row
// is a disjoint set of states (every state belongs to exactly one
// dscenario), so keeping rows i with i % of == seg and exactly the
// states they reference yields a valid, independently resumable
// sub-frontier. Row order (creation order) is deterministic, so every
// consumer of the same snapshot cuts identical slices. Pages referenced
// only by dropped states stay in the table; restoring ignores them.
func sliceSnapshot(sp *snap.Snapshot, seg, of int) error {
	if len(sp.Merged) > 0 {
		// Suspension splits all merged reps before the snapshot is written,
		// so a continuation payload never carries them.
		return fmt.Errorf("sim: cannot slice a snapshot with merged representatives")
	}
	if sp.Mapper == nil {
		return fmt.Errorf("sim: cannot slice a snapshot without a mapper")
	}
	if sp.Mapper.Algorithm != core.COBAlgorithm {
		return fmt.Errorf("sim: %v frontiers are not sliceable (states share grouping structure); use fanout 1",
			sp.Mapper.Algorithm)
	}
	keepRows := make([][]uint64, 0, (len(sp.Mapper.Scenarios)+of-1)/of)
	keepIDs := make(map[uint64]bool)
	for i, row := range sp.Mapper.Scenarios {
		if i%of != seg {
			continue
		}
		keepRows = append(keepRows, row)
		for _, id := range row {
			keepIDs[id] = true
		}
	}
	if len(keepRows) == 0 {
		return fmt.Errorf("sim: slice %d/%d keeps none of the %d dscenarios",
			seg, of, len(sp.Mapper.Scenarios))
	}
	sp.Mapper.Scenarios = keepRows
	kept := sp.States[:0]
	for _, img := range sp.States {
		if keepIDs[img.ID] {
			kept = append(kept, img)
		}
	}
	sp.States = kept
	if seg != 0 {
		// Slice 0 is the carrier of everything accumulated before the
		// suspension — violations, samples, wall time, peaks — so sharded
		// assembly sums each contribution exactly once.
		sp.Violations = nil
		sp.Samples = nil
		sp.PriorWall = 0
		sp.PeakStates = 0
		sp.PeakMem = 0
	}
	return nil
}
