package sim_test

// Speculative-fork pipeline regression tests at the whole-run level: the
// pipeline must be invisible in every observable output — state counts,
// dscenario fingerprints, generated test cases — both between
// speculation-on and speculation-off runs and across a kill-and-resume of
// a speculation-enabled run. Speculation state is never serialized: every
// checkpoint is taken at a resolution barrier with the pipeline drained,
// so a resumed run simply starts a fresh pool.

import (
	"os"
	"path/filepath"
	"testing"

	"sde/internal/core"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/snap"
)

// withoutSpeculation turns the speculative-fork solver pipeline off.
func withoutSpeculation(cfg sim.Config) sim.Config {
	cfg.DisableSpeculation = true
	return cfg
}

// thresholdConfig builds the symbolic-sensor threshold-alarm scenario:
// its VM-level branches on the symbolic reading are exactly the queries
// the speculative pipeline overlaps (collect's forking comes from
// network-layer drops, which resolve at barriers and never speculate).
func thresholdConfig(t *testing.T, algo core.Algorithm) sim.Config {
	t.Helper()
	prog, err := rime.ThresholdProgram()
	if err != nil {
		t.Fatal(err)
	}
	tc := rime.ThresholdConfig{Source: 3, Threshold: 500, Interval: 10}
	return sim.Config{
		Topo:            sim.NewLine(4),
		Prog:            prog,
		Algorithm:       algo,
		Horizon:         500,
		NodeInit:        tc.NodeInit(),
		CheckInvariants: true,
	}
}

// TestSpeculationOnOffEquivalence: the pipeline (on by default) must not
// change any observable run output versus synchronous solving.
func TestSpeculationOnOffEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-run differential; CI runs it in a dedicated -count=10 step")
	}
	for _, algo := range allAlgorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			on := runQoptCfg(t, thresholdConfig(t, algo))
			off := runQoptCfg(t, withoutSpeculation(thresholdConfig(t, algo)))
			if on.Spec.Submitted == 0 {
				t.Error("speculation-on run submitted no speculations")
			}
			if off.Spec.Submitted != 0 {
				t.Errorf("speculation-off run submitted %d speculations", off.Spec.Submitted)
			}
			compareRuns(t, on, off)
		})
	}
}

// TestSpeculationKillAndResume interrupts a speculation-enabled
// checkpointed run, resumes it, and requires the result to be
// indistinguishable from an uninterrupted speculation-off run — resume
// correctness and pipeline transparency at once. The interrupt lands
// between barriers, so it also proves checkpoints only happen with the
// pipeline quiescent.
func TestSpeculationKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery sweep; CI runs it in a dedicated -count=10 step")
	}
	ref := runQoptCfg(t, withoutSpeculation(thresholdConfig(t, core.SDSAlgorithm)))

	dir := t.TempDir()
	cfg := thresholdConfig(t, core.SDSAlgorithm)
	cfg.SpecWorkers = 2
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 8
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, snap.CheckpointFile)
	for eng.Step() {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatal("run finished before writing any checkpoint; lower CheckpointEvery")
	}

	data, err := snap.LoadBytes(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.ResumeEngine(cfg, data)
	if err != nil {
		t.Fatalf("ResumeEngine: %v", err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if !res.Resumed {
		t.Error("resumed result does not report Resumed")
	}
	if res.Spec.Submitted == 0 {
		t.Error("resumed run submitted no speculations")
	}
	t.Logf("resumed speculation counters: %s", res.Spec.String())
	compareRuns(t, res, ref)
}
