package sim_test

// Query-optimizer regression tests at the whole-run level: the optimizer
// must be invisible in every observable output — state counts, dscenario
// fingerprints, generated test cases — both between optimizer-on and
// optimizer-off runs and across a kill-and-resume of an optimizer-enabled
// run. Optimizer state is derived from the path conditions, never
// serialized, so a resumed run must rebuild it (and re-encode the
// rewritten constraints, pinned in the solver package's
// TestWarmSessionEncodesRewritten) from the snapshot alone.

import (
	"os"
	"path/filepath"
	"testing"

	"sde/internal/core"
	"sde/internal/sim"
	"sde/internal/snap"
	"sde/internal/solver"
)

// withoutOptimizer disables all three query-optimizer stages.
func withoutOptimizer(cfg sim.Config) sim.Config {
	cfg.Solver.DisableSlicing = true
	cfg.Solver.DisableRewrite = true
	cfg.Solver.DisableConcretization = true
	return cfg
}

func runQoptCfg(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareRuns requires two runs to be observably identical: same final
// states, same dscenario fingerprint multiset, same test cases.
func compareRuns(t *testing.T, got, want *sim.Result) {
	t.Helper()
	if got.FinalStates != want.FinalStates {
		t.Errorf("states = %d, want %d", got.FinalStates, want.FinalStates)
	}
	if got.DScenarios.Cmp(want.DScenarios) != 0 {
		t.Errorf("dscenarios = %v, want %v", got.DScenarios, want.DScenarios)
	}
	if len(got.Violations) != len(want.Violations) {
		t.Errorf("violations = %d, want %d", len(got.Violations), len(want.Violations))
	}
	wantSet, gotSet := scenarioSet(want), scenarioSet(got)
	if len(gotSet) != len(wantSet) {
		t.Fatalf("%d distinct dscenario fingerprints, want %d", len(gotSet), len(wantSet))
	}
	for fp, n := range wantSet {
		if gotSet[fp] != n {
			t.Fatalf("dscenario fingerprint %x: count %d, want %d", fp, gotSet[fp], n)
		}
	}
	wantCases, gotCases := testCaseStrings(t, want), testCaseStrings(t, got)
	if len(gotCases) != len(wantCases) {
		t.Fatalf("%d test cases, want %d", len(gotCases), len(wantCases))
	}
	for i := range wantCases {
		if gotCases[i] != wantCases[i] {
			t.Fatalf("test case %d diverges:\n got:  %s\n want: %s", i, gotCases[i], wantCases[i])
		}
	}
}

// TestOptimizerOnOffEquivalence: the optimizer (on by default) must not
// change any observable run output versus all stages disabled.
func TestOptimizerOnOffEquivalence(t *testing.T) {
	for _, algo := range allAlgorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			on := runQoptCfg(t, collectConfig(t, algo))
			off := runQoptCfg(t, withoutOptimizer(collectConfig(t, algo)))
			compareRuns(t, on, off)
		})
	}
}

// TestOptimizerKillAndResume interrupts an optimizer-enabled checkpointed
// run, resumes it, and requires the result to be indistinguishable from
// an uninterrupted optimizer-off run — the strongest equivalence: resume
// correctness and optimizer transparency at once, proving the rebuilt
// (never serialized) optimizer state does not leak into outputs.
func TestOptimizerKillAndResume(t *testing.T) {
	ref := runQoptCfg(t, withoutOptimizer(collectConfig(t, core.SDSAlgorithm)))

	dir := t.TempDir()
	cfg := collectConfig(t, core.SDSAlgorithm)
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 8
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, snap.CheckpointFile)
	for eng.Step() {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatal("run finished before writing any checkpoint; lower CheckpointEvery")
	}

	data, err := snap.LoadBytes(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.ResumeEngine(cfg, data)
	if err != nil {
		t.Fatalf("ResumeEngine: %v", err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if !res.Resumed {
		t.Error("resumed result does not report Resumed")
	}
	if res.SolverStats.RewarmSessions == 0 {
		t.Error("resume re-warmed no solver sessions")
	}
	t.Logf("resumed optimizer counters: sliced=%d rewrites=%d concretized=%d elided=%d",
		res.SolverStats.SlicedQueries, res.SolverStats.RewriteHits,
		res.SolverStats.ConcretizedReads, res.SolverStats.GatesElided)
	compareRuns(t, res, ref)
}

// TestOptimizerStageSwitches: a config that explicitly supplies solver
// options still gets an optimizer attached, and disabling a stage zeroes
// the corresponding counters.
func TestOptimizerStageSwitches(t *testing.T) {
	cfg := collectConfig(t, core.SDSAlgorithm)
	cfg.Solver = solver.Options{DisableSlicing: true, DisableRewrite: true}
	res := runQoptCfg(t, cfg)
	if res.SolverStats.SlicedQueries != 0 {
		t.Errorf("DisableSlicing still sliced %d queries", res.SolverStats.SlicedQueries)
	}
	if res.SolverStats.RewriteHits != 0 {
		t.Errorf("DisableRewrite still rewrote %d constraints", res.SolverStats.RewriteHits)
	}
}
