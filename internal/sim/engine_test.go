package sim

import (
	"strings"
	"testing"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/vm"
)

func buildProg(t *testing.T, f func(b *isa.Builder)) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()
	f(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog
}

// The ping test program: every node stores a marker at boot; a node whose
// addrSendTo config is set unicasts one 2-word packet there; receptions
// are counted.
const (
	addrBootMark  = 0x10
	addrRecvCount = 0x11
	addrLastSrc   = 0x12
	addrSendTo    = 0x20
	noDest        = 0xffffffff
)

func pingProg(t *testing.T) *isa.Program {
	return buildProg(t, func(b *isa.Builder) {
		boot := b.Func("boot")
		boot.MovI(isa.R3, 0)
		boot.MovI(isa.R1, 1)
		boot.Store(isa.R3, addrBootMark, isa.R1)
		boot.Load(isa.R4, isa.R3, addrSendTo)
		boot.EqI(isa.R5, isa.R4, noDest)
		boot.BrNZ(isa.R5, "done")
		boot.MovI(isa.R6, 0x300)
		boot.MovI(isa.R7, 0xAB)
		boot.Store(isa.R6, 0, isa.R7)
		boot.NodeID(isa.R7)
		boot.Store(isa.R6, 1, isa.R7)
		boot.Send(isa.R4, isa.R6, 2)
		boot.Label("done")
		boot.Ret()

		recv := b.Func("on_recv")
		recv.MovI(isa.R3, 0)
		recv.Load(isa.R4, isa.R3, addrRecvCount)
		recv.AddI(isa.R4, isa.R4, 1)
		recv.Store(isa.R3, addrRecvCount, isa.R4)
		recv.Store(isa.R3, addrLastSrc, isa.R0)
		recv.Ret()
	})
}

// sendToInit configures addrSendTo per node.
func sendToInit(dest map[int]uint32) func(int, *vm.State, *expr.Builder) {
	return func(node int, s *vm.State, eb *expr.Builder) {
		d := uint64(noDest)
		if v, ok := dest[node]; ok {
			d = uint64(v)
		}
		s.StoreWord(addrSendTo, eb.Const(d, vm.WordBits))
	}
}

func statesByNode(res *Result, k int) [][]*vm.State {
	out := make([][]*vm.State, k)
	res.Mapper.ForEachState(func(s *vm.State) {
		out[s.NodeID()] = append(out[s.NodeID()], s)
	})
	return out
}

func TestEngineBootAndUnicast(t *testing.T) {
	eng, err := NewEngine(Config{
		Topo:            NewLine(3),
		Prog:            pingProg(t),
		Algorithm:       core.SDSAlgorithm,
		Horizon:         100,
		NodeInit:        sendToInit(map[int]uint32{0: 1}),
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Aborted {
		t.Fatalf("aborted: %s", res.AbortReason)
	}
	if res.FinalStates != 3 {
		t.Fatalf("states = %d, want 3 (no symbolic input anywhere)", res.FinalStates)
	}
	byNode := statesByNode(res, 3)
	for n := 0; n < 3; n++ {
		if got := byNode[n][0].LoadWord(addrBootMark).ConstVal(); got != 1 {
			t.Errorf("node %d boot marker = %d", n, got)
		}
	}
	n1 := byNode[1][0]
	if got := n1.LoadWord(addrRecvCount).ConstVal(); got != 1 {
		t.Errorf("node 1 recv count = %d, want 1", got)
	}
	if got := n1.LoadWord(addrLastSrc).ConstVal(); got != 0 {
		t.Errorf("node 1 last src = %d, want 0", got)
	}
	if got := byNode[2][0].LoadWord(addrRecvCount).ConstVal(); got != 0 {
		t.Errorf("node 2 recv count = %d, want 0", got)
	}
	if h := byNode[0][0].History(); len(h) != 1 || h[0].Dir != vm.DirSent || h[0].Peer != 1 {
		t.Errorf("node 0 history = %+v", h)
	}
	if h := n1.History(); len(h) != 1 || h[0].Dir != vm.DirRecv || h[0].Peer != 0 {
		t.Errorf("node 1 history = %+v", h)
	}
}

func TestEngineBroadcast(t *testing.T) {
	// The middle node of a 3-line broadcasts: both ends receive.
	prog := buildProg(t, func(b *isa.Builder) {
		boot := b.Func("boot")
		boot.MovI(isa.R3, 0)
		boot.Load(isa.R4, isa.R3, addrSendTo)
		boot.EqI(isa.R5, isa.R4, noDest)
		boot.BrNZ(isa.R5, "done")
		boot.MovI(isa.R6, 0x300)
		boot.MovI(isa.R7, 0x42)
		boot.Store(isa.R6, 0, isa.R7)
		boot.MovI(isa.R4, isa.BroadcastAddr)
		boot.Send(isa.R4, isa.R6, 1)
		boot.Label("done")
		boot.Ret()
		recv := b.Func("on_recv")
		recv.MovI(isa.R3, 0)
		recv.Load(isa.R4, isa.R3, addrRecvCount)
		recv.AddI(isa.R4, isa.R4, 1)
		recv.Store(isa.R3, addrRecvCount, isa.R4)
		recv.Load(isa.R5, isa.R1, 0)
		recv.EqI(isa.R6, isa.R5, 0x42)
		recv.Assert(isa.R6, "payload corrupted")
		recv.Ret()
	})
	eng, err := NewEngine(Config{
		Topo:      NewLine(3),
		Prog:      prog,
		Algorithm: core.COWAlgorithm,
		Horizon:   100,
		NodeInit:  sendToInit(map[int]uint32{1: 0}), // any non-noDest value triggers broadcast
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %+v", res.Violations)
	}
	byNode := statesByNode(res, 3)
	for _, n := range []int{0, 2} {
		if got := byNode[n][0].LoadWord(addrRecvCount).ConstVal(); got != 1 {
			t.Errorf("node %d recv count = %d, want 1", n, got)
		}
	}
	// The sender's history holds one send per neighbour (broadcast =
	// series of unicasts, paper footnote 1).
	if h := byNode[1][0].History(); len(h) != 2 {
		t.Errorf("broadcaster history = %+v, want 2 sends", h)
	}
}

func TestEngineNonNeighborSendDies(t *testing.T) {
	eng, err := NewEngine(Config{
		Topo:      NewLine(3),
		Prog:      pingProg(t),
		Algorithm: core.SDSAlgorithm,
		Horizon:   100,
		NodeInit:  sendToInit(map[int]uint32{0: 2}), // 2 is out of radio range of 0
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The sending state dies; the engine surfaces it as a violation.
	found := false
	for _, v := range res.Violations {
		if v.Node == 0 && strings.Contains(v.Msg, "cannot reach") {
			found = true
		}
	}
	if !found {
		t.Errorf("no violation for out-of-range unicast: %+v", res.Violations)
	}
}

func TestEngineTimerChain(t *testing.T) {
	// A counter timer that re-arms 5 times, 10 ticks apart.
	prog := buildProg(t, func(b *isa.Builder) {
		boot := b.Func("boot")
		boot.MovI(isa.R1, 10)
		boot.Timer("tick", isa.R1, isa.R0)
		boot.Ret()
		tick := b.Func("tick")
		tick.MovI(isa.R3, 0)
		tick.Load(isa.R4, isa.R3, 0x50)
		tick.AddI(isa.R4, isa.R4, 1)
		tick.Store(isa.R3, 0x50, isa.R4)
		tick.UltI(isa.R5, isa.R4, 5)
		tick.BrZ(isa.R5, "stop")
		tick.MovI(isa.R1, 10)
		tick.Timer("tick", isa.R1, isa.R0)
		tick.Label("stop")
		tick.Ret()
	})
	eng, err := NewEngine(Config{
		Topo:      NewLine(1),
		Prog:      prog,
		Algorithm: core.COBAlgorithm,
		Horizon:   1000,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byNode := statesByNode(res, 1)
	if got := byNode[0][0].LoadWord(0x50).ConstVal(); got != 5 {
		t.Errorf("tick counter = %d, want 5", got)
	}
	if res.VirtualTime != 50 {
		t.Errorf("final virtual time = %d, want 50", res.VirtualTime)
	}
}

func TestEngineHorizonCutsOff(t *testing.T) {
	prog := buildProg(t, func(b *isa.Builder) {
		boot := b.Func("boot")
		boot.MovI(isa.R1, 10)
		boot.Timer("tick", isa.R1, isa.R0)
		boot.Ret()
		tick := b.Func("tick")
		tick.MovI(isa.R3, 0)
		tick.Load(isa.R4, isa.R3, 0x50)
		tick.AddI(isa.R4, isa.R4, 1)
		tick.Store(isa.R3, 0x50, isa.R4)
		tick.MovI(isa.R1, 10)
		tick.Timer("tick", isa.R1, isa.R0) // re-arms forever
		tick.Ret()
	})
	eng, err := NewEngine(Config{
		Topo:      NewLine(1),
		Prog:      prog,
		Algorithm: core.SDSAlgorithm,
		Horizon:   35,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byNode := statesByNode(res, 1)
	// Ticks at 10, 20, 30; the tick at 40 is beyond the horizon.
	if got := byNode[0][0].LoadWord(0x50).ConstVal(); got != 3 {
		t.Errorf("tick counter = %d, want 3", got)
	}
	if res.Aborted {
		t.Error("horizon cut-off must not count as an abort")
	}
}

func TestEngineDropFailureForks(t *testing.T) {
	for _, algo := range []core.Algorithm{core.COBAlgorithm, core.COWAlgorithm, core.SDSAlgorithm} {
		t.Run(algo.String(), func(t *testing.T) {
			eng, err := NewEngine(Config{
				Topo:      NewLine(2),
				Prog:      pingProg(t),
				Algorithm: algo,
				Horizon:   100,
				NodeInit:  sendToInit(map[int]uint32{0: 1}),
				Failures: FailurePlan{
					DropFirst: NodeSet([]int{1}),
				},
				CheckInvariants: true,
			})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			byNode := statesByNode(res, 2)
			if len(byNode[1]) != 2 {
				t.Fatalf("node 1 states = %d, want 2 (received/dropped)", len(byNode[1]))
			}
			var counts []uint64
			for _, s := range byNode[1] {
				counts = append(counts, s.LoadWord(addrRecvCount).ConstVal())
			}
			if !(counts[0] == 0 && counts[1] == 1 || counts[0] == 1 && counts[1] == 0) {
				t.Errorf("recv counts = %v, want one 0 and one 1", counts)
			}
			// Both states carry the drop decision in their path condition.
			for _, s := range byNode[1] {
				if len(s.PathCond()) != 1 {
					t.Errorf("state %d path condition size = %d, want 1",
						s.ID(), len(s.PathCond()))
				}
			}
			// The represented dscenarios: drop and no-drop.
			if got := res.DScenarios.Int64(); got != 2 {
				t.Errorf("dscenarios = %d, want 2", got)
			}
			// COB forks node 0's state as well; COW/SDS must not.
			wantNode0 := 1
			if algo == core.COBAlgorithm {
				wantNode0 = 2
			}
			if len(byNode[0]) != wantNode0 {
				t.Errorf("node 0 states = %d, want %d", len(byNode[0]), wantNode0)
			}
		})
	}
}

func TestEngineDuplicateFailure(t *testing.T) {
	eng, err := NewEngine(Config{
		Topo:      NewLine(2),
		Prog:      pingProg(t),
		Algorithm: core.SDSAlgorithm,
		Horizon:   100,
		NodeInit:  sendToInit(map[int]uint32{0: 1}),
		Failures: FailurePlan{
			DuplicateFirst: NodeSet([]int{1}),
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byNode := statesByNode(res, 2)
	if len(byNode[1]) != 2 {
		t.Fatalf("node 1 states = %d, want 2", len(byNode[1]))
	}
	var counts []uint64
	for _, s := range byNode[1] {
		counts = append(counts, s.LoadWord(addrRecvCount).ConstVal())
	}
	if !(counts[0] == 1 && counts[1] == 2 || counts[0] == 2 && counts[1] == 1) {
		t.Errorf("recv counts = %v, want {1, 2}", counts)
	}
}

func TestEngineRebootFailure(t *testing.T) {
	eng, err := NewEngine(Config{
		Topo:      NewLine(2),
		Prog:      pingProg(t),
		Algorithm: core.SDSAlgorithm,
		Horizon:   100,
		NodeInit:  sendToInit(map[int]uint32{0: 1}),
		Failures: FailurePlan{
			RebootOnFirst: NodeSet([]int{1}),
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	byNode := statesByNode(res, 2)
	if len(byNode[1]) != 2 {
		t.Fatalf("node 1 states = %d, want 2", len(byNode[1]))
	}
	// One state processed the packet normally; the rebooted one lost its
	// volatile memory (recv count 0) but re-ran boot (marker restored 1).
	seenReboot := false
	for _, s := range byNode[1] {
		if s.LoadWord(addrRecvCount).ConstVal() == 0 {
			seenReboot = true
			if got := s.LoadWord(addrBootMark).ConstVal(); got != 1 {
				t.Errorf("rebooted state boot marker = %d, want 1 (re-booted)", got)
			}
			// Volatile config is gone after reboot (NodeInit is not a ROM).
			if got := s.LoadWord(addrSendTo).ConstVal(); got != 0 {
				t.Errorf("rebooted state kept config word %#x", got)
			}
		}
	}
	if !seenReboot {
		t.Error("no rebooted state found")
	}
}

func TestEngineStateCapAborts(t *testing.T) {
	// A program that forks unboundedly on fresh symbolic input.
	prog := buildProg(t, func(b *isa.Builder) {
		boot := b.Func("boot")
		boot.MovI(isa.R1, 1)
		boot.Timer("tick", isa.R1, isa.R0)
		boot.Ret()
		tick := b.Func("tick")
		tick.Sym(isa.R4, "coin", 1)
		tick.BrNZ(isa.R4, "join")
		tick.Label("join")
		tick.MovI(isa.R1, 1)
		tick.Timer("tick", isa.R1, isa.R0)
		tick.Ret()
	})
	eng, err := NewEngine(Config{
		Topo:      NewLine(2),
		Prog:      prog,
		Algorithm: core.COBAlgorithm,
		Horizon:   1 << 40,
		Caps:      Caps{MaxStates: 100},
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Aborted {
		t.Fatal("run with exploding state space did not hit the state cap")
	}
	if !strings.Contains(res.AbortReason, "state cap") {
		t.Errorf("abort reason = %q", res.AbortReason)
	}
}

func TestEngineMetricsSampling(t *testing.T) {
	eng, err := NewEngine(Config{
		Topo:        NewLine(2),
		Prog:        pingProg(t),
		Algorithm:   core.SDSAlgorithm,
		Horizon:     100,
		NodeInit:    sendToInit(map[int]uint32{0: 1}),
		SampleEvery: 1,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Series.Len() < 2 {
		t.Fatalf("samples = %d, want >= 2", res.Series.Len())
	}
	last, _ := res.Series.Last()
	if last.States != res.FinalStates {
		t.Errorf("final sample states = %d, result = %d", last.States, res.FinalStates)
	}
	if last.MemBytes <= 0 {
		t.Error("modeled memory is non-positive")
	}
	if res.PeakMem < last.MemBytes {
		t.Error("peak memory below final memory")
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() *Result {
		eng, err := NewEngine(Config{
			Topo:      NewLine(3),
			Prog:      pingProg(t),
			Algorithm: core.COWAlgorithm,
			Horizon:   100,
			NodeInit:  sendToInit(map[int]uint32{0: 1, 2: 1}),
			Failures:  FailurePlan{DropFirst: NodeSet([]int{1})},
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.FinalStates != b.FinalStates || a.Events != b.Events ||
		a.Instructions != b.Instructions || a.DScenarios.Cmp(b.DScenarios) != 0 {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
	fpa := scenarioFingerprints(a)
	fpb := scenarioFingerprints(b)
	if len(fpa) != len(fpb) {
		t.Fatalf("dscenario sets differ in size: %d vs %d", len(fpa), len(fpb))
	}
	for fp := range fpa {
		if !fpb[fp] {
			t.Fatal("dscenario fingerprints differ between identical runs")
		}
	}
}

// scenarioFingerprints explodes the run's dscenarios into a canonical
// fingerprint set.
func scenarioFingerprints(res *Result) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, sc := range res.Mapper.Explode(0) {
		h := uint64(14695981039346656037)
		for _, s := range sc {
			h ^= s.Fingerprint()
			h *= 1099511628211
		}
		out[h] = true
	}
	return out
}
