package sim_test

// Symmetry/partial-order reduction regression tests at the whole-run
// level. Reduction (off by default) is violation-set-preserving but NOT
// bit-identical: pruning orbit-duplicate branches shrinks state counts
// and dscenario fingerprint populations by design, and pruned branches'
// violations come back as synthesized orbit twins. The oracle here is
// therefore set equality of (node, time, msg) violation triples — plus
// full bit-identity for the algorithms where the symmetry layer is
// inert (COW, SDS) and reduction must be completely invisible.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/sim"
	"sde/internal/snap"
	"sde/internal/vm"
)

const (
	floodAddrRole = 0x40  // nonzero: this node broadcasts after `role` ticks
	floodAddrSeen = 0x20  // receptions counted so far
	floodTxBuf    = 0x100 // scratch packet buffer
)

// floodProgram builds the reduction test workload's node software: a
// flood with a duplicate-suppression assertion. Nodes with a nonzero
// role word originate one beacon after `role` ticks (and count it as
// their own first reception); every node relays the first beacon it
// hears, and asserts that no second beacon ever arrives. The violation
// TIME at a node depends on when its feeders' relays arrive, which in
// turn depends on which other nodes dropped their first reception — so
// the violation set varies across a drop orbit's members in a
// non-monotone way, and some (node, time) triples occur only in
// branches a reduced run prunes. Those are exactly the violations the
// engine's witness expansion must synthesize back.
func floodProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()

	boot := b.Func("boot")
	boot.MovI(isa.R3, 0)
	boot.Load(isa.R1, isa.R3, floodAddrRole)
	boot.BrZ(isa.R1, "silent")
	boot.Timer("bcast", isa.R1, isa.R0)
	boot.Label("silent")
	boot.Ret()

	bcast := b.Func("bcast")
	bcast.MovI(isa.R3, 0)
	bcast.MovI(isa.R5, 1)
	bcast.Store(isa.R3, floodAddrSeen, isa.R5) // the originator heard its own
	bcast.MovI(isa.R4, floodTxBuf)
	bcast.MovI(isa.R5, 0xF100)
	bcast.Store(isa.R4, 0, isa.R5)
	bcast.MovI(isa.R6, isa.BroadcastAddr)
	bcast.Send(isa.R6, isa.R4, 1)
	bcast.Ret()

	recv := b.Func("on_recv")
	recv.MovI(isa.R3, 0)
	recv.Load(isa.R4, isa.R3, floodAddrSeen)
	recv.AddI(isa.R4, isa.R4, 1)
	recv.Store(isa.R3, floodAddrSeen, isa.R4)
	recv.NeI(isa.R5, isa.R4, 2)
	recv.Assert(isa.R5, "flood: duplicate beacon")
	recv.EqI(isa.R6, isa.R4, 1)
	recv.BrZ(isa.R6, "norelay") // relay the first reception only
	recv.MovI(isa.R7, floodTxBuf)
	recv.MovI(isa.R8, 0xF100)
	recv.Store(isa.R7, 0, isa.R8)
	recv.MovI(isa.R9, isa.BroadcastAddr)
	recv.Send(isa.R9, isa.R7, 1)
	recv.Label("norelay")
	recv.Ret()

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// floodConfig builds the 3x3 grid configuration the reduction tests
// share: the center originates the flood at t=1 and symbolic
// first-reception drops are armed on its edge ring {1, 3, 5, 7} — a
// full orbit of the grid's dihedral group, which survives stabilization
// by the declared center label. The 16 drop assignments fall into 6
// orbits, so a COB run with reduction on must prune; the duplicate
// assert fires at times that depend on which ring nodes dropped, so the
// violation set differs across the members of each orbit.
func floodConfig(t *testing.T, algo core.Algorithm) sim.Config {
	t.Helper()
	g := sim.NewGrid(3, 3)
	const center = 4
	labels := make([]uint64, g.K())
	labels[center] = 1
	return sim.Config{
		Topo:      g,
		Prog:      floodProgram(t),
		Algorithm: algo,
		Horizon:   14,
		NodeInit: func(node int, s *vm.State, eb *expr.Builder) {
			if node == center {
				s.StoreWord(floodAddrRole, eb.Const(1, vm.WordBits))
			}
		},
		Failures:        sim.FailurePlan{DropFirst: map[int]bool{1: true, 3: true, 5: true, 7: true}},
		CheckInvariants: true,
		Symmetry:        &sim.ReduceSymmetry{Labels: labels},
	}
}

// withReduction enables the symmetry/partial-order reduction subsystem.
func withReduction(cfg sim.Config) sim.Config {
	cfg.EnableReduce = true
	return cfg
}

// violationSet projects a run's violations to the set of distinct
// (node, time, msg) triples — the reduction-invariant observable. The
// same triple can be observed on many branches (and synthesized twins
// are deduplicated against observed ones), so multiplicity is not
// preserved and a set, not a multiset, is compared.
func violationSet(res *sim.Result) map[string]bool {
	set := make(map[string]bool, len(res.Violations))
	for _, v := range res.Violations {
		set[fmt.Sprintf("%d/%d/%s", v.Node, v.Time, v.Msg)] = true
	}
	return set
}

// compareViolationSets requires two runs to report identical violation
// triple sets.
func compareViolationSets(t *testing.T, got, want *sim.Result) {
	t.Helper()
	gotSet, wantSet := violationSet(got), violationSet(want)
	for k := range wantSet {
		if !gotSet[k] {
			t.Errorf("violation %s missing", k)
		}
	}
	for k := range gotSet {
		if !wantSet[k] {
			t.Errorf("violation %s is spurious", k)
		}
	}
}

// TestReductionOnOffEquivalence: reduction must preserve the violation
// set for every mapping algorithm. For COB — the only algorithm whose
// seen-set consultation can prune — the on-run must actually pin
// decisions and explore strictly fewer states (otherwise the oracle
// proves nothing), and some of the matched violations must be
// synthesized orbit twins. For COW and SDS the symmetry layer is inert
// by design, so reduction must be bit-invisible there.
func TestReductionOnOffEquivalence(t *testing.T) {
	for _, algo := range allAlgorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			on := runQoptCfg(t, withReduction(floodConfig(t, algo)))
			off := runQoptCfg(t, floodConfig(t, algo))
			if off.Reduce.Checks != 0 || off.Reduce.Pins != 0 {
				t.Errorf("reduce-disabled run reports reduction activity: %+v", off.Reduce)
			}
			if len(off.Violations) == 0 {
				t.Fatal("workload produced no violations; the oracle proves nothing")
			}
			compareViolationSets(t, on, off)
			if algo == core.COBAlgorithm {
				if on.Reduce.Pins == 0 {
					t.Error("reduce-enabled COB run pinned nothing; workload no longer exercises pruning")
				}
				if on.FinalStates >= off.FinalStates {
					t.Errorf("reduced COB run explored %d states, unreduced %d — nothing pruned",
						on.FinalStates, off.FinalStates)
				}
				if on.Reduce.Synthesized == 0 {
					t.Error("reduced COB run synthesized no violations; witness expansion unexercised")
				}
			} else {
				// COW/SDS: the symmetry consultation is off and no merging
				// is configured, so reduction must be fully invisible.
				if on.Reduce.Pins != 0 {
					t.Errorf("%v run pinned %d decisions; symmetry pruning must be COB-only",
						algo, on.Reduce.Pins)
				}
				compareRuns(t, on, off)
			}
		})
	}
}

// TestReductionKillAndResume interrupts a reduction-enabled checkpointed
// COB run at its first checkpoint, resumes it (reduction still on), and
// requires the violation set to match an uninterrupted unreduced run.
// Reducer state is derived and never serialized — the resumed engine
// rebuilds the group and starts with an empty seen-set, so it prunes
// less than an uninterrupted reduced run would — but the violation set
// must still come out identical.
func TestReductionKillAndResume(t *testing.T) {
	ref := runQoptCfg(t, floodConfig(t, core.COBAlgorithm))

	cfg := withReduction(floodConfig(t, core.COBAlgorithm))
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 8
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(cfg.CheckpointDir, snap.CheckpointFile)
	interrupted := false
	for eng.Step() {
		if _, err := os.Stat(ckpt); err == nil {
			interrupted = true
			break
		}
	}
	if !interrupted {
		t.Fatal("run finished before the first checkpoint; shrink CheckpointEvery")
	}
	data, err := snap.LoadBytes(cfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.ResumeEngine(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Error("resumed run does not report Resumed")
	}
	compareViolationSets(t, res, ref)
}

// FuzzReductionEquivalence cross-validates reduction on/off over random
// single-broadcaster flood scenarios: random topology shape (3x3 grid
// with a center broadcaster, or a full mesh with node 0 broadcasting),
// a random armed drop set, and a random mapping algorithm. Random armed
// sets are rarely symmetric, which exercises the reducer's armed-set
// group filtering (inert decisions, partial orbits, trivial groups)
// alongside the full-orbit pruning the deterministic tests pin.
func FuzzReductionEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Add(int64(1234), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, algoPick uint8) {
		rng := rand.New(rand.NewSource(seed))
		algo := allAlgorithms[int(algoPick)%len(allAlgorithms)]

		var topo sim.Topology
		var bcaster int
		if rng.Intn(2) == 0 {
			topo = sim.NewGrid(3, 3)
			bcaster = 4
		} else {
			topo = sim.NewFullMesh(3 + rng.Intn(3)) // 3..5 nodes
			bcaster = 0
		}
		drops := map[int]bool{}
		for n := 0; n < topo.K(); n++ {
			if n != bcaster && rng.Intn(2) == 0 {
				drops[n] = true
			}
		}
		if len(drops) == 0 {
			drops[(bcaster+1)%topo.K()] = true
		}
		labels := make([]uint64, topo.K())
		labels[bcaster] = 1

		run := func(reduce bool) *sim.Result {
			cfg := sim.Config{
				Topo:      topo,
				Prog:      floodProgram(t),
				Algorithm: algo,
				Horizon:   14,
				NodeInit: func(node int, s *vm.State, eb *expr.Builder) {
					if node == bcaster {
						s.StoreWord(floodAddrRole, eb.Const(1, vm.WordBits))
					}
				},
				Failures:        sim.FailurePlan{DropFirst: drops},
				CheckInvariants: true,
				Symmetry:        &sim.ReduceSymmetry{Labels: labels},
				Caps:            sim.Caps{MaxStates: 100000},
				EnableReduce:    reduce,
			}
			eng, err := sim.NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborted {
				t.Skipf("aborted: %s", res.AbortReason)
			}
			return res
		}
		on, off := run(true), run(false)
		compareViolationSets(t, on, off)
		if algo != core.COBAlgorithm {
			compareRuns(t, on, off)
		}
	})
}

const (
	porAddrNoise = 0x31 // written on one side of the symbolic fork
	porAddrTicks = 0x32 // bumped by the pure tick handler
)

// porProgram builds the partial-order test workload: one broadcaster
// beacons at t=1; every listener forks on a fresh symbolic bit when the
// beacon arrives (two sibling states diverging at a single memory word —
// ideal merge candidates), and every node runs one-shot "tick" timers
// whose handler only bumps a counter. The tick handler is Pure and
// sendless in the effect-summary sense, so when a merged representative
// and a foreign state are both due at a tick, the two activations
// commute — the partial-order layer's exact target.
func porProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder()

	boot := b.Func("boot")
	boot.MovI(isa.R3, 0)
	boot.Load(isa.R1, isa.R3, floodAddrRole)
	boot.BrZ(isa.R1, "listener")
	boot.MovI(isa.R2, 1)
	boot.Timer("bcast", isa.R2, isa.R0)
	boot.Label("listener")
	boot.MovI(isa.R2, 5)
	boot.Timer("tick", isa.R2, isa.R0)
	boot.MovI(isa.R2, 9)
	boot.Timer("tick", isa.R2, isa.R0)
	boot.Ret()

	bcast := b.Func("bcast")
	bcast.MovI(isa.R4, floodTxBuf)
	bcast.MovI(isa.R5, 0xF100)
	bcast.Store(isa.R4, 0, isa.R5)
	bcast.MovI(isa.R6, isa.BroadcastAddr)
	bcast.Send(isa.R6, isa.R4, 1)
	bcast.Ret()

	tick := b.Func("tick")
	tick.MovI(isa.R3, 0)
	tick.Load(isa.R4, isa.R3, porAddrTicks)
	tick.AddI(isa.R4, isa.R4, 1)
	tick.Store(isa.R3, porAddrTicks, isa.R4)
	tick.Ret()

	recv := b.Func("on_recv")
	// Registers are written identically on both sides of the fork so the
	// sibling states diverge at exactly one memory word — the cheapest
	// possible merge candidate.
	recv.MovI(isa.R3, 0)
	recv.MovI(isa.R6, 1)
	recv.Sym(isa.R5, "noise", 1)
	recv.BrZ(isa.R5, "quiet")
	recv.Store(isa.R3, porAddrNoise, isa.R6)
	recv.Label("quiet")
	recv.Ret()

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestReductionPOR: for COW and SDS the symmetry consultation is off and
// reduction contributes the partial-order layer instead — merged
// representatives commuting past independent foreign activations stay
// merged where the plain merge-ordering gate would split them. The
// merge+reduce run must actually commute, and must stay observably
// identical to both a merge-only run and a plain run.
func TestReductionPOR(t *testing.T) {
	porCfg := func(algo core.Algorithm) sim.Config {
		return sim.Config{
			Topo:      sim.NewLine(3),
			Prog:      porProgram(t),
			Algorithm: algo,
			Horizon:   12,
			NodeInit: func(node int, s *vm.State, eb *expr.Builder) {
				if node == 1 {
					s.StoreWord(floodAddrRole, eb.Const(1, vm.WordBits))
				}
			},
			CheckInvariants: true,
		}
	}
	for _, algo := range []core.Algorithm{core.COWAlgorithm, core.SDSAlgorithm} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			plain := runQoptCfg(t, porCfg(algo))
			mergeOnly := runQoptCfg(t, withMerging(porCfg(algo)))
			both := runQoptCfg(t, withReduction(withMerging(porCfg(algo))))
			if both.Merge.Merges == 0 {
				t.Error("merge+reduce run merged nothing; workload no longer exercises merging")
			}
			if both.Reduce.PORCommutes == 0 {
				t.Error("merge+reduce run commuted nothing; workload no longer exercises the partial-order layer")
			}
			compareRuns(t, both, mergeOnly)
			compareRuns(t, both, plain)
		})
	}
}

// TestMergeScanBackoff: the merge layer's scan scheduler must go into
// exponential backoff on barren stretches — skipped scans are counted —
// without changing any observable output (the backoff only elides scans
// that would have found nothing).
func TestMergeScanBackoff(t *testing.T) {
	on := runQoptCfg(t, withMerging(collectConfig(t, core.SDSAlgorithm)))
	off := runQoptCfg(t, collectConfig(t, core.SDSAlgorithm))
	if on.Merge.ScansSkipped == 0 {
		t.Error("merge-enabled run skipped no scans; workload no longer exercises the backoff")
	}
	compareRuns(t, on, off)
}
