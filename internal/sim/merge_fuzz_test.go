package sim_test

// FuzzMergeEquivalence: differential fuzzing of the state-merging
// subsystem. Each input derives a random small scenario (same generator
// as the cross-algorithm sweep in random_test.go) and a mapping
// algorithm, runs it merge-on and merge-off, and requires every
// observable output to match. The fuzzer explores scheduling shapes the
// hand-written oracles cannot anticipate — asymmetric failure plans,
// routes where the pop-time gate rarely opens, topologies where siblings
// diverge at many sites and the cost model must refuse to fuse.

import (
	"math/rand"
	"testing"

	"sde/internal/rime"
	"sde/internal/sim"
)

func FuzzMergeEquivalence(f *testing.F) {
	f.Add(int64(0), uint8(2))
	f.Add(int64(7), uint8(0))
	f.Add(int64(13), uint8(1))
	f.Add(int64(42), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, algoPick uint8) {
		algo := allAlgorithms[int(algoPick)%len(allAlgorithms)]
		rs := genScenario(rand.New(rand.NewSource(seed)))

		prog, err := rime.CollectProgram()
		if err != nil {
			t.Fatal(err)
		}
		cc := rime.CollectConfig{
			Source: rs.route[0], Sink: rs.route[len(rs.route)-1],
			Route: rs.route, Interval: 10, Packets: rs.packets,
		}
		nodeInit, err := cc.NodeInit(rs.topo.K())
		if err != nil {
			t.Fatal(err)
		}
		run := func(merge bool) *sim.Result {
			eng, err := sim.NewEngine(sim.Config{
				Topo:            rs.topo,
				Prog:            prog,
				Algorithm:       algo,
				Horizon:         uint64(10*rs.packets) + 100,
				NodeInit:        nodeInit,
				Failures:        rs.failures,
				CheckInvariants: true,
				EnableMerge:     merge,
				Caps:            sim.Caps{MaxStates: 100000},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("%s / %v merge=%v: %v", rs.desc, algo, merge, err)
			}
			if res.Aborted {
				t.Skipf("%s / %v aborted: %s", rs.desc, algo, res.AbortReason)
			}
			return res
		}
		on := run(true)
		off := run(false)
		compareRuns(t, on, off)
		if off.Merge.Merges != 0 {
			t.Errorf("merge-off run reports %d merges", off.Merge.Merges)
		}
	})
}
