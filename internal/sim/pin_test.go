package sim_test

import (
	"testing"

	"sde/internal/core"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/vm"
)

// pinScenario builds a 3-node line collect with a drop armed at node 1.
func pinScenario(t *testing.T, pin map[string]uint64) *sim.Result {
	t.Helper()
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := rime.CollectConfig{Source: 2, Sink: 0, Route: []int{2, 1, 0}, Interval: 10, Packets: 2}
	nodeInit, err := cfg.NodeInit(3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Config{
		Topo:            sim.NewLine(3),
		Prog:            prog,
		Algorithm:       core.SDSAlgorithm,
		Horizon:         200,
		NodeInit:        nodeInit,
		Failures:        sim.FailurePlan{DropFirst: sim.NodeSet([]int{1})},
		Pin:             pin,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPinSuppressesFork(t *testing.T) {
	for _, val := range []uint64{0, 1} {
		res := pinScenario(t, map[string]uint64{"drop_n1_r0": val})
		// No fork: exactly one state per node.
		if res.FinalStates != 3 {
			t.Fatalf("pin=%d: states = %d, want 3", val, res.FinalStates)
		}
		if res.DScenarios.Int64() != 1 {
			t.Fatalf("pin=%d: dscenarios = %v, want 1", val, res.DScenarios)
		}
		var n1, sink *vm.State
		res.Mapper.ForEachState(func(s *vm.State) {
			switch s.NodeID() {
			case 0:
				sink = s
			case 1:
				n1 = s
			}
		})
		// The pinned constraint is on the path condition so test cases
		// stay complete.
		if len(n1.PathCond()) != 1 {
			t.Fatalf("pin=%d: node 1 path condition = %d constraints, want 1",
				val, len(n1.PathCond()))
		}
		// Behaviour follows the pinned side: with the drop (0), packet 1
		// is lost and the sink delivers only one packet.
		want := uint64(2)
		if val == 0 {
			want = 1
		}
		if got := sink.LoadWord(rime.AddrDelivered).ConstVal(); got != want {
			t.Errorf("pin=%d: delivered = %d, want %d", val, got, want)
		}
	}
}

func TestPinnedHalvesComposeToFullSpace(t *testing.T) {
	full := pinScenario(t, nil)
	zero := pinScenario(t, map[string]uint64{"drop_n1_r0": 0})
	one := pinScenario(t, map[string]uint64{"drop_n1_r0": 1})
	if got := zero.DScenarios.Int64() + one.DScenarios.Int64(); got != full.DScenarios.Int64() {
		t.Errorf("pinned halves cover %d dscenarios, full run %v", got, full.DScenarios)
	}
	// The two halves are disjoint: fingerprints of their dscenarios
	// never coincide (the pinned constraint differs).
	seen := map[uint64]bool{}
	for _, res := range []*sim.Result{zero, one} {
		for _, sc := range res.Mapper.Explode(0) {
			h := uint64(14695981039346656037)
			for _, s := range sc {
				h ^= s.Fingerprint()
				h *= 1099511628211
			}
			if seen[h] {
				t.Fatal("pinned halves share a dscenario")
			}
			seen[h] = true
		}
	}
}
