package sim_test

import (
	"testing"

	"sde/internal/core"
	"sde/internal/isa"
	"sde/internal/sim"
	"sde/internal/vm"
)

// TestSameTimeEventDeterminism floods the scheduler with events at
// identical virtual times across many nodes and verifies two runs agree
// on every observable (the scheduler orders same-time events by state id,
// and per-state ties FIFO).
func TestSameTimeEventDeterminism(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder()
		boot := b.Func("boot")
		// Every node arms 4 timers all firing at t=10.
		boot.MovI(isa.R1, 10)
		for i := 0; i < 4; i++ {
			boot.MovI(isa.R2, uint32(i))
			boot.Timer("tick", isa.R1, isa.R2)
		}
		boot.Ret()
		tick := b.Func("tick")
		// Record processing order: order = order*4 + arg.
		tick.MovI(isa.R3, 0)
		tick.Load(isa.R4, isa.R3, 0x60)
		tick.MulI(isa.R4, isa.R4, 4)
		tick.Add(isa.R4, isa.R4, isa.R0)
		tick.Store(isa.R3, 0x60, isa.R4)
		// Everyone broadcasts once on the first tick.
		tick.Load(isa.R5, isa.R3, 0x61)
		tick.BrNZ(isa.R5, "skip")
		tick.MovI(isa.R5, 1)
		tick.Store(isa.R3, 0x61, isa.R5)
		tick.MovI(isa.R6, 0x300)
		tick.NodeID(isa.R7)
		tick.Store(isa.R6, 0, isa.R7)
		tick.MovI(isa.R8, isa.BroadcastAddr)
		tick.Send(isa.R8, isa.R6, 1)
		tick.Label("skip")
		tick.Ret()
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	run := func() (uint64, []uint64) {
		eng, err := sim.NewEngine(sim.Config{
			Topo:      sim.NewGrid(3, 3),
			Prog:      build(),
			Algorithm: core.SDSAlgorithm,
			Horizon:   100,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		var orders []uint64
		res.Mapper.ForEachState(func(s *vm.State) {
			orders = append(orders, s.LoadWord(0x60).ConstVal())
		})
		return res.Instructions, orders
	}
	i1, o1 := run()
	i2, o2 := run()
	if i1 != i2 {
		t.Errorf("instruction counts differ: %d vs %d", i1, i2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("state counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("tick processing order differs at state %d: %d vs %d", i, o1[i], o2[i])
		}
	}
	// Per-state FIFO: the four same-time ticks must process as 0,1,2,3
	// (order word = ((0*4+1)*4+2)*4+3 = 27).
	for i, o := range o1 {
		if o != 27 {
			t.Errorf("state %d processed ticks out of FIFO order: %d", i, o)
		}
	}
}

// TestHaltedNodeStopsReceiving: a node that executes Halt must process no
// further events even when packets keep arriving.
func TestHaltedNodeStopsReceiving(t *testing.T) {
	b := isa.NewBuilder()
	boot := b.Func("boot")
	boot.NodeID(isa.R1)
	boot.EqI(isa.R2, isa.R1, 1)
	boot.BrNZ(isa.R2, "sender")
	boot.Halt() // node 0 halts immediately
	boot.Label("sender")
	boot.MovI(isa.R1, 10)
	boot.Timer("tx", isa.R1, isa.R0)
	boot.Ret()
	tx := b.Func("tx")
	tx.MovI(isa.R6, 0x300)
	tx.MovI(isa.R7, 0x99)
	tx.Store(isa.R6, 0, isa.R7)
	tx.MovI(isa.R5, 0)
	tx.Send(isa.R5, isa.R6, 1)
	tx.Ret()
	recv := b.Func("on_recv")
	recv.MovI(isa.R3, 0)
	recv.MovI(isa.R4, 1)
	recv.Store(isa.R3, 0x70, isa.R4)
	recv.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Config{
		Topo:      sim.NewLine(2),
		Prog:      prog,
		Algorithm: core.SDSAlgorithm,
		Horizon:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	var halted *vm.State
	res.Mapper.ForEachState(func(s *vm.State) {
		if s.NodeID() == 0 {
			halted = s
		}
	})
	if halted.Status() != vm.StatusHalted {
		t.Fatalf("node 0 status = %v, want halted", halted.Status())
	}
	if got := halted.LoadWord(0x70); !got.IsConst() || got.ConstVal() != 0 {
		t.Errorf("halted node ran its receive handler: %v", got)
	}
	// The radio-level reception is still on the record (footnote 2: the
	// network layer is ideal; the node just never processes it).
	if len(halted.History()) == 0 {
		t.Error("halted node's radio history is empty")
	}
}

// TestSendOnlyProgramWithoutRecvFn: programs without an on_recv function
// are legal; deliveries are consumed silently.
func TestSendOnlyProgramWithoutRecvFn(t *testing.T) {
	b := isa.NewBuilder()
	boot := b.Func("boot")
	boot.MovI(isa.R6, 0x300)
	boot.MovI(isa.R7, 1)
	boot.Store(isa.R6, 0, isa.R7)
	boot.MovI(isa.R8, isa.BroadcastAddr)
	boot.Send(isa.R8, isa.R6, 1)
	boot.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Config{
		Topo:      sim.NewLine(3),
		Prog:      prog,
		Algorithm: core.COWAlgorithm,
		Horizon:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted || len(res.Violations) != 0 {
		t.Fatalf("send-only run failed: %+v", res)
	}
}

// TestMissingBootFnRejected: configuration errors surface at construction.
func TestMissingBootFnRejected(t *testing.T) {
	b := isa.NewBuilder()
	b.Func("main").Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewEngine(sim.Config{
		Topo:      sim.NewLine(2),
		Prog:      prog,
		Algorithm: core.SDSAlgorithm,
	}); err == nil {
		t.Error("engine accepted a program without the boot function")
	}
}

// TestSolverStatsExposed: the result carries solver counters.
func TestSolverStatsExposed(t *testing.T) {
	b := isa.NewBuilder()
	boot := b.Func("boot")
	boot.Sym(isa.R1, "coin", 1)
	boot.BrNZ(isa.R1, "join")
	boot.Label("join")
	boot.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Config{
		Topo:      sim.NewLine(2),
		Prog:      prog,
		Algorithm: core.SDSAlgorithm,
		Horizon:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SolverStats.Queries == 0 {
		t.Error("no solver queries recorded despite symbolic branches")
	}
}
