package sim_test

// State-merging regression tests at the whole-run level: merging (off by
// default) must be invisible in every observable output — final states,
// dscenario fingerprints, violations, generated test cases — both between
// merge-on and merge-off runs and across a kill-and-resume of a
// merge-enabled run. Merged representatives ARE serialized (snap wire
// version 3), so resume additionally exercises the rep/member round-trip
// through the checkpoint.

import (
	"os"
	"path/filepath"
	"testing"

	"sde/internal/core"
	"sde/internal/expr"
	"sde/internal/sim"
	"sde/internal/snap"
)

// withMerging enables the ITE-based state-merging subsystem.
func withMerging(cfg sim.Config) sim.Config {
	cfg.EnableMerge = true
	return cfg
}

// TestMergeOnOffEquivalence: merging must not change any observable run
// output versus the default unmerged exploration, for every mapping
// algorithm. The on-run must actually merge (otherwise the oracle proves
// nothing) and the off-run must report zero merge activity.
func TestMergeOnOffEquivalence(t *testing.T) {
	for _, algo := range allAlgorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			on := runQoptCfg(t, withMerging(collectConfig(t, algo)))
			off := runQoptCfg(t, collectConfig(t, algo))
			if on.Merge.Merges == 0 {
				t.Error("merge-enabled run performed no merges; workload no longer exercises the subsystem")
			}
			if off.Merge.Merges != 0 || off.Merge.Candidates != 0 {
				t.Errorf("merge-disabled run reports merge activity: %+v", off.Merge)
			}
			compareRuns(t, on, off)
		})
	}
}

// mergedCheckpoint runs a merge-enabled checkpointed exploration until a
// checkpoint that carries live merged representatives is on disk, then
// abandons the engine (the simulated crash) and returns that snapshot.
// Resuming from a rep-carrying checkpoint — rather than whichever
// checkpoint lands first — makes the rep/member serialization round-trip
// a deterministic part of the test instead of a timing accident.
func mergedCheckpoint(t *testing.T, cfg sim.Config) []byte {
	t.Helper()
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(cfg.CheckpointDir, snap.CheckpointFile)
	for eng.Step() {
		if _, err := os.Stat(ckpt); err != nil {
			continue
		}
		data, err := snap.LoadBytes(cfg.CheckpointDir)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := snap.Decode(data, expr.NewBuilder())
		if err != nil {
			t.Fatal(err)
		}
		if len(sp.Merged) > 0 {
			return data
		}
	}
	t.Fatal("no checkpoint carried merged representatives; workload no longer merges across checkpoints")
	return nil
}

// TestMergeKillAndResume interrupts a merge-enabled checkpointed run at a
// checkpoint holding live merged representatives, resumes it (merging
// still on), and requires the result to be indistinguishable from an
// uninterrupted merge-off run — resume correctness and merge transparency
// at once. Unlike the optimizer, merge state is serialized, so this also
// pins the rep/member snapshot round-trip.
func TestMergeKillAndResume(t *testing.T) {
	ref := runQoptCfg(t, collectConfig(t, core.SDSAlgorithm))

	cfg := withMerging(collectConfig(t, core.SDSAlgorithm))
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 8
	data := mergedCheckpoint(t, cfg)
	resumed, err := sim.ResumeEngine(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Error("resumed run does not report Resumed")
	}
	compareRuns(t, res, ref)
}

// TestMergeResumeWithMergingOff resumes a rep-carrying checkpoint written
// by a merge-enabled run with merging DISABLED. The representatives in
// the snapshot must dissolve back into their exact member states, and the
// rest of the run must match an uninterrupted merge-off run. This is the
// triage path: a suspect merged run can be continued unmerged.
func TestMergeResumeWithMergingOff(t *testing.T) {
	ref := runQoptCfg(t, collectConfig(t, core.SDSAlgorithm))

	cfg := withMerging(collectConfig(t, core.SDSAlgorithm))
	cfg.CheckpointDir = t.TempDir()
	cfg.CheckpointEvery = 8
	data := mergedCheckpoint(t, cfg)
	offCfg := cfg
	offCfg.EnableMerge = false
	resumed, err := sim.ResumeEngine(offCfg, data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Merge.Merges != 0 {
		t.Errorf("merge-off resume reports %d merges", res.Merge.Merges)
	}
	compareRuns(t, res, ref)
}
