package sim_test

// Depth-horizon suspension tests: an event budget pauses a run at an
// absolute cumulative event count, the surviving frontier snapshot is
// sliced along dscenario rows, and the union of the resumed slices must
// be indistinguishable from the uninterrupted run.

import (
	"strings"
	"testing"

	"sde/internal/core"
	"sde/internal/sim"
)

// runToCompletion runs cfg with no event budget and returns the result.
func runToCompletion(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	cfg.EventBudget = 0
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspended {
		t.Fatal("run without a budget reported Suspended")
	}
	return res
}

// suspendAt runs cfg up to the absolute event budget and returns the
// suspended result plus the encoded frontier snapshot.
func suspendAt(t *testing.T, cfg sim.Config, budget uint64) (*sim.Result, []byte) {
	t.Helper()
	cfg.EventBudget = budget
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Suspended {
		t.Fatalf("run did not suspend at budget %d (events=%d)", budget, res.Events)
	}
	if res.Events < budget {
		t.Fatalf("suspended at %d events, before the budget %d", res.Events, budget)
	}
	sp, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := sp.Encode(eng.Ctx().Exprs)
	if err != nil {
		t.Fatal(err)
	}
	return res, data
}

// fingerprints hashes each exploded dscenario of the result, mirroring
// the sharding tests' strong set oracle.
func fingerprints(res *sim.Result) map[uint64]bool {
	out := map[uint64]bool{}
	for _, sc := range res.Mapper.Explode(0) {
		h := uint64(14695981039346656037)
		for _, s := range sc {
			h ^= s.Fingerprint()
			h *= 1099511628211
		}
		out[h] = true
	}
	return out
}

// TestSuspendAndSliceResume is the depth dimension's core soundness
// property: suspend a COB run at an event budget, slice its frontier Of
// ways, resume every slice to completion, and require the union of the
// slices' dscenario sets to equal the uninterrupted run's exactly —
// disjointly, since slices partition the parent's rows.
func TestSuspendAndSliceResume(t *testing.T) {
	cfg := collectConfig(t, core.COBAlgorithm)
	ref := runToCompletion(t, cfg)
	refFPs := fingerprints(ref)

	res, data := suspendAt(t, cfg, 100)
	if res.SuspendUnits < 2 {
		t.Fatalf("SuspendUnits = %d, want >= 2 for a COB frontier", res.SuspendUnits)
	}
	const of = 2
	got := map[uint64]bool{}
	states := 0
	for seg := 0; seg < of; seg++ {
		eng, err := sim.ResumeEngineSlice(cfg, data, seg, of)
		if err != nil {
			t.Fatalf("slice %d/%d: %v", seg, of, err)
		}
		sres, err := eng.Run()
		if err != nil {
			t.Fatalf("slice %d/%d: %v", seg, of, err)
		}
		if sres.Suspended {
			t.Fatalf("slice %d/%d suspended without a budget", seg, of)
		}
		states += sres.FinalStates
		for fp := range fingerprints(sres) {
			if got[fp] {
				t.Fatalf("dscenario %x appears in two slices", fp)
			}
			got[fp] = true
		}
	}
	if len(got) != len(refFPs) {
		t.Fatalf("slice union has %d dscenarios, uninterrupted run %d", len(got), len(refFPs))
	}
	for fp := range refFPs {
		if !got[fp] {
			t.Fatal("slice union is missing an uninterrupted dscenario")
		}
	}
	if states != ref.FinalStates {
		t.Errorf("slice union has %d final states, uninterrupted run %d", states, ref.FinalStates)
	}
}

// TestChainedSuspension checks the fan-out-1 path COW and SDS frontiers
// use: suspend, resume the whole frontier (slice 0/1), suspend again at
// the next absolute boundary, and the final completion must match the
// uninterrupted run. The budget being absolute — not relative to each
// resume — is what pins every generation to the same event boundaries.
func TestChainedSuspension(t *testing.T) {
	for _, algo := range []core.Algorithm{core.COWAlgorithm, core.SDSAlgorithm} {
		t.Run(algo.String(), func(t *testing.T) {
			cfg := collectConfig(t, algo)
			ref := runToCompletion(t, cfg)
			refFPs := fingerprints(ref)

			res, data := suspendAt(t, cfg, 50)
			if res.SuspendUnits != 1 {
				t.Fatalf("SuspendUnits = %d, want 1 for a %v frontier", res.SuspendUnits, algo)
			}
			events := res.Events
			final := res
			for hops := 0; ; hops++ {
				if hops > 64 {
					t.Fatal("continuation chain did not terminate")
				}
				next := cfg
				next.EventBudget = events + 50
				eng, err := sim.ResumeEngineSlice(next, data, 0, 1)
				if err != nil {
					t.Fatal(err)
				}
				final, err = eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !final.Suspended {
					break
				}
				events = final.Events
				sp, err := eng.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				data, err = sp.Encode(eng.Ctx().Exprs)
				if err != nil {
					t.Fatal(err)
				}
			}
			gotFPs := fingerprints(final)
			if len(gotFPs) != len(refFPs) {
				t.Fatalf("chained run has %d dscenarios, uninterrupted %d", len(gotFPs), len(refFPs))
			}
			for fp := range refFPs {
				if !gotFPs[fp] {
					t.Fatal("chained run is missing an uninterrupted dscenario")
				}
			}
			if final.FinalStates != ref.FinalStates {
				t.Errorf("chained run has %d final states, uninterrupted %d", final.FinalStates, ref.FinalStates)
			}
		})
	}
}

// TestBudgetBeyondRunFinishes: a budget past the run's natural end must
// not suspend — the frontier drains first.
func TestBudgetBeyondRunFinishes(t *testing.T) {
	cfg := collectConfig(t, core.SDSAlgorithm)
	cfg.EventBudget = 1 << 40
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspended {
		t.Fatal("run suspended even though the budget was beyond its end")
	}
}

// TestSliceResumeRejects covers the slice validation surface: bad
// (seg, of) pairs and non-sliceable frontiers.
func TestSliceResumeRejects(t *testing.T) {
	cob := collectConfig(t, core.COBAlgorithm)
	_, cobData := suspendAt(t, cob, 100)

	if _, err := sim.ResumeEngineSlice(cob, cobData, 2, 2); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("seg==of: err = %v, want out of range", err)
	}
	if _, err := sim.ResumeEngineSlice(cob, cobData, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("of==0: err = %v, want out of range", err)
	}

	sds := collectConfig(t, core.SDSAlgorithm)
	_, sdsData := suspendAt(t, sds, 50)
	if _, err := sim.ResumeEngineSlice(sds, sdsData, 0, 2); err == nil ||
		!strings.Contains(err.Error(), "not sliceable") {
		t.Errorf("SDS slice: err = %v, want not sliceable", err)
	}
	// Fan-out 1 is the non-COB escape hatch: the whole frontier resumes.
	if _, err := sim.ResumeEngineSlice(sds, sdsData, 0, 1); err != nil {
		t.Errorf("SDS fanout 1: %v", err)
	}
}
