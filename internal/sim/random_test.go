package sim_test

// Randomised cross-validation: for a corpus of randomly generated small
// scenarios (topology, traffic, failure plan), the three state mapping
// algorithms must agree exactly — same dscenario fingerprint sets, same
// violation counts — and every exploded dscenario must pass the §II-B
// direct-conflict oracle. This is the repository's broadest correctness
// sweep; all randomness is seeded, so failures reproduce.

import (
	"fmt"
	"math/rand"
	"testing"

	"sde/internal/core"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/trace"
	"sde/internal/vm"
)

type randomScenario struct {
	topo     sim.Topology
	route    []int
	packets  uint32
	failures sim.FailurePlan
	desc     string
}

// genScenario builds a random collect scenario description.
func genScenario(rng *rand.Rand) randomScenario {
	var topo sim.Topology
	var route []int
	switch rng.Intn(3) {
	case 0:
		k := 3 + rng.Intn(3) // 3..5
		l := sim.NewLine(k)
		topo = l
		route = make([]int, k)
		for i := range route {
			route[i] = k - 1 - i
		}
	case 1:
		w, h := 2+rng.Intn(2), 2+rng.Intn(2) // up to 3x3
		g := sim.NewGrid(w, h)
		topo = g
		route = g.StaircaseRoute(g.K()-1, 0)
	default:
		k := 3 + rng.Intn(2)
		m := sim.NewFullMesh(k)
		topo = m
		route = []int{k - 1, 0}
	}
	packets := uint32(1 + rng.Intn(3))
	var failures sim.FailurePlan
	pick := func() map[int]bool {
		set := map[int]bool{}
		for _, n := range route {
			if rng.Intn(3) == 0 {
				set[n] = true
			}
		}
		return set
	}
	failures.DropFirst = pick()
	if rng.Intn(2) == 0 {
		failures.DuplicateFirst = map[int]bool{route[len(route)-1]: true}
	}
	if rng.Intn(3) == 0 {
		failures.RebootOnFirst = map[int]bool{route[len(route)/2]: true}
	}
	return randomScenario{
		topo: topo, route: route, packets: packets, failures: failures,
		desc: fmt.Sprintf("%s packets=%d drops=%v dup=%v reboot=%v",
			topo.Name(), packets, failures.DropFirst,
			failures.DuplicateFirst, failures.RebootOnFirst),
	}
}

func runRandom(t *testing.T, rs randomScenario, algo core.Algorithm) *sim.Result {
	t.Helper()
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatal(err)
	}
	cfg := rime.CollectConfig{
		Source: rs.route[0], Sink: rs.route[len(rs.route)-1],
		Route: rs.route, Interval: 10, Packets: rs.packets,
	}
	nodeInit, err := cfg.NodeInit(rs.topo.K())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Config{
		Topo:            rs.topo,
		Prog:            prog,
		Algorithm:       algo,
		Horizon:         uint64(10*rs.packets) + 100,
		NodeInit:        nodeInit,
		Failures:        rs.failures,
		CheckInvariants: true,
		Caps:            sim.Caps{MaxStates: 150000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("%s / %v: %v", rs.desc, algo, err)
	}
	if res.Aborted {
		t.Skipf("%s / %v aborted: %s", rs.desc, algo, res.AbortReason)
	}
	return res
}

func TestRandomScenarioEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			rs := genScenario(rng)
			t.Log(rs.desc)

			results := map[core.Algorithm]*sim.Result{}
			for _, algo := range allAlgorithms {
				results[algo] = runRandom(t, rs, algo)
			}
			ref := results[core.COBAlgorithm]
			refSet := scenarioSet(ref)
			for _, algo := range []core.Algorithm{core.COWAlgorithm, core.SDSAlgorithm} {
				res := results[algo]
				if res.DScenarios.Cmp(ref.DScenarios) != 0 {
					t.Errorf("%v dscenarios = %v, COB = %v", algo, res.DScenarios, ref.DScenarios)
					continue
				}
				set := scenarioSet(res)
				if len(set) != len(refSet) {
					t.Errorf("%v fingerprint set size %d, COB %d", algo, len(set), len(refSet))
					continue
				}
				for fp := range refSet {
					if set[fp] == 0 {
						t.Errorf("%v missing a COB dscenario", algo)
						break
					}
				}
				// Violation messages must agree as a multiset of (node, msg).
				if got, want := violationKeys(res), violationKeys(ref); !mapsEqual(got, want) {
					t.Errorf("%v violations %v, COB %v", algo, got, want)
				}
			}
			// Every exploded dscenario (sampled) passes the §II-B
			// direct-conflict oracle.
			for _, res := range results {
				count := 0
				res.Mapper.ExplodeFunc(64, func(sc []*vm.State) bool {
					if err := trace.CheckDScenario(sc); err != nil {
						t.Errorf("%v: %v", res.Algorithm, err)
						return false
					}
					count++
					return true
				})
				if count == 0 {
					t.Errorf("%v exploded nothing", res.Algorithm)
				}
			}
		})
	}
}

func violationKeys(res *sim.Result) map[string]int {
	out := map[string]int{}
	for _, v := range res.Violations {
		out[fmt.Sprintf("n%d:%s", v.Node, v.Msg)]++
	}
	return out
}

func mapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
