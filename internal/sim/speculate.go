package sim

import (
	"errors"
	"time"

	"sde/internal/expr"
	"sde/internal/solver"
	"sde/internal/vm"
)

// Speculative-fork solver pipeline (engine side). At a symbolic branch the
// VM forks both sides immediately and keeps executing the true side; the
// feasibility queries run on the SpecPool's workers. The engine records
// each speculation as a specEntry and resolves them — strictly in creation
// order — at resolution barriers: before a packet send or assertion (the
// VM calls OnSpecBarrier) and after every activation (runToCompletion).
// Creation-order resolution maintains the invariant that every consumed
// verdict's prefix is already confirmed feasible, which is what makes
// complement elision in the pool sound.
type specEntry struct {
	st  *vm.State
	sib *vm.State // frozen false-side snapshot; nil for assume entries

	task *solver.SpecTask

	// condIdx is the index the provisional constraint was appended at;
	// removedSnap is st.SpecRemovedCount() at submission. Their difference
	// against the current count adjusts condIdx for provisional
	// constraints removed by earlier resolutions.
	condIdx     int
	removedSnap int
}

// OnSpecBranch implements vm.SpecHooks: queue the branch's query pair.
func (h *engineHooks) OnSpecBranch(orig, sib *vm.State, prefix []*expr.Expr, cond, notCond *expr.Expr) {
	e := (*Engine)(h)
	e.specPending = append(e.specPending, specEntry{
		st:          orig,
		sib:         sib,
		task:        e.specPool.SubmitPair(prefix, cond, notCond),
		condIdx:     len(prefix),
		removedSnap: orig.SpecRemovedCount(),
	})
}

// OnSpecAssume implements vm.SpecHooks: queue the assume's single query.
func (h *engineHooks) OnSpecAssume(s *vm.State, prefix []*expr.Expr, cond *expr.Expr) {
	e := (*Engine)(h)
	e.specPending = append(e.specPending, specEntry{
		st:          s,
		task:        e.specPool.SubmitOne(prefix, cond),
		condIdx:     len(prefix),
		removedSnap: s.SpecRemovedCount(),
	})
}

// OnSpecBarrier implements vm.SpecHooks: the state is about to execute an
// externally observable instruction; resolve everything first.
func (h *engineHooks) OnSpecBarrier(s *vm.State) {
	(*Engine)(h).drainSpec()
}

// drainSpec resolves every pending speculation in creation order.
func (e *Engine) drainSpec() {
	if len(e.specPending) == 0 {
		return
	}
	start := time.Now()
	e.specBarriers++
	for len(e.specPending) > 0 {
		ent := e.specPending[0]
		e.specPending = e.specPending[1:]
		e.resolveSpec(ent)
	}
	e.specBarrierWait += time.Since(start)
}

// discardSpecRest abandons every still-pending speculation: the state was
// killed or rewound, so the remaining entries describe a path that no
// longer exists. Their tasks are canceled (a worker that has not started
// skips the solve) and their snapshots released.
func (e *Engine) discardSpecRest() {
	for _, ent := range e.specPending {
		ent.task.Cancel()
		if ent.sib != nil {
			ent.sib.Release()
		}
	}
	e.specPending = e.specPending[:0]
}

// resolveSpec consumes one verdict and replays exactly what the
// synchronous branch/assume code would have done with it.
func (e *Engine) resolveSpec(ent specEntry) {
	s := ent.st
	ent.task.Wait()
	satT, errT := ent.task.SatTrue()

	if ent.sib == nil { // assume
		switch {
		case errT != nil:
			s.Kill(errT)
			e.specKills++
			e.discardSpecRest()
		case !satT:
			s.Kill(errors.New("vm: infeasible assume"))
			e.specKills++
			e.discardSpecRest()
		}
		return
	}

	sib := ent.sib
	satF, errF := ent.task.SatFalse()
	switch {
	case errT != nil:
		sib.Release()
		s.Kill(errT)
		e.specKills++
		e.discardSpecRest()
	case satT && errF != nil:
		sib.Release()
		s.Kill(errF)
		e.specKills++
		e.discardSpecRest()
	case satT && satF:
		// Both feasible: materialize the sibling exactly as OnFork would
		// have — same id, same mapper notification, same LIFO position.
		sib.AdoptFreshID()
		e.onLocalBranch(s, sib)
		e.adopt([]*vm.State{sib})
		e.runnable = append(e.runnable, sib)
	case satT:
		// True side only: a synchronous run takes the branch without
		// recording the (implied) condition. Remove the provisional
		// constraint from the speculating state and from every pending
		// sibling snapshot, which carries its own copy of it.
		idx := ent.condIdx - (s.SpecRemovedCount() - ent.removedSnap)
		s.RemoveConstraintAt(idx)
		for _, rest := range e.specPending {
			if rest.sib != nil {
				rest.sib.RemoveConstraintAt(idx)
			}
		}
		e.specRemoved++
		sib.Release()
	default:
		// True side infeasible: the speculative execution since this
		// branch was down a path that does not exist. Rewind onto the
		// frozen snapshot's machine state; the path condition keeps only
		// the confirmed prefix (a synchronous one-sided-false branch adds
		// no constraint). Everything speculated after this point is moot.
		keep := ent.condIdx - (s.SpecRemovedCount() - ent.removedSnap)
		s.RestoreFromSpec(sib, keep)
		e.specRewinds++
		e.discardSpecRest()
	}
}

// closeSpecPool shuts the solver workers down; idempotent.
func (e *Engine) closeSpecPool() {
	if e.specPool != nil {
		e.discardSpecRest()
		e.specPool.Close()
	}
}
