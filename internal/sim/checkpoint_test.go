package sim_test

// Kill-and-resume integration tests: interrupt a checkpointed run
// mid-exploration (simulating a crash by abandoning the engine), resume
// from the snapshot on disk, and require the resumed run to be
// indistinguishable from an uninterrupted one — same dscenario
// fingerprints, same state counts, same generated test cases.

import (
	"os"
	"path/filepath"
	"testing"

	"sde/internal/core"
	"sde/internal/rime"
	"sde/internal/sim"
	"sde/internal/snap"
	"sde/internal/solver"
	"sde/internal/trace"
)

// collectConfig builds the 3x3 gridcollect configuration shared by the
// resume tests: staircase route, symbolic drops on the whole data path.
func collectConfig(t *testing.T, algo core.Algorithm) sim.Config {
	t.Helper()
	prog, err := rime.CollectProgram()
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewGrid(3, 3)
	route := g.StaircaseRoute(8, 0)
	cc := rime.CollectConfig{
		Source:   route[0],
		Sink:     route[len(route)-1],
		Route:    route,
		Interval: 10,
		Packets:  2,
	}
	nodeInit, err := cc.NodeInit(g.K())
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{
		Topo:            g,
		Prog:            prog,
		Algorithm:       algo,
		Horizon:         120,
		NodeInit:        nodeInit,
		Failures:        sim.FailurePlan{DropFirst: sim.NodeSet(route)},
		CheckInvariants: true,
	}
}

// testCaseStrings generates every test case of the result with a fresh
// solver, so the concrete models depend only on the constraints — the
// run's own solver carries pool/cache state that differs between a
// resumed and an uninterrupted run and may pick different (equally valid)
// models.
func testCaseStrings(t *testing.T, res *sim.Result) []string {
	t.Helper()
	res.Ctx.Solver = solver.New()
	cases, err := trace.FromResult(res, 0)
	if err != nil {
		t.Fatalf("FromResult: %v", err)
	}
	out := make([]string, len(cases))
	for i, tc := range cases {
		out[i] = tc.String()
	}
	return out
}

func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery sweep; CI runs it in a dedicated race step")
	}
	for _, algo := range allAlgorithms {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			ref := func() *sim.Result {
				eng, err := sim.NewEngine(collectConfig(t, algo))
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}()

			// Interrupted run: step until the first checkpoint lands on
			// disk, then abandon the engine — the crash.
			dir := t.TempDir()
			cfg := collectConfig(t, algo)
			cfg.CheckpointDir = dir
			cfg.CheckpointEvery = 8
			eng, err := sim.NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ckpt := filepath.Join(dir, snap.CheckpointFile)
			for eng.Step() {
				if _, err := os.Stat(ckpt); err == nil {
					break
				}
			}
			if _, err := os.Stat(ckpt); err != nil {
				t.Fatal("run finished before writing any checkpoint; lower CheckpointEvery")
			}

			data, err := snap.LoadBytes(dir)
			if err != nil {
				t.Fatal(err)
			}
			resumedEng, err := sim.ResumeEngine(cfg, data)
			if err != nil {
				t.Fatalf("ResumeEngine: %v", err)
			}
			res, err := resumedEng.Run()
			if err != nil {
				t.Fatalf("resumed Run: %v", err)
			}
			if !res.Resumed {
				t.Error("resumed result does not report Resumed")
			}
			if res.SolverStats.RewarmSessions == 0 {
				t.Error("resume re-warmed no solver sessions")
			}

			// The resumed exploration must be indistinguishable from the
			// uninterrupted one.
			if res.FinalStates != ref.FinalStates {
				t.Errorf("states = %d, uninterrupted run has %d", res.FinalStates, ref.FinalStates)
			}
			if res.DScenarios.Cmp(ref.DScenarios) != 0 {
				t.Errorf("dscenarios = %v, uninterrupted run has %v", res.DScenarios, ref.DScenarios)
			}
			if len(res.Violations) != len(ref.Violations) {
				t.Errorf("violations = %d, uninterrupted run has %d",
					len(res.Violations), len(ref.Violations))
			}
			refSet := scenarioSet(ref)
			set := scenarioSet(res)
			if len(set) != len(refSet) {
				t.Fatalf("%d distinct dscenario fingerprints, uninterrupted run has %d",
					len(set), len(refSet))
			}
			for fp, n := range refSet {
				if set[fp] != n {
					t.Fatalf("dscenario fingerprint %x: count %d, uninterrupted run has %d",
						fp, set[fp], n)
				}
			}
			refCases := testCaseStrings(t, ref)
			gotCases := testCaseStrings(t, res)
			if len(gotCases) != len(refCases) {
				t.Fatalf("%d test cases, uninterrupted run has %d", len(gotCases), len(refCases))
			}
			for i := range refCases {
				if gotCases[i] != refCases[i] {
					t.Fatalf("test case %d diverges:\n resumed: %s\n fresh:   %s",
						i, gotCases[i], refCases[i])
				}
			}
		})
	}
}

// TestResumeRejectsMismatchedConfig: a checkpoint must not silently
// restore into a run with a different algorithm or topology.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := collectConfig(t, core.SDSAlgorithm)
	cfg.CheckpointDir = dir
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	data, err := snap.LoadBytes(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Algorithm = core.COBAlgorithm
	if _, err := sim.ResumeEngine(bad, data); err == nil {
		t.Error("ResumeEngine accepted a checkpoint from a different algorithm")
	}
	bad = cfg
	bad.Topo = sim.NewGrid(4, 4)
	if _, err := sim.ResumeEngine(bad, data); err == nil {
		t.Error("ResumeEngine accepted a checkpoint from a different topology")
	}
}
