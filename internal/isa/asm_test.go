package isa

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseAsmBasic(t *testing.T) {
	src := `
; comment
func main
  movi r1, 10
  movi r2, 0
loop:
  add r2, r2, r1   ; accumulate
  sub r1, r1, 1
  brnz r1, loop
  ret
`
	prog, err := ParseAsm(src)
	if err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
	f := prog.Func(0)
	if f.Name != "main" || len(f.Instrs) != 6 {
		t.Fatalf("parsed %q with %d instrs", f.Name, len(f.Instrs))
	}
	br := f.Instrs[4]
	if br.Op != OpBrNZ || br.Target != 2 {
		t.Errorf("branch = %+v, want BrNZ to 2", br)
	}
	sub := f.Instrs[3]
	if sub.Op != OpSub || !sub.BImm || sub.Imm != 1 {
		t.Errorf("sub = %+v, want immediate form", sub)
	}
	add := f.Instrs[2]
	if add.Op != OpAdd || add.BImm {
		t.Errorf("add = %+v, want register form", add)
	}
}

func TestParseAsmAllInstructions(t *testing.T) {
	src := `
func main
  nop
  movi r1, 0x10
  mov r2, r1
  add r3, r1, r2
  sub r3, r3, 5
  mul r4, r3, r1
  udiv r4, r4, r1
  urem r5, r4, 3
  and r5, r5, r1
  or r5, r5, r2
  xor r5, r5, 0xff
  shl r6, r5, 2
  lshr r6, r6, r1
  ashr r6, r6, 1
  not r7, r6
  eq r8, r7, r6
  ne r8, r7, 0
  ult r8, r1, r2
  ule r8, r1, 7
  slt r8, r1, r2
  sle r8, r1, r2
  nodeid r9
  time r10
  sym r11, "input", 16
  assume r8
  assert r8, "must hold"
  print "value", r11
  store r1, 4, r11
  load r12, r1, 4
  send r9, r1, 3
  timer helper, r1, r2
  call helper
  jmp end
end:
  ret

func helper
  halt
`
	prog, err := ParseAsm(src)
	if err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
	if prog.NumFuncs() != 2 {
		t.Fatalf("funcs = %d, want 2", prog.NumFuncs())
	}
	main := prog.Func(0)
	// Spot checks across operand kinds.
	if in := main.Instrs[23]; in.Op != OpSym || in.Sym != "input" || in.Imm != 16 {
		t.Errorf("sym = %+v", in)
	}
	if in := main.Instrs[25]; in.Op != OpAssert || in.Sym != "must hold" {
		t.Errorf("assert = %+v", in)
	}
	if in := main.Instrs[30]; in.Op != OpTimer || in.Fn != 1 {
		t.Errorf("timer = %+v", in)
	}
	if in := main.Instrs[31]; in.Op != OpCall || in.Fn != 1 {
		t.Errorf("call = %+v", in)
	}
}

func TestParseAsmErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"instruction outside func", "movi r1, 1"},
		{"label outside func", "loop:"},
		{"unknown mnemonic", "func f\n  frobnicate r1\n  ret"},
		{"bad register", "func f\n  movi r99, 1\n  ret"},
		{"bad immediate", "func f\n  movi r1, banana\n  ret"},
		{"missing operand", "func f\n  movi r1\n  ret"},
		{"undefined label", "func f\n  jmp nowhere\n  ret"},
		{"undefined call", "func f\n  call missing\n  ret"},
		{"unquoted string", "func f\n  assert r1, message\n  ret"},
		{"fallthrough", "func f\n  nop"},
		{"duplicate label", "func f\nl:\n  nop\nl:\n  ret"},
		{"register where immediate-or-register op wants one", "func f\n  add 5, r1, r2\n  ret"},
		{"binary op missing second source", "func f\n  add r1, r2\n  ret"},
		{"sym width zero", "func f\n  sym r1, \"x\", 0\n  ret"},
		{"sym width too wide", "func f\n  sym r1, \"x\", 65\n  ret"},
		{"sym empty name", "func f\n  sym r1, \"\", 8\n  ret"},
		{"empty function", "func f\nfunc g\n  ret"},
		{"empty program", "; nothing but a comment"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseAsm(tt.src); err == nil {
				t.Errorf("ParseAsm accepted %q", tt.src)
			}
		})
	}
}

func TestAsmCommentsInsideStrings(t *testing.T) {
	src := `
func f
  assert r1, "do; not # strip"  ; a real comment
  ret
`
	prog, err := ParseAsm(src)
	if err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
	if got := prog.Func(0).Instrs[0].Sym; got != "do; not # strip" {
		t.Errorf("string = %q", got)
	}
}

// TestAsmRoundTrip: WriteAsm output parses back to the identical
// instruction stream for a representative program (the collect stack has
// every operand form in play via the builder-based rime tests; here a
// hand-made one covers the serialiser).
func TestAsmRoundTrip(t *testing.T) {
	b := NewBuilder()
	boot := b.Func("boot")
	boot.MovI(R3, 0)
	boot.Load(R4, R3, 2)
	boot.Timer("tick", R4, R0)
	boot.Ret()
	tick := b.Func("tick")
	tick.Sym(R5, "flip", 1)
	tick.BrNZ(R5, "skip")
	tick.AddI(R6, R6, 1)
	tick.Label("skip")
	tick.Store(R3, 7, R6)
	tick.Send(R1, R2, 4)
	tick.Print("trace", R6)
	tick.Assert(R6, "bound")
	tick.Jmp("end")
	tick.Label("end")
	tick.Ret()
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	asm := WriteAsm(orig)
	reparsed, err := ParseAsm(asm)
	if err != nil {
		t.Fatalf("reparse failed: %v\nasm:\n%s", err, asm)
	}
	if reparsed.NumFuncs() != orig.NumFuncs() {
		t.Fatalf("func count changed: %d vs %d", reparsed.NumFuncs(), orig.NumFuncs())
	}
	for fi := 0; fi < orig.NumFuncs(); fi++ {
		of, rf := orig.Func(fi), reparsed.Func(fi)
		if of.Name != rf.Name {
			t.Errorf("func %d name %q vs %q", fi, of.Name, rf.Name)
		}
		if !reflect.DeepEqual(of.Instrs, rf.Instrs) {
			t.Errorf("func %q instruction streams differ:\norig: %+v\nnew:  %+v",
				of.Name, of.Instrs, rf.Instrs)
		}
	}
}

func TestWriteAsmReadable(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.MovI(R1, 3)
	f.Label("top")
	f.SubI(R1, R1, 1)
	f.BrNZ(R1, "top")
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	asm := WriteAsm(prog)
	for _, want := range []string{"func main", "L1:", "brnz r1, L1", "sub r1, r1, 1"} {
		if !strings.Contains(asm, want) {
			t.Errorf("asm lacks %q:\n%s", want, asm)
		}
	}
}
