package isa

// Per-function effect summaries: what a handler activation may do beyond
// pure register/memory computation, including transitively through calls.
// The partial-order reduction layer (internal/reduce) uses these to decide
// whether two same-time activations on different nodes commute; anything
// that can transmit, fork, observe, or schedule makes that question
// node-order-dependent.
//
// Like the basic-block IR, the summaries are derived: computed once per
// program, lazily, and never serialized.

import "sync"

// FuncEffects summarises one function's possible effects, transitively
// through every function it can call. A cyclic call graph is handled by
// fixpoint propagation, so mutual recursion is summarised correctly.
type FuncEffects struct {
	// MaySend: the function (or a callee) contains a Send instruction.
	MaySend bool
	// MayBranch: contains a conditional branch (BrNZ/BrZ). On a symbolic
	// condition such a branch forks the state.
	MayBranch bool
	// MaySym: contains a Sym instruction (introduces a symbolic value).
	MaySym bool
	// MayAssert: contains an Assert or Assume (solver interaction; an
	// assert can record a violation, an assume can kill the state).
	MayAssert bool
	// MayTimer: contains a Timer instruction (schedules a future event).
	MayTimer bool
	// MayObserve: contains a Print instruction (appends to the
	// per-state diagnostic trace).
	MayObserve bool
}

// Pure reports that an activation of the function is confined to its own
// state's registers and memory: it cannot transmit, fork, record a
// violation, schedule an event, or emit trace output. Pure activations on
// different nodes commute with any activation that cannot deliver a packet
// to them — the independence fact partial-order reduction exploits.
func (fe FuncEffects) Pure() bool {
	return !fe.MaySend && !fe.MayBranch && !fe.MaySym &&
		!fe.MayAssert && !fe.MayTimer && !fe.MayObserve
}

// effCache caches the lazily computed per-function effect summaries on the
// Program, exactly like irCache caches the basic-block IR.
type effCache struct {
	once sync.Once
	eff  []FuncEffects
}

// FuncEffects returns the transitive effect summary of function fn,
// computing all summaries on first use. Out-of-range indices (e.g. the -1
// of an absent receive handler) return the zero summary, which is Pure —
// a missing handler consumes its event silently.
func (p *Program) FuncEffects(fn int) FuncEffects {
	p.effc.once.Do(func() { p.effc.eff = computeEffects(p) })
	if fn < 0 || fn >= len(p.effc.eff) {
		return FuncEffects{}
	}
	return p.effc.eff[fn]
}

// UsesNodeID reports whether any function in the program reads the node
// id. A program that never does — and has no per-node initial memory — is
// node-uniform: every node runs the same computation over its inputs, so
// topology automorphisms act on executions by pure relabeling. The
// symmetry layer uses this to decide when reduction is automatically
// applicable without a declared symmetry spec.
func (p *Program) UsesNodeID() bool {
	for fi := 0; fi < p.NumFuncs(); fi++ {
		f := p.Func(fi)
		for i := range f.Instrs {
			if f.Instrs[i].Op == OpNodeID {
				return true
			}
		}
	}
	return false
}

// computeEffects scans every function for local effects, then propagates
// them along call edges to a fixpoint.
func computeEffects(p *Program) []FuncEffects {
	n := p.NumFuncs()
	eff := make([]FuncEffects, n)
	calls := make([][]int, n)
	for fi := 0; fi < n; fi++ {
		f := p.Func(fi)
		for i := range f.Instrs {
			in := &f.Instrs[i]
			switch in.Op {
			case OpSend:
				eff[fi].MaySend = true
			case OpBrNZ, OpBrZ:
				eff[fi].MayBranch = true
			case OpSym:
				eff[fi].MaySym = true
			case OpAssert, OpAssume:
				eff[fi].MayAssert = true
			case OpTimer:
				eff[fi].MayTimer = true
			case OpPrint:
				eff[fi].MayObserve = true
			case OpCall:
				if in.Fn >= 0 && in.Fn < n {
					calls[fi] = append(calls[fi], in.Fn)
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fi := 0; fi < n; fi++ {
			for _, callee := range calls[fi] {
				merged := union(eff[fi], eff[callee])
				if merged != eff[fi] {
					eff[fi] = merged
					changed = true
				}
			}
		}
	}
	return eff
}

func union(a, b FuncEffects) FuncEffects {
	return FuncEffects{
		MaySend:    a.MaySend || b.MaySend,
		MayBranch:  a.MayBranch || b.MayBranch,
		MaySym:     a.MaySym || b.MaySym,
		MayAssert:  a.MayAssert || b.MayAssert,
		MayTimer:   a.MayTimer || b.MayTimer,
		MayObserve: a.MayObserve || b.MayObserve,
	}
}
