package isa

// Basic-block IR over validated programs — the CREATE phase of the
// two-phase load-time compiler (the BUILD phase lives in compile.go,
// patterned on the CREATE/BUILD split of golang.org/x/tools' SSA
// builder). The IR partitions every function's instruction stream into
// basic blocks, links them into a control-flow graph, and precomputes
// the per-block metadata the vm's concrete fast path and the static
// analyses (shardable-site detection, handler read-set liveness) need.
//
// The IR is derived: it is computed once per Program, lazily, and never
// serialized — a resumed run recompiles it from the program image, so
// the snapshot format is unaffected.

import (
	"fmt"
	"strings"
	"sync"
)

// WordBits is the machine word size in bits. It lives here, next to the
// ISA definition, because the load-time constant folder and the vm's
// symbolic ALU must agree on it exactly.
const WordBits = 32

// wordMask keeps concrete values inside the machine word.
const wordMask = 1<<WordBits - 1

// RegSet is a bitmask over the 16 general-purpose registers.
type RegSet uint16

// Has reports whether r is in the set.
func (rs RegSet) Has(r Reg) bool { return rs&(1<<r) != 0 }

// Add inserts r into the set.
func (rs *RegSet) Add(r Reg) { *rs |= 1 << r }

// Empty reports whether the set has no members.
func (rs RegSet) Empty() bool { return rs == 0 }

// Count returns the number of registers in the set.
func (rs RegSet) Count() int {
	n := 0
	for v := rs; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// String renders the set as {r0,r5,...} for diagnostics.
func (rs RegSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for r := Reg(0); r < NumRegs; r++ {
		if rs.Has(r) {
			if sb.Len() > 1 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "r%d", r)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// FoldedVal is the load-time constant folder's verdict for one
// instruction: when Known, the instruction's destination register always
// holds Val (a MovI-fed chain), so an executor may skip computing it.
type FoldedVal struct {
	Known bool
	Val   uint64
}

// Block is one basic block: a maximal straight-line instruction run
// [Start, End) that control enters only at Start and leaves only at the
// last instruction (or by falling through to the next leader).
type Block struct {
	Start, End int

	// Succs lists the indices of possible intra-procedural successor
	// blocks: branch targets, fall-throughs, and the return site after a
	// call. Ret and Halt blocks have no successors.
	Succs []int

	// Use holds the registers the block may read before writing them
	// (its live-in set); Def holds the registers it writes. Blocks are
	// straight-line, so Def is exact: every instruction executes.
	Use, Def RegSet

	// Effect summary, precomputed so executors and analyses don't rescan
	// the instruction stream.
	TouchesMem bool // contains Load, Store, or Send (payload reads)
	Sends      bool // contains Send
	MayFork    bool // contains a conditional branch, Assume, or Assert
	HasSym     bool // contains Sym (introduces a fresh symbolic value)

	// Fast marks the block concretizable: no Sym, no instruction with
	// effects outside registers+memory, every opcode simulable on raw
	// uint64s. A fast block executes on the vm's straight-line fast path
	// whenever its Use registers all hold concrete values at entry.
	Fast bool

	// Folded, when non-nil, has one entry per instruction in the block
	// with the constant folder's verdicts (see FoldedVal). Nil when the
	// folder proved nothing.
	Folded []FoldedVal
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// FuncIR is the compiled form of one function.
type FuncIR struct {
	Blocks []Block

	// LiveIn is the set of registers the function may read before
	// writing, including transitively through calls — the registers an
	// event dispatcher must initialise before entering the function.
	LiveIn RegSet

	// blockAt maps an instruction index to its block index when the
	// index is a leader, -1 otherwise.
	blockAt []int32

	// chainTo/chainHops collapse Jmp-only chains: a control transfer to
	// instruction t actually lands at chainTo[t] after executing
	// chainHops[t] intermediate Jmp instructions. Identity (chainTo[t]=t,
	// hops 0) for non-Jmp targets and for cyclic chains.
	chainTo   []int32
	chainHops []int32
}

// BlockIndex returns the index of the block led by instruction pc, or -1
// when pc is not a block leader.
func (fi *FuncIR) BlockIndex(pc int) int {
	if pc < 0 || pc >= len(fi.blockAt) {
		return -1
	}
	return int(fi.blockAt[pc])
}

// BlockOf returns the block containing instruction pc (every in-range pc
// is in exactly one block), or nil when pc is out of range.
func (fi *FuncIR) BlockOf(pc int) *Block {
	if pc < 0 || pc >= len(fi.blockAt) {
		return nil
	}
	for bi := range fi.Blocks {
		b := &fi.Blocks[bi]
		if pc >= b.Start && pc < b.End {
			return b
		}
	}
	return nil
}

// ResolveJmp collapses the Jmp-only chain starting at target: it returns
// where a transfer to target finally lands and how many intermediate Jmp
// instructions the chain executes on the way. Identity for targets that
// are not Jmp instructions (and for cycles, which cannot be collapsed).
func (fi *FuncIR) ResolveJmp(target int) (final, hops int) {
	if target < 0 || target >= len(fi.chainTo) {
		return target, 0
	}
	return int(fi.chainTo[target]), int(fi.chainHops[target])
}

// ProgIR is the compiled form of a whole program: one FuncIR per
// function, index-aligned with Program.Func.
type ProgIR struct {
	Funcs []FuncIR
}

// ir caches the lazily compiled ProgIR on the Program. Programs are
// immutable after Build/ParseAsm and only ever constructed by pointer,
// so a sync.Once per program is safe and the IR is shared by every
// context executing it.
type irCache struct {
	once sync.Once
	ir   *ProgIR
}

// IR returns the program's basic-block IR, compiling it on first use.
// The result is immutable and shared.
func (p *Program) IR() *ProgIR {
	p.irc.once.Do(func() { p.irc.ir = compileProgram(p) })
	return p.irc.ir
}

// createBlocks runs the CREATE phase for one function: find the leaders,
// cut the instruction stream into blocks, and link successors.
//
// Leaders are: instruction 0; every Jmp/BrNZ/BrZ target; and the
// instruction after any control transfer (branch, jump, call, return,
// halt) — the fall-through / return-site entry points. Build-validated
// programs always have in-range targets; out-of-range targets from
// hand-assembled programs are tolerated (the vm kills such states at
// runtime) and simply don't create leaders.
func createBlocks(f *Func) FuncIR {
	n := len(f.Instrs)
	fi := FuncIR{blockAt: make([]int32, n)}
	if n == 0 {
		return fi
	}
	leader := make([]bool, n)
	leader[0] = true
	for i := range f.Instrs {
		in := &f.Instrs[i]
		switch in.Op {
		case OpJmp, OpBrNZ, OpBrZ:
			if in.Target >= 0 && in.Target < n {
				leader[in.Target] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		case OpCall, OpRet, OpHalt:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	for i := range fi.blockAt {
		fi.blockAt[i] = -1
	}
	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		fi.blockAt[start] = int32(len(fi.Blocks))
		fi.Blocks = append(fi.Blocks, Block{Start: start, End: end})
		start = end
	}

	blockIdx := func(pc int) (int, bool) {
		if pc < 0 || pc >= n || fi.blockAt[pc] < 0 {
			return 0, false
		}
		return int(fi.blockAt[pc]), true
	}
	for bi := range fi.Blocks {
		b := &fi.Blocks[bi]
		last := &f.Instrs[b.End-1]
		addSucc := func(pc int) {
			if s, ok := blockIdx(pc); ok {
				b.Succs = append(b.Succs, s)
			}
		}
		switch last.Op {
		case OpJmp:
			addSucc(last.Target)
		case OpBrNZ, OpBrZ:
			addSucc(last.Target)
			addSucc(b.End)
		case OpRet, OpHalt:
			// no intra-procedural successors
		default:
			// Call return site, or a plain fall-through into the next
			// leader.
			addSucc(b.End)
		}
	}

	fi.chainTo = make([]int32, n)
	fi.chainHops = make([]int32, n)
	resolveJmpChains(f, &fi)
	return fi
}

// resolveJmpChains fills chainTo/chainHops: transfers into a run of
// unconditional Jmp instructions are collapsed to the run's final
// destination, with the number of skipped Jmp steps recorded so the fast
// path can keep instruction accounting identical to the interpreter.
// Cycles (jmp-to-self loops) resolve to identity.
func resolveJmpChains(f *Func, fi *FuncIR) {
	n := len(f.Instrs)
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, n)
	var resolve func(pc int) (int32, int32)
	resolve = func(pc int) (int32, int32) {
		if f.Instrs[pc].Op != OpJmp {
			return int32(pc), 0
		}
		switch state[pc] {
		case visiting: // cycle: leave unresolved
			return int32(pc), 0
		case done:
			return fi.chainTo[pc], fi.chainHops[pc]
		}
		state[pc] = visiting
		t := f.Instrs[pc].Target
		if t < 0 || t >= n {
			state[pc] = done
			fi.chainTo[pc], fi.chainHops[pc] = int32(pc), 0
			return int32(pc), 0
		}
		to, hops := resolve(t)
		// A cycle deeper in the chain leaves that suffix unresolved; the
		// prefix still collapses onto it.
		state[pc] = done
		fi.chainTo[pc], fi.chainHops[pc] = to, hops+1
		return to, hops + 1
	}
	for pc := 0; pc < n; pc++ {
		to, hops := resolve(pc)
		fi.chainTo[pc], fi.chainHops[pc] = to, hops
	}
}
