package isa

import (
	"reflect"
	"testing"
)

// FuzzAsmRoundTrip: WriteAsm . ParseAsm is the identity on the
// instruction streams of generator-valid programs, for any seed the
// fuzzer picks (the coverage-guided companion of TestAsmRoundTripFuzz).
func FuzzAsmRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		orig := genProgram(t, seed)
		asm := WriteAsm(orig)
		back, err := ParseAsm(asm)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, asm)
		}
		if back.NumFuncs() != orig.NumFuncs() {
			t.Fatalf("seed %d: %d funcs reparsed as %d",
				seed, orig.NumFuncs(), back.NumFuncs())
		}
		for fi := 0; fi < orig.NumFuncs(); fi++ {
			if orig.Func(fi).Name != back.Func(fi).Name {
				t.Fatalf("seed %d: func %d name %q reparsed as %q",
					seed, fi, orig.Func(fi).Name, back.Func(fi).Name)
			}
			if !reflect.DeepEqual(orig.Func(fi).Instrs, back.Func(fi).Instrs) {
				t.Fatalf("seed %d: func %d instruction streams differ", seed, fi)
			}
		}
	})
}

// FuzzParseAsm: the assembler parser must reject or accept arbitrary
// input without panicking, and anything it accepts must round-trip
// through the printer.
func FuzzParseAsm(f *testing.F) {
	f.Add("func boot:\n  ret\n")
	f.Add("func f:\n  movi r1, 42\n  send r1, r2, 4\n  ret\n")
	f.Add(WriteAsm(genProgram(f, 1)))
	f.Add("")
	f.Add("func :\n")
	// Branch-target edge cases the block compiler cares about: backward
	// jumps, a branch to the last instruction, and a jmp-to-self loop.
	f.Add("func f\n  movi r1, 3\nloop:\n  sub r1, r1, 1\n  brnz r1, loop\n  ret\n")
	f.Add("func f\n  brz r0, last\n  nop\nlast:\n  ret\n")
	f.Add("func f\n  brnz r1, out\nspin:\n  jmp spin\nout:\n  ret\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseAsm(src)
		if err != nil {
			return
		}
		printed := WriteAsm(prog)
		again, err := ParseAsm(printed)
		if err != nil {
			t.Fatalf("accepted program failed to reparse: %v\n%s", err, printed)
		}
		if printed2 := WriteAsm(again); printed2 != printed {
			t.Fatalf("printer not a fixed point:\n%s\nvs\n%s", printed, printed2)
		}
	})
}
