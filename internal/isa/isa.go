// Package isa defines the instruction set executed by the symbolic virtual
// machine, together with a Go-hosted program builder (assembler) and a
// disassembler.
//
// The ISA is a small 32-bit register machine: 16 general-purpose registers,
// word-addressed memory, structured call/return, and a handful of runtime
// services (symbolic input, assertions, packet transmission, timers). It
// plays the role LLVM bitcode plays for KLEE: node software — the Rime-like
// protocol stack and the sensornet applications — is written against this
// ISA and executed symbolically, unmodified, by package vm.
package isa

import (
	"fmt"
	"strings"
)

// Reg names one of the 16 general-purpose registers R0..R15.
type Reg uint8

// General-purpose registers. By convention R0..R2 carry handler arguments
// and R0 carries a function's return value.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 16

// BroadcastAddr is the destination address that selects link-layer
// broadcast; the network model expands it to one unicast per neighbour of
// the sending node (paper §II-B, footnote 1).
const BroadcastAddr = 0xffffffff

// Op is an instruction opcode.
type Op uint8

// Opcodes. The zero value is invalid.
const (
	OpNop Op = iota + 1

	// Data movement.
	OpMovI // Rd = Imm
	OpMov  // Rd = Ra

	// Binary arithmetic/logic: Rd = Ra <op> SrcB, where SrcB is Rb or Imm.
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	OpNot // Rd = ^Ra

	// Comparisons: Rd = (Ra <op> SrcB) ? 1 : 0.
	OpEq
	OpNe
	OpUlt
	OpUle
	OpSlt
	OpSle

	// Control flow.
	OpJmp  // pc = Target
	OpBrNZ // if Ra != 0: pc = Target (forks when Ra is symbolic)
	OpBrZ  // if Ra == 0: pc = Target (forks when Ra is symbolic)
	OpCall // call Fn; on return execution resumes at the next instruction
	OpRet  // return from the current function / end the event handler
	OpHalt // node halts permanently (drops all pending events)

	// Memory: word-addressed.
	OpLoad  // Rd = mem[Ra + Imm]
	OpStore // mem[Ra + Imm] = Rb

	// Runtime services.
	OpSym    // Rd = fresh symbolic value named Sym, width Imm bits
	OpAssert // if Ra may be zero: report violation Sym; continue with Ra != 0
	OpAssume // constrain Ra != 0; the state dies if infeasible
	OpSend   // transmit mem[Rb .. Rb+Imm) to node Ra (BroadcastAddr = broadcast)
	OpTimer  // schedule handler Fn with argument Rb at now + Ra ticks
	OpNodeID // Rd = this node's id
	OpTime   // Rd = low 32 bits of the virtual clock
	OpPrint  // append (Sym, Ra) to the state's diagnostic trace
)

var opNames = map[Op]string{
	OpNop: "nop", OpMovI: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpUDiv: "udiv", OpURem: "urem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr", OpNot: "not",
	OpEq: "eq", OpNe: "ne", OpUlt: "ult", OpUle: "ule", OpSlt: "slt", OpSle: "sle",
	OpJmp: "jmp", OpBrNZ: "brnz", OpBrZ: "brz", OpCall: "call", OpRet: "ret",
	OpHalt: "halt", OpLoad: "load", OpStore: "store",
	OpSym: "sym", OpAssert: "assert", OpAssume: "assume", OpSend: "send",
	OpTimer: "timer", OpNodeID: "nodeid", OpTime: "time", OpPrint: "print",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBinary reports whether the opcode is a two-operand ALU or comparison
// instruction whose second operand may be a register or an immediate.
func (o Op) IsBinary() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpAnd, OpOr, OpXor,
		OpShl, OpLShr, OpAShr, OpEq, OpNe, OpUlt, OpUle, OpSlt, OpSle:
		return true
	}
	return false
}

// Instr is one decoded instruction. Fields are used according to the
// opcode; see the Op constants.
type Instr struct {
	Op         Op
	Rd, Ra, Rb Reg
	Imm        uint32 // immediate operand / memory offset / width / length
	BImm       bool   // binary ops: second operand is Imm, not Rb
	Target     int    // Jmp/BrNZ/BrZ: resolved instruction index
	Fn         int    // Call/Timer: resolved function index
	Sym        string // Sym: variable name; Assert/Print: message
}

// String renders the instruction in assembly-like form.
func (in Instr) String() string {
	b2 := func() string {
		if in.BImm {
			return fmt.Sprintf("#%d", in.Imm)
		}
		return fmt.Sprintf("r%d", in.Rb)
	}
	switch {
	case in.Op == OpNop || in.Op == OpRet || in.Op == OpHalt:
		return in.Op.String()
	case in.Op == OpMovI:
		return fmt.Sprintf("movi r%d, #%d", in.Rd, in.Imm)
	case in.Op == OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Ra)
	case in.Op.IsBinary():
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rd, in.Ra, b2())
	case in.Op == OpNot:
		return fmt.Sprintf("not r%d, r%d", in.Rd, in.Ra)
	case in.Op == OpJmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case in.Op == OpBrNZ:
		return fmt.Sprintf("brnz r%d, @%d", in.Ra, in.Target)
	case in.Op == OpBrZ:
		return fmt.Sprintf("brz r%d, @%d", in.Ra, in.Target)
	case in.Op == OpCall:
		return fmt.Sprintf("call fn%d", in.Fn)
	case in.Op == OpLoad:
		return fmt.Sprintf("load r%d, [r%d+%d]", in.Rd, in.Ra, in.Imm)
	case in.Op == OpStore:
		return fmt.Sprintf("store [r%d+%d], r%d", in.Ra, in.Imm, in.Rb)
	case in.Op == OpSym:
		return fmt.Sprintf("sym r%d, %q, w%d", in.Rd, in.Sym, in.Imm)
	case in.Op == OpAssert:
		return fmt.Sprintf("assert r%d, %q", in.Ra, in.Sym)
	case in.Op == OpAssume:
		return fmt.Sprintf("assume r%d", in.Ra)
	case in.Op == OpSend:
		return fmt.Sprintf("send dst=r%d, buf=r%d, len=%d", in.Ra, in.Rb, in.Imm)
	case in.Op == OpTimer:
		return fmt.Sprintf("timer fn%d, delay=r%d, arg=r%d", in.Fn, in.Ra, in.Rb)
	case in.Op == OpNodeID:
		return fmt.Sprintf("nodeid r%d", in.Rd)
	case in.Op == OpTime:
		return fmt.Sprintf("time r%d", in.Rd)
	case in.Op == OpPrint:
		return fmt.Sprintf("print %q, r%d", in.Sym, in.Ra)
	default:
		return in.Op.String()
	}
}

// Func is a named instruction sequence. Execution enters at instruction 0
// and must leave via Ret, Halt, or a backwards Jmp; falling off the end is
// a build-time error.
type Func struct {
	Name   string
	Instrs []Instr
}

// Program is an immutable, validated bundle of functions — the unit of
// software a node runs.
type Program struct {
	funcs  []Func
	byName map[string]int

	// irc caches the lazily compiled basic-block IR (see ir.go).
	// Programs are only constructed by pointer, so the sync.Once inside
	// is never copied.
	irc irCache

	// effc caches the per-function transitive effect summaries
	// (see effects.go), under the same pointer-only discipline.
	effc effCache
}

// Func returns the function at index i.
func (p *Program) Func(i int) *Func { return &p.funcs[i] }

// NumFuncs returns the number of functions.
func (p *Program) NumFuncs() int { return len(p.funcs) }

// FuncIndex returns the index of the named function, or -1 if absent.
func (p *Program) FuncIndex(name string) int {
	if i, ok := p.byName[name]; ok {
		return i
	}
	return -1
}

// Disasm renders the whole program as assembly text for diagnostics.
func (p *Program) Disasm() string {
	var sb strings.Builder
	for i := range p.funcs {
		f := &p.funcs[i]
		fmt.Fprintf(&sb, "fn%d %s:\n", i, f.Name)
		for j, in := range f.Instrs {
			fmt.Fprintf(&sb, "  %3d: %s\n", j, in.String())
		}
	}
	return sb.String()
}
