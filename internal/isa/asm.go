package isa

// Textual assembly format. Programs can be written by hand or produced by
// WriteAsm and loaded with ParseAsm; the two round-trip. The syntax is
// line-based:
//
//	; comment (also #)
//	func boot
//	  movi r3, 0
//	  load r4, r3, 2          ; rd, base, offset
//	  timer send_data, r4, r0 ; handler, delay, arg
//	  ret
//
//	func send_data
//	loop:
//	  subi r1, r1, 1
//	  brnz r1, loop
//	  send r2, r4, 5          ; dst, buf, len
//	  sym r5, "input", 8
//	  assert r6, "message"
//	  ret
//
// Registers are r0..r15; immediates are decimal or 0x-hex; binary ALU ops
// take a register or an immediate as their second operand (addi/add etc.
// are the same mnemonic — the operand form decides).

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAsm assembles the textual program source.
func ParseAsm(src string) (*Program, error) {
	p := &asmParser{b: NewBuilder()}
	for i, raw := range strings.Split(src, "\n") {
		if err := p.line(raw); err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", i+1, err)
		}
	}
	return p.b.Build()
}

type asmParser struct {
	b  *Builder
	fn *FuncBuilder
}

func (p *asmParser) line(raw string) error {
	line := raw
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		// Strip comments, but not inside string literals.
		if q := strings.IndexByte(line, '"'); q < 0 || q > i {
			line = line[:i]
		} else if end := strings.IndexByte(line[q+1:], '"'); end >= 0 {
			rest := line[q+1+end+1:]
			if j := strings.IndexAny(rest, ";#"); j >= 0 {
				line = line[:q+1+end+1+j]
			}
		}
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	if name, ok := strings.CutPrefix(line, "func "); ok {
		p.fn = p.b.Func(strings.TrimSpace(name))
		return nil
	}
	if label, ok := strings.CutSuffix(line, ":"); ok && !strings.ContainsAny(label, " \t,") {
		if p.fn == nil {
			return fmt.Errorf("label %q outside a function", label)
		}
		p.fn.Label(label)
		return nil
	}
	if p.fn == nil {
		return fmt.Errorf("instruction %q outside a function", line)
	}
	return p.instr(line)
}

// splitOperands splits on commas outside string literals.
func splitOperands(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

func (p *asmParser) instr(line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	ops := splitOperands(rest)
	f := p.fn

	reg := func(i int) (Reg, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnemonic, i+1)
		}
		return parseReg(ops[i])
	}
	imm := func(i int) (uint32, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnemonic, i+1)
		}
		return parseImm(ops[i])
	}
	str := func(i int) (string, error) {
		if i >= len(ops) {
			return "", fmt.Errorf("%s: missing operand %d", mnemonic, i+1)
		}
		s := ops[i]
		if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
			return "", fmt.Errorf("%s: operand %d: want a quoted string, got %q", mnemonic, i+1, s)
		}
		return s[1 : len(s)-1], nil
	}
	name := func(i int) (string, error) {
		if i >= len(ops) {
			return "", fmt.Errorf("%s: missing operand %d", mnemonic, i+1)
		}
		return ops[i], nil
	}

	binaryOps := map[string]Op{
		"add": OpAdd, "sub": OpSub, "mul": OpMul, "udiv": OpUDiv, "urem": OpURem,
		"and": OpAnd, "or": OpOr, "xor": OpXor,
		"shl": OpShl, "lshr": OpLShr, "ashr": OpAShr,
		"eq": OpEq, "ne": OpNe, "ult": OpUlt, "ule": OpUle, "slt": OpSlt, "sle": OpSle,
	}
	if op, ok := binaryOps[mnemonic]; ok {
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		if len(ops) < 3 {
			return fmt.Errorf("%s: missing second operand", mnemonic)
		}
		if isRegToken(ops[2]) {
			rb, err := reg(2)
			if err != nil {
				return err
			}
			f.emit(Instr{Op: op, Rd: rd, Ra: ra, Rb: rb})
		} else {
			v, err := imm(2)
			if err != nil {
				return err
			}
			f.emit(Instr{Op: op, Rd: rd, Ra: ra, Imm: v, BImm: true})
		}
		return nil
	}

	switch mnemonic {
	case "nop":
		f.Nop()
	case "ret":
		f.Ret()
	case "halt":
		f.Halt()
	case "movi":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		f.MovI(rd, v)
	case "mov":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		f.Mov(rd, ra)
	case "not":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		f.Not(rd, ra)
	case "jmp":
		label, err := name(0)
		if err != nil {
			return err
		}
		f.Jmp(label)
	case "brnz", "brz":
		ra, err := reg(0)
		if err != nil {
			return err
		}
		label, err := name(1)
		if err != nil {
			return err
		}
		if mnemonic == "brnz" {
			f.BrNZ(ra, label)
		} else {
			f.BrZ(ra, label)
		}
	case "call":
		fn, err := name(0)
		if err != nil {
			return err
		}
		f.Call(fn)
	case "load":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		off, err := imm(2)
		if err != nil {
			return err
		}
		f.Load(rd, ra, off)
	case "store":
		ra, err := reg(0)
		if err != nil {
			return err
		}
		off, err := imm(1)
		if err != nil {
			return err
		}
		rb, err := reg(2)
		if err != nil {
			return err
		}
		f.Store(ra, off, rb)
	case "sym":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		nm, err := str(1)
		if err != nil {
			return err
		}
		w, err := imm(2)
		if err != nil {
			return err
		}
		f.Sym(rd, nm, w)
	case "assert":
		ra, err := reg(0)
		if err != nil {
			return err
		}
		msg, err := str(1)
		if err != nil {
			return err
		}
		f.Assert(ra, msg)
	case "assume":
		ra, err := reg(0)
		if err != nil {
			return err
		}
		f.Assume(ra)
	case "send":
		dst, err := reg(0)
		if err != nil {
			return err
		}
		buf, err := reg(1)
		if err != nil {
			return err
		}
		length, err := imm(2)
		if err != nil {
			return err
		}
		f.Send(dst, buf, length)
	case "timer":
		fn, err := name(0)
		if err != nil {
			return err
		}
		delay, err := reg(1)
		if err != nil {
			return err
		}
		arg, err := reg(2)
		if err != nil {
			return err
		}
		f.Timer(fn, delay, arg)
	case "nodeid":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		f.NodeID(rd)
	case "time":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		f.Time(rd)
	case "print":
		msg, err := str(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		f.Print(msg, ra)
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}

func isRegToken(s string) bool {
	return len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') && s[1] >= '0' && s[1] <= '9'
}

func parseReg(s string) (Reg, error) {
	if !isRegToken(s) {
		return 0, fmt.Errorf("want a register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("invalid register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (uint32, error) {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("invalid immediate %q", s)
	}
	return uint32(v), nil
}

// WriteAsm serialises a program in the ParseAsm syntax; branch targets
// become generated labels (L<index>).
func WriteAsm(p *Program) string {
	var sb strings.Builder
	for fi := 0; fi < p.NumFuncs(); fi++ {
		f := p.Func(fi)
		if fi > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "func %s\n", f.Name)
		// Collect branch targets needing labels.
		targets := map[int]string{}
		for _, in := range f.Instrs {
			switch in.Op {
			case OpJmp, OpBrNZ, OpBrZ:
				if _, ok := targets[in.Target]; !ok {
					targets[in.Target] = fmt.Sprintf("L%d", in.Target)
				}
			}
		}
		for idx, in := range f.Instrs {
			if label, ok := targets[idx]; ok {
				fmt.Fprintf(&sb, "%s:\n", label)
			}
			sb.WriteString("  ")
			sb.WriteString(asmInstr(p, in, targets))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func asmInstr(p *Program, in Instr, targets map[int]string) string {
	r := func(reg Reg) string { return fmt.Sprintf("r%d", reg) }
	switch {
	case in.Op == OpNop:
		return "nop"
	case in.Op == OpRet:
		return "ret"
	case in.Op == OpHalt:
		return "halt"
	case in.Op == OpMovI:
		return fmt.Sprintf("movi %s, %d", r(in.Rd), in.Imm)
	case in.Op == OpMov:
		return fmt.Sprintf("mov %s, %s", r(in.Rd), r(in.Ra))
	case in.Op == OpNot:
		return fmt.Sprintf("not %s, %s", r(in.Rd), r(in.Ra))
	case in.Op.IsBinary():
		second := r(in.Rb)
		if in.BImm {
			second = strconv.FormatUint(uint64(in.Imm), 10)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Ra), second)
	case in.Op == OpJmp:
		return "jmp " + targets[in.Target]
	case in.Op == OpBrNZ:
		return fmt.Sprintf("brnz %s, %s", r(in.Ra), targets[in.Target])
	case in.Op == OpBrZ:
		return fmt.Sprintf("brz %s, %s", r(in.Ra), targets[in.Target])
	case in.Op == OpCall:
		return "call " + p.Func(in.Fn).Name
	case in.Op == OpLoad:
		return fmt.Sprintf("load %s, %s, %d", r(in.Rd), r(in.Ra), in.Imm)
	case in.Op == OpStore:
		return fmt.Sprintf("store %s, %d, %s", r(in.Ra), in.Imm, r(in.Rb))
	case in.Op == OpSym:
		return fmt.Sprintf("sym %s, %q, %d", r(in.Rd), in.Sym, in.Imm)
	case in.Op == OpAssert:
		return fmt.Sprintf("assert %s, %q", r(in.Ra), in.Sym)
	case in.Op == OpAssume:
		return "assume " + r(in.Ra)
	case in.Op == OpSend:
		return fmt.Sprintf("send %s, %s, %d", r(in.Ra), r(in.Rb), in.Imm)
	case in.Op == OpTimer:
		return fmt.Sprintf("timer %s, %s, %s", p.Func(in.Fn).Name, r(in.Ra), r(in.Rb))
	case in.Op == OpNodeID:
		return "nodeid " + r(in.Rd)
	case in.Op == OpTime:
		return "time " + r(in.Rd)
	case in.Op == OpPrint:
		return fmt.Sprintf("print %q, %s", in.Sym, r(in.Ra))
	default:
		return in.Op.String()
	}
}
