package isa

import (
	"reflect"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := ParseAsm(src)
	if err != nil {
		t.Fatalf("ParseAsm: %v", err)
	}
	return prog
}

func TestCreateBlocksLeadersAndSuccs(t *testing.T) {
	prog := mustParse(t, `
func main
  movi r1, 10
  movi r2, 0
loop:
  add r2, r2, r1
  sub r1, r1, 1
  brnz r1, loop
  ret
`)
	fir := &prog.IR().Funcs[0]
	// Expected blocks: [0,2) entry, [2,5) loop body ending in brnz, [5,6) ret.
	if len(fir.Blocks) != 3 {
		t.Fatalf("blocks = %d (%+v), want 3", len(fir.Blocks), fir.Blocks)
	}
	wantBounds := [][2]int{{0, 2}, {2, 5}, {5, 6}}
	for i, w := range wantBounds {
		b := &fir.Blocks[i]
		if b.Start != w[0] || b.End != w[1] {
			t.Errorf("block %d = [%d,%d), want [%d,%d)", i, b.Start, b.End, w[0], w[1])
		}
	}
	if !reflect.DeepEqual(fir.Blocks[0].Succs, []int{1}) {
		t.Errorf("entry succs = %v, want [1]", fir.Blocks[0].Succs)
	}
	// brnz: taken edge back to the loop, fall-through to ret.
	if !reflect.DeepEqual(fir.Blocks[1].Succs, []int{1, 2}) {
		t.Errorf("loop succs = %v, want [1 2]", fir.Blocks[1].Succs)
	}
	if len(fir.Blocks[2].Succs) != 0 {
		t.Errorf("ret succs = %v, want none", fir.Blocks[2].Succs)
	}

	// BlockIndex answers leaders only; BlockOf covers every pc.
	for _, tc := range []struct{ pc, want int }{
		{0, 0}, {2, 1}, {5, 2}, {1, -1}, {3, -1}, {-1, -1}, {6, -1},
	} {
		if got := fir.BlockIndex(tc.pc); got != tc.want {
			t.Errorf("BlockIndex(%d) = %d, want %d", tc.pc, got, tc.want)
		}
	}
	if b := fir.BlockOf(3); b == nil || b.Start != 2 {
		t.Errorf("BlockOf(3) = %+v, want the loop block", b)
	}
	if b := fir.BlockOf(9); b != nil {
		t.Errorf("BlockOf(9) = %+v, want nil", b)
	}
}

func TestBlockUseDefAndEffects(t *testing.T) {
	prog := mustParse(t, `
func main
  add r3, r1, r2
  movi r1, 7
  add r4, r1, r3
  store r0, 4, r4
  ret
`)
	b := &prog.IR().Funcs[0].Blocks[0]
	// r1 and r2 are read before any write; the r1 read at pc 2 is covered
	// by the MovI def. r0 is read by the store address.
	var wantUse, wantDef RegSet
	wantUse.Add(R0)
	wantUse.Add(R1)
	wantUse.Add(R2)
	wantDef.Add(R1)
	wantDef.Add(R3)
	wantDef.Add(R4)
	if b.Use != wantUse {
		t.Errorf("Use = %v, want %v", b.Use, wantUse)
	}
	if b.Def != wantDef {
		t.Errorf("Def = %v, want %v", b.Def, wantDef)
	}
	if !b.TouchesMem || b.Sends || b.MayFork || b.HasSym {
		t.Errorf("effects = mem:%v sends:%v fork:%v sym:%v, want mem only",
			b.TouchesMem, b.Sends, b.MayFork, b.HasSym)
	}
	if !b.Fast {
		t.Error("all-ALU block with store should be fast")
	}
}

func TestBlockEffectFlags(t *testing.T) {
	prog := mustParse(t, `
func main
  sym r1, "x", 8
  send r1, r2, 4
  brnz r1, out
out:
  ret
`)
	fir := &prog.IR().Funcs[0]
	b := &fir.Blocks[0]
	if !b.HasSym || !b.Sends || !b.TouchesMem || !b.MayFork {
		t.Errorf("flags = sym:%v sends:%v mem:%v fork:%v, want all true",
			b.HasSym, b.Sends, b.TouchesMem, b.MayFork)
	}
	if b.Fast {
		t.Error("block with sym+send must not be fast")
	}
}

func TestConstantFolding(t *testing.T) {
	prog := mustParse(t, `
func main
  movi r1, 6
  movi r2, 7
  mul r3, r1, r2
  add r4, r3, 58
  mov r5, r4
  not r6, r5
  add r7, r6, r0
  ret
`)
	b := &prog.IR().Funcs[0].Blocks[0]
	if b.Folded == nil {
		t.Fatal("no folded verdicts on a MovI-fed chain")
	}
	want := map[int]uint64{
		2: 42,                         // 6*7
		3: 100,                        // 42+58
		4: 100,                        // mov copies the known value
		5: ^uint64(100) & (1<<32 - 1), // not
	}
	for idx, val := range want {
		fv := b.Folded[idx-b.Start]
		if !fv.Known || fv.Val != val {
			t.Errorf("folded[%d] = %+v, want known %d", idx, fv, val)
		}
	}
	// add r7, r6, r0 reads r0 (unknown at load time): not folded.
	if b.Folded[6].Known {
		t.Errorf("folded[6] = %+v, want unknown (depends on r0)", b.Folded[6])
	}
}

func TestResolveJmpChains(t *testing.T) {
	// jmp chain a -> b -> c -> ret; a transfer to 1 should land at 4
	// having executed 3 intermediate jmps... build it directly so the
	// chain shape is explicit:
	//   0: brz r0, l1   (so instructions 1..3 are reachable targets)
	//   1: jmp l2
	//   2: jmp l3
	//   3: jmp l4
	//   4: ret
	prog := mustParse(t, `
func main
  brz r0, l1
l1:
  jmp l2
l2:
  jmp l3
l3:
  jmp l4
l4:
  ret
`)
	fir := &prog.IR().Funcs[0]
	for _, tc := range []struct{ target, final, hops int }{
		{1, 4, 3},
		{2, 4, 2},
		{3, 4, 1},
		{4, 4, 0}, // not a jmp: identity
		{0, 0, 0}, // brz: identity
		{-1, -1, 0},
		{99, 99, 0},
	} {
		final, hops := fir.ResolveJmp(tc.target)
		if final != tc.final || hops != tc.hops {
			t.Errorf("ResolveJmp(%d) = (%d,%d), want (%d,%d)",
				tc.target, final, hops, tc.final, tc.hops)
		}
	}
}

func TestResolveJmpSelfLoop(t *testing.T) {
	// A jmp-to-self cycle must resolve to identity, not hang.
	prog := mustParse(t, `
func main
  brz r0, spin
  ret
spin:
  jmp spin
`)
	fir := &prog.IR().Funcs[0]
	// One hop lands back on the same jmp: the chain "collapses" to the
	// instruction itself with exact accounting, and resolution
	// terminates instead of spinning.
	final, hops := fir.ResolveJmp(2)
	if final != 2 || hops != 1 {
		t.Errorf("self-loop ResolveJmp = (%d,%d), want (2,1)", final, hops)
	}
}

func TestResolveJmpChainIntoCycle(t *testing.T) {
	// A chain whose suffix is a 2-cycle: the prefix collapses onto the
	// cycle head; the cycle itself stays identity.
	//   0: jmp l1
	//   1: jmp l2   (l1)
	//   2: jmp l1   (l2) -- 1 and 2 form a cycle
	prog := mustParse(t, `
func main
  jmp l1
l1:
  jmp l2
l2:
  jmp l1
`)
	fir := &prog.IR().Funcs[0]
	// Instruction 0's chain enters the cycle; wherever it lands, the
	// hop count must equal the number of jmp instructions actually
	// executed to get there, and resolution must terminate.
	final, hops := fir.ResolveJmp(0)
	if hops < 0 || final < 0 || final > 2 {
		t.Errorf("cycle-entering ResolveJmp = (%d,%d)", final, hops)
	}
	// Walk the real jmp chain hops steps from 0 and confirm we land on
	// final — the accounting invariant the fast path relies on.
	pc := 0
	for i := 0; i < hops; i++ {
		pc = prog.Func(0).Instrs[pc].Target
	}
	if pc != final {
		t.Errorf("after %d real hops from 0: pc=%d, ResolveJmp says %d", hops, pc, final)
	}
}

func TestBackwardJumpAndJumpToLast(t *testing.T) {
	// Backward jmp as function terminator (an infinite loop is
	// build-valid) and a branch targeting the last instruction.
	prog := mustParse(t, `
func main
  movi r1, 1
  brnz r1, last
top:
  jmp top
last:
  ret
`)
	fir := &prog.IR().Funcs[0]
	// Leaders: 0 (entry), 2 (jmp target + post-branch), 3 (branch
	// target = last instruction).
	if len(fir.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(fir.Blocks))
	}
	// The backward jmp block's successor is itself.
	jb := fir.Blocks[fir.BlockIndex(2)]
	if !reflect.DeepEqual(jb.Succs, []int{fir.BlockIndex(2)}) {
		t.Errorf("self-loop jmp succs = %v", jb.Succs)
	}
	// The branch to the last instruction produced a leader there, and
	// its single-instruction block terminates the CFG.
	li := fir.BlockIndex(3)
	if li < 0 {
		t.Fatal("jump-to-last-instruction target is not a leader")
	}
	lb := &fir.Blocks[li]
	if lb.Len() != 1 || len(lb.Succs) != 0 {
		t.Errorf("last block = %+v, want single ret with no succs", lb)
	}
}

func TestLivenessInterprocedural(t *testing.T) {
	prog := mustParse(t, `
func main
  movi r1, 5
  call helper
  ret

func helper
  add r0, r1, r2
  ret
`)
	ir := prog.IR()
	// helper reads r1 and r2 before writing.
	var wantHelper RegSet
	wantHelper.Add(R1)
	wantHelper.Add(R2)
	if ir.Funcs[1].LiveIn != wantHelper {
		t.Errorf("helper LiveIn = %v, want %v", ir.Funcs[1].LiveIn, wantHelper)
	}
	// main defines r1 before the call, so only r2 is live-in
	// transitively.
	var wantMain RegSet
	wantMain.Add(R2)
	if ir.Funcs[0].LiveIn != wantMain {
		t.Errorf("main LiveIn = %v, want %v", ir.Funcs[0].LiveIn, wantMain)
	}
}

func TestLivenessLoop(t *testing.T) {
	prog := mustParse(t, `
func main
loop:
  add r2, r2, r1
  sub r1, r1, 1
  brnz r1, loop
  ret
`)
	fir := &prog.IR().Funcs[0]
	var want RegSet
	want.Add(R1)
	want.Add(R2)
	if fir.LiveIn != want {
		t.Errorf("LiveIn = %v, want %v", fir.LiveIn, want)
	}
}

func TestShardableSitesDirect(t *testing.T) {
	prog := mustParse(t, `
func main
  sym r1, "flip", 1
  movi r2, 3
  brnz r2, concrete
concrete:
  brnz r1, tainted
tainted:
  ret
`)
	sites := prog.ShardableSites()
	if len(sites) != 1 {
		t.Fatalf("sites = %v, want exactly the r1 branch", sites)
	}
	s := sites[0]
	if s.Fn != 0 || s.FnName != "main" || s.PC != 3 {
		t.Errorf("site = %+v, want main@3", s)
	}
	if !reflect.DeepEqual(s.Syms, []string{"flip"}) {
		t.Errorf("syms = %v, want [flip]", s.Syms)
	}
}

func TestShardableSitesThroughMemoryAndCalls(t *testing.T) {
	prog := mustParse(t, `
func main
  sym r1, "a", 8
  store r0, 4, r1
  call check
  ret

func check
  load r3, r0, 4
  brnz r3, yes
yes:
  sym r4, "b", 8
  mov r5, r4
  add r6, r5, 1
  brnz r6, also
also:
  ret
`)
	sites := prog.ShardableSites()
	if len(sites) != 2 {
		t.Fatalf("sites = %v, want 2 (load-tainted and derived)", sites)
	}
	// (fn=1, pc=1): branch on a value loaded from tainted memory.
	if sites[0].Fn != 1 || sites[0].PC != 1 || !reflect.DeepEqual(sites[0].Syms, []string{"a"}) {
		t.Errorf("site 0 = %+v", sites[0])
	}
	// (fn=1, pc=5): branch on arithmetic derived from sym "b".
	if sites[1].Fn != 1 || sites[1].PC != 5 || !reflect.DeepEqual(sites[1].Syms, []string{"b"}) {
		t.Errorf("site 1 = %+v", sites[1])
	}
}

func TestShardableSitesNoneOnConcreteProgram(t *testing.T) {
	prog := mustParse(t, `
func main
  movi r1, 10
loop:
  sub r1, r1, 1
  brnz r1, loop
  ret
`)
	if sites := prog.ShardableSites(); len(sites) != 0 {
		t.Errorf("concrete program reported sites %v", sites)
	}
}

func TestRegSetBasics(t *testing.T) {
	var rs RegSet
	if !rs.Empty() || rs.Count() != 0 {
		t.Error("zero set not empty")
	}
	rs.Add(R0)
	rs.Add(R5)
	rs.Add(R15)
	if rs.Empty() || rs.Count() != 3 || !rs.Has(R5) || rs.Has(R6) {
		t.Errorf("set = %v", rs)
	}
	if got := rs.String(); got != "{r0,r5,r15}" {
		t.Errorf("String = %q", got)
	}
}

func TestIRSharedAcrossCalls(t *testing.T) {
	prog := mustParse(t, "func main\n  ret\n")
	if prog.IR() != prog.IR() {
		t.Error("IR() not cached")
	}
}

func TestEvalALUEdgeCases(t *testing.T) {
	const mask = 1<<32 - 1
	for _, tc := range []struct {
		op      Op
		a, b, w uint64
	}{
		{OpUDiv, 7, 0, mask}, // div by zero: all-ones
		{OpURem, 7, 0, 7},    // rem by zero: dividend
		{OpShl, 1, 32, 0},    // oversized shift
		{OpShl, 1, 31, 1 << 31},
		{OpLShr, mask, 33, 0},
		{OpAShr, 0x80000000, 4, 0xf8000000}, // sign-fill
		{OpAShr, 0x80000000, 40, mask},      // oversized: all sign bits
		{OpAShr, 0x40000000, 40, 0},
		{OpAdd, mask, 1, 0}, // wraparound
		{OpSub, 0, 1, mask},
		{OpMul, 1 << 20, 1 << 20, 0}, // high bits dropped
		{OpSlt, 0xffffffff, 0, 1},    // -1 < 0 signed
		{OpUlt, 0xffffffff, 0, 0},
		{OpSle, 0x80000000, 0x7fffffff, 1},
		{OpEq, 5, 5, 1},
		{OpNe, 5, 5, 0},
	} {
		if got := EvalALU(tc.op, tc.a, tc.b); got != tc.w {
			t.Errorf("EvalALU(%v, %#x, %#x) = %#x, want %#x", tc.op, tc.a, tc.b, got, tc.w)
		}
	}
}
