package isa

import (
	"errors"
	"fmt"
)

// Builder assembles a Program function by function. Typical use:
//
//	b := isa.NewBuilder()
//	f := b.Func("boot")
//	f.MovI(isa.R0, 100)
//	f.Label("loop")
//	f.SubI(isa.R0, isa.R0, 1)
//	f.BrNZ(isa.R0, "loop")
//	f.Ret()
//	prog, err := b.Build()
//
// Labels are local to a function. Call targets and timer handlers are
// referenced by function name and resolved at Build time, so functions may
// be declared in any order.
type Builder struct {
	funcs []*FuncBuilder
	errs  []error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// Func starts (or returns the existing) function builder with this name.
func (b *Builder) Func(name string) *FuncBuilder {
	for _, f := range b.funcs {
		if f.name == name {
			return f
		}
	}
	f := &FuncBuilder{name: name, prog: b, labels: make(map[string]int)}
	b.funcs = append(b.funcs, f)
	return f
}

// Build resolves labels and call targets, validates the program, and
// returns the immutable Program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.funcs) == 0 {
		return nil, errors.New("isa: program has no functions")
	}
	byName := make(map[string]int, len(b.funcs))
	for i, f := range b.funcs {
		byName[f.name] = i
	}
	prog := &Program{byName: byName}
	for fi, f := range b.funcs {
		instrs := append([]Instr(nil), f.instrs...)
		// Resolve label references.
		for _, ref := range f.labelRefs {
			target, ok := f.labels[ref.label]
			if !ok {
				return nil, fmt.Errorf("isa: %s: undefined label %q", f.name, ref.label)
			}
			instrs[ref.instr].Target = target
		}
		// Resolve function references.
		for _, ref := range f.fnRefs {
			target, ok := byName[ref.fn]
			if !ok {
				return nil, fmt.Errorf("isa: %s: call to undefined function %q", f.name, ref.fn)
			}
			instrs[ref.instr].Fn = target
		}
		if err := validateFunc(f.name, instrs, len(b.funcs)); err != nil {
			return nil, err
		}
		prog.funcs = append(prog.funcs, Func{Name: b.funcs[fi].name, Instrs: instrs})
	}
	return prog, nil
}

func validateFunc(name string, instrs []Instr, numFuncs int) error {
	if len(instrs) == 0 {
		return fmt.Errorf("isa: %s: empty function", name)
	}
	for i, in := range instrs {
		if in.Op == 0 {
			return fmt.Errorf("isa: %s:%d: zero opcode", name, i)
		}
		if int(in.Rd) >= NumRegs || int(in.Ra) >= NumRegs || int(in.Rb) >= NumRegs {
			return fmt.Errorf("isa: %s:%d: register out of range", name, i)
		}
		switch in.Op {
		case OpJmp, OpBrNZ, OpBrZ:
			if in.Target < 0 || in.Target >= len(instrs) {
				return fmt.Errorf("isa: %s:%d: branch target %d out of range", name, i, in.Target)
			}
		case OpCall, OpTimer:
			if in.Fn < 0 || in.Fn >= numFuncs {
				return fmt.Errorf("isa: %s:%d: function index %d out of range", name, i, in.Fn)
			}
		case OpSym:
			if in.Imm < 1 || in.Imm > 64 {
				return fmt.Errorf("isa: %s:%d: symbolic width %d out of range", name, i, in.Imm)
			}
			if in.Sym == "" {
				return fmt.Errorf("isa: %s:%d: symbolic input needs a name", name, i)
			}
		}
	}
	last := instrs[len(instrs)-1]
	switch last.Op {
	case OpRet, OpHalt, OpJmp:
	default:
		return fmt.Errorf("isa: %s: control flow falls off the end (last op %s)", name, last.Op)
	}
	return nil
}

type labelRef struct {
	instr int
	label string
}

type fnRef struct {
	instr int
	fn    string
}

// FuncBuilder accumulates the instructions of one function.
type FuncBuilder struct {
	name      string
	prog      *Builder
	instrs    []Instr
	labels    map[string]int
	labelRefs []labelRef
	fnRefs    []fnRef
}

// Name returns the function's name.
func (f *FuncBuilder) Name() string { return f.name }

// Len returns the number of instructions emitted so far (the index the
// next instruction will get).
func (f *FuncBuilder) Len() int { return len(f.instrs) }

func (f *FuncBuilder) emit(in Instr) *FuncBuilder {
	f.instrs = append(f.instrs, in)
	return f
}

// Label binds a label name to the next instruction's index.
func (f *FuncBuilder) Label(name string) *FuncBuilder {
	if _, dup := f.labels[name]; dup {
		f.prog.errs = append(f.prog.errs,
			fmt.Errorf("isa: %s: duplicate label %q", f.name, name))
	}
	f.labels[name] = len(f.instrs)
	return f
}

// Nop emits a no-op.
func (f *FuncBuilder) Nop() *FuncBuilder { return f.emit(Instr{Op: OpNop}) }

// MovI emits rd = imm.
func (f *FuncBuilder) MovI(rd Reg, imm uint32) *FuncBuilder {
	return f.emit(Instr{Op: OpMovI, Rd: rd, Imm: imm})
}

// Mov emits rd = ra.
func (f *FuncBuilder) Mov(rd, ra Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpMov, Rd: rd, Ra: ra})
}

func (f *FuncBuilder) bin(op Op, rd, ra, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

func (f *FuncBuilder) binI(op Op, rd, ra Reg, imm uint32) *FuncBuilder {
	return f.emit(Instr{Op: op, Rd: rd, Ra: ra, Imm: imm, BImm: true})
}

// Add emits rd = ra + rb.
func (f *FuncBuilder) Add(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpAdd, rd, ra, rb) }

// AddI emits rd = ra + imm.
func (f *FuncBuilder) AddI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpAdd, rd, ra, imm) }

// Sub emits rd = ra - rb.
func (f *FuncBuilder) Sub(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpSub, rd, ra, rb) }

// SubI emits rd = ra - imm.
func (f *FuncBuilder) SubI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpSub, rd, ra, imm) }

// Mul emits rd = ra * rb.
func (f *FuncBuilder) Mul(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpMul, rd, ra, rb) }

// MulI emits rd = ra * imm.
func (f *FuncBuilder) MulI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpMul, rd, ra, imm) }

// UDiv emits rd = ra / rb (unsigned; /0 = all-ones).
func (f *FuncBuilder) UDiv(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpUDiv, rd, ra, rb) }

// URem emits rd = ra % rb (unsigned; %0 = ra).
func (f *FuncBuilder) URem(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpURem, rd, ra, rb) }

// URemI emits rd = ra % imm.
func (f *FuncBuilder) URemI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpURem, rd, ra, imm) }

// And emits rd = ra & rb.
func (f *FuncBuilder) And(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpAnd, rd, ra, rb) }

// AndI emits rd = ra & imm.
func (f *FuncBuilder) AndI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpAnd, rd, ra, imm) }

// Or emits rd = ra | rb.
func (f *FuncBuilder) Or(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpOr, rd, ra, rb) }

// OrI emits rd = ra | imm.
func (f *FuncBuilder) OrI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpOr, rd, ra, imm) }

// Xor emits rd = ra ^ rb.
func (f *FuncBuilder) Xor(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpXor, rd, ra, rb) }

// XorI emits rd = ra ^ imm.
func (f *FuncBuilder) XorI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpXor, rd, ra, imm) }

// Shl emits rd = ra << rb.
func (f *FuncBuilder) Shl(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpShl, rd, ra, rb) }

// ShlI emits rd = ra << imm.
func (f *FuncBuilder) ShlI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpShl, rd, ra, imm) }

// LShr emits rd = ra >> rb (logical).
func (f *FuncBuilder) LShr(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpLShr, rd, ra, rb) }

// LShrI emits rd = ra >> imm (logical).
func (f *FuncBuilder) LShrI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpLShr, rd, ra, imm) }

// AShr emits rd = ra >> rb (arithmetic).
func (f *FuncBuilder) AShr(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpAShr, rd, ra, rb) }

// Not emits rd = ^ra.
func (f *FuncBuilder) Not(rd, ra Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpNot, Rd: rd, Ra: ra})
}

// Eq emits rd = (ra == rb).
func (f *FuncBuilder) Eq(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpEq, rd, ra, rb) }

// EqI emits rd = (ra == imm).
func (f *FuncBuilder) EqI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpEq, rd, ra, imm) }

// Ne emits rd = (ra != rb).
func (f *FuncBuilder) Ne(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpNe, rd, ra, rb) }

// NeI emits rd = (ra != imm).
func (f *FuncBuilder) NeI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpNe, rd, ra, imm) }

// Ult emits rd = (ra <u rb).
func (f *FuncBuilder) Ult(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpUlt, rd, ra, rb) }

// UltI emits rd = (ra <u imm).
func (f *FuncBuilder) UltI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpUlt, rd, ra, imm) }

// Ule emits rd = (ra <=u rb).
func (f *FuncBuilder) Ule(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpUle, rd, ra, rb) }

// UleI emits rd = (ra <=u imm).
func (f *FuncBuilder) UleI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpUle, rd, ra, imm) }

// Slt emits rd = (ra <s rb).
func (f *FuncBuilder) Slt(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpSlt, rd, ra, rb) }

// SltI emits rd = (ra <s imm).
func (f *FuncBuilder) SltI(rd, ra Reg, imm uint32) *FuncBuilder { return f.binI(OpSlt, rd, ra, imm) }

// Sle emits rd = (ra <=s rb).
func (f *FuncBuilder) Sle(rd, ra, rb Reg) *FuncBuilder { return f.bin(OpSle, rd, ra, rb) }

// Jmp emits an unconditional jump to the label.
func (f *FuncBuilder) Jmp(label string) *FuncBuilder {
	f.labelRefs = append(f.labelRefs, labelRef{instr: len(f.instrs), label: label})
	return f.emit(Instr{Op: OpJmp})
}

// BrNZ emits a branch to the label taken when ra != 0.
func (f *FuncBuilder) BrNZ(ra Reg, label string) *FuncBuilder {
	f.labelRefs = append(f.labelRefs, labelRef{instr: len(f.instrs), label: label})
	return f.emit(Instr{Op: OpBrNZ, Ra: ra})
}

// BrZ emits a branch to the label taken when ra == 0.
func (f *FuncBuilder) BrZ(ra Reg, label string) *FuncBuilder {
	f.labelRefs = append(f.labelRefs, labelRef{instr: len(f.instrs), label: label})
	return f.emit(Instr{Op: OpBrZ, Ra: ra})
}

// Call emits a call to the named function.
func (f *FuncBuilder) Call(fn string) *FuncBuilder {
	f.fnRefs = append(f.fnRefs, fnRef{instr: len(f.instrs), fn: fn})
	return f.emit(Instr{Op: OpCall})
}

// Ret emits a return.
func (f *FuncBuilder) Ret() *FuncBuilder { return f.emit(Instr{Op: OpRet}) }

// Halt emits a permanent node halt.
func (f *FuncBuilder) Halt() *FuncBuilder { return f.emit(Instr{Op: OpHalt}) }

// Load emits rd = mem[ra + off].
func (f *FuncBuilder) Load(rd, ra Reg, off uint32) *FuncBuilder {
	return f.emit(Instr{Op: OpLoad, Rd: rd, Ra: ra, Imm: off})
}

// Store emits mem[ra + off] = rb.
func (f *FuncBuilder) Store(ra Reg, off uint32, rb Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpStore, Ra: ra, Imm: off, Rb: rb})
}

// Sym emits rd = fresh symbolic input. The runtime appends a per-node,
// per-occurrence suffix to name so inputs are unique across states.
func (f *FuncBuilder) Sym(rd Reg, name string, width uint32) *FuncBuilder {
	return f.emit(Instr{Op: OpSym, Rd: rd, Imm: width, Sym: name})
}

// Assert emits a check that ra != 0, reporting msg on violation.
func (f *FuncBuilder) Assert(ra Reg, msg string) *FuncBuilder {
	return f.emit(Instr{Op: OpAssert, Ra: ra, Sym: msg})
}

// Assume emits a constraint that ra != 0.
func (f *FuncBuilder) Assume(ra Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpAssume, Ra: ra})
}

// Send emits a packet transmission of len words at mem[rb] to node ra.
func (f *FuncBuilder) Send(dst, buf Reg, length uint32) *FuncBuilder {
	return f.emit(Instr{Op: OpSend, Ra: dst, Rb: buf, Imm: length})
}

// Timer emits scheduling of handler fn at now + ra ticks with argument rb.
func (f *FuncBuilder) Timer(fn string, delay, arg Reg) *FuncBuilder {
	f.fnRefs = append(f.fnRefs, fnRef{instr: len(f.instrs), fn: fn})
	return f.emit(Instr{Op: OpTimer, Ra: delay, Rb: arg})
}

// NodeID emits rd = own node id.
func (f *FuncBuilder) NodeID(rd Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpNodeID, Rd: rd})
}

// Time emits rd = low 32 bits of the virtual clock.
func (f *FuncBuilder) Time(rd Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpTime, Rd: rd})
}

// Print emits a diagnostic trace entry (msg, ra).
func (f *FuncBuilder) Print(msg string, ra Reg) *FuncBuilder {
	return f.emit(Instr{Op: OpPrint, Ra: ra, Sym: msg})
}
