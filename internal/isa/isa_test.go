package isa

import (
	"strings"
	"testing"
)

func TestBuildSimpleProgram(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.MovI(R0, 10)
	f.Label("loop")
	f.SubI(R0, R0, 1)
	f.BrNZ(R0, "loop")
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if prog.NumFuncs() != 1 {
		t.Fatalf("NumFuncs = %d, want 1", prog.NumFuncs())
	}
	main := prog.Func(0)
	if main.Name != "main" {
		t.Errorf("Func(0).Name = %q", main.Name)
	}
	br := main.Instrs[2]
	if br.Op != OpBrNZ || br.Target != 1 {
		t.Errorf("branch = %+v, want BrNZ to 1", br)
	}
}

func TestLabelForwardReference(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.BrZ(R0, "end")
	f.MovI(R1, 1)
	f.Label("end")
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := prog.Func(0).Instrs[0].Target; got != 2 {
		t.Errorf("forward label resolved to %d, want 2", got)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.Jmp("nowhere")
	f.Ret()
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted undefined label")
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.Label("x")
	f.Nop()
	f.Label("x")
	f.Ret()
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted duplicate label")
	}
}

func TestCallResolution(t *testing.T) {
	b := NewBuilder()
	main := b.Func("main")
	main.Call("helper") // declared later: order must not matter
	main.Ret()
	helper := b.Func("helper")
	helper.MovI(R0, 42)
	helper.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	call := prog.Func(0).Instrs[0]
	if call.Op != OpCall || call.Fn != prog.FuncIndex("helper") {
		t.Errorf("call = %+v", call)
	}
}

func TestUndefinedCall(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.Call("missing")
	f.Ret()
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted call to undefined function")
	}
}

func TestFallOffEnd(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.MovI(R0, 1)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted function without terminator")
	}
}

func TestEmptyFunction(t *testing.T) {
	b := NewBuilder()
	b.Func("main")
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted empty function")
	}
}

func TestEmptyProgram(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("Build accepted empty program")
	}
}

func TestSymValidation(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.Sym(R0, "x", 0)
	f.Ret()
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted symbolic width 0")
	}

	b2 := NewBuilder()
	f2 := b2.Func("main")
	f2.Sym(R0, "", 32)
	f2.Ret()
	if _, err := b2.Build(); err == nil {
		t.Error("Build accepted unnamed symbolic input")
	}
}

func TestFuncIndex(t *testing.T) {
	b := NewBuilder()
	b.Func("a").Ret()
	b.Func("b").Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if prog.FuncIndex("a") != 0 || prog.FuncIndex("b") != 1 {
		t.Error("FuncIndex misresolved")
	}
	if prog.FuncIndex("zzz") != -1 {
		t.Error("FuncIndex of missing function should be -1")
	}
}

func TestFuncReturnsExisting(t *testing.T) {
	b := NewBuilder()
	f1 := b.Func("main")
	f2 := b.Func("main")
	if f1 != f2 {
		t.Error("Func returned a new builder for an existing name")
	}
}

func TestDisasm(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.MovI(R1, 7)
	f.AddI(R2, R1, 3)
	f.Send(R0, R2, 4)
	f.Assert(R1, "r1 nonzero")
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	asm := prog.Disasm()
	for _, want := range []string{"movi r1, #7", "add r2, r1, #3",
		"send dst=r0, buf=r2, len=4", `assert r1, "r1 nonzero"`, "ret"} {
		if !strings.Contains(asm, want) {
			t.Errorf("Disasm missing %q in:\n%s", want, asm)
		}
	}
}

func TestInstrStringCoverage(t *testing.T) {
	// Every opcode must render without the fallback formatting.
	ops := []Instr{
		{Op: OpNop}, {Op: OpMovI, Rd: R1, Imm: 2}, {Op: OpMov, Rd: R1, Ra: R2},
		{Op: OpAdd, Rd: R1, Ra: R2, Rb: R3}, {Op: OpNot, Rd: R1, Ra: R2},
		{Op: OpEq, Rd: R1, Ra: R2, Imm: 7, BImm: true},
		{Op: OpJmp, Target: 3}, {Op: OpBrNZ, Ra: R1, Target: 4},
		{Op: OpBrZ, Ra: R1, Target: 5}, {Op: OpCall, Fn: 1}, {Op: OpRet},
		{Op: OpHalt}, {Op: OpLoad, Rd: R1, Ra: R2, Imm: 8},
		{Op: OpStore, Ra: R1, Imm: 4, Rb: R2},
		{Op: OpSym, Rd: R1, Sym: "x", Imm: 32},
		{Op: OpAssert, Ra: R1, Sym: "m"}, {Op: OpAssume, Ra: R1},
		{Op: OpSend, Ra: R1, Rb: R2, Imm: 3},
		{Op: OpTimer, Fn: 0, Ra: R1, Rb: R2},
		{Op: OpNodeID, Rd: R1}, {Op: OpTime, Rd: R1},
		{Op: OpPrint, Ra: R1, Sym: "v"},
	}
	for _, in := range ops {
		s := in.String()
		if strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d renders as fallback %q", in.Op, s)
		}
	}
}
