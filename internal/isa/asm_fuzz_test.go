package isa

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genProgram builds a random but valid program with the given seed,
// covering every instruction form the serialiser emits.
func genProgram(t testing.TB, seed int64) *Program {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	nFuncs := 1 + rng.Intn(3)
	names := make([]string, nFuncs)
	for i := range names {
		names[i] = fmt.Sprintf("fn%d", i)
	}
	for fi := 0; fi < nFuncs; fi++ {
		f := b.Func(names[fi])
		nInstr := 1 + rng.Intn(12)
		nLabels := 0
		for i := 0; i < nInstr; i++ {
			r := func() Reg { return Reg(rng.Intn(NumRegs)) }
			switch rng.Intn(14) {
			case 0:
				f.Nop()
			case 1:
				f.MovI(r(), rng.Uint32())
			case 2:
				f.Mov(r(), r())
			case 3:
				f.Add(r(), r(), r())
			case 4:
				f.SubI(r(), r(), rng.Uint32()%1000)
			case 5:
				f.Not(r(), r())
			case 6:
				f.Ult(r(), r(), r())
			case 7:
				f.Load(r(), r(), rng.Uint32()%64)
			case 8:
				f.Store(r(), rng.Uint32()%64, r())
			case 9:
				f.Sym(r(), fmt.Sprintf("s%d", rng.Intn(4)), uint32(1+rng.Intn(64)))
			case 10:
				f.Assert(r(), fmt.Sprintf("msg %d", rng.Intn(9)))
			case 11:
				f.Send(r(), r(), rng.Uint32()%8)
			case 12:
				f.Timer(names[rng.Intn(nFuncs)], r(), r())
			case 13:
				// Backward branch to a fresh label placed right here:
				// always resolvable, trivially terminating.
				label := fmt.Sprintf("l%d_%d", fi, nLabels)
				nLabels++
				f.Label(label)
				f.BrZ(r(), label)
			}
		}
		f.Ret()
	}
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	return prog
}

// TestAsmRoundTripFuzz: WriteAsm . ParseAsm is the identity on
// instruction streams for random programs.
func TestAsmRoundTripFuzz(t *testing.T) {
	f := func(seed int64) bool {
		orig := genProgram(t, seed)
		asm := WriteAsm(orig)
		back, err := ParseAsm(asm)
		if err != nil {
			t.Logf("seed %d: reparse: %v\n%s", seed, err, asm)
			return false
		}
		if back.NumFuncs() != orig.NumFuncs() {
			return false
		}
		for fi := 0; fi < orig.NumFuncs(); fi++ {
			if orig.Func(fi).Name != back.Func(fi).Name {
				return false
			}
			if !reflect.DeepEqual(orig.Func(fi).Instrs, back.Func(fi).Instrs) {
				t.Logf("seed %d func %d streams differ", seed, fi)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDisasmNeverPanics: the diagnostic printer accepts every generated
// program.
func TestDisasmNeverPanics(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		prog := genProgram(t, seed)
		if prog.Disasm() == "" {
			t.Fatalf("seed %d: empty disassembly", seed)
		}
	}
}
