package isa

// BUILD phase of the load-time compiler (see ir.go for CREATE): walk the
// blocks the CREATE phase cut and precompute everything the vm's fast
// path and the static passes consume — register def/use sets, effect
// summaries, MovI-fed constant folding, fast-path (concretizability)
// eligibility, and the interprocedural read-before-write liveness that
// lets the event dispatcher skip zeroing registers a handler never
// reads.

import (
	"fmt"
	"sort"
)

// compileProgram runs CREATE then BUILD over every function, then the
// whole-program fixpoint passes (liveness) that need all functions'
// block structure at once.
func compileProgram(p *Program) *ProgIR {
	ir := &ProgIR{Funcs: make([]FuncIR, len(p.funcs))}
	for fi := range p.funcs {
		ir.Funcs[fi] = createBlocks(&p.funcs[fi])
		buildBlocks(&p.funcs[fi], &ir.Funcs[fi])
	}
	computeLiveness(p, ir)
	return ir
}

// regUses returns the registers an instruction reads.
func regUses(in *Instr) RegSet {
	var rs RegSet
	switch {
	case in.Op == OpMov || in.Op == OpNot || in.Op == OpLoad:
		rs.Add(in.Ra)
	case in.Op.IsBinary():
		rs.Add(in.Ra)
		if !in.BImm {
			rs.Add(in.Rb)
		}
	case in.Op == OpBrNZ || in.Op == OpBrZ || in.Op == OpAssert ||
		in.Op == OpAssume || in.Op == OpPrint:
		rs.Add(in.Ra)
	case in.Op == OpStore || in.Op == OpSend || in.Op == OpTimer:
		rs.Add(in.Ra)
		rs.Add(in.Rb)
	}
	return rs
}

// regDef returns the register an instruction writes, if any.
func regDef(in *Instr) (Reg, bool) {
	switch {
	case in.Op == OpMovI || in.Op == OpMov || in.Op == OpNot ||
		in.Op == OpLoad || in.Op == OpSym || in.Op == OpNodeID ||
		in.Op == OpTime:
		return in.Rd, true
	case in.Op.IsBinary():
		return in.Rd, true
	}
	return 0, false
}

// fastEligible reports whether the opcode can run on the vm's concrete
// straight-line fast path: its whole effect is on registers and memory
// (plus a concrete control transfer) and is computable on raw uint64s.
// Everything touching the symbolic runtime — fresh symbolic values,
// constraints, packet sends, timers, calls, halts, trace output — stays
// on the interpreter.
func fastEligible(in *Instr) bool {
	switch in.Op {
	case OpNop, OpMovI, OpMov, OpNot, OpLoad, OpStore, OpNodeID, OpTime,
		OpJmp, OpBrNZ, OpBrZ, OpRet:
		return true
	}
	return in.Op.IsBinary()
}

// buildBlocks fills one function's per-block metadata in place.
func buildBlocks(f *Func, fi *FuncIR) {
	n := len(f.Instrs)
	for bi := range fi.Blocks {
		b := &fi.Blocks[bi]
		var known [NumRegs]FoldedVal
		folded := make([]FoldedVal, b.Len())
		anyFolded := false
		fast := true
		for idx := b.Start; idx < b.End; idx++ {
			in := &f.Instrs[idx]
			for r := Reg(0); r < NumRegs; r++ {
				if regUses(in).Has(r) && !b.Def.Has(r) {
					b.Use.Add(r)
				}
			}
			switch in.Op {
			case OpLoad, OpStore, OpSend:
				b.TouchesMem = true
			}
			if in.Op == OpSend {
				b.Sends = true
			}
			if in.Op == OpBrNZ || in.Op == OpBrZ || in.Op == OpAssume || in.Op == OpAssert {
				b.MayFork = true
			}
			if in.Op == OpSym {
				b.HasSym = true
			}
			if !fastEligible(in) {
				fast = false
			}
			// A fast block must keep control inside the function.
			switch in.Op {
			case OpJmp, OpBrNZ, OpBrZ:
				if in.Target < 0 || in.Target >= n {
					fast = false
				}
			}

			// Constant folding over MovI-fed chains. The fold uses the
			// same 32-bit semantics as the symbolic expression builder
			// (EvalALU), so a folded value is exactly what the
			// interpreter would compute.
			if w, ok := regDef(in); ok {
				res := FoldedVal{}
				switch {
				case in.Op == OpMovI:
					res = FoldedVal{Known: true, Val: uint64(in.Imm)}
				case in.Op == OpMov:
					res = known[in.Ra]
					if res.Known {
						folded[idx-b.Start] = res
						anyFolded = true
					}
				case in.Op == OpNot:
					if known[in.Ra].Known {
						res = FoldedVal{Known: true, Val: ^known[in.Ra].Val & wordMask}
						folded[idx-b.Start] = res
						anyFolded = true
					}
				case in.Op.IsBinary():
					a := known[in.Ra]
					bv := FoldedVal{Known: in.BImm, Val: uint64(in.Imm)}
					if !in.BImm {
						bv = known[in.Rb]
					}
					if a.Known && bv.Known {
						res = FoldedVal{Known: true, Val: EvalALU(in.Op, a.Val, bv.Val)}
						folded[idx-b.Start] = res
						anyFolded = true
					}
				}
				known[w] = res
				b.Def.Add(w)
			}
		}
		b.Fast = fast
		if anyFolded {
			b.Folded = folded
		}
	}
}

// EvalALU computes a binary ALU or comparison instruction on concrete
// 32-bit words, with semantics bit-identical to the symbolic expression
// builder's constant folder (SMT-LIB bitvector semantics): division by
// zero yields all-ones, remainder by zero yields the dividend,
// oversized shifts yield zero (sign-fill for AShr), signed comparisons
// sign-extend from 32 bits, and comparisons yield 0 or 1. Operands must
// already be 32-bit values; the result is 32-bit.
func EvalALU(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return (a + b) & wordMask
	case OpSub:
		return (a - b) & wordMask
	case OpMul:
		return (a * b) & wordMask
	case OpUDiv:
		if b == 0 {
			return wordMask
		}
		return a / b
	case OpURem:
		if b == 0 {
			return a
		}
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		if b >= WordBits {
			return 0
		}
		return (a << b) & wordMask
	case OpLShr:
		if b >= WordBits {
			return 0
		}
		return a >> b
	case OpAShr:
		neg := a&(1<<(WordBits-1)) != 0
		if b >= WordBits {
			if neg {
				return wordMask
			}
			return 0
		}
		v := a >> b
		if neg {
			v |= (wordMask >> b) ^ wordMask
		}
		return v
	case OpEq:
		return b2u(a == b)
	case OpNe:
		return b2u(a != b)
	case OpUlt:
		return b2u(a < b)
	case OpUle:
		return b2u(a <= b)
	case OpSlt:
		return b2u(int32(uint32(a)) < int32(uint32(b)))
	case OpSle:
		return b2u(int32(uint32(a)) <= int32(uint32(b)))
	default:
		panic("isa: EvalALU on non-ALU op " + op.String())
	}
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// computeLiveness fills FuncIR.LiveIn for every function: the registers
// the function may read before writing, transitively through calls. The
// analysis is a backward block-level dataflow run to a whole-program
// fixpoint (call sites inject the callee's LiveIn, and callees are
// conservatively assumed to write nothing, so recursion converges from
// below). The event dispatcher uses entry LiveIn as the set of
// registers it must zero before running a handler.
func computeLiveness(p *Program, ir *ProgIR) {
	liveIn := make([][]RegSet, len(ir.Funcs))
	for fi := range ir.Funcs {
		liveIn[fi] = make([]RegSet, len(ir.Funcs[fi].Blocks))
	}
	for changed := true; changed; {
		changed = false
		for fi := range ir.Funcs {
			f := &p.funcs[fi]
			fir := &ir.Funcs[fi]
			for bi := len(fir.Blocks) - 1; bi >= 0; bi-- {
				b := &fir.Blocks[bi]
				var live RegSet
				for _, s := range b.Succs {
					live |= liveIn[fi][s]
				}
				for idx := b.End - 1; idx >= b.Start; idx-- {
					in := &f.Instrs[idx]
					if w, ok := regDef(in); ok {
						live &^= 1 << w
					}
					live |= regUses(in)
					if in.Op == OpCall && in.Fn >= 0 && in.Fn < len(ir.Funcs) {
						live |= ir.Funcs[in.Fn].LiveIn
					}
				}
				if live != liveIn[fi][bi] {
					liveIn[fi][bi] = live
					changed = true
				}
			}
			var entry RegSet
			if len(fir.Blocks) > 0 {
				entry = liveIn[fi][0]
			}
			if entry != fir.LiveIn {
				fir.LiveIn = entry
				changed = true
			}
		}
	}
}

// ShardSite is a conditional branch whose condition is data-dependent on
// symbolic input — a candidate shard point: pinning the decision
// partitions the dscenario space the way CustomConfig.ShardableNodes
// partitions network-drop decisions.
type ShardSite struct {
	Fn     int      // function index
	FnName string   // function name
	PC     int      // instruction index of the branch
	Syms   []string // symbolic input names that may flow into the condition
}

func (s ShardSite) String() string {
	return fmt.Sprintf("%s@%d (inputs %v)", s.FnName, s.PC, s.Syms)
}

// ShardableSites runs a static taint pass over the program's CFG and
// returns every conditional branch whose condition may be
// data-dependent on an OpSym result, in (function, pc) order. The pass
// is a forward may-analysis and overapproximates: registers carry sets
// of symbolic input names, stores of tainted values taint a single
// abstract memory cell (all loads then read it), call sites merge the
// caller's taint into the callee and return-site blocks merge every
// callee exit. Sites it reports are candidates, not guarantees — a
// branch may be concretized by the path condition at runtime — but a
// branch it does NOT report never forks on symbolic program input.
func (p *Program) ShardableSites() []ShardSite {
	ir := p.IR()

	type taint map[string]bool
	join := func(dst *taint, src taint) bool {
		if len(src) == 0 {
			return false
		}
		if *dst == nil {
			*dst = make(taint, len(src))
		}
		changed := false
		for k := range src {
			if !(*dst)[k] {
				(*dst)[k] = true
				changed = true
			}
		}
		return changed
	}

	// entry[fi][bi][r] is the taint of register r at block entry.
	entry := make([][][NumRegs]taint, len(ir.Funcs))
	for fi := range ir.Funcs {
		entry[fi] = make([][NumRegs]taint, len(ir.Funcs[fi].Blocks))
	}
	// exit[fi][r]: register taint at the function's Ret blocks, merged.
	exit := make([][NumRegs]taint, len(ir.Funcs))
	var memTaint taint

	siteSyms := map[[2]int]taint{}
	for changed := true; changed; {
		changed = false
		for fi := range ir.Funcs {
			f := &p.funcs[fi]
			fir := &ir.Funcs[fi]
			for bi := range fir.Blocks {
				b := &fir.Blocks[bi]
				var regs [NumRegs]taint
				for r := range regs {
					join(&regs[r], entry[fi][bi][r])
				}
				for idx := b.Start; idx < b.End; idx++ {
					in := &f.Instrs[idx]
					switch {
					case in.Op == OpSym:
						regs[in.Rd] = taint{in.Sym: true}
					case in.Op == OpMov || in.Op == OpNot:
						regs[in.Rd] = nil
						join(&regs[in.Rd], regs[in.Ra])
					case in.Op.IsBinary():
						var t taint
						join(&t, regs[in.Ra])
						if !in.BImm {
							join(&t, regs[in.Rb])
						}
						regs[in.Rd] = t
					case in.Op == OpLoad:
						regs[in.Rd] = nil
						join(&regs[in.Rd], memTaint)
					case in.Op == OpStore:
						changed = join(&memTaint, regs[in.Rb]) || changed
					case in.Op == OpMovI || in.Op == OpNodeID || in.Op == OpTime:
						regs[in.Rd] = nil
					case in.Op == OpBrNZ || in.Op == OpBrZ:
						if len(regs[in.Ra]) > 0 {
							key := [2]int{fi, idx}
							t := siteSyms[key]
							changed = join(&t, regs[in.Ra]) || changed
							siteSyms[key] = t
						}
					case in.Op == OpCall:
						if in.Fn >= 0 && in.Fn < len(ir.Funcs) && len(ir.Funcs[in.Fn].Blocks) > 0 {
							for r := range regs {
								changed = join(&entry[in.Fn][0][r], regs[r]) || changed
							}
							// The return site sees the callee's exit taint.
							for r := range regs {
								join(&regs[r], exit[in.Fn][r])
							}
						}
					}
				}
				// Propagate to successors; Ret blocks feed the exit set.
				if b.End > b.Start && f.Instrs[b.End-1].Op == OpRet {
					for r := range regs {
						changed = join(&exit[fi][r], regs[r]) || changed
					}
				}
				for _, s := range b.Succs {
					for r := range regs {
						changed = join(&entry[fi][s][r], regs[r]) || changed
					}
				}
			}
		}
	}

	var sites []ShardSite
	for key, syms := range siteSyms {
		names := make([]string, 0, len(syms))
		for s := range syms {
			names = append(names, s)
		}
		sort.Strings(names)
		sites = append(sites, ShardSite{
			Fn:     key[0],
			FnName: p.funcs[key[0]].Name,
			PC:     key[1],
			Syms:   names,
		})
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Fn != sites[j].Fn {
			return sites[i].Fn < sites[j].Fn
		}
		return sites[i].PC < sites[j].PC
	})
	return sites
}
