package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstMasking(t *testing.T) {
	b := NewBuilder()
	tests := []struct {
		v     uint64
		width int
		want  uint64
	}{
		{0, 1, 0},
		{1, 1, 1},
		{2, 1, 0},
		{0xff, 8, 0xff},
		{0x1ff, 8, 0xff},
		{0xffffffffffffffff, 64, 0xffffffffffffffff},
		{0xffffffffffffffff, 32, 0xffffffff},
	}
	for _, tt := range tests {
		c := b.Const(tt.v, tt.width)
		if got := c.ConstVal(); got != tt.want {
			t.Errorf("Const(%#x, %d) = %#x, want %#x", tt.v, tt.width, got, tt.want)
		}
		if c.Width() != tt.width {
			t.Errorf("Const(%#x, %d).Width() = %d", tt.v, tt.width, c.Width())
		}
	}
}

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	e1 := b.Add(x, y)
	e2 := b.Add(x, y)
	if e1 != e2 {
		t.Error("identical Add expressions are not pointer-equal")
	}
	e3 := b.Add(y, x) // commutative normalisation
	if e1 != e3 {
		t.Error("commuted Add expressions are not pointer-equal")
	}
	if b.Var("x", 32) != x {
		t.Error("re-requested variable is not pointer-equal")
	}
}

func TestVarRedeclarePanics(t *testing.T) {
	b := NewBuilder()
	b.Var("x", 32)
	defer func() {
		if recover() == nil {
			t.Error("redeclaring x at width 8 did not panic")
		}
	}()
	b.Var("x", 8)
}

func TestWidthMismatchPanics(t *testing.T) {
	b := NewBuilder()
	defer func() {
		if recover() == nil {
			t.Error("Add of mismatched widths did not panic")
		}
	}()
	b.Add(b.Const(1, 8), b.Const(1, 16))
}

func TestStructuralHashAcrossBuilders(t *testing.T) {
	mk := func() *Expr {
		b := NewBuilder()
		// Create an unrelated variable first so that ids differ between
		// builders; the structural hash must not change.
		b.Var("noise", 8)
		x := b.Var("x", 32)
		return b.Ult(b.Add(x, b.Const(7, 32)), b.Const(100, 32))
	}
	b2 := NewBuilder()
	x := b2.Var("x", 32)
	e2 := b2.Ult(b2.Add(x, b2.Const(7, 32)), b2.Const(100, 32))
	if mk().Hash() != e2.Hash() {
		t.Error("structurally identical expressions hash differently across builders")
	}
}

func TestSimplificationIdentities(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	zero := b.Const(0, 32)
	one := b.Const(1, 32)
	ones := b.Const(0xffffffff, 32)

	tests := []struct {
		name string
		got  *Expr
		want *Expr
	}{
		{"x+0", b.Add(x, zero), x},
		{"x-0", b.Sub(x, zero), x},
		{"x-x", b.Sub(x, x), zero},
		{"x*0", b.Mul(x, zero), zero},
		{"x*1", b.Mul(x, one), x},
		{"x/1", b.UDiv(x, one), x},
		{"x%1", b.URem(x, one), zero},
		{"x&0", b.And(x, zero), zero},
		{"x&~0", b.And(x, ones), x},
		{"x&x", b.And(x, x), x},
		{"x|0", b.Or(x, zero), x},
		{"x|~0", b.Or(x, ones), ones},
		{"x|x", b.Or(x, x), x},
		{"x^0", b.Xor(x, zero), x},
		{"x^x", b.Xor(x, x), zero},
		{"x^~0", b.Xor(x, ones), b.Not(x)},
		{"~~x", b.Not(b.Not(x)), x},
		{"x<<0", b.Shl(x, zero), x},
		{"x>>0", b.LShr(x, zero), x},
		{"x==x", b.Eq(x, x), b.True()},
		{"x<x", b.Ult(x, x), b.False()},
		{"x<=x", b.Ule(x, x), b.True()},
		{"x<0u", b.Ult(x, zero), b.False()},
		{"0<=x", b.Ule(zero, x), b.True()},
		{"ite(T,a,b)", b.Ite(b.True(), x, zero), x},
		{"ite(F,a,b)", b.Ite(b.False(), x, zero), zero},
		{"ite(c,x,x)", b.Ite(b.Var("c", 1), x, x), x},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s: got %v, want %v", tt.name, tt.got, tt.want)
		}
	}
}

func TestEqZExtNarrowing(t *testing.T) {
	b := NewBuilder()
	v := b.Var("v", 1)
	wide := b.ZExt(v, 32)
	// zext(v) == 0 must reduce to !v, and == 1 to v, keeping branch
	// conditions in literal form for the solver's fast path.
	if got := b.Eq(wide, b.Const(0, 32)); got != b.Not(v) {
		t.Errorf("zext(v)==0 = %v, want !v", got)
	}
	if got := b.Eq(wide, b.Const(1, 32)); got != v {
		t.Errorf("zext(v)==1 = %v, want v", got)
	}
	// A constant needing the extension bits can never match.
	if got := b.Eq(wide, b.Const(2, 32)); !got.IsFalse() {
		t.Errorf("zext(v)==2 = %v, want false", got)
	}
	// Wider sources narrow to the source width.
	x := b.Var("x", 8)
	if got := b.Eq(b.ZExt(x, 32), b.Const(0x42, 32)); got != b.Eq(x, b.Const(0x42, 8)) {
		t.Errorf("zext8(x)==0x42 = %v, want 8-bit comparison", got)
	}
	if got := b.Eq(b.ZExt(x, 32), b.Const(0x1ff, 32)); !got.IsFalse() {
		t.Errorf("zext8(x)==0x1ff = %v, want false", got)
	}
}

func TestIteOnBooleans(t *testing.T) {
	b := NewBuilder()
	c := b.Var("c", 1)
	if got := b.Ite(c, b.True(), b.False()); got != c {
		t.Errorf("ite(c,1,0) = %v, want c", got)
	}
	if got := b.Ite(c, b.False(), b.True()); got != b.Not(c) {
		t.Errorf("ite(c,0,1) = %v, want !c", got)
	}
}

func TestEvalBasics(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	env := Env{"x": 100, "y": 7}

	tests := []struct {
		name string
		e    *Expr
		want uint64
	}{
		{"add", b.Add(x, y), 107},
		{"sub", b.Sub(x, y), 93},
		{"sub-wrap", b.Sub(y, x), uint64(0x100000000 - 93)},
		{"mul", b.Mul(x, y), 700},
		{"udiv", b.UDiv(x, y), 14},
		{"urem", b.URem(x, y), 2},
		{"udiv0", b.UDiv(x, b.Const(0, 32)), 0xffffffff},
		{"urem0", b.URem(x, b.Const(0, 32)), 100},
		{"and", b.And(x, y), 100 & 7},
		{"or", b.Or(x, y), 100 | 7},
		{"xor", b.Xor(x, y), 100 ^ 7},
		{"shl", b.Shl(x, b.Const(2, 32)), 400},
		{"shl-over", b.Shl(x, b.Const(33, 32)), 0},
		{"lshr", b.LShr(x, b.Const(2, 32)), 25},
		{"eq", b.Eq(x, b.Const(100, 32)), 1},
		{"ne", b.Ne(x, b.Const(100, 32)), 0},
		{"ult", b.Ult(y, x), 1},
		{"ule", b.Ule(x, x), 1},
		{"ite", b.Ite(b.Ult(y, x), x, y), 100},
		{"zext", b.ZExt(b.Trunc(x, 8), 32), 100},
		{"trunc", b.Trunc(b.Const(0x1ff, 32), 8), 0xff},
	}
	for _, tt := range tests {
		if got := Eval(tt.e, env); got != tt.want {
			t.Errorf("%s: Eval(%v) = %d, want %d", tt.name, tt.e, got, tt.want)
		}
	}
}

func TestEvalSigned(t *testing.T) {
	b := NewBuilder()
	neg5 := b.Const(uint64(0x100000000-5), 32) // -5 as u32
	three := b.Const(3, 32)
	if Eval(b.Slt(neg5, three), nil) != 1 {
		t.Error("-5 <s 3 should be true")
	}
	if Eval(b.Ult(neg5, three), nil) != 0 {
		t.Error("-5 <u 3 should be false (large unsigned)")
	}
	if got := Eval(b.AShr(neg5, b.Const(1, 32)), nil); got != 0xfffffffd {
		t.Errorf("-5 >>s 1 = %#x, want 0xfffffffd", got)
	}
	if got := Eval(b.SExt(b.Const(0x80, 8), 32), nil); got != 0xffffff80 {
		t.Errorf("sext(0x80) = %#x, want 0xffffff80", got)
	}
	if Eval(b.Sle(neg5, neg5), nil) != 1 {
		t.Error("-5 <=s -5 should be true")
	}
}

func TestCollectVars(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	e := b.Add(b.Mul(x, y), b.Ite(b.Eq(x, y), x, b.Var("z", 32)))
	vars := CollectVars(e, nil)
	if len(vars) != 3 {
		t.Fatalf("CollectVars found %d vars, want 3", len(vars))
	}
	seen := map[string]bool{}
	for _, v := range vars {
		seen[v.VarName()] = true
	}
	for _, name := range []string{"x", "y", "z"} {
		if !seen[name] {
			t.Errorf("CollectVars missed %q", name)
		}
	}
}

// randomExpr builds a random expression over variables a, b (width w) and
// simultaneously computes the semantically-correct value of the chosen
// operator tree under env with plain Go arithmetic. Because the expected
// value is fixed by the operator the generator *chose* — before any smart
// constructor had a chance to rewrite it — a divergence flags a simplifier
// bug. It exercises every operator kind.
func randomExpr(bld *Builder, rng *rand.Rand, depth, w int, env Env) (*Expr, uint64) {
	m := mask(uint8(w))
	if depth == 0 || rng.Intn(5) == 0 {
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			return bld.Const(v, w), v & m
		case 1:
			return bld.Var("a", w), env["a"] & m
		default:
			return bld.Var("b", w), env["b"] & m
		}
	}
	x, xv := randomExpr(bld, rng, depth-1, w, env)
	y, yv := randomExpr(bld, rng, depth-1, w, env)
	switch rng.Intn(15) {
	case 0:
		return bld.Add(x, y), (xv + yv) & m
	case 1:
		return bld.Sub(x, y), (xv - yv) & m
	case 2:
		return bld.Mul(x, y), (xv * yv) & m
	case 3:
		if yv == 0 {
			return bld.UDiv(x, y), m
		}
		return bld.UDiv(x, y), xv / yv
	case 4:
		if yv == 0 {
			return bld.URem(x, y), xv
		}
		return bld.URem(x, y), xv % yv
	case 5:
		return bld.And(x, y), xv & yv
	case 6:
		return bld.Or(x, y), xv | yv
	case 7:
		return bld.Xor(x, y), xv ^ yv
	case 8:
		return bld.Not(x), ^xv & m
	case 9:
		if yv >= uint64(w) {
			return bld.Shl(x, y), 0
		}
		return bld.Shl(x, y), (xv << yv) & m
	case 10:
		if yv >= uint64(w) {
			return bld.LShr(x, y), 0
		}
		return bld.LShr(x, y), xv >> yv
	case 11:
		s := yv
		if s >= uint64(w) {
			s = uint64(w) - 1
		}
		return bld.AShr(x, y), uint64(int64(signExtend(xv, uint8(w)))>>s) & m
	case 12:
		cond := bld.Eq(x, y)
		if xv == yv {
			return bld.Ite(cond, x, y), xv
		}
		return bld.Ite(cond, x, y), yv
	case 13:
		half := (w + 1) / 2
		return bld.ZExt(bld.Trunc(x, half), w), xv & mask(uint8(half))
	default:
		half := (w + 1) / 2
		return bld.SExt(bld.Trunc(x, half), w), signExtend(xv&mask(uint8(half)), uint8(half)) & m
	}
}

// TestSimplifierSoundness is the central expr property: for random
// expression shapes and random inputs, the smart-constructor output (with
// all simplifications applied) evaluates to the value fixed by the chosen
// operators at generation time.
func TestSimplifierSoundness(t *testing.T) {
	for _, w := range []int{1, 8, 16, 32, 64} {
		w := w
		t.Run("w"+string(rune('0'+w/10))+string(rune('0'+w%10)), func(t *testing.T) {
			cfg := &quick.Config{MaxCount: 300}
			f := func(seed int64, av, bv uint64) bool {
				rng := rand.New(rand.NewSource(seed))
				bld := NewBuilder()
				env := Env{"a": av, "b": bv}
				e, want := randomExpr(bld, rng, 4, w, env)
				return Eval(e, env) == want
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestEvalWithinWidth checks that evaluation never produces bits above the
// expression width.
func TestEvalWithinWidth(t *testing.T) {
	f := func(seed int64, av, bv uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := Env{"a": av, "b": bv}
		for _, w := range []int{1, 7, 13, 32, 64} {
			bld := NewBuilder()
			e, _ := randomExpr(bld, rng, 3, w, env)
			if Eval(e, env)&^mask(uint8(w)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringOutput(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	e := b.Ult(x, b.Const(50, 32))
	if got := e.String(); got != "(ult x 50:w32)" {
		t.Errorf("String() = %q", got)
	}
}
