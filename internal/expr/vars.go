package expr

// Free-variable sets, memoised eagerly on the hash-consed DAG: every node
// carries the sorted ids of the distinct variables reachable from it,
// computed once at interning time from its (already interned) operands.
// This is what makes constraint independence slicing cheap — grouping a
// path condition into variable-connected factors is a walk over small
// sorted id slices instead of repeated DAG traversals.

// VarIDs returns the sorted ids of every distinct variable in e. The
// slice is shared and must not be modified. Constants return nil.
func (e *Expr) VarIDs() []uint32 { return e.vids }

// HasVar reports whether variable id occurs in e, by binary search over
// the memoised id set.
func (e *Expr) HasVar(id uint32) bool {
	lo, hi := 0, len(e.vids)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.vids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(e.vids) && e.vids[lo] == id
}

// mergeVarIDs unions up to three sorted id sets. When the union equals
// one of the inputs, that input's slice is reused so deep DAGs over a
// stable variable population share one set per subtree.
func mergeVarIDs(a, b, c *Expr) []uint32 {
	var sets [][]uint32
	for _, op := range []*Expr{a, b, c} {
		if op != nil && len(op.vids) > 0 {
			sets = append(sets, op.vids)
		}
	}
	switch len(sets) {
	case 0:
		return nil
	case 1:
		return sets[0]
	}
	// Pick the largest set; if it is a superset of the rest, reuse it.
	big := sets[0]
	for _, s := range sets[1:] {
		if len(s) > len(big) {
			big = s
		}
	}
	super := true
	for _, s := range sets {
		for _, id := range s {
			if !containsSorted(big, id) {
				super = false
				break
			}
		}
		if !super {
			break
		}
	}
	if super {
		return big
	}
	out := make([]uint32, 0, len(big)+4)
	for _, s := range sets {
		out = unionSorted(out, s)
	}
	return out
}

func containsSorted(ids []uint32, id uint32) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

// unionSorted merges sorted b into sorted a, returning a new or extended
// sorted slice without duplicates.
func unionSorted(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return append(a, b...)
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// EvalBound computes the concrete value of e when every variable it
// references has a binding in bind (var id → value). ok is false — and
// the value meaningless — when any variable is unbound. It is the
// evaluation half of implied-value concretization: a branch condition
// whose variables are all forced by the path condition evaluates here
// instead of going to the solver.
func EvalBound(e *Expr, bind map[uint32]uint64) (uint64, bool) {
	for _, id := range e.vids {
		if _, ok := bind[id]; !ok {
			return 0, false
		}
	}
	memo := make(map[*Expr]uint64)
	v := evalMemo(e, func(v *Expr) uint64 { return bind[uint32(v.val)] }, memo)
	return v, true
}
