package expr

import (
	"sort"
	"strconv"
	"strings"
)

// Env maps variable names to concrete values for evaluation. Values are
// truncated to the variable's width on lookup, so callers may store
// un-masked integers.
type Env map[string]uint64

// Eval computes the concrete value of e under env. Unbound variables
// evaluate to 0, matching the solver's convention that a model omits
// don't-care inputs. The result is masked to e's width.
//
// Eval is the ground-truth oracle for the bit-blasting solver: property
// tests check that every satisfying model the solver returns makes the
// query evaluate to true.
func Eval(e *Expr, env Env) uint64 {
	memo := make(map[*Expr]uint64)
	return evalMemo(e, func(v *Expr) uint64 { return env[v.name] }, memo)
}

// evalMemo evaluates e with variable values supplied by look (the result
// is masked to the variable's width here, so lookups may return un-masked
// integers). Sharing the operator semantics between Eval and EvalBound
// keeps the two evaluators from drifting apart.
func evalMemo(e *Expr, look func(*Expr) uint64, memo map[*Expr]uint64) uint64 {
	if v, ok := memo[e]; ok {
		return v
	}
	var v uint64
	switch e.kind {
	case KindConst:
		v = e.val
	case KindVar:
		v = look(e) & mask(e.width)
	case KindAdd:
		v = evalMemo(e.a, look, memo) + evalMemo(e.b, look, memo)
	case KindSub:
		v = evalMemo(e.a, look, memo) - evalMemo(e.b, look, memo)
	case KindMul:
		v = evalMemo(e.a, look, memo) * evalMemo(e.b, look, memo)
	case KindUDiv:
		d := evalMemo(e.b, look, memo)
		if d == 0 {
			v = mask(e.width)
		} else {
			v = evalMemo(e.a, look, memo) / d
		}
	case KindURem:
		d := evalMemo(e.b, look, memo)
		if d == 0 {
			v = evalMemo(e.a, look, memo)
		} else {
			v = evalMemo(e.a, look, memo) % d
		}
	case KindAnd:
		v = evalMemo(e.a, look, memo) & evalMemo(e.b, look, memo)
	case KindOr:
		v = evalMemo(e.a, look, memo) | evalMemo(e.b, look, memo)
	case KindXor:
		v = evalMemo(e.a, look, memo) ^ evalMemo(e.b, look, memo)
	case KindNot:
		v = ^evalMemo(e.a, look, memo)
	case KindShl:
		s := evalMemo(e.b, look, memo)
		if s >= uint64(e.width) {
			v = 0
		} else {
			v = evalMemo(e.a, look, memo) << s
		}
	case KindLShr:
		s := evalMemo(e.b, look, memo)
		if s >= uint64(e.width) {
			v = 0
		} else {
			v = evalMemo(e.a, look, memo) >> s
		}
	case KindAShr:
		s := evalMemo(e.b, look, memo)
		sx := int64(signExtend(evalMemo(e.a, look, memo), e.width))
		if s >= uint64(e.width) {
			s = uint64(e.width) - 1
		}
		v = uint64(sx >> s)
	case KindEq:
		v = boolBit(evalMemo(e.a, look, memo) == evalMemo(e.b, look, memo))
	case KindUlt:
		v = boolBit(evalMemo(e.a, look, memo) < evalMemo(e.b, look, memo))
	case KindUle:
		v = boolBit(evalMemo(e.a, look, memo) <= evalMemo(e.b, look, memo))
	case KindSlt:
		w := e.a.width
		v = boolBit(int64(signExtend(evalMemo(e.a, look, memo), w)) <
			int64(signExtend(evalMemo(e.b, look, memo), w)))
	case KindSle:
		w := e.a.width
		v = boolBit(int64(signExtend(evalMemo(e.a, look, memo), w)) <=
			int64(signExtend(evalMemo(e.b, look, memo), w)))
	case KindIte:
		if evalMemo(e.a, look, memo) != 0 {
			v = evalMemo(e.b, look, memo)
		} else {
			v = evalMemo(e.c, look, memo)
		}
	case KindZExt:
		v = evalMemo(e.a, look, memo)
	case KindSExt:
		v = signExtend(evalMemo(e.a, look, memo), e.a.width)
	case KindTrunc:
		v = evalMemo(e.a, look, memo)
	default:
		panic("expr: Eval of invalid kind " + e.kind.String())
	}
	v &= mask(e.width)
	memo[e] = v
	return v
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// CollectVars appends every distinct variable reachable from e to dst and
// returns the extended slice, ordered by first encounter in a left-to-right
// depth-first walk.
func CollectVars(e *Expr, dst []*Expr) []*Expr {
	seen := make(map[*Expr]bool)
	for _, v := range dst {
		seen[v] = true
	}
	visited := make(map[*Expr]bool)
	var walk func(n *Expr)
	walk = func(n *Expr) {
		if n == nil || visited[n] {
			return
		}
		visited[n] = true
		if n.kind == KindVar && !seen[n] {
			seen[n] = true
			dst = append(dst, n)
			return
		}
		walk(n.a)
		walk(n.b)
		walk(n.c)
	}
	walk(e)
	return dst
}

// String renders e as a compact s-expression, e.g. "(add x (const 5 w32))".
// It is intended for diagnostics and test failure messages, not parsing.
func (e *Expr) String() string {
	var sb strings.Builder
	writeExpr(&sb, e, 0)
	return sb.String()
}

const maxPrintDepth = 24

func writeExpr(sb *strings.Builder, e *Expr, depth int) {
	if e == nil {
		sb.WriteString("<nil>")
		return
	}
	if depth > maxPrintDepth {
		sb.WriteString("…")
		return
	}
	switch e.kind {
	case KindConst:
		sb.WriteString(strconv.FormatUint(e.val, 10))
		sb.WriteString(":w")
		sb.WriteString(strconv.Itoa(int(e.width)))
	case KindVar:
		sb.WriteString(e.name)
	default:
		sb.WriteByte('(')
		sb.WriteString(e.kind.String())
		for i := 0; i < 3; i++ {
			arg := e.Arg(i)
			if arg == nil {
				break
			}
			sb.WriteByte(' ')
			writeExpr(sb, arg, depth+1)
		}
		if e.kind == KindZExt || e.kind == KindSExt || e.kind == KindTrunc {
			sb.WriteString(" w")
			sb.WriteString(strconv.Itoa(int(e.width)))
		}
		sb.WriteByte(')')
	}
}

// SortByName orders variables by name; useful for deterministic test-case
// output.
func SortByName(vars []*Expr) {
	sort.Slice(vars, func(i, j int) bool { return vars[i].name < vars[j].name })
}
