// Package expr implements the symbolic bitvector expression language used
// throughout the SDE engine.
//
// Expressions are immutable, hash-consed DAG nodes produced by a Builder.
// Hash-consing guarantees that structurally identical expressions are
// pointer-identical, which makes equality checks, hashing, and solver-side
// memoisation O(1). The language is a small bitvector theory: constants,
// named symbolic variables, modular arithmetic, bitwise logic, shifts,
// unsigned/signed comparisons, if-then-else, and width conversions. Boolean
// values are 1-bit vectors (0 = false, 1 = true).
//
// Division semantics follow SMT-LIB: x/0 evaluates to the all-ones vector
// and x%0 evaluates to x, so expressions are total and the concrete
// evaluator agrees with the solver's bit-blasted circuits.
package expr

import (
	"strconv"
	"sync"
)

// Kind identifies the operator at the root of an expression node.
type Kind uint8

// Expression node kinds. The zero value is invalid so that uninitialised
// nodes are detectable.
const (
	KindConst Kind = iota + 1
	KindVar
	KindAdd
	KindSub
	KindMul
	KindUDiv
	KindURem
	KindAnd
	KindOr
	KindXor
	KindNot
	KindShl
	KindLShr
	KindAShr
	KindEq
	KindUlt
	KindUle
	KindSlt
	KindSle
	KindIte
	KindZExt
	KindSExt
	KindTrunc
)

var kindNames = map[Kind]string{
	KindConst: "const",
	KindVar:   "var",
	KindAdd:   "add",
	KindSub:   "sub",
	KindMul:   "mul",
	KindUDiv:  "udiv",
	KindURem:  "urem",
	KindAnd:   "and",
	KindOr:    "or",
	KindXor:   "xor",
	KindNot:   "not",
	KindShl:   "shl",
	KindLShr:  "lshr",
	KindAShr:  "ashr",
	KindEq:    "eq",
	KindUlt:   "ult",
	KindUle:   "ule",
	KindSlt:   "slt",
	KindSle:   "sle",
	KindIte:   "ite",
	KindZExt:  "zext",
	KindSExt:  "sext",
	KindTrunc: "trunc",
}

// String returns the lower-case operator mnemonic.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Expr is one immutable node of a hash-consed expression DAG. Expressions
// must only be created through a Builder; two expressions created by the
// same Builder are structurally equal if and only if they are the same
// pointer.
type Expr struct {
	kind  Kind
	width uint8  // result width in bits, 1..64
	val   uint64 // KindConst: value (masked); KindVar: variable id
	name  string // KindVar only: symbolic input name
	a     *Expr  // first operand (nil for leaves)
	b     *Expr  // second operand
	c     *Expr  // third operand (KindIte condition uses a, then b, else c)
	hash  uint64 // structural hash, fixed at construction
	vids  []uint32
}

// Kind returns the node's operator kind.
func (e *Expr) Kind() Kind { return e.kind }

// Width returns the bit width of the expression's value (1..64).
func (e *Expr) Width() int { return int(e.width) }

// Hash returns a structural hash of the expression. Pointer-identical
// expressions always have equal hashes; distinct expressions collide only
// with ordinary hash probability.
func (e *Expr) Hash() uint64 { return e.hash }

// IsConst reports whether the expression is a constant.
func (e *Expr) IsConst() bool { return e.kind == KindConst }

// ConstVal returns the constant's value. It panics if the expression is not
// a constant; callers must check IsConst first.
func (e *Expr) ConstVal() uint64 {
	if e.kind != KindConst {
		panic("expr: ConstVal on non-constant " + e.kind.String())
	}
	return e.val
}

// IsVar reports whether the expression is a symbolic variable leaf.
func (e *Expr) IsVar() bool { return e.kind == KindVar }

// VarID returns the variable's unique id within its Builder. It panics if
// the expression is not a variable.
func (e *Expr) VarID() uint32 {
	if e.kind != KindVar {
		panic("expr: VarID on non-variable " + e.kind.String())
	}
	return uint32(e.val)
}

// VarName returns the variable's symbolic input name. It panics if the
// expression is not a variable.
func (e *Expr) VarName() string {
	if e.kind != KindVar {
		panic("expr: VarName on non-variable " + e.kind.String())
	}
	return e.name
}

// Arg returns the i-th operand (0-based) or nil if absent.
func (e *Expr) Arg(i int) *Expr {
	switch i {
	case 0:
		return e.a
	case 1:
		return e.b
	case 2:
		return e.c
	default:
		return nil
	}
}

// IsTrue reports whether the expression is the 1-bit constant 1.
func (e *Expr) IsTrue() bool { return e.kind == KindConst && e.width == 1 && e.val == 1 }

// IsFalse reports whether the expression is the 1-bit constant 0.
func (e *Expr) IsFalse() bool { return e.kind == KindConst && e.width == 1 && e.val == 0 }

// mask returns the bitmask for a width in bits (1..64).
func mask(width uint8) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// signBit returns the sign bit of v at the given width.
func signBit(v uint64, width uint8) uint64 {
	return (v >> (width - 1)) & 1
}

// signExtend sign-extends a width-bit value to 64 bits.
func signExtend(v uint64, width uint8) uint64 {
	if width >= 64 || signBit(v, width) == 0 {
		return v
	}
	return v | ^mask(width)
}

type exprKey struct {
	kind    Kind
	width   uint8
	val     uint64
	name    string
	a, b, c *Expr
}

// Builder interns and constructs expressions. All expressions that may be
// combined with each other must come from the same Builder. A Builder is
// safe for concurrent use.
type Builder struct {
	mu     sync.Mutex
	table  map[exprKey]*Expr
	vars   map[string]*Expr
	varSeq uint32
}

// NewBuilder returns an empty expression builder.
func NewBuilder() *Builder {
	return &Builder{
		table: make(map[exprKey]*Expr, 1024),
		vars:  make(map[string]*Expr, 64),
	}
}

// NumNodes returns the number of distinct interned nodes, a rough measure
// of solver-visible formula size.
func (b *Builder) NumNodes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.table)
}

// NumVars returns the number of distinct symbolic variables created.
func (b *Builder) NumVars() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.vars)
}

func checkWidth(width int) uint8 {
	if width < 1 || width > 64 {
		panic("expr: width out of range: " + strconv.Itoa(width))
	}
	return uint8(width)
}

func hashCombine(h uint64, v uint64) uint64 {
	// FNV-1a style mixing with a 64-bit prime.
	h ^= v
	h *= 1099511628211
	h ^= h >> 29
	return h
}

func (b *Builder) intern(k exprKey) *Expr {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.table[k]; ok {
		return e
	}
	h := uint64(14695981039346656037)
	h = hashCombine(h, uint64(k.kind))
	h = hashCombine(h, uint64(k.width))
	if k.kind != KindVar {
		// Variable ids depend on creation order, which may differ between
		// engine runs; a variable's structural identity is its name.
		h = hashCombine(h, k.val)
	}
	for _, s := range k.name {
		h = hashCombine(h, uint64(s))
	}
	if k.a != nil {
		h = hashCombine(h, k.a.hash)
	}
	if k.b != nil {
		h = hashCombine(h, k.b.hash)
	}
	if k.c != nil {
		h = hashCombine(h, k.c.hash)
	}
	// The hash is purely structural (no per-Builder state) so that
	// fingerprints are comparable across independent engine runs.
	h = hashCombine(h, 0x9e3779b97f4a7c15)
	e := &Expr{
		kind: k.kind, width: k.width, val: k.val, name: k.name,
		a: k.a, b: k.b, c: k.c, hash: h,
	}
	// Operands are interned before their parents, so the free-variable
	// set is a sorted merge of already-computed child sets. Computing it
	// eagerly here makes VarIDs O(1) for the optimizer's union-find
	// slicing and the VM's implied-value checks.
	if k.kind == KindVar {
		e.vids = []uint32{uint32(k.val)}
	} else {
		e.vids = mergeVarIDs(k.a, k.b, k.c)
	}
	b.table[k] = e
	return e
}

// Const returns the constant v truncated to the given width.
func (b *Builder) Const(v uint64, width int) *Expr {
	w := checkWidth(width)
	return b.intern(exprKey{kind: KindConst, width: w, val: v & mask(w)})
}

// Bool returns the 1-bit constant for v.
func (b *Builder) Bool(v bool) *Expr {
	if v {
		return b.Const(1, 1)
	}
	return b.Const(0, 1)
}

// True returns the 1-bit constant 1.
func (b *Builder) True() *Expr { return b.Bool(true) }

// False returns the 1-bit constant 0.
func (b *Builder) False() *Expr { return b.Bool(false) }

// Var returns the symbolic variable with the given name and width, creating
// it on first use. Requesting an existing name with a different width
// panics: a symbolic input has exactly one type.
func (b *Builder) Var(name string, width int) *Expr {
	w := checkWidth(width)
	b.mu.Lock()
	if e, ok := b.vars[name]; ok {
		b.mu.Unlock()
		if e.width != w {
			panic("expr: variable " + name + " redeclared with different width")
		}
		return e
	}
	id := b.varSeq
	b.varSeq++
	b.mu.Unlock()
	e := b.intern(exprKey{kind: KindVar, width: w, val: uint64(id), name: name})
	b.mu.Lock()
	b.vars[name] = e
	b.mu.Unlock()
	return e
}

// Vars returns all variables created so far, ordered by creation (VarID).
func (b *Builder) Vars() []*Expr {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Expr, len(b.vars))
	for _, v := range b.vars {
		out[v.VarID()] = v
	}
	return out
}

func sameWidth(a, c *Expr) uint8 {
	if a.width != c.width {
		panic("expr: width mismatch: " + a.kind.String() + "/" +
			strconv.Itoa(int(a.width)) + " vs " + c.kind.String() + "/" +
			strconv.Itoa(int(c.width)))
	}
	return a.width
}

// commute orders the operands of a commutative operator canonically:
// constants first, then by structural hash. This improves interning hits
// and lets the simplifier assume "constant on the left".
func commute(a, c *Expr) (*Expr, *Expr) {
	if c.IsConst() && !a.IsConst() {
		return c, a
	}
	if !a.IsConst() && !c.IsConst() && c.hash < a.hash {
		return c, a
	}
	return a, c
}

// Add returns a+b (mod 2^width).
func (b *Builder) Add(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	x, y = commute(x, y)
	if x.IsConst() {
		if y.IsConst() {
			return b.Const(x.val+y.val, int(w))
		}
		if x.val == 0 {
			return y
		}
	}
	// (c + e) + c2  =>  (c+c2) + e
	if x.IsConst() && y.kind == KindAdd && y.a.IsConst() {
		return b.Add(b.Const(x.val+y.a.val, int(w)), y.b)
	}
	return b.intern(exprKey{kind: KindAdd, width: w, a: x, b: y})
}

// Sub returns a-b (mod 2^width).
func (b *Builder) Sub(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.val-y.val, int(w))
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	if x == y {
		return b.Const(0, int(w))
	}
	if y.IsConst() {
		// x - c  =>  (-c) + x, reusing Add's normalisation.
		return b.Add(b.Const(-y.val, int(w)), x)
	}
	return b.intern(exprKey{kind: KindSub, width: w, a: x, b: y})
}

// Mul returns a*b (mod 2^width).
func (b *Builder) Mul(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	x, y = commute(x, y)
	if x.IsConst() {
		if y.IsConst() {
			return b.Const(x.val*y.val, int(w))
		}
		switch x.val {
		case 0:
			return b.Const(0, int(w))
		case 1:
			return y
		}
	}
	return b.intern(exprKey{kind: KindMul, width: w, a: x, b: y})
}

// UDiv returns the unsigned quotient a/b, with a/0 = all-ones (SMT-LIB).
func (b *Builder) UDiv(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		if y.val == 0 {
			return b.Const(mask(w), int(w))
		}
		return b.Const(x.val/y.val, int(w))
	}
	if y.IsConst() && y.val == 1 {
		return x
	}
	return b.intern(exprKey{kind: KindUDiv, width: w, a: x, b: y})
}

// URem returns the unsigned remainder a%b, with a%0 = a (SMT-LIB).
func (b *Builder) URem(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		if y.val == 0 {
			return x
		}
		return b.Const(x.val%y.val, int(w))
	}
	if y.IsConst() && y.val == 1 {
		return b.Const(0, int(w))
	}
	return b.intern(exprKey{kind: KindURem, width: w, a: x, b: y})
}

// And returns the bitwise conjunction a&b. On 1-bit operands this is
// logical AND.
func (b *Builder) And(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	x, y = commute(x, y)
	if x.IsConst() {
		if y.IsConst() {
			return b.Const(x.val&y.val, int(w))
		}
		switch x.val {
		case 0:
			return b.Const(0, int(w))
		case mask(w):
			return y
		}
	}
	if x == y {
		return x
	}
	return b.intern(exprKey{kind: KindAnd, width: w, a: x, b: y})
}

// Or returns the bitwise disjunction a|b. On 1-bit operands this is
// logical OR.
func (b *Builder) Or(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	x, y = commute(x, y)
	if x.IsConst() {
		if y.IsConst() {
			return b.Const(x.val|y.val, int(w))
		}
		switch x.val {
		case 0:
			return y
		case mask(w):
			return b.Const(mask(w), int(w))
		}
	}
	if x == y {
		return x
	}
	return b.intern(exprKey{kind: KindOr, width: w, a: x, b: y})
}

// Xor returns the bitwise exclusive-or a^b.
func (b *Builder) Xor(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	x, y = commute(x, y)
	if x.IsConst() {
		if y.IsConst() {
			return b.Const(x.val^y.val, int(w))
		}
		if x.val == 0 {
			return y
		}
		if x.val == mask(w) {
			return b.Not(y)
		}
	}
	if x == y {
		return b.Const(0, int(w))
	}
	return b.intern(exprKey{kind: KindXor, width: w, a: x, b: y})
}

// Not returns the bitwise complement ^a. On 1-bit operands this is logical
// negation.
func (b *Builder) Not(x *Expr) *Expr {
	if x.IsConst() {
		return b.Const(^x.val, int(x.width))
	}
	if x.kind == KindNot {
		return x.a
	}
	return b.intern(exprKey{kind: KindNot, width: x.width, a: x})
}

// shiftAmount folds an oversized constant shift to the saturated result.
func oversized(y *Expr, w uint8) bool { return y.IsConst() && y.val >= uint64(w) }

// Shl returns a<<b; shifting by >= width yields 0.
func (b *Builder) Shl(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if oversized(y, w) {
		return b.Const(0, int(w))
	}
	if x.IsConst() && y.IsConst() {
		return b.Const(x.val<<y.val, int(w))
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	return b.intern(exprKey{kind: KindShl, width: w, a: x, b: y})
}

// LShr returns the logical right shift a>>b; shifting by >= width yields 0.
func (b *Builder) LShr(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if oversized(y, w) {
		return b.Const(0, int(w))
	}
	if x.IsConst() && y.IsConst() {
		return b.Const(x.val>>y.val, int(w))
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	return b.intern(exprKey{kind: KindLShr, width: w, a: x, b: y})
}

// AShr returns the arithmetic right shift; shifting by >= width yields the
// sign fill (0 or all-ones).
func (b *Builder) AShr(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if x.IsConst() {
		sx := int64(signExtend(x.val, w))
		if oversized(y, w) {
			if sx < 0 {
				return b.Const(mask(w), int(w))
			}
			return b.Const(0, int(w))
		}
		if y.IsConst() {
			return b.Const(uint64(sx>>y.val), int(w))
		}
	}
	if oversized(y, w) {
		// Result is width copies of x's sign bit.
		sign := b.Ne(b.Const(0, int(w)), b.And(x, b.Const(uint64(1)<<(w-1), int(w))))
		return b.Ite(sign, b.Const(mask(w), int(w)), b.Const(0, int(w)))
	}
	if y.IsConst() && y.val == 0 {
		return x
	}
	return b.intern(exprKey{kind: KindAShr, width: w, a: x, b: y})
}

// Eq returns the 1-bit comparison a==b.
func (b *Builder) Eq(x, y *Expr) *Expr {
	sameWidth(x, y)
	x, y = commute(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.val == y.val)
	}
	if x == y {
		return b.True()
	}
	// On 1-bit operands, x == true is x, x == false is !x.
	if x.width == 1 && x.IsConst() {
		if x.val == 1 {
			return y
		}
		return b.Not(y)
	}
	// const == zext(e) narrows to a comparison at e's width (or is
	// trivially false when the constant needs the extension bits). This
	// keeps branch conditions over widened booleans in literal form.
	if x.IsConst() && y.kind == KindZExt {
		if x.val > mask(y.a.width) {
			return b.False()
		}
		return b.Eq(b.Const(x.val, int(y.a.width)), y.a)
	}
	return b.intern(exprKey{kind: KindEq, width: 1, a: x, b: y})
}

// Ne returns the 1-bit comparison a!=b.
func (b *Builder) Ne(x, y *Expr) *Expr { return b.Not(b.Eq(x, y)) }

// Ult returns the 1-bit unsigned comparison a<b.
func (b *Builder) Ult(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.val < y.val)
	}
	if x == y {
		return b.False()
	}
	if y.IsConst() && y.val == 0 {
		return b.False() // nothing is < 0 unsigned
	}
	if x.IsConst() && x.val == mask(w) {
		return b.False() // all-ones is < nothing
	}
	return b.intern(exprKey{kind: KindUlt, width: 1, a: x, b: y})
}

// Ule returns the 1-bit unsigned comparison a<=b.
func (b *Builder) Ule(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.val <= y.val)
	}
	if x == y {
		return b.True()
	}
	if x.IsConst() && x.val == 0 {
		return b.True()
	}
	if y.IsConst() && y.val == mask(w) {
		return b.True()
	}
	return b.intern(exprKey{kind: KindUle, width: 1, a: x, b: y})
}

// Slt returns the 1-bit signed comparison a<b.
func (b *Builder) Slt(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(int64(signExtend(x.val, w)) < int64(signExtend(y.val, w)))
	}
	if x == y {
		return b.False()
	}
	return b.intern(exprKey{kind: KindSlt, width: 1, a: x, b: y})
}

// Sle returns the 1-bit signed comparison a<=b.
func (b *Builder) Sle(x, y *Expr) *Expr {
	w := sameWidth(x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(int64(signExtend(x.val, w)) <= int64(signExtend(y.val, w)))
	}
	if x == y {
		return b.True()
	}
	return b.intern(exprKey{kind: KindSle, width: 1, a: x, b: y})
}

// Ite returns "if cond then t else f". cond must be 1-bit; t and f must
// have equal widths.
func (b *Builder) Ite(cond, t, f *Expr) *Expr {
	if cond.width != 1 {
		panic("expr: Ite condition must be 1-bit")
	}
	w := sameWidth(t, f)
	if cond.IsConst() {
		if cond.val == 1 {
			return t
		}
		return f
	}
	if t == f {
		return t
	}
	// ite(c, 1, 0) == c for 1-bit results; ite(c, 0, 1) == !c.
	if w == 1 && t.IsConst() && f.IsConst() {
		if t.val == 1 {
			return cond
		}
		return b.Not(cond)
	}
	return b.intern(exprKey{kind: KindIte, width: w, a: cond, b: t, c: f})
}

// ZExt zero-extends x to the given wider (or equal) width.
func (b *Builder) ZExt(x *Expr, width int) *Expr {
	w := checkWidth(width)
	if w < x.width {
		panic("expr: ZExt to narrower width")
	}
	if w == x.width {
		return x
	}
	if x.IsConst() {
		return b.Const(x.val, int(w))
	}
	return b.intern(exprKey{kind: KindZExt, width: w, a: x})
}

// SExt sign-extends x to the given wider (or equal) width.
func (b *Builder) SExt(x *Expr, width int) *Expr {
	w := checkWidth(width)
	if w < x.width {
		panic("expr: SExt to narrower width")
	}
	if w == x.width {
		return x
	}
	if x.IsConst() {
		return b.Const(signExtend(x.val, x.width), int(w))
	}
	return b.intern(exprKey{kind: KindSExt, width: w, a: x})
}

// Trunc truncates x to the given narrower (or equal) width.
func (b *Builder) Trunc(x *Expr, width int) *Expr {
	w := checkWidth(width)
	if w > x.width {
		panic("expr: Trunc to wider width")
	}
	if w == x.width {
		return x
	}
	if x.IsConst() {
		return b.Const(x.val, int(w))
	}
	return b.intern(exprKey{kind: KindTrunc, width: w, a: x})
}

// BoolToBV widens a 1-bit boolean to a width-bit 0/1 value.
func (b *Builder) BoolToBV(cond *Expr, width int) *Expr {
	return b.ZExt(cond, width)
}
