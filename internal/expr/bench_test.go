package expr

import "testing"

// BenchmarkInternHit measures the hash-consing fast case: rebuilding an
// expression that already exists (every ALU instruction on hot loops).
func BenchmarkInternHit(b *testing.B) {
	bld := NewBuilder()
	x := bld.Var("x", 32)
	y := bld.Var("y", 32)
	bld.Add(x, y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Add(x, y)
	}
}

// BenchmarkConstFold measures fully concrete operations, the dominant
// instruction mix of sensornet node software.
func BenchmarkConstFold(b *testing.B) {
	bld := NewBuilder()
	c1 := bld.Const(12345, 32)
	c2 := bld.Const(678, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Add(c1, c2)
	}
}

// BenchmarkDeepBuild measures constructing a fresh expression tree.
func BenchmarkDeepBuild(b *testing.B) {
	bld := NewBuilder()
	x := bld.Var("x", 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := bld.Add(x, bld.Const(uint64(i), 32))
		e = bld.Mul(e, x)
		e = bld.Xor(e, bld.Const(uint64(i)*7, 32))
		_ = bld.Ult(e, bld.Const(1<<30, 32))
	}
}

// BenchmarkEval measures concrete evaluation of a shared DAG, the oracle
// used by model validation and replay.
func BenchmarkEval(b *testing.B) {
	bld := NewBuilder()
	x := bld.Var("x", 32)
	e := x
	for i := 0; i < 32; i++ {
		e = bld.Xor(bld.Add(e, x), bld.Const(uint64(i), 32))
	}
	env := Env{"x": 12345}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Eval(e, env)
	}
}
