package expr

// Node substitution over the hash-consed DAG, the expression-level
// mechanism behind state merging (internal/merge): a merged state's values
// are ite(Δ, v1, v2) nodes whose condition Δ selects one pre-merge member,
// and re-specialising the merged state to a member is exactly the
// substitution Δ ↦ true (or false) pushed through every reachable node.
//
// Rebuilding goes through the Builder's smart constructors, never through
// raw interning: ite(true, v1, v2) collapses to v1, conjunctions and
// comparisons over the collapsed operands re-fold, and the result is the
// same pointer the program would have produced had it computed with the
// member's values directly. That structural round-trip property is what
// makes merge-split invisible to fingerprints and path conditions.

// Substitute returns e with every node that occurs as a key of sub
// replaced by its mapped value, rebuilding all enclosing nodes through
// the builder's smart constructors. Mapped values must have the width of
// the node they replace. memo caches rewritten nodes and may be shared
// across calls with the same sub (the merge layer keeps one memo per
// member for the lifetime of a merged state); pass nil for a one-shot
// substitution. Untouched subtrees are returned pointer-identically.
func (b *Builder) Substitute(e *Expr, sub map[*Expr]*Expr, memo map[*Expr]*Expr) *Expr {
	if e == nil || len(sub) == 0 {
		return e
	}
	if memo == nil {
		memo = make(map[*Expr]*Expr, 16)
	}
	return b.subst(e, sub, memo)
}

func (b *Builder) subst(e *Expr, sub, memo map[*Expr]*Expr) *Expr {
	if r, ok := memo[e]; ok {
		return r
	}
	if r, ok := sub[e]; ok {
		// The mapped value is rewritten too: after chained merges a
		// replacement produced by an earlier merge can itself contain
		// nodes the map rewrites. Termination is structural — a map value
		// predates its key in the DAG, so it can never reach the key.
		if r != e {
			r = b.subst(r, sub, memo)
		}
		memo[e] = r
		return r
	}
	if e.a == nil {
		// Leaf (const or var) not in the substitution map.
		memo[e] = e
		return e
	}
	a := b.subst(e.a, sub, memo)
	var x, c *Expr
	if e.b != nil {
		x = b.subst(e.b, sub, memo)
	}
	if e.c != nil {
		c = b.subst(e.c, sub, memo)
	}
	if a == e.a && x == e.b && c == e.c {
		memo[e] = e
		return e
	}
	var r *Expr
	switch e.kind {
	case KindAdd:
		r = b.Add(a, x)
	case KindSub:
		r = b.Sub(a, x)
	case KindMul:
		r = b.Mul(a, x)
	case KindUDiv:
		r = b.UDiv(a, x)
	case KindURem:
		r = b.URem(a, x)
	case KindAnd:
		r = b.And(a, x)
	case KindOr:
		r = b.Or(a, x)
	case KindXor:
		r = b.Xor(a, x)
	case KindNot:
		r = b.Not(a)
	case KindShl:
		r = b.Shl(a, x)
	case KindLShr:
		r = b.LShr(a, x)
	case KindAShr:
		r = b.AShr(a, x)
	case KindEq:
		r = b.Eq(a, x)
	case KindUlt:
		r = b.Ult(a, x)
	case KindUle:
		r = b.Ule(a, x)
	case KindSlt:
		r = b.Slt(a, x)
	case KindSle:
		r = b.Sle(a, x)
	case KindIte:
		r = b.Ite(a, x, c)
	case KindZExt:
		r = b.ZExt(a, int(e.width))
	case KindSExt:
		r = b.SExt(a, int(e.width))
	case KindTrunc:
		r = b.Trunc(a, int(e.width))
	default:
		panic("expr: substitute: unexpected kind " + e.kind.String())
	}
	memo[e] = r
	return r
}

// Depth returns the operator depth of e (leaves are 0), computed with DAG
// memoisation and clamped at cap: once any path reaches cap the walk
// stops and cap is returned. The merge cost model uses it to bound how
// much ite nesting a candidate merge would add to the expression DAG.
func Depth(e *Expr, cap int) int {
	if e == nil || cap <= 0 {
		return 0
	}
	memo := make(map[*Expr]int, 16)
	return depthMemo(e, cap, memo)
}

func depthMemo(e *Expr, cap int, memo map[*Expr]int) int {
	if e.a == nil {
		return 0
	}
	if d, ok := memo[e]; ok {
		return d
	}
	d := depthMemo(e.a, cap, memo)
	if e.b != nil {
		if db := depthMemo(e.b, cap, memo); db > d {
			d = db
		}
	}
	if e.c != nil {
		if dc := depthMemo(e.c, cap, memo); dc > d {
			d = dc
		}
	}
	d++
	if d > cap {
		d = cap
	}
	memo[e] = d
	return d
}
