package expr

import "fmt"

// LookupVar returns the variable registered under name without creating
// it, so callers can probe a builder's symbol table non-destructively.
func (b *Builder) LookupVar(name string) (*Expr, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.vars[name]
	return v, ok
}

// KindArity returns the operand count of a node kind, and whether the
// kind is a valid expression kind at all. Variables report arity 0.
func KindArity(k Kind) (int, bool) {
	switch k {
	case KindConst, KindVar:
		return 0, true
	case KindNot, KindZExt, KindSExt, KindTrunc:
		return 1, true
	case KindAdd, KindSub, KindMul, KindUDiv, KindURem,
		KindAnd, KindOr, KindXor, KindShl, KindLShr, KindAShr,
		KindEq, KindUlt, KindUle, KindSlt, KindSle:
		return 2, true
	case KindIte:
		return 3, true
	}
	return 0, false
}

// RawNode interns a node exactly as given, bypassing the constructor
// simplifications. It exists for deserializers restoring a DAG whose
// nodes were produced by this package's own constructors and are
// therefore already in canonical form; re-interning them structurally
// reproduces identical hashes, so expressions built after the restore
// canonicalize exactly as they would have in the original process.
//
// Unlike the constructors it validates instead of panicking, because its
// input is untrusted bytes: unknown kinds, variable nodes (use Var),
// wrong arity, and width-rule breaches all return errors. val is only
// meaningful for KindConst and must be zero otherwise.
func (b *Builder) RawNode(kind Kind, width int, val uint64, args ...*Expr) (*Expr, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("expr: raw node width %d outside [1,64]", width)
	}
	w := uint8(width)
	arity, ok := KindArity(kind)
	if !ok {
		return nil, fmt.Errorf("expr: raw node of unknown kind %d", kind)
	}
	if kind == KindVar {
		return nil, fmt.Errorf("expr: raw variable node (use Var)")
	}
	if len(args) != arity {
		return nil, fmt.Errorf("expr: raw node kind %d wants %d operands, got %d", kind, arity, len(args))
	}
	for i, a := range args {
		if a == nil {
			return nil, fmt.Errorf("expr: raw node kind %d has nil operand %d", kind, i)
		}
	}
	if kind != KindConst && val != 0 {
		return nil, fmt.Errorf("expr: raw node kind %d carries a constant value", kind)
	}
	switch kind {
	case KindConst:
		if val&mask(w) != val {
			return nil, fmt.Errorf("expr: raw const %#x exceeds width %d", val, width)
		}
	case KindAdd, KindSub, KindMul, KindUDiv, KindURem,
		KindAnd, KindOr, KindXor, KindShl, KindLShr, KindAShr:
		if args[0].width != w || args[1].width != w {
			return nil, fmt.Errorf("expr: raw node kind %d operand widths %d,%d != %d",
				kind, args[0].width, args[1].width, width)
		}
	case KindEq, KindUlt, KindUle, KindSlt, KindSle:
		if w != 1 {
			return nil, fmt.Errorf("expr: raw comparison of width %d", width)
		}
		if args[0].width != args[1].width {
			return nil, fmt.Errorf("expr: raw comparison of widths %d vs %d",
				args[0].width, args[1].width)
		}
	case KindNot:
		if args[0].width != w {
			return nil, fmt.Errorf("expr: raw not of width %d on operand width %d", width, args[0].width)
		}
	case KindIte:
		if args[0].width != 1 {
			return nil, fmt.Errorf("expr: raw ite condition width %d", args[0].width)
		}
		if args[1].width != w || args[2].width != w {
			return nil, fmt.Errorf("expr: raw ite arm widths %d,%d != %d",
				args[1].width, args[2].width, width)
		}
	case KindZExt, KindSExt:
		if int(args[0].width) >= width {
			return nil, fmt.Errorf("expr: raw extension from width %d to %d", args[0].width, width)
		}
	case KindTrunc:
		if int(args[0].width) <= width {
			return nil, fmt.Errorf("expr: raw truncation from width %d to %d", args[0].width, width)
		}
	}
	k := exprKey{kind: kind, width: w}
	if kind == KindConst {
		k.val = val
	}
	if arity > 0 {
		k.a = args[0]
	}
	if arity > 1 {
		k.b = args[1]
	}
	if arity > 2 {
		k.c = args[2]
	}
	return b.intern(k), nil
}
