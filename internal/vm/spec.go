package vm

import (
	"sde/internal/expr"
)

// Speculative-fork support: at a symbolic branch (or assume) the VM can
// fork both sides immediately, submit the feasibility queries to an
// asynchronous solver pipeline via SpecHooks, and keep executing the true
// side speculatively. The driver resolves the pending verdicts at
// resolution barriers (packet sends, asserts, end of activation) and uses
// the State methods below to reconcile the speculative execution with the
// verdicts: materialize the sibling, drop a provisional constraint, or
// rewind the state onto the frozen false-side snapshot.

// SpecHooks receives speculative branch decisions. It is implemented by
// the distributed engine; when unset (SetSpecHooks never called) the VM
// resolves every branch synchronously.
type SpecHooks interface {
	// OnSpecBranch is called after the VM forked a symbolic branch
	// speculatively: orig has taken the true side (cond appended to its
	// path condition), sib is the frozen false-side snapshot (notCond
	// appended, fall-through pc, no state id yet). prefix is the shared
	// path condition as of the branch, before either constraint.
	OnSpecBranch(orig, sib *State, prefix []*expr.Expr, cond, notCond *expr.Expr)
	// OnSpecAssume is called after the VM applied an assume
	// speculatively: cond is already appended to s's path condition,
	// prefix is the path condition before it.
	OnSpecAssume(s *State, prefix []*expr.Expr, cond *expr.Expr)
	// OnSpecBarrier is called before an instruction whose effects are
	// observable outside the state (OpSend, OpAssert). The driver must
	// resolve every pending verdict of s before returning: afterwards s
	// is either confirmed (all provisional constraints final), rewound
	// (SpecRewound reports true), or dead.
	OnSpecBarrier(s *State)
}

// SetSpecHooks installs the speculative-fork driver. Passing nil restores
// synchronous branch resolution.
func (c *Context) SetSpecHooks(h SpecHooks) { c.spec = h }

// SpecFork deep-copies the state exactly like Fork but allocates no state
// id and counts no fork: the copy is a frozen speculative snapshot. The
// driver later either materializes it with AdoptFreshID (both sides
// feasible) or consumes it as a rewind target (true side infeasible); in
// the remaining cases it must be Released.
func (s *State) SpecFork() *State {
	n := &State{
		ctx:      s.ctx,
		prog:     s.prog,
		node:     s.node,
		regs:     s.regs,
		mem:      s.mem.clone(),
		frames:   append([]frame(nil), s.frames...),
		fn:       s.fn,
		pc:       s.pc,
		status:   s.status,
		pathCond: append([]*expr.Expr(nil), s.pathCond...),
		sess:     s.sess.Branch(),
		eventSeq: s.eventSeq,
		hist:     append([]HistEntry(nil), s.hist...),
		trace:    append([]TraceEntry(nil), s.trace...),
		sendSeq:  s.sendSeq,
		recvSeq:  s.recvSeq,
		symSeq:   s.symSeq,
		steps:    s.steps,
	}
	if len(s.bound) > 0 {
		n.bound = make(map[uint32]uint64, len(s.bound))
		for id, v := range s.bound {
			n.bound[id] = v
		}
	}
	n.events = make([]*Event, len(s.events))
	for i, ev := range s.events {
		cp := *ev
		n.events[i] = &cp
	}
	return n
}

// AdoptFreshID turns a speculative snapshot into a real forked state,
// drawing the same fork counter and id a synchronous Fork at the same
// point would have drawn — resolution happens in branch creation order,
// so the id stream is identical to a non-speculative run's.
func (s *State) AdoptFreshID() {
	s.ctx.forkCount.Add(1)
	s.id = s.ctx.newStateID()
}

// RemoveConstraintAt deletes the provisional constraint at index idx from
// the path condition: the branch turned out one-sided-true, and a
// synchronous run would never have added it. The slice is rebuilt, never
// edited in place — solver workers still hold prefix snapshots aliasing
// the old backing array. The state's session resyncs from the divergence
// point on its next query.
func (s *State) RemoveConstraintAt(idx int) {
	n := make([]*expr.Expr, 0, len(s.pathCond)-1)
	n = append(n, s.pathCond[:idx]...)
	n = append(n, s.pathCond[idx+1:]...)
	s.pathCond = n
	s.specRemoved++
	s.rebuildBound()
}

// SpecRemovedCount returns how many provisional constraints have been
// removed from this state's path condition so far. The driver snapshots
// it at submission time to adjust recorded constraint indices.
func (s *State) SpecRemovedCount() int { return s.specRemoved }

// RestoreFromSpec rewinds the state onto the frozen snapshot sib: the
// speculatively executed true side turned out infeasible, so the state
// resumes from the branch's fall-through exactly as a synchronous
// one-sided-false branch would have. Machine state (registers, memory,
// control, events, history) comes from the snapshot; the path condition
// keeps the first keep constraints of the state's own current condition —
// the confirmed prefix, which already reflects removals the snapshot's
// copy predates (a one-sided-false branch records no constraint of its
// own). The prefix is copied into a fresh slice so solver workers still
// scanning abandoned prefix snapshots never observe later appends. The
// state keeps its identity and session and is marked rewound so the
// driver re-runs it. sib is consumed.
func (s *State) RestoreFromSpec(sib *State, keep int) {
	s.mem.release()
	s.regs = sib.regs
	s.mem = sib.mem
	s.frames = sib.frames
	s.fn, s.pc = sib.fn, sib.pc
	s.status = StatusRunning
	s.runErr = nil
	s.pathCond = append([]*expr.Expr(nil), s.pathCond[:keep]...)
	s.rebuildBound()
	s.events = sib.events
	s.eventSeq = sib.eventSeq
	s.hist = sib.hist
	s.trace = sib.trace
	s.sendSeq = sib.sendSeq
	s.recvSeq = sib.recvSeq
	s.symSeq = sib.symSeq
	s.steps = sib.steps
	s.specRewound = true
}

// SpecRewound reports whether the state was rewound by RestoreFromSpec
// and must be re-run.
func (s *State) SpecRewound() bool { return s.specRewound }

// ClearSpecRewound acknowledges a rewind before re-running the state.
func (s *State) ClearSpecRewound() { s.specRewound = false }

// rebuildBound recomputes the implied-binding map from the path condition
// after a non-append edit. Bindings are applied in path-condition order,
// so later constraints overwrite earlier ones exactly as the incremental
// noteBinding calls of a synchronous run would have.
func (s *State) rebuildBound() {
	s.bound = nil
	for _, c := range s.pathCond {
		s.noteBinding(c)
	}
}

// specBranch forks a symbolic branch speculatively: the sibling freezes
// the false side, the state takes the true side, and both feasibility
// queries go to the asynchronous pipeline. Constraint bookkeeping matches
// the both-feasible synchronous case; the driver repairs the path
// condition at resolution if the branch turns out one-sided.
func (s *State) specBranch(sp SpecHooks, cond *expr.Expr, target int) {
	notCond := s.ctx.Exprs.Not(cond)
	prefix := s.pathCond
	sib := s.SpecFork()
	sib.AddConstraint(notCond)
	sib.pc++
	s.AddConstraint(cond)
	s.pc = target
	sp.OnSpecBranch(s, sib, prefix, cond, notCond)
}

// specAssume applies an assume speculatively: the constraint is appended
// provisionally and the feasibility query goes to the pipeline; an UNSAT
// verdict kills the state at resolution, exactly where a synchronous run
// would have killed it.
func (s *State) specAssume(sp SpecHooks, cond *expr.Expr) {
	prefix := s.pathCond
	s.AddConstraint(cond)
	s.pc++
	sp.OnSpecAssume(s, prefix, cond)
}
