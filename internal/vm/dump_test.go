package vm

import (
	"strings"
	"testing"

	"sde/internal/isa"
)

func TestDump(t *testing.T) {
	b := isa.NewBuilder()
	b.Func("f").Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	s := NewState(ctx, prog, 3)
	s.StoreWord(0x42, ctx.Exprs.Const(7, WordBits))
	s.AddConstraint(ctx.Exprs.Var("drop", 1))
	s.RecordSend(1, 10, 0xaa)
	s.RecordRecv(2, 12, 0, 0xbb, 0xcc)
	s.PushEvent(Event{Time: 20, Kind: EventTimer, Fn: 0})

	out := s.Dump()
	for _, want := range []string{
		"node 3", "status=idle",
		"mem[0x000042] = 7:w32",
		"constraint drop",
		"sent peer=1 t=10",
		"recv peer=2 t=12",
		"pending timer at t=20",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump lacks %q:\n%s", want, out)
		}
	}
	// Zero words and registers stay out of the dump.
	if strings.Contains(out, "r0 ") {
		t.Errorf("Dump includes zero registers:\n%s", out)
	}
	s.Halt()
	if !strings.Contains(s.Dump(), "status=halted") {
		t.Error("Dump does not reflect halt")
	}
}
