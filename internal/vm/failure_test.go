package vm

import (
	"testing"

	"sde/internal/isa"
)

func failureTestState(t *testing.T) (*Context, *State) {
	t.Helper()
	b := isa.NewBuilder()
	boot := b.Func("boot")
	boot.MovI(isa.R3, 0)
	boot.MovI(isa.R1, 7)
	boot.Store(isa.R3, 0x40, isa.R1)
	boot.Ret()
	recv := b.Func("on_recv")
	recv.MovI(isa.R3, 0)
	recv.Load(isa.R4, isa.R3, 0x41)
	recv.AddI(isa.R4, isa.R4, 1)
	recv.Store(isa.R3, 0x41, isa.R4)
	recv.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	return ctx, NewState(ctx, prog, 2)
}

func TestPeekEvent(t *testing.T) {
	_, s := failureTestState(t)
	if _, ok := s.PeekEvent(); ok {
		t.Error("PeekEvent on empty queue reported an event")
	}
	s.PushEvent(Event{Time: 5, Kind: EventTimer, Fn: 0})
	ev, ok := s.PeekEvent()
	if !ok || ev.Time != 5 {
		t.Fatalf("PeekEvent = %+v, %v", ev, ok)
	}
	// Peek must not consume.
	if s.PendingEvents() != 1 {
		t.Error("PeekEvent consumed the event")
	}
}

func TestDropEvent(t *testing.T) {
	_, s := failureTestState(t)
	s.PushEvent(Event{Time: 5, Kind: EventRecv, Fn: 1, Src: 0})
	s.PushEvent(Event{Time: 9, Kind: EventTimer, Fn: 0})
	s.DropEvent()
	ev, ok := s.PeekEvent()
	if !ok || ev.Time != 9 {
		t.Errorf("after drop, next = %+v, %v; want the timer at 9", ev, ok)
	}
}

func TestDropEventEmptyPanics(t *testing.T) {
	_, s := failureTestState(t)
	defer func() {
		if recover() == nil {
			t.Error("DropEvent on empty queue did not panic")
		}
	}()
	s.DropEvent()
}

func TestDuplicateEvent(t *testing.T) {
	ctx, s := failureTestState(t)
	payload := []*Event{}
	_ = payload
	s.PushEvent(Event{Time: 5, Kind: EventRecv, Fn: 1, Src: 0,
		Data: nil})
	s.DuplicateEvent()
	if s.PendingEvents() != 2 {
		t.Fatalf("events = %d, want 2", s.PendingEvents())
	}
	// Run both: the handler increments the counter twice.
	for s.PendingEvents() > 0 {
		s.BeginEvent(0x8000)
		if err := s.Run(5, 0, NopHooks{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.LoadWord(0x41); !got.IsConst() || got.ConstVal() != 2 {
		t.Errorf("recv counter = %v, want 2", got)
	}
	_ = ctx
}

func TestReboot(t *testing.T) {
	ctx, s := failureTestState(t)
	// Populate volatile state.
	s.StoreWord(0x40, ctx.Exprs.Const(7, WordBits))
	s.RecordSend(1, 3, 0x9)
	s.PushEvent(Event{Time: 10, Kind: EventRecv, Fn: 1, Src: 0})
	s.PushEvent(Event{Time: 20, Kind: EventTimer, Fn: 0})

	s.Reboot(0, 15)

	// Volatile memory cleared.
	if got := s.LoadWord(0x40); !got.IsConst() || got.ConstVal() != 0 {
		t.Errorf("memory survived reboot: %v", got)
	}
	// History kept (the packets were on the air).
	if len(s.History()) != 1 {
		t.Errorf("history = %d entries, want 1", len(s.History()))
	}
	// Old events gone; exactly one boot event at t+1.
	if s.PendingEvents() != 1 {
		t.Fatalf("events = %d, want 1", s.PendingEvents())
	}
	ev, _ := s.PeekEvent()
	if ev.Kind != EventBoot || ev.Time != 16 {
		t.Errorf("boot event = %+v, want EventBoot at 16", ev)
	}
	// The boot handler runs and re-initialises.
	s.BeginEvent(0x8000)
	if err := s.Run(16, 0, NopHooks{}); err != nil {
		t.Fatal(err)
	}
	if got := s.LoadWord(0x40); got.ConstVal() != 7 {
		t.Errorf("boot marker after reboot = %v, want 7", got)
	}
}

func TestRebootOnHaltedIsNoop(t *testing.T) {
	_, s := failureTestState(t)
	s.Halt()
	s.Reboot(0, 5)
	if s.Status() != StatusHalted {
		t.Error("reboot revived a halted state")
	}
	if s.PendingEvents() != 0 {
		t.Error("reboot scheduled events on a halted state")
	}
}

func TestRebootPreservesIdentity(t *testing.T) {
	_, s := failureTestState(t)
	id := s.ID()
	s.Reboot(0, 1)
	if s.ID() != id || s.NodeID() != 2 {
		t.Error("reboot changed state identity")
	}
}
