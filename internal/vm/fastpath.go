package vm

// The compiled-IR concrete fast path. When execution reaches the leader
// of a basic block the load-time compiler marked concretizable
// (isa.Block.Fast) and every register in the block's use set holds a
// concrete constant, the whole block runs here on raw uint64s — no
// expression-DAG consultation, no builder lock, no per-instruction
// dispatch through the symbolic machinery. Expressions are materialized
// only at block exit, for the block's def set and its buffered stores.
//
// The execution is transactional: nothing on the state is mutated until
// the block completes. If a load hits a symbolic (or non-word) memory
// value mid-block, the whole attempt is abandoned with the state
// untouched and the per-instruction interpreter re-executes the block
// from its leader. Because the expression builder hash-conses, the
// constants materialized at exit are pointer-identical to what the
// interpreter would have produced, so fingerprints, forks, sends, and
// violations are bit-for-bit unchanged — enforced by the differential
// fuzzer in fastdiff_test.go and the on/off equivalence suite in
// internal/sim.

import (
	"sde/internal/isa"
)

const fastWordMask = 1<<WordBits - 1

// fastStore is one buffered memory write of a fast-block transaction.
type fastStore struct {
	addr uint32
	val  uint64
}

// runFastBlock attempts to execute the basic block bi of function f
// entirely on concrete values. It returns the number of instructions
// executed (with state committed), or 0 if the attempt was abandoned
// with the state untouched. remaining is the caller's instruction
// budget; blocks that would overrun it are left to the interpreter so
// budget-kill behaviour stays identical.
func (s *State) runFastBlock(f *isa.Func, fir *isa.FuncIR, bi, remaining int, now uint64) int {
	blk := &fir.Blocks[bi]
	if !blk.Fast || blk.Len() > remaining {
		return 0
	}

	// Live-in check: every register the block reads must be concrete.
	var vals [isa.NumRegs]uint64
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if blk.Use.Has(r) {
			e := s.regs[r]
			if e == nil || !e.IsConst() {
				return 0
			}
			vals[r] = e.ConstVal()
		}
	}

	var storeArr [8]fastStore
	stores := storeArr[:0]
	folded := 0
	consumed := 0

	// Terminator disposition, applied at commit.
	nextPC := blk.End
	endActivation := false
	popFrame := false

	for idx := blk.Start; idx < blk.End; idx++ {
		in := &f.Instrs[idx]
		consumed++
		if blk.Folded != nil && blk.Folded[idx-blk.Start].Known {
			// Load-time constant folding already computed this result.
			vals[in.Rd] = blk.Folded[idx-blk.Start].Val
			folded++
			continue
		}
		switch in.Op {
		case isa.OpNop:

		case isa.OpMovI:
			vals[in.Rd] = uint64(in.Imm)

		case isa.OpMov:
			vals[in.Rd] = vals[in.Ra]

		case isa.OpNot:
			vals[in.Rd] = ^vals[in.Ra] & fastWordMask

		case isa.OpLoad:
			addr := uint32(vals[in.Ra]) + in.Imm
			v, ok := s.fastLoad(stores, addr)
			if !ok {
				return 0 // symbolic word: abort, nothing committed
			}
			vals[in.Rd] = v

		case isa.OpStore:
			stores = append(stores, fastStore{
				addr: uint32(vals[in.Ra]) + in.Imm,
				val:  vals[in.Rb],
			})

		case isa.OpNodeID:
			vals[in.Rd] = uint64(s.node) & fastWordMask

		case isa.OpTime:
			vals[in.Rd] = now & 0xffffffff

		case isa.OpJmp:
			nextPC = in.Target

		case isa.OpBrNZ, isa.OpBrZ:
			taken := vals[in.Ra] != 0
			if in.Op == isa.OpBrZ {
				taken = !taken
			}
			if taken {
				nextPC = in.Target
			} else {
				nextPC = idx + 1
			}

		case isa.OpRet:
			if len(s.frames) == 0 {
				endActivation = true
			} else {
				popFrame = true
			}

		default:
			if !in.Op.IsBinary() {
				return 0 // not fast-eligible; compiler bug guard
			}
			b := uint64(in.Imm)
			if !in.BImm {
				b = vals[in.Rb]
			}
			vals[in.Rd] = isa.EvalALU(in.Op, vals[in.Ra], b)
		}
	}

	// Collapse a Jmp-only chain at the landing point when the budget
	// covers the (still counted) intermediate Jmp steps.
	if !endActivation && !popFrame {
		if to, hops := fir.ResolveJmp(nextPC); hops > 0 && consumed+hops <= remaining {
			nextPC = to
			consumed += hops
		}
	}

	// Commit: materialize live-out registers and buffered stores. The
	// builder hash-conses, so these are the same *expr.Expr pointers the
	// interpreter would have written.
	eb := s.ctx.Exprs
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if blk.Def.Has(r) {
			s.regs[r] = eb.Const(vals[r], WordBits)
		}
	}
	for _, st := range stores {
		s.mem.store(st.addr, eb.Const(st.val, WordBits))
	}
	s.steps += uint64(consumed)
	s.ctx.instrCount.Add(uint64(consumed))
	if folded > 0 {
		s.ctx.foldedInstrs.Add(uint64(folded))
	}
	switch {
	case endActivation:
		s.status = StatusIdle
		s.fn = -1
		// The interpreter leaves pc at the Ret instruction (always the
		// block's last instruction); match it so idle-state fingerprints
		// are identical.
		s.pc = blk.End - 1
	case popFrame:
		top := s.frames[len(s.frames)-1]
		s.frames = s.frames[:len(s.frames)-1]
		s.fn, s.pc = top.fn, top.pc
	default:
		s.pc = nextPC
	}
	return consumed
}

// fastLoad reads a word for the fast path: the transaction's own store
// buffer first (newest wins), then the state's memory. ok is false when
// the word is symbolic or not word-sized — the abort signal.
func (s *State) fastLoad(stores []fastStore, addr uint32) (uint64, bool) {
	for j := len(stores) - 1; j >= 0; j-- {
		if stores[j].addr == addr {
			return stores[j].val, true
		}
	}
	w := s.mem.load(addr)
	if w == nil {
		return 0, true // untouched memory reads as concrete zero
	}
	if !w.IsConst() || w.Width() != WordBits {
		return 0, false
	}
	return w.ConstVal(), true
}
