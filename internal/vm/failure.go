package vm

// Failure-model support: the network failure models of paper §IV-A
// ("symbolic packet drops", "packet duplicates, node failures and
// reboots") manipulate a state's event queue and lifecycle around the
// moment a reception event fires. These hooks are deliberately minimal —
// the policy lives in package sim.

// PeekEvent returns the earliest pending event without consuming it.
func (s *State) PeekEvent() (*Event, bool) {
	if len(s.events) == 0 {
		return nil, false
	}
	return s.events[0], true
}

// DropEvent consumes the earliest pending event without executing its
// handler — the "packet dropped above the radio" side of a symbolic drop.
func (s *State) DropEvent() {
	if len(s.events) == 0 {
		panic("vm: DropEvent on empty queue")
	}
	s.popEvent()
}

// DuplicateEvent duplicates the earliest pending event in place, so its
// handler runs twice — the "packet duplicated" failure.
func (s *State) DuplicateEvent() {
	if len(s.events) == 0 {
		panic("vm: DuplicateEvent on empty queue")
	}
	s.PushEvent(*s.events[0])
}

// Reboot models a node crash-and-restart at virtual time t: volatile state
// (registers, memory, call stack, pending timers and in-flight receptions)
// is discarded and a fresh boot event is scheduled at t+1. The
// communication history is kept — the packets were exchanged on the air
// regardless of the crash.
func (s *State) Reboot(bootFn int, t uint64) {
	if s.status == StatusHalted || s.status == StatusDead {
		return
	}
	s.mem.release()
	s.mem = newMemory()
	zero := s.ctx.Exprs.Const(0, WordBits)
	for i := range s.regs {
		s.regs[i] = zero
	}
	s.frames = s.frames[:0]
	s.fn = -1
	s.pc = 0
	s.status = StatusIdle
	s.events = nil
	s.PushEvent(Event{Time: t + 1, Kind: EventBoot, Fn: bootFn})
}
