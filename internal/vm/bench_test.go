package vm

import (
	"testing"

	"sde/internal/isa"
)

func benchProgram(b *testing.B, f func(pb *isa.Builder)) *isa.Program {
	b.Helper()
	pb := isa.NewBuilder()
	f(pb)
	prog, err := pb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// benchLoop builds the tight arithmetic loop both execution-throughput
// benchmarks share.
func benchLoop(b *testing.B, iters uint32) *isa.Program {
	return benchProgram(b, func(pb *isa.Builder) {
		f := pb.Func("main")
		f.MovI(isa.R1, iters)
		f.MovI(isa.R2, 0)
		f.Label("loop")
		f.Add(isa.R2, isa.R2, isa.R1)
		f.XorI(isa.R3, isa.R2, 0x5a)
		f.SubI(isa.R1, isa.R1, 1)
		f.BrNZ(isa.R1, "loop")
		f.Ret()
	})
}

func runLoopBench(b *testing.B, compile bool) {
	const iters = 1000
	prog := benchLoop(b, iters)
	ctx := NewContext()
	ctx.SetCompiledIR(compile)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewState(ctx, prog, 0)
		s.StartCall(prog.FuncIndex("main"))
		if err := s.Run(0, 0, NopHooks{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / (4 * iters)
	b.ReportMetric(perOp, "ns/instr")
}

// BenchmarkInterpreterLoop measures raw concrete execution throughput of
// the per-instruction interpreter: a tight arithmetic loop with the
// compiled fast path disabled, reported as ns per instruction.
func BenchmarkInterpreterLoop(b *testing.B) { runLoopBench(b, false) }

// BenchmarkCompiledLoop is the same loop through the basic-block compiled
// fast path — the before/after pair for the load-time compiler.
func BenchmarkCompiledLoop(b *testing.B) { runLoopBench(b, true) }

// BenchmarkFork measures state duplication cost — the operation the state
// mapping algorithms amplify.
func BenchmarkFork(b *testing.B) {
	prog := benchProgram(b, func(pb *isa.Builder) { pb.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	// A realistic footprint: config words, packet buffers, history.
	for i := uint32(0); i < 64; i++ {
		s.StoreWord(i*17, ctx.Exprs.Const(uint64(i), WordBits))
	}
	for i := 0; i < 20; i++ {
		s.RecordSend(1, uint64(i), uint64(i))
	}
	s.PushEvent(Event{Time: 1, Kind: EventTimer, Fn: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Fork().Release()
	}
}

// BenchmarkForkWriteCOW measures a fork followed by a write (the page
// copy-on-write split).
func BenchmarkForkWriteCOW(b *testing.B) {
	prog := benchProgram(b, func(pb *isa.Builder) { pb.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	v := ctx.Exprs.Const(7, WordBits)
	for i := uint32(0); i < 8; i++ {
		s.StoreWord(i*100, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := s.Fork()
		cp.StoreWord(0, v)
		cp.Release()
	}
}

// BenchmarkSymbolicBranch measures the full fork-at-branch path including
// the two feasibility queries.
func BenchmarkSymbolicBranch(b *testing.B) {
	prog := benchProgram(b, func(pb *isa.Builder) {
		f := pb.Func("main")
		f.Sym(isa.R1, "x", 1)
		f.BrNZ(isa.R1, "t")
		f.Label("t")
		f.Ret()
	})
	ctx := NewContext()
	hooks := NopHooks{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewState(ctx, prog, 0)
		s.StartCall(prog.FuncIndex("main"))
		if err := s.Run(0, 0, hooks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFingerprint measures configuration hashing, the duplicate
// detection and equivalence-oracle primitive.
func BenchmarkFingerprint(b *testing.B) {
	prog := benchProgram(b, func(pb *isa.Builder) { pb.Func("f").Ret() })
	ctx := NewContext()
	s := NewState(ctx, prog, 0)
	for i := uint32(0); i < 128; i++ {
		s.StoreWord(i*5, ctx.Exprs.Const(uint64(i)+1, WordBits))
	}
	for i := 0; i < 30; i++ {
		s.RecordRecv(2, uint64(i), uint32(i), uint64(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Fingerprint()
	}
}
