// Package vm implements the symbolic virtual machine that executes isa
// programs. It plays the role KLEE plays in the paper: it runs unmodified
// node software on symbolic input, forks execution states at symbolic
// branches, accumulates path constraints, and exposes forkable, copy-on-
// write state so the distributed layer (package core) can duplicate states
// cheaply during state mapping.
package vm

import (
	"sort"
	"strconv"
	"sync/atomic"

	"sde/internal/expr"
	"sde/internal/isa"
	"sde/internal/qopt"
	"sde/internal/solver"
)

// WordBits is the machine word size in bits. It is defined by the ISA:
// the load-time constant folder (isa.EvalALU) and the symbolic ALU here
// must agree on it exactly.
const WordBits = isa.WordBits

// Context holds the machinery shared by all states of one SDE run: the
// expression builder, the constraint solver, and the state id allocator.
type Context struct {
	Exprs  *expr.Builder
	Solver *solver.Solver

	// Replay, when non-nil, switches the VM into concrete replay mode:
	// symbolic inputs evaluate to their value in this environment
	// (missing entries are 0, matching the solver's don't-care
	// convention), so execution follows exactly one path — the paper's
	// "concrete inputs and deterministic schedules" for post-mortem
	// analysis.
	Replay expr.Env

	// qo is the query optimizer shared with the solver; the VM uses it
	// to account concretized reads. concretize gates implied-value
	// concretization: branch/assert/assume conditions whose variables
	// are all forced to constants by the path condition are decided here
	// instead of going to the solver.
	qo         *qopt.Optimizer
	concretize bool

	// spec, when non-nil, enables speculative branch forking: feasibility
	// queries go to an asynchronous solver pipeline and execution
	// continues on the true side until a resolution barrier (see spec.go).
	spec SpecHooks

	// merge, when non-nil, enables merged-representative execution: states
	// fused by the merge manager (internal/merge) route every control
	// decision through these hooks so a rep only continues while all its
	// members agree (see merge.go).
	merge MergeHooks

	// compile gates the compiled-IR concrete fast path (see fastpath.go).
	// The IR itself is always built — the event dispatcher's register
	// read-set optimisation uses it unconditionally — but with compile
	// off every instruction runs through the per-instruction
	// interpreter, which is the soundness-triage configuration.
	compile bool

	// zeroWord caches the concrete-zero word expression so the event
	// dispatcher does not take the builder lock for every register of
	// every event.
	zeroWord *expr.Expr

	nextStateID atomic.Uint64
	instrCount  atomic.Uint64
	forkCount   atomic.Uint64

	// Fast-path telemetry: block executions taken by the concrete
	// straight-line path, block entries that fell back to the
	// interpreter, and instructions answered from load-time constant
	// folding.
	fastBlocks   atomic.Uint64
	slowBlocks   atomic.Uint64
	foldedInstrs atomic.Uint64
}

// NewContext returns a fresh context with its own expression builder and
// solver.
func NewContext() *Context { return NewContextWithSolver(solver.Options{}) }

// NewContextWithSolver returns a fresh context whose solver uses the
// given tuning — the injection point for a cross-run solver.SharedCache
// (parallel shards) or the ablation switches.
func NewContextWithSolver(opts solver.Options) *Context {
	eb := expr.NewBuilder()
	if opts.Optimizer == nil {
		opts.Optimizer = qopt.New(eb)
	}
	return &Context{
		Exprs:      eb,
		Solver:     solver.NewWithOptions(opts),
		qo:         opts.Optimizer,
		concretize: !opts.DisableConcretization,
		compile:    true,
		zeroWord:   eb.Const(0, WordBits),
	}
}

// SetCompiledIR enables or disables the compiled-IR concrete fast path
// (on by default). Disabling it forces every instruction through the
// per-instruction interpreter — the first soundness-triage step when a
// run looks wrong, since the fast path preserves fingerprints, forks,
// and test cases bit-for-bit.
func (c *Context) SetCompiledIR(on bool) { c.compile = on }

// CompiledIR reports whether the concrete fast path is enabled.
func (c *Context) CompiledIR() bool { return c.compile }

// FastBlocks returns how many basic-block executions ran on the
// concrete straight-line fast path.
func (c *Context) FastBlocks() uint64 { return c.fastBlocks.Load() }

// SlowBlocks returns how many basic-block entries fell back to the
// per-instruction interpreter (non-concretizable block, symbolic
// live-in register, or a symbolic word loaded mid-block).
func (c *Context) SlowBlocks() uint64 { return c.slowBlocks.Load() }

// FoldedInstrs returns how many fast-path instructions were answered
// from load-time constant folding instead of being computed.
func (c *Context) FoldedInstrs() uint64 { return c.foldedInstrs.Load() }

// Instructions returns the total number of instructions executed by all
// states of this context.
func (c *Context) Instructions() uint64 { return c.instrCount.Load() }

// Forks returns the total number of local symbolic branches taken.
func (c *Context) Forks() uint64 { return c.forkCount.Load() }

func (c *Context) newStateID() uint64 { return c.nextStateID.Add(1) }

// --- copy-on-write memory ---------------------------------------------------

// Pages are small (64 words) because node memories are sparse — a node
// touches a handful of config, packet-buffer, and counter regions — and
// because every resident page is a pointer array the garbage collector
// must scan; large pages made GC the dominant cost of big runs.
const (
	pageShift = 6
	pageWords = 1 << pageShift // 64 words per page
	pageMask  = pageWords - 1
)

// PageBytes is the modeled size of one memory page, used for the RAM
// accounting that reproduces the paper's memory curves (4 bytes per word).
const PageBytes = pageWords * 4

// pageIDSeq hands out process-wide unique page identities so the metrics
// layer can count shared pages once without comparing pointers.
var pageIDSeq atomic.Uint64

type page struct {
	id    uint64
	ref   int32
	words [pageWords]*expr.Expr // nil = zero
}

// memory is a copy-on-write paged store of symbolic words. The zero value
// is an empty memory where every word reads as concrete 0.
type memory struct {
	pages map[uint32]*page
}

func newMemory() memory {
	return memory{pages: make(map[uint32]*page, 8)}
}

func (m *memory) clone() memory {
	pages := make(map[uint32]*page, len(m.pages))
	for k, p := range m.pages {
		p.ref++
		pages[k] = p
	}
	return memory{pages: pages}
}

func (m *memory) load(addr uint32) *expr.Expr {
	p := m.pages[addr>>pageShift]
	if p == nil {
		return nil
	}
	return p.words[addr&pageMask]
}

func (m *memory) store(addr uint32, v *expr.Expr) {
	idx := addr >> pageShift
	p := m.pages[idx]
	switch {
	case p == nil:
		p = &page{id: pageIDSeq.Add(1), ref: 1}
		m.pages[idx] = p
	case p.ref > 1:
		clone := &page{id: pageIDSeq.Add(1), ref: 1, words: p.words}
		p.ref--
		m.pages[idx] = clone
		p = clone
	}
	p.words[addr&pageMask] = v
}

func (m *memory) release() {
	for _, p := range m.pages {
		p.ref--
	}
	m.pages = nil
}

// --- events -----------------------------------------------------------------

// EventKind distinguishes scheduled event types.
type EventKind uint8

// Event kinds.
const (
	EventBoot EventKind = iota + 1
	EventTimer
	EventRecv
)

// Event is a pending activation of an event handler on a node state, the
// unit of work of the discrete-event execution model (paper §IV: "in each
// step KleeNet executes an event of a node and advances the time").
type Event struct {
	Time uint64
	Kind EventKind
	Fn   int          // handler function index
	Arg  *expr.Expr   // timer argument (R0)
	Src  uint32       // recv: sending node id
	Data []*expr.Expr // recv: payload words
	seq  uint64       // insertion order, for stable sorting
}

// --- communication history ---------------------------------------------------

// Dir is the direction of a communication-history entry.
type Dir uint8

// History entry directions.
const (
	DirSent Dir = iota + 1
	DirRecv
)

// HistEntry records one packet in a state's communication history
// (paper §II-B). Histories are not needed by the mapping algorithms — they
// are maintained for state fingerprints, duplicate detection, and the
// conflict-freedom invariant checks in tests.
//
// The paper assumes "all packets that are exchanged in the network are
// unique and distinguishable from each other". Wall-clock-free uniqueness
// is provided by SenderFP: the transmitting state's configuration
// fingerprint at send time, which separates otherwise identical
// transmissions made by different sender states (same payload, time, and
// sequence number) without introducing run-order-dependent identifiers.
type HistEntry struct {
	Dir      Dir
	Peer     uint32 // other endpoint's node id
	Time     uint64 // virtual time of the transmission
	Seq      uint32 // sender-side per-state transmission sequence number
	Payload  uint64 // hash of the payload words
	SenderFP uint64 // received packets: sender configuration fingerprint
}

// TraceEntry is one Print output.
type TraceEntry struct {
	Time uint64
	Msg  string
	Val  *expr.Expr
}

// Violation records a failed assertion together with a concrete test case
// reaching it.
type Violation struct {
	Node    int
	Time    uint64
	Msg     string
	Model   expr.Env // concrete input values reproducing the violation
	StateID uint64
	// Cond is the violation constraint (the negated assertion condition,
	// nil when the assertion is concretely false). Drivers with a wider
	// view — the distributed engine knows the violating state's whole
	// dscenario — re-solve Model over the combined constraints so the
	// witness also fixes the other nodes' decisions.
	Cond *expr.Expr
	// Synthesized marks violations produced by the symmetry layer's
	// witness expansion rather than observed directly: when reduction
	// prunes a symmetric branch, the violations its orbit twin reports
	// are relabeled back onto the pruned nodes' concrete ids at the end
	// of the run. Synthesized violations carry a relabeled Model but no
	// Cond (the constraint belongs to the representative's path).
	Synthesized bool
}

// --- state -------------------------------------------------------------------

// Status describes a state's lifecycle phase.
type Status uint8

// State statuses.
const (
	StatusIdle    Status = iota + 1 // quiescent, waiting for its next event
	StatusRunning                   // mid-event, on the engine's run stack
	StatusHalted                    // executed Halt; permanently inactive
	StatusDead                      // infeasible Assume or runtime error
)

// State is one symbolic execution state of one node: registers, memory,
// call stack, path condition, pending events, and communication history.
// States are forked on symbolic branches and by the state-mapping
// algorithms; forks share memory pages copy-on-write.
type State struct {
	ctx  *Context
	prog *isa.Program

	id   uint64
	node int

	regs   [isa.NumRegs]*expr.Expr
	mem    memory
	frames []frame // return addresses; the active (fn, pc) is separate
	fn, pc int

	status   Status
	runErr   error
	pathCond []*expr.Expr
	// bound maps variables the path condition forces to a constant
	// (var == c, or a pinned 1-bit decision) to that constant. It is
	// derived from pathCond — never serialized, rebuilt on checkpoint
	// restore — and drives implied-value concretization: conditions
	// fully covered by bound are decided without the solver.
	bound map[uint32]uint64
	// sess pins the append-only pathCond to the solver's persistent
	// incremental context, so each branch decision solves under cached
	// assumption literals instead of re-encoding the whole prefix. Nil
	// when incremental solving is disabled.
	sess     *solver.Session
	events   []*Event
	eventSeq uint64

	hist    []HistEntry
	trace   []TraceEntry
	sendSeq uint32 // per-state transmission counter (packet identity)
	recvSeq uint32 // per-state reception counter (failure-model naming)
	symSeq  uint32 // per-state symbolic-input counter (input naming)

	steps uint64 // instructions executed by this state (incl. inherited)

	// Speculative-execution bookkeeping (see spec.go). specRemoved counts
	// provisional constraints removed from pathCond; specRewound marks a
	// state restored onto a false-side snapshot that must be re-run.
	specRemoved int
	specRewound bool

	// merged marks a live merged representative (see merge.go): the state
	// executes on behalf of several fused members, never forks, never
	// touches the solver, and splits back into its members at the first
	// non-uniform control decision or observable instruction.
	merged bool
}

type frame struct {
	fn, pc int
}

// NewState creates the initial, quiescent state of a node running prog,
// with a boot event scheduled at the given time if bootFn is non-negative.
func NewState(ctx *Context, prog *isa.Program, node int) *State {
	s := &State{
		ctx:    ctx,
		prog:   prog,
		id:     ctx.newStateID(),
		node:   node,
		mem:    newMemory(),
		status: StatusIdle,
		fn:     -1,
		sess:   ctx.Solver.NewSession(),
	}
	return s
}

// ID returns the state's unique id within its context. Ids are assigned in
// creation order and never reused.
func (s *State) ID() uint64 { return s.id }

// NodeID returns the id of the node this state belongs to.
func (s *State) NodeID() int { return s.node }

// Status returns the state's lifecycle status.
func (s *State) Status() Status { return s.status }

// Err returns the error that killed the state, if any.
func (s *State) Err() error { return s.runErr }

// Steps returns the number of instructions this state has executed,
// including those executed before any fork that produced it.
func (s *State) Steps() uint64 { return s.steps }

// PathCond returns the state's path condition (shared slice; callers must
// not modify it).
func (s *State) PathCond() []*expr.Expr { return s.pathCond }

// History returns the state's communication history (shared slice;
// callers must not modify it).
func (s *State) History() []HistEntry { return s.hist }

// Trace returns the state's diagnostic Print log.
func (s *State) Trace() []TraceEntry { return s.trace }

// Reg returns the current value of a register.
func (s *State) Reg(r isa.Reg) *expr.Expr { return s.regs[r] }

// Fork deep-copies the state (memory is shared copy-on-write) and returns
// the copy. The copy receives a fresh id; everything else, including the
// pending event queue and the communication history, is identical.
func (s *State) Fork() *State {
	n := s.SpecFork()
	n.AdoptFreshID()
	return n
}

// Release drops the state's references to shared memory pages. The state
// must not be used afterwards.
func (s *State) Release() { s.mem.release() }

// --- event queue -------------------------------------------------------------

// PushEvent schedules an event on this state.
func (s *State) PushEvent(ev Event) {
	ev.seq = s.eventSeq
	s.eventSeq++
	cp := ev
	i := sort.Search(len(s.events), func(i int) bool {
		if s.events[i].Time != cp.Time {
			return s.events[i].Time > cp.Time
		}
		return s.events[i].seq > cp.seq
	})
	s.events = append(s.events, nil)
	copy(s.events[i+1:], s.events[i:])
	s.events[i] = &cp
}

// NextEventTime returns the time of the earliest pending event.
func (s *State) NextEventTime() (uint64, bool) {
	if len(s.events) == 0 || s.status == StatusHalted || s.status == StatusDead {
		return 0, false
	}
	return s.events[0].Time, true
}

// PendingEvents returns the number of queued events.
func (s *State) PendingEvents() int { return len(s.events) }

// popEvent removes and returns the earliest event.
func (s *State) popEvent() *Event {
	ev := s.events[0]
	copy(s.events, s.events[1:])
	s.events = s.events[:len(s.events)-1]
	return ev
}

// --- memory and register helpers ---------------------------------------------

func (s *State) loadWord(addr uint32) *expr.Expr {
	if v := s.mem.load(addr); v != nil {
		return v
	}
	return s.ctx.Exprs.Const(0, WordBits)
}

// StoreWord writes a word; exported for runtime initialisation (routing
// tables, node configuration) before execution starts.
func (s *State) StoreWord(addr uint32, v *expr.Expr) { s.mem.store(addr, v) }

// LoadWord reads a word; exported for test inspection and for the
// reception path that copies payloads into the RX buffer.
func (s *State) LoadWord(addr uint32) *expr.Expr { return s.loadWord(addr) }

// ForEachPage calls f once per resident memory page with a stable identity
// and the page's modeled byte size. Shared pages yield the same identity
// from every state that references them, which lets the metrics layer
// count them once — reproducing how duplicate states share object memory
// in KLEE while still paying per-state overhead.
func (s *State) ForEachPage(f func(id uint64, bytes int)) {
	for _, p := range s.mem.pages {
		f(p.id, PageBytes)
	}
}

// OverheadBytes models the per-state bookkeeping cost (registers, stack,
// constraints, history, events) that exists even when all memory pages are
// shared. This is what makes duplicate states expensive in the paper's RAM
// measurements.
func (s *State) OverheadBytes() int {
	const fixed = 512
	return fixed +
		isa.NumRegs*8 +
		len(s.frames)*16 +
		len(s.pathCond)*24 +
		len(s.hist)*32 +
		len(s.trace)*24 +
		len(s.events)*48
}

// RecordSend appends a sent-packet entry to the communication history and
// returns the per-state sequence number identifying the transmission.
func (s *State) RecordSend(peer uint32, t uint64, payloadHash uint64) uint32 {
	seq := s.sendSeq
	s.sendSeq++
	s.hist = append(s.hist, HistEntry{Dir: DirSent, Peer: peer, Time: t, Seq: seq, Payload: payloadHash})
	return seq
}

// RecordRecv appends a received-packet entry to the communication history.
// senderFP is the sending state's Fingerprint at transmission time, making
// the packet globally unique (see HistEntry).
func (s *State) RecordRecv(peer uint32, t uint64, seq uint32, payloadHash, senderFP uint64) {
	s.hist = append(s.hist, HistEntry{
		Dir: DirRecv, Peer: peer, Time: t, Seq: seq, Payload: payloadHash, SenderFP: senderFP,
	})
}

// NextRecvSeq returns and consumes the per-state reception counter; the
// failure models use it to name their decision variables deterministically.
func (s *State) NextRecvSeq() uint32 {
	n := s.recvSeq
	s.recvSeq++
	return n
}

// RecvCount returns how many receptions this state has recorded via
// NextRecvSeq.
func (s *State) RecvCount() uint32 { return s.recvSeq }

// AddConstraint appends a constraint to the path condition. The caller is
// responsible for having checked feasibility.
func (s *State) AddConstraint(c *expr.Expr) {
	if c.IsTrue() {
		return
	}
	s.pathCond = append(s.pathCond, c)
	s.noteBinding(c)
}

// noteBinding records the implied variable binding of a constraint that
// forces a variable to a constant, feeding implied-value concretization.
func (s *State) noteBinding(c *expr.Expr) {
	if !s.ctx.concretize {
		return
	}
	if v, val, ok := qopt.ImpliedBinding(c); ok {
		if s.bound == nil {
			s.bound = make(map[uint32]uint64, 4)
		}
		s.bound[v.VarID()] = val
	}
}

// InheritConstraints merges the sender's path condition into this state's
// at packet delivery, skipping constraints already present. Receiving a
// packet implies the conditions under which it was sent: with symbolic
// packet contents (§II-A "symbolic packet header") a receiver later
// branches on the *sender's* variables, and without inheritance the
// locally-feasible-but-globally-contradictory side would survive,
// poisoning dstates with unsatisfiable dscenarios.
func (s *State) InheritConstraints(cs []*expr.Expr) {
	for _, c := range cs {
		present := false
		for _, have := range s.pathCond {
			if have == c {
				present = true
				break
			}
		}
		if !present {
			s.pathCond = append(s.pathCond, c)
			s.noteBinding(c)
		}
	}
}

// ForkOnFreshBool creates a fresh 1-bit symbolic input with the given name,
// constrains this state with cond(name)==1, and returns a forked sibling
// constrained with cond(name)==0. It is the hook the network failure models
// use to inject non-determinism (paper §IV-A: "the receiving node's state
// is forked by a network failure model").
func (s *State) ForkOnFreshBool(name string) *State {
	v := s.ctx.Exprs.Var(name, 1)
	sib := s.Fork()
	s.AddConstraint(v)
	sib.AddConstraint(s.ctx.Exprs.Not(v))
	return sib
}

// Kill marks the state dead with the given error.
func (s *State) Kill(err error) {
	s.status = StatusDead
	s.runErr = err
	s.events = nil
}

// Halt marks the state halted.
func (s *State) Halt() {
	s.status = StatusHalted
	s.events = nil
}

func (s *State) String() string {
	return "state#" + strconv.FormatUint(s.id, 10) + "@n" + strconv.Itoa(s.node)
}
